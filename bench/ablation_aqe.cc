// Ablation: CHOPPER vs an AQE-style adaptive-coalescing baseline.
//
// Spark 3's Adaptive Query Execution (post-dating the paper) sizes reduce
// partitions at runtime from observed map output volume. It shares
// CHOPPER's goal but (a) only adapts shuffle reads downward from a volume
// target, (b) has no model of execution time, and (c) cannot choose the
// partitioner or co-partition join subgraphs. This bench quantifies the gap
// on the paper's three workloads.
#include "harness.h"

using namespace chopper;

int main() {
  bench::print_header(
      "Ablation: vanilla vs AQE-style coalescing vs CHOPPER (simulated "
      "seconds)");
  bench::Table table({"workload", "vanilla(s)", "AQE(s)", "CHOPPER(s)",
                      "AQE gain(%)", "CHOPPER gain(%)"});

  auto measure = [&](const workloads::Workload& wl) {
    const double vanilla =
        bench::run_vanilla(wl)->metrics().total_sim_time();

    engine::EngineOptions aqe_opts = bench::vanilla_options();
    aqe_opts.adaptive.enabled = true;
    // Spark's stock target is 64 MiB per post-shuffle partition; on this
    // cluster a reduce task holding input+output of 2x the target must stay
    // under the per-slot memory budget, so we use the memory-aware setting
    // an operator would pick (budget/3).
    aqe_opts.adaptive.target_partition_bytes = 24ULL << 20;
    aqe_opts.adaptive.min_partitions = 8;
    engine::Engine aqe_engine(bench::bench_cluster(), aqe_opts);
    wl.run(aqe_engine, 1.0);
    const double aqe = aqe_engine.metrics().total_sim_time();

    core::Chopper chopper(bench::bench_cluster(), bench::chopper_options());
    const double chopper_time =
        bench::run_chopper(chopper, wl)->metrics().total_sim_time();

    table.add_row({wl.name(), bench::Table::num(vanilla, 2),
                   bench::Table::num(aqe, 2),
                   bench::Table::num(chopper_time, 2),
                   bench::Table::num(100.0 * (vanilla - aqe) / vanilla, 1),
                   bench::Table::num(100.0 * (vanilla - chopper_time) / vanilla,
                                     1)});
  };

  measure(workloads::PcaWorkload(bench::pca_params()));
  measure(workloads::KMeansWorkload(bench::kmeans_params()));
  measure(workloads::SqlWorkload(bench::sql_params()));
  table.print();
  std::printf(
      "\nAQE only resizes shuffle reads from volume; CHOPPER also tunes the\n"
      "input splits, picks partitioners, and co-partitions join subgraphs.\n");
  return 0;
}
