// Ablation: globally-optimized plan (Algorithm 3, with join-subgraph
// co-partitioning) vs the naive per-stage plan (Algorithm 2). The naive
// plan optimizes every stage independently, so the join's parents end up
// with different schemes and the join must re-shuffle — the exact failure
// mode paper Sec. III-C motivates Algorithm 3 with.
#include "harness.h"

using namespace chopper;

namespace {
struct RunStats {
  double time = 0.0;
  double join_remote_kb = 0.0;
  double total_shuffle_kb = 0.0;
};

RunStats measure(engine::Engine& eng) {
  RunStats out;
  out.time = eng.metrics().total_sim_time();
  for (const auto& s : eng.metrics().stages()) {
    out.total_shuffle_kb += static_cast<double>(s.shuffle_bytes()) / 1024.0;
    if (s.anchor_op == engine::OpKind::kJoin) {
      for (const auto& t : s.tasks) {
        out.join_remote_kb += static_cast<double>(t.shuffle_read_remote) / 1024.0;
      }
    }
  }
  return out;
}
}  // namespace

int main() {
  const workloads::SqlWorkload wl(bench::sql_params());

  core::Chopper chopper(bench::bench_cluster(), bench::chopper_options());
  const double input_bytes = chopper.profile(wl.name(), wl.runner(), 1.0);

  auto run_with = [&](const std::vector<core::PlannedStage>& plan) {
    auto eng = chopper.make_engine();
    eng->set_plan_provider(chopper.make_provider(plan));
    wl.run(*eng, 1.0);
    return measure(*eng);
  };

  const auto global_stats = run_with(chopper.plan(wl.name(), input_bytes));
  const auto naive_stats = run_with(chopper.plan_naive(wl.name(), input_bytes));

  engine::Engine vanilla(bench::bench_cluster(), bench::vanilla_options());
  wl.run(vanilla, 1.0);
  const auto vanilla_stats = measure(vanilla);

  bench::print_header(
      "Ablation: Algorithm 3 (global, co-partitioned) vs Algorithm 2 (naive "
      "per-stage) vs vanilla, SQL workload");
  bench::Table table(
      {"plan", "time(s)", "join remote shuffle(KB)", "total shuffle(KB)"});
  auto row = [&](const char* name, const RunStats& s) {
    table.add_row({name, bench::Table::num(s.time, 2),
                   bench::Table::num(s.join_remote_kb, 1),
                   bench::Table::num(s.total_shuffle_kb, 1)});
  };
  row("global (Alg. 3)", global_stats);
  row("naive (Alg. 2)", naive_stats);
  row("vanilla", vanilla_stats);
  table.print();
  return 0;
}
