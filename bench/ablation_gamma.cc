// Ablation: the repartition-insertion benefit factor gamma (paper
// Sec. III-C, default 1.5).
//
// Setup: KMeans is loaded with too few input splits (150), so the cached
// points are partitioned badly and every cache-pinned iteration stage
// inherits oversized, memory-pressured tasks. The profiling sweep teaches
// the models that better counts exist; whether the plan inserts an explicit
// repartition in front of the pinned stages depends on gamma: the current
// cost must exceed gamma x (optimized cost + repartition cost).
#include "harness.h"

using namespace chopper;

int main() {
  workloads::KMeansParams params = bench::kmeans_params();
  params.source_partitions = 150;  // deliberately coarse input splits
  const workloads::KMeansWorkload wl(params);

  core::Chopper profiler(bench::bench_cluster(), bench::chopper_options());
  const double input_bytes = profiler.profile(wl.name(), wl.runner(), 1.0);

  bench::print_header(
      "Ablation: gamma sweep (repartition insertion in front of cache-pinned "
      "KMeans stages loaded with coarse splits)");
  bench::Table table({"gamma", "insertions", "optimized run (s)"});
  for (const double gamma : {1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0}) {
    auto opts = bench::chopper_options();
    opts.optimizer.gamma = gamma;
    core::Optimizer optimizer(profiler.db(), opts.optimizer);
    const auto plan = optimizer.get_global_par(wl.name(), input_bytes);
    int insertions = 0;
    for (const auto& ps : plan) insertions += ps.insert_repartition;

    auto eng = profiler.make_engine();
    eng->set_plan_provider(
        std::make_shared<core::ConfigPlanProvider>(core::plan_to_config(plan)));
    wl.run(*eng, 1.0);

    table.add_row({bench::Table::num(gamma, 2), std::to_string(insertions),
                   bench::Table::num(eng->metrics().total_sim_time(), 2)});
  }
  table.print();

  engine::Engine vanilla(bench::bench_cluster(), bench::vanilla_options());
  wl.run(vanilla, 1.0);
  std::printf("\nvanilla (no plan): %.2fs\n", vanilla.metrics().total_sim_time());
  return 0;
}
