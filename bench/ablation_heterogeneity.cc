// Ablation: how much of CHOPPER's gain depends on cluster heterogeneity.
// The paper evaluates on a heterogeneous cluster (Sec. II-B) and notes the
// design "takes the heterogeneity of cluster resources into account"; this
// bench repeats the Fig. 7 comparison on a uniform cluster with the same
// total slot count to separate partitioning gains from heterogeneity
// effects.
#include "harness.h"

using namespace chopper;

namespace {

double chopper_gain(const workloads::Workload& wl,
                    const engine::ClusterSpec& cluster,
                    double* vanilla_out) {
  engine::Engine vanilla(cluster, bench::vanilla_options());
  wl.run(vanilla, 1.0);
  const double vanilla_time = vanilla.metrics().total_sim_time();

  auto opts = bench::chopper_options();
  core::Chopper chopper(cluster, opts);
  const double input = chopper.profile(wl.name(), wl.runner(), 1.0);
  auto eng = chopper.make_engine();
  eng->set_plan_provider(
      chopper.make_provider(chopper.plan(wl.name(), input)));
  wl.run(*eng, 1.0);
  if (vanilla_out != nullptr) *vanilla_out = vanilla_time;
  return 100.0 * (vanilla_time - eng->metrics().total_sim_time()) /
         vanilla_time;
}

}  // namespace

int main() {
  const auto hetero = bench::bench_cluster();          // 112 slots, mixed
  const auto uniform = engine::ClusterSpec::uniform(   // 112 slots, even
      4, 28, 1.25e9);

  bench::print_header(
      "Ablation: CHOPPER improvement on heterogeneous vs uniform clusters "
      "(same 112 total slots)");
  bench::Table table({"workload", "hetero vanilla(s)", "hetero gain(%)",
                      "uniform vanilla(s)", "uniform gain(%)"});

  auto row = [&](const workloads::Workload& wl) {
    double hv = 0.0, uv = 0.0;
    const double hg = chopper_gain(wl, hetero, &hv);
    const double ug = chopper_gain(wl, uniform, &uv);
    table.add_row({wl.name(), bench::Table::num(hv, 2), bench::Table::num(hg, 1),
                   bench::Table::num(uv, 2), bench::Table::num(ug, 1)});
  };
  row(workloads::KMeansWorkload(bench::kmeans_params()));
  row(workloads::SqlWorkload(bench::sql_params()));
  table.print();
  return 0;
}
