// Ablation: skew and its mitigations. A Zipf-heavy aggregation under hash
// partitioning develops straggler reduce tasks; this bench compares
//   (a) vanilla hash partitioning,
//   (b) vanilla + speculative execution (Spark's generic mitigation),
//   (c) CHOPPER's plan (which may pick the range partitioner and a better
//       partition count — the paper's implicit skew mitigation, Sec. III-B).
#include "harness.h"

using namespace chopper;

namespace {

struct Measured {
  double time = 0.0;
  double worst_skew = 1.0;  ///< max over stages of max/mean task time
};

Measured measure(engine::Engine& eng) {
  Measured out;
  out.time = eng.metrics().total_sim_time();
  for (const auto& s : eng.metrics().stages()) {
    out.worst_skew = std::max(out.worst_skew, s.task_skew());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_flag(argc, argv);
  // A heavily skewed SQL workload: theta=1.2 concentrates ~20% of the fact
  // table on a handful of keys.
  workloads::SqlParams params = bench::sql_params();
  params.fact.zipf_theta = 1.2;
  const workloads::SqlWorkload wl(params);

  bench::print_header(
      "Ablation: skewed keys (Zipf 1.2) — vanilla vs speculation vs CHOPPER");
  bench::Table table({"config", "time(s)", "worst stage skew (max/mean)"});

  {
    engine::Engine eng(bench::bench_cluster(), bench::vanilla_options());
    wl.run(eng, 1.0);
    const auto m = measure(eng);
    table.add_row({"vanilla (hash)", bench::Table::num(m.time, 2),
                   bench::Table::num(m.worst_skew, 2)});
  }
  {
    engine::EngineOptions opts = bench::vanilla_options();
    opts.speculation.enabled = true;
    engine::Engine eng(bench::bench_cluster(), opts);
    wl.run(eng, 1.0);
    const auto m = measure(eng);
    table.add_row({"vanilla + speculation", bench::Table::num(m.time, 2),
                   bench::Table::num(m.worst_skew, 2)});
  }
  {
    core::Chopper chopper(bench::bench_cluster(), bench::chopper_options());
    auto eng = bench::run_chopper(chopper, wl);
    const auto m = measure(*eng);
    table.add_row({"CHOPPER", bench::Table::num(m.time, 2),
                   bench::Table::num(m.worst_skew, 2)});
  }
  table.print();
  if (!json_path.empty()) table.write_json(json_path, "ablation_speculation");
  return 0;
}
