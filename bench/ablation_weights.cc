// Ablation: the alpha/beta weights of Eq. 3 (paper uses 0.5/0.5). Pure
// time-weighting (alpha=1) tolerates shuffle growth; pure shuffle-weighting
// (beta=1) collapses partition counts to shrink shuffle volume at the cost
// of execution time.
#include "harness.h"

using namespace chopper;

int main() {
  const workloads::KMeansWorkload wl(bench::kmeans_params());

  core::Chopper profiler(bench::bench_cluster(), bench::chopper_options());
  const double input_bytes = profiler.profile(wl.name(), wl.runner(), 1.0);

  bench::print_header(
      "Ablation: Eq. 3 weights (KMeans; execution time and total shuffle "
      "volume of the resulting optimized run)");
  bench::Table table(
      {"alpha", "beta", "total time(s)", "total shuffle(KB)", "reduce P"});
  const std::pair<double, double> sweeps[] = {
      {1.0, 0.0}, {0.7, 0.3}, {0.5, 0.5}, {0.3, 0.7}, {0.0, 1.0}};
  for (const auto& [alpha, beta] : sweeps) {
    auto opts = bench::chopper_options();
    opts.optimizer.weights.alpha = alpha;
    opts.optimizer.weights.beta = beta;
    core::Optimizer optimizer(profiler.db(), opts.optimizer);
    const auto plan = optimizer.get_global_par(wl.name(), input_bytes);

    auto eng = profiler.make_engine();
    eng->set_plan_provider(
        std::make_shared<core::ConfigPlanProvider>(core::plan_to_config(plan)));
    wl.run(*eng, 1.0);

    double shuffle_kb = 0.0;
    std::size_t reduce_p = 0;
    for (const auto& s : eng->metrics().stages()) {
      shuffle_kb += static_cast<double>(s.shuffle_bytes()) / 1024.0;
      if (s.anchor_op == engine::OpKind::kReduceByKey) {
        reduce_p = s.num_partitions;
      }
    }
    table.add_row({bench::Table::num(alpha, 1), bench::Table::num(beta, 1),
                   bench::Table::num(eng->metrics().total_sim_time(), 2),
                   bench::Table::num(shuffle_kb, 1), std::to_string(reduce_p)});
  }
  table.print();
  return 0;
}
