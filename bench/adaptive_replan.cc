// Adaptive re-planning (DESIGN.md §15): frozen plan vs CHOPPER-online on a
// recurring job whose production input diverges from the profiled size.
//
// Setup: a source -> map -> reduceByKey job is profiled at a small input,
// planned (Algorithm 3), and then recurs N times in production at 8x the
// profiled size on a memory-calibrated cluster where the frozen plan's
// partition count no longer fits. The frozen arm re-pays the OOM-grow
// retries on every recurrence (each round is a new job, so the scheduler
// re-resolves the stale scheme each time). The adaptive arm attaches an
// AdaptiveController: the round-1 OOMs prove a memory-feasibility floor,
// the controller re-plans at the stage barrier and patches the live
// provider, and every later round starts at the grown partition count.
//
// Asserts (exit 1 on failure):
//  * every frozen round OOMs; the adaptive arm OOMs only in round 1;
//  * the controller re-planned at least once and its kPlanUpdate /
//    kModelRefit events round-trip through the JSONL log;
//  * reduced results are identical across arms and rounds (digest);
//  * a run executed directly with controller.adapted_config() is
//    byte-identical (records and simulated time) to the last adaptive round;
//  * total adaptive makespan is >= 30% below frozen (full mode only);
//  * enabled-but-never-triggered: zero re-plans, per-round simulated times
//    bit-identical to a controller-less run, wall overhead <= 1%
//    (overhead gate in full mode only).
//
// `--tiny` shrinks inputs ~6x for CI smoke runs; `--json PATH` mirrors the
// per-round table into a BENCH_*.json artifact.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "adapt/adaptive.h"
#include "harness.h"
#include "obs/event_log.h"
#include "obs/history.h"
#include "obs/sinks.h"

using namespace chopper;

namespace {

bool g_tiny = false;
bool g_ok = true;

void check(bool cond, const char* what) {
  if (!cond) {
    std::printf("FAIL: %s\n", what);
    g_ok = false;
  }
}

constexpr const char* kWorkload = "adaptive_recurring";
constexpr std::size_t kKeys = 1000;
constexpr std::uint32_t kAuxBytes = 160;

std::size_t profile_rows() { return g_tiny ? 20'000 : 120'000; }
std::size_t production_rows() { return 8 * profile_rows(); }
std::size_t rounds() { return g_tiny ? 3 : 6; }

// The recurring job. Labels are round-independent, so every recurrence has
// the same stage signatures — the property CHOPPER's config keys on.
engine::DatasetPtr make_job(std::size_t rows) {
  auto src = engine::Dataset::source(
      "adapt.load", 64, [rows](std::size_t index, std::size_t count) {
        engine::Partition p;
        const std::size_t begin = rows * index / count;
        const std::size_t end = rows * (index + 1) / count;
        for (std::size_t i = begin; i < end; ++i) {
          const double vals[2] = {1.0, static_cast<double>(i % 97)};
          p.emplace(i % kKeys, vals, 2, kAuxBytes);
        }
        return p;
      });
  auto feat = src->map(
      "adapt.feature",
      [](const engine::Record& r) {
        engine::Record out = r;
        out.values[1] = out.values[1] * 2.0 + 1.0;
        return out;
      },
      6.0);
  return feat->reduce_by_key(
      "adapt.sum",
      [](engine::Record& acc, const engine::Record& next) {
        acc.values[0] += next.values[0];
        acc.values[1] += next.values[1];
      },
      {}, 2.0);
}

// Order-insensitive digest of a collect() result. The reduction sums
// integer-valued doubles, so it is exact at any partition count.
std::uint64_t result_digest(const std::vector<engine::Record>& records) {
  std::vector<engine::Record> sorted = records;
  std::sort(sorted.begin(), sorted.end(),
            [](const engine::Record& a, const engine::Record& b) {
              return a.key < b.key;
            });
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& r : sorted) {
    mix(r.key);
    for (const double v : r.values) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof bits);
      mix(bits);
    }
    mix(r.aux_bytes);
  }
  return h;
}

engine::EngineOptions base_options() {
  engine::EngineOptions o = bench::vanilla_options();
  o.default_parallelism = 64;
  return o;
}

engine::EngineOptions enforced_options() {
  engine::EngineOptions o = base_options();
  o.memory.enforce = true;
  o.memory.oom_repartition_after = 1;
  return o;
}

struct Round {
  double sim_s = 0.0;
  std::size_t ooms = 0;
  std::uint64_t digest = 0;
  std::vector<engine::Record> records;
};

// One production recurrence on a fresh engine (recurring-job semantics: no
// state carries over between rounds except the shared plan provider).
Round run_round(const engine::ClusterSpec& cluster,
                const engine::EngineOptions& opts,
                const std::shared_ptr<engine::PlanProvider>& provider,
                obs::EventLog* log, std::size_t rows) {
  engine::Engine eng(cluster, opts);
  if (provider) eng.set_plan_provider(provider);
  if (log) eng.set_event_log(log);
  const engine::JobResult res = eng.collect(make_job(rows), kWorkload);
  Round r;
  r.sim_s = res.sim_time_s;
  r.ooms = res.oom_count;
  r.digest = result_digest(res.records);
  r.records = res.records;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) g_tiny = true;
  }
  const std::string json_path = bench::json_flag(argc, argv);

  bench::print_header(
      "Adaptive re-planning: frozen plan vs CHOPPER-online on a recurring "
      "job at 8x the profiled input");

  // -- profile + freeze the plan at the small input --------------------------
  core::ChopperOptions copts = bench::chopper_options();
  copts.engine_options = base_options();
  copts.profile_partitions = {32, 64, 96, 128};
  copts.profile_fractions = {0.5, 1.0};
  copts.profile_both_partitioners = false;
  const core::WorkloadRunner runner = [](engine::Engine& e, double s) {
    e.collect(make_job(static_cast<std::size_t>(
                  static_cast<double>(profile_rows()) * s)),
              kWorkload);
  };
  core::Chopper profiler(bench::bench_cluster(1.0), copts);
  const double input_bytes = profiler.profile(kWorkload, runner, 1.0);
  const std::string db_path = "adaptive_replan_db.jsonl";
  profiler.save_db(db_path);

  const auto frozen_plan = profiler.plan(kWorkload, input_bytes);
  const common::KvConfig frozen_cfg = profiler.plan_config(frozen_plan);
  check(!frozen_plan.empty(), "profiling produced a plan");
  std::size_t frozen_load_p = 0;
  for (const auto& ps : frozen_plan) {
    if (ps.name.find("adapt.load") != std::string::npos) {
      frozen_load_p = ps.num_partitions;
    }
  }
  std::printf("frozen plan (profiled at %zu rows): load stage P=%zu\n",
              profile_rows(), frozen_load_p);
  check(frozen_load_p > 0, "frozen plan covers the load stage");

  // -- calibrate memory so the frozen P OOMs at the production input ---------
  // Probe the frozen plan's largest task working set at 8x rows on an ample
  // cluster, then size executors so P fails, 1.5P still fails and 2.25P fits
  // (two OOM-grow retries per frozen round).
  {
    engine::Engine probe(bench::bench_cluster(1.0), base_options());
    probe.set_plan_provider(
        std::make_shared<core::ConfigPlanProvider>(frozen_cfg));
    probe.collect(make_job(production_rows()), kWorkload);
    double w = 0.0;
    for (const auto& sm : probe.metrics().stages()) {
      for (const auto& t : sm.tasks) {
        w = std::max(w, static_cast<double>(t.bytes_in + t.bytes_out) /
                            base_options().cost_model.data_scale);
      }
    }
    check(w > 0.0, "probe measured a task working set");
    const double mem_scale = 0.55 * w * 32.0 / 40e9;
    std::printf(
        "production probe: max task working set %.1f MB at 8x input; "
        "executor memory scaled to %.4fx (slot ceiling %.1f MB)\n",
        w / 1e6, mem_scale, 0.55 * w / 1e6);

    const engine::ClusterSpec starved = bench::bench_cluster(mem_scale);
    const engine::EngineOptions enforced = enforced_options();
    const std::size_t n = rounds();

    // -- arm A: frozen plan, every round re-pays the OOM-grow retries --------
    bench::Table table({"arm", "round", "sim(s)", "oom", "replans"});
    const auto frozen_provider =
        std::make_shared<core::ConfigPlanProvider>(frozen_cfg);
    std::vector<Round> frozen;
    double frozen_total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      frozen.push_back(
          run_round(starved, enforced, frozen_provider, nullptr,
                    production_rows()));
      frozen_total += frozen.back().sim_s;
      table.add_row({"frozen", std::to_string(r),
                     bench::Table::num(frozen.back().sim_s, 2),
                     std::to_string(frozen.back().ooms), "-"});
      check(frozen.back().ooms > 0, "frozen round re-pays OOM retries");
    }

    // -- arm B: same starting plan, adaptive controller attached -------------
    core::Chopper online(starved, copts);
    online.load_db(db_path);
    const auto live_provider =
        std::make_shared<core::ConfigPlanProvider>(frozen_cfg);
    auto controller = std::make_shared<adapt::AdaptiveController>(
        online, kWorkload, live_provider, frozen_cfg);
    obs::EventLog event_log;
    const std::string log_path = "adaptive_replan_events.jsonl";
    event_log.attach(std::make_shared<obs::JsonlFileSink>(log_path));
    event_log.attach(controller);
    controller->set_event_log(&event_log);

    std::vector<Round> adaptive;
    double adaptive_total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      adaptive.push_back(run_round(starved, enforced, live_provider,
                                   &event_log, production_rows()));
      adaptive_total += adaptive.back().sim_s;
      table.add_row({"adaptive", std::to_string(r),
                     bench::Table::num(adaptive.back().sim_s, 2),
                     std::to_string(adaptive.back().ooms),
                     std::to_string(controller->stats().replans)});
    }
    const adapt::AdaptStats stats = controller->stats();
    const common::KvConfig adapted = controller->adapted_config();
    event_log.detach_all();  // flush + close the JSONL sink

    table.print();
    const double reduction = (frozen_total - adaptive_total) / frozen_total;
    std::printf(
        "\nfrozen total %.2f s, adaptive total %.2f s -> %.1f%% reduction\n",
        frozen_total, adaptive_total, 100.0 * reduction);
    std::printf(
        "adaptation: %zu observations folded, %zu refits, %zu re-plans "
        "(%zu stages adopted, %zu suppressed by epsilon)\n",
        stats.observations, stats.refits, stats.replans, stats.stages_adopted,
        stats.suppressed);
    if (!json_path.empty() && !table.write_json(json_path, "adaptive_replan")) {
      g_ok = false;
    }

    check(stats.replans >= 1, "controller adopted at least one re-plan");
    check(adaptive.front().ooms > 0, "adaptive round 0 hits the stale plan");
    for (std::size_t r = 1; r < n; ++r) {
      check(adaptive[r].ooms == 0, "adaptive rounds after the re-plan are "
                                   "OOM-free");
    }
    for (std::size_t r = 0; r < n; ++r) {
      check(frozen[r].digest == frozen.front().digest,
            "frozen results stable across rounds");
      check(adaptive[r].digest == frozen.front().digest,
            "adaptive results identical to the frozen arm");
    }
    if (!g_tiny) {
      check(reduction >= 0.30, "adaptive makespan >= 30% below frozen");
    }

    // A run executed directly with the adapted plan must be byte-identical
    // to the triggered run's final round.
    const Round direct =
        run_round(starved, enforced,
                  std::make_shared<core::ConfigPlanProvider>(adapted), nullptr,
                  production_rows());
    check(direct.sim_s == adaptive.back().sim_s,
          "direct run at adapted_config matches last adaptive round (time)");
    check(direct.records == adaptive.back().records,
          "direct run at adapted_config matches last adaptive round (records)");

    // kPlanUpdate / kModelRefit round-trip through the JSONL log.
    const obs::HistoryReader reader = obs::HistoryReader::load(log_path);
    check(reader.skipped_lines() == 0, "event log has no malformed lines");
    check(reader.skipped_unknown_kinds() == 0,
          "event log has no unknown kinds");
    std::size_t plan_updates = 0, refit_marks = 0;
    std::uint64_t last_update_p = 0;
    for (const auto& e : reader.events()) {
      if (e.kind == obs::EventKind::kPlanUpdate) {
        ++plan_updates;
        check(e.signature != 0 && e.num_partitions > 0,
              "kPlanUpdate round-trips its scheme");
        last_update_p = e.num_partitions;
      } else if (e.kind == obs::EventKind::kModelRefit) {
        ++refit_marks;
      }
    }
    check(plan_updates >= 1, "kPlanUpdate events reached the JSONL log");
    check(refit_marks == stats.refits, "kModelRefit markers match the stats");
    std::printf("event log: %zu kPlanUpdate, %zu kModelRefit records "
                "round-tripped (last adopted P=%llu)\n",
                plan_updates, refit_marks,
                static_cast<unsigned long long>(last_update_p));
  }

  // -- enabled but never triggered: pure-observer overhead -------------------
  // Production == divergent input on an ample, unenforced cluster: no OOMs,
  // no feasibility floor, and cost re-sweeps stay inside the epsilon gate,
  // so the controller must behave as a pure observer.
  {
    bench::print_header(
        "Enabled-but-never-triggered: bit-identity and overhead");
    const engine::ClusterSpec ample = bench::bench_cluster(1.0);
    const engine::EngineOptions opts = base_options();
    const std::size_t n = rounds();

    const auto run_arm = [&](bool with_controller, std::vector<Round>* out) {
      const auto provider =
          std::make_shared<core::ConfigPlanProvider>(frozen_cfg);
      std::shared_ptr<adapt::AdaptiveController> controller;
      std::unique_ptr<core::Chopper> chopper;
      obs::EventLog log;
      if (with_controller) {
        chopper = std::make_unique<core::Chopper>(ample, copts);
        chopper->load_db(db_path);
        controller = std::make_shared<adapt::AdaptiveController>(
            *chopper, kWorkload, provider, frozen_cfg);
        controller->set_event_log(&log);
        log.attach(controller);
      }
      const auto t0 = std::chrono::steady_clock::now();
      out->clear();
      for (std::size_t r = 0; r < n; ++r) {
        out->push_back(run_round(ample, opts, provider,
                                 with_controller ? &log : nullptr,
                                 production_rows()));
      }
      const auto t1 = std::chrono::steady_clock::now();
      const std::size_t replans =
          controller ? controller->stats().replans : 0;
      log.detach_all();
      check(replans == 0, "no re-plan fires on the ample cluster");
      return std::chrono::duration<double>(t1 - t0).count();
    };

    std::vector<Round> plain, observed;
    double wall_plain = 1e300, wall_observed = 1e300;
    const int reps = g_tiny ? 1 : 3;
    for (int rep = 0; rep < reps; ++rep) {
      wall_plain = std::min(wall_plain, run_arm(false, &plain));
      wall_observed = std::min(wall_observed, run_arm(true, &observed));
    }
    for (std::size_t r = 0; r < n; ++r) {
      check(plain[r].sim_s == observed[r].sim_s,
            "per-round simulated times bit-identical with observer attached");
      check(plain[r].digest == observed[r].digest,
            "per-round results bit-identical with observer attached");
    }
    const double overhead = (wall_observed - wall_plain) / wall_plain;
    std::printf("wall (best of %d): plain %.3f s, observed %.3f s -> "
                "%.2f%% overhead\n",
                reps, wall_plain, wall_observed, 100.0 * overhead);
    if (!g_tiny) {
      check(overhead <= 0.01, "enabled-but-idle overhead <= 1%");
    }
  }

  std::printf("\n%s\n", g_ok ? "adaptive_replan: all checks passed"
                             : "adaptive_replan: CHECKS FAILED");
  return g_ok ? 0 : 1;
}
