// Cache-plan acceptance bench (DESIGN.md §17): cost-aware persist/evict vs
// plain LRU under the same enforced memory budget.
//
// Workload: two tenants share one engine. Tenant "iter" runs an iterative
// series of jobs that all re-read one cached, expensive-to-rebuild dataset
// (a compute-heavy feature map). Tenant "scan" interleaves cold one-shot
// scans whose sources are also cached but trivially rebuildable. The storage
// budget fits the hot dataset OR a scan, not both, so every scan forces an
// eviction:
//
//   * LRU evicts by recency — the hot dataset is always the oldest block
//     when a scan lands, so every following iteration re-pays the heavy
//     feature map through lineage healing.
//   * The cost policy scores the scans Drop (reuse <= 1, rebuild ~ 1 work
//     unit) and the hot dataset Cache at W x R; the scans surrender their
//     memory first and the iterations keep their hits.
//
// Acceptance (driver-checked): the cost arm's makespan is >= 20% below the
// LRU arm's, both arms' per-job results are bit-identical, and the cost
// arm's kCachePlanDecision / kCacheHit events round-trip HistoryReader with
// replayed cache telemetry equal to the live registry.
//
// `--tiny` shrinks inputs ~8x for CI smoke runs; `--json PATH` mirrors the
// table into a BENCH_*.json artifact.
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cacheplan/cacheplan.h"
#include "common/rng.h"
#include "harness.h"
#include "obs/history.h"
#include "obs/sinks.h"

using namespace chopper;

namespace {

bool g_tiny = false;

std::size_t base_records() { return g_tiny ? 6'000 : 48'000; }
std::size_t scan_records() { return g_tiny ? 9'000 : 72'000; }
std::size_t iterations() { return g_tiny ? 4 : 8; }

// The feature map's modeled cost per record: what an LRU arm re-pays every
// time the hot dataset is healed from lineage.
constexpr double kHeavyWork = 48.0;

engine::SourceFn flat_source(std::uint64_t seed, std::size_t total,
                             std::size_t num_keys, std::size_t payload_bytes) {
  return [=](std::size_t index, std::size_t count) {
    common::Xoshiro256 rng(common::hash_combine(seed, index * 131 + count));
    engine::Partition p;
    const std::size_t begin = total * index / count;
    const std::size_t end = total * (index + 1) / count;
    for (std::size_t i = begin; i < end; ++i) {
      engine::Record r;
      r.key = rng.next_below(num_keys);
      r.values = {rng.next_double(), 1.0};
      r.aux_bytes = payload_bytes;
      p.push(std::move(r));
    }
    return p;
  };
}

struct ArmResult {
  double makespan = 0.0;
  std::vector<std::uint64_t> counts;  ///< per-job result digests, in order
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::uint64_t saved_bytes = 0;
  std::size_t evictions_lru = 0;
  std::size_t evictions_cost = 0;
  std::size_t decisions = 0;
};

/// One arm: fresh engine + fresh dataset graph (same seeds), sequential
/// multi-tenant job mix. `event_log_path` non-empty attaches a JSONL sink
/// (used on the cost arm for the replay-parity check).
ArmResult run_arm(engine::EvictionPolicy policy,
                  const std::string& event_log_path,
                  engine::MetricsRegistry** metrics_out,
                  std::unique_ptr<engine::Engine>* keep_alive) {
  engine::EngineOptions opts = bench::vanilla_options();
  opts.default_parallelism = 16;
  opts.memory.enforce = true;
  // Pressure the storage tier only: executors keep enough headroom for task
  // working sets, while the cache budget fits the hot dataset alone but not
  // next to one scan (calibrated against the record counts above).
  opts.memory.storage_fraction = g_tiny ? 0.006 : 0.047;
  auto eng =
      std::make_unique<engine::Engine>(bench::bench_cluster(0.5), opts);

  auto event_log = std::make_unique<obs::EventLog>();
  if (!event_log_path.empty()) {
    event_log->attach(std::make_shared<obs::JsonlFileSink>(event_log_path));
    eng->set_event_log(event_log.get());
  }

  std::shared_ptr<cacheplan::CachePlanner> planner;
  if (policy == engine::EvictionPolicy::kCost) {
    planner = std::make_shared<cacheplan::CachePlanner>();
    planner->set_pool_shares({{"iter", 2.0 / 3.0}, {"scan", 1.0 / 3.0}});
    for (std::size_t i = 0; i < iterations(); ++i) {
      planner->set_job_pool("iter-" + std::to_string(i), "iter");
      planner->set_job_pool("scan-" + std::to_string(i), "scan");
    }
    if (!event_log_path.empty()) planner->set_event_log(event_log.get());
    eng->set_cache_advisor(planner);
    eng->block_manager().set_eviction_policy(engine::EvictionPolicy::kCost);
  }

  // Tenant "iter": one hot cached dataset behind a compute-heavy map.
  auto hot = engine::Dataset::source("cp-points", 16,
                                     flat_source(7, base_records(), 512, 64))
                 ->map(
                     "cp-features",
                     [](const engine::Record& in) {
                       engine::Record r = in;
                       r.values[0] = r.values[0] * 2.0 + 1.0;
                       return r;
                     },
                     /*work_per_record=*/kHeavyWork)
                 ->cache();

  ArmResult out;
  for (std::size_t i = 0; i < iterations(); ++i) {
    const std::string tag = "#" + std::to_string(i);
    // Iterative job: re-read the hot dataset, light per-iteration work.
    auto it_job = hot->map(
                         "cp-assign" + tag,
                         [i](const engine::Record& in) {
                           engine::Record r = in;
                           r.key = (r.key + i) % 8;
                           return r;
                         },
                         /*work_per_record=*/1.0)
                      ->reduce_by_key(
                          "cp-update" + tag,
                          [](engine::Record& acc, const engine::Record& next) {
                            acc.values[0] += next.values[0];
                            acc.values[1] += next.values[1];
                          },
                          engine::ShuffleRequest{std::nullopt, 8, false});
    const auto r1 = eng->count(it_job, "iter-" + std::to_string(i));
    out.makespan += r1.sim_time_s;
    out.counts.push_back(r1.count);

    // Tenant "scan": a cold cached source, read once, never again.
    auto scan = engine::Dataset::source(
                    "cp-scan" + tag, 16,
                    flat_source(1000 + i, scan_records(), 4096, 96))
                    ->cache();
    const auto r2 = eng->count(
        scan->filter("cp-hit" + tag,
                     [](const engine::Record& r) { return r.values[0] > 0.5; }),
        "scan-" + std::to_string(i));
    out.makespan += r2.sim_time_s;
    out.counts.push_back(r2.count);
    if (std::getenv("CACHE_PLAN_DEBUG") != nullptr) {
      std::printf("debug: after round %zu cached=%llu bytes in %zu datasets\n",
                  i,
                  static_cast<unsigned long long>(
                      eng->block_manager().total_bytes()),
                  eng->block_manager().count());
    }
  }

  for (const auto& j : eng->metrics().jobs()) {
    if (std::getenv("CACHE_PLAN_DEBUG") != nullptr) {
      std::printf("debug: job %s sim=%.4f recovery=%.4f hits=%zu misses=%zu\n",
                  j.name.c_str(), j.sim_time_s, j.recovery_time_s,
                  j.cache_hits, j.cache_misses);
    }
    out.cache_hits += j.cache_hits;
    out.cache_misses += j.cache_misses;
    out.saved_bytes += j.recompute_saved_bytes;
    out.evictions_lru += j.evictions_lru;
    out.evictions_cost += j.evictions_cost;
  }
  if (planner != nullptr) out.decisions = planner->decisions_made();
  if (metrics_out != nullptr) *metrics_out = &eng->metrics();
  if (keep_alive != nullptr) *keep_alive = std::move(eng);
  return out;
}

/// Replay parity: the cost arm's log round-trips its cache telemetry and
/// carries the §17 event kinds.
bool check_replay(const std::string& path,
                  const engine::MetricsRegistry& live) {
  const obs::HistoryReader reader = obs::HistoryReader::load(path);
  std::size_t plan_events = 0;
  std::size_t hit_events = 0;
  for (const obs::Event& e : reader.events()) {
    if (e.kind == obs::EventKind::kCachePlanDecision) {
      if (e.detail.empty() || e.value2 < 0.0) return false;
      ++plan_events;
    } else if (e.kind == obs::EventKind::kCacheHit) {
      if (e.count == 0) return false;
      ++hit_events;
    }
  }
  if (plan_events == 0 || hit_events == 0) {
    std::printf("replay check FAILED: %zu plan events, %zu hit events\n",
                plan_events, hit_events);
    return false;
  }
  // Replayed job rows must carry the same cache counters as the live run.
  std::size_t live_hits = 0;
  std::size_t live_ev = 0;
  for (const auto& j : live.jobs()) {
    live_hits += j.cache_hits;
    live_ev += j.evictions_lru + j.evictions_cost;
  }
  std::size_t replay_hits = 0;
  std::size_t replay_ev = 0;
  for (const auto& j : reader.jobs()) {
    replay_hits += j.cache_hits;
    replay_ev += j.evictions_lru + j.evictions_cost;
  }
  if (live_hits != replay_hits || live_ev != replay_ev) {
    std::printf("replay check FAILED: hits %zu vs %zu, evictions %zu vs %zu\n",
                live_hits, replay_hits, live_ev, replay_ev);
    return false;
  }
  std::printf("replay parity: %zu cache_plan + %zu cache_hit events; "
              "%zu hits and %zu evictions round-trip\n",
              plan_events, hit_events, replay_hits, replay_ev);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) g_tiny = true;
  }
  const std::string json_path = bench::json_flag(argc, argv);

  bench::print_header(
      "Cache plan: cost-aware eviction vs LRU, multi-tenant iterative + "
      "scan mix under one enforced budget");

  const ArmResult lru =
      run_arm(engine::EvictionPolicy::kLru, "", nullptr, nullptr);

  const std::string log_path = "cache_plan_events.jsonl";
  engine::MetricsRegistry* cost_metrics = nullptr;
  std::unique_ptr<engine::Engine> cost_engine;
  const ArmResult cost = run_arm(engine::EvictionPolicy::kCost, log_path,
                                 &cost_metrics, &cost_engine);

  bench::Table table({"policy", "makespan(s)", "hits", "misses", "saved(MB)",
                      "ev_lru", "ev_cost", "decisions"});
  const auto row = [&table](const char* name, const ArmResult& r) {
    table.add_row({name, bench::Table::num(r.makespan, 2),
                   std::to_string(r.cache_hits),
                   std::to_string(r.cache_misses),
                   bench::Table::num(r.saved_bytes / 1e6, 1),
                   std::to_string(r.evictions_lru),
                   std::to_string(r.evictions_cost),
                   std::to_string(r.decisions)});
  };
  row("lru", lru);
  row("cost", cost);
  table.print();
  if (!json_path.empty() && !table.write_json(json_path, "cache_plan")) {
    return 1;
  }

  const double gain =
      lru.makespan > 0.0 ? 1.0 - cost.makespan / lru.makespan : 0.0;
  std::printf("\nmakespan: lru %.2fs -> cost %.2fs (%.1f%% reduction)\n",
              lru.makespan, cost.makespan, gain * 100.0);

  bool ok = true;
  if (lru.counts != cost.counts) {
    std::printf("FAILED: per-job results diverged between arms\n");
    ok = false;
  } else {
    std::printf("results: all %zu job digests bit-identical across arms\n",
                lru.counts.size());
  }
  if (gain < 0.20) {
    std::printf("FAILED: cost policy reduced makespan by %.1f%% (< 20%%)\n",
                gain * 100.0);
    ok = false;
  }
  if (lru.cache_misses == 0) {
    // The budget did not actually pressure the hot dataset — the comparison
    // is vacuous, so fail loudly instead of reporting a hollow win.
    std::printf("FAILED: LRU arm never healed the hot dataset (no pressure)\n");
    ok = false;
  }
  if (!check_replay(log_path, *cost_metrics)) ok = false;
  return ok ? 0 : 1;
}
