#include "chaos.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "harness.h"
#include "obs/event_log.h"
#include "obs/history.h"
#include "obs/jsonl.h"
#include "obs/sinks.h"

namespace chopper::bench {
namespace {

constexpr std::size_t kNoDataset = ~std::size_t{0};

/// One trial's job graph. When `warm` is set it is materialized first (its
/// cache commit is what a kCachedBlock corruption poisons); `job` is the
/// collected job whose rows are compared across the clean and faulty runs.
struct Trial {
  std::string name;
  engine::DatasetPtr warm;
  engine::DatasetPtr job;
  std::size_t cached_dataset_id = kNoDataset;
};

engine::DatasetPtr chaos_source(std::uint64_t seed, std::size_t parts,
                                std::size_t total) {
  return engine::Dataset::source(
      "chaos-src-" + std::to_string(seed), parts,
      [seed, total](std::size_t index, std::size_t count) {
        engine::Partition p;
        common::Xoshiro256 rng(common::hash_combine(seed, index));
        const std::size_t begin = total * index / count;
        const std::size_t end = total * (index + 1) / count;
        for (std::size_t i = begin; i < end; ++i) {
          engine::Record r;
          r.key = rng.next_below(500);
          r.values = {rng.next_double(), static_cast<double>(i % 31)};
          p.push(std::move(r));
        }
        return p;
      });
}

/// Cached variant: a cached prep stage read by a keyed reduction, so cached
/// blocks exist for corruption to target and a later stage to verify/heal.
Trial cached_trial(std::uint64_t seed) {
  Trial t;
  t.name = "cached-agg";
  auto prep = chaos_source(seed, 12, 24'000)
                  ->map("chaos-prep-" + std::to_string(seed),
                        [](const engine::Record& in) {
                          engine::Record r = in;
                          r.values[0] = r.values[0] * 2.0 + 0.125;
                          return r;
                        })
                  ->cache();
  t.warm = prep;
  t.cached_dataset_id = prep->id();
  t.job = prep->reduce_by_key(
      "chaos-cached-agg-" + std::to_string(seed),
      [](engine::Record& acc, const engine::Record& next) {
        acc.values[0] += next.values[0];
        acc.values[1] += next.values[1];
      },
      engine::ShuffleRequest{std::nullopt, 12, false});
  return t;
}

Trial make_trial(std::uint64_t seed, bool tiny) {
  // The graph pick is part of the seed's deterministic identity.
  const std::uint64_t pick =
      common::hash_combine(seed, 0x9e3779b97f4a7c15ULL) % (tiny ? 2 : 4);
  Trial t;
  switch (pick) {
    case 0:
      t.name = "small-agg";
      t.job = service_small_job(seed);
      return t;
    case 1:
      return cached_trial(seed);
    case 2:
      t.name = "kmeans-like";
      t.job = service_kmeans_like_job(seed);
      return t;
    default:
      t.name = "sql-like";
      t.job = service_sql_like_job(seed);
      return t;
  }
}

void update_double(common::Checksum64& c, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  c.update_u64(bits);
}

}  // namespace

std::uint64_t metrics_digest(const engine::MetricsRegistry& reg) {
  common::Checksum64 c;
  for (const auto& s : reg.stages()) {
    c.update_u64(s.stage_id);
    c.update_u64(s.job_id);
    c.update_u64(s.signature);
    c.update_u64(s.num_partitions);
    c.update_u64(s.attempt_count);
    c.update_u64(s.input_records);
    c.update_u64(s.input_bytes);
    c.update_u64(s.output_records);
    c.update_u64(s.output_bytes);
    c.update_u64(s.shuffle_read_bytes);
    c.update_u64(s.shuffle_write_bytes);
    c.update_u64(s.fetch_retries);
    c.update_u64(s.refetched_bytes);
    c.update_u64(s.checksum_failures);
    c.update_u64(s.node_exclusions);
    c.update_u64(s.oom_count);
    c.update_u64(s.recomputed_tasks);
    c.update_u64(s.recomputed_bytes);
    update_double(c, s.recovery_time_s);
    update_double(c, s.sim_time_s);
    update_double(c, s.sim_start_s);
    c.update_u64(s.tasks.size());
    for (const auto& t : s.tasks) {
      c.update_u64(t.task_index);
      c.update_u64(t.node);
      c.update_u64(t.attempts);
      c.update_u64(t.fetch_retries);
      c.update_u64(t.records_in);
      c.update_u64(t.records_out);
      c.update_u64(t.bytes_in);
      c.update_u64(t.bytes_out);
      c.update_u64(t.shuffle_read_remote);
      c.update_u64(t.shuffle_read_local);
      update_double(c, t.sim_start);
      update_double(c, t.sim_end);
      update_double(c, t.compute_s);
      update_double(c, t.fetch_s);
    }
  }
  for (const auto& j : reg.jobs()) {
    c.update_u64(j.job_id);
    c.update_u64(j.failed ? 1 : 0);
    c.update_u64(j.stage_attempts);
    c.update_u64(j.recomputed_tasks);
    c.update_u64(j.lost_bytes);
    c.update_u64(j.recomputed_bytes);
    c.update_u64(j.fetch_retries);
    c.update_u64(j.refetched_bytes);
    c.update_u64(j.checksum_failures);
    c.update_u64(j.node_exclusions);
    c.update_u64(j.oom_count);
    update_double(c, j.sim_time_s);
    update_double(c, j.recovery_time_s);
  }
  return c.digest();
}

namespace {

struct RunOut {
  std::uint64_t warm_count = 0;
  engine::JobResult job;
  std::vector<engine::Record> rows;  ///< collected rows, sorted
  double total_s = 0.0;              ///< warm + main simulated time
  std::size_t stage_attempts = 0;    ///< across both jobs
  std::uint64_t shuffle_read = 0;    ///< committed stage read totals
};

RunOut run_trial(engine::Engine& eng, const Trial& trial) {
  RunOut out;
  if (trial.warm != nullptr) {
    const auto w = eng.count(trial.warm, "chaos-warm");
    out.warm_count = w.count;
    out.total_s += w.sim_time_s;
    out.stage_attempts += w.stage_attempts;
  }
  out.job = eng.collect(trial.job, "chaos-job");
  out.total_s += out.job.sim_time_s;
  out.stage_attempts += out.job.stage_attempts;
  out.rows = out.job.records;
  std::sort(out.rows.begin(), out.rows.end(),
            [](const engine::Record& a, const engine::Record& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.values < b.values;
            });
  for (const auto& s : eng.metrics().stages()) {
    out.shuffle_read += s.shuffle_read_bytes;
  }
  return out;
}

}  // namespace

ChaosReport chaos_run(std::uint64_t seed, bool tiny) {
  ChaosReport r;
  r.seed = seed;

  const Trial base_trial = make_trial(seed, tiny);
  r.workload = base_trial.name;

  // -- clean reference run ---------------------------------------------------
  const engine::EngineOptions base_opts = vanilla_options();
  engine::Engine base_eng(bench_cluster(), base_opts);
  RunOut base;
  try {
    base = run_trial(base_eng, base_trial);
  } catch (const engine::JobAbortedError& e) {
    r.failure = std::string("baseline aborted: ") + e.what();
    return r;
  }
  r.baseline_s = base.total_s;

  // -- compose the fault schedule -------------------------------------------
  common::Xoshiro256 rng(common::hash_combine(0xc4a05eedULL, seed));
  engine::EngineOptions opts = base_opts;
  const std::size_t num_nodes = bench_cluster().nodes().size();

  // Transient flakiness is always on. The per-fetch probability stays low:
  // escalation fires on max_fetch_attempts consecutive failures of one
  // segment, and with dozens of segments per stage a high probability would
  // make every attempt escalate until the stage-retry budget aborts the job.
  auto& fl = opts.flaky_schedule;
  fl.fetch_failure_prob = 0.01 + 0.07 * rng.next_double();
  fl.seed = common::hash_combine(seed, 0xf1a4ULL);
  const std::size_t n_flaky = 1 + rng.next_below(2);
  for (std::size_t i = 0; i < n_flaky; ++i) {
    fl.nodes.push_back(rng.next_below(num_nodes));
  }
  r.flaky_nodes = fl.nodes.size();
  opts.failure_schedule.max_stage_attempts = 8;

  const std::size_t n_corr = rng.next_below(3);
  for (std::size_t i = 0; i < n_corr; ++i) {
    engine::CorruptionInjection inj;
    inj.target = engine::CorruptionInjection::Target::kShuffleRow;
    inj.stage_id = rng.next_below(6);
    inj.task = rng.next_below(64);
    inj.byte_offset = rng.next_below(1 << 14);
    opts.corruption_schedule.corruptions.push_back(inj);
  }
  if (base_trial.cached_dataset_id != kNoDataset && rng.next_double() < 0.7) {
    engine::CorruptionInjection inj;
    inj.target = engine::CorruptionInjection::Target::kCachedBlock;
    inj.task = rng.next_below(16);
    inj.byte_offset = rng.next_below(1 << 14);
    opts.corruption_schedule.corruptions.push_back(inj);
    // dataset_id is patched below to the faulty graph's cache instance.
  }
  const bool cached_corruption =
      !opts.corruption_schedule.corruptions.empty() &&
      opts.corruption_schedule.corruptions.back().target ==
          engine::CorruptionInjection::Target::kCachedBlock;
  r.corruptions = opts.corruption_schedule.corruptions.size();

  if (rng.next_double() < 0.5) {
    engine::NodeFailure nf;
    nf.node = rng.next_below(num_nodes);
    // Inside the run's window — including, for some seeds, inside a fetch
    // backoff of a flaky segment (the composed-fault case DESIGN.md §14
    // calls out).
    nf.at_sim_time = base.total_s * (0.15 + 0.7 * rng.next_double());
    if (rng.next_double() < 0.5) nf.rejoin_after_s = base.total_s * 0.25;
    opts.failure_schedule.failures.push_back(nf);
    r.node_failures = 1;
  }

  if (rng.next_double() < 0.4) {
    engine::OomInjection oom;
    oom.stage_id = rng.next_below(3);
    oom.attempts = 1;
    oom.task = rng.next_below(16);
    opts.oom_schedule.ooms.push_back(oom);
    // Keep the retry at the same partition count: adaptive repartition
    // changes reduction grouping and with it the floating-point sum order,
    // which would (legitimately) break bit-identity with the baseline.
    opts.memory.oom_repartition_after = 100;
    r.oom_injections = 1;
  }

  // -- faulty run, with the full event history recorded ---------------------
  const Trial fault_trial = make_trial(seed, tiny);
  if (cached_corruption) {
    opts.corruption_schedule.corruptions.back().dataset_id =
        fault_trial.cached_dataset_id;
  }
  engine::Engine eng(bench_cluster(), opts);
  obs::EventLog log;
  auto ring = std::make_shared<obs::RingSink>(1 << 16);
  log.attach(ring);
  eng.set_event_log(&log);
  RunOut fault;
  try {
    fault = run_trial(eng, fault_trial);
  } catch (const engine::JobAbortedError& e) {
    r.failure = std::string("faulty run aborted: ") + e.what();
    return r;
  }
  log.detach_all();

  r.faulty_s = fault.total_s;
  r.stage_attempts = fault.stage_attempts;
  r.fetch_retries = fault.job.fetch_retries;
  r.refetched_bytes = fault.job.refetched_bytes;
  r.checksum_failures = fault.job.checksum_failures;
  r.node_exclusions = fault.job.node_exclusions;

  // -- differential checks ---------------------------------------------------
  if (fault.warm_count != base.warm_count) {
    r.failure = "warm-job count diverged";
    return r;
  }
  if (fault.rows != base.rows) {
    r.failure = "result rows diverged from the fault-free run";
    return r;
  }
  // The lower bound only holds while task placement matches the clean run:
  // on the heterogeneous bench cluster a node death, a heal or a stage
  // retry can re-place work onto *faster* workers and legitimately beat the
  // baseline. Pure in-place retries can only add time.
  if (r.node_failures == 0 && r.checksum_failures == 0 &&
      fault.stage_attempts == base.stage_attempts &&
      fault.total_s + 1e-9 < base.total_s) {
    r.failure = "faulty run finished faster than the clean run";
    return r;
  }
  if (fault.total_s > base.total_s * 50.0 + 30.0) {
    r.failure = "makespan inflation out of bounds";
    return r;
  }
  // In-place retries only: the logical shuffle volume must be unchanged —
  // re-transferred bytes belong in refetched_bytes, never the read totals.
  if (r.checksum_failures == 0 && r.node_failures == 0 &&
      r.oom_injections == 0 && fault.stage_attempts == base.stage_attempts &&
      fault.shuffle_read != base.shuffle_read) {
    r.failure = "shuffle-read totals diverged without any stage retry";
    return r;
  }

  // -- history round-trip + replay parity ------------------------------------
  if (ring->dropped() > 0) {
    r.failure = "event ring overflowed";
    return r;
  }
  std::vector<obs::Event> events = ring->snapshot();
  for (const auto& e : events) {
    const auto back = obs::from_jsonl(obs::to_jsonl(e));
    if (!back || !(*back == e)) {
      r.failure = "event did not survive a JSONL round-trip (kind " +
                  std::string(obs::to_string(e.kind)) + ")";
      return r;
    }
  }
  engine::MetricsRegistry replayed;
  obs::HistoryReader(std::move(events)).replay_into(replayed);
  if (metrics_digest(replayed) != metrics_digest(eng.metrics())) {
    r.failure = "history replay diverged from live metrics";
    return r;
  }

  r.ok = true;
  return r;
}

}  // namespace chopper::bench
