// Differential chaos harness (DESIGN.md §14): compose deterministic fault
// schedules from a PRNG seed, run the same job graph with and without them
// on identical clusters, and assert the faulty run is a slower but
// bit-identical replica of the clean one.
//
// Checks per trial:
//  * result rows (sorted) are exactly equal to the fault-free run's;
//  * the event history round-trips through the JSONL wire format and a
//    HistoryReader replay reproduces the live metrics (stage and job
//    scalars digest-equal);
//  * makespan inflation stays within a generous deterministic bound;
//  * with only in-place fetch retries (no escalation, heal, or OOM) the
//    logical shuffle-read totals match the baseline exactly — retried
//    bytes must surface in refetched_bytes, never in the read counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace chopper::engine {
class MetricsRegistry;
}

namespace chopper::bench {

/// Digest of the fields the event log serializes for stages, tasks and jobs
/// (everything that defines a run's identity; wall-clock and recovery
/// telemetry excluded). Live metrics, a HistoryReader replay, and a
/// crash-resumed re-execution of the same run must all agree on it.
std::uint64_t metrics_digest(const engine::MetricsRegistry& reg);

/// Outcome of one differential chaos trial (deterministic in `seed`).
struct ChaosReport {
  std::uint64_t seed = 0;
  std::string workload;
  bool ok = false;
  std::string failure;  ///< first divergence; empty when ok

  // Composed schedule.
  std::size_t flaky_nodes = 0;
  std::size_t corruptions = 0;
  std::size_t node_failures = 0;
  std::size_t oom_injections = 0;

  // Run outcomes.
  double baseline_s = 0.0;
  double faulty_s = 0.0;
  std::size_t stage_attempts = 0;
  std::size_t fetch_retries = 0;
  std::uint64_t refetched_bytes = 0;
  std::size_t checksum_failures = 0;
  std::size_t node_exclusions = 0;
};

/// Run one differential chaos trial. `tiny` restricts the trial to the
/// smallest job graph for CI smoke runs.
ChaosReport chaos_run(std::uint64_t seed, bool tiny);

}  // namespace chopper::bench
