// Differential chaos fuzzer (DESIGN.md §14): sweep seeds through the chaos
// harness. Each seed deterministically composes node-failure, OOM, flaky-
// fetch and corruption schedules, runs a job graph with and without them,
// and must produce bit-identical results, a replayable event history and a
// bounded makespan. Any divergence fails the sweep (exit 1).
//
//   chaos_fuzz [--seeds N] [--start S] [--tiny] [--json PATH]
//
// --tiny restricts trials to the smallest job graphs for CI smoke runs;
// --json mirrors the per-seed table into a JSON artifact.
#include <cstdio>
#include <cstring>
#include <string>

#include "chaos.h"
#include "harness.h"

using namespace chopper;

int main(int argc, char** argv) {
  std::size_t seeds = 100;
  std::size_t start = 0;
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--start") == 0 && i + 1 < argc) {
      start = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      ++i;  // handled by bench::json_flag below
    } else {
      std::fprintf(stderr,
                   "usage: chaos_fuzz [--seeds N] [--start S] [--tiny] "
                   "[--json PATH]\n");
      return 2;
    }
  }

  bench::print_header("Differential chaos fuzzer: faulty runs must be "
                      "bit-identical, replayable and bounded");
  bench::Table table({"seed", "workload", "flaky", "corrupt", "nodefail",
                      "oom", "base(s)", "faulty(s)", "retries", "cksum",
                      "excl", "verdict"});
  std::size_t failures = 0;
  for (std::size_t s = 0; s < seeds; ++s) {
    const bench::ChaosReport r = bench::chaos_run(start + s, tiny);
    if (!r.ok) {
      ++failures;
      std::fprintf(stderr, "seed %llu (%s): %s\n",
                   static_cast<unsigned long long>(r.seed),
                   r.workload.c_str(), r.failure.c_str());
    }
    table.add_row({std::to_string(r.seed), r.workload,
                   std::to_string(r.flaky_nodes),
                   std::to_string(r.corruptions),
                   std::to_string(r.node_failures),
                   std::to_string(r.oom_injections),
                   bench::Table::num(r.baseline_s, 2),
                   bench::Table::num(r.faulty_s, 2),
                   std::to_string(r.fetch_retries),
                   std::to_string(r.checksum_failures),
                   std::to_string(r.node_exclusions),
                   r.ok ? "ok" : "FAIL: " + r.failure});
  }
  table.print();
  std::printf("%zu/%zu seeds bit-identical with replay parity\n",
              seeds - failures, seeds);

  const std::string json = bench::json_flag(argc, argv);
  if (!json.empty() && !table.write_json(json, "chaos_fuzz")) return 1;
  return failures == 0 ? 0 : 1;
}
