// Differential crash-resume fuzzer (DESIGN.md §16, ISSUE 8 acceptance).
//
// For each workload (KMeans, SQL, PageRank) the bench first records a
// reference run with checkpointing attached but no crash — its metrics
// digest is the identity an interrupted-and-resumed run must reproduce
// bit-for-bit. It then kills the driver deterministically at every stage
// barrier (both just before the barrier line becomes durable and just
// after) plus a PRNG sample of raw event sequence numbers, resumes each
// crashed checkpoint directory in a fresh engine, and asserts:
//
//  * digest parity — the resumed run's stage/task/job metrics equal the
//    uninterrupted reference exactly (wall-clock and recovery telemetry
//    excluded by construction);
//  * strictly less work — whenever the plan adopted a committed prefix,
//    the resumed run executed fewer stages than a cold rerun would;
//  * fault arm — with an OOM injection schedule armed the engine must
//    refuse adoption (full deterministic rerun) and still match the
//    faulty reference digest.
//
// `--tiny` strides the barrier sweep and shrinks the seq sample for CI
// smoke (still >= 25 crash points across the three workloads); `--json`
// mirrors the table into a BENCH_resume.json artifact.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "chaos.h"
#include "ckpt/checkpoint.h"
#include "ckpt/resume.h"
#include "common/hash.h"
#include "common/rng.h"
#include "harness.h"
#include "obs/event_log.h"
#include "workloads/pagerank.h"

namespace fs = std::filesystem;
using namespace chopper;

namespace {

struct Case {
  std::string name;
  std::unique_ptr<workloads::Workload> wl;
};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  {
    workloads::KMeansParams p = bench::kmeans_params();
    p.k = 4;
    p.iterations = 2;
    p.init_rounds = 2;
    p.source_partitions = 12;
    cases.push_back({"kmeans", std::make_unique<workloads::KMeansWorkload>(p)});
  }
  {
    workloads::SqlParams p = bench::sql_params();
    p.fact_partitions = 12;
    p.dim_partitions = 6;
    p.fact_agg_partitions = 12;
    p.dim_agg_partitions = 6;
    cases.push_back({"sql", std::make_unique<workloads::SqlWorkload>(p)});
  }
  {
    workloads::PageRankParams p;
    p.num_pages = 4000;
    p.avg_out_degree = 6;
    p.iterations = 2;
    p.source_partitions = 8;
    cases.push_back(
        {"pagerank", std::make_unique<workloads::PageRankWorkload>(p)});
  }
  return cases;
}

struct RunOut {
  bool crashed = false;
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t barriers = 0;
  std::size_t total_stages = 0;
  std::size_t resumed_stages = 0;
  std::uint64_t restored_bytes = 0;
};

/// One driver-process lifetime: engine + event log + checkpoint writer,
/// optionally primed with a resume ledger, optionally scheduled to crash.
RunOut run_attempt(const workloads::Workload& wl, double scale,
                   const engine::EngineOptions& opts, const std::string& dir,
                   const ckpt::CrashSchedule& crash,
                   engine::ResumeLedger* ledger) {
  RunOut out;
  engine::Engine eng(bench::bench_cluster(), opts);
  obs::EventLog log;
  ckpt::CheckpointOptions co;
  co.crash = crash;
  auto writer = std::make_shared<ckpt::CheckpointWriter>(dir, co);
  log.attach(writer);
  eng.set_event_log(&log);
  eng.set_checkpoint_hook(writer.get());
  if (ledger != nullptr) eng.set_resume_ledger(ledger);
  try {
    wl.run(eng, scale);
  } catch (const ckpt::SimulatedCrash&) {
    out.crashed = true;
  }
  log.detach_all();
  out.digest = bench::metrics_digest(eng.metrics());
  out.events = writer->events_appended();
  out.barriers = writer->barriers_seen();
  out.total_stages = eng.metrics().stages().size();
  for (const auto& j : eng.metrics().jobs()) {
    out.resumed_stages += j.resumed_stages;
    out.restored_bytes += j.restored_bytes;
  }
  return out;
}

struct ArmStats {
  std::size_t trials = 0;
  std::size_t crashed = 0;
  std::size_t adopted_trials = 0;   ///< resumed run adopted >=1 stage
  std::size_t parity_failures = 0;  ///< digest diverged from the reference
  std::size_t adopt_failures = 0;   ///< wrong adoption decision
  std::size_t stages_adopted = 0;
  std::size_t stages_total = 0;  ///< cold-rerun stage count, summed
  std::uint64_t restored_bytes = 0;
};

/// Crash the driver with `crash`, then resume the directory in a fresh
/// process and check it against the reference digest. `expect_adoption`
/// distinguishes the clean arm (committed prefixes must be adopted) from
/// the fault arm (the engine must refuse and re-run everything).
void run_trial(ArmStats& st, const workloads::Workload& wl, double scale,
               const engine::EngineOptions& opts, const std::string& root,
               const ckpt::CrashSchedule& crash, std::uint64_t want_digest,
               std::size_t cold_stages, bool expect_adoption,
               const char* label) {
  const std::string dir = root + "/t" + std::to_string(st.trials);
  fs::remove_all(dir);
  ++st.trials;

  const RunOut crashed = run_attempt(wl, scale, opts, dir, crash, nullptr);
  if (crashed.crashed) ++st.crashed;

  ckpt::ResumePlan plan = ckpt::build_resume_plan(dir);
  bool any_adoptable = false;
  for (const auto& j : plan.jobs) {
    if (!j.full_rerun && j.committed_stages > 0) any_adoptable = true;
  }

  RunOut resumed = run_attempt(wl, scale, opts, dir, {}, &plan.ledger);
  st.stages_adopted += resumed.resumed_stages;
  st.stages_total += cold_stages;
  st.restored_bytes += resumed.restored_bytes;
  if (resumed.resumed_stages > 0) ++st.adopted_trials;

  if (resumed.digest != want_digest) {
    if (st.parity_failures == 0) {
      std::fprintf(stderr,
                   "FAIL [%s %s]: resumed digest %016llx != reference %016llx "
                   "(crash seq=%lld barrier=%lld post=%d)\n",
                   wl.name().c_str(), label,
                   static_cast<unsigned long long>(resumed.digest),
                   static_cast<unsigned long long>(want_digest),
                   static_cast<long long>(crash.at_event_seq),
                   static_cast<long long>(crash.at_stage_barrier),
                   crash.after_barrier_flush ? 1 : 0);
    }
    ++st.parity_failures;
  }
  if (expect_adoption && any_adoptable && resumed.resumed_stages == 0) {
    // Strictly-less-work guarantee: a provably clean prefix must be skipped,
    // not re-executed.
    std::fprintf(stderr,
                 "FAIL [%s %s]: plan had %zu committed stage(s) but the "
                 "resumed run adopted none\n",
                 wl.name().c_str(), label, plan.committed_stages);
    ++st.adopt_failures;
  }
  if (!expect_adoption && resumed.resumed_stages != 0) {
    std::fprintf(stderr,
                 "FAIL [%s %s]: fault-injection run adopted %zu stage(s); "
                 "retained schedules must force a full rerun\n",
                 wl.name().c_str(), label, resumed.resumed_stages);
    ++st.adopt_failures;
  }
  fs::remove_all(dir);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_flag(argc, argv);
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  const double scale = tiny ? 0.02 : 0.05;
  const std::size_t seq_samples = tiny ? 9 : 34;
  const std::size_t barrier_stride = tiny ? 2 : 1;

  bench::print_header(
      "Crash-resume fuzz: kill the driver at every stage barrier (+ sampled "
      "event seqs), resume, and require bit-identical metrics digests");

  const std::string root = "crash_resume_wals";
  fs::remove_all(root);

  bench::Table table({"workload", "arm", "trials", "crashed", "adopted",
                      "work saved(%)", "restored(KB)", "parity fail",
                      "adopt fail"});
  std::vector<Case> cases = make_cases();
  std::size_t failures = 0;
  std::size_t total_trials = 0;

  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const Case& c = cases[ci];
    const engine::EngineOptions clean_opts = bench::vanilla_options();
    const std::string wroot = root + "/" + c.name;

    // -- clean arm: reference, then the crash-point sweep --------------------
    const RunOut ref =
        run_attempt(*c.wl, scale, clean_opts, wroot + "/ref", {}, nullptr);
    fs::remove_all(wroot + "/ref");
    std::printf("%s: reference %llu events, %llu barriers, %zu stages, "
                "digest %016llx\n",
                c.name.c_str(), static_cast<unsigned long long>(ref.events),
                static_cast<unsigned long long>(ref.barriers),
                ref.total_stages,
                static_cast<unsigned long long>(ref.digest));

    ArmStats clean;
    for (std::uint64_t b = 0; b < ref.barriers; b += barrier_stride) {
      ckpt::CrashSchedule cs;
      cs.at_stage_barrier = static_cast<std::int64_t>(b);
      cs.after_barrier_flush = false;  // barrier line lost: stage uncommitted
      run_trial(clean, *c.wl, scale, clean_opts, wroot, cs, ref.digest,
                ref.total_stages, true, "barrier-pre");
      cs.after_barrier_flush = true;  // stage committed, death right after
      run_trial(clean, *c.wl, scale, clean_opts, wroot, cs, ref.digest,
                ref.total_stages, true, "barrier-post");
    }
    common::Xoshiro256 rng(common::hash_combine(0xc0a5eedULL, ci));
    for (std::size_t s = 0; s < seq_samples; ++s) {
      ckpt::CrashSchedule cs;
      cs.at_event_seq = static_cast<std::int64_t>(rng.next_below(ref.events));
      cs.torn_tail = (s % 2 == 0);
      run_trial(clean, *c.wl, scale, clean_opts, wroot, cs, ref.digest,
                ref.total_stages, true, "seq");
    }

    // -- fault arm: OOM injection armed => adoption refused ------------------
    engine::EngineOptions oom_opts = clean_opts;
    engine::OomInjection oom;
    oom.stage_id = 1;
    oom.attempts = 1;
    oom.task = 0;
    oom_opts.oom_schedule.ooms.push_back(oom);
    // Keep the OOM retry at the same partition count so the faulty timeline
    // is itself deterministic (same guard as bench/chaos.cc).
    oom_opts.memory.oom_repartition_after = 100;

    const RunOut fref =
        run_attempt(*c.wl, scale, oom_opts, wroot + "/fref", {}, nullptr);
    fs::remove_all(wroot + "/fref");
    ArmStats fault;
    {
      ckpt::CrashSchedule cs;
      cs.at_stage_barrier = static_cast<std::int64_t>(fref.barriers / 2);
      cs.after_barrier_flush = true;
      run_trial(fault, *c.wl, scale, oom_opts, wroot, cs, fref.digest,
                fref.total_stages, false, "oom-barrier");
      ckpt::CrashSchedule cs2;
      cs2.at_event_seq = static_cast<std::int64_t>(fref.events / 2);
      run_trial(fault, *c.wl, scale, oom_opts, wroot, cs2, fref.digest,
                fref.total_stages, false, "oom-seq");
    }

    for (const auto* arm : {&clean, &fault}) {
      const bool is_clean = arm == &clean;
      const double saved =
          arm->stages_total == 0
              ? 0.0
              : 100.0 * static_cast<double>(arm->stages_adopted) /
                    static_cast<double>(arm->stages_total);
      table.add_row({c.name, is_clean ? "clean" : "oom-inject",
                     std::to_string(arm->trials),
                     std::to_string(arm->crashed),
                     std::to_string(arm->adopted_trials),
                     bench::Table::num(saved, 1),
                     bench::Table::num(
                         static_cast<double>(arm->restored_bytes) / 1024.0, 1),
                     std::to_string(arm->parity_failures),
                     std::to_string(arm->adopt_failures)});
      failures += arm->parity_failures + arm->adopt_failures;
      total_trials += arm->trials;
    }
  }

  std::printf("\n");
  table.print();
  if (!json_path.empty()) table.write_json(json_path, "crash_resume");
  fs::remove_all(root);

  std::printf("\ncrash-resume fuzz: %zu crash points across %zu workloads, "
              "%zu failure(s)\n",
              total_trials, cases.size(), failures);
  return failures == 0 ? 0 : 1;
}
