// Extension bench (not in the paper): CHOPPER on PageRank. The iterative
// join is re-planned as one co-partitioned subgraph; repartition insertion
// may fire on the cached links table if the gamma rule pays off.
#include "harness.h"
#include "workloads/pagerank.h"

using namespace chopper;

int main() {
  workloads::PageRankParams params;
  params.num_pages = 120'000;
  params.avg_out_degree = 8;
  params.iterations = 3;
  params.source_partitions = 300;
  const workloads::PageRankWorkload wl(params);

  auto vanilla = bench::run_vanilla(wl);

  core::Chopper chopper(bench::bench_cluster(), bench::chopper_options());
  std::vector<core::PlannedStage> plan;
  auto optimized = bench::run_chopper(chopper, wl, &plan);

  bench::print_header("Extension: PageRank under CHOPPER (not in the paper)");
  bench::Table table({"config", "time(s)", "join remote KB", "stages"});
  auto join_remote = [](const engine::Engine& eng) {
    std::uint64_t remote = 0;
    for (const auto& s : eng.metrics().stages()) {
      if (s.anchor_op == engine::OpKind::kJoin) {
        for (const auto& t : s.tasks) remote += t.shuffle_read_remote;
      }
    }
    return static_cast<double>(remote) / 1024.0;
  };
  table.add_row({"vanilla", bench::Table::num(vanilla->metrics().total_sim_time(), 2),
                 bench::Table::num(join_remote(*vanilla), 1),
                 std::to_string(vanilla->metrics().stages().size())});
  table.add_row({"CHOPPER",
                 bench::Table::num(optimized->metrics().total_sim_time(), 2),
                 bench::Table::num(join_remote(*optimized), 1),
                 std::to_string(optimized->metrics().stages().size())});
  table.print();

  int insertions = 0, grouped = 0;
  for (const auto& ps : plan) {
    insertions += ps.insert_repartition;
    grouped += ps.group >= 0;
  }
  std::printf("\nplan: %d stages co-partitioned, %d repartition insertions\n",
              grouped, insertions);
  return 0;
}
