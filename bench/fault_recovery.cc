// Fault-recovery overhead: lineage-based recovery cost as a function of
// *when* a node dies and *how many partitions* the job uses (DESIGN.md §9).
//
// A shuffle-heavy aggregation runs on the paper cluster; one worker is
// killed at a fraction of the no-failure makespan. The scheduler detects
// the loss (fetch failure or mid-stage death), replays only the lost map
// tasks on the survivors, and prices the recomputation into the simulated
// time. More partitions mean finer-grained loss: each lost map task is
// cheaper to replay, so recovery overhead should shrink as P grows — the
// fault-tolerance angle on the paper's partitioning trade-off.
#include "harness.h"

using namespace chopper;

namespace {

constexpr std::size_t kRecords = 120'000;

engine::DatasetPtr aggregation(std::size_t num_partitions) {
  engine::ShuffleRequest req;
  req.num_partitions = num_partitions;
  // The map side uses the same partition count as the reduce side, so P
  // also controls how finely the lost map outputs are sliced for replay.
  return engine::Dataset::source(
             "events", num_partitions,
             [](std::size_t index, std::size_t count) {
               engine::Partition p;
               const std::size_t begin = kRecords * index / count;
               const std::size_t end = kRecords * (index + 1) / count;
               for (std::size_t i = begin; i < end; ++i) {
                 engine::Record r;
                 r.key = (i * 2654435761u) % 9973;
                 r.values = {1.0, static_cast<double>(i % 97)};
                 p.push(std::move(r));
               }
               return p;
             })
      ->map("project",
            [](const engine::Record& r) {
              engine::Record out = r;
              out.values[1] *= 0.5;
              return out;
            })
      ->reduce_by_key(
          "sum",
          [](engine::Record& acc, const engine::Record& next) {
            acc.values[0] += next.values[0];
            acc.values[1] += next.values[1];
          },
          req, /*work_per_record=*/8.0);
}

struct Run {
  double time = 0.0;
  double recovery = 0.0;
  std::size_t recomputed = 0;
  std::size_t attempts = 0;
};

Run run_once(std::size_t num_partitions, double fail_at) {
  engine::EngineOptions opts = bench::vanilla_options();
  if (fail_at >= 0.0) {
    opts.failure_schedule.failures.push_back(engine::NodeFailure{
        /*node=*/1, /*at_sim_time=*/fail_at, /*at_stage_id=*/-1,
        /*rejoin_after_s=*/-1.0});
  }
  engine::Engine eng(bench::bench_cluster(), opts);
  const auto res = eng.count(aggregation(num_partitions), "fault_recovery");
  return {res.sim_time_s, res.recovery_time_s, res.recomputed_tasks,
          res.stage_attempts};
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Fault recovery: node death time x partition count (overhead vs "
      "no-failure run)");
  bench::Table table({"P", "fail@ (frac)", "time(s)", "baseline(s)",
                      "overhead(%)", "recovery(s)", "recomputed", "attempts"});

  for (const std::size_t parts : {60UL, 150UL, 300UL, 600UL}) {
    const Run base = run_once(parts, -1.0);
    table.add_row({std::to_string(parts), "none",
                   bench::Table::num(base.time, 2),
                   bench::Table::num(base.time, 2), "0.0",
                   bench::Table::num(0.0, 2), "0",
                   std::to_string(base.attempts)});
    for (const double frac : {0.25, 0.5, 0.75}) {
      const Run r = run_once(parts, frac * base.time);
      table.add_row(
          {std::to_string(parts), bench::Table::num(frac, 2),
           bench::Table::num(r.time, 2), bench::Table::num(base.time, 2),
           bench::Table::num(100.0 * (r.time - base.time) / base.time, 1),
           bench::Table::num(r.recovery, 2), std::to_string(r.recomputed),
           std::to_string(r.attempts)});
    }
  }
  table.print();
  const std::string json = bench::json_flag(argc, argv);
  if (!json.empty() && !table.write_json(json, "fault_recovery")) return 1;
  std::printf(
      "\noverhead = extra simulated time vs the no-failure run; recomputed =\n"
      "map tasks replayed from lineage. Finer partitioning (larger P) loses\n"
      "less work per dead node and recovers more cheaply.\n");
  return 0;
}
