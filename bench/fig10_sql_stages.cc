// Fig. 10: execution time per SQL stage, CHOPPER vs Spark. The paper's
// stage 4 (the join) runs markedly faster under CHOPPER despite equal
// logical shuffle volume, because co-partitioning makes its reads local.
#include "harness.h"

using namespace chopper;

int main() {
  const workloads::SqlWorkload wl(bench::sql_params());

  auto vanilla = bench::run_vanilla(wl);
  core::Chopper chopper(bench::bench_cluster(), bench::chopper_options());
  auto optimized = bench::run_chopper(chopper, wl);

  bench::print_header(
      "Fig. 10: execution time per SQL stage, CHOPPER vs Spark");
  const auto& vs = vanilla->metrics().stages();
  const auto& cs = optimized->metrics().stages();
  bench::Table table({"stage", "name", "CHOPPER(s)", "Spark(s)"});
  for (std::size_t s = 0; s < std::min(vs.size(), cs.size()); ++s) {
    std::string name = cs[s].name;
    if (name.size() > 40) name = name.substr(0, 37) + "...";
    table.add_row({std::to_string(s), name,
                   bench::Table::num(cs[s].sim_time_s, 3),
                   bench::Table::num(vs[s].sim_time_s, 3)});
  }
  table.print();

  std::printf("\ntotal: CHOPPER %.2fs vs Spark %.2fs (%.1f%% improvement)\n",
              optimized->metrics().total_sim_time(),
              vanilla->metrics().total_sim_time(),
              100.0 *
                  (vanilla->metrics().total_sim_time() -
                   optimized->metrics().total_sim_time()) /
                  vanilla->metrics().total_sim_time());
  return 0;
}
