// Fig. 11-14: resource utilization time series (CPU %, memory %, packets/s,
// transactions/s) for all three workloads under Spark and CHOPPER, sampled
// per simulated second and averaged over the cluster nodes.
#include "harness.h"

using namespace chopper;

namespace {

void print_series(const std::string& label, engine::Engine& eng) {
  const auto samples = eng.timeline().samples();
  // Down-sample long runs so the table stays readable.
  const std::size_t stride = std::max<std::size_t>(1, samples.size() / 12);
  bench::Table table({"t(s)", "cpu(%)", "mem(%)", "packets/s", "trans/s"});
  for (std::size_t i = 0; i < samples.size(); i += stride) {
    const auto& s = samples[i];
    table.add_row({bench::Table::num(s.t, 0), bench::Table::num(s.cpu_pct, 1),
                   bench::Table::num(s.mem_pct, 1),
                   bench::Table::num(s.packets_per_s, 0),
                   bench::Table::num(s.transactions_per_s, 0)});
  }
  std::printf("\n-- %s --\n", label.c_str());
  table.print();

  double cpu = 0.0, mem = 0.0, pkt = 0.0, trans = 0.0;
  for (const auto& s : samples) {
    cpu += s.cpu_pct;
    mem += s.mem_pct;
    pkt += s.packets_per_s;
    trans += s.transactions_per_s;
  }
  const double n = std::max<std::size_t>(1, samples.size());
  std::printf("means: cpu %.1f%%  mem %.1f%%  packets/s %.0f  trans/s %.0f\n",
              cpu / n, mem / n, pkt / n, trans / n);
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 11-14: per-second utilization (cluster average), Spark vs "
      "CHOPPER");

  auto run_pair = [&](const workloads::Workload& wl) {
    auto vanilla = bench::run_vanilla(wl);
    print_series(wl.name() + std::string("-Spark"), *vanilla);
    core::Chopper chopper(bench::bench_cluster(), bench::chopper_options());
    auto optimized = bench::run_chopper(chopper, wl);
    print_series(wl.name() + std::string("-CHOPPER"), *optimized);
  };

  run_pair(workloads::PcaWorkload(bench::pca_params()));
  run_pair(workloads::KMeansWorkload(bench::kmeans_params()));
  run_pair(workloads::SqlWorkload(bench::sql_params()));
  return 0;
}
