// Fig. 2: KMeans execution time per stage under different partition counts
// (paper Sec. II-B workload study; 7.3 GB-equivalent input, 20 stages,
// partitions swept 100..500 via a fixed plan).
#include "harness.h"
#include "chopper/config_plan.h"

using namespace chopper;

int main(int argc, char** argv) {
  const std::string json_path = bench::json_flag(argc, argv);
  const std::vector<std::size_t> partition_counts = {100, 200, 300, 400, 500};
  const workloads::KMeansWorkload wl(bench::kmeans_params());
  const double scale = bench::kmeans_study_scale();

  // stage_times[p_index][stage_id]
  std::vector<std::vector<double>> stage_times;
  for (const std::size_t p : partition_counts) {
    engine::Engine eng(bench::bench_cluster(), bench::vanilla_options());
    eng.set_plan_provider(std::make_shared<core::FixedPlanProvider>(
        engine::PartitionerKind::kHash, p));
    wl.run(eng, scale);
    std::vector<double> times;
    for (const auto& s : eng.metrics().stages()) times.push_back(s.sim_time_s);
    stage_times.push_back(std::move(times));
  }

  bench::print_header(
      "Fig. 2: KMeans execution time per stage vs number of partitions "
      "(simulated seconds; stage 0 listed for completeness)");
  std::vector<std::string> cols = {"stage"};
  for (const std::size_t p : partition_counts) {
    cols.push_back("P=" + std::to_string(p));
  }
  bench::Table table(cols);
  const std::size_t stages = stage_times.front().size();
  for (std::size_t s = 0; s < stages; ++s) {
    std::vector<std::string> row = {std::to_string(s)};
    for (std::size_t pi = 0; pi < partition_counts.size(); ++pi) {
      row.push_back(bench::Table::num(stage_times[pi][s], 3));
    }
    table.add_row(std::move(row));
  }
  table.print();
  if (!json_path.empty() &&
      !table.write_json(json_path, "fig2_kmeans_stage_times")) {
    return 1;
  }

  // Paper observation: the per-stage optimum varies across stages.
  bench::print_header("Per-stage optimal partition count (arg min over the sweep)");
  bench::Table best({"stage", "best P", "time(s)"});
  for (std::size_t s = 0; s < stages; ++s) {
    std::size_t arg = 0;
    for (std::size_t pi = 1; pi < partition_counts.size(); ++pi) {
      if (stage_times[pi][s] < stage_times[arg][s]) arg = pi;
    }
    best.add_row({std::to_string(s), std::to_string(partition_counts[arg]),
                  bench::Table::num(stage_times[arg][s], 3)});
  }
  best.print();
  return 0;
}
