// Fig. 3: execution time of KMeans stage 0 under different partition
// numbers (paper Sec. II-B: worst at 100 partitions, improving toward 500).
#include "harness.h"
#include "chopper/config_plan.h"

using namespace chopper;

int main(int argc, char** argv) {
  const std::string json_path = bench::json_flag(argc, argv);
  const std::vector<std::size_t> partition_counts = {100, 200, 300, 400, 500};
  const workloads::KMeansWorkload wl(bench::kmeans_params());
  const double scale = bench::kmeans_study_scale();

  bench::print_header(
      "Fig. 3: KMeans stage-0 execution time vs number of partitions");
  bench::Table table({"partitions", "stage0 time(s)"});
  for (const std::size_t p : partition_counts) {
    engine::Engine eng(bench::bench_cluster(), bench::vanilla_options());
    eng.set_plan_provider(std::make_shared<core::FixedPlanProvider>(
        engine::PartitionerKind::kHash, p));
    wl.run(eng, scale);
    table.add_row({std::to_string(p),
                   bench::Table::num(eng.metrics().stages().front().sim_time_s, 3)});
  }
  table.print();
  if (!json_path.empty() &&
      !table.write_json(json_path, "fig3_stage0_partitions")) {
    return 1;
  }
  return 0;
}
