// Fig. 4: shuffle data per stage under different partition counts. For
// KMeans only the iterative stages (12-17 in the paper's numbering)
// shuffle; shuffle volume grows with the partition count, and a very large
// count (2000) blows both time and shuffle volume up (paper Sec. II-B).
#include "harness.h"
#include "chopper/config_plan.h"

using namespace chopper;

int main(int argc, char** argv) {
  const std::string json_path = bench::json_flag(argc, argv);
  const std::vector<std::size_t> partition_counts = {100, 200, 300, 400, 500};
  const workloads::KMeansWorkload wl(bench::kmeans_params());
  const double scale = bench::kmeans_study_scale();

  struct Run {
    std::size_t partitions;
    std::vector<std::pair<std::size_t, double>> shuffle_kb;  // (stage, KB)
    double total_time = 0.0;
  };
  std::vector<Run> runs;

  auto sweep = partition_counts;
  sweep.push_back(2000);  // the paper's blow-up comparison
  for (const std::size_t p : sweep) {
    engine::Engine eng(bench::bench_cluster(), bench::vanilla_options());
    eng.set_plan_provider(std::make_shared<core::FixedPlanProvider>(
        engine::PartitionerKind::kHash, p));
    wl.run(eng, scale);
    Run run;
    run.partitions = p;
    run.total_time = eng.metrics().total_sim_time();
    for (const auto& s : eng.metrics().stages()) {
      if (s.shuffle_bytes() > 0) {
        run.shuffle_kb.emplace_back(s.stage_id,
                                    static_cast<double>(s.shuffle_bytes()) / 1024.0);
      }
    }
    runs.push_back(std::move(run));
  }

  bench::print_header(
      "Fig. 4: shuffle data (KB, max of read/write) per shuffle stage vs "
      "partitions (KMeans; only the iterative stages shuffle)");
  std::vector<std::string> cols = {"stage"};
  for (const auto& r : runs) cols.push_back("P=" + std::to_string(r.partitions));
  bench::Table table(cols);
  if (!runs.empty()) {
    for (std::size_t i = 0; i < runs.front().shuffle_kb.size(); ++i) {
      std::vector<std::string> row = {
          std::to_string(runs.front().shuffle_kb[i].first)};
      for (const auto& r : runs) {
        row.push_back(i < r.shuffle_kb.size()
                          ? bench::Table::num(r.shuffle_kb[i].second, 1)
                          : "-");
      }
      table.add_row(std::move(row));
    }
  }
  table.print();
  if (!json_path.empty() && !table.write_json(json_path, "fig4_shuffle_data")) {
    return 1;
  }

  bench::print_header("Total execution time per sweep point (the P=2000 blow-up)");
  bench::Table totals({"partitions", "total time(s)", "last-stage shuffle KB"});
  for (const auto& r : runs) {
    totals.add_row({std::to_string(r.partitions),
                    bench::Table::num(r.total_time, 2),
                    r.shuffle_kb.empty()
                        ? "-"
                        : bench::Table::num(r.shuffle_kb.back().second, 1)});
  }
  totals.print();
  return 0;
}
