// Fig. 7: overall execution time of Spark (vanilla defaults) vs CHOPPER for
// PCA, KMeans and SQL. The paper reports 23.6%, 35.2% and 33.9%
// improvements respectively; the reproduction target is the ordering and
// rough magnitude, on the simulated cluster.
#include "harness.h"

using namespace chopper;

int main(int argc, char** argv) {
  struct Row {
    std::string name;
    double vanilla = 0.0;
    double chopper = 0.0;
  };
  std::vector<Row> rows;

  auto measure = [&](const workloads::Workload& wl) {
    Row row;
    row.name = wl.name();
    row.vanilla = bench::run_vanilla(wl)->metrics().total_sim_time();
    core::Chopper chopper(bench::bench_cluster(), bench::chopper_options());
    row.chopper =
        bench::run_chopper(chopper, wl)->metrics().total_sim_time();
    rows.push_back(row);
  };

  measure(workloads::PcaWorkload(bench::pca_params()));
  measure(workloads::KMeansWorkload(bench::kmeans_params()));
  measure(workloads::SqlWorkload(bench::sql_params()));

  bench::print_header(
      "Fig. 7: total execution time, Spark vs CHOPPER (simulated seconds; "
      "paper gains: PCA 23.6%, KMeans 35.2%, SQL 33.9%)");
  bench::Table table({"workload", "Spark(s)", "CHOPPER(s)", "improvement(%)"});
  for (const auto& r : rows) {
    table.add_row({r.name, bench::Table::num(r.vanilla, 2),
                   bench::Table::num(r.chopper, 2),
                   bench::Table::num(100.0 * (r.vanilla - r.chopper) / r.vanilla,
                                     1)});
  }
  table.print();
  const std::string json = bench::json_flag(argc, argv);
  if (!json.empty() && !table.write_json(json, "fig7_overall")) return 1;
  return 0;
}
