// Fig. 8 + Table II: per-stage execution-time breakdown of KMeans,
// CHOPPER vs vanilla Spark. The paper lists stage 0 separately (Table II:
// CHOPPER 250 s vs Spark 372 s) because it dominates the rest.
#include "harness.h"

using namespace chopper;

int main() {
  const workloads::KMeansWorkload wl(bench::kmeans_params());

  auto vanilla = bench::run_vanilla(wl);
  core::Chopper chopper(bench::bench_cluster(), bench::chopper_options());
  auto optimized = bench::run_chopper(chopper, wl);

  const auto& vs = vanilla->metrics().stages();
  const auto& cs = optimized->metrics().stages();
  const std::size_t stages = std::min(vs.size(), cs.size());

  bench::print_header("Table II: execution time for stage 0 in KMeans");
  bench::Table t2({"system", "stage0 time(s)"});
  t2.add_row({"CHOPPER", bench::Table::num(cs.front().sim_time_s, 2)});
  t2.add_row({"Spark", bench::Table::num(vs.front().sim_time_s, 2)});
  t2.print();

  bench::print_header(
      "Fig. 8: execution time per stage (1..n), CHOPPER vs Spark");
  bench::Table table({"stage", "CHOPPER(s)", "Spark(s)"});
  for (std::size_t s = 1; s < stages; ++s) {
    table.add_row({std::to_string(s), bench::Table::num(cs[s].sim_time_s, 3),
                   bench::Table::num(vs[s].sim_time_s, 3)});
  }
  table.print();

  double ctotal = 0.0, vtotal = 0.0;
  for (std::size_t s = 0; s < stages; ++s) {
    ctotal += cs[s].sim_time_s;
    vtotal += vs[s].sim_time_s;
  }
  std::printf("\ntotal: CHOPPER %.2fs vs Spark %.2fs (%.1f%% improvement)\n",
              ctotal, vtotal, 100.0 * (vtotal - ctotal) / vtotal);
  return 0;
}
