// Fig. 9: shuffle data per stage for the SQL workload, CHOPPER vs Spark.
// CHOPPER co-partitions the two aggregations with the join (Algorithm 3),
// which turns the join's shuffle into local pass-through reads.
#include "harness.h"

using namespace chopper;

int main() {
  const workloads::SqlWorkload wl(bench::sql_params());

  auto vanilla = bench::run_vanilla(wl);
  core::Chopper chopper(bench::bench_cluster(), bench::chopper_options());
  auto optimized = bench::run_chopper(chopper, wl);

  bench::print_header(
      "Fig. 9: shuffle data per SQL stage (KB, max of read/write), CHOPPER "
      "vs Spark");
  const auto& vs = vanilla->metrics().stages();
  const auto& cs = optimized->metrics().stages();
  bench::Table table({"stage", "name", "CHOPPER(KB)", "Spark(KB)"});
  for (std::size_t s = 0; s < std::min(vs.size(), cs.size()); ++s) {
    std::string name = cs[s].name;
    if (name.size() > 40) name = name.substr(0, 37) + "...";
    table.add_row(
        {std::to_string(s), name,
         bench::Table::num(static_cast<double>(cs[s].shuffle_bytes()) / 1024.0, 1),
         bench::Table::num(static_cast<double>(vs[s].shuffle_bytes()) / 1024.0, 1)});
  }
  table.print();

  auto join_remote = [](const engine::Engine& eng) {
    std::uint64_t remote = 0;
    for (const auto& s : eng.metrics().stages()) {
      if (s.anchor_op == engine::OpKind::kJoin) {
        for (const auto& t : s.tasks) remote += t.shuffle_read_remote;
      }
    }
    return remote;
  };
  std::printf("\njoin-stage remote shuffle bytes: CHOPPER %llu vs Spark %llu\n",
              static_cast<unsigned long long>(join_remote(*optimized)),
              static_cast<unsigned long long>(join_remote(*vanilla)));
  return 0;
}
