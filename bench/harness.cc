#include "harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/rng.h"
#include "obs/jsonl.h"

namespace chopper::bench {

namespace {
// Inputs are scaled ~1/500 of the paper's (Table I). The cost model's
// data_scale rescales all measured work/bytes back to paper volume before
// pricing, so the cluster keeps its real 40 GB executors and the simulated
// times land at paper-like magnitudes.
constexpr double kDataScale = 1.0 / 500.0;
}  // namespace

engine::ClusterSpec bench_cluster(double memory_scale) {
  return engine::ClusterSpec::paper_heterogeneous(memory_scale);
}

engine::EngineOptions vanilla_options() {
  engine::EngineOptions o;
  o.default_parallelism = 300;  // the paper's vanilla configuration
  auto& cm = o.cost_model;
  cm.data_scale = kDataScale;
  // Calibrated so the default-parallelism baseline lands at paper-like
  // magnitudes: tasks of a 300-partition stage take O(0.1-1 s) of compute,
  // launch overhead is a small fraction, and memory pressure (GC + spill)
  // makes oversized partitions pay steeply, as the paper's stage-0 study
  // shows (Fig. 3).
  cm.sec_per_work_unit = 1.6e-7;
  cm.spill_fraction = 0.08;
  cm.disk_bw = 6.0e7;
  cm.spill_amplification = 3.0;
  return o;
}

core::ChopperOptions chopper_options() {
  core::ChopperOptions o;
  o.engine_options = vanilla_options();
  o.profile_partitions = {100, 200, 300, 400, 500, 800};
  o.profile_fractions = {0.5, 1.0};
  o.optimizer.space.min_partitions = 50;
  o.optimizer.space.max_partitions = 2000;
  o.optimizer.space.candidates = 48;
  o.optimizer.space.round_to = 10;
  return o;
}

workloads::KMeansParams kmeans_params() {
  workloads::KMeansParams p;
  p.data.total_points = 250'000;  // ~41 MB == 21.8 GB / ~500
  p.data.dims = 16;
  p.data.clusters = 10;
  p.k = 10;
  p.iterations = 3;
  p.init_rounds = 11;
  p.source_partitions = 300;
  return p;
}

workloads::PcaParams pca_params() {
  workloads::PcaParams p;
  p.data.total_rows = 250'000;  // ~53 MB == 27.6 GB / ~500
  p.data.dims = 24;
  p.data.latent_dims = 4;
  p.components = 4;
  p.iterations = 3;
  p.source_partitions = 300;
  return p;
}

workloads::SqlParams sql_params() {
  workloads::SqlParams p;
  p.fact.total_rows = 600'000;  // fact + dim ~ 34.5 GB / ~500 scale
  p.fact.payload_bytes = 32;
  // Low-selectivity aggregation: the join carries nearly the full table, so
  // the query is "shuffle intensive in the join phase" like the paper's.
  p.fact.num_keys = 300'000;
  p.fact.zipf_theta = 0.8;
  p.dim.num_keys = 300'000;
  p.dim.payload_bytes = 32;
  p.fact_partitions = 400;
  p.dim_partitions = 120;
  p.fact_agg_partitions = 400;
  p.dim_agg_partitions = 120;
  return p;
}

double kmeans_study_scale() {
  // Sec. II-B studies KMeans on 7.3 GB; Table I runs it on 21.8 GB.
  return 7.3 / 21.8;
}

std::unique_ptr<engine::Engine> run_vanilla(const workloads::Workload& wl,
                                            double scale) {
  auto eng = std::make_unique<engine::Engine>(bench_cluster(), vanilla_options());
  wl.run(*eng, scale);
  return eng;
}

std::unique_ptr<engine::Engine> run_chopper(
    core::Chopper& chopper, const workloads::Workload& wl,
    std::vector<core::PlannedStage>* plan_out, double scale) {
  const double input_bytes = chopper.profile(wl.name(), wl.runner(), scale);
  auto plan = chopper.plan(wl.name(), input_bytes);
  auto eng = chopper.make_engine();
  eng->set_plan_provider(chopper.make_provider(plan));
  wl.run(*eng, scale);
  if (plan_out != nullptr) *plan_out = std::move(plan);
  return eng;
}

namespace {

engine::SourceFn keyed_source(std::uint64_t seed, std::size_t total,
                              std::size_t num_keys, double theta,
                              std::size_t payload_bytes) {
  return [=](std::size_t index, std::size_t count) {
    common::Xoshiro256 rng(common::hash_combine(seed, index * 131 + count));
    common::ZipfSampler zipf(num_keys, theta);
    engine::Partition p;
    const std::size_t begin = total * index / count;
    const std::size_t end = total * (index + 1) / count;
    for (std::size_t i = begin; i < end; ++i) {
      engine::Record r;
      r.key = zipf(rng);
      r.values = {rng.next_double(), 1.0};
      r.aux_bytes = payload_bytes;
      p.push(std::move(r));
    }
    return p;
  };
}

std::string tag(const char* base, std::uint64_t seed) {
  return std::string(base) + "#" + std::to_string(seed);
}

}  // namespace

engine::DatasetPtr service_small_job(std::uint64_t seed) {
  auto events = engine::Dataset::source(
      tag("svc-small-events", seed), 16,
      keyed_source(seed, /*total=*/20'000, /*num_keys=*/400, 0.8, 32));
  return events
      ->filter(tag("svc-small-filter", seed),
               [](const engine::Record& r) { return r.values[0] > 0.2; })
      ->reduce_by_key(
          tag("svc-small-sum", seed),
          [](engine::Record& acc, const engine::Record& next) {
            acc.values[0] += next.values[0];
            acc.values[1] += next.values[1];
          },
          engine::ShuffleRequest{std::nullopt, 16, false});
}

engine::DatasetPtr service_kmeans_like_job(std::uint64_t seed) {
  auto points = engine::Dataset::source(
      tag("svc-kmeans-points", seed), 48,
      keyed_source(seed, /*total=*/120'000, /*num_keys=*/20'000, 0.4, 64));
  // Assign-to-centroid flavor: a compute-heavy narrow map re-keying each
  // point, then a per-centroid keyed reduction (one wide stage).
  return points
      ->map(
          tag("svc-kmeans-assign", seed),
          [](const engine::Record& in) {
            engine::Record r = in;
            double acc = r.values[0];
            for (int c = 0; c < 24; ++c) acc = acc * 1.000001 + 0.5 / (c + 1);
            r.key = static_cast<std::uint64_t>(acc * 1e6) % 16;
            return r;
          },
          /*work_per_record=*/6.0)
      ->reduce_by_key(
          tag("svc-kmeans-update", seed),
          [](engine::Record& acc, const engine::Record& next) {
            acc.values[0] += next.values[0];
            acc.values[1] += next.values[1];
          },
          engine::ShuffleRequest{std::nullopt, 32, false});
}

engine::DatasetPtr service_sql_like_job(std::uint64_t seed) {
  auto fact = engine::Dataset::source(
      tag("svc-sql-fact", seed), 32,
      keyed_source(seed, /*total=*/60'000, /*num_keys=*/2'000, 0.7, 96));
  auto dim = engine::Dataset::source(
      tag("svc-sql-dim", seed), 8,
      keyed_source(seed ^ 0x9e37ULL, /*total=*/2'000, /*num_keys=*/2'000, 0.0,
                   48));
  return fact
      ->join_with(dim, tag("svc-sql-join", seed),
                  engine::ShuffleRequest{std::nullopt, 32, false})
      ->reduce_by_key(
          tag("svc-sql-agg", seed),
          [](engine::Record& acc, const engine::Record& next) {
            acc.values[0] += next.values[0];
          },
          engine::ShuffleRequest{std::nullopt, 16, false});
}

void print_header(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

bool Table::write_json(const std::string& path, const std::string& name) const {
  std::string out = "{\"bench\":";
  obs::append_json_quoted(name, out);
  out += ",\"columns\":[";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out += ',';
    obs::append_json_quoted(columns_[c], out);
  }
  out += "],\"rows\":[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out += ',';
    out += '[';
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      if (c > 0) out += ',';
      obs::append_json_quoted(rows_[r][c], out);
    }
    out += ']';
  }
  out += "]}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("json table written to %s\n", path.c_str());
  return true;
}

std::string json_flag(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return "";
}

std::size_t size_flag(int argc, char** argv, const char* name,
                      std::size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(argv[i + 1], &end, 10);
      if (end != argv[i + 1] && *end == '\0') {
        return static_cast<std::size_t>(v);
      }
    }
  }
  return fallback;
}

void Table::print() const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(width[c], '-') + "  ";
  }
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

}  // namespace chopper::bench
