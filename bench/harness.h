// Shared experiment driver for the paper-reproduction benches.
//
// Every bench binary reproduces one table or figure of the paper. The
// harness pins the common experimental setup:
//  * the paper's 6-node heterogeneous cluster (workers A-E), with executor
//    memory scaled down in proportion to the scaled-down inputs;
//  * default parallelism 300 (the paper's vanilla configuration);
//  * workload parameter presets whose relative input sizes match Table I
//    (KMeans 21.8 GB : PCA 27.6 GB : SQL 34.5 GB, scaled ~1/500);
//  * the CHOPPER profiling sweep used before every optimized run.
//
// Benches print plain-text tables with the same rows/series as the paper;
// absolute values are simulated seconds on the modeled cluster (see
// DESIGN.md §2/§5 — shapes, not absolute numbers, are the target).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "chopper/chopper.h"
#include "workloads/kmeans.h"
#include "workloads/pca.h"
#include "workloads/sql.h"

namespace chopper::bench {

/// Paper cluster with executor memory scaled to the bench input scale.
/// `memory_scale` < 1 shrinks every worker's executor memory (the
/// memory-pressure knob of bench/memory_pressure and chopperctl --mem-scale).
engine::ClusterSpec bench_cluster(double memory_scale = 1.0);

/// Vanilla engine options: default parallelism 300, deterministic timeline.
engine::EngineOptions vanilla_options();

/// CHOPPER options used by all optimized benches (profiling sweep included).
core::ChopperOptions chopper_options();

/// Workload presets (relative sizes follow Table I).
workloads::KMeansParams kmeans_params();
workloads::PcaParams pca_params();
workloads::SqlParams sql_params();

/// Scale factor that makes the KMeans input correspond to the Sec. II-B
/// workload study (7.3 GB on the paper's scale).
double kmeans_study_scale();

/// Run a workload on a fresh vanilla engine; returns the engine (with
/// metrics) for inspection.
std::unique_ptr<engine::Engine> run_vanilla(const workloads::Workload& wl,
                                            double scale = 1.0);

/// Profile + plan + run under CHOPPER; returns the optimized engine and the
/// plan via out-param (profile uses `chopper`'s DB; reusable across calls).
std::unique_ptr<engine::Engine> run_chopper(core::Chopper& chopper,
                                            const workloads::Workload& wl,
                                            std::vector<core::PlannedStage>* plan_out = nullptr,
                                            double scale = 1.0);

// -- multi-tenant service jobs -----------------------------------------------
//
// Self-contained dataset graphs for JobServer benches/tests. `seed` feeds
// both the data generator and the lineage labels, so two submissions with
// different seeds are distinct jobs (distinct stage signatures) while the
// same seed is bit-reproducible. Sized for sub-second real execution so
// concurrency sweeps stay fast.

/// Small interactive-style aggregation: one shuffle, two stages.
engine::DatasetPtr service_small_job(std::uint64_t seed);

/// KMeans-flavored batch job: compute-heavy map into a keyed reduction.
engine::DatasetPtr service_kmeans_like_job(std::uint64_t seed);

/// SQL-flavored batch job: fact x dim join, then an aggregation (3 shuffles).
engine::DatasetPtr service_sql_like_job(std::uint64_t seed);

// -- output helpers ----------------------------------------------------------

/// Print a header line like "== Fig. 2: ... ==".
void print_header(const std::string& title);

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);
  void add_row(std::vector<std::string> cells);
  void print() const;

  /// Machine-readable dump: {"bench":NAME,"columns":[...],"rows":[[...]]}.
  /// Returns false (with a stderr note) when the file cannot be written.
  bool write_json(const std::string& path, const std::string& name) const;

  static std::string num(double v, int precision = 2);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Shared `--json PATH` flag for bench binaries: returns the PATH operand
/// when present (empty string otherwise) so a bench can mirror its printed
/// table into a BENCH_*.json artifact for CI trend tracking.
std::string json_flag(int argc, char** argv);

/// Shared numeric `--NAME N` flag for bench binaries (e.g.
/// `micro_engine_ops --threads 8`): returns N when present and parseable,
/// `fallback` otherwise.
std::size_t size_flag(int argc, char** argv, const char* name,
                      std::size_t fallback);

}  // namespace chopper::bench
