// Memory pressure: behavior under enforced executor-memory budgets
// (DESIGN.md §11). Two experiments:
//
//  1. Degradation sweep — KMeans and SQL run with enforcement at shrinking
//     executor memory (1.0x .. 0.1x). Eviction, shuffle spill and
//     OOM-triggered adaptive repartition keep jobs alive (degraded, slower)
//     where a budget-blind engine would simply not model the pressure; rows
//     report the makespan and every memory counter.
//
//  2. Acceptance demo — KMeans with a deliberately undersized partition
//     count OOMs on a starved cluster, completes via adaptive repartition
//     (bit-for-bit equal to an ample-memory run at the grown configuration),
//     and after CHOPPER ingests the OOM observations the re-planned run
//     honors the memory-feasibility floor p_min with zero OOM attempts.
//
// `--tiny` shrinks inputs ~20x for CI smoke runs.
#include <algorithm>
#include <cstring>
#include <string>

#include "harness.h"

using namespace chopper;

namespace {

bool g_tiny = false;

workloads::KMeansParams kmeans_params_scaled() {
  workloads::KMeansParams p = bench::kmeans_params();
  if (g_tiny) {
    p.data.total_points /= 20;
    p.init_rounds = 3;
  }
  return p;
}

workloads::SqlParams sql_params_scaled() {
  workloads::SqlParams p = bench::sql_params();
  if (g_tiny) {
    p.fact.total_rows /= 20;
    p.fact.num_keys /= 20;
    p.dim.num_keys /= 20;
  }
  return p;
}

struct PressureRow {
  bool completed = false;
  double time = 0.0;
  std::size_t ooms = 0;
  std::uint64_t evicted = 0;
  std::uint64_t spilled = 0;
  std::uint64_t peak = 0;
};

PressureRow run_pressured(const workloads::Workload& wl, double mem_scale) {
  engine::EngineOptions opts = bench::vanilla_options();
  opts.memory.enforce = true;
  engine::Engine eng(bench::bench_cluster(mem_scale), opts);
  PressureRow row;
  try {
    wl.run(eng, 1.0);
    row.completed = true;
  } catch (const engine::JobAbortedError&) {
    // Pressure the adaptive machinery could not absorb (e.g. one skewed
    // bucket larger than a whole executor): reported, not fatal.
  }
  for (const auto& j : eng.metrics().jobs()) {
    row.time += j.sim_time_s;
    row.ooms += j.oom_count;
    row.evicted += j.evicted_bytes;
    row.spilled += j.spilled_bytes;
    row.peak = std::max(row.peak, j.peak_resident_bytes);
  }
  return row;
}

bool degradation_sweep(const std::string& json_path) {
  bench::print_header(
      "Memory pressure sweep: enforced budgets at shrinking executor memory");
  bench::Table table({"workload", "mem", "status", "time(s)", "oom",
                      "evicted(MB)", "spilled(MB)", "peak(MB)"});
  const workloads::KMeansWorkload kmeans(kmeans_params_scaled());
  const workloads::SqlWorkload sql(sql_params_scaled());
  const std::vector<const workloads::Workload*> workloads{&kmeans, &sql};
  for (const workloads::Workload* wl : workloads) {
    for (const double ms : {1.0, 0.5, 0.2, 0.1}) {
      const PressureRow r = run_pressured(*wl, ms);
      table.add_row({wl->name(), bench::Table::num(ms, 2),
                     r.completed ? "ok" : "aborted(OOM)",
                     bench::Table::num(r.time, 2), std::to_string(r.ooms),
                     bench::Table::num(r.evicted / 1e6, 1),
                     bench::Table::num(r.spilled / 1e6, 1),
                     bench::Table::num(r.peak / 1e6, 1)});
    }
  }
  table.print();
  if (!json_path.empty() && !table.write_json(json_path, "memory_pressure")) {
    return false;
  }
  std::printf(
      "\nmem = executor memory relative to the paper's 40 GB. oom counts\n"
      "stage attempts killed at the hard ceiling; each one is retried\n"
      "(repartitioned to a higher P after repeated kills). evicted/spilled\n"
      "are modeled bytes pushed out of the storage/shuffle tiers.\n");
  return true;
}

void acceptance_demo() {
  bench::print_header(
      "Acceptance: undersized P -> OOM -> adaptive repartition -> CHOPPER "
      "plans P >= p_min, zero OOMs");

  workloads::KMeansParams params = kmeans_params_scaled();
  params.source_partitions = 60;  // deliberately undersized
  const workloads::KMeansWorkload wl(params);
  engine::EngineOptions base = bench::vanilla_options();
  base.default_parallelism = 60;

  // Probe the P=60 load stage's largest working set on an ample cluster,
  // then size executors so P=60 OOMs but the 1.5x-grown P=90 fits.
  engine::Engine probe(bench::bench_cluster(1.0), base);
  const auto probe_result = wl.run_with_result(probe, 1.0);
  const auto& load = probe.metrics().stages().at(0);
  double w60 = 0.0;
  for (const auto& t : load.tasks) {
    w60 = std::max(w60, static_cast<double>(t.bytes_in + t.bytes_out) /
                            base.cost_model.data_scale);
  }
  const double mem_scale = 0.8 * w60 * 32.0 / 40e9;
  std::printf("load-stage max working set at P=60: %.0f MB; executor memory "
              "scaled to %.3fx (slot ceiling %.0f MB)\n",
              w60 / 1e6, mem_scale, 0.8 * w60 / 1e6);

  engine::EngineOptions enforced = base;
  enforced.memory.enforce = true;
  enforced.memory.oom_repartition_after = 1;

  engine::Engine pressured(bench::bench_cluster(mem_scale), enforced);
  const auto pressured_result = wl.run_with_result(pressured, 1.0);
  const auto& grown = pressured.metrics().stages().at(0);
  std::size_t pressured_ooms = 0;
  for (const auto& j : pressured.metrics().jobs()) pressured_ooms += j.oom_count;
  std::printf("constrained run: %zu OOM attempt(s); load stage grew %zu -> "
              "%zu over %zu attempts and completed\n",
              pressured_ooms,
              grown.oomed_partition_counts.empty()
                  ? grown.num_partitions
                  : grown.oomed_partition_counts.front(),
              grown.num_partitions, grown.attempt_count);

  workloads::KMeansParams grown_params = params;
  grown_params.source_partitions = grown.num_partitions;
  const workloads::KMeansWorkload wl_grown(grown_params);
  engine::Engine ample(bench::bench_cluster(1.0), base);
  const auto ample_result = wl_grown.run_with_result(ample, 1.0);
  const bool identical = pressured_result.cost == ample_result.cost &&
                         pressured_result.centers == ample_result.centers;
  std::printf("degraded result vs ample-memory run at P=%zu: %s\n",
              grown.num_partitions,
              identical ? "bit-for-bit identical" : "DIVERGED");

  core::ChopperOptions copts = bench::chopper_options();
  copts.engine_options = base;
  copts.profile_partitions = {100, 200, 300};
  copts.profile_fractions = {0.5, 1.0};
  copts.profile_both_partitioners = false;
  core::Chopper chopper(bench::bench_cluster(mem_scale), copts);
  const double input_bytes = chopper.profile(
      wl.name(), [&wl](engine::Engine& e, double s) { wl.run(e, s); }, 1.0);
  chopper.ingest_run(pressured.metrics(), wl.name(), input_bytes,
                     /*is_default=*/false);

  const auto plan = chopper.plan(wl.name(), input_bytes);
  const auto planned =
      std::find_if(plan.begin(), plan.end(), [&](const core::PlannedStage& ps) {
        return ps.signature == load.signature;
      });
  if (planned == plan.end()) {
    std::printf("ERROR: load stage missing from plan\n");
    return;
  }
  std::printf("CHOPPER plan: load stage P=%zu with memory-feasibility floor "
              "p_min=%zu learned from the OOM at P=60\n",
              planned->num_partitions, planned->p_min);

  // make_engine() would reuse the profiling options; deploy with
  // enforcement on instead (same starved cluster).
  auto deployed = std::make_unique<engine::Engine>(
      bench::bench_cluster(mem_scale), enforced);
  deployed->set_plan_provider(chopper.make_provider(plan));
  wl.run_with_result(*deployed, 1.0);
  std::size_t planned_ooms = 0;
  for (const auto& j : deployed->metrics().jobs()) planned_ooms += j.oom_count;
  std::printf("optimized run on the same starved cluster: %zu OOM attempts "
              "(load stage ran at P=%zu)\n",
              planned_ooms, deployed->metrics().stages().at(0).num_partitions);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) g_tiny = true;
  }
  if (!degradation_sweep(bench::json_flag(argc, argv))) return 1;
  acceptance_demo();
  return 0;
}
