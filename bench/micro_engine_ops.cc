// Microbenchmarks of the engine's hot paths: partitioner dispatch, the
// batched data plane (radix shuffle scatter, map-side combine, reduce-side
// merge), and the event-log emit guard.
//
// Two layers:
//  * The always-run data-plane sections compare the batched SoA
//    implementations (engine/dataplane) against faithful replicas of the
//    pre-§13 per-record code (vector<Record> buckets, unordered_map merges)
//    and the §18 parallel paths (`--threads N`, default 4), and enforce:
//      - the allocation contract with a global operator-new counter (the
//        counter is a relaxed atomic, so the parallel sections count
//        correctly): batched AND parallel paths must allocate at least 4x
//        fewer times than legacy, and the parallel shuffle/merge paths at
//        most 2x the batched baseline;
//      - bit-identity: every parallel section's output must checksum equal
//        to the sequential batched output;
//      - parallel speedup vs batched: >= 2.5x at >= 4 threads (and >= 4x at
//        >= 8) on shuffle_write_hash and reduce_merge — enforced only when
//        the host actually has that many cores, else printed and skipped.
//    `--json PATH` mirrors the section table into a BENCH_*.json artifact.
//  * google-benchmark micro-timers for profiling individual primitives.
//
// The custom main() additionally enforces the event-log overhead contract
// (DESIGN.md §12): with no sink attached, the per-task instrumentation
// guard must not allocate — checked by counting global operator new calls
// across 100k disabled-guard evaluations before anything else runs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "engine/dataplane.h"
#include "engine/partition.h"
#include "engine/partitioner.h"
#include "harness.h"
#include "obs/event_log.h"
#include "obs/sinks.h"

namespace {
// Relaxed atomic: the parallel data-plane sections allocate from pool
// worker threads concurrently, and the gate only needs an exact total at
// the (single-threaded) sample points — no ordering required.
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace chopper;

engine::Partition make_records(std::size_t n, std::size_t distinct_keys,
                               std::uint64_t seed = 99) {
  common::Xoshiro256 rng(seed);
  engine::Partition p;
  p.reserve(n);
  p.reserve_values(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const double vals[2] = {rng.next_double(), 1.0};
    p.emplace(rng.next_below(distinct_keys), vals, 2, 0);
  }
  return p;
}

void sum_fn(engine::Record& acc, const engine::Record& next) {
  acc.values[0] += next.values[0];
  acc.values[1] += next.values[1];
}

// ---------------------------------------------------------------------------
// Data-plane sections: batched implementations vs pre-batched replicas.
// ---------------------------------------------------------------------------

struct Section {
  std::string name;
  std::size_t records = 0;
  double legacy_s = 0.0;
  double batched_s = 0.0;
  double parallel_s = 0.0;  ///< batched path under the --threads pool
  std::size_t legacy_allocs = 0;
  std::size_t batched_allocs = 0;
  std::size_t parallel_allocs = 0;
  bool bit_identical = true;  ///< parallel output checksums == batched

  double speedup() const { return legacy_s / std::max(batched_s, 1e-12); }
  /// Parallel speedup over the single-threaded batched path — the number
  /// the 2.5x/4x CI gate reads.
  double parallel_speedup() const {
    return batched_s / std::max(parallel_s, 1e-12);
  }
  double legacy_allocs_per_krec() const {
    return 1e3 * static_cast<double>(legacy_allocs) /
           static_cast<double>(records);
  }
  double batched_allocs_per_krec() const {
    return 1e3 * static_cast<double>(batched_allocs) /
           static_cast<double>(records);
  }
  double parallel_allocs_per_krec() const {
    return 1e3 * static_cast<double>(parallel_allocs) /
           static_cast<double>(records);
  }
};

template <typename F>
double best_seconds(F&& f, int reps) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

template <typename Legacy, typename Batched, typename Parallel>
Section measure(std::string name, std::size_t records, Legacy&& legacy,
                Batched&& batched, Parallel&& parallel) {
  Section s;
  s.name = std::move(name);
  s.records = records;
  legacy();  // warmup (also sizes the parallel path's per-thread scratch)
  batched();
  parallel();
  std::size_t a0 = g_allocs.load(std::memory_order_relaxed);
  legacy();
  s.legacy_allocs = g_allocs.load(std::memory_order_relaxed) - a0;
  a0 = g_allocs.load(std::memory_order_relaxed);
  batched();
  s.batched_allocs = g_allocs.load(std::memory_order_relaxed) - a0;
  a0 = g_allocs.load(std::memory_order_relaxed);
  parallel();
  s.parallel_allocs = g_allocs.load(std::memory_order_relaxed) - a0;
  s.legacy_s = best_seconds(legacy, 5);
  s.batched_s = best_seconds(batched, 5);
  s.parallel_s = best_seconds(parallel, 5);
  return s;
}

bool same_partitions(const std::vector<engine::Partition>& a,
                     const std::vector<engine::Partition>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].checksum() != b[i].checksum()) return false;
  }
  return true;
}

/// Shuffle write: legacy = per-record partitioner call + per-record
/// vector<Record> push (the old Partition storage); batched = single-pass
/// radix scatter into exactly-reserved arenas; parallel = sharded two-pass
/// scatter on the --threads pool (§18.1).
Section shuffle_write_section(const engine::Partition& data,
                              const engine::Partitioner& part,
                              const std::string& name,
                              const engine::dataplane::ExecContext& ctx) {
  const std::size_t r_count = part.num_partitions();
  auto legacy = [&] {
    std::vector<std::vector<engine::Record>> buckets(r_count);
    engine::Record scratch;
    for (std::size_t i = 0; i < data.size(); ++i) {
      data.materialize_into(i, scratch);
      buckets[part.partition_of(scratch.key)].push_back(scratch);
    }
    benchmark::DoNotOptimize(buckets.data());
  };
  auto batched = [&] {
    std::vector<engine::Partition> buckets(r_count);
    engine::dataplane::radix_scatter(data, part, buckets);
    benchmark::DoNotOptimize(buckets.data());
  };
  auto parallel = [&] {
    std::vector<engine::Partition> buckets(r_count);
    engine::dataplane::radix_scatter(data, part, buckets, ctx);
    benchmark::DoNotOptimize(buckets.data());
  };
  Section s = measure(name, data.size(), legacy, batched, parallel);
  std::vector<engine::Partition> seq(r_count);
  std::vector<engine::Partition> par(r_count);
  engine::dataplane::radix_scatter(data, part, seq);
  engine::dataplane::radix_scatter(data, part, par, ctx);
  s.bit_identical = same_partitions(seq, par);
  return s;
}

/// Reduce-side merge: legacy = unordered_map accumulation + sorted-key
/// emission with a second at() probe per key; batched = stable index sort +
/// run scan; parallel = range-split k-way merge on the --threads pool
/// (§18.3).
Section reduce_merge_section(const std::vector<engine::Partition>& parts,
                             const engine::dataplane::ExecContext& ctx) {
  std::size_t records = 0;
  for (const auto& p : parts) records += p.size();
  auto legacy = [&] {
    std::unordered_map<std::uint64_t, engine::Record> acc;
    engine::Record scratch;
    for (const auto& part : parts) {
      for (std::size_t i = 0; i < part.size(); ++i) {
        part.materialize_into(i, scratch);
        auto [it, inserted] = acc.try_emplace(scratch.key, scratch);
        if (!inserted) sum_fn(it->second, scratch);
      }
    }
    std::vector<std::uint64_t> keys;
    keys.reserve(acc.size());
    for (const auto& [k, v] : acc) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    engine::Partition out;
    out.reserve(keys.size());
    for (const auto k : keys) out.push(acc.at(k));
    benchmark::DoNotOptimize(out.size());
  };
  auto batched = [&] {
    std::vector<engine::Partition> copy = parts;  // bulk arena copies
    const auto out =
        engine::dataplane::merge_reduce_by_key(std::move(copy), sum_fn);
    benchmark::DoNotOptimize(out.size());
  };
  auto parallel = [&] {
    std::vector<engine::Partition> copy = parts;
    const auto out =
        engine::dataplane::merge_reduce_by_key(std::move(copy), sum_fn, ctx);
    benchmark::DoNotOptimize(out.size());
  };
  Section s = measure("reduce_merge", records, legacy, batched, parallel);
  std::vector<engine::Partition> c1 = parts;
  std::vector<engine::Partition> c2 = parts;
  const auto seq = engine::dataplane::merge_reduce_by_key(std::move(c1), sum_fn);
  const auto par =
      engine::dataplane::merge_reduce_by_key(std::move(c2), sum_fn, ctx);
  s.bit_identical = seq.checksum() == par.checksum();
  return s;
}

/// Map-side combine: legacy = per-bucket unordered_map + sorted keys +
/// at() emission; batched = counting sort by bucket + per-bucket combine
/// table; parallel = sharded histogram + per-bucket-group combine on the
/// --threads pool (§18.2).
Section combine_section(const engine::Partition& data,
                        const engine::Partitioner& part,
                        const engine::dataplane::ExecContext& ctx) {
  const std::size_t r_count = part.num_partitions();
  auto legacy = [&] {
    std::vector<std::unordered_map<std::uint64_t, engine::Record>> accs(
        r_count);
    engine::Record scratch;
    for (std::size_t i = 0; i < data.size(); ++i) {
      data.materialize_into(i, scratch);
      auto& acc = accs[part.partition_of(scratch.key)];
      auto [it, inserted] = acc.try_emplace(scratch.key, scratch);
      if (!inserted) sum_fn(it->second, scratch);
    }
    std::vector<std::vector<engine::Record>> row(r_count);
    for (std::size_t r = 0; r < r_count; ++r) {
      std::vector<std::uint64_t> keys;
      keys.reserve(accs[r].size());
      for (const auto& [k, v] : accs[r]) keys.push_back(k);
      std::sort(keys.begin(), keys.end());
      row[r].reserve(keys.size());
      for (const auto k : keys) row[r].push_back(accs[r].at(k));
    }
    benchmark::DoNotOptimize(row.data());
  };
  auto batched = [&] {
    std::vector<engine::Partition> row(r_count);
    engine::dataplane::combine_scatter(data, part, sum_fn, row);
    benchmark::DoNotOptimize(row.data());
  };
  auto parallel = [&] {
    std::vector<engine::Partition> row(r_count);
    engine::dataplane::combine_scatter(data, part, sum_fn, row, ctx);
    benchmark::DoNotOptimize(row.data());
  };
  Section s = measure("map_side_combine", data.size(), legacy, batched, parallel);
  std::vector<engine::Partition> seq(r_count);
  std::vector<engine::Partition> par(r_count);
  engine::dataplane::combine_scatter(data, part, sum_fn, seq);
  engine::dataplane::combine_scatter(data, part, sum_fn, par, ctx);
  s.bit_identical = same_partitions(seq, par);
  return s;
}

/// The two sections the ISSUE's parallel speed gate reads (the other two
/// are measured and bit-checked but not speed-gated: shuffle_write_range is
/// dominated by the memoized bucket search and map_side_combine by the
/// per-bucket table, both of which parallelize but with flatter curves).
bool speed_gated(const std::string& name) {
  return name == "shuffle_write_hash" || name == "reduce_merge";
}

/// Runs every section, prints the table, enforces the contracts:
///  * allocation: batched and parallel >= 4x fewer allocs than legacy, and
///    the gated parallel sections <= 2x the batched baseline;
///  * bit-identity: parallel checksums == sequential batched checksums;
///  * speed (gated sections, only when the host has the cores): parallel
///    >= 2.5x batched at >= 4 threads, >= 4x at >= 8.
bool run_dataplane_sections(const std::string& json_path,
                            std::size_t threads) {
  const std::size_t kRecords = 1 << 16;
  const auto data = make_records(kRecords, 1 << 12);
  if (threads == 0) threads = 1;
  common::ThreadPool pool(threads);
  const engine::dataplane::ExecContext ctx{threads > 1 ? &pool : nullptr,
                                           threads};

  // Post-combine shape for reduce_merge: each map task's shuffle row is
  // key-sorted (what combine_scatter emits) and carries high key
  // cardinality — a key appears ~once per contributing map task.
  std::vector<engine::Partition> merge_parts(8);
  for (std::size_t i = 0; i < merge_parts.size(); ++i) {
    merge_parts[i] = make_records(8192, 1 << 16, 99 + i);
    merge_parts[i].stable_sort_by_key();
  }

  std::vector<Section> sections;
  {
    const engine::HashPartitioner hash(100);
    sections.push_back(
        shuffle_write_section(data, hash, "shuffle_write_hash", ctx));
  }
  {
    common::Xoshiro256 rng(7);
    std::vector<std::uint64_t> sample(2048);
    for (auto& k : sample) k = rng.next_below(1 << 12);
    const auto range = engine::RangePartitioner::from_sample(100, sample);
    sections.push_back(
        shuffle_write_section(data, *range, "shuffle_write_range", ctx));
  }
  sections.push_back(reduce_merge_section(merge_parts, ctx));
  {
    const engine::HashPartitioner hash(100);
    sections.push_back(combine_section(data, hash, ctx));
  }

  const unsigned hw = std::thread::hardware_concurrency();
  bench::Table t({"section", "legacy Mrec/s", "batched Mrec/s", "speedup",
                  "threads", "parallel Mrec/s", "par/batched",
                  "legacy allocs/krec", "batched allocs/krec",
                  "parallel allocs/krec"});
  bool ok = true;
  for (const auto& s : sections) {
    const double n = static_cast<double>(s.records);
    t.add_row({s.name, bench::Table::num(n / s.legacy_s / 1e6),
               bench::Table::num(n / s.batched_s / 1e6),
               bench::Table::num(s.speedup()), std::to_string(threads),
               bench::Table::num(n / s.parallel_s / 1e6),
               bench::Table::num(s.parallel_speedup()),
               bench::Table::num(s.legacy_allocs_per_krec()),
               bench::Table::num(s.batched_allocs_per_krec()),
               bench::Table::num(s.parallel_allocs_per_krec())});
    // Bit-identity contract: the parallel path must produce checksum-equal
    // output at any thread count — this is the determinism invariant every
    // digest/replay/recovery feature rests on.
    if (!s.bit_identical) {
      std::fprintf(stderr,
                   "FAIL: %s parallel output differs from the sequential "
                   "batched output at %zu threads\n",
                   s.name.c_str(), threads);
      ok = false;
    }
    // Allocation contract: the batched path exists to eliminate per-record
    // heap traffic; demand a >= 4x reduction (in practice it is >100x), and
    // the same bound for the parallel path (per-thread scratch is reused, so
    // parallelism must not reintroduce per-record allocation).
    if (s.batched_allocs * 4 >= s.legacy_allocs) {
      std::fprintf(stderr,
                   "FAIL: %s batched path allocated %zu times vs legacy %zu "
                   "(need >= 4x reduction)\n",
                   s.name.c_str(), s.batched_allocs, s.legacy_allocs);
      ok = false;
    }
    if (s.parallel_allocs * 4 >= s.legacy_allocs) {
      std::fprintf(stderr,
                   "FAIL: %s parallel path allocated %zu times vs legacy %zu "
                   "(need >= 4x reduction)\n",
                   s.name.c_str(), s.parallel_allocs, s.legacy_allocs);
      ok = false;
    }
    if (speed_gated(s.name) && threads > 1 &&
        s.parallel_allocs > 2 * s.batched_allocs) {
      std::fprintf(stderr,
                   "FAIL: %s parallel path allocated %zu times vs batched "
                   "%zu (need <= 2x)\n",
                   s.name.c_str(), s.parallel_allocs, s.batched_allocs);
      ok = false;
    }
    // Speed gate — hardware-aware: this box must actually have the cores
    // before a missed multiple means a regression.
    if (speed_gated(s.name)) {
      double need = 0.0;
      if (threads >= 8 && hw >= 8) {
        need = 4.0;
      } else if (threads >= 4 && hw >= 4) {
        need = 2.5;
      }
      if (need > 0.0 && s.parallel_speedup() < need) {
        std::fprintf(stderr,
                     "FAIL: %s parallel speedup %.2fx at %zu threads "
                     "(hw=%u) below the %.1fx gate\n",
                     s.name.c_str(), s.parallel_speedup(), threads, hw, need);
        ok = false;
      } else if (need == 0.0) {
        std::printf("note: %s speed gate skipped (%zu threads, %u hardware "
                    "cores — gate needs >= 4 of each)\n",
                    s.name.c_str(), threads, hw);
      }
    }
  }
  bench::print_header("micro_engine_ops: batched data plane vs legacy");
  t.print();
  if (!json_path.empty()) t.write_json(json_path, "micro_engine_ops");

  // Thread sweep over the gated sections: parallel throughput and
  // bit-identity at 1, 2, 4 and 8 threads regardless of the --threads value
  // (identity is checked at every point; speed is informational here — the
  // gate above reads the --threads arm).
  bench::Table sweep({"section", "threads", "parallel Mrec/s", "vs batched",
                      "bit-identical"});
  std::vector<engine::Partition> seq_buckets(100);
  const engine::HashPartitioner hash(100);
  engine::dataplane::radix_scatter(data, hash, seq_buckets);
  std::vector<engine::Partition> m1 = merge_parts;
  const auto seq_merge =
      engine::dataplane::merge_reduce_by_key(std::move(m1), sum_fn);
  for (const std::size_t tc : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                               std::size_t{8}}) {
    common::ThreadPool tp(tc);
    const engine::dataplane::ExecContext tctx{tc > 1 ? &tp : nullptr, tc};
    {
      std::vector<engine::Partition> out(100);
      engine::dataplane::radix_scatter(data, hash, out, tctx);
      const bool same = same_partitions(seq_buckets, out);
      const double secs = best_seconds(
          [&] {
            std::vector<engine::Partition> b(100);
            engine::dataplane::radix_scatter(data, hash, b, tctx);
            benchmark::DoNotOptimize(b.data());
          },
          3);
      sweep.add_row({"shuffle_write_hash", std::to_string(tc),
                     bench::Table::num(kRecords / secs / 1e6),
                     bench::Table::num(sections[0].batched_s / secs),
                     same ? "yes" : "NO"});
      if (!same) {
        std::fprintf(stderr,
                     "FAIL: shuffle_write_hash not bit-identical at %zu "
                     "threads\n",
                     tc);
        ok = false;
      }
    }
    {
      std::vector<engine::Partition> m2 = merge_parts;
      const auto out =
          engine::dataplane::merge_reduce_by_key(std::move(m2), sum_fn, tctx);
      const bool same = seq_merge.checksum() == out.checksum();
      const double secs = best_seconds(
          [&] {
            std::vector<engine::Partition> c = merge_parts;
            const auto o = engine::dataplane::merge_reduce_by_key(
                std::move(c), sum_fn, tctx);
            benchmark::DoNotOptimize(o.size());
          },
          3);
      const double recs = static_cast<double>(sections[2].records);
      sweep.add_row({"reduce_merge", std::to_string(tc),
                     bench::Table::num(recs / secs / 1e6),
                     bench::Table::num(sections[2].batched_s / secs),
                     same ? "yes" : "NO"});
      if (!same) {
        std::fprintf(stderr,
                     "FAIL: reduce_merge not bit-identical at %zu threads\n",
                     tc);
        ok = false;
      }
    }
  }
  bench::print_header("micro_engine_ops: parallel thread sweep");
  sweep.print();
  return ok;
}

/// Checkpointing enabled-but-idle contract (DESIGN.md §16): with a
/// CheckpointWriter attached as WAL sink + engine hook, a job that commits
/// no block payloads (single map stage, no shuffle/cache/collect) pays only
/// the subsystem's fixed costs — a handful of buffered WAL appends and one
/// barrier flush per stage. That must stay within 2% of the bare engine's
/// wall time, and the simulated timeline must be bit-identical (checkpoint
/// I/O lives entirely off the simulated clock).
bool run_checkpoint_idle_section() {
  const std::string dir = "micro_ckpt_idle.tmp";
  std::filesystem::remove_all(dir);

  // Compute-dominated, payload-light: the fixed WAL/barrier costs are what
  // is being measured, so the job must not checkpoint meaningful data (its
  // only block file is the final stage's ~320 KB result).
  auto make_job = [] {
    return engine::Dataset::source(
               "ckpt-idle-src", 8,
               [](std::size_t index, std::size_t count) {
                 engine::Partition p;
                 common::Xoshiro256 rng(0x1d1eULL + index);
                 const std::size_t n = 8'000 / count;
                 p.reserve(n);
                 p.reserve_values(2 * n);
                 for (std::size_t i = 0; i < n; ++i) {
                   const double vals[2] = {rng.next_double(), 1.0};
                   p.emplace(rng.next_below(1 << 12), vals, 2, 0);
                 }
                 return p;
               })
        ->map("ckpt-idle-map", [](const engine::Record& in) {
          engine::Record r = in;
          double x = r.values[0];
          for (int i = 0; i < 6000; ++i) x = x * 1.0000001 + 1e-9;
          r.values[0] = x;
          return r;
        });
  };

  double base_sim = 0.0;
  double ckpt_sim = 0.0;
  auto base = [&] {
    engine::Engine eng(bench::bench_cluster(), bench::vanilla_options());
    const auto r = eng.count(make_job(), "ckpt-idle");
    base_sim = r.sim_time_s;
    benchmark::DoNotOptimize(r.count);
  };
  auto attached = [&] {
    engine::Engine eng(bench::bench_cluster(), bench::vanilla_options());
    obs::EventLog log;
    auto writer = std::make_shared<ckpt::CheckpointWriter>(dir);
    log.attach(writer);
    eng.set_event_log(&log);
    eng.set_checkpoint_hook(writer.get());
    const auto r = eng.count(make_job(), "ckpt-idle");
    ckpt_sim = r.sim_time_s;
    log.detach_all();
    benchmark::DoNotOptimize(r.count);
  };

  base();  // warmup both variants (and populate the sim times)
  attached();
  if (base_sim != ckpt_sim) {
    std::fprintf(stderr,
                 "FAIL: checkpointing perturbed the simulated timeline "
                 "(%.9f s vs %.9f s)\n",
                 base_sim, ckpt_sim);
    std::filesystem::remove_all(dir);
    return false;
  }

  // Wall-clock gate. The two variants run as interleaved pairs (so CPU
  // frequency drift cannot bias one side) and the gate takes the minimum
  // pairwise overhead: scheduler noise on a CI runner perturbs individual
  // pairs in both directions, but a real regression shifts every pair, so
  // the minimum is the noise-robust estimate of the true fixed cost. Stops
  // early once the contract holds.
  double overhead = 1e300;
  bool ok = false;
  for (int i = 0; i < 16; ++i) {
    const double base_s = best_seconds(base, 1);
    const double ckpt_s = best_seconds(attached, 1);
    overhead =
        std::min(overhead, ckpt_s / std::max(base_s, 1e-12) - 1.0);
    ok = overhead <= 0.02;
    if (i >= 3 && ok) break;
  }
  std::printf("checkpoint enabled-but-idle: wall overhead %+.2f%% "
              "(target <= 2%%), simulated timeline identical\n",
              100.0 * overhead);
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: idle checkpointing overhead %.2f%% exceeds 2%%\n",
                 100.0 * overhead);
  }
  std::filesystem::remove_all(dir);
  return ok;
}

// ---------------------------------------------------------------------------
// google-benchmark micro-timers.
// ---------------------------------------------------------------------------

void BM_HashPartitioner(benchmark::State& state) {
  const engine::HashPartitioner part(static_cast<std::size_t>(state.range(0)));
  const auto data = make_records(4096, 1u << 20);
  for (auto _ : state) {
    std::size_t acc = 0;
    for (const auto& r : data.records()) acc += part.partition_of(r.key);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_HashPartitioner)->Arg(100)->Arg(500)->Arg(2000);

void BM_RangePartitioner(benchmark::State& state) {
  common::Xoshiro256 rng(7);
  std::vector<std::uint64_t> sample(2048);
  for (auto& k : sample) k = rng();
  const auto part = engine::RangePartitioner::from_sample(
      static_cast<std::size_t>(state.range(0)), sample);
  const auto data = make_records(4096, 1u << 20);
  for (auto _ : state) {
    std::size_t acc = 0;
    for (const auto& r : data.records()) acc += part->partition_of(r.key);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_RangePartitioner)->Arg(100)->Arg(500)->Arg(2000);

void BM_RadixScatter(benchmark::State& state) {
  const std::size_t r_count = static_cast<std::size_t>(state.range(0));
  const engine::HashPartitioner part(r_count);
  const auto data = make_records(8192, 1u << 16);
  for (auto _ : state) {
    std::vector<engine::Partition> buckets(r_count);
    engine::dataplane::radix_scatter(data, part, buckets);
    benchmark::DoNotOptimize(buckets.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_RadixScatter)->Arg(100)->Arg(500);

void BM_CombineScatter(benchmark::State& state) {
  const std::size_t distinct = static_cast<std::size_t>(state.range(0));
  const engine::HashPartitioner part(100);
  const auto data = make_records(8192, distinct);
  for (auto _ : state) {
    std::vector<engine::Partition> buckets(part.num_partitions());
    engine::dataplane::combine_scatter(data, part, sum_fn, buckets);
    benchmark::DoNotOptimize(buckets.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_CombineScatter)->Arg(10)->Arg(1000)->Arg(100000);

void BM_ReduceMerge(benchmark::State& state) {
  std::vector<engine::Partition> parts(4);
  for (auto& p : parts) {
    p = make_records(4096, static_cast<std::size_t>(state.range(0)));
  }
  for (auto _ : state) {
    std::vector<engine::Partition> copy = parts;
    const auto out =
        engine::dataplane::merge_reduce_by_key(std::move(copy), sum_fn);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * 4 * 4096);
}
BENCHMARK(BM_ReduceMerge)->Arg(64)->Arg(4096);

void BM_TraceEmitDisabled(benchmark::State& state) {
  // The guard every instrumented hot path evaluates per task when no event
  // log is attached: one relaxed atomic load, no branch taken.
  obs::EventLog log;
  std::size_t taken = 0;
  for (auto _ : state) {
    if (log.enabled()) ++taken;
    benchmark::DoNotOptimize(taken);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmitDisabled);

void BM_TraceEmitRing(benchmark::State& state) {
  // Full emit cost into the bounded in-memory sink (the cheapest enabled
  // configuration): seq/wall stamping + one striped-ring slot write.
  obs::EventLog log;
  log.attach(std::make_shared<obs::RingSink>(4096));
  for (auto _ : state) {
    obs::Event e;
    e.kind = obs::EventKind::kTaskSpan;
    e.task = 1;
    e.node = 2;
    e.t_end = 1.0;
    log.emit(std::move(e));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmitRing);

}  // namespace

int main(int argc, char** argv) {
  // Overhead-contract check: 100k disabled-guard evaluations must perform
  // zero heap allocations (and never take the emit path).
  {
    obs::EventLog log;
    const std::size_t before = g_allocs.load(std::memory_order_relaxed);
    std::size_t taken = 0;
    for (int i = 0; i < 100000; ++i) {
      if (log.enabled()) ++taken;
      benchmark::DoNotOptimize(taken);
    }
    const std::size_t after = g_allocs.load(std::memory_order_relaxed);
    if (after != before || taken != 0) {
      std::fprintf(stderr,
                   "FAIL: disabled event-log guard allocated (%zu allocations "
                   "across 100000 checks, %zu emits)\n",
                   after - before, taken);
      return 1;
    }
    std::printf("disabled event-log guard: 100000 checks, 0 allocations\n");
  }

  // Data-plane sections always run — they carry the allocation regression
  // gate, the parallel speed gate and the bit-identity checks. With --json
  // the binary is in CI artifact mode and stops here.
  const std::string json_path = bench::json_flag(argc, argv);
  const std::size_t threads = bench::size_flag(argc, argv, "--threads", 4);
  if (!run_dataplane_sections(json_path, threads)) return 1;
  if (!run_checkpoint_idle_section()) return 1;
  if (!json_path.empty()) return 0;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
