// Google-benchmark microbenchmarks of the engine's hot paths: partitioner
// dispatch, shuffle bucketing with and without map-side combine, and the
// wide-merge implementations. These guard the substrate's performance so
// profiling sweeps stay cheap.
//
// The custom main() additionally enforces the event-log overhead contract
// (DESIGN.md §12): with no sink attached, the per-task instrumentation
// guard must not allocate — checked by counting global operator new calls
// across 100k disabled-guard evaluations before the benchmarks run.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <unordered_map>

#include "common/rng.h"
#include "engine/partition.h"
#include "engine/partitioner.h"
#include "obs/event_log.h"
#include "obs/sinks.h"

namespace {
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace chopper;

engine::Partition make_records(std::size_t n, std::size_t distinct_keys) {
  common::Xoshiro256 rng(99);
  engine::Partition p;
  p.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    engine::Record r;
    r.key = rng.next_below(distinct_keys);
    r.values = {rng.next_double(), 1.0};
    p.push(std::move(r));
  }
  return p;
}

void BM_HashPartitioner(benchmark::State& state) {
  const engine::HashPartitioner part(static_cast<std::size_t>(state.range(0)));
  const auto data = make_records(4096, 1u << 20);
  for (auto _ : state) {
    std::size_t acc = 0;
    for (const auto& r : data.records()) acc += part.partition_of(r.key);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_HashPartitioner)->Arg(100)->Arg(500)->Arg(2000);

void BM_RangePartitioner(benchmark::State& state) {
  common::Xoshiro256 rng(7);
  std::vector<std::uint64_t> sample(2048);
  for (auto& k : sample) k = rng();
  const auto part = engine::RangePartitioner::from_sample(
      static_cast<std::size_t>(state.range(0)), sample);
  const auto data = make_records(4096, 1u << 20);
  for (auto _ : state) {
    std::size_t acc = 0;
    for (const auto& r : data.records()) acc += part->partition_of(r.key);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_RangePartitioner)->Arg(100)->Arg(500)->Arg(2000);

void BM_BucketByPartition(benchmark::State& state) {
  const std::size_t r_count = static_cast<std::size_t>(state.range(0));
  const engine::HashPartitioner part(r_count);
  const auto data = make_records(8192, 1u << 16);
  for (auto _ : state) {
    std::vector<engine::Partition> buckets(r_count);
    for (const auto& r : data.records()) {
      buckets[part.partition_of(r.key)].push(r);
    }
    benchmark::DoNotOptimize(buckets.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_BucketByPartition)->Arg(100)->Arg(500);

void BM_MapSideCombine(benchmark::State& state) {
  const std::size_t distinct = static_cast<std::size_t>(state.range(0));
  const auto data = make_records(8192, distinct);
  for (auto _ : state) {
    std::unordered_map<std::uint64_t, engine::Record> acc;
    for (const auto& r : data.records()) {
      auto [it, inserted] = acc.try_emplace(r.key, r);
      if (!inserted) it->second.values[1] += r.values[1];
    }
    benchmark::DoNotOptimize(acc.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_MapSideCombine)->Arg(10)->Arg(1000)->Arg(100000);

void BM_TraceEmitDisabled(benchmark::State& state) {
  // The guard every instrumented hot path evaluates per task when no event
  // log is attached: one relaxed atomic load, no branch taken.
  obs::EventLog log;
  std::size_t taken = 0;
  for (auto _ : state) {
    if (log.enabled()) ++taken;
    benchmark::DoNotOptimize(taken);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmitDisabled);

void BM_TraceEmitRing(benchmark::State& state) {
  // Full emit cost into the bounded in-memory sink (the cheapest enabled
  // configuration): seq/wall stamping + one striped-ring slot write.
  obs::EventLog log;
  log.attach(std::make_shared<obs::RingSink>(4096));
  for (auto _ : state) {
    obs::Event e;
    e.kind = obs::EventKind::kTaskSpan;
    e.task = 1;
    e.node = 2;
    e.t_end = 1.0;
    log.emit(std::move(e));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmitRing);

}  // namespace

int main(int argc, char** argv) {
  // Overhead-contract check: 100k disabled-guard evaluations must perform
  // zero heap allocations (and never take the emit path).
  {
    obs::EventLog log;
    const std::size_t before = g_allocs.load(std::memory_order_relaxed);
    std::size_t taken = 0;
    for (int i = 0; i < 100000; ++i) {
      if (log.enabled()) ++taken;
      benchmark::DoNotOptimize(taken);
    }
    const std::size_t after = g_allocs.load(std::memory_order_relaxed);
    if (after != before || taken != 0) {
      std::fprintf(stderr,
                   "FAIL: disabled event-log guard allocated (%zu allocations "
                   "across 100000 checks, %zu emits)\n",
                   after - before, taken);
      return 1;
    }
    std::printf("disabled event-log guard: 100000 checks, 0 allocations\n");
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
