// Google-benchmark microbenchmarks of the engine's hot paths: partitioner
// dispatch, shuffle bucketing with and without map-side combine, and the
// wide-merge implementations. These guard the substrate's performance so
// profiling sweeps stay cheap.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "common/rng.h"
#include "engine/partition.h"
#include "engine/partitioner.h"

namespace {

using namespace chopper;

engine::Partition make_records(std::size_t n, std::size_t distinct_keys) {
  common::Xoshiro256 rng(99);
  engine::Partition p;
  p.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    engine::Record r;
    r.key = rng.next_below(distinct_keys);
    r.values = {rng.next_double(), 1.0};
    p.push(std::move(r));
  }
  return p;
}

void BM_HashPartitioner(benchmark::State& state) {
  const engine::HashPartitioner part(static_cast<std::size_t>(state.range(0)));
  const auto data = make_records(4096, 1u << 20);
  for (auto _ : state) {
    std::size_t acc = 0;
    for (const auto& r : data.records()) acc += part.partition_of(r.key);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_HashPartitioner)->Arg(100)->Arg(500)->Arg(2000);

void BM_RangePartitioner(benchmark::State& state) {
  common::Xoshiro256 rng(7);
  std::vector<std::uint64_t> sample(2048);
  for (auto& k : sample) k = rng();
  const auto part = engine::RangePartitioner::from_sample(
      static_cast<std::size_t>(state.range(0)), sample);
  const auto data = make_records(4096, 1u << 20);
  for (auto _ : state) {
    std::size_t acc = 0;
    for (const auto& r : data.records()) acc += part->partition_of(r.key);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_RangePartitioner)->Arg(100)->Arg(500)->Arg(2000);

void BM_BucketByPartition(benchmark::State& state) {
  const std::size_t r_count = static_cast<std::size_t>(state.range(0));
  const engine::HashPartitioner part(r_count);
  const auto data = make_records(8192, 1u << 16);
  for (auto _ : state) {
    std::vector<engine::Partition> buckets(r_count);
    for (const auto& r : data.records()) {
      buckets[part.partition_of(r.key)].push(r);
    }
    benchmark::DoNotOptimize(buckets.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_BucketByPartition)->Arg(100)->Arg(500);

void BM_MapSideCombine(benchmark::State& state) {
  const std::size_t distinct = static_cast<std::size_t>(state.range(0));
  const auto data = make_records(8192, distinct);
  for (auto _ : state) {
    std::unordered_map<std::uint64_t, engine::Record> acc;
    for (const auto& r : data.records()) {
      auto [it, inserted] = acc.try_emplace(r.key, r);
      if (!inserted) it->second.values[1] += r.values[1];
    }
    benchmark::DoNotOptimize(acc.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_MapSideCombine)->Arg(10)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
