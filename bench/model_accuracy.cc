// Model diagnostics: how well the Eq. 1/2 polynomial fits each stage of
// each workload (the paper claims "the model fits the actual execution time
// and amount of shuffle data well", Sec. III-B). Reports per-stage training
// error plus a held-out check: models trained on fractions {0.5, 1.0}
// predicting the never-profiled 0.75 fraction.
#include "harness.h"

using namespace chopper;

namespace {

void report(const std::string& name, const workloads::Workload& wl,
            bench::Table& table) {
  auto opts = bench::chopper_options();
  core::Chopper chopper(bench::bench_cluster(), opts);
  chopper.profile(wl.name(), wl.runner(), 1.0);
  auto& db = chopper.db();

  // Held-out run at an unseen fraction.
  auto eng = chopper.make_engine();
  eng->set_plan_provider(std::make_shared<core::FixedPlanProvider>(
      engine::PartitionerKind::kHash, 350));  // unseen P too
  wl.run(*eng, 0.75);

  for (const auto& s : eng->metrics().stages()) {
    core::StageModel* model = const_cast<core::StageModel*>(
        db.model(wl.name(), s.signature, s.partitioner));
    const double pred = model->predict_texe(
        static_cast<double>(s.input_bytes),
        static_cast<double>(s.num_partitions));
    const double actual = s.sim_time_s;
    std::string nm = s.name;
    if (nm.size() > 42) nm = nm.substr(0, 39) + "...";
    table.add_row(
        {name, nm, bench::Table::num(model->texe_fit_error(), 4),
         bench::Table::num(pred, 3), bench::Table::num(actual, 3),
         bench::Table::num(100.0 * std::abs(pred - actual) /
                               std::max(actual, 1e-9),
                           1)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_flag(argc, argv);
  bench::print_header(
      "Model accuracy: Eq. 1/2 fit quality per stage (training error and a "
      "held-out prediction at unseen input fraction 0.75, P=350)");
  bench::Table table({"workload", "stage", "train err (rel^2)",
                      "heldout pred(s)", "heldout actual(s)", "rel err(%)"});
  report("kmeans", workloads::KMeansWorkload(bench::kmeans_params()), table);
  report("sql", workloads::SqlWorkload(bench::sql_params()), table);
  table.print();
  if (!json_path.empty()) table.write_json(json_path, "model_accuracy");
  return 0;
}
