// Multi-tenant job service throughput/latency sweep.
//
// Submits a fixed mixed tenant load — heavy "batch"-pool jobs (kmeans- and
// sql-flavored) interleaved with small "interactive"-pool aggregations — to
// a JobServer over one shared engine, for every (scheduling mode x
// concurrency) combination, and reports virtual makespan, p50/p99 job
// latency (overall and for the small-job pool alone) and the granted-time
// fairness ratio between the pools.
//
// The headline the service layer must reproduce: under FIFO a small job
// submitted behind a heavy batch job waits for the whole thing, so the
// interactive p99 explodes; FAIR with a 2:1 interactive weight interleaves
// windows and bounds it, at a modest makespan cost.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "harness.h"
#include "service/job_server.h"

using namespace chopper;

namespace {

struct JobSpec {
  engine::DatasetPtr ds;
  service::SubmitOptions opts;
};

/// Fixed submission order: heavy batch jobs up front, small interactive
/// queries arriving among them — the pattern FIFO handles worst.
std::vector<JobSpec> make_load() {
  std::vector<JobSpec> load;
  std::size_t small = 0, heavy = 0;
  for (std::size_t i = 0; i < 12; ++i) {
    JobSpec s;
    if (i % 3 == 2) {
      s.ds = bench::service_small_job(1000 + small);
      s.opts.name = "agg-" + std::to_string(small++);
      s.opts.pool = "interactive";
    } else if (i % 2 == 0) {
      s.ds = bench::service_kmeans_like_job(2000 + heavy);
      s.opts.name = "kmeans-" + std::to_string(heavy++);
      s.opts.pool = "batch";
    } else {
      s.ds = bench::service_sql_like_job(3000 + heavy);
      s.opts.name = "sql-" + std::to_string(heavy++);
      s.opts.pool = "batch";
    }
    load.push_back(std::move(s));
  }
  return load;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(v.size() - 1)));
  return v[idx];
}

struct SweepRow {
  double makespan = 0.0;
  double p50 = 0.0, p99 = 0.0;
  double small_p50 = 0.0, small_p99 = 0.0;
};

SweepRow run_sweep(service::SchedulingMode mode, std::size_t concurrency) {
  engine::Engine eng(bench::bench_cluster(), bench::vanilla_options());

  service::JobServerOptions sopts;
  sopts.mode = mode;
  sopts.max_concurrent_jobs = concurrency;
  sopts.max_queued_jobs = 64;
  sopts.pools["interactive"] = {/*weight=*/2.0, /*min_share=*/0.0};
  sopts.pools["batch"] = {/*weight=*/1.0, /*min_share=*/0.0};
  service::JobServer server(eng, sopts);

  const auto load = make_load();
  std::vector<service::JobHandle> handles;
  std::vector<bool> is_small;
  for (const auto& spec : load) {
    is_small.push_back(spec.opts.pool == "interactive");
    handles.push_back(server.submit(spec.ds, spec.opts));
  }
  server.wait_all();

  SweepRow row;
  std::vector<double> lat, small_lat;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    handles[i].wait();
    const auto st = handles[i].stats();
    row.makespan = std::max(row.makespan, st.finish_vtime);
    lat.push_back(st.latency_s());
    if (is_small[i]) small_lat.push_back(st.latency_s());
  }
  row.p50 = percentile(lat, 0.50);
  row.p99 = percentile(lat, 0.99);
  row.small_p50 = percentile(small_lat, 0.50);
  row.small_p99 = percentile(small_lat, 0.99);
  return row;
}

/// Equal sustained demand from two pools with 2:1 weights: the granted-time
/// ratio under FAIR must track the weights (the fairness property itself;
/// demand-limited mixed loads can't show it).
double weighted_share_ratio(service::SchedulingMode mode) {
  engine::Engine eng(bench::bench_cluster(), bench::vanilla_options());
  service::JobServerOptions sopts;
  sopts.mode = mode;
  sopts.max_concurrent_jobs = 8;
  sopts.pools["gold"] = {/*weight=*/2.0, /*min_share=*/0.0};
  sopts.pools["silver"] = {/*weight=*/1.0, /*min_share=*/0.0};
  service::JobServer server(eng, sopts);

  std::vector<service::JobHandle> handles;
  for (std::size_t i = 0; i < 4; ++i) {
    service::SubmitOptions o;
    o.name = "gold-" + std::to_string(i);
    o.pool = "gold";
    handles.push_back(server.submit(bench::service_kmeans_like_job(500 + i), o));
    o.name = "silver-" + std::to_string(i);
    o.pool = "silver";
    handles.push_back(
        server.submit(bench::service_kmeans_like_job(600 + i), o));
  }
  server.wait_all();
  for (auto& h : handles) h.wait();

  // Measure over the contention phase only: once one pool drains, the other
  // has the cluster to itself and the ratio is demand-, not policy-bound.
  const auto log = server.grant_log();
  double gold_end = 0.0, silver_end = 0.0;
  for (const auto& g : log) {
    (g.pool == "gold" ? gold_end : silver_end) =
        std::max(g.pool == "gold" ? gold_end : silver_end,
                 g.start + g.duration);
  }
  const double window = std::min(gold_end, silver_end);
  double gold_s = 0.0, silver_s = 0.0;
  for (const auto& g : log) {
    const double clipped =
        std::max(0.0, std::min(g.start + g.duration, window) - g.start);
    (g.pool == "gold" ? gold_s : silver_s) += clipped;
  }
  return silver_s > 0.0 ? gold_s / silver_s : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Multi-tenant service: mode x concurrency -> makespan / latency");
  std::printf("load: 12 jobs (8 heavy batch, 4 small interactive), "
              "interactive weight 2\n\n");

  bench::Table table({"mode", "conc", "makespan(s)", "p50(s)", "p99(s)",
                      "small p50(s)", "small p99(s)"});
  for (const auto mode :
       {service::SchedulingMode::kFifo, service::SchedulingMode::kFair}) {
    for (const std::size_t conc : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
      const auto row = run_sweep(mode, conc);
      table.add_row({service::to_string(mode), std::to_string(conc),
                     bench::Table::num(row.makespan, 1),
                     bench::Table::num(row.p50, 1),
                     bench::Table::num(row.p99, 1),
                     bench::Table::num(row.small_p50, 1),
                     bench::Table::num(row.small_p99, 1)});
    }
  }
  table.print();
  const std::string json = bench::json_flag(argc, argv);
  if (!json.empty() && !table.write_json(json, "service_throughput")) return 1;
  std::printf("\nFAIR bounds the small-pool p99 that FIFO lets heavy batch "
              "jobs inflate.\n");

  bench::print_header("Weighted share under sustained 2:1 demand");
  bench::Table ftable({"mode", "gold:silver granted ratio (weights 2:1)"});
  for (const auto mode :
       {service::SchedulingMode::kFifo, service::SchedulingMode::kFair}) {
    ftable.add_row({service::to_string(mode),
                    bench::Table::num(weighted_share_ratio(mode), 2)});
  }
  ftable.print();
  std::printf("(measured over the contention window where both pools still "
              "had demand)\n");
  return 0;
}
