// Table III: the number of partitions CHOPPER uses per KMeans stage vs the
// vanilla default (300 for every stage in the paper). Iterative stages
// share a signature and therefore a scheme, like the paper's stages 12-17.
#include "harness.h"

using namespace chopper;

int main() {
  const workloads::KMeansWorkload wl(bench::kmeans_params());

  auto vanilla = bench::run_vanilla(wl);
  core::Chopper chopper(bench::bench_cluster(), bench::chopper_options());
  std::vector<core::PlannedStage> plan;
  auto optimized = bench::run_chopper(chopper, wl, &plan);

  bench::print_header(
      "Table III: partitions per stage, CHOPPER vs Spark (effective counts "
      "observed at runtime; cache-dependent stages inherit the cached "
      "partitioning CHOPPER chose upstream)");
  const auto& vs = vanilla->metrics().stages();
  const auto& cs = optimized->metrics().stages();
  bench::Table table({"stage", "name", "CHOPPER", "Spark"});
  for (std::size_t s = 0; s < std::min(vs.size(), cs.size()); ++s) {
    std::string name = cs[s].name;
    if (name.size() > 44) name = name.substr(0, 41) + "...";
    table.add_row({std::to_string(s), name,
                   std::to_string(cs[s].num_partitions),
                   std::to_string(vs[s].num_partitions)});
  }
  table.print();

  bench::print_header("Generated plan (Fig. 6 configuration file)");
  std::printf("%s", chopper.plan_config(plan).to_string().c_str());
  return 0;
}
