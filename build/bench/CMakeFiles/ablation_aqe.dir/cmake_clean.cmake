file(REMOVE_RECURSE
  "CMakeFiles/ablation_aqe.dir/ablation_aqe.cc.o"
  "CMakeFiles/ablation_aqe.dir/ablation_aqe.cc.o.d"
  "ablation_aqe"
  "ablation_aqe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aqe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
