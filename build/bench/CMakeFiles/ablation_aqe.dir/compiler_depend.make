# Empty compiler generated dependencies file for ablation_aqe.
# This may be replaced when dependencies are built.
