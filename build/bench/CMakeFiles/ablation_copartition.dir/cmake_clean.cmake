file(REMOVE_RECURSE
  "CMakeFiles/ablation_copartition.dir/ablation_copartition.cc.o"
  "CMakeFiles/ablation_copartition.dir/ablation_copartition.cc.o.d"
  "ablation_copartition"
  "ablation_copartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_copartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
