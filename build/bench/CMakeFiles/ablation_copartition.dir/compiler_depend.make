# Empty compiler generated dependencies file for ablation_copartition.
# This may be replaced when dependencies are built.
