file(REMOVE_RECURSE
  "CMakeFiles/ext_pagerank.dir/ext_pagerank.cc.o"
  "CMakeFiles/ext_pagerank.dir/ext_pagerank.cc.o.d"
  "ext_pagerank"
  "ext_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
