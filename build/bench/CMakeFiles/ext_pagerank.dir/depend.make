# Empty dependencies file for ext_pagerank.
# This may be replaced when dependencies are built.
