file(REMOVE_RECURSE
  "CMakeFiles/fig10_sql_stages.dir/fig10_sql_stages.cc.o"
  "CMakeFiles/fig10_sql_stages.dir/fig10_sql_stages.cc.o.d"
  "fig10_sql_stages"
  "fig10_sql_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sql_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
