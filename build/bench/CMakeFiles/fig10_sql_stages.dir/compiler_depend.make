# Empty compiler generated dependencies file for fig10_sql_stages.
# This may be replaced when dependencies are built.
