
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_14_utilization.cc" "bench/CMakeFiles/fig11_14_utilization.dir/fig11_14_utilization.cc.o" "gcc" "bench/CMakeFiles/fig11_14_utilization.dir/fig11_14_utilization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/chopper/CMakeFiles/chopper_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/chopper_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/chopper_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/chopper_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
