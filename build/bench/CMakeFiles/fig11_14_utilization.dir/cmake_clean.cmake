file(REMOVE_RECURSE
  "CMakeFiles/fig11_14_utilization.dir/fig11_14_utilization.cc.o"
  "CMakeFiles/fig11_14_utilization.dir/fig11_14_utilization.cc.o.d"
  "fig11_14_utilization"
  "fig11_14_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_14_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
