# Empty compiler generated dependencies file for fig11_14_utilization.
# This may be replaced when dependencies are built.
