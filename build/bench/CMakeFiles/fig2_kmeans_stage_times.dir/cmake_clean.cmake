file(REMOVE_RECURSE
  "CMakeFiles/fig2_kmeans_stage_times.dir/fig2_kmeans_stage_times.cc.o"
  "CMakeFiles/fig2_kmeans_stage_times.dir/fig2_kmeans_stage_times.cc.o.d"
  "fig2_kmeans_stage_times"
  "fig2_kmeans_stage_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_kmeans_stage_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
