# Empty dependencies file for fig2_kmeans_stage_times.
# This may be replaced when dependencies are built.
