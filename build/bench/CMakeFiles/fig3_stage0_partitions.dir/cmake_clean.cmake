file(REMOVE_RECURSE
  "CMakeFiles/fig3_stage0_partitions.dir/fig3_stage0_partitions.cc.o"
  "CMakeFiles/fig3_stage0_partitions.dir/fig3_stage0_partitions.cc.o.d"
  "fig3_stage0_partitions"
  "fig3_stage0_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_stage0_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
