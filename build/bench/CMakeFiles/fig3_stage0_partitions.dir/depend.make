# Empty dependencies file for fig3_stage0_partitions.
# This may be replaced when dependencies are built.
