file(REMOVE_RECURSE
  "CMakeFiles/fig4_shuffle_data.dir/fig4_shuffle_data.cc.o"
  "CMakeFiles/fig4_shuffle_data.dir/fig4_shuffle_data.cc.o.d"
  "fig4_shuffle_data"
  "fig4_shuffle_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_shuffle_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
