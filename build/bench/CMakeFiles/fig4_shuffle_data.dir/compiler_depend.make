# Empty compiler generated dependencies file for fig4_shuffle_data.
# This may be replaced when dependencies are built.
