file(REMOVE_RECURSE
  "CMakeFiles/fig7_overall.dir/fig7_overall.cc.o"
  "CMakeFiles/fig7_overall.dir/fig7_overall.cc.o.d"
  "fig7_overall"
  "fig7_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
