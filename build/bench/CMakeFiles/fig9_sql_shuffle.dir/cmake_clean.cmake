file(REMOVE_RECURSE
  "CMakeFiles/fig9_sql_shuffle.dir/fig9_sql_shuffle.cc.o"
  "CMakeFiles/fig9_sql_shuffle.dir/fig9_sql_shuffle.cc.o.d"
  "fig9_sql_shuffle"
  "fig9_sql_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_sql_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
