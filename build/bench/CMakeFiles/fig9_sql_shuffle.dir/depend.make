# Empty dependencies file for fig9_sql_shuffle.
# This may be replaced when dependencies are built.
