file(REMOVE_RECURSE
  "CMakeFiles/micro_engine_ops.dir/micro_engine_ops.cc.o"
  "CMakeFiles/micro_engine_ops.dir/micro_engine_ops.cc.o.d"
  "micro_engine_ops"
  "micro_engine_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_engine_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
