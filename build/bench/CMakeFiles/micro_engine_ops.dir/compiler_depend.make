# Empty compiler generated dependencies file for micro_engine_ops.
# This may be replaced when dependencies are built.
