file(REMOVE_RECURSE
  "CMakeFiles/table3_partition_plan.dir/table3_partition_plan.cc.o"
  "CMakeFiles/table3_partition_plan.dir/table3_partition_plan.cc.o.d"
  "table3_partition_plan"
  "table3_partition_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_partition_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
