# Empty dependencies file for table3_partition_plan.
# This may be replaced when dependencies are built.
