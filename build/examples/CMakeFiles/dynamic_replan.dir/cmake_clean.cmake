file(REMOVE_RECURSE
  "CMakeFiles/dynamic_replan.dir/dynamic_replan.cpp.o"
  "CMakeFiles/dynamic_replan.dir/dynamic_replan.cpp.o.d"
  "dynamic_replan"
  "dynamic_replan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_replan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
