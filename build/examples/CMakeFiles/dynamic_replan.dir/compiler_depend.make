# Empty compiler generated dependencies file for dynamic_replan.
# This may be replaced when dependencies are built.
