file(REMOVE_RECURSE
  "CMakeFiles/kmeans_autotune.dir/kmeans_autotune.cpp.o"
  "CMakeFiles/kmeans_autotune.dir/kmeans_autotune.cpp.o.d"
  "kmeans_autotune"
  "kmeans_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmeans_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
