# Empty compiler generated dependencies file for kmeans_autotune.
# This may be replaced when dependencies are built.
