file(REMOVE_RECURSE
  "CMakeFiles/pca_pipeline.dir/pca_pipeline.cpp.o"
  "CMakeFiles/pca_pipeline.dir/pca_pipeline.cpp.o.d"
  "pca_pipeline"
  "pca_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pca_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
