# Empty dependencies file for pca_pipeline.
# This may be replaced when dependencies are built.
