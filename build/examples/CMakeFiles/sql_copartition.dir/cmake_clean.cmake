file(REMOVE_RECURSE
  "CMakeFiles/sql_copartition.dir/sql_copartition.cpp.o"
  "CMakeFiles/sql_copartition.dir/sql_copartition.cpp.o.d"
  "sql_copartition"
  "sql_copartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_copartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
