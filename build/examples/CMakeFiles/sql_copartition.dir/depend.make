# Empty dependencies file for sql_copartition.
# This may be replaced when dependencies are built.
