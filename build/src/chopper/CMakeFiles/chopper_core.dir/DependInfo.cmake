
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chopper/chopper.cc" "src/chopper/CMakeFiles/chopper_core.dir/chopper.cc.o" "gcc" "src/chopper/CMakeFiles/chopper_core.dir/chopper.cc.o.d"
  "/root/repo/src/chopper/collector.cc" "src/chopper/CMakeFiles/chopper_core.dir/collector.cc.o" "gcc" "src/chopper/CMakeFiles/chopper_core.dir/collector.cc.o.d"
  "/root/repo/src/chopper/config_plan.cc" "src/chopper/CMakeFiles/chopper_core.dir/config_plan.cc.o" "gcc" "src/chopper/CMakeFiles/chopper_core.dir/config_plan.cc.o.d"
  "/root/repo/src/chopper/cost.cc" "src/chopper/CMakeFiles/chopper_core.dir/cost.cc.o" "gcc" "src/chopper/CMakeFiles/chopper_core.dir/cost.cc.o.d"
  "/root/repo/src/chopper/model.cc" "src/chopper/CMakeFiles/chopper_core.dir/model.cc.o" "gcc" "src/chopper/CMakeFiles/chopper_core.dir/model.cc.o.d"
  "/root/repo/src/chopper/optimizer.cc" "src/chopper/CMakeFiles/chopper_core.dir/optimizer.cc.o" "gcc" "src/chopper/CMakeFiles/chopper_core.dir/optimizer.cc.o.d"
  "/root/repo/src/chopper/workload_db.cc" "src/chopper/CMakeFiles/chopper_core.dir/workload_db.cc.o" "gcc" "src/chopper/CMakeFiles/chopper_core.dir/workload_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/chopper_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/chopper_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
