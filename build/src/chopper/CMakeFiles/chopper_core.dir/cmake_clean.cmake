file(REMOVE_RECURSE
  "CMakeFiles/chopper_core.dir/chopper.cc.o"
  "CMakeFiles/chopper_core.dir/chopper.cc.o.d"
  "CMakeFiles/chopper_core.dir/collector.cc.o"
  "CMakeFiles/chopper_core.dir/collector.cc.o.d"
  "CMakeFiles/chopper_core.dir/config_plan.cc.o"
  "CMakeFiles/chopper_core.dir/config_plan.cc.o.d"
  "CMakeFiles/chopper_core.dir/cost.cc.o"
  "CMakeFiles/chopper_core.dir/cost.cc.o.d"
  "CMakeFiles/chopper_core.dir/model.cc.o"
  "CMakeFiles/chopper_core.dir/model.cc.o.d"
  "CMakeFiles/chopper_core.dir/optimizer.cc.o"
  "CMakeFiles/chopper_core.dir/optimizer.cc.o.d"
  "CMakeFiles/chopper_core.dir/workload_db.cc.o"
  "CMakeFiles/chopper_core.dir/workload_db.cc.o.d"
  "libchopper_core.a"
  "libchopper_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chopper_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
