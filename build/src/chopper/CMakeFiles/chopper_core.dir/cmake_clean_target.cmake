file(REMOVE_RECURSE
  "libchopper_core.a"
)
