# Empty dependencies file for chopper_core.
# This may be replaced when dependencies are built.
