file(REMOVE_RECURSE
  "CMakeFiles/chopper_common.dir/kv_config.cc.o"
  "CMakeFiles/chopper_common.dir/kv_config.cc.o.d"
  "CMakeFiles/chopper_common.dir/linalg.cc.o"
  "CMakeFiles/chopper_common.dir/linalg.cc.o.d"
  "CMakeFiles/chopper_common.dir/logging.cc.o"
  "CMakeFiles/chopper_common.dir/logging.cc.o.d"
  "CMakeFiles/chopper_common.dir/stats.cc.o"
  "CMakeFiles/chopper_common.dir/stats.cc.o.d"
  "CMakeFiles/chopper_common.dir/thread_pool.cc.o"
  "CMakeFiles/chopper_common.dir/thread_pool.cc.o.d"
  "libchopper_common.a"
  "libchopper_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chopper_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
