file(REMOVE_RECURSE
  "libchopper_common.a"
)
