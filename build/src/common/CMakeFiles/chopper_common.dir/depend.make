# Empty dependencies file for chopper_common.
# This may be replaced when dependencies are built.
