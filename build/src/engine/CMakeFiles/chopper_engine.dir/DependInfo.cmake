
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/block_manager.cc" "src/engine/CMakeFiles/chopper_engine.dir/block_manager.cc.o" "gcc" "src/engine/CMakeFiles/chopper_engine.dir/block_manager.cc.o.d"
  "/root/repo/src/engine/cluster.cc" "src/engine/CMakeFiles/chopper_engine.dir/cluster.cc.o" "gcc" "src/engine/CMakeFiles/chopper_engine.dir/cluster.cc.o.d"
  "/root/repo/src/engine/dataset.cc" "src/engine/CMakeFiles/chopper_engine.dir/dataset.cc.o" "gcc" "src/engine/CMakeFiles/chopper_engine.dir/dataset.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/engine/CMakeFiles/chopper_engine.dir/engine.cc.o" "gcc" "src/engine/CMakeFiles/chopper_engine.dir/engine.cc.o.d"
  "/root/repo/src/engine/metrics.cc" "src/engine/CMakeFiles/chopper_engine.dir/metrics.cc.o" "gcc" "src/engine/CMakeFiles/chopper_engine.dir/metrics.cc.o.d"
  "/root/repo/src/engine/partitioner.cc" "src/engine/CMakeFiles/chopper_engine.dir/partitioner.cc.o" "gcc" "src/engine/CMakeFiles/chopper_engine.dir/partitioner.cc.o.d"
  "/root/repo/src/engine/plan.cc" "src/engine/CMakeFiles/chopper_engine.dir/plan.cc.o" "gcc" "src/engine/CMakeFiles/chopper_engine.dir/plan.cc.o.d"
  "/root/repo/src/engine/scheduler.cc" "src/engine/CMakeFiles/chopper_engine.dir/scheduler.cc.o" "gcc" "src/engine/CMakeFiles/chopper_engine.dir/scheduler.cc.o.d"
  "/root/repo/src/engine/shuffle.cc" "src/engine/CMakeFiles/chopper_engine.dir/shuffle.cc.o" "gcc" "src/engine/CMakeFiles/chopper_engine.dir/shuffle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/chopper_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
