file(REMOVE_RECURSE
  "CMakeFiles/chopper_engine.dir/block_manager.cc.o"
  "CMakeFiles/chopper_engine.dir/block_manager.cc.o.d"
  "CMakeFiles/chopper_engine.dir/cluster.cc.o"
  "CMakeFiles/chopper_engine.dir/cluster.cc.o.d"
  "CMakeFiles/chopper_engine.dir/dataset.cc.o"
  "CMakeFiles/chopper_engine.dir/dataset.cc.o.d"
  "CMakeFiles/chopper_engine.dir/engine.cc.o"
  "CMakeFiles/chopper_engine.dir/engine.cc.o.d"
  "CMakeFiles/chopper_engine.dir/metrics.cc.o"
  "CMakeFiles/chopper_engine.dir/metrics.cc.o.d"
  "CMakeFiles/chopper_engine.dir/partitioner.cc.o"
  "CMakeFiles/chopper_engine.dir/partitioner.cc.o.d"
  "CMakeFiles/chopper_engine.dir/plan.cc.o"
  "CMakeFiles/chopper_engine.dir/plan.cc.o.d"
  "CMakeFiles/chopper_engine.dir/scheduler.cc.o"
  "CMakeFiles/chopper_engine.dir/scheduler.cc.o.d"
  "CMakeFiles/chopper_engine.dir/shuffle.cc.o"
  "CMakeFiles/chopper_engine.dir/shuffle.cc.o.d"
  "libchopper_engine.a"
  "libchopper_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chopper_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
