file(REMOVE_RECURSE
  "libchopper_engine.a"
)
