# Empty compiler generated dependencies file for chopper_engine.
# This may be replaced when dependencies are built.
