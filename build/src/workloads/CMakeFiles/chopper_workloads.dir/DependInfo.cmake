
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/data_gen.cc" "src/workloads/CMakeFiles/chopper_workloads.dir/data_gen.cc.o" "gcc" "src/workloads/CMakeFiles/chopper_workloads.dir/data_gen.cc.o.d"
  "/root/repo/src/workloads/kmeans.cc" "src/workloads/CMakeFiles/chopper_workloads.dir/kmeans.cc.o" "gcc" "src/workloads/CMakeFiles/chopper_workloads.dir/kmeans.cc.o.d"
  "/root/repo/src/workloads/pagerank.cc" "src/workloads/CMakeFiles/chopper_workloads.dir/pagerank.cc.o" "gcc" "src/workloads/CMakeFiles/chopper_workloads.dir/pagerank.cc.o.d"
  "/root/repo/src/workloads/pca.cc" "src/workloads/CMakeFiles/chopper_workloads.dir/pca.cc.o" "gcc" "src/workloads/CMakeFiles/chopper_workloads.dir/pca.cc.o.d"
  "/root/repo/src/workloads/sql.cc" "src/workloads/CMakeFiles/chopper_workloads.dir/sql.cc.o" "gcc" "src/workloads/CMakeFiles/chopper_workloads.dir/sql.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/chopper_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/chopper_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/chopper_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/chopper_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
