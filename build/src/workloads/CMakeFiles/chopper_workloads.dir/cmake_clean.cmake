file(REMOVE_RECURSE
  "CMakeFiles/chopper_workloads.dir/data_gen.cc.o"
  "CMakeFiles/chopper_workloads.dir/data_gen.cc.o.d"
  "CMakeFiles/chopper_workloads.dir/kmeans.cc.o"
  "CMakeFiles/chopper_workloads.dir/kmeans.cc.o.d"
  "CMakeFiles/chopper_workloads.dir/pagerank.cc.o"
  "CMakeFiles/chopper_workloads.dir/pagerank.cc.o.d"
  "CMakeFiles/chopper_workloads.dir/pca.cc.o"
  "CMakeFiles/chopper_workloads.dir/pca.cc.o.d"
  "CMakeFiles/chopper_workloads.dir/sql.cc.o"
  "CMakeFiles/chopper_workloads.dir/sql.cc.o.d"
  "CMakeFiles/chopper_workloads.dir/workload.cc.o"
  "CMakeFiles/chopper_workloads.dir/workload.cc.o.d"
  "libchopper_workloads.a"
  "libchopper_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chopper_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
