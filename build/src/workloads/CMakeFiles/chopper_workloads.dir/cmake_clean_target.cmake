file(REMOVE_RECURSE
  "libchopper_workloads.a"
)
