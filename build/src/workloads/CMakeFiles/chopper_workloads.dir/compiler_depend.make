# Empty compiler generated dependencies file for chopper_workloads.
# This may be replaced when dependencies are built.
