file(REMOVE_RECURSE
  "CMakeFiles/chopper_collector_test.dir/chopper_collector_test.cc.o"
  "CMakeFiles/chopper_collector_test.dir/chopper_collector_test.cc.o.d"
  "chopper_collector_test"
  "chopper_collector_test.pdb"
  "chopper_collector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chopper_collector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
