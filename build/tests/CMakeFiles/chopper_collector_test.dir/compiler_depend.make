# Empty compiler generated dependencies file for chopper_collector_test.
# This may be replaced when dependencies are built.
