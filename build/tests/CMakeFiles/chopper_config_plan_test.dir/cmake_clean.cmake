file(REMOVE_RECURSE
  "CMakeFiles/chopper_config_plan_test.dir/chopper_config_plan_test.cc.o"
  "CMakeFiles/chopper_config_plan_test.dir/chopper_config_plan_test.cc.o.d"
  "chopper_config_plan_test"
  "chopper_config_plan_test.pdb"
  "chopper_config_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chopper_config_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
