# Empty compiler generated dependencies file for chopper_config_plan_test.
# This may be replaced when dependencies are built.
