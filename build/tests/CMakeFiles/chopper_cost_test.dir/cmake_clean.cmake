file(REMOVE_RECURSE
  "CMakeFiles/chopper_cost_test.dir/chopper_cost_test.cc.o"
  "CMakeFiles/chopper_cost_test.dir/chopper_cost_test.cc.o.d"
  "chopper_cost_test"
  "chopper_cost_test.pdb"
  "chopper_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chopper_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
