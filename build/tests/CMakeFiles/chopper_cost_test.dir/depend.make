# Empty dependencies file for chopper_cost_test.
# This may be replaced when dependencies are built.
