file(REMOVE_RECURSE
  "CMakeFiles/chopper_facade_test.dir/chopper_facade_test.cc.o"
  "CMakeFiles/chopper_facade_test.dir/chopper_facade_test.cc.o.d"
  "chopper_facade_test"
  "chopper_facade_test.pdb"
  "chopper_facade_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chopper_facade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
