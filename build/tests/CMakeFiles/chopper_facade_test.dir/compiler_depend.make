# Empty compiler generated dependencies file for chopper_facade_test.
# This may be replaced when dependencies are built.
