file(REMOVE_RECURSE
  "CMakeFiles/chopper_model_test.dir/chopper_model_test.cc.o"
  "CMakeFiles/chopper_model_test.dir/chopper_model_test.cc.o.d"
  "chopper_model_test"
  "chopper_model_test.pdb"
  "chopper_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chopper_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
