# Empty compiler generated dependencies file for chopper_model_test.
# This may be replaced when dependencies are built.
