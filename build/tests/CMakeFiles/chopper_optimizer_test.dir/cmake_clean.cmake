file(REMOVE_RECURSE
  "CMakeFiles/chopper_optimizer_test.dir/chopper_optimizer_test.cc.o"
  "CMakeFiles/chopper_optimizer_test.dir/chopper_optimizer_test.cc.o.d"
  "chopper_optimizer_test"
  "chopper_optimizer_test.pdb"
  "chopper_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chopper_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
