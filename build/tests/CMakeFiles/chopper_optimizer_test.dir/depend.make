# Empty dependencies file for chopper_optimizer_test.
# This may be replaced when dependencies are built.
