file(REMOVE_RECURSE
  "CMakeFiles/chopper_workload_db_test.dir/chopper_workload_db_test.cc.o"
  "CMakeFiles/chopper_workload_db_test.dir/chopper_workload_db_test.cc.o.d"
  "chopper_workload_db_test"
  "chopper_workload_db_test.pdb"
  "chopper_workload_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chopper_workload_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
