# Empty dependencies file for chopper_workload_db_test.
# This may be replaced when dependencies are built.
