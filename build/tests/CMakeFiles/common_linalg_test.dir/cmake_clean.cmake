file(REMOVE_RECURSE
  "CMakeFiles/common_linalg_test.dir/common_linalg_test.cc.o"
  "CMakeFiles/common_linalg_test.dir/common_linalg_test.cc.o.d"
  "common_linalg_test"
  "common_linalg_test.pdb"
  "common_linalg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_linalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
