# Empty dependencies file for common_linalg_test.
# This may be replaced when dependencies are built.
