# Empty dependencies file for engine_cluster_test.
# This may be replaced when dependencies are built.
