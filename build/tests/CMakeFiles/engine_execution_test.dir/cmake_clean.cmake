file(REMOVE_RECURSE
  "CMakeFiles/engine_execution_test.dir/engine_execution_test.cc.o"
  "CMakeFiles/engine_execution_test.dir/engine_execution_test.cc.o.d"
  "engine_execution_test"
  "engine_execution_test.pdb"
  "engine_execution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_execution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
