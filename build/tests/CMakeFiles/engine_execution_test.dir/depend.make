# Empty dependencies file for engine_execution_test.
# This may be replaced when dependencies are built.
