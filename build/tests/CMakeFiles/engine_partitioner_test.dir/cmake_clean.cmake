file(REMOVE_RECURSE
  "CMakeFiles/engine_partitioner_test.dir/engine_partitioner_test.cc.o"
  "CMakeFiles/engine_partitioner_test.dir/engine_partitioner_test.cc.o.d"
  "engine_partitioner_test"
  "engine_partitioner_test.pdb"
  "engine_partitioner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_partitioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
