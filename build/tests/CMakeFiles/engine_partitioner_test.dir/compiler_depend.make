# Empty compiler generated dependencies file for engine_partitioner_test.
# This may be replaced when dependencies are built.
