file(REMOVE_RECURSE
  "CMakeFiles/integration_chopper_test.dir/integration_chopper_test.cc.o"
  "CMakeFiles/integration_chopper_test.dir/integration_chopper_test.cc.o.d"
  "integration_chopper_test"
  "integration_chopper_test.pdb"
  "integration_chopper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_chopper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
