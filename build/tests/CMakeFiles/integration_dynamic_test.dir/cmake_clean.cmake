file(REMOVE_RECURSE
  "CMakeFiles/integration_dynamic_test.dir/integration_dynamic_test.cc.o"
  "CMakeFiles/integration_dynamic_test.dir/integration_dynamic_test.cc.o.d"
  "integration_dynamic_test"
  "integration_dynamic_test.pdb"
  "integration_dynamic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_dynamic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
