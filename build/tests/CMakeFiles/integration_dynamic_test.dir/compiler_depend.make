# Empty compiler generated dependencies file for integration_dynamic_test.
# This may be replaced when dependencies are built.
