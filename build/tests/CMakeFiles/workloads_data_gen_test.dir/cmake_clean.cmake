file(REMOVE_RECURSE
  "CMakeFiles/workloads_data_gen_test.dir/workloads_data_gen_test.cc.o"
  "CMakeFiles/workloads_data_gen_test.dir/workloads_data_gen_test.cc.o.d"
  "workloads_data_gen_test"
  "workloads_data_gen_test.pdb"
  "workloads_data_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_data_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
