# Empty compiler generated dependencies file for workloads_data_gen_test.
# This may be replaced when dependencies are built.
