file(REMOVE_RECURSE
  "CMakeFiles/workloads_kmeans_test.dir/workloads_kmeans_test.cc.o"
  "CMakeFiles/workloads_kmeans_test.dir/workloads_kmeans_test.cc.o.d"
  "workloads_kmeans_test"
  "workloads_kmeans_test.pdb"
  "workloads_kmeans_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_kmeans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
