# Empty dependencies file for workloads_kmeans_test.
# This may be replaced when dependencies are built.
