file(REMOVE_RECURSE
  "CMakeFiles/workloads_pagerank_test.dir/workloads_pagerank_test.cc.o"
  "CMakeFiles/workloads_pagerank_test.dir/workloads_pagerank_test.cc.o.d"
  "workloads_pagerank_test"
  "workloads_pagerank_test.pdb"
  "workloads_pagerank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_pagerank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
