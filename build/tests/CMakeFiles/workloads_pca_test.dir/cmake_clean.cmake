file(REMOVE_RECURSE
  "CMakeFiles/workloads_pca_test.dir/workloads_pca_test.cc.o"
  "CMakeFiles/workloads_pca_test.dir/workloads_pca_test.cc.o.d"
  "workloads_pca_test"
  "workloads_pca_test.pdb"
  "workloads_pca_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_pca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
