file(REMOVE_RECURSE
  "CMakeFiles/workloads_sql_test.dir/workloads_sql_test.cc.o"
  "CMakeFiles/workloads_sql_test.dir/workloads_sql_test.cc.o.d"
  "workloads_sql_test"
  "workloads_sql_test.pdb"
  "workloads_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
