file(REMOVE_RECURSE
  "CMakeFiles/chopperctl.dir/chopperctl.cc.o"
  "CMakeFiles/chopperctl.dir/chopperctl.cc.o.d"
  "chopperctl"
  "chopperctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chopperctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
