# Empty compiler generated dependencies file for chopperctl.
# This may be replaced when dependencies are built.
