# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(chopperctl_usage "/root/repo/build/tools/chopperctl")
set_tests_properties(chopperctl_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(chopperctl_bad_workload "/root/repo/build/tools/chopperctl" "run" "--workload" "nope")
set_tests_properties(chopperctl_bad_workload PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(chopperctl_end_to_end "/usr/bin/cmake" "-DCTL=/root/repo/build/tools/chopperctl" "-DWORKDIR=/root/repo/build/tools" "-P" "/root/repo/tools/e2e_test.cmake")
set_tests_properties(chopperctl_end_to_end PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
