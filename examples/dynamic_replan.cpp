// Dynamic re-planning: CHOPPER allows the workload configuration file to be
// updated while a workload is running; the (modified) DAGScheduler picks up
// the new schemes the next time it resolves a stage (paper Sec. III-A).
//
// This example runs an iterative job sequence against one shared
// ConfigPlanProvider and swaps the plan between iterations — the stage
// metrics show the partition counts change mid-workload without rebuilding
// anything.
#include <cstdio>

#include "chopper/config_plan.h"
#include "common/rng.h"
#include "engine/engine.h"

using namespace chopper;

namespace {

engine::DatasetPtr make_points(std::size_t partitions) {
  return engine::Dataset::source(
             "points", partitions,
             [](std::size_t index, std::size_t count) {
               common::Xoshiro256 rng(common::hash_combine(7, index * 17 + count));
               engine::Partition p;
               const std::size_t total = 120'000;
               const std::size_t begin = total * index / count;
               const std::size_t end = total * (index + 1) / count;
               for (std::size_t i = begin; i < end; ++i) {
                 engine::Record r;
                 r.key = i;
                 r.values = {rng.next_normal(), rng.next_normal()};
                 p.push(std::move(r));
               }
               return p;
             })
      ->cache();
}

}  // namespace

int main() {
  engine::EngineOptions opts;
  opts.default_parallelism = 200;
  engine::Engine eng(engine::ClusterSpec::paper_heterogeneous(), opts);

  auto provider = std::make_shared<core::ConfigPlanProvider>();
  eng.set_plan_provider(provider);

  auto points = make_points(200);
  eng.count(points, "materialize");

  auto iteration = [&](int i) {
    auto hist = points
                    ->map("bucketize",
                          [](const engine::Record& r) {
                            engine::Record out;
                            out.key = static_cast<std::uint64_t>(
                                (r.values[0] + 5.0) * 10.0);
                            out.values = {1.0};
                            return out;
                          })
                    ->reduce_by_key("histogram",
                                    [](engine::Record& acc,
                                       const engine::Record& next) {
                                      acc.values[0] += next.values[0];
                                    });
    eng.count(hist, "iteration-" + std::to_string(i));
  };

  // Discover the reduce stage's signature from a dry-run plan.
  auto probe = points->map("bucketize", [](const engine::Record& r) { return r; })
                   ->reduce_by_key("histogram",
                                   [](engine::Record&, const engine::Record&) {});
  const auto dry = eng.describe_job(probe);
  const std::uint64_t reduce_sig = dry.stages.back().signature;

  std::printf("running 4 iterations, re-planning after each...\n");
  for (int i = 0; i < 4; ++i) {
    iteration(i);
    // Simulate CHOPPER pushing an updated config file: halve the partitions.
    common::KvConfig cfg;
    const std::size_t next_p = 200 >> (i + 1);
    cfg.set("stage." + std::to_string(reduce_sig) + ".partitioner", "hash");
    cfg.set_int("stage." + std::to_string(reduce_sig) + ".partitions",
                static_cast<std::int64_t>(next_p));
    provider->update(cfg);
  }

  std::printf("\nreduce-stage partition counts per iteration:\n");
  for (const auto& s : eng.metrics().stages()) {
    if (s.signature == reduce_sig) {
      std::printf("  stage %zu: %zu partitions (%.3fs)\n", s.stage_id,
                  s.num_partitions, s.sim_time_s);
    }
  }
  std::printf("\nThe scheduler picked up each update without restarting the "
              "workload.\n");
  return 0;
}
