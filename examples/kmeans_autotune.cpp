// KMeans auto-tuning end to end: profile the workload, print the per-stage
// plan CHOPPER derives (Table III analogue), and compare the optimized run
// against vanilla defaults — including clustering quality, to show the
// optimization is behaviour-preserving.
#include <cstdio>

#include "chopper/chopper.h"
#include "workloads/kmeans.h"

using namespace chopper;

int main() {
  workloads::KMeansParams params;
  params.data.total_points = 120'000;
  params.data.dims = 16;
  params.data.clusters = 8;
  params.k = 8;
  params.iterations = 3;
  params.init_rounds = 5;
  params.source_partitions = 300;
  const workloads::KMeansWorkload wl(params);

  const auto cluster = engine::ClusterSpec::paper_heterogeneous();
  core::ChopperOptions opts;
  opts.engine_options.default_parallelism = 300;
  opts.engine_options.cost_model.data_scale = 1.0 / 100.0;
  opts.profile_partitions = {100, 200, 300, 500};
  opts.profile_fractions = {0.5, 1.0};

  // Vanilla baseline.
  engine::Engine vanilla(cluster, opts.engine_options);
  const auto base = wl.run_with_result(vanilla, 1.0);
  std::printf("vanilla:  %.2fs simulated, clustering cost %.3e\n",
              vanilla.metrics().total_sim_time(), base.cost);

  // CHOPPER.
  core::Chopper chopper(cluster, opts);
  const double input = chopper.profile(wl.name(), wl.runner(), 1.0);
  const auto plan = chopper.plan(wl.name(), input);

  std::printf("\nplanned schemes (stage signature -> partitioner/partitions):\n");
  for (const auto& ps : plan) {
    std::printf("  %-55s %s/%zu%s\n",
                ps.name.size() > 55 ? ps.name.substr(0, 55).c_str()
                                    : ps.name.c_str(),
                engine::to_string(ps.partitioner), ps.num_partitions,
                ps.fixed ? " (fixed)" : "");
  }

  auto optimized = chopper.make_engine();
  optimized->set_plan_provider(chopper.make_provider(plan));
  const auto tuned = wl.run_with_result(*optimized, 1.0);
  std::printf("\nCHOPPER:  %.2fs simulated, clustering cost %.3e\n",
              optimized->metrics().total_sim_time(), tuned.cost);
  std::printf("speedup: %.1f%%\n",
              100.0 *
                  (vanilla.metrics().total_sim_time() -
                   optimized->metrics().total_sim_time()) /
                  vanilla.metrics().total_sim_time());
  return 0;
}
