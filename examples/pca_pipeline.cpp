// PCA pipeline: run the distributed PCA workload and check the recovered
// spectrum against the generator's ground truth (the data is synthesized
// from `latent_dims` factors, so the top eigenvalues should dominate),
// then auto-tune it with CHOPPER.
#include <cstdio>
#include <numeric>

#include "chopper/chopper.h"
#include "workloads/pca.h"

using namespace chopper;

int main() {
  workloads::PcaParams params;
  params.data.total_rows = 100'000;
  params.data.dims = 24;
  params.data.latent_dims = 4;
  params.components = 4;
  params.iterations = 2;
  params.source_partitions = 240;
  const workloads::PcaWorkload wl(params);

  const auto cluster = engine::ClusterSpec::paper_heterogeneous();
  core::ChopperOptions opts;
  opts.engine_options.default_parallelism = 240;
  opts.engine_options.cost_model.data_scale = 1.0 / 100.0;
  opts.profile_partitions = {80, 160, 240, 400};
  opts.profile_fractions = {0.5, 1.0};

  engine::Engine vanilla(cluster, opts.engine_options);
  const auto result = wl.run_with_result(vanilla, 1.0);

  std::printf("top-%zu eigenvalues:", params.components);
  double captured = std::accumulate(result.eigenvalues.begin(),
                                    result.eigenvalues.end(), 0.0);
  for (const double v : result.eigenvalues) std::printf(" %.2f", v);
  std::printf("\nmean reconstruction error: %.4f (residual after %zu of %zu "
              "dims -> the %zu latent factors dominate)\n",
              result.reconstruction_error, params.components, params.data.dims,
              params.data.latent_dims);
  std::printf("captured variance (top-%zu): %.1f\n", params.components, captured);
  std::printf("vanilla: %.2fs simulated\n\n", vanilla.metrics().total_sim_time());

  core::Chopper chopper(cluster, opts);
  const double input = chopper.profile(wl.name(), wl.runner(), 1.0);
  auto optimized = chopper.make_engine();
  optimized->set_plan_provider(
      chopper.make_provider(chopper.plan(wl.name(), input)));
  const auto tuned = wl.run_with_result(*optimized, 1.0);
  std::printf("CHOPPER: %.2fs simulated (same spectrum: first eigenvalue "
              "%.2f vs %.2f)\n",
              optimized->metrics().total_sim_time(), tuned.eigenvalues[0],
              result.eigenvalues[0]);
  return 0;
}
