// Quickstart: build a small analytics job on the minispark engine, run it
// under the default configuration, then hand the same job to CHOPPER and
// compare.
//
//   $ ./quickstart
//
// The job is a classic aggregation: generate key/value events, filter,
// re-key, and reduce by key — one shuffle, three stages.
#include <cstdio>

#include "chopper/chopper.h"
#include "common/logging.h"
#include "common/rng.h"
#include "engine/engine.h"

using namespace chopper;

namespace {

// Deterministic event generator: 200k events, Zipf-hot user ids.
engine::SourceFn make_events() {
  return [](std::size_t index, std::size_t count) {
    common::Xoshiro256 rng(common::hash_combine(2024, index * 31 + count));
    common::ZipfSampler zipf(/*n=*/5000, /*theta=*/0.9);
    engine::Partition p;
    const std::size_t total = 200'000;
    const std::size_t begin = total * index / count;
    const std::size_t end = total * (index + 1) / count;
    for (std::size_t i = begin; i < end; ++i) {
      engine::Record r;
      r.key = zipf(rng);                          // user id
      r.values = {rng.next_double() * 10.0, 1.0}; // {amount, count}
      r.aux_bytes = 48;                           // opaque event payload
      p.push(std::move(r));
    }
    return p;
  };
}

void run_job(engine::Engine& eng) {
  auto events = engine::Dataset::source("events", 120, make_events());
  auto totals =
      events
          ->filter("nonzero",
                   [](const engine::Record& r) { return r.values[0] > 0.5; })
          ->reduce_by_key("sum-per-user",
                          [](engine::Record& acc, const engine::Record& next) {
                            acc.values[0] += next.values[0];
                            acc.values[1] += next.values[1];
                          });
  const auto result = eng.collect(totals, "quickstart");
  std::printf("  %zu distinct users, %.1fs simulated, %d stages\n",
              result.records.size(), result.sim_time_s,
              static_cast<int>(eng.metrics().stages().size()));
}

}  // namespace

int main() {
  common::set_log_level(common::LogLevel::kInfo);
  const auto cluster = engine::ClusterSpec::paper_heterogeneous();

  std::printf("== vanilla run (default parallelism 300) ==\n");
  engine::EngineOptions opts;
  opts.default_parallelism = 300;
  engine::Engine vanilla(cluster, opts);
  run_job(vanilla);

  std::printf("== CHOPPER: profile -> plan -> optimized run ==\n");
  core::ChopperOptions copts;
  copts.engine_options = opts;
  copts.profile_partitions = {60, 120, 240, 300, 480};
  copts.profile_fractions = {1.0};
  core::Chopper chopper(cluster, copts);
  const double input =
      chopper.profile("quickstart", [](engine::Engine& e, double) { run_job(e); });

  const auto plan = chopper.plan("quickstart", input);
  std::printf("generated configuration (paper Fig. 6 format):\n%s",
              chopper.plan_config(plan).to_string().c_str());

  auto optimized = chopper.make_engine();
  optimized->set_plan_provider(chopper.make_provider(plan));
  run_job(*optimized);

  std::printf("vanilla %.2fs -> CHOPPER %.2fs\n",
              vanilla.metrics().total_sim_time(),
              optimized->metrics().total_sim_time());
  return 0;
}
