// Co-partitioning demo: the SQL workload's join re-shuffles both inputs
// under vanilla defaults (their aggregation schemes disagree), while
// CHOPPER's globally-optimized plan (Algorithm 3) assigns the whole join
// subgraph one scheme, turning the join into local pass-through reads.
#include <cstdio>

#include "chopper/chopper.h"
#include "workloads/sql.h"

using namespace chopper;

namespace {
void report(const char* label, engine::Engine& eng) {
  std::uint64_t join_remote = 0, join_local = 0;
  double join_time = 0.0;
  for (const auto& s : eng.metrics().stages()) {
    if (s.anchor_op != engine::OpKind::kJoin) continue;
    join_time += s.sim_time_s;
    for (const auto& t : s.tasks) {
      join_remote += t.shuffle_read_remote;
      join_local += t.shuffle_read_local;
    }
  }
  std::printf(
      "%-8s total %.2fs | join stage %.2fs, %6.1f KB remote + %6.1f KB local "
      "shuffle reads\n",
      label, eng.metrics().total_sim_time(), join_time,
      static_cast<double>(join_remote) / 1024.0,
      static_cast<double>(join_local) / 1024.0);
}
}  // namespace

int main() {
  workloads::SqlParams params;
  params.fact.total_rows = 300'000;
  params.fact.num_keys = 60'000;
  params.dim.num_keys = 60'000;
  params.fact_partitions = 160;
  params.dim_partitions = 48;
  params.fact_agg_partitions = 160;  // Spark-style split-proportional defaults
  params.dim_agg_partitions = 48;    // ... which disagree, forcing a reshuffle
  const workloads::SqlWorkload wl(params);

  const auto cluster = engine::ClusterSpec::paper_heterogeneous();
  core::ChopperOptions opts;
  opts.engine_options.default_parallelism = 120;
  opts.engine_options.cost_model.data_scale = 1.0 / 100.0;
  opts.profile_partitions = {48, 96, 160, 240};
  opts.profile_fractions = {0.5, 1.0};

  engine::Engine vanilla(cluster, opts.engine_options);
  const auto vres = wl.run_with_result(vanilla, 1.0);
  report("vanilla", vanilla);

  core::Chopper chopper(cluster, opts);
  const double input = chopper.profile(wl.name(), wl.runner(), 1.0);
  const auto plan = chopper.plan(wl.name(), input);

  int grouped = 0;
  for (const auto& ps : plan) grouped += ps.group >= 0;
  std::printf("Algorithm 3 grouped %d stages into the join subgraph\n", grouped);

  auto optimized = chopper.make_engine();
  optimized->set_plan_provider(chopper.make_provider(plan));
  const auto cres = wl.run_with_result(*optimized, 1.0);
  report("CHOPPER", *optimized);

  // Same query answer either way.
  std::printf("query result: %llu joined rows (vanilla) vs %llu (CHOPPER)\n",
              static_cast<unsigned long long>(vres.joined_rows),
              static_cast<unsigned long long>(cres.joined_rows));
  return 0;
}
