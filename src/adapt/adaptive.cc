#include "adapt/adaptive.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "chopper/cost.h"
#include "common/logging.h"
#include "engine/partitioner.h"

namespace chopper::adapt {

AdaptiveController::AdaptiveController(
    core::Chopper& chopper, std::string workload,
    std::shared_ptr<core::ConfigPlanProvider> provider,
    const common::KvConfig& initial_plan, AdaptOptions options)
    : chopper_(chopper),
      workload_(std::move(workload)),
      provider_(std::move(provider)),
      opts_(options) {
  const core::ParsedPlan parsed = core::parse_plan_config(initial_plan);
  for (const auto& [sig, scheme] : parsed.schemes) {
    Deployed d;
    d.kind = scheme.kind;
    d.num_partitions = scheme.num_partitions;
    if (const auto it = parsed.p_min.find(sig); it != parsed.p_min.end()) {
      d.p_min = it->second;
    }
    deployed_[sig] = d;
  }
  for (const auto& [sig, marked] : parsed.insert_repartition) {
    if (marked) repartition_sigs_.insert(sig);
  }
}

void AdaptiveController::set_event_log(obs::EventLog* log) noexcept {
  std::lock_guard lock(mu_);
  event_log_ = log;
}

void AdaptiveController::set_job_enabled(const std::string& job_name,
                                         bool enabled) {
  std::lock_guard lock(mu_);
  job_overrides_[job_name] = enabled;
}

void AdaptiveController::set_default_enabled(bool enabled) {
  std::lock_guard lock(mu_);
  default_enabled_ = enabled;
}

void AdaptiveController::set_refit_listener(std::function<void()> fn) {
  std::lock_guard lock(mu_);
  refit_listener_ = std::move(fn);
}

AdaptStats AdaptiveController::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::uint64_t AdaptiveController::refit_epoch() const {
  std::lock_guard lock(mu_);
  return epoch_;
}

common::KvConfig AdaptiveController::adapted_config() const {
  std::lock_guard lock(mu_);
  return config_locked();
}

void AdaptiveController::append(const obs::Event& e) {
  switch (e.kind) {
    case obs::EventKind::kJobSubmit: {
      std::lock_guard lock(mu_);
      bool enabled = default_enabled_;
      if (const auto it = job_overrides_.find(e.name);
          it != job_overrides_.end()) {
        enabled = it->second;
      }
      job_admitted_[e.job] = enabled;
      if (enabled) dw_by_job_[e.job] = 0.0;
      break;
    }
    case obs::EventKind::kJobFinish: {
      std::lock_guard lock(mu_);
      job_admitted_.erase(e.job);
      dw_by_job_.erase(e.job);
      break;
    }
    case obs::EventKind::kStageEnd: {
      // The scheduler emits kStageEnd synchronously at the stage barrier,
      // so everything below runs before the next stage's scheme resolves.
      std::function<void()> listener;
      {
        std::lock_guard lock(mu_);
        if (!job_enabled_locked(e.job)) break;
        const std::uint64_t before = epoch_;
        fold_stage_end_locked(e);
        maybe_replan_locked(e);
        if (epoch_ != before) listener = refit_listener_;
      }
      // Fire outside mu_: the listener may call back into this controller
      // (adapted_config) or into the engine's block manager.
      if (listener) listener();
      break;
    }
    default:
      // Includes our own kModelRefit / kPlanUpdate emissions fanning back
      // into this sink — they must not take mu_ (emit_decision runs under
      // it when append() is invoked outside an EventLog::emit fan-out).
      break;
  }
}

bool AdaptiveController::job_enabled_locked(std::uint64_t job) const {
  const auto it = job_admitted_.find(job);
  return it != job_admitted_.end() ? it->second : default_enabled_;
}

void AdaptiveController::fold_stage_end_locked(const obs::Event& e) {
  const double d = static_cast<double>(e.bytes_in);
  // Source stages accumulate the job's input footprint D_w exactly like the
  // offline collector measures it — except streaming: a stage folded before
  // all sources finished sees the partial sum, which later folds refine.
  if (e.anchor_op == static_cast<std::uint64_t>(engine::OpKind::kSource) &&
      e.list.empty()) {
    dw_by_job_[e.job] += d;
  }
  double dw = 0.0;
  if (const auto it = dw_by_job_.find(e.job); it != dw_by_job_.end()) {
    dw = it->second;
  }
  if (dw <= 0.0) dw = 1.0;

  core::WorkloadDb& db = chopper_.db();

  core::Observation o;
  o.workload = workload_;
  o.signature = e.signature;
  o.partitioner = static_cast<engine::PartitionerKind>(e.partitioner);
  o.workload_input_bytes = dw;
  o.stage_input_bytes = d;
  o.num_partitions = static_cast<double>(e.num_partitions);
  o.t_exe_s = e.sim_time_s;
  o.shuffle_bytes = static_cast<double>(
      std::max(e.shuffle_read_bytes, e.shuffle_write_bytes));
  o.is_default = false;
  db.add(std::move(o));
  ++stats_.observations;
  ++pending_observations_;

  for (const std::uint64_t p : e.list2) {
    core::OomRecord r;
    r.workload = workload_;
    r.signature = e.signature;
    r.stage_input_bytes = d;
    r.num_partitions = static_cast<double>(p);
    db.add_oom(std::move(r));
    ++stats_.oom_records;
  }
  if (!e.list2.empty()) {
    // The committed attempt's partition count is *proven* feasible at this
    // stage's real input — a floor the OOM records alone cannot establish
    // (they only bound the failures; counts between P_fail and the grown
    // count are unproven).
    std::size_t& floor_p = feasible_floor_[e.signature];
    floor_p = std::max<std::size_t>(floor_p, e.num_partitions);
  }

  if (e.fetch_retries != 0 || e.refetched_bytes != 0 ||
      e.checksum_failures != 0 || e.node_exclusions != 0) {
    core::FaultRecord fr;
    fr.workload = workload_;
    fr.signature = e.signature;
    fr.fetch_retries = e.fetch_retries;
    fr.refetched_bytes = e.refetched_bytes;
    fr.checksum_failures = e.checksum_failures;
    fr.node_exclusions = e.node_exclusions;
    db.add_fault(std::move(fr));
  }

  core::StageStructure st;
  st.signature = e.signature;
  st.name = e.name;
  st.anchor_op = static_cast<engine::OpKind>(e.anchor_op);
  st.fixed_partitions = (e.flags & obs::kFlagFixedPartitions) != 0;
  st.user_fixed = (e.flags & obs::kFlagUserFixed) != 0;
  st.parents.insert(e.list.begin(), e.list.end());
  st.input_ratio_sum = d / dw;
  st.input_ratio_count = 1;
  st.dw_sum = dw;
  st.d_sum = d;
  st.dw2_sum = dw * dw;
  st.dwd_sum = dw * d;
  st.fit_count = 1;
  db.add_structure(workload_, std::move(st));
}

void AdaptiveController::maybe_replan_locked(const obs::Event& trigger) {
  if (stats_.replans >= opts_.max_replans) return;
  if (pending_observations_ < opts_.min_observations) return;

  double dw = 0.0;
  if (const auto it = dw_by_job_.find(trigger.job); it != dw_by_job_.end()) {
    dw = it->second;
  }
  if (dw <= 0.0) dw = 1.0;

  pending_observations_ = 0;
  const auto rr = chopper_.replan(workload_, dw, opts_.max_sweep_stages);
  if (!rr.swept) return;
  ++epoch_;
  ++stats_.refits;
  ++stats_.sweeps;

  {
    obs::Event ev;
    ev.kind = obs::EventKind::kModelRefit;
    ev.job = trigger.job;
    ev.sim = trigger.sim;
    ev.name = workload_;
    ev.value = dw;
    ev.count = chopper_.db().total_observations();
    ev.attempt = epoch_;
    emit_decision(std::move(ev));
  }

  core::WorkloadDb& db = chopper_.db();
  const core::CostWeights& weights = chopper_.optimizer().options().weights;
  std::vector<obs::Event> decisions;
  std::size_t adopted = 0;

  for (const auto& ps : rr.plan) {
    // A fixed stage's scheme cannot be swapped mid-run, and adopting its
    // repartition-insertion variant would change the DAG under a live job.
    if (ps.fixed || ps.num_partitions == 0) continue;

    const double d = db.stage_input_estimate(workload_, ps.signature, dw);
    std::size_t floor_p = db.min_feasible_partitions(workload_, ps.signature, d);
    if (const auto it = feasible_floor_.find(ps.signature);
        it != feasible_floor_.end()) {
      floor_p = std::max(floor_p, it->second);
    }
    const std::size_t target_p = std::max(ps.num_partitions, floor_p);

    Deployed cur;
    bool have_baseline = false;
    if (const auto it = deployed_.find(ps.signature); it != deployed_.end()) {
      cur = it->second;
      have_baseline = true;
    } else if (const double def_p =
                   db.default_partitions(workload_, ps.signature);
               def_p > 0.0) {
      // Never planned before: the engine has been running the default
      // parallelism, which is the baseline hysteresis compares against.
      cur.kind = engine::PartitionerKind::kHash;
      cur.num_partitions = static_cast<std::size_t>(def_p + 0.5);
      have_baseline = true;
    }

    if (have_baseline && cur.kind == ps.partitioner &&
        cur.num_partitions == target_p) {
      continue;  // re-sweep agreed with what is already deployed
    }

    const core::CostBaselines base{db.default_texe(workload_, ps.signature),
                                   db.default_shuffle(workload_, ps.signature)};
    double old_cost = 0.0;
    if (have_baseline) {
      old_cost = core::stage_cost(
          *db.model(workload_, ps.signature, cur.kind), d,
          static_cast<double>(cur.num_partitions), weights, base);
    }
    const double new_cost = core::stage_cost(
        *db.model(workload_, ps.signature, ps.partitioner), d,
        static_cast<double>(target_p), weights, base);

    bool feasibility = false;
    bool adopt = false;
    if (!have_baseline) {
      adopt = true;  // no deployed scheme to defend — first plan wins
    } else if (floor_p > 0 && cur.num_partitions < floor_p) {
      feasibility = true;  // deployed plan re-pays OOM-grow every recurrence
      adopt = true;
    } else if (old_cost > 0.0 &&
               (old_cost - new_cost) / old_cost >= opts_.epsilon) {
      adopt = true;
    } else {
      ++stats_.suppressed;
    }
    if (!adopt) continue;

    obs::Event ev;
    ev.kind = obs::EventKind::kPlanUpdate;
    ev.job = trigger.job;
    ev.sim = trigger.sim;
    ev.signature = ps.signature;
    ev.name = ps.name;
    ev.detail = workload_;
    ev.partitioner = static_cast<std::uint64_t>(ps.partitioner);
    ev.num_partitions = target_p;
    ev.p_min = std::max(ps.p_min, floor_p);
    ev.value = new_cost;
    ev.value2 = old_cost;
    ev.attempt = epoch_;
    if (feasibility) ev.flags |= obs::kFlagOom;
    if (have_baseline) {
      ev.list = {static_cast<std::uint64_t>(cur.kind), cur.num_partitions};
    }
    decisions.push_back(std::move(ev));

    Deployed next;
    next.kind = ps.partitioner;
    next.num_partitions = target_p;
    next.p_min = std::max(ps.p_min, floor_p);
    deployed_[ps.signature] = next;
    ++adopted;
  }

  if (adopted == 0) return;
  stats_.stages_adopted += adopted;
  ++stats_.replans;
  provider_->update(config_locked());
  for (auto& ev : decisions) emit_decision(std::move(ev));
  LOG_INFO << "adapt: re-planned " << workload_ << ", " << adopted
           << " stage(s) adopted at epoch " << epoch_;
}

common::KvConfig AdaptiveController::config_locked() const {
  common::KvConfig cfg;
  for (const auto& [sig, d] : deployed_) {
    const std::string prefix = "stage." + std::to_string(sig);
    cfg.set(prefix + ".partitioner", engine::to_string(d.kind));
    cfg.set_int(prefix + ".partitions",
                static_cast<std::int64_t>(d.num_partitions));
    if (repartition_sigs_.count(sig) != 0) {
      cfg.set_int(prefix + ".repartition", 1);
    }
    if (d.p_min > 0) {
      cfg.set_int(prefix + ".p_min", static_cast<std::int64_t>(d.p_min));
    }
  }
  return cfg;
}

void AdaptiveController::emit_decision(obs::Event e) {
  if (event_log_ != nullptr && event_log_->enabled()) {
    event_log_->emit(std::move(e));
  }
}

}  // namespace chopper::adapt
