// CHOPPER-online (DESIGN.md §15): in-flight adaptive re-planning.
//
// The paper's dynamic-update hook swaps plans *between* jobs; this subsystem
// closes the loop *during* execution. An AdaptiveController subscribes to
// the structured event log as an ordinary in-process TraceSink. Every
// kStageEnd it observes is folded into the WorkloadDb exactly the way the
// offline StatsCollector folds finished runs — one streaming Observation
// (plus OOM / fault / structure records) per committed stage. The fold makes
// the lazily-trained stage models stale; the next Algorithm-3 sweep refits
// them incrementally, bit-identical to an offline refit over the same
// observation set (WorkloadDb::model's canonical-order contract).
//
// At each stage barrier (the scheduler delivers kStageEnd synchronously,
// so append() *is* the barrier hook) the controller may re-run a bounded
// Algorithm-3 sweep and patch the live ConfigPlanProvider. The scheduler
// re-resolves schemes per job — memoized within a job — so a patched scheme
// takes effect for every not-yet-resolved stage: stages at least two hops
// downstream in the current job (a consumer's scheme is resolved while its
// producer's shuffle is written) and every stage of later jobs.
//
// Stability contract (hysteresis): a cost-motivated re-plan is adopted only
// when the refit model predicts a relative improvement of at least `epsilon`
// over the currently deployed scheme — evaluated under the *new* model, so
// the comparison is apples-to-apples. Feasibility-motivated re-plans (the
// deployed partition count is below the memory-feasibility floor proven by
// observed OOMs) always fire: the engine has demonstrated the current plan
// re-pays OOM-grow retries on every recurrence.
//
// Bit-identity contract: the controller is a pure observer until it adopts
// a plan. Detached (the default), every result, event log, and replayed
// metric is byte-identical to a run without the subsystem; attached but
// never triggered, only kModelRefit markers are added to the log and the
// execution stream is unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "chopper/chopper.h"
#include "chopper/config_plan.h"
#include "common/kv_config.h"
#include "obs/event_log.h"

namespace chopper::adapt {

struct AdaptOptions {
  /// Minimum predicted relative cost improvement, (old - new) / old, before
  /// a cost-motivated scheme change is adopted. Feasibility-motivated
  /// changes (OOM floor violations) bypass the gate.
  double epsilon = 0.05;
  /// New observations required since the last refit before another sweep.
  std::size_t min_observations = 1;
  /// Adoption budget: provider updates per controller lifetime. Bounds churn
  /// on pathological workloads; feasibility fixes stop too once exhausted.
  std::size_t max_replans = 32;
  /// Algorithm-3 re-sweep bound: DAGs with more stages are never re-swept
  /// mid-run (the barrier must not stall on a huge plan).
  std::size_t max_sweep_stages = 64;
};

/// Counters exposed for tests, benches and `chopperctl history`.
struct AdaptStats {
  std::size_t observations = 0;    ///< stage-end events folded into the DB
  std::size_t oom_records = 0;     ///< OOMed attempts recorded from events
  std::size_t refits = 0;          ///< model refit epochs (kModelRefit)
  std::size_t sweeps = 0;          ///< bounded Algorithm-3 sweeps executed
  std::size_t replans = 0;         ///< adopted provider updates (>=1 stage)
  std::size_t stages_adopted = 0;  ///< per-stage scheme adoptions
  std::size_t suppressed = 0;      ///< re-chosen schemes rejected by epsilon
};

/// TraceSink that turns the live event stream into re-planning decisions.
/// Thread-safe: append() may be called from every engine/service thread.
class AdaptiveController final : public obs::TraceSink {
 public:
  /// `chopper` owns the WorkloadDb/optimizer the controller refits (it must
  /// outlive the controller and not be mutated concurrently elsewhere);
  /// `provider` is the live plan the engine consults (patched in place);
  /// `initial_plan` mirrors the provider's starting config so hysteresis
  /// knows what is currently deployed.
  AdaptiveController(core::Chopper& chopper, std::string workload,
                     std::shared_ptr<core::ConfigPlanProvider> provider,
                     const common::KvConfig& initial_plan,
                     AdaptOptions options = {});

  /// The log the controller emits kModelRefit/kPlanUpdate into — normally
  /// the same log it is attached to (EventLog::emit is re-entrant for
  /// same-thread sink emissions). Null: decisions are made but not logged.
  void set_event_log(obs::EventLog* log) noexcept;

  /// TraceSink: folds kStageEnd statistics, then gates a bounded re-sweep.
  void append(const obs::Event& e) override;

  /// Per-job gating for multi-tenant serving: an explicit per-name override
  /// wins; jobs without one follow `default_enabled` (true by default).
  void set_job_enabled(const std::string& job_name, bool enabled);
  void set_default_enabled(bool enabled);

  /// Callback invoked after every refit epoch, outside the controller's
  /// lock (it may re-enter the controller or the engine). The cache planner
  /// hooks this to re-score eviction priorities against the refitted models
  /// at the same stage barrier that produced them (DESIGN.md §17).
  /// Replaces any previously installed listener.
  void set_refit_listener(std::function<void()> fn);

  AdaptStats stats() const;
  /// Bumped at every refit epoch; the service layer's plan cache re-reads
  /// adapted_config() when its stored epoch falls behind.
  std::uint64_t refit_epoch() const;
  /// Snapshot of the currently deployed plan (initial config plus every
  /// adopted patch) — runnable directly via ConfigPlanProvider.
  common::KvConfig adapted_config() const;

  const std::shared_ptr<core::ConfigPlanProvider>& provider() const noexcept {
    return provider_;
  }

 private:
  struct Deployed {
    engine::PartitionerKind kind = engine::PartitionerKind::kHash;
    std::size_t num_partitions = 0;
    std::size_t p_min = 0;
  };

  bool job_enabled_locked(std::uint64_t job) const;
  void fold_stage_end_locked(const obs::Event& e);
  void maybe_replan_locked(const obs::Event& trigger);
  common::KvConfig config_locked() const;
  void emit_decision(obs::Event e);

  core::Chopper& chopper_;
  const std::string workload_;
  std::shared_ptr<core::ConfigPlanProvider> provider_;
  const AdaptOptions opts_;
  obs::EventLog* event_log_ = nullptr;  ///< not owned; may be null

  mutable std::mutex mu_;
  AdaptStats stats_;
  std::uint64_t epoch_ = 0;
  /// Deployed scheme per stage signature (hysteresis baseline).
  std::map<std::uint64_t, Deployed> deployed_;
  /// Engine-proven feasible partition counts: when a stage OOMed and its
  /// final attempt committed at P, any adopted plan keeps P' >= P — the
  /// floor the OOM records alone cannot prove (they only bound failures).
  std::map<std::uint64_t, std::size_t> feasible_floor_;
  /// Workload input D_w accumulated from source-stage ends, per job.
  std::map<std::uint64_t, double> dw_by_job_;
  /// Repartition marks carried over from the initial plan: adoption never
  /// adds or removes one (fixed stages are skipped), but rebuilt configs
  /// must keep them or a provider update would silently drop the inserted
  /// repartition phases.
  std::set<std::uint64_t> repartition_sigs_;
  /// Jobs admitted by the name gate (resolved at kJobSubmit).
  std::map<std::uint64_t, bool> job_admitted_;
  std::map<std::string, bool> job_overrides_;
  bool default_enabled_ = true;
  std::size_t pending_observations_ = 0;
  std::function<void()> refit_listener_;
};

}  // namespace chopper::adapt
