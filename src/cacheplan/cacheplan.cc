#include "cacheplan/cacheplan.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "engine/dataset.h"

namespace chopper::cacheplan {

const char* to_string(CacheAction action) noexcept {
  switch (action) {
    case CacheAction::kDrop:
      return "drop";
    case CacheAction::kCache:
      return "cache";
    case CacheAction::kPin:
      return "pin";
  }
  return "cache";
}

namespace {

CacheAction parse_action(const std::string& s) noexcept {
  if (s == "drop") return CacheAction::kDrop;
  if (s == "pin") return CacheAction::kPin;
  return CacheAction::kCache;
}

/// W(d): work_per_record summed over the lineage above `d`, wide hops
/// multiplied. Other cache() nodes bound the walk — when d is rebuilt they
/// are (or will be) materialized, so their upstream cost is not re-paid.
double lineage_cost(const engine::Dataset* d, double wide_factor,
                    std::map<const engine::Dataset*, double>& memo) {
  if (const auto it = memo.find(d); it != memo.end()) return it->second;
  double upstream = 0.0;
  for (const auto& p : d->parents()) {
    if (p->cached()) continue;  // served from its own cache, not recomputed
    upstream += lineage_cost(p.get(), wide_factor, memo);
  }
  const double total =
      d->work_per_record() +
      (engine::is_wide(d->op()) ? wide_factor * upstream : upstream);
  memo.emplace(d, total);
  return total;
}

}  // namespace

engine::CachePlanSnapshot CachePlan::to_snapshot() const {
  engine::CachePlanSnapshot snap;
  for (const auto& d : decisions) {
    engine::CacheGuidance g;
    g.priority = d.priority;
    g.pinned = d.action == CacheAction::kPin;
    g.pool = d.pool;
    snap.guidance[d.dataset_id] = g;
  }
  snap.pool_share = pool_share;
  return snap;
}

common::KvConfig CachePlan::to_config() const {
  common::KvConfig cfg;
  for (const auto& d : decisions) {
    const std::string prefix = "cache." + std::to_string(d.signature);
    cfg.set(prefix + ".action", to_string(d.action));
    cfg.set_double(prefix + ".priority", d.priority);
    cfg.set_double(prefix + ".reuse", d.expected_reuse);
    if (!d.pool.empty()) cfg.set(prefix + ".pool", d.pool);
  }
  for (const auto& [pool, share] : pool_share) {
    cfg.set_double("cache.pool." + pool, share);
  }
  return cfg;
}

CachePlan CachePlan::from_config(const common::KvConfig& cfg) {
  CachePlan plan;
  std::map<std::uint64_t, CacheDecision> by_sig;
  for (const auto& [key, value] : cfg.entries()) {
    if (!key.starts_with("cache.")) continue;
    const std::size_t dot = key.find('.', 6);
    if (dot == std::string::npos) continue;
    const std::string mid = key.substr(6, dot - 6);
    const std::string field = key.substr(dot + 1);
    if (mid == "pool") {
      try {
        plan.pool_share[field] = std::stod(value);
      } catch (const std::exception&) {
        LOG_WARN << "cacheplan: skipping malformed pool share '" << key << "'";
      }
      continue;
    }
    std::uint64_t sig = 0;
    try {
      sig = std::stoull(mid);
    } catch (const std::exception&) {
      LOG_WARN << "cacheplan: skipping malformed cache key '" << key << "'";
      continue;
    }
    CacheDecision& d = by_sig[sig];
    d.signature = sig;
    if (field == "action") {
      d.action = parse_action(value);
    } else if (field == "priority") {
      d.priority = cfg.get_double(key).value_or(0.0);
    } else if (field == "reuse") {
      d.expected_reuse = cfg.get_double(key).value_or(0.0);
    } else if (field == "pool") {
      d.pool = value;
    }
  }
  plan.decisions.reserve(by_sig.size());
  for (auto& [sig, d] : by_sig) plan.decisions.push_back(std::move(d));
  return plan;
}

CachePlanner::CachePlanner(CachePlannerOptions options) : opts_(options) {}

void CachePlanner::set_workload_db(const core::WorkloadDb* db,
                                   std::string workload) {
  std::lock_guard lock(mu_);
  db_ = db;
  workload_ = std::move(workload);
}

void CachePlanner::set_pool_shares(std::map<std::string, double> shares) {
  std::lock_guard lock(mu_);
  pool_shares_ = std::move(shares);
}

void CachePlanner::set_job_pool(const std::string& job_name,
                                const std::string& pool) {
  std::lock_guard lock(mu_);
  job_pools_[job_name] = pool;
}

void CachePlanner::set_event_log(obs::EventLog* log) noexcept {
  std::lock_guard lock(mu_);
  event_log_ = log;
}

CacheDecision CachePlanner::score_locked(std::uint64_t signature,
                                         double rebuild,
                                         double in_plan_reads) const {
  double recurrence = 0.0;
  double measured = 0.0;
  if (db_ != nullptr && signature != 0) {
    recurrence = static_cast<double>(
        std::min(opts_.recurrence_cap, db_->times_observed(workload_, signature)));
    measured = db_->default_texe(workload_, signature);
  }
  const double reuse = in_plan_reads + recurrence;
  // A measured stage time supersedes the structural estimate (same
  // preference order as the partition optimizer: models over defaults).
  const double work = measured > 0.0 ? measured : rebuild;

  CacheDecision d;
  d.signature = signature;
  d.rebuild_cost = rebuild;
  d.expected_reuse = reuse;
  if (reuse <= 1.0 && rebuild <= opts_.drop_work) {
    d.action = CacheAction::kDrop;
    // Negative = the block manager's evict-first class; within it, cheaper
    // rebuilds sort closer to -1 and go first.
    d.priority = -1.0 / (1.0 + work);
  } else {
    d.action = (reuse >= opts_.pin_reuse && rebuild >= opts_.pin_work)
                   ? CacheAction::kPin
                   : CacheAction::kCache;
    d.priority = work * std::max(1.0, reuse);
  }
  return d;
}

void CachePlanner::emit_locked(const CacheDecision& d, bool rescored) {
  if (event_log_ == nullptr || !event_log_->enabled()) return;
  obs::Event ev;
  ev.kind = obs::EventKind::kCachePlanDecision;
  ev.dataset = d.dataset_id;
  ev.signature = d.signature;
  ev.name = d.name;
  ev.detail = rescored ? std::string("rescore/") + to_string(d.action)
                       : std::string(to_string(d.action));
  ev.value = d.priority;
  ev.value2 = d.rebuild_cost;
  ev.count = static_cast<std::uint64_t>(std::llround(d.expected_reuse));
  event_log_->emit(std::move(ev));
}

engine::CachePlanSnapshot CachePlanner::advise(const engine::JobPlan& plan,
                                               const std::string& job_name) {
  std::lock_guard lock(mu_);
  std::string pool;
  if (const auto it = job_pools_.find(job_name); it != job_pools_.end()) {
    pool = it->second;
  }

  // In-plan reuse: stages reading each materialized dataset as their input.
  std::map<std::size_t, double> reads;
  for (const auto& s : plan.stages) {
    if (s.input == engine::StageInputKind::kCache && s.anchor != nullptr) {
      reads[s.anchor->id()] += 1.0;
    }
  }

  // Candidates: every cache() dataset in the plan. A stage that
  // *materializes* the dataset (cache-input stages only read it) binds the
  // producing stage's signature; cache-read stages of later jobs fall back
  // to the signature remembered from the materializing job.
  struct Cand {
    const engine::Dataset* d = nullptr;
    std::uint64_t sig = 0;
  };
  std::map<std::size_t, Cand> cands;
  for (const auto& s : plan.stages) {
    const auto consider = [&](const engine::Dataset* d, bool materializing) {
      if (d == nullptr || !d->cached()) return;
      Cand& c = cands[d->id()];
      c.d = d;
      if (materializing) {
        c.sig = s.signature;
      } else if (c.sig == 0) {
        if (const auto k = known_.find(d->id()); k != known_.end()) {
          c.sig = k->second.signature;
        }
      }
    };
    consider(s.anchor, s.input != engine::StageInputKind::kCache);
    for (const engine::Dataset* op : s.narrow_ops) consider(op, true);
  }

  CachePlan result;
  result.pool_share = pool_shares_;
  std::map<const engine::Dataset*, double> memo;
  for (const auto& [id, c] : cands) {
    const double rebuild = lineage_cost(c.d, opts_.wide_hop_factor, memo);
    const double in_plan = reads.count(id) != 0 ? reads.at(id) : 0.0;
    CacheDecision d = score_locked(c.sig, rebuild, in_plan);
    d.dataset_id = id;
    d.name = c.d->label();
    d.pool = pool;
    known_[id] = Known{c.sig, d.name, pool, in_plan, rebuild};
    emit_locked(d, /*rescored=*/false);
    ++decisions_made_;
    result.decisions.push_back(std::move(d));
  }
  last_ = result;
  return result.to_snapshot();
}

void CachePlanner::rescore(engine::BlockManager& bm) {
  engine::CachePlanSnapshot snap;
  {
    std::lock_guard lock(mu_);
    snap.pool_share = pool_shares_;
    for (const auto& [id, k] : known_) {
      CacheDecision d = score_locked(k.signature, k.rebuild, k.in_plan_reads);
      d.dataset_id = id;
      d.name = k.name;
      d.pool = k.pool;
      engine::CacheGuidance g;
      g.priority = d.priority;
      g.pinned = d.action == CacheAction::kPin;
      g.pool = d.pool;
      snap.guidance[id] = g;
      emit_locked(d, /*rescored=*/true);
    }
  }
  bm.merge_cache_plan(snap);
}

CachePlan CachePlanner::last_plan() const {
  std::lock_guard lock(mu_);
  return last_;
}

std::size_t CachePlanner::decisions_made() const {
  std::lock_guard lock(mu_);
  return decisions_made_;
}

}  // namespace chopper::cacheplan
