// Joint cache-plan optimizer (DESIGN.md §17): cost-aware persist / evict
// decisions as a first-class subsystem.
//
// CHOPPER's partition plan decides how each stage splits its data; this
// module decides which materialized datasets *deserve their memory*. The
// CachePlanner walks a job's lineage DAG right after the stage plan is built
// (the engine consults it as a CacheAdvisor under its planning lock) and
// prices every cache() candidate:
//
//   W(d)  — recomputation cost: work_per_record summed over the lineage
//           above d down to sources or other caches, with wide hops
//           multiplied (a lost cache behind a shuffle re-pays the shuffle).
//           When the WorkloadDb has a measured default t_exe for the
//           producing stage, the measurement replaces the structural
//           estimate — the same models the partition optimizer fits.
//   R(d)  — expected reuse: cache-read stages in this plan plus the
//           workload's recurrence count from the WorkloadDb (how many times
//           the producing stage was ever observed — Lachesis-style reuse of
//           past decisions across recurring runs, arxiv 2006.16529).
//
// The product W x R is the eviction priority (MEM/LRC-style
// recomputation-cost caching, arxiv 1804.10563): under memory pressure the
// BlockManager evicts cheapest-to-rebuild, least-reused data first. Three
// actions fall out of the score:
//
//   Drop  — R <= 1 and trivial W: materialize (results stay bit-identical)
//           but surrender memory first (negative priority = the block
//           manager's evict-first class).
//   Cache — keep while the budget allows, evicted by ascending W x R.
//   Pin   — heavy, hot data (R and W above thresholds): never evicted; the
//           OOM path must find its memory elsewhere.
//
// Tenant awareness: under FAIR scheduling the planner forwards per-pool
// storage shares (SlotLedger::pool_share_fractions) so one tenant's cold
// scans cannot flush another tenant's hot iterative caches below the
// victim pool's floor.
//
// Adaptive integration: rescore() re-prices every previously scored dataset
// against the refitted WorkloadDb and merges the updated priorities into the
// live BlockManager — hook it to AdaptiveController::set_refit_listener so
// priorities track the models at the same stage barriers that refit them.
//
// Threading: advise() and rescore() are mutex-guarded and may race each
// other. The WorkloadDb pointer is NOT synchronized against its writers —
// attach a db only when planning cannot race db mutation (single-driver
// runs; the adaptive controller folds observations at stage barriers of the
// same driver thread). Concurrent service wiring should plan structurally
// (no db), which touches no shared mutable state outside the planner.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "chopper/workload_db.h"
#include "common/kv_config.h"
#include "engine/block_manager.h"
#include "engine/engine.h"
#include "engine/plan.h"
#include "obs/event_log.h"

namespace chopper::cacheplan {

enum class CacheAction { kDrop, kCache, kPin };

const char* to_string(CacheAction action) noexcept;

/// One scored cache() candidate.
struct CacheDecision {
  std::size_t dataset_id = 0;
  std::uint64_t signature = 0;  ///< producing stage's structural signature
  std::string name;             ///< dataset label
  CacheAction action = CacheAction::kCache;
  double priority = 0.0;       ///< merged into BlockManager guidance
  double rebuild_cost = 0.0;   ///< W(d): structural lineage estimate
  double expected_reuse = 0.0; ///< R(d): in-plan reads + db recurrence
  std::string pool;            ///< owning tenant pool ("" when untracked)
};

/// The plan for one job: decisions in ascending dataset-id order (the
/// planner's iteration is deterministic, so replayed runs score in the same
/// order) plus the tenant storage shares in force.
struct CachePlan {
  std::vector<CacheDecision> decisions;
  std::map<std::string, double> pool_share;

  /// The guidance the BlockManager consumes (merge_cache_plan).
  engine::CachePlanSnapshot to_snapshot() const;

  /// Fig.6-style attachment to the workload's config file: one
  /// `cache.<signature>.*` tuple per decision (action, priority, reuse,
  /// pool). Coexists with the partition plan's `stage.<signature>.*` keys —
  /// parse_plan_config ignores keys outside its prefix, and from_config()
  /// ignores stage keys symmetrically.
  common::KvConfig to_config() const;
  static CachePlan from_config(const common::KvConfig& cfg);
};

struct CachePlannerOptions {
  /// Wide dependencies multiply the upstream rebuild cost (re-paying a
  /// shuffle dominates re-running the narrow pipeline above it).
  double wide_hop_factor = 4.0;
  /// Pin when expected reuse and structural rebuild cost both reach these.
  double pin_reuse = 3.0;
  double pin_work = 8.0;
  /// Drop (evict-first) when reuse <= 1 and rebuild cost is at most this.
  double drop_work = 1.0;
  /// Recurrence contribution is capped: a stage observed hundreds of times
  /// is not hundreds of times more valuable than one observed `cap` times.
  std::size_t recurrence_cap = 8;
};

class CachePlanner final : public engine::CacheAdvisor {
 public:
  explicit CachePlanner(CachePlannerOptions options = {});

  /// Recurrence + measured-cost source. Not owned; nullptr detaches
  /// (planning then scores structurally). See the header threading note.
  void set_workload_db(const core::WorkloadDb* db, std::string workload);

  /// Tenant storage shares (normally SlotLedger::pool_share_fractions()).
  void set_pool_shares(std::map<std::string, double> shares);

  /// Jobs submitted under `job_name` charge their cached datasets to `pool`.
  void set_job_pool(const std::string& job_name, const std::string& pool);

  /// kCachePlanDecision emissions; nullptr disables. Not owned.
  void set_event_log(obs::EventLog* log) noexcept;

  // engine::CacheAdvisor -----------------------------------------------------
  engine::CachePlanSnapshot advise(const engine::JobPlan& plan,
                                   const std::string& job_name) override;

  /// Re-price every previously scored dataset against the current
  /// WorkloadDb and merge the refreshed snapshot into `bm`. Wire to
  /// AdaptiveController::set_refit_listener.
  void rescore(engine::BlockManager& bm);

  /// Snapshot of the most recent advise() result.
  CachePlan last_plan() const;
  /// Total decisions scored over the planner's lifetime (rescores excluded).
  std::size_t decisions_made() const;

 private:
  /// Sticky facts about a dataset we scored before, for rescoring and for
  /// cache-read stages whose producing stage was planned in an earlier job.
  struct Known {
    std::uint64_t signature = 0;
    std::string name;
    std::string pool;
    double in_plan_reads = 0.0;
    double rebuild = 0.0;
  };

  /// Score one candidate. Caller holds mu_.
  CacheDecision score_locked(std::uint64_t signature, double rebuild,
                             double in_plan_reads) const;
  void emit_locked(const CacheDecision& d, bool rescored);

  mutable std::mutex mu_;
  const CachePlannerOptions opts_;
  const core::WorkloadDb* db_ = nullptr;  ///< not owned; may be null
  std::string workload_;
  std::map<std::string, double> pool_shares_;
  std::map<std::string, std::string> job_pools_;
  obs::EventLog* event_log_ = nullptr;  ///< not owned; may be null
  CachePlan last_;
  std::map<std::size_t, Known> known_;
  std::size_t decisions_made_ = 0;
};

}  // namespace chopper::cacheplan
