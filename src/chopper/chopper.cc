#include "chopper/chopper.h"

#include "common/logging.h"
#include "obs/event_log.h"

namespace chopper::core {

Chopper::Chopper(engine::ClusterSpec cluster, ChopperOptions options)
    : cluster_(std::move(cluster)),
      options_(std::move(options)),
      db_(options_.ridge_lambda),
      collector_(db_),
      optimizer_(db_, options_.optimizer) {}

std::unique_ptr<engine::Engine> Chopper::make_engine() const {
  auto eng = std::make_unique<engine::Engine>(cluster_, options_.engine_options);
  if (event_log_ != nullptr) eng->set_event_log(event_log_);
  return eng;
}

void Chopper::set_event_log(obs::EventLog* log) noexcept {
  event_log_ = log;
  collector_.set_event_log(log);
  optimizer_.set_event_log(log);
}

double Chopper::profile(const std::string& workload,
                        const WorkloadRunner& runner, double scale) {
  // Baseline run under the engine's default configuration (no provider).
  double input_bytes = 0.0;
  {
    auto eng = make_engine();
    runner(*eng, scale);
    input_bytes = collector_.ingest(eng->metrics(), workload, 0.0,
                                    /*is_default=*/true);
    LOG_INFO << "chopper: profiled " << workload << " default run, input="
             << input_bytes << "B, stages=" << eng->metrics().stages().size();
  }

  std::vector<engine::PartitionerKind> kinds = {engine::PartitionerKind::kHash};
  if (options_.profile_both_partitioners) {
    kinds.push_back(engine::PartitionerKind::kRange);
  }

  for (const double fraction : options_.profile_fractions) {
    for (const std::size_t p : options_.profile_partitions) {
      for (const auto kind : kinds) {
        auto eng = make_engine();
        eng->set_plan_provider(std::make_shared<FixedPlanProvider>(kind, p));
        runner(*eng, scale * fraction);
        collector_.ingest(eng->metrics(), workload, 0.0, /*is_default=*/false);
      }
    }
  }
  LOG_INFO << "chopper: workload db now holds " << db_.total_observations()
           << " observations";
  return input_bytes;
}

void Chopper::ingest_run(const engine::MetricsRegistry& metrics,
                         const std::string& workload,
                         double workload_input_bytes, bool is_default) {
  collector_.ingest(metrics, workload, workload_input_bytes, is_default);
}

std::vector<PlannedStage> Chopper::plan(const std::string& workload,
                                        double input_bytes) {
  return optimizer_.get_global_par(workload, input_bytes);
}

std::vector<PlannedStage> Chopper::plan_naive(const std::string& workload,
                                              double input_bytes) {
  return optimizer_.get_workload_par(workload, input_bytes);
}

Chopper::ReplanResult Chopper::replan(const std::string& workload,
                                      double input_bytes,
                                      std::size_t max_stages) {
  ReplanResult result;
  const std::size_t stages = db_.dag(workload).size();
  if (stages == 0 || stages > max_stages) {
    LOG_DEBUG << "chopper: replan of " << workload << " skipped (" << stages
              << " stages, bound " << max_stages << ")";
    return result;
  }
  result.plan = optimizer_.get_global_par(workload, input_bytes);
  result.swept = true;
  return result;
}

namespace {
bool plans_agree(const std::vector<PlannedStage>& a,
                 const std::vector<PlannedStage>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].signature != b[i].signature ||
        a[i].num_partitions != b[i].num_partitions ||
        a[i].partitioner != b[i].partitioner ||
        a[i].insert_repartition != b[i].insert_repartition) {
      return false;
    }
  }
  return true;
}
}  // namespace

Chopper::TuneResult Chopper::tune(const std::string& workload,
                                  const WorkloadRunner& runner, double scale,
                                  std::size_t max_rounds) {
  TuneResult result;
  double input_bytes = 0.0;
  std::vector<PlannedStage> current;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    auto eng = make_engine();
    if (!current.empty()) {
      eng->set_plan_provider(make_provider(current));
    }
    runner(*eng, scale);
    result.run_times.push_back(eng->metrics().total_sim_time());
    input_bytes = collector_.ingest(eng->metrics(), workload, 0.0,
                                    /*is_default=*/current.empty());
    ++result.rounds;

    auto next = optimizer_.get_global_par(workload, input_bytes);
    if (!current.empty() && plans_agree(current, next)) {
      result.converged = true;
      result.plan = std::move(next);
      return result;
    }
    current = std::move(next);
  }
  result.plan = std::move(current);
  return result;
}

common::KvConfig Chopper::plan_config(
    const std::vector<PlannedStage>& plan) const {
  return plan_to_config(plan);
}

std::shared_ptr<ConfigPlanProvider> Chopper::make_provider(
    const std::vector<PlannedStage>& plan) const {
  return std::make_shared<ConfigPlanProvider>(plan_to_config(plan));
}

}  // namespace chopper::core
