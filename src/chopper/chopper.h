// CHOPPER facade: profiling test runs -> model training -> plan generation
// -> deployable PlanProvider (paper Fig. 5, end to end).
//
// Typical use:
//
//   Chopper chopper(engine::ClusterSpec::paper_heterogeneous(0.01));
//   chopper.profile("kmeans", runner, /*scale=*/1.0);   // lightweight test runs
//   auto plan = chopper.plan("kmeans", input_bytes);    // Algorithm 3
//   auto provider = chopper.make_provider(plan);
//
//   engine::Engine eng(cluster, opts);
//   eng.set_plan_provider(provider);
//   runner(eng, 1.0);                                   // optimized run
//
// The runner is any callable that builds the workload's datasets on the
// given Engine and submits its jobs; `scale` scales the input size so the
// profiling sweep can vary D (paper Sec. III-B "sampled input data size").
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chopper/collector.h"
#include "chopper/config_plan.h"
#include "chopper/optimizer.h"
#include "chopper/workload_db.h"
#include "engine/cluster.h"
#include "engine/engine.h"

namespace chopper::core {

using WorkloadRunner = std::function<void(engine::Engine&, double scale)>;

struct ChopperOptions {
  OptimizerOptions optimizer;
  engine::EngineOptions engine_options;

  /// Profiling sweep: partition counts, input-size fractions, partitioners.
  std::vector<std::size_t> profile_partitions = {100, 200, 300, 400, 500, 800};
  std::vector<double> profile_fractions = {0.3, 0.6, 1.0};
  bool profile_both_partitioners = true;
  double ridge_lambda = 1e-3;
};

class Chopper {
 public:
  explicit Chopper(engine::ClusterSpec cluster, ChopperOptions options = {});

  /// Run the profiling sweep for `workload` (plus one default-configuration
  /// baseline run) and ingest all statistics into the workload DB.
  /// Returns the measured workload input bytes at scale 1.0 of the sweep.
  double profile(const std::string& workload, const WorkloadRunner& runner,
                 double scale = 1.0);

  /// Ingest a single already-executed run (e.g. a production run whose
  /// statistics should refine the models).
  void ingest_run(const engine::MetricsRegistry& metrics,
                  const std::string& workload, double workload_input_bytes,
                  bool is_default);

  /// Algorithm 3 plan for the given input size.
  std::vector<PlannedStage> plan(const std::string& workload,
                                 double input_bytes);

  struct ReplanResult {
    std::vector<PlannedStage> plan;
    /// False when the workload's DAG exceeded `max_stages` and the sweep was
    /// skipped (plan empty) — the bound that keeps mid-run re-planning from
    /// stalling a stage barrier on a huge DAG.
    bool swept = false;
  };

  /// Bounded Algorithm-3 re-sweep for in-flight adaptation (src/adapt): same
  /// plan as plan(), but refuses to sweep DAGs larger than `max_stages`.
  /// Models are lazily refit from whatever observations arrived since the
  /// last sweep (see WorkloadDb::model's incremental-refit contract).
  ReplanResult replan(const std::string& workload, double input_bytes,
                      std::size_t max_stages);

  struct TuneResult {
    std::vector<PlannedStage> plan;
    std::vector<double> run_times;  ///< simulated time of each tuning run
    std::size_t rounds = 0;
    bool converged = false;  ///< consecutive plans agreed before max_rounds
  };

  /// Online tuning loop (the paper's production-refinement story,
  /// Sec. III-B): repeatedly run the workload under the current plan,
  /// ingest the observed statistics, and re-plan — until two consecutive
  /// plans agree on every scheme or `max_rounds` is hit. Assumes profile()
  /// was called at least once (models must exist).
  TuneResult tune(const std::string& workload, const WorkloadRunner& runner,
                  double scale = 1.0, std::size_t max_rounds = 4);
  /// Algorithm 2 plan (per-stage naive; for ablations).
  std::vector<PlannedStage> plan_naive(const std::string& workload,
                                       double input_bytes);

  /// Fig. 6 config for a plan.
  common::KvConfig plan_config(const std::vector<PlannedStage>& plan) const;
  /// Deployable provider for the engine.
  std::shared_ptr<ConfigPlanProvider> make_provider(
      const std::vector<PlannedStage>& plan) const;

  WorkloadDb& db() noexcept { return db_; }

  /// Persist / restore the workload DB (profiling results survive restarts,
  /// paper Sec. III-B). Tolerant loads skip corrupt records with a warning
  /// and degrade an unreadable file to an empty DB (= no plan) instead of
  /// failing the run.
  void save_db(const std::string& path) const { db_.save(path); }
  void load_db(const std::string& path, bool tolerant = false) {
    db_ = WorkloadDb::load(path, options_.ridge_lambda, tolerant);
  }

  Optimizer& optimizer() noexcept { return optimizer_; }
  const ChopperOptions& options() const noexcept { return options_; }
  const engine::ClusterSpec& cluster() const noexcept { return cluster_; }

  /// Engine configured like the profiling engines (for the optimized run).
  std::unique_ptr<engine::Engine> make_engine() const;

  /// Wire a structured event log through the whole pipeline: every engine
  /// make_engine() creates, the collector (ingest markers) and the optimizer
  /// (plan decisions). Pass nullptr to detach.
  void set_event_log(obs::EventLog* log) noexcept;

 private:
  engine::ClusterSpec cluster_;
  ChopperOptions options_;
  WorkloadDb db_;
  StatsCollector collector_;
  Optimizer optimizer_;
  obs::EventLog* event_log_ = nullptr;  ///< not owned; may be null
};

}  // namespace chopper::core
