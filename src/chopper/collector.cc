#include "chopper/collector.h"

#include "obs/event_log.h"

namespace chopper::core {

double StatsCollector::ingest(const engine::MetricsRegistry& metrics,
                              const std::string& workload,
                              double workload_input_bytes, bool is_default) {
  if (workload_input_bytes <= 0.0) {
    // Measure: total bytes produced by source stages. Iterative workloads
    // regenerate nothing after caching, so this is the workload's real
    // input footprint.
    for (const auto& s : metrics.stages()) {
      if (s.anchor_op == engine::OpKind::kSource &&
          s.parent_signatures.empty()) {
        workload_input_bytes += static_cast<double>(s.input_bytes);
      }
    }
    if (workload_input_bytes <= 0.0) workload_input_bytes = 1.0;
  }

  for (const auto& s : metrics.stages()) {
    Observation o;
    o.workload = workload;
    o.signature = s.signature;
    o.partitioner = s.partitioner;
    o.workload_input_bytes = workload_input_bytes;
    o.stage_input_bytes = static_cast<double>(s.input_bytes);
    o.num_partitions = static_cast<double>(s.num_partitions);
    o.t_exe_s = s.sim_time_s;
    o.shuffle_bytes = static_cast<double>(s.shuffle_bytes());
    o.is_default = is_default;
    db_.add(std::move(o));

    // Every OOMed attempt proves its partition count infeasible at this
    // stage's input size — the optimizer turns these into a feasibility
    // floor (min_feasible_partitions). The stage's total input is invariant
    // under repartition, so the final attempt's input_bytes stands in for
    // the failed attempts' D.
    for (const std::size_t p : s.oomed_partition_counts) {
      OomRecord r;
      r.workload = workload;
      r.signature = s.signature;
      r.stage_input_bytes = static_cast<double>(s.input_bytes);
      r.num_partitions = static_cast<double>(p);
      db_.add_oom(std::move(r));
    }

    // Transient-fault telemetry rides along with the observation so the
    // profiling history shows which stages paid retry/heal costs. Recorded
    // only when something actually happened — clean runs add no rows.
    if (s.fetch_retries != 0 || s.refetched_bytes != 0 ||
        s.checksum_failures != 0 || s.node_exclusions != 0) {
      FaultRecord fr;
      fr.workload = workload;
      fr.signature = s.signature;
      fr.fetch_retries = s.fetch_retries;
      fr.refetched_bytes = s.refetched_bytes;
      fr.checksum_failures = s.checksum_failures;
      fr.node_exclusions = s.node_exclusions;
      db_.add_fault(std::move(fr));
    }

    StageStructure st;
    st.signature = s.signature;
    st.name = s.name;
    st.anchor_op = s.anchor_op;
    st.fixed_partitions = s.fixed_partitions;
    st.user_fixed = s.user_fixed;
    st.parents.insert(s.parent_signatures.begin(), s.parent_signatures.end());
    st.input_ratio_sum =
        static_cast<double>(s.input_bytes) / workload_input_bytes;
    st.input_ratio_count = 1;
    st.dw_sum = workload_input_bytes;
    st.d_sum = static_cast<double>(s.input_bytes);
    st.dw2_sum = workload_input_bytes * workload_input_bytes;
    st.dwd_sum = workload_input_bytes * static_cast<double>(s.input_bytes);
    st.fit_count = 1;
    db_.add_structure(workload, std::move(st));
  }
  if (event_log_ != nullptr && event_log_->enabled()) {
    obs::Event e;
    e.kind = obs::EventKind::kCollectorIngest;
    e.name = workload;
    e.value = workload_input_bytes;
    e.count = metrics.stages().size();
    if (is_default) e.flags |= obs::kFlagDefaultRun;
    event_log_->emit(std::move(e));
  }
  return workload_input_bytes;
}

}  // namespace chopper::core
