// Statistics collector (paper Fig. 5): bridges engine metrics into the
// workload DB as observations + stage structure records.
#pragma once

#include <cstdint>
#include <string>

#include "chopper/workload_db.h"
#include "engine/metrics.h"

namespace chopper::obs {
class EventLog;
}

namespace chopper::core {

class StatsCollector {
 public:
  explicit StatsCollector(WorkloadDb& db) : db_(db) {}

  /// Structured event log: every ingest() emits one kCollectorIngest marker
  /// carrying the resolved workload input bytes, so a HistoryReader can
  /// re-drive the collector offline run-by-run (nullptr: none).
  void set_event_log(obs::EventLog* log) noexcept { event_log_ = log; }

  /// Ingest every stage of a finished run.
  ///
  /// `workload_input_bytes` may be 0, in which case it is measured as the
  /// total input bytes of the run's source stages. `is_default` marks runs
  /// executed under the default-parallelism configuration (they become the
  /// normalization baselines of Eq. 3).
  ///
  /// Returns the workload input size used.
  double ingest(const engine::MetricsRegistry& metrics,
                const std::string& workload, double workload_input_bytes,
                bool is_default);

 private:
  WorkloadDb& db_;
  obs::EventLog* event_log_ = nullptr;  ///< not owned; may be null
};

}  // namespace chopper::core
