#include "chopper/config_plan.h"

#include <stdexcept>

namespace chopper::core {

common::KvConfig plan_to_config(const std::vector<PlannedStage>& plan) {
  common::KvConfig cfg;
  for (const auto& ps : plan) {
    const std::string prefix = "stage." + std::to_string(ps.signature);
    cfg.set(prefix + ".partitioner", engine::to_string(ps.partitioner));
    cfg.set_int(prefix + ".partitions",
                static_cast<std::int64_t>(ps.num_partitions));
    if (ps.insert_repartition) cfg.set_int(prefix + ".repartition", 1);
    if (ps.p_min > 0) {
      cfg.set_int(prefix + ".p_min", static_cast<std::int64_t>(ps.p_min));
    }
  }
  return cfg;
}

ParsedPlan parse_plan_config(const common::KvConfig& config) {
  ParsedPlan out;
  for (const auto& [key, value] : config.entries()) {
    if (key.rfind("stage.", 0) != 0) continue;
    const auto second_dot = key.find('.', 6);
    if (second_dot == std::string::npos) {
      throw std::runtime_error("plan config: malformed key: " + key);
    }
    const std::uint64_t sig = std::stoull(key.substr(6, second_dot - 6));
    const std::string field = key.substr(second_dot + 1);
    if (field == "partitioner") {
      out.schemes[sig].kind = value == "range" ? engine::PartitionerKind::kRange
                                               : engine::PartitionerKind::kHash;
    } else if (field == "partitions") {
      out.schemes[sig].num_partitions = std::stoull(value);
    } else if (field == "repartition") {
      out.insert_repartition[sig] = value == "1";
    } else if (field == "p_min") {
      out.p_min[sig] = std::stoull(value);
    } else {
      throw std::runtime_error("plan config: unknown field: " + key);
    }
  }
  return out;
}

ConfigPlanProvider::ConfigPlanProvider(const common::KvConfig& config)
    : plan_(parse_plan_config(config)) {}

std::optional<engine::PartitionScheme> ConfigPlanProvider::scheme_for(
    std::uint64_t signature) {
  std::lock_guard lock(mu_);
  const auto it = plan_.schemes.find(signature);
  if (it == plan_.schemes.end() || it->second.num_partitions == 0) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<engine::PartitionScheme> ConfigPlanProvider::repartition_before(
    std::uint64_t signature) {
  std::lock_guard lock(mu_);
  const auto marked = plan_.insert_repartition.find(signature);
  if (marked == plan_.insert_repartition.end() || !marked->second) {
    return std::nullopt;
  }
  const auto scheme = plan_.schemes.find(signature);
  if (scheme == plan_.schemes.end() || scheme->second.num_partitions == 0) {
    return std::nullopt;
  }
  return scheme->second;
}

bool ConfigPlanProvider::wants_repartition(std::uint64_t signature) const {
  std::lock_guard lock(mu_);
  const auto it = plan_.insert_repartition.find(signature);
  return it != plan_.insert_repartition.end() && it->second;
}

std::size_t ConfigPlanProvider::p_min_for(std::uint64_t signature) const {
  std::lock_guard lock(mu_);
  const auto it = plan_.p_min.find(signature);
  return it != plan_.p_min.end() ? it->second : 0;
}

void ConfigPlanProvider::update(const common::KvConfig& config) {
  ParsedPlan parsed = parse_plan_config(config);
  std::lock_guard lock(mu_);
  plan_ = std::move(parsed);
}

void ConfigPlanProvider::reload(const std::string& path, bool tolerant) {
  update(common::KvConfig::load(path, tolerant));
}

std::size_t ConfigPlanProvider::size() const {
  std::lock_guard lock(mu_);
  return plan_.schemes.size();
}

}  // namespace chopper::core
