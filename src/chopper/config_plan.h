// The workload configuration file (paper Fig. 6) and the PlanProvider
// implementations that feed partition schemes into the engine's scheduler.
//
// Config format, one tuple per stage signature:
//
//   stage.<signature>.partitioner = hash | range
//   stage.<signature>.partitions  = 210
//   stage.<signature>.repartition = 1        (optional: insert repartition)
//   stage.<signature>.p_min       = 120      (optional: memory floor)
//
// ConfigPlanProvider supports dynamic updates: replacing the config or
// reloading it from a file takes effect the next time the scheduler asks —
// the paper's "DAGScheduler periodically checks the updated configuration
// file" behaviour.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chopper/optimizer.h"
#include "common/kv_config.h"
#include "engine/plan.h"

namespace chopper::core {

/// Serialize a plan into the Fig. 6 config format.
common::KvConfig plan_to_config(const std::vector<PlannedStage>& plan);

/// Parse a config back into (signature -> scheme) plus repartition marks.
struct ParsedPlan {
  std::unordered_map<std::uint64_t, engine::PartitionScheme> schemes;
  std::unordered_map<std::uint64_t, bool> insert_repartition;
  /// Memory-feasibility floor per signature (absent == unconstrained).
  std::unordered_map<std::uint64_t, std::size_t> p_min;
};
ParsedPlan parse_plan_config(const common::KvConfig& config);

/// PlanProvider backed by a Fig. 6 config. Thread-safe; updatable at runtime.
class ConfigPlanProvider final : public engine::PlanProvider {
 public:
  ConfigPlanProvider() = default;
  explicit ConfigPlanProvider(const common::KvConfig& config);

  std::optional<engine::PartitionScheme> scheme_for(
      std::uint64_t signature) override;

  /// Engine hook: when the plan marked the stage for repartition insertion,
  /// returns the scheme the inserted phase should use (Algorithm 3's "add a
  /// new repartitioning phase" path). The scheduler splices the phase in.
  std::optional<engine::PartitionScheme> repartition_before(
      std::uint64_t signature) override;

  /// True when the plan asks for an explicit repartition before this stage
  /// (workload builders consult this when constructing their DAG).
  bool wants_repartition(std::uint64_t signature) const;

  /// The plan's memory-feasibility floor for this stage (0: none recorded).
  std::size_t p_min_for(std::uint64_t signature) const;

  /// Replace the whole plan (dynamic update).
  void update(const common::KvConfig& config);
  /// Reload from a config file. Strict mode throws on an unreadable file or
  /// malformed line; tolerant mode skips bad lines with a logged warning and
  /// treats an unreadable file as an empty plan.
  void reload(const std::string& path, bool tolerant = false);

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  ParsedPlan plan_;
};

/// Forces one scheme for every stage — used by CHOPPER's profiling test
/// runs to sweep partition counts and partitioner kinds.
class FixedPlanProvider final : public engine::PlanProvider {
 public:
  FixedPlanProvider(engine::PartitionerKind kind, std::size_t num_partitions)
      : scheme_{kind, num_partitions} {}

  std::optional<engine::PartitionScheme> scheme_for(std::uint64_t) override {
    return scheme_;
  }

 private:
  engine::PartitionScheme scheme_;
};

}  // namespace chopper::core
