#include "chopper/cost.h"

#include <algorithm>
#include <cmath>

namespace chopper::core {

double stage_cost(const StageModel& model, double input_bytes,
                  double num_partitions, const CostWeights& w,
                  const CostBaselines& base) {
  const double texe = model.predict_texe(input_bytes, num_partitions);
  double cost = w.alpha * texe / std::max(base.texe_default, 1e-9);
  if (base.shuffle_default > 0.0) {
    const double shuffle = model.predict_shuffle(input_bytes, num_partitions);
    cost += w.beta * shuffle / base.shuffle_default;
  }
  return cost;
}

double stage_cost(const StageModel::BoundInput& bound, double num_partitions,
                  const CostWeights& w, const CostBaselines& base) {
  const double texe = bound.texe(num_partitions);
  double cost = w.alpha * texe / std::max(base.texe_default, 1e-9);
  if (base.shuffle_default > 0.0) {
    const double shuffle = bound.shuffle(num_partitions);
    cost += w.beta * shuffle / base.shuffle_default;
  }
  return cost;
}

std::vector<std::size_t> candidate_partitions(const SearchSpace& space) {
  std::vector<std::size_t> out;
  const double lo = static_cast<double>(std::max<std::size_t>(1, space.min_partitions));
  const double hi = static_cast<double>(std::max(space.max_partitions,
                                                 space.min_partitions));
  const std::size_t n = std::max<std::size_t>(2, space.candidates);
  const double step = std::log(hi / lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    double v = lo * std::exp(step * static_cast<double>(i));
    if (space.round_to > 1) {
      v = std::round(v / static_cast<double>(space.round_to)) *
          static_cast<double>(space.round_to);
    }
    const auto c = static_cast<std::size_t>(std::max(1.0, v));
    out.push_back(std::clamp(c, space.min_partitions, space.max_partitions));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

MinParResult get_min_par(const StageModel& model, double input_bytes,
                         const CostWeights& w, const CostBaselines& base,
                         const SearchSpace& space) {
  MinParResult best;
  bool first = true;
  // Bind the D half of the basis once; only the P terms vary per candidate.
  const StageModel::BoundInput bound = model.bind_input(input_bytes);
  for (const std::size_t p : candidate_partitions(space)) {
    const double c = stage_cost(bound, static_cast<double>(p), w, base);
    if (first || c < best.cost) {
      best.num_partitions = p;
      best.cost = c;
      first = false;
    }
  }
  return best;
}

}  // namespace chopper::core
