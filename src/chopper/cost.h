// Eq. 3/4: the normalized cost objective and its minimizer over the
// partition-count search space.
//
//   cost(D, P) = alpha * texe(D,P) / texe_default
//              + beta  * sshuffle(D,P) / sshuffle_default
//
// Normalizing by the default-parallelism values puts both terms on the same
// scale; alpha and beta weight them (0.5/0.5 in the paper). Stages that
// shuffle nothing under the default config contribute no shuffle term.
//
// getMinPar (Algorithm 1's inner search) evaluates the cost over a
// log-spaced candidate grid of partition counts — the paper calls the
// minimization "a simple linear programming problem"; a direct sweep over
// the one free integer variable is the robust equivalent.
#pragma once

#include <cstddef>
#include <vector>

#include "chopper/model.h"

namespace chopper::core {

struct CostWeights {
  double alpha = 0.5;  ///< weight of normalized execution time
  double beta = 0.5;   ///< weight of normalized shuffle volume
};

struct CostBaselines {
  double texe_default = 1.0;      ///< seconds under default parallelism
  double shuffle_default = 0.0;   ///< bytes under default parallelism
};

/// Eq. 3 for one configuration.
double stage_cost(const StageModel& model, double input_bytes,
                  double num_partitions, const CostWeights& w,
                  const CostBaselines& base);

/// Eq. 3 with the stage's D terms pre-bound (StageModel::bind_input) —
/// bit-identical to the overload above, cheaper inside candidate sweeps.
double stage_cost(const StageModel::BoundInput& bound, double num_partitions,
                  const CostWeights& w, const CostBaselines& base);

struct SearchSpace {
  std::size_t min_partitions = 10;
  std::size_t max_partitions = 2000;
  std::size_t candidates = 48;   ///< log-spaced grid points
  std::size_t round_to = 10;     ///< snap candidates to multiples of this
};

/// Log-spaced candidate partition counts (deduplicated, sorted).
std::vector<std::size_t> candidate_partitions(const SearchSpace& space);

struct MinParResult {
  std::size_t num_partitions = 0;
  double cost = 0.0;
};

/// Eq. 4: arg min over the candidate grid (Algorithm 1's getMinPar).
MinParResult get_min_par(const StageModel& model, double input_bytes,
                         const CostWeights& w, const CostBaselines& base,
                         const SearchSpace& space);

}  // namespace chopper::core
