#include "chopper/model.h"

#include <algorithm>
#include <cmath>

#include "common/linalg.h"

namespace chopper::core {

namespace {
// Rescaling applied before the polynomial expansion (see header).
constexpr double kBytesScale = 1.0 / (1024.0 * 1024.0);  // D in MiB
constexpr double kPartitionScale = 1.0 / 100.0;          // P in hundreds
constexpr double kMinTexe = 1e-6;
}  // namespace

std::array<double, kNumFeatures> model_features(double input_bytes,
                                                double num_partitions) {
  const double d = std::max(0.0, input_bytes) * kBytesScale;
  const double p = std::max(0.0, num_partitions) * kPartitionScale;
  return {
      d * d * d, d * d, d, std::sqrt(d),
      p * p * p, p * p, p, std::sqrt(p),
      1.0,
  };
}

void StageModel::fit(std::span<const Observation> observations,
                     double ridge_lambda) {
  n_samples_ = observations.size();
  trained_ = false;
  mean_texe_ = 0.0;
  mean_shuffle_ = 0.0;
  if (observations.empty()) return;

  for (const auto& o : observations) {
    mean_texe_ += o.t_exe_s;
    mean_shuffle_ += o.shuffle_bytes;
  }
  mean_texe_ /= static_cast<double>(n_samples_);
  mean_shuffle_ /= static_cast<double>(n_samples_);

  if (n_samples_ < kMinSamples) return;  // fall back to means

  common::Matrix x(n_samples_, kNumFeatures);
  std::vector<double> y_texe(n_samples_);
  std::vector<double> y_shuffle(n_samples_);
  for (std::size_t i = 0; i < n_samples_; ++i) {
    const auto& o = observations[i];
    const auto f = model_features(o.stage_input_bytes, o.num_partitions);
    for (std::size_t j = 0; j < kNumFeatures; ++j) x(i, j) = f[j];
    y_texe[i] = o.t_exe_s;
    // Shuffle volumes span MBs; scale to MiB so both solves share a scale.
    y_shuffle[i] = o.shuffle_bytes * kBytesScale;
  }

  // Standardize all non-intercept columns (see header).
  feat_mean_.assign(kNumFeatures, 0.0);
  feat_std_.assign(kNumFeatures, 1.0);
  for (std::size_t j = 0; j + 1 < kNumFeatures; ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < n_samples_; ++i) mean += x(i, j);
    mean /= static_cast<double>(n_samples_);
    double var = 0.0;
    for (std::size_t i = 0; i < n_samples_; ++i) {
      const double c = x(i, j) - mean;
      var += c * c;
    }
    var /= static_cast<double>(n_samples_);
    const double stddev = std::sqrt(var);
    feat_mean_[j] = mean;
    feat_std_[j] = stddev > 1e-12 ? stddev : 0.0;  // 0 marks constant column
    for (std::size_t i = 0; i < n_samples_; ++i) {
      x(i, j) = feat_std_[j] > 0.0 ? (x(i, j) - mean) / feat_std_[j] : 0.0;
    }
  }

  w_texe_ = common::ridge_least_squares(x, y_texe, ridge_lambda);
  w_shuffle_ = common::ridge_least_squares(x, y_shuffle, ridge_lambda);
  trained_ = true;

  double rel = 0.0;
  for (std::size_t i = 0; i < n_samples_; ++i) {
    const auto& o = observations[i];
    const double pred = predict_texe(o.stage_input_bytes, o.num_partitions);
    const double denom = std::max(o.t_exe_s, kMinTexe);
    const double e = (pred - o.t_exe_s) / denom;
    rel += e * e;
  }
  texe_rel_err_ = rel / static_cast<double>(n_samples_);
}

double StageModel::predict(const std::vector<double>& w, double d,
                           double p) const {
  const auto f = model_features(d, p);
  double out = 0.0;
  for (std::size_t j = 0; j < kNumFeatures; ++j) {
    double v = f[j];
    if (j + 1 < kNumFeatures) {
      v = feat_std_[j] > 0.0 ? (v - feat_mean_[j]) / feat_std_[j] : 0.0;
    }
    out += w[j] * v;
  }
  return out;
}

StageModel::BoundInput StageModel::bind_input(double input_bytes) const {
  BoundInput b;
  b.m_ = this;
  if (!trained_) return b;
  const double d = std::max(0.0, input_bytes) * kBytesScale;
  const double df[4] = {d * d * d, d * d, d, std::sqrt(d)};
  // Same running-sum prefix predict() would produce over features 0..3.
  double td = 0.0;
  double sd = 0.0;
  for (std::size_t j = 0; j < 4; ++j) {
    const double v =
        feat_std_[j] > 0.0 ? (df[j] - feat_mean_[j]) / feat_std_[j] : 0.0;
    td += w_texe_[j] * v;
    sd += w_shuffle_[j] * v;
  }
  b.d_texe_ = td;
  b.d_shuffle_ = sd;
  return b;
}

double StageModel::BoundInput::eval(const std::vector<double>& w,
                                    double d_partial,
                                    double num_partitions) const {
  const double p = std::max(0.0, num_partitions) * kPartitionScale;
  const double pf[4] = {p * p * p, p * p, p, std::sqrt(p)};
  // Continue the addition sequence exactly where bind_input() stopped.
  double out = d_partial;
  for (std::size_t j = 4; j + 1 < kNumFeatures; ++j) {
    const double v = m_->feat_std_[j] > 0.0
                         ? (pf[j - 4] - m_->feat_mean_[j]) / m_->feat_std_[j]
                         : 0.0;
    out += w[j] * v;
  }
  out += w[kNumFeatures - 1] * 1.0;  // intercept is never standardized
  return out;
}

double StageModel::BoundInput::texe(double num_partitions) const {
  if (!m_->trained_) return std::max(m_->mean_texe_, kMinTexe);
  return std::max(eval(m_->w_texe_, d_texe_, num_partitions), kMinTexe);
}

double StageModel::BoundInput::shuffle(double num_partitions) const {
  if (!m_->trained_) return std::max(m_->mean_shuffle_, 0.0);
  // Undo the MiB target scaling applied in fit().
  return std::max(
      eval(m_->w_shuffle_, d_shuffle_, num_partitions) * 1024.0 * 1024.0, 0.0);
}

double StageModel::predict_texe(double input_bytes,
                                double num_partitions) const {
  if (!trained_) return std::max(mean_texe_, kMinTexe);
  return std::max(predict(w_texe_, input_bytes, num_partitions), kMinTexe);
}

double StageModel::predict_shuffle(double input_bytes,
                                   double num_partitions) const {
  if (!trained_) return std::max(mean_shuffle_, 0.0);
  // Undo the MiB target scaling applied in fit().
  return std::max(
      predict(w_shuffle_, input_bytes, num_partitions) * 1024.0 * 1024.0, 0.0);
}

}  // namespace chopper::core
