// CHOPPER's per-stage performance models (paper Eq. 1 and Eq. 2).
//
// Both execution time and shuffle volume are modeled over the polynomial
// basis {D^3, D^2, D, sqrt(D), P^3, P^2, P, sqrt(P)} (plus an intercept,
// which the paper folds into the coefficients). The basis is fit with
// ridge-regularized least squares; inputs are rescaled (D to MiB, P to
// hundreds) before raising to the third power so the normal equations stay
// well-conditioned across the 4-5 orders of magnitude the raw values span.
//
// With fewer samples than features, the ridge fit degenerates gracefully,
// but predictions then mostly interpolate the prior; callers should gather
// at least `kMinSamples` points per (stage, partitioner) before trusting
// the model (CHOPPER's test runs guarantee this, paper Sec. III-B).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "chopper/observation.h"

namespace chopper::core {

/// Feature vector of Eq. 1/2 (with intercept appended).
inline constexpr std::size_t kNumFeatures = 9;
std::array<double, kNumFeatures> model_features(double input_bytes,
                                                double num_partitions);

/// Minimum samples before a fit is considered trained.
inline constexpr std::size_t kMinSamples = 6;

class StageModel {
 public:
  /// Fit t_exe and shuffle models from observations (all must share one
  /// (stage, partitioner) identity; this is not checked).
  ///
  /// Features are standardized (zero mean, unit variance) before the ridge
  /// solve: the raw cubic basis is heavily collinear when D or P barely
  /// varies across observations, and unstandardized ridge lets cancelling
  /// giant coefficients produce wild predictions for tiny input shifts.
  /// Constant columns fold into the intercept.
  void fit(std::span<const Observation> observations, double ridge_lambda);

  bool trained() const noexcept { return trained_; }
  std::size_t sample_count() const noexcept { return n_samples_; }

  /// Predicted stage execution time (seconds), clamped to >= epsilon.
  double predict_texe(double input_bytes, double num_partitions) const;
  /// Predicted shuffle volume (bytes), clamped to >= 0.
  double predict_shuffle(double input_bytes, double num_partitions) const;

  /// Partial evaluation with the D half of the basis pre-summed: D is fixed
  /// per stage while the optimizer sweeps P candidates, so the four D terms
  /// (and their standardization) need computing only once. The per-P
  /// evaluation performs the remaining additions in the same order as
  /// predict(), so results are bit-identical to predict_texe/predict_shuffle.
  /// The view borrows the model; it must not outlive it.
  class BoundInput {
   public:
    double texe(double num_partitions) const;
    double shuffle(double num_partitions) const;

   private:
    friend class StageModel;
    double eval(const std::vector<double>& w, double d_partial,
                double num_partitions) const;

    const StageModel* m_ = nullptr;
    double d_texe_ = 0.0;     ///< running sum over the D terms, texe weights
    double d_shuffle_ = 0.0;  ///< ditto, shuffle weights
  };
  BoundInput bind_input(double input_bytes) const;

  /// Mean squared relative training error of the t_exe model (diagnostic).
  double texe_fit_error() const noexcept { return texe_rel_err_; }

  const std::vector<double>& texe_weights() const noexcept { return w_texe_; }
  const std::vector<double>& shuffle_weights() const noexcept {
    return w_shuffle_;
  }

 private:
  double predict(const std::vector<double>& w, double d, double p) const;

  std::vector<double> w_texe_;
  std::vector<double> w_shuffle_;
  std::vector<double> feat_mean_;
  std::vector<double> feat_std_;
  bool trained_ = false;
  std::size_t n_samples_ = 0;
  double texe_rel_err_ = 0.0;
  // Fallback means when untrained.
  double mean_texe_ = 0.0;
  double mean_shuffle_ = 0.0;
};

}  // namespace chopper::core
