// A single training point for CHOPPER's per-stage models: one executed
// stage under one (partitioner, partition count, input size) configuration.
#pragma once

#include <cstdint>
#include <string>

#include "engine/partitioner.h"

namespace chopper::core {

struct Observation {
  std::string workload;
  std::uint64_t signature = 0;
  engine::PartitionerKind partitioner = engine::PartitionerKind::kHash;
  double workload_input_bytes = 0.0;  ///< total workload input D_w
  double stage_input_bytes = 0.0;     ///< stage input D (Eq. 1/2)
  double num_partitions = 0.0;        ///< P
  double t_exe_s = 0.0;               ///< stage execution time
  double shuffle_bytes = 0.0;         ///< max(shuffle read, shuffle write)
  bool is_default = false;  ///< observed under the default-parallelism config
};

}  // namespace chopper::core
