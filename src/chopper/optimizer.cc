#include "chopper/optimizer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "obs/event_log.h"

namespace chopper::core {

namespace {

/// Union-find over stage signatures, used for DAG regrouping.
class UnionFind {
 public:
  void add(std::uint64_t x) {
    parent_.emplace(x, x);  // no-op if present
  }
  std::uint64_t find(std::uint64_t x) {
    add(x);
    std::uint64_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      const std::uint64_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }
  void unite(std::uint64_t a, std::uint64_t b) {
    parent_[find(a)] = find(b);
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> parent_;
};

}  // namespace

CostBaselines Optimizer::baselines(const std::string& workload,
                                   std::uint64_t signature) const {
  CostBaselines base;
  base.texe_default = std::max(db_.default_texe(workload, signature), 1e-9);
  base.shuffle_default = db_.default_shuffle(workload, signature);
  return base;
}

double Optimizer::repartition_cost(double bytes,
                                   const CostBaselines& base) const {
  // An inserted repartition moves essentially all stage input once across
  // the network and adds a stage barrier; price it as time normalized by
  // the same baseline as the stage it precedes, plus its shuffle volume.
  const double t_rep = bytes / options_.repartition_bw;
  double cost = options_.weights.alpha * t_rep / base.texe_default;
  if (base.shuffle_default > 0.0) {
    cost += options_.weights.beta * bytes / base.shuffle_default;
  }
  return cost;
}

Optimizer::StageChoice Optimizer::get_stage_par(const std::string& workload,
                                                std::uint64_t signature,
                                                double stage_input_bytes) {
  const CostBaselines base = baselines(workload, signature);

  const StageModel* r_model =
      db_.model(workload, signature, engine::PartitionerKind::kRange);
  const StageModel* h_model =
      db_.model(workload, signature, engine::PartitionerKind::kHash);

  // Search only where the models were trained (see observed_partition_range).
  SearchSpace space = options_.space;
  const auto [p_lo, p_hi] = db_.observed_partition_range(workload, signature);
  if (p_hi > 0.0) {
    space.min_partitions =
        std::max(space.min_partitions, static_cast<std::size_t>(p_lo));
    space.max_partitions =
        std::min(space.max_partitions, static_cast<std::size_t>(p_hi));
    space.max_partitions = std::max(space.max_partitions, space.min_partitions);
  }

  // Memory feasibility dominates every other clamp: searching below the
  // floor would reproduce a proven OOM, so the floor may push the search
  // past the observed grid (a mild extrapolation beats an infeasible plan).
  const std::size_t p_min =
      db_.min_feasible_partitions(workload, signature, stage_input_bytes);
  if (p_min > 0) {
    space.min_partitions = std::max(space.min_partitions, p_min);
    space.max_partitions = std::max(space.max_partitions, space.min_partitions);
  }

  const MinParResult r = get_min_par(*r_model, stage_input_bytes,
                                     options_.weights, base, space);
  const MinParResult h = get_min_par(*h_model, stage_input_bytes,
                                     options_.weights, base, space);

  StageChoice choice;
  choice.p_min = p_min;
  // Prefer hash on ties (and when the range model has no training data at
  // all: an untrained flat model would otherwise win spuriously).
  const bool range_wins =
      r_model->sample_count() > 0 &&
      (h_model->sample_count() == 0 || r.cost < h.cost);
  if (range_wins) {
    choice.partitioner = engine::PartitionerKind::kRange;
    choice.num_partitions = r.num_partitions;
    choice.cost = r.cost;
  } else {
    choice.partitioner = engine::PartitionerKind::kHash;
    choice.num_partitions = h.num_partitions;
    choice.cost = h.cost;
  }
  return choice;
}

std::vector<PlannedStage> Optimizer::get_workload_par(
    const std::string& workload, double workload_input_bytes) {
  std::vector<PlannedStage> plan;
  for (const auto& s : db_.dag(workload)) {
    const double d =
        db_.stage_input_estimate(workload, s.signature, workload_input_bytes);
    const StageChoice c = get_stage_par(workload, s.signature, d);
    PlannedStage ps;
    ps.signature = s.signature;
    ps.name = s.name;
    ps.partitioner = c.partitioner;
    ps.num_partitions = c.num_partitions;
    ps.cost = c.cost;
    ps.fixed = s.fixed_partitions || s.user_fixed;
    ps.p_min = c.p_min;
    plan.push_back(std::move(ps));
  }
  return plan;
}

std::vector<std::vector<std::uint64_t>> Optimizer::regroup_dag(
    const std::string& workload) const {
  const auto dag = db_.dag(workload);
  UnionFind uf;
  for (const auto& s : dag) uf.add(s.signature);
  for (const auto& s : dag) {
    const bool joins = s.anchor_op == engine::OpKind::kJoin ||
                       s.anchor_op == engine::OpKind::kCoGroup;
    if (!joins) continue;
    // A join stage and the stages producing its inputs must share a scheme
    // for co-partitioning to eliminate the join's shuffle.
    for (const auto p : s.parents) uf.unite(s.signature, p);
  }
  // Collect groups preserving DAG order.
  std::map<std::uint64_t, std::vector<std::uint64_t>> groups;
  std::vector<std::uint64_t> order;
  for (const auto& s : dag) {
    const auto root = uf.find(s.signature);
    if (groups[root].empty()) order.push_back(root);
    groups[root].push_back(s.signature);
  }
  std::vector<std::vector<std::uint64_t>> out;
  out.reserve(order.size());
  for (const auto root : order) out.push_back(groups[root]);
  return out;
}

std::vector<PlannedStage> Optimizer::get_global_par(
    const std::string& workload, double workload_input_bytes) {
  const auto dag = db_.dag(workload);
  std::unordered_map<std::uint64_t, StageStructure> by_sig;
  for (const auto& s : dag) by_sig.emplace(s.signature, s);

  std::vector<PlannedStage> plan;
  const auto groups = regroup_dag(workload);
  int group_id = 0;
  std::unordered_map<std::uint64_t, std::size_t> pmin_by_sig;

  for (const auto& group : groups) {
    // --- pick the group's scheme ------------------------------------------
    engine::PartitionerKind kind = engine::PartitionerKind::kHash;
    std::size_t num_partitions = 0;
    double chosen_cost = 0.0;

    if (group.size() == 1) {
      const double d = db_.stage_input_estimate(workload, group[0],
                                                workload_input_bytes);
      const StageChoice c = get_stage_par(workload, group[0], d);
      kind = c.partitioner;
      num_partitions = c.num_partitions;
      chosen_cost = c.cost;
      pmin_by_sig[group[0]] = c.p_min;
    } else {
      // getSubGraphPar: each member's individually-optimal scheme is a
      // candidate; the group adopts the candidate with the lowest total
      // cost when applied to every member.
      struct Candidate {
        engine::PartitionerKind kind;
        std::size_t p;
      };
      // Per-member evaluation state, computed once: the input estimate and
      // baselines are fixed per signature, and the models' D basis terms
      // are pre-bound so the O(candidates x members) sweep below only
      // evaluates the cheap P half of the polynomial.
      struct SigEval {
        CostBaselines base;
        StageModel::BoundInput range;
        StageModel::BoundInput hash;
      };
      std::vector<Candidate> candidates;
      std::vector<SigEval> evals;
      evals.reserve(group.size());
      std::size_t group_p_min = 0;
      for (const auto sig : group) {
        const double d =
            db_.stage_input_estimate(workload, sig, workload_input_bytes);
        const StageChoice c = get_stage_par(workload, sig, d);
        candidates.push_back({c.partitioner, c.num_partitions});
        pmin_by_sig[sig] = c.p_min;
        group_p_min = std::max(group_p_min, c.p_min);
        SigEval ev;
        ev.base = baselines(workload, sig);
        ev.range = db_.model(workload, sig, engine::PartitionerKind::kRange)
                       ->bind_input(d);
        ev.hash = db_.model(workload, sig, engine::PartitionerKind::kHash)
                      ->bind_input(d);
        evals.push_back(std::move(ev));
      }
      bool first = true;
      double best_total = 0.0;
      for (const auto& cand : candidates) {
        double total = 0.0;
        for (std::size_t i = 0; i < group.size(); ++i) {
          const SigEval& ev = evals[i];
          const StageModel::BoundInput& bound =
              cand.kind == engine::PartitionerKind::kRange ? ev.range
                                                           : ev.hash;
          total += stage_cost(bound, static_cast<double>(cand.p),
                              options_.weights, ev.base);
        }
        if (first || total < best_total) {
          best_total = total;
          kind = cand.kind;
          num_partitions = cand.p;
          first = false;
        }
      }
      chosen_cost = best_total;
      // A shared scheme must satisfy every member's feasibility floor —
      // a candidate that fits its own stage can still OOM a sibling.
      num_partitions = std::max(num_partitions, group_p_min);
    }

    // --- emit one PlannedStage per member, honoring fixed stages -----------
    for (const auto sig : group) {
      const StageStructure& st = by_sig.at(sig);
      const double d =
          db_.stage_input_estimate(workload, sig, workload_input_bytes);

      PlannedStage ps;
      ps.signature = sig;
      ps.name = st.name;
      ps.group = group.size() > 1 ? group_id : -1;
      ps.p_min = pmin_by_sig.count(sig) ? pmin_by_sig.at(sig) : 0;

      const bool is_fixed = st.fixed_partitions || st.user_fixed;
      if (is_fixed) {
        // Current (unchangeable) scheme vs optimal + explicit repartition.
        const double cur_p = db_.default_partitions(workload, sig);
        const CostBaselines base = baselines(workload, sig);
        const StageModel* cur_model =
            db_.model(workload, sig, engine::PartitionerKind::kHash);
        const double cur_cost =
            stage_cost(*cur_model, d, cur_p > 0 ? cur_p : 1.0,
                       options_.weights, base);

        const StageModel* opt_model = db_.model(workload, sig, kind);
        const double opt_stage_cost =
            stage_cost(*opt_model, d, static_cast<double>(num_partitions),
                       options_.weights, base);
        const double opt_cost = opt_stage_cost + repartition_cost(d, base);

        if (cur_cost > options_.gamma * opt_cost) {
          ps.partitioner = kind;
          ps.num_partitions = num_partitions;
          ps.cost = opt_cost;
          ps.fixed = true;
          ps.insert_repartition = true;
        } else {
          ps.partitioner = engine::PartitionerKind::kHash;
          ps.num_partitions =
              cur_p > 0 ? static_cast<std::size_t>(cur_p) : num_partitions;
          ps.cost = cur_cost;
          ps.fixed = true;
        }
      } else {
        ps.partitioner = kind;
        ps.num_partitions = num_partitions;
        ps.cost = chosen_cost;
      }
      plan.push_back(std::move(ps));
    }
    if (group.size() > 1) ++group_id;
  }
  if (event_log_ != nullptr && event_log_->enabled()) {
    for (const PlannedStage& ps : plan) {
      obs::Event e;
      e.kind = obs::EventKind::kPlanDecision;
      e.signature = ps.signature;
      e.name = ps.name;
      e.detail = workload;
      e.partitioner = static_cast<std::uint64_t>(ps.partitioner);
      e.num_partitions = ps.num_partitions;
      e.value = ps.cost;
      e.value2 = options_.gamma;
      e.p_min = ps.p_min;
      e.group = ps.group;
      if (ps.fixed) e.flags |= obs::kFlagFixed;
      if (ps.insert_repartition) e.flags |= obs::kFlagRepartition;
      event_log_->emit(std::move(e));
    }
  }
  return plan;
}

}  // namespace chopper::core
