// The partition optimizer: Algorithms 1, 2 and 3 of the paper.
//
//  * Algorithm 1 (get_stage_par): per-stage choice between the trained hash
//    and range models, each minimized over the partition-count grid.
//  * Algorithm 2 (get_workload_par): the naive per-stage plan — every stage
//    independently optimal, ignoring inter-stage dependencies.
//  * Algorithm 3 (get_global_par): the globally-optimized plan — the DAG is
//    regrouped so stages connected through join/cogroup dependencies form
//    subgraphs that must share one scheme (enabling co-partitioning, which
//    eliminates their shuffle); stages whose scheme cannot be changed
//    (cache/partition dependencies, user-fixed schemes) keep their scheme
//    unless inserting an explicit repartition wins by more than a factor of
//    gamma (1.5 in the paper, tolerating model error).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chopper/cost.h"
#include "chopper/workload_db.h"

namespace chopper::obs {
class EventLog;
}

namespace chopper::core {

struct OptimizerOptions {
  CostWeights weights;
  SearchSpace space;
  /// Benefit factor required before inserting a repartition phase.
  double gamma = 1.5;
  /// Effective bandwidth for pricing an inserted repartition of D bytes.
  double repartition_bw = 2.0e8;
};

/// One row of the generated plan (becomes one tuple of the Fig. 6 config).
struct PlannedStage {
  std::uint64_t signature = 0;
  std::string name;
  engine::PartitionerKind partitioner = engine::PartitionerKind::kHash;
  std::size_t num_partitions = 0;
  double cost = 0.0;
  /// Scheme cannot be applied directly (cache- or user-fixed stage).
  bool fixed = false;
  /// Fixed stage where inserting an explicit repartition phase pays off.
  bool insert_repartition = false;
  /// Subgraph id when the stage was co-partitioned with others (Algorithm 3);
  /// stages sharing an id share a scheme. -1 for singletons.
  int group = -1;
  /// Memory-feasibility floor derived from recorded OOMs (0: unconstrained).
  /// num_partitions is already >= p_min; the floor is carried so deployed
  /// configs document why a count was raised past the cost optimum.
  std::size_t p_min = 0;
};

class Optimizer {
 public:
  Optimizer(WorkloadDb& db, OptimizerOptions options = {})
      : db_(db), options_(options) {}

  struct StageChoice {
    engine::PartitionerKind partitioner = engine::PartitionerKind::kHash;
    std::size_t num_partitions = 0;
    double cost = 0.0;
    /// Memory-feasibility floor applied to the search (0: unconstrained).
    std::size_t p_min = 0;
  };

  /// Algorithm 1. `stage_input_bytes` is D for the stage.
  StageChoice get_stage_par(const std::string& workload, std::uint64_t signature,
                            double stage_input_bytes);

  /// Algorithm 2. `workload_input_bytes` is the workload input D_w; per-stage
  /// D values are estimated through the DB's input-ratio transfer model.
  std::vector<PlannedStage> get_workload_par(const std::string& workload,
                                             double workload_input_bytes);

  /// Algorithm 3 (the plan CHOPPER deploys).
  std::vector<PlannedStage> get_global_par(const std::string& workload,
                                           double workload_input_bytes);

  /// DAG regrouping used by Algorithm 3, exposed for tests: returns groups
  /// of stage signatures that must share a partition scheme (singletons
  /// included).
  std::vector<std::vector<std::uint64_t>> regroup_dag(
      const std::string& workload) const;

  const OptimizerOptions& options() const noexcept { return options_; }

  /// Structured event log: get_global_par emits one kPlanDecision per
  /// planned stage of the deployable plan (nullptr: none).
  void set_event_log(obs::EventLog* log) noexcept { event_log_ = log; }

 private:
  CostBaselines baselines(const std::string& workload,
                          std::uint64_t signature) const;
  /// Normalized cost of an inserted repartition phase over `bytes` input.
  double repartition_cost(double bytes, const CostBaselines& base) const;

  WorkloadDb& db_;
  OptimizerOptions options_;
  obs::EventLog* event_log_ = nullptr;  ///< not owned; may be null
};

}  // namespace chopper::core
