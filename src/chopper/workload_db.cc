#include "chopper/workload_db.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/logging.h"

namespace chopper::core {

namespace {
engine::PartitionerKind kind_from_string(const std::string& s) {
  if (s == "range") return engine::PartitionerKind::kRange;
  return engine::PartitionerKind::kHash;
}
}  // namespace

void WorkloadDb::add(Observation o) { observations_.push_back(std::move(o)); }

void WorkloadDb::add_oom(OomRecord r) {
  oom_records_.push_back(std::move(r));
}

void WorkloadDb::add_fault(FaultRecord r) {
  fault_records_.push_back(std::move(r));
}

void WorkloadDb::add_structure(const std::string& workload, StageStructure s) {
  const auto key = std::make_pair(workload, s.signature);
  const auto it = structures_.find(key);
  if (it == structures_.end()) {
    s.order = next_order_++;
    structures_.emplace(key, std::move(s));
    return;
  }
  // Merge: keep first-seen order, union parents, accumulate input ratios.
  StageStructure& dst = it->second;
  dst.fixed_partitions = dst.fixed_partitions || s.fixed_partitions;
  dst.user_fixed = dst.user_fixed || s.user_fixed;
  dst.parents.insert(s.parents.begin(), s.parents.end());
  dst.input_ratio_sum += s.input_ratio_sum;
  dst.input_ratio_count += s.input_ratio_count;
  dst.dw_sum += s.dw_sum;
  dst.d_sum += s.d_sum;
  dst.dw2_sum += s.dw2_sum;
  dst.dwd_sum += s.dwd_sum;
  dst.fit_count += s.fit_count;
}

std::vector<Observation> WorkloadDb::observations(
    const std::string& workload, std::uint64_t signature,
    engine::PartitionerKind kind) const {
  std::vector<Observation> out;
  for (const auto& o : observations_) {
    if (o.workload == workload && o.signature == signature &&
        o.partitioner == kind) {
      out.push_back(o);
    }
  }
  return out;
}

namespace {
/// Canonical total order over a model's training set. Sorting before the fit
/// makes the float summation order a function of the observation *set*, not
/// of ingest history — so an incremental refit mid-run (observations arriving
/// one stage at a time, model() called between arrivals) produces
/// coefficients bit-identical to an offline fit over the same observations,
/// in any ingest order. The adaptive controller's replay/bit-identity
/// guarantees (DESIGN.md §15) rest on this.
bool canonical_less(const Observation& a, const Observation& b) {
  if (a.workload_input_bytes != b.workload_input_bytes) {
    return a.workload_input_bytes < b.workload_input_bytes;
  }
  if (a.stage_input_bytes != b.stage_input_bytes) {
    return a.stage_input_bytes < b.stage_input_bytes;
  }
  if (a.num_partitions != b.num_partitions) {
    return a.num_partitions < b.num_partitions;
  }
  if (a.t_exe_s != b.t_exe_s) return a.t_exe_s < b.t_exe_s;
  if (a.shuffle_bytes != b.shuffle_bytes) {
    return a.shuffle_bytes < b.shuffle_bytes;
  }
  return a.is_default < b.is_default;
}
}  // namespace

const StageModel* WorkloadDb::model(const std::string& workload,
                                    std::uint64_t signature,
                                    engine::PartitionerKind kind) {
  const ModelKey key{workload, signature, kind};
  auto& entry = models_[key];
  if (entry.trained_on != observations_.size()) {
    auto obs = observations(workload, signature, kind);
    std::sort(obs.begin(), obs.end(), canonical_less);
    entry.model.fit(obs, ridge_lambda_);
    entry.trained_on = observations_.size();
  }
  return &entry.model;
}

double WorkloadDb::default_texe(const std::string& workload,
                                std::uint64_t signature) const {
  double sum = 0.0, all = 0.0;
  std::size_t n = 0, n_all = 0;
  for (const auto& o : observations_) {
    if (o.workload != workload || o.signature != signature) continue;
    all += o.t_exe_s;
    ++n_all;
    if (o.is_default) {
      sum += o.t_exe_s;
      ++n;
    }
  }
  if (n > 0) return sum / static_cast<double>(n);
  if (n_all > 0) return all / static_cast<double>(n_all);
  return 1.0;
}

double WorkloadDb::default_shuffle(const std::string& workload,
                                   std::uint64_t signature) const {
  double sum = 0.0, all = 0.0;
  std::size_t n = 0, n_all = 0;
  for (const auto& o : observations_) {
    if (o.workload != workload || o.signature != signature) continue;
    all += o.shuffle_bytes;
    ++n_all;
    if (o.is_default) {
      sum += o.shuffle_bytes;
      ++n;
    }
  }
  if (n > 0) return sum / static_cast<double>(n);
  if (n_all > 0) return all / static_cast<double>(n_all);
  return 0.0;
}

double WorkloadDb::default_partitions(const std::string& workload,
                                      std::uint64_t signature) const {
  double sum = 0.0, all = 0.0;
  std::size_t n = 0, n_all = 0;
  for (const auto& o : observations_) {
    if (o.workload != workload || o.signature != signature) continue;
    all += o.num_partitions;
    ++n_all;
    if (o.is_default) {
      sum += o.num_partitions;
      ++n;
    }
  }
  if (n > 0) return sum / static_cast<double>(n);
  if (n_all > 0) return all / static_cast<double>(n_all);
  return 0.0;
}

std::pair<double, double> WorkloadDb::observed_partition_range(
    const std::string& workload, std::uint64_t signature) const {
  double lo = 0.0, hi = 0.0;
  bool any = false;
  for (const auto& o : observations_) {
    if (o.workload != workload || o.signature != signature) continue;
    if (!any) {
      lo = hi = o.num_partitions;
      any = true;
    } else {
      lo = std::min(lo, o.num_partitions);
      hi = std::max(hi, o.num_partitions);
    }
  }
  return {lo, hi};
}

double WorkloadDb::stage_input_estimate(const std::string& workload,
                                        std::uint64_t signature,
                                        double workload_bytes) const {
  const auto it = structures_.find(std::make_pair(workload, signature));
  if (it == structures_.end()) return workload_bytes;
  const StageStructure& st = it->second;

  double estimate;
  const auto n = static_cast<double>(st.fit_count);
  const double denom = n * st.dw2_sum - st.dw_sum * st.dw_sum;
  if (st.fit_count >= 2 && std::abs(denom) > 1e-9 * st.dw2_sum) {
    const double slope = (n * st.dwd_sum - st.dw_sum * st.d_sum) / denom;
    const double intercept = (st.d_sum - slope * st.dw_sum) / n;
    estimate = slope * workload_bytes + intercept;
  } else {
    estimate = st.input_ratio() * workload_bytes;
  }
  if (estimate < 0.0) estimate = 0.0;

  const auto [lo, hi] = observed_input_range(workload, signature);
  if (hi > 0.0) estimate = std::clamp(estimate, lo, hi);
  return estimate;
}

std::size_t WorkloadDb::times_observed(const std::string& workload,
                                       std::uint64_t signature) const {
  std::size_t n = 0;
  for (const auto& o : observations_) {
    if (o.workload == workload && o.signature == signature) ++n;
  }
  return n;
}

std::pair<double, double> WorkloadDb::observed_input_range(
    const std::string& workload, std::uint64_t signature) const {
  double lo = 0.0, hi = 0.0;
  bool any = false;
  for (const auto& o : observations_) {
    if (o.workload != workload || o.signature != signature) continue;
    if (!any) {
      lo = hi = o.stage_input_bytes;
      any = true;
    } else {
      lo = std::min(lo, o.stage_input_bytes);
      hi = std::max(hi, o.stage_input_bytes);
    }
  }
  return {lo, hi};
}

std::size_t WorkloadDb::min_feasible_partitions(const std::string& workload,
                                                std::uint64_t signature,
                                                double stage_input_bytes) const {
  // The tightest proven-infeasible per-task slice: the smallest D_o / P_o
  // among recorded OOMs of this stage. (Smaller slices than observed ones
  // may still fit; larger ones certainly do not.)
  double bad_slice = 0.0;
  for (const auto& r : oom_records_) {
    if (r.workload != workload || r.signature != signature) continue;
    if (r.num_partitions <= 0.0 || r.stage_input_bytes <= 0.0) continue;
    const double slice = r.stage_input_bytes / r.num_partitions;
    if (bad_slice == 0.0 || slice < bad_slice) bad_slice = slice;
  }
  if (bad_slice == 0.0 || stage_input_bytes <= 0.0) return 0;
  // Smallest P with D / P strictly below the infeasible slice.
  return static_cast<std::size_t>(
             std::floor(stage_input_bytes / bad_slice)) +
         1;
}

std::vector<StageStructure> WorkloadDb::dag(const std::string& workload) const {
  std::vector<StageStructure> out;
  for (const auto& [key, s] : structures_) {
    if (key.first == workload) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const StageStructure& a, const StageStructure& b) {
              return a.order < b.order;
            });
  return out;
}

std::optional<StageStructure> WorkloadDb::structure(
    const std::string& workload, std::uint64_t signature) const {
  const auto it = structures_.find(std::make_pair(workload, signature));
  if (it == structures_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> WorkloadDb::workloads() const {
  std::vector<std::string> out;
  for (const auto& [key, s] : structures_) {
    if (out.empty() || out.back() != key.first) out.push_back(key.first);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t WorkloadDb::prune(const std::string& workload) {
  const auto before = observations_.size();
  std::erase_if(observations_,
                [&](const Observation& o) { return o.workload == workload; });
  std::erase_if(oom_records_,
                [&](const OomRecord& r) { return r.workload == workload; });
  std::erase_if(fault_records_,
                [&](const FaultRecord& r) { return r.workload == workload; });
  std::erase_if(structures_, [&](const auto& kv) {
    return kv.first.first == workload;
  });
  std::erase_if(models_,
                [&](const auto& kv) { return kv.first.workload == workload; });
  return before - observations_.size();
}

void WorkloadDb::merge(const WorkloadDb& other) {
  for (const auto& o : other.observations_) add(o);
  for (const auto& r : other.oom_records_) add_oom(r);
  for (const auto& r : other.fault_records_) add_fault(r);
  for (const auto& [key, st] : other.structures_) {
    add_structure(key.first, st);
  }
}

void WorkloadDb::save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("WorkloadDb: cannot write " + path);
  os << "# chopper workload db v1\n";
  for (const auto& o : observations_) {
    os << "obs\t" << o.workload << "\t" << o.signature << "\t"
       << engine::to_string(o.partitioner) << "\t" << o.workload_input_bytes
       << "\t" << o.stage_input_bytes << "\t" << o.num_partitions << "\t"
       << o.t_exe_s << "\t" << o.shuffle_bytes << "\t" << (o.is_default ? 1 : 0)
       << "\n";
  }
  for (const auto& r : oom_records_) {
    os << "oom\t" << r.workload << "\t" << r.signature << "\t"
       << r.stage_input_bytes << "\t" << r.num_partitions << "\n";
  }
  for (const auto& r : fault_records_) {
    os << "fault\t" << r.workload << "\t" << r.signature << "\t"
       << r.fetch_retries << "\t" << r.refetched_bytes << "\t"
       << r.checksum_failures << "\t" << r.node_exclusions << "\n";
  }
  for (const auto& [key, s] : structures_) {
    os << "stage\t" << key.first << "\t" << s.signature << "\t" << s.name
       << "\t" << static_cast<int>(s.anchor_op) << "\t"
       << (s.fixed_partitions ? 1 : 0) << "\t" << (s.user_fixed ? 1 : 0) << "\t"
       << s.input_ratio_sum << "\t" << s.input_ratio_count << "\t" << s.dw_sum
       << "\t" << s.d_sum << "\t" << s.dw2_sum << "\t" << s.dwd_sum << "\t"
       << s.fit_count << "\t" << s.order;
    for (const auto p : s.parents) os << "\t" << p;
    os << "\n";
  }
}

namespace {
/// Next tab-separated field of a record; throws when the record is short.
std::string next_field(std::istringstream& ls) {
  std::string field;
  if (!std::getline(ls, field, '\t')) {
    throw std::runtime_error("truncated record");
  }
  return field;
}
}  // namespace

WorkloadDb WorkloadDb::load(const std::string& path, double ridge_lambda,
                            bool tolerant) {
  std::ifstream is(path);
  if (!is) {
    if (tolerant) {
      LOG_WARN << "WorkloadDb: cannot read " << path
               << "; continuing with an empty DB (no plan will be produced)";
      return WorkloadDb(ridge_lambda);
    }
    throw std::runtime_error("WorkloadDb: cannot read " + path);
  }
  WorkloadDb db(ridge_lambda);
  std::string line;
  std::size_t line_no = 0;
  const auto parse_line = [&db](const std::string& l) {
    std::istringstream ls(l);
    std::string tag;
    std::getline(ls, tag, '\t');
    if (tag == "obs") {
      Observation o;
      o.workload = next_field(ls);
      o.signature = std::stoull(next_field(ls));
      o.partitioner = kind_from_string(next_field(ls));
      o.workload_input_bytes = std::stod(next_field(ls));
      o.stage_input_bytes = std::stod(next_field(ls));
      o.num_partitions = std::stod(next_field(ls));
      o.t_exe_s = std::stod(next_field(ls));
      o.shuffle_bytes = std::stod(next_field(ls));
      o.is_default = next_field(ls) == "1";
      db.add(std::move(o));
    } else if (tag == "oom") {
      OomRecord r;
      r.workload = next_field(ls);
      r.signature = std::stoull(next_field(ls));
      r.stage_input_bytes = std::stod(next_field(ls));
      r.num_partitions = std::stod(next_field(ls));
      db.add_oom(std::move(r));
    } else if (tag == "fault") {
      FaultRecord r;
      r.workload = next_field(ls);
      r.signature = std::stoull(next_field(ls));
      r.fetch_retries = std::stoull(next_field(ls));
      r.refetched_bytes = std::stoull(next_field(ls));
      r.checksum_failures = std::stoull(next_field(ls));
      r.node_exclusions = std::stoull(next_field(ls));
      db.add_fault(std::move(r));
    } else if (tag == "stage") {
      StageStructure s;
      const std::string workload = next_field(ls);
      s.signature = std::stoull(next_field(ls));
      s.name = next_field(ls);
      s.anchor_op = static_cast<engine::OpKind>(std::stoi(next_field(ls)));
      s.fixed_partitions = next_field(ls) == "1";
      s.user_fixed = next_field(ls) == "1";
      s.input_ratio_sum = std::stod(next_field(ls));
      s.input_ratio_count = std::stoull(next_field(ls));
      s.dw_sum = std::stod(next_field(ls));
      s.d_sum = std::stod(next_field(ls));
      s.dw2_sum = std::stod(next_field(ls));
      s.dwd_sum = std::stod(next_field(ls));
      s.fit_count = std::stoull(next_field(ls));
      const auto order = static_cast<std::size_t>(std::stoull(next_field(ls)));
      std::string field;
      while (std::getline(ls, field, '\t')) {
        if (!field.empty()) s.parents.insert(std::stoull(field));
      }
      db.add_structure(workload, s);
      // Preserve the original ordering across save/load.
      db.structures_.at(std::make_pair(workload, s.signature)).order = order;
      db.next_order_ = std::max(db.next_order_, order + 1);
    } else {
      throw std::runtime_error("WorkloadDb: unknown record tag: " + tag);
    }
  };
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (tolerant) {
      try {
        parse_line(line);
      } catch (const std::exception& e) {
        LOG_WARN << "WorkloadDb: skipping corrupt record at " << path << ":"
                 << line_no << " (" << e.what() << ")";
      }
    } else {
      parse_line(line);
    }
  }
  return db;
}

}  // namespace chopper::core
