// Workload DB (paper Fig. 5): stores per-stage observations gathered by the
// statistics collector, the structural DAG information of each workload,
// and lazily-trained StageModels (one per stage signature x partitioner).
//
// Also answers the two auxiliary questions the optimizer needs:
//  * default-parallelism baselines t_exe / s_shuffle for Eq. 3's
//    normalization;
//  * an input-size transfer estimate: stage input D as a fraction of the
//    workload input D_w (so plans can be computed for input sizes never
//    profiled directly).
//
// The DB persists to a plain text file so profiling results survive across
// runs ("CHOPPER also remembers the statistics from the user workload
// execution in a production environment", paper Sec. III-B).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "chopper/model.h"
#include "chopper/observation.h"
#include "engine/dataset.h"

namespace chopper::core {

/// Structural info for one stage signature of a workload (merged over all
/// jobs that exercised it).
struct StageStructure {
  std::uint64_t signature = 0;
  std::string name;
  engine::OpKind anchor_op = engine::OpKind::kSource;
  bool fixed_partitions = false;
  bool user_fixed = false;
  std::set<std::uint64_t> parents;
  /// Running mean of stage_input_bytes / workload_input_bytes (fallback
  /// transfer model when the linear fit is degenerate).
  double input_ratio_sum = 0.0;
  std::size_t input_ratio_count = 0;
  /// Sufficient statistics for the linear input-transfer fit
  /// d = slope * D_w + intercept (handles stages whose input does not track
  /// the workload input, e.g. a fixed-size dimension table).
  double dw_sum = 0.0;
  double d_sum = 0.0;
  double dw2_sum = 0.0;
  double dwd_sum = 0.0;
  std::size_t fit_count = 0;
  /// First-seen order (stable iteration for planning output).
  std::size_t order = 0;

  double input_ratio() const noexcept {
    return input_ratio_count
               ? input_ratio_sum / static_cast<double>(input_ratio_count)
               : 1.0;
  }
};

/// One observed out-of-memory attempt: stage `signature` with input D ran at
/// P partitions and a task working set blew the per-task budget. Records the
/// *failed* configuration — the memory-feasibility floor is derived from
/// these (DESIGN.md §11).
struct OomRecord {
  std::string workload;
  std::uint64_t signature = 0;
  double stage_input_bytes = 0.0;  ///< stage input D at the failed attempt
  double num_partitions = 0.0;     ///< partition count P that OOMed
};

/// Per-stage transient-fault telemetry from one profiled run: fetch retries
/// priced into the stage, bytes re-transferred by those retries, checksum
/// mismatches healed through lineage, and health exclusions triggered while
/// the stage ran. Purely observational — the optimizer never plans on these,
/// but `chopperctl` surfaces them so operators can spot chronically flaky
/// nodes in the profiling history.
struct FaultRecord {
  std::string workload;
  std::uint64_t signature = 0;
  std::uint64_t fetch_retries = 0;
  std::uint64_t refetched_bytes = 0;
  std::uint64_t checksum_failures = 0;
  std::uint64_t node_exclusions = 0;
};

class WorkloadDb {
 public:
  explicit WorkloadDb(double ridge_lambda = 1e-3)
      : ridge_lambda_(ridge_lambda) {}

  // -- ingestion ------------------------------------------------------------
  void add(Observation o);
  void add_oom(OomRecord r);
  void add_fault(FaultRecord r);
  void add_structure(const std::string& workload, StageStructure s);

  // -- queries ---------------------------------------------------------------
  std::vector<Observation> observations(const std::string& workload,
                                        std::uint64_t signature,
                                        engine::PartitionerKind kind) const;
  std::size_t total_observations() const noexcept { return observations_.size(); }

  /// Lazily trained model for (workload, stage, partitioner); retrains when
  /// new observations arrived since the last call. Never null.
  ///
  /// Incremental-refit contract: the training set is put into a canonical
  /// order before fitting, so the coefficients are a pure function of the
  /// observation *set* — refitting after each mid-run add() (the adaptive
  /// controller's streaming path) is bit-identical to one offline fit over
  /// the same observations, regardless of ingest order.
  const StageModel* model(const std::string& workload, std::uint64_t signature,
                          engine::PartitionerKind kind);

  /// Mean t_exe under the default-parallelism configuration; falls back to
  /// the all-observation mean when no default run was recorded.
  double default_texe(const std::string& workload, std::uint64_t signature) const;
  double default_shuffle(const std::string& workload,
                         std::uint64_t signature) const;

  /// Mean partition count observed under the default configuration (0 when
  /// nothing was recorded).
  double default_partitions(const std::string& workload,
                            std::uint64_t signature) const;

  /// [min, max] partition counts ever observed for the stage (any
  /// partitioner); {0, 0} when nothing was recorded. The optimizer clamps
  /// its search to this range — the Eq. 1/2 polynomial is a fit, not a law,
  /// and extrapolating a cubic far outside the profiled grid is meaningless.
  std::pair<double, double> observed_partition_range(
      const std::string& workload, std::uint64_t signature) const;

  /// Estimated stage input size for a workload input of `workload_bytes`
  /// (linear transfer fit, ratio fallback), clamped into the observed
  /// stage-input range when observations exist — the Eq. 1/2 models are
  /// only valid near where they were trained.
  double stage_input_estimate(const std::string& workload,
                              std::uint64_t signature,
                              double workload_bytes) const;

  /// [min, max] stage input bytes ever observed; {0, 0} when none.
  std::pair<double, double> observed_input_range(const std::string& workload,
                                                 std::uint64_t signature) const;

  /// Recurrence count: how many times the stage was ever observed (any
  /// partitioner). The cache planner reads this as the expected reuse of the
  /// stage's output across recurring runs of the workload (DESIGN.md §17,
  /// Lachesis-style decision reuse).
  std::size_t times_observed(const std::string& workload,
                             std::uint64_t signature) const;

  /// Memory-feasibility floor for the stage at input size `stage_input_bytes`
  /// derived from recorded OOMs: each OOM at (D_o, P_o) proves a per-task
  /// slice of D_o / P_o does not fit, so any plan must keep D / P strictly
  /// below the smallest infeasible slice. Returns 0 when no OOM was ever
  /// recorded (no constraint).
  std::size_t min_feasible_partitions(const std::string& workload,
                                      std::uint64_t signature,
                                      double stage_input_bytes) const;

  const std::vector<OomRecord>& oom_records() const noexcept {
    return oom_records_;
  }

  const std::vector<FaultRecord>& fault_records() const noexcept {
    return fault_records_;
  }

  /// The workload's stage DAG in first-seen order.
  std::vector<StageStructure> dag(const std::string& workload) const;
  std::optional<StageStructure> structure(const std::string& workload,
                                          std::uint64_t signature) const;

  std::vector<std::string> workloads() const;

  // -- maintenance ------------------------------------------------------------
  /// Drop all observations and structure for one workload (e.g. after a
  /// code change invalidated its history). Returns removed observation count.
  std::size_t prune(const std::string& workload);

  /// Merge another DB's observations and structures into this one (e.g.
  /// profiling results gathered on several machines).
  void merge(const WorkloadDb& other);

  // -- persistence ------------------------------------------------------------
  void save(const std::string& path) const;
  /// Strict mode (default) throws on an unreadable file or corrupt record.
  /// Tolerant mode degrades instead: corrupt records are skipped with a
  /// logged warning, and an unreadable file yields an empty DB — the planner
  /// then simply produces no plan rather than crashing the run.
  static WorkloadDb load(const std::string& path, double ridge_lambda = 1e-3,
                         bool tolerant = false);

 private:
  struct ModelKey {
    std::string workload;
    std::uint64_t signature;
    engine::PartitionerKind kind;
    auto operator<=>(const ModelKey&) const = default;
  };
  struct ModelEntry {
    StageModel model;
    std::size_t trained_on = 0;  ///< observation count at training time
  };

  double ridge_lambda_;
  std::vector<Observation> observations_;
  std::vector<OomRecord> oom_records_;
  std::vector<FaultRecord> fault_records_;
  std::map<std::pair<std::string, std::uint64_t>, StageStructure> structures_;
  std::map<ModelKey, ModelEntry> models_;
  std::size_t next_order_ = 0;
};

}  // namespace chopper::core
