#include "ckpt/blockfile.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/hash.h"
#include "engine/partitioner.h"

namespace chopper::ckpt {

namespace {

constexpr char kMagic[8] = {'C', 'H', 'O', 'P', 'B', 'L', 'K', '1'};
constexpr std::uint32_t kVersion = 1;

enum class BlockKind : std::uint32_t { kShuffle = 1, kCache = 2, kResult = 3 };

// -- encoding primitives -----------------------------------------------------

void put_bytes(std::string& out, const void* data, std::size_t len) {
  out.append(static_cast<const char*>(data), len);
}

void put_u32(std::string& out, std::uint32_t v) { put_bytes(out, &v, 4); }
void put_u64(std::string& out, std::uint64_t v) { put_bytes(out, &v, 8); }

template <typename T, typename Fn>
void put_vec(std::string& out, const std::vector<T>& v, Fn put_one) {
  put_u64(out, v.size());
  for (const T& x : v) put_one(out, x);
}

/// Raw memcpy fast path for trivially-copyable element vectors.
template <typename T>
void put_pod_vec(std::string& out, const std::vector<T>& v) {
  put_u64(out, v.size());
  if (!v.empty()) put_bytes(out, v.data(), v.size() * sizeof(T));
}

struct Cursor {
  const std::string& data;
  std::size_t pos = 0;
  bool ok = true;

  bool take(void* dst, std::size_t len) {
    if (!ok || pos + len > data.size()) {
      ok = false;
      return false;
    }
    std::memcpy(dst, data.data() + pos, len);
    pos += len;
    return true;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    take(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    take(&v, 8);
    return v;
  }
  template <typename T>
  std::vector<T> pod_vec() {
    const std::uint64_t n = u64();
    std::vector<T> v;
    if (!ok || n > (data.size() - pos) / sizeof(T)) {
      ok = false;
      return v;
    }
    v.resize(static_cast<std::size_t>(n));
    if (n > 0) take(v.data(), static_cast<std::size_t>(n) * sizeof(T));
    return v;
  }
};

// -- partitioner / partition codecs ------------------------------------------

void put_partitioner(std::string& out, const engine::Partitioner* p) {
  if (p == nullptr) {
    out.push_back('\0');
    return;
  }
  out.push_back('\1');
  put_u32(out, static_cast<std::uint32_t>(p->kind()));
  put_u64(out, p->num_partitions());
  if (p->kind() == engine::PartitionerKind::kRange) {
    put_pod_vec(out, static_cast<const engine::RangePartitioner*>(p)->bounds());
  }
}

std::shared_ptr<engine::Partitioner> take_partitioner(Cursor& c) {
  char present = 0;
  c.take(&present, 1);
  if (!c.ok || present == '\0') return nullptr;
  const auto kind = static_cast<engine::PartitionerKind>(c.u32());
  const auto n = static_cast<std::size_t>(c.u64());
  if (!c.ok || n == 0) {
    c.ok = false;
    return nullptr;
  }
  if (kind == engine::PartitionerKind::kRange) {
    auto bounds = c.pod_vec<std::uint64_t>();
    if (!c.ok || bounds.size() + 1 != n) {
      c.ok = false;
      return nullptr;
    }
    return std::make_shared<engine::RangePartitioner>(n, std::move(bounds));
  }
  if (kind != engine::PartitionerKind::kHash) {
    c.ok = false;
    return nullptr;
  }
  return std::make_shared<engine::HashPartitioner>(n);
}

void put_partition(std::string& out, const engine::Partition& p) {
  put_u64(out, p.bytes());
  put_pod_vec(out, p.raw_keys());
  put_pod_vec(out, p.raw_aux());
  put_pod_vec(out, p.raw_ends());
  put_pod_vec(out, p.raw_values());
}

engine::Partition take_partition(Cursor& c) {
  const std::uint64_t bytes = c.u64();
  auto keys = c.pod_vec<std::uint64_t>();
  auto aux = c.pod_vec<std::uint32_t>();
  auto ends = c.pod_vec<std::size_t>();
  auto values = c.pod_vec<double>();
  if (!c.ok || aux.size() != keys.size() || ends.size() != keys.size() ||
      (!ends.empty() && ends.back() != values.size())) {
    c.ok = false;
    return {};
  }
  return engine::Partition::from_raw(std::move(keys), std::move(aux),
                                     std::move(ends), std::move(values),
                                     bytes);
}

// -- framing ----------------------------------------------------------------

bool write_block(const std::string& path, BlockKind kind,
                 const std::string& payload, bool sync) {
  std::string file;
  file.reserve(payload.size() + 24);
  put_bytes(file, kMagic, sizeof(kMagic));
  put_u32(file, static_cast<std::uint32_t>(kind));
  put_u32(file, kVersion);
  file += payload;
  common::Checksum64 sum;
  sum.update_bytes(file.data(), file.size());
  put_u64(file, sum.digest());
  return write_file_atomic(path, file, sync);
}

std::optional<std::string> read_block(const std::string& path,
                                      BlockKind want_kind) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::string content;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);

  constexpr std::size_t kHeader = sizeof(kMagic) + 8;  // magic + kind + version
  if (content.size() < kHeader + 8) return std::nullopt;
  if (std::memcmp(content.data(), kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  std::uint64_t stored = 0;
  std::memcpy(&stored, content.data() + content.size() - 8, 8);
  common::Checksum64 sum;
  sum.update_bytes(content.data(), content.size() - 8);
  if (sum.digest() != stored) return std::nullopt;

  std::uint32_t kind = 0, version = 0;
  std::memcpy(&kind, content.data() + sizeof(kMagic), 4);
  std::memcpy(&version, content.data() + sizeof(kMagic) + 4, 4);
  if (kind != static_cast<std::uint32_t>(want_kind) || version != kVersion) {
    return std::nullopt;
  }
  return content.substr(kHeader, content.size() - kHeader - 8);
}

}  // namespace

bool write_file_atomic(const std::string& path, const std::string& content,
                       bool sync) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
            content.size();
  ok = std::fflush(f) == 0 && ok;
#if defined(__unix__) || defined(__APPLE__)
  if (ok && sync) ok = ::fsync(::fileno(f)) == 0;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::string shuffle_block_name(std::size_t job, std::size_t plan_index,
                               std::size_t consumer) {
  return "job" + std::to_string(job) + "_s" + std::to_string(plan_index) +
         "_shuf" + std::to_string(consumer) + ".blk";
}

std::string cache_block_name(std::size_t job, std::size_t plan_index,
                             std::size_t ordinal) {
  return "job" + std::to_string(job) + "_s" + std::to_string(plan_index) +
         "_cache" + std::to_string(ordinal) + ".blk";
}

std::string result_block_name(std::size_t job, std::size_t plan_index) {
  return "job" + std::to_string(job) + "_s" + std::to_string(plan_index) +
         "_result.blk";
}

bool write_shuffle_block(const std::string& path, std::size_t consumer,
                         const engine::ShuffleOutput& so, bool sync) {
  std::string p;
  put_u64(p, consumer);
  p.push_back(so.passthrough ? '\1' : '\0');
  put_u64(p, so.num_map_tasks);
  put_u64(p, so.total_bytes);
  put_partitioner(p, so.partitioner.get());
  put_pod_vec(p, so.map_node);
  put_pod_vec(p, so.lost);
  put_pod_vec(p, so.on_disk);
  put_pod_vec(p, so.row_sum);
  put_u64(p, so.buckets.size());
  put_u64(p, so.buckets.empty() ? 0 : so.buckets[0].size());
  for (const auto& row : so.buckets) {
    for (const auto& b : row) put_partition(p, b);
  }
  return write_block(path, BlockKind::kShuffle, p, sync);
}

std::optional<engine::RestoredShuffle> read_shuffle_block(
    const std::string& path) {
  auto payload = read_block(path, BlockKind::kShuffle);
  if (!payload) return std::nullopt;
  Cursor c{*payload};
  engine::RestoredShuffle rs;
  rs.consumer = static_cast<std::size_t>(c.u64());
  char pass = 0;
  c.take(&pass, 1);
  rs.so.passthrough = pass != '\0';
  rs.so.num_map_tasks = static_cast<std::size_t>(c.u64());
  rs.so.total_bytes = c.u64();
  rs.so.partitioner = take_partitioner(c);
  rs.so.map_node = c.pod_vec<std::size_t>();
  rs.so.lost = c.pod_vec<char>();
  rs.so.on_disk = c.pod_vec<char>();
  rs.so.row_sum = c.pod_vec<std::uint64_t>();
  const std::uint64_t m = c.u64();
  const std::uint64_t r = c.u64();
  if (!c.ok || m != rs.so.num_map_tasks || m != rs.so.map_node.size()) {
    return std::nullopt;
  }
  rs.so.buckets.resize(static_cast<std::size_t>(m));
  for (auto& row : rs.so.buckets) {
    row.resize(static_cast<std::size_t>(r));
    for (auto& b : row) b = take_partition(c);
  }
  if (!c.ok || c.pos != payload->size()) return std::nullopt;
  return rs;
}

bool write_cache_block(const std::string& path, std::size_t ordinal,
                       const engine::CachedDataset& cd, bool sync) {
  std::string p;
  put_u64(p, ordinal);
  put_u64(p, cd.bytes);
  put_partitioner(p, cd.partitioner.get());
  put_pod_vec(p, cd.placement);
  put_pod_vec(p, cd.available);
  put_pod_vec(p, cd.sums);
  put_vec(p, cd.partitions,
          [](std::string& out, const engine::Partition& part) {
            put_partition(out, part);
          });
  return write_block(path, BlockKind::kCache, p, sync);
}

std::optional<engine::RestoredCache> read_cache_block(
    const std::string& path) {
  auto payload = read_block(path, BlockKind::kCache);
  if (!payload) return std::nullopt;
  Cursor c{*payload};
  engine::RestoredCache rc;
  rc.ordinal = static_cast<std::size_t>(c.u64());
  rc.cd.bytes = c.u64();
  rc.cd.partitioner = take_partitioner(c);
  rc.cd.placement = c.pod_vec<std::size_t>();
  rc.cd.available = c.pod_vec<char>();
  rc.cd.sums = c.pod_vec<std::uint64_t>();
  const std::uint64_t n = c.u64();
  if (!c.ok || n != rc.cd.placement.size()) return std::nullopt;
  rc.cd.partitions.resize(static_cast<std::size_t>(n));
  for (auto& part : rc.cd.partitions) part = take_partition(c);
  if (!c.ok || c.pos != payload->size()) return std::nullopt;
  return rc;
}

bool write_result_block(const std::string& path,
                        const std::vector<engine::Partition>& parts,
                        bool sync) {
  std::string p;
  put_vec(p, parts, [](std::string& out, const engine::Partition& part) {
    put_partition(out, part);
  });
  return write_block(path, BlockKind::kResult, p, sync);
}

std::optional<std::vector<engine::Partition>> read_result_block(
    const std::string& path) {
  auto payload = read_block(path, BlockKind::kResult);
  if (!payload) return std::nullopt;
  Cursor c{*payload};
  const std::uint64_t n = c.u64();
  std::vector<engine::Partition> parts;
  if (!c.ok) return std::nullopt;
  parts.resize(static_cast<std::size_t>(n));
  for (auto& part : parts) part = take_partition(c);
  if (!c.ok || c.pos != payload->size()) return std::nullopt;
  return parts;
}

}  // namespace chopper::ckpt
