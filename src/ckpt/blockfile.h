// Checkpoint block files (DESIGN.md §16): durable copies of the payloads a
// committed stage published — shuffle outputs, cached datasets and result
// partitions — so a resumed driver can adopt the committed prefix without
// recomputing it.
//
// Format: an 8-byte magic ("CHOPBLK1"), a 32-bit block kind, a 32-bit
// version, the kind-specific payload, and a trailing Checksum64 digest over
// everything before it. Files are written via write-temp+rename so a crash
// mid-write never leaves a half-written file under the real name, and every
// read verifies the footer — a reader either gets the exact bytes the writer
// committed or a clean failure (nullopt), never silent garbage.
//
// Scope: these are restart-local durability artifacts for the machine that
// wrote them (fixed-width fields in native endianness), not a portable
// archive format.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/block_manager.h"
#include "engine/partition.h"
#include "engine/resume.h"
#include "engine/shuffle.h"

namespace chopper::ckpt {

/// Write `content` to `path` atomically: write to `path + ".tmp"`, flush
/// (fsync when `sync`), then rename over `path`. Returns false on IO error
/// (the temp file is cleaned up best-effort).
bool write_file_atomic(const std::string& path, const std::string& content,
                       bool sync);

// -- block file names (relative to the checkpoint directory) ----------------
std::string shuffle_block_name(std::size_t job, std::size_t plan_index,
                               std::size_t consumer);
std::string cache_block_name(std::size_t job, std::size_t plan_index,
                             std::size_t ordinal);
std::string result_block_name(std::size_t job, std::size_t plan_index);

// -- writers (atomic; return false on IO error) -----------------------------
bool write_shuffle_block(const std::string& path, std::size_t consumer,
                         const engine::ShuffleOutput& so, bool sync);
bool write_cache_block(const std::string& path, std::size_t ordinal,
                       const engine::CachedDataset& cd, bool sync);
bool write_result_block(const std::string& path,
                        const std::vector<engine::Partition>& parts,
                        bool sync);

// -- readers (nullopt on missing file, bad magic/kind/version, truncation,
//    or checksum mismatch) --------------------------------------------------
std::optional<engine::RestoredShuffle> read_shuffle_block(
    const std::string& path);
std::optional<engine::RestoredCache> read_cache_block(const std::string& path);
std::optional<std::vector<engine::Partition>> read_result_block(
    const std::string& path);

}  // namespace chopper::ckpt
