#include "ckpt/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "ckpt/blockfile.h"
#include "common/hash.h"
#include "obs/jsonl.h"

namespace chopper::ckpt {

namespace fs = std::filesystem;

namespace {

/// Fallback torn fragment for crash points where no event line is in hand
/// (crash just after a barrier flush): a prefix of a plausible next record.
constexpr const char* kTornFragment = "{\"k\":\"task\",\"job\":1,\"s";

bool is_barrier(const obs::Event& e) noexcept {
  return e.kind == obs::EventKind::kStageEnd ||
         e.kind == obs::EventKind::kJobFinish;
}

}  // namespace

std::string wal_path(const std::string& dir, std::size_t epoch) {
  return dir + "/wal-" + std::to_string(epoch) + ".jsonl";
}

std::optional<std::size_t> latest_wal_epoch(const std::string& dir) {
  std::error_code ec;
  std::optional<std::size_t> best;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= 10 || name.compare(0, 4, "wal-") != 0 ||
        name.compare(name.size() - 6, 6, ".jsonl") != 0) {
      continue;
    }
    const std::string digits = name.substr(4, name.size() - 10);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const std::size_t epoch = std::stoull(digits);
    if (!best || epoch > *best) best = epoch;
  }
  return best;
}

CheckpointWriter::CheckpointWriter(std::string dir, CheckpointOptions opts)
    : dir_(std::move(dir)), opts_(opts) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("cannot create checkpoint directory: " + dir_);
  }
  if (const auto latest = latest_wal_epoch(dir_)) epoch_ = *latest + 1;
  wal_path_ = wal_path(dir_, epoch_);
  wal_ = std::fopen(wal_path_.c_str(), "wb");
  if (!wal_) {
    throw std::runtime_error("cannot open checkpoint WAL: " + wal_path_);
  }
  const std::string header = obs::jsonl_header() + "\n";
  std::fwrite(header.data(), 1, header.size(), wal_);
  written_ = header.size();
  flush_locked();  // the header is the durable baseline of the epoch
}

CheckpointWriter::~CheckpointWriter() {
  std::lock_guard lock(mu_);
  if (wal_) {
    if (!frozen_) flush_locked();
    std::fclose(wal_);
    wal_ = nullptr;
  }
}

void CheckpointWriter::flush_locked() {
  if (!wal_) return;
  std::fflush(wal_);
#if defined(__unix__) || defined(__APPLE__)
  if (opts_.sync) ::fsync(::fileno(wal_));
#endif
  durable_size_ = written_;
}

void CheckpointWriter::crash_locked(const std::string* torn_line) {
  // Model process death: everything buffered since the last barrier flush is
  // lost. Flush the stdio buffer so the file length is known, then cut the
  // file back to the durable watermark and (optionally) leave a torn partial
  // line — the worst on-disk state the durability contract allows.
  frozen_ = true;
  if (wal_) {
    std::fflush(wal_);
    std::fclose(wal_);
    wal_ = nullptr;
#if defined(__unix__) || defined(__APPLE__)
    ::truncate(wal_path_.c_str(),
               static_cast<::off_t>(durable_size_));
#endif
    if (opts_.crash.torn_tail) {
      if (std::FILE* f = std::fopen(wal_path_.c_str(), "ab")) {
        std::string frag = torn_line ? *torn_line : std::string(kTornFragment);
        while (!frag.empty() && frag.back() == '\n') frag.pop_back();
        // Cut mid-token so the fragment can never parse as a full record.
        frag.resize(std::max<std::size_t>(1, frag.size() * 2 / 3));
        std::fwrite(frag.data(), 1, frag.size(), f);
        std::fclose(f);
      }
    }
  }
  throw SimulatedCrash("simulated driver crash (checkpoint dir: " + dir_ +
                       ", wal epoch " + std::to_string(epoch_) + ")");
}

void CheckpointWriter::append(const obs::Event& e) {
  std::lock_guard lock(mu_);
  if (frozen_ || wal_ == nullptr) return;

  std::string line;
  obs::append_jsonl(e, line);

  const CrashSchedule& crash = opts_.crash;
  // Event-seq crash point: the Nth delivered event never reaches the log.
  if (crash.at_event_seq >= 0 &&
      appended_ == static_cast<std::uint64_t>(crash.at_event_seq)) {
    crash_locked(&line);
  }
  const bool barrier = is_barrier(e);
  if (barrier && crash.at_stage_barrier >= 0 && !crash.after_barrier_flush &&
      barriers_ == static_cast<std::uint64_t>(crash.at_stage_barrier)) {
    // The barrier line itself is lost: the stage stays uncommitted.
    crash_locked(&line);
  }

  std::fwrite(line.data(), 1, line.size(), wal_);
  written_ += line.size();
  ++appended_;
  if (!barrier) return;

  // Durability barrier: the stage/job boundary line (and every line that
  // preceded it) becomes durable before anything else happens.
  flush_locked();
  if (e.kind == obs::EventKind::kJobFinish) {
    ++jobs_finished_;
    write_kv_snapshot(
        dir_ + "/manifest.kv",
        {{"wal_epoch", std::to_string(epoch_)},
         {"events", std::to_string(appended_ + 1)},
         {"barriers", std::to_string(barriers_ + 1)},
         {"jobs_finished", std::to_string(jobs_finished_)},
         {"blocks", std::to_string(blocks_)}},
        opts_.sync);
  }
  const std::uint64_t this_barrier = barriers_++;
  if (crash.at_stage_barrier >= 0 && crash.after_barrier_flush &&
      this_barrier == static_cast<std::uint64_t>(crash.at_stage_barrier)) {
    // The stage IS committed; the process dies immediately after.
    crash_locked(nullptr);
  }
}

void CheckpointWriter::flush() {
  std::lock_guard lock(mu_);
  if (frozen_) return;
  flush_locked();
}

void CheckpointWriter::on_shuffle_committed(std::size_t job,
                                            std::size_t plan_index,
                                            std::size_t consumer,
                                            const engine::ShuffleOutput& so) {
  std::lock_guard lock(mu_);
  if (frozen_) return;
  // Best-effort by design: if the block cannot be written, the WAL commit
  // still proceeds and a later resume simply falls back to full re-execution
  // (the read side validates checksums), trading recovery speed, never
  // correctness.
  const std::string path =
      dir_ + "/" + shuffle_block_name(job, plan_index, consumer);
  if (write_shuffle_block(path, consumer, so, opts_.sync)) {
    ++blocks_;
    block_bytes_ += so.total_bytes;
  }
}

void CheckpointWriter::on_cache_committed(std::size_t job,
                                          std::size_t plan_index,
                                          std::size_t ordinal,
                                          const engine::CachedDataset& cd) {
  std::lock_guard lock(mu_);
  if (frozen_) return;
  const std::string path =
      dir_ + "/" + cache_block_name(job, plan_index, ordinal);
  if (write_cache_block(path, ordinal, cd, opts_.sync)) {
    ++blocks_;
    block_bytes_ += cd.bytes;
  }
}

void CheckpointWriter::on_result_committed(
    std::size_t job, std::size_t plan_index,
    const std::vector<engine::Partition>& parts) {
  std::lock_guard lock(mu_);
  if (frozen_) return;
  const std::string path = dir_ + "/" + result_block_name(job, plan_index);
  if (write_result_block(path, parts, opts_.sync)) {
    ++blocks_;
    for (const auto& part : parts) block_bytes_ += part.bytes();
  }
}

bool CheckpointWriter::crashed() const {
  std::lock_guard lock(mu_);
  return frozen_;
}

std::uint64_t CheckpointWriter::events_appended() const {
  std::lock_guard lock(mu_);
  return appended_;
}

std::uint64_t CheckpointWriter::barriers_seen() const {
  std::lock_guard lock(mu_);
  return barriers_;
}

std::uint64_t CheckpointWriter::blocks_written() const {
  std::lock_guard lock(mu_);
  return blocks_;
}

std::uint64_t CheckpointWriter::block_bytes_written() const {
  std::lock_guard lock(mu_);
  return block_bytes_;
}

// -- key/value snapshots -----------------------------------------------------

bool write_kv_snapshot(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& kv, bool sync) {
  std::string body = "#chopper-kv 1\n";
  for (const auto& [k, v] : kv) body += k + "=" + v + "\n";
  common::Checksum64 sum;
  sum.update_bytes(body.data(), body.size());
  char hex[32];
  std::snprintf(hex, sizeof(hex), "#sum=%016llx\n",
                static_cast<unsigned long long>(sum.digest()));
  return write_file_atomic(path, body + hex, sync);
}

std::optional<std::vector<std::pair<std::string, std::string>>>
read_kv_snapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);

  const std::size_t sum_at = content.rfind("#sum=");
  if (sum_at == std::string::npos) return std::nullopt;
  const std::string sum_line = content.substr(sum_at);
  unsigned long long stored = 0;
  if (std::sscanf(sum_line.c_str(), "#sum=%llx", &stored) != 1) {
    return std::nullopt;
  }
  common::Checksum64 sum;
  sum.update_bytes(content.data(), sum_at);
  if (sum.digest() != stored) return std::nullopt;

  std::vector<std::pair<std::string, std::string>> kv;
  std::size_t pos = 0;
  while (pos < sum_at) {
    std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos || eol > sum_at) eol = sum_at;
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return std::nullopt;
    kv.emplace_back(line.substr(0, eq), line.substr(eq + 1));
  }
  return kv;
}

}  // namespace chopper::ckpt
