// Crash-consistent checkpointing (DESIGN.md §16).
//
// CheckpointWriter turns the structured event log into a write-ahead log:
// attached to an EventLog as a TraceSink it appends every event to
// `wal-<epoch>.jsonl` in the checkpoint directory, flushing (optionally
// fsyncing) at stage/job barriers so the commit rule is simple and crash-
// safe: *a stage is committed iff its complete kStageEnd line is durable*.
// Attached to the Engine as a CheckpointHook it persists each committed
// stage's payloads (shuffle outputs, cached blocks, result partitions) as
// checksummed block files — always BEFORE the stage's kStageEnd reaches the
// WAL, so a committed line never refers to data that is not on disk.
//
// Every writer opens a fresh WAL epoch (`wal-0.jsonl`, `wal-1.jsonl`, ...).
// A resumed run re-emits the adopted history into its own epoch, so the
// newest segment is always self-contained and a second crash resumes from
// it alone (double-resume idempotence).
//
// CrashSchedule makes driver death deterministic and testable: the writer
// "kills" the process at a chosen event sequence number or stage barrier by
// discarding everything not yet durable (modeling lost page-cache/stdio
// buffers), optionally leaving a torn partial line — exactly the worst case
// the durability contract allows — then freezing and throwing
// SimulatedCrash, which unwinds through the engine like a fatal signal.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "engine/resume.h"
#include "obs/event_log.h"

namespace chopper::ckpt {

/// Deterministic driver-death injection. Counts are 0-based over this
/// writer's own append stream (not global event seqs, which a resumed run
/// restarts).
struct CrashSchedule {
  /// Crash when the Nth event reaches the writer: the event (and everything
  /// buffered since the last barrier) never becomes durable. -1: disabled.
  std::int64_t at_event_seq = -1;
  /// Crash at the Nth barrier event (kStageEnd / kJobFinish). -1: disabled.
  std::int64_t at_stage_barrier = -1;
  /// Barrier crashes only: true crashes just AFTER the barrier line became
  /// durable (the stage commits; resume continues past it), false just
  /// before (the stage is uncommitted; resume re-executes it).
  bool after_barrier_flush = false;
  /// Leave a torn partial line at the cut point (the normal tail of a log
  /// whose writer died mid-append).
  bool torn_tail = true;

  bool armed() const noexcept {
    return at_event_seq >= 0 || at_stage_barrier >= 0;
  }
};

/// Thrown exactly once at the scheduled crash point. Unwinds through the
/// engine's abort path (which releases job state and re-throws); after it,
/// the writer is frozen — every later append or hook call is a no-op, like
/// a dead process.
class SimulatedCrash : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct CheckpointOptions {
  /// fsync the WAL at barriers and block files at rename (host-death
  /// durability; without it the guarantee covers process death).
  bool sync = false;
  CrashSchedule crash;
};

class CheckpointWriter : public obs::TraceSink, public engine::CheckpointHook {
 public:
  /// Opens a new WAL epoch in `dir` (created if missing). Throws
  /// std::runtime_error when the directory or WAL cannot be created.
  explicit CheckpointWriter(std::string dir, CheckpointOptions opts = {});
  ~CheckpointWriter() override;

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  // -- TraceSink (the WAL) --------------------------------------------------
  void append(const obs::Event& e) override;
  void flush() override;

  // -- engine::CheckpointHook (block files) ---------------------------------
  void on_shuffle_committed(std::size_t job, std::size_t plan_index,
                            std::size_t consumer,
                            const engine::ShuffleOutput& so) override;
  void on_cache_committed(std::size_t job, std::size_t plan_index,
                          std::size_t ordinal,
                          const engine::CachedDataset& cd) override;
  void on_result_committed(
      std::size_t job, std::size_t plan_index,
      const std::vector<engine::Partition>& parts) override;

  const std::string& dir() const noexcept { return dir_; }
  std::size_t wal_epoch() const noexcept { return epoch_; }
  bool crashed() const;
  std::uint64_t events_appended() const;
  /// Barrier events (kStageEnd / kJobFinish) seen — the crash-point
  /// enumeration space for CrashSchedule::at_stage_barrier.
  std::uint64_t barriers_seen() const;
  std::uint64_t blocks_written() const;
  std::uint64_t block_bytes_written() const;

 private:
  void flush_locked();                       // caller holds mu_
  void crash_locked(const std::string* torn_line);  // throws SimulatedCrash

  mutable std::mutex mu_;
  std::string dir_;
  CheckpointOptions opts_;
  std::string wal_path_;
  std::FILE* wal_ = nullptr;
  std::size_t epoch_ = 0;
  std::uint64_t written_ = 0;       ///< bytes handed to the WAL stream
  std::uint64_t durable_size_ = 0;  ///< bytes known durable (last flush)
  std::uint64_t appended_ = 0;      ///< events appended by this writer
  std::uint64_t barriers_ = 0;      ///< barrier events seen
  std::uint64_t jobs_finished_ = 0;
  std::uint64_t blocks_ = 0;
  std::uint64_t block_bytes_ = 0;
  bool frozen_ = false;
};

/// Epoch of the newest WAL segment in `dir` (nullopt: none — not a
/// checkpoint directory).
std::optional<std::size_t> latest_wal_epoch(const std::string& dir);
/// Path of WAL segment `epoch` inside `dir`.
std::string wal_path(const std::string& dir, std::size_t epoch);

// -- key/value snapshots -----------------------------------------------------
// Small text manifests ("key=value" lines + a trailing "#sum=<hex>" checksum
// line) written atomically. The CheckpointWriter maintains `manifest.kv` at
// every job boundary; read_kv_snapshot returns nullopt on a missing file or
// a checksum mismatch.
bool write_kv_snapshot(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& kv, bool sync);
std::optional<std::vector<std::pair<std::string, std::string>>>
read_kv_snapshot(const std::string& path);

}  // namespace chopper::ckpt
