#include "ckpt/resume.h"

#include <filesystem>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "ckpt/blockfile.h"
#include "ckpt/checkpoint.h"
#include "obs/history.h"

namespace chopper::ckpt {

namespace {

/// Per-stage accumulation while scanning the WAL in seq order.
struct StageBuild {
  bool committed = false;
  obs::Event end;  ///< the kStageEnd record
  std::vector<engine::TaskMetrics> tasks;
  /// Consumers whose shuffle this stage published, in kShuffleWrite (==
  /// commit) order — the order adopt_restored validates against the plan.
  std::vector<std::size_t> shuffle_consumers;
  std::size_t cache_commits = 0;  ///< kBlockStore count (== ordinals 0..n-1)
};

struct JobBuild {
  std::string name;
  bool finished = false;
  std::uint64_t events = 0;
  std::map<std::size_t, StageBuild> stages;  ///< keyed by plan index
  /// Global stage id -> plan index (kStageStart precedes every other event
  /// of its stage on the emitting thread).
  std::unordered_map<std::uint64_t, std::size_t> stage_to_plan;
  /// Task spans buffered per global stage id until the kStageEnd arrives.
  std::unordered_map<std::uint64_t, std::vector<engine::TaskMetrics>> spans;
};

}  // namespace

ResumePlan build_resume_plan(const std::string& dir) {
  const auto epoch = latest_wal_epoch(dir);
  if (!epoch) {
    throw std::runtime_error("not a checkpoint directory (no WAL segment): " +
                             dir);
  }
  ResumePlan plan;
  plan.wal_epoch = *epoch;
  plan.wal = wal_path(dir, *epoch);
  const obs::HistoryReader hr = obs::HistoryReader::load(plan.wal);
  plan.events = hr.events().size();
  plan.torn_tail_lines = hr.torn_tail_lines();
  plan.skipped_lines = hr.skipped_lines();

  std::map<std::size_t, JobBuild> jobs;
  for (const obs::Event& e : hr.events()) {
    const auto jid = static_cast<std::size_t>(e.job);
    switch (e.kind) {
      case obs::EventKind::kJobSubmit:
        jobs[jid].name = e.name;
        ++jobs[jid].events;
        break;
      case obs::EventKind::kStageStart: {
        JobBuild& jb = jobs[jid];
        jb.stage_to_plan[e.stage] = static_cast<std::size_t>(e.plan_index);
        ++jb.events;
        break;
      }
      case obs::EventKind::kTaskSpan: {
        JobBuild& jb = jobs[jid];
        jb.spans[e.stage].push_back(obs::task_from_event(e));
        ++jb.events;
        break;
      }
      case obs::EventKind::kShuffleWrite: {
        JobBuild& jb = jobs[jid];
        const auto it = jb.stage_to_plan.find(e.stage);
        if (it != jb.stage_to_plan.end()) {
          // e.plan_index of a kShuffleWrite is the CONSUMING stage.
          jb.stages[it->second].shuffle_consumers.push_back(
              static_cast<std::size_t>(e.plan_index));
        }
        ++jb.events;
        break;
      }
      case obs::EventKind::kBlockStore: {
        JobBuild& jb = jobs[jid];
        const auto it = jb.stage_to_plan.find(e.stage);
        if (it != jb.stage_to_plan.end()) ++jb.stages[it->second].cache_commits;
        ++jb.events;
        break;
      }
      case obs::EventKind::kStageEnd: {
        JobBuild& jb = jobs[jid];
        StageBuild& sb = jb.stages[static_cast<std::size_t>(e.plan_index)];
        sb.committed = true;
        sb.end = e;
        if (auto it = jb.spans.find(e.stage); it != jb.spans.end()) {
          sb.tasks = std::move(it->second);
          jb.spans.erase(it);
        }
        ++jb.events;
        break;
      }
      case obs::EventKind::kJobFinish:
        jobs[jid].finished = true;
        ++jobs[jid].events;
        break;
      default:
        break;
    }
  }

  if (!jobs.empty()) plan.ledger.jobs.resize(jobs.rbegin()->first + 1);
  for (auto& [jid, jb] : jobs) {
    engine::JobResume& jr = plan.ledger.jobs[jid];
    jr.replayed_events = jb.events;

    // Committed prefix: contiguous plan indices 0..k-1 with a durable
    // kStageEnd. A gap (e.g. events lost past the last barrier flush) ends
    // the prefix — everything after re-executes.
    std::size_t k = 0;
    while (true) {
      const auto it = jb.stages.find(k);
      if (it == jb.stages.end() || !it->second.committed) break;
      ++k;
    }

    for (std::size_t s = 0; s < k; ++s) {
      StageBuild& sb = jb.stages[s];
      engine::StageRestore sr;
      sr.row = obs::stage_from_event(sb.end, std::move(sb.tasks));
      bool ok = true;
      for (const std::size_t consumer : sb.shuffle_consumers) {
        auto rs = read_shuffle_block(dir + "/" +
                                     shuffle_block_name(jid, s, consumer));
        if (!rs || rs->consumer != consumer) {
          ok = false;
          break;
        }
        jr.restored_bytes += rs->so.total_bytes;
        sr.shuffles.push_back(std::move(*rs));
      }
      for (std::size_t ord = 0; ok && ord < sb.cache_commits; ++ord) {
        auto rc = read_cache_block(dir + "/" + cache_block_name(jid, s, ord));
        if (!rc || rc->ordinal != ord) {
          ok = false;
          break;
        }
        jr.restored_bytes += rc->cd.bytes;
        sr.caches.push_back(std::move(*rc));
      }
      if (ok) {
        const std::string rpath = dir + "/" + result_block_name(jid, s);
        std::error_code ec;
        if (std::filesystem::exists(rpath, ec)) {
          auto parts = read_result_block(rpath);
          if (!parts) {
            ok = false;
          } else {
            sr.has_result = true;
            for (const auto& part : *parts) jr.restored_bytes += part.bytes();
            sr.result_parts = std::move(*parts);
          }
        }
      }
      if (!ok) {
        // A committed line whose payload cannot be restored: fall back to
        // full deterministic re-execution of the whole job (bit-identical
        // by the determinism contract), never a partial adoption.
        jr.full_rerun = true;
        jr.stages.clear();
        jr.restored_bytes = 0;
        break;
      }
      jr.stages.push_back(std::move(sr));
    }

    plan.restored_bytes += jr.restored_bytes;
    plan.committed_stages += jr.stages.size();
    if (jb.finished) ++plan.finished_jobs;
    plan.jobs.push_back(JobRecovery{jid, jb.name, jr.stages.size(),
                                    jb.finished, jr.full_rerun});
  }
  return plan;
}

}  // namespace chopper::ckpt
