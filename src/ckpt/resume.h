// Resume planning (DESIGN.md §16): decode a checkpoint directory's newest
// WAL segment back into an engine::ResumeLedger.
//
// The planner applies the commit rule (a stage is committed iff its complete
// kStageEnd line is durable): for every job in the log it reconstructs the
// contiguous committed-stage prefix — kStageEnd rows plus their buffered
// kTaskSpan events, bit-exact via obs::stage_from_event — and loads the
// stage's block files (shuffles in kShuffleWrite order, caches in kBlockStore
// order, the result file when present). A torn final line is the normal
// post-crash state and is tolerated; any missing or checksum-failing block
// file flips that job to `full_rerun`, which the engine executes
// deterministically for a bit-identical outcome. The planner never guesses:
// a job either adopts a provably clean prefix or re-runs from scratch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/resume.h"

namespace chopper::ckpt {

/// One job's recovery summary, for operator-facing output.
struct JobRecovery {
  std::size_t job_id = 0;
  std::string name;
  std::size_t committed_stages = 0;  ///< adopted prefix length
  bool finished = false;             ///< kJobFinish durable: pure replay
  bool full_rerun = false;           ///< block loss: deterministic re-execution
};

struct ResumePlan {
  engine::ResumeLedger ledger;
  std::string wal;                ///< path of the segment that was decoded
  std::size_t wal_epoch = 0;
  std::size_t events = 0;         ///< events decoded from the WAL
  std::size_t torn_tail_lines = 0;
  std::size_t skipped_lines = 0;
  std::size_t committed_stages = 0;  ///< across all jobs
  std::size_t finished_jobs = 0;
  std::uint64_t restored_bytes = 0;  ///< block payload bytes loaded
  std::vector<JobRecovery> jobs;
};

/// Decode checkpoint directory `dir`. Throws std::runtime_error when the
/// directory holds no WAL segment (not a checkpoint directory) or the
/// newest segment is unreadable.
ResumePlan build_resume_plan(const std::string& dir);

}  // namespace chopper::ckpt
