// Hashing primitives shared across the engine.
//
// The engine needs a fast, well-mixed 64-bit hash for (a) the hash
// partitioner, (b) stage signatures, and (c) deterministic per-key RNG
// streams. We use splitmix64-style finalizers and an FNV-1a variant for
// byte spans; both are deterministic across platforms, which keeps every
// experiment reproducible.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

namespace chopper::common {

/// Final mixing function of splitmix64. Bijective on 64-bit ints, so it never
/// introduces collisions on distinct integer keys — useful for partitioning.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two 64-bit hashes (boost::hash_combine style, widened to 64 bits).
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) noexcept {
  return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// FNV-1a over a byte span, finalized through mix64 for better avalanche.
inline std::uint64_t hash_bytes(std::span<const std::byte> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

inline std::uint64_t hash_string(std::string_view s) noexcept {
  return hash_bytes(std::as_bytes(std::span(s.data(), s.size())));
}

}  // namespace chopper::common
