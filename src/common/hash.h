// Hashing primitives shared across the engine.
//
// The engine needs a fast, well-mixed 64-bit hash for (a) the hash
// partitioner, (b) stage signatures, and (c) deterministic per-key RNG
// streams. We use splitmix64-style finalizers and an FNV-1a variant for
// byte spans; both are deterministic across platforms, which keeps every
// experiment reproducible.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

namespace chopper::common {

/// Final mixing function of splitmix64. Bijective on 64-bit ints, so it never
/// introduces collisions on distinct integer keys — useful for partitioning.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two 64-bit hashes (boost::hash_combine style, widened to 64 bits).
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) noexcept {
  return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// FNV-1a over a byte span, finalized through mix64 for better avalanche.
inline std::uint64_t hash_bytes(std::span<const std::byte> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

inline std::uint64_t hash_string(std::string_view s) noexcept {
  return hash_bytes(std::as_bytes(std::span(s.data(), s.size())));
}

/// Streaming 64-bit block checksum in the xxhash mold: bulk input is mixed
/// one 64-bit lane at a time (memcpy'd, so alignment never matters) with the
/// splitmix64 avalanche between lanes, and the tail is padded into a final
/// lane tagged with the length so "aa" + "a" never collides with "a" + "aa".
/// Used for shuffle-row and cached-block integrity checks: fast enough to
/// run over every columnar arena at publish time, deterministic across
/// platforms so checksums can be compared between runs.
class Checksum64 {
 public:
  Checksum64() = default;
  explicit Checksum64(std::uint64_t seed) : h_(mix64(seed)) {}

  void update_u64(std::uint64_t v) noexcept { h_ = hash_combine(h_, v); }

  void update_bytes(const void* data, std::size_t len) noexcept {
    const char* p = static_cast<const char*>(data);
    std::uint64_t lane;
    while (len >= sizeof(lane)) {
      std::memcpy(&lane, p, sizeof(lane));
      h_ = hash_combine(h_, lane);
      p += sizeof(lane);
      len -= sizeof(lane);
    }
    if (len > 0) {
      lane = 0;
      std::memcpy(&lane, p, len);
      h_ = hash_combine(h_, lane);
    }
    h_ = hash_combine(h_, total_ += len);
  }

  template <typename T>
  void update_array(const T* data, std::size_t count) noexcept {
    update_bytes(data, count * sizeof(T));
  }

  std::uint64_t digest() const noexcept { return mix64(h_); }

 private:
  std::uint64_t h_ = 0x43686f7070657221ULL;  // "Chopper!"
  std::uint64_t total_ = 0;
};

}  // namespace chopper::common
