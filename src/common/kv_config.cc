#include "common/kv_config.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/logging.h"

namespace chopper::common {

namespace {
std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}
}  // namespace

void KvConfig::set(const std::string& key, std::string value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(key, std::move(value));
}

void KvConfig::set_int(const std::string& key, std::int64_t value) {
  set(key, std::to_string(value));
}

void KvConfig::set_double(const std::string& key, double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  set(key, os.str());
}

std::optional<std::string> KvConfig::get(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::optional<std::int64_t> KvConfig::get_int(const std::string& key) const {
  const auto v = get(key);
  if (!v) return std::nullopt;
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc{} || ptr != v->data() + v->size()) return std::nullopt;
  return out;
}

std::optional<double> KvConfig::get_double(const std::string& key) const {
  const auto v = get(key);
  if (!v) return std::nullopt;
  try {
    std::size_t pos = 0;
    const double out = std::stod(*v, &pos);
    if (pos != v->size()) return std::nullopt;
    return out;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

bool KvConfig::contains(const std::string& key) const {
  return get(key).has_value();
}

bool KvConfig::erase(const std::string& key) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const auto& kv) { return kv.first == key; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

std::vector<std::string> KvConfig::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : entries_) {
    if (k.rfind(prefix, 0) == 0) out.push_back(k);
  }
  return out;
}

std::string KvConfig::to_string() const {
  std::ostringstream os;
  for (const auto& [k, v] : entries_) os << k << " = " << v << "\n";
  return os.str();
}

KvConfig KvConfig::parse(const std::string& text, bool tolerant) {
  KvConfig cfg;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    const auto eq = t.find('=');
    if (eq == std::string::npos) {
      if (tolerant) {
        LOG_WARN << "KvConfig: skipping malformed line " << line_no << ": "
                 << t;
        continue;
      }
      throw std::runtime_error("KvConfig: malformed line " +
                               std::to_string(line_no) + ": " + t);
    }
    cfg.set(trim(t.substr(0, eq)), trim(t.substr(eq + 1)));
  }
  return cfg;
}

void KvConfig::save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("KvConfig: cannot write " + path);
  os << to_string();
}

KvConfig KvConfig::load(const std::string& path, bool tolerant) {
  std::ifstream is(path);
  if (!is) {
    if (tolerant) {
      LOG_WARN << "KvConfig: cannot read " << path
               << "; continuing with an empty config";
      return KvConfig{};
    }
    throw std::runtime_error("KvConfig: cannot read " + path);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse(buf.str(), tolerant);
}

}  // namespace chopper::common
