// Key/value configuration files.
//
// CHOPPER communicates the per-stage partition plan to the (modified)
// DAGScheduler through a workload-specific configuration file (paper Fig. 6):
// one tuple per stage signature, carrying the partitioner kind and the
// partition count. This module provides the generic ordered string->string
// store plus load/save in a simple `key = value` format with `#` comments.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace chopper::common {

class KvConfig {
 public:
  KvConfig() = default;

  /// Sets (or overwrites) a key. Insertion order is preserved for new keys.
  void set(const std::string& key, std::string value);
  void set_int(const std::string& key, std::int64_t value);
  void set_double(const std::string& key, double value);

  std::optional<std::string> get(const std::string& key) const;
  std::optional<std::int64_t> get_int(const std::string& key) const;
  std::optional<double> get_double(const std::string& key) const;

  bool contains(const std::string& key) const;
  bool erase(const std::string& key);
  std::size_t size() const noexcept { return entries_.size(); }

  /// All entries in insertion order.
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  /// Keys sharing a prefix, in insertion order.
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  /// Serialize to `key = value` lines.
  std::string to_string() const;

  /// Parse from text. Blank lines and `#...` comments are skipped.
  /// Strict mode (default) throws std::runtime_error on malformed lines
  /// (missing '='); tolerant mode logs a warning and skips them instead, so
  /// one corrupt line cannot take down a whole run.
  static KvConfig parse(const std::string& text, bool tolerant = false);

  /// File round-trip. load throws std::runtime_error if unreadable (strict)
  /// or returns an empty config with a logged warning (tolerant).
  void save(const std::string& path) const;
  static KvConfig load(const std::string& path, bool tolerant = false);

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace chopper::common
