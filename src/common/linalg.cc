#include "common/linalg.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace chopper::common {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::scaled(double s) const {
  Matrix out = *this;
  for (auto& v : out.data_) v *= s;
  return out;
}

std::vector<double> cholesky_solve(const Matrix& a, std::span<const double> b) {
  const std::size_t n = a.rows();
  assert(a.cols() == n);
  assert(b.size() == n);

  // L such that A = L L^T, stored densely.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          throw std::runtime_error("cholesky_solve: matrix not positive definite");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }

  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

std::vector<double> ridge_least_squares(const Matrix& x,
                                        std::span<const double> y,
                                        double lambda) {
  const std::size_t n = x.rows();
  const std::size_t k = x.cols();
  assert(y.size() == n);
  assert(lambda > 0.0);

  // Normal equations: (X^T X + lambda I) w = X^T y.
  Matrix xtx(k, k);
  std::vector<double> xty(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = x.row(i);
    for (std::size_t a = 0; a < k; ++a) {
      xty[a] += row[a] * y[i];
      for (std::size_t b = a; b < k; ++b) xtx(a, b) += row[a] * row[b];
    }
  }
  for (std::size_t a = 0; a < k; ++a) {
    xtx(a, a) += lambda;
    for (std::size_t b = 0; b < a; ++b) xtx(a, b) = xtx(b, a);
  }
  return cholesky_solve(xtx, xty);
}

EigenResult jacobi_eigen(Matrix a, double tol, int max_sweeps) {
  const std::size_t n = a.rows();
  assert(a.cols() == n);
  Matrix v = Matrix::identity(n);

  auto off_norm = [&]() {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) s += a(i, j) * a(i, j);
    }
    return std::sqrt(2.0 * s);
  };

  for (int sweep = 0; sweep < max_sweeps && off_norm() > tol; ++sweep) {
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return a(i, i) > a(j, j); });

  EigenResult res;
  res.values.resize(n);
  res.vectors = Matrix(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    res.values[c] = a(order[c], order[c]);
    for (std::size_t r = 0; r < n; ++r) res.vectors(r, c) = v(r, order[c]);
  }
  return res;
}

}  // namespace chopper::common
