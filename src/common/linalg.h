// Small dense linear algebra: just enough for (a) CHOPPER's ridge
// least-squares model fitting (Eq. 1/2 of the paper) and (b) the PCA
// workload (covariance matrices + symmetric eigen-decomposition).
//
// Matrices are row-major, value-semantic, and deliberately unoptimized —
// model fitting is an 8x8 solve and PCA covariances are tens of columns,
// so clarity beats blocking here.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace chopper::common {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix scaled(double s) const;

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b for symmetric positive-definite A via Cholesky.
/// Throws std::runtime_error if A is not positive definite.
std::vector<double> cholesky_solve(const Matrix& a, std::span<const double> b);

/// Ridge-regularized least squares: minimizes ||X w - y||^2 + lambda ||w||^2.
/// X is n x k (n samples, k features), y has n entries. Returns k weights.
/// lambda > 0 keeps the normal equations well-conditioned even when the
/// polynomial basis features are correlated.
std::vector<double> ridge_least_squares(const Matrix& x,
                                        std::span<const double> y,
                                        double lambda);

struct EigenResult {
  std::vector<double> values;  ///< descending order
  Matrix vectors;              ///< column i is the eigenvector for values[i]
};

/// Symmetric eigen-decomposition via cyclic Jacobi rotations.
/// `a` must be symmetric; tolerance is on the off-diagonal Frobenius norm.
EigenResult jacobi_eigen(Matrix a, double tol = 1e-12, int max_sweeps = 64);

}  // namespace chopper::common
