#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace chopper::common {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

std::optional<LogLevel> parse_log_level(const std::string& s) noexcept {
  std::string v;
  v.reserve(s.size());
  for (const char c : s) {
    v.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn" || v == "warning") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off" || v == "none") return LogLevel::kOff;
  return std::nullopt;
}

void set_log_level_default(LogLevel fallback) noexcept {
  const char* env = std::getenv("CHOPPER_LOG_LEVEL");
  if (env != nullptr && *env != '\0') {
    if (const auto lvl = parse_log_level(env)) {
      set_log_level(*lvl);
      return;
    }
    std::fprintf(stderr,
                 "[WARN ] ignoring invalid CHOPPER_LOG_LEVEL='%s' "
                 "(debug|info|warn|error|off)\n",
                 env);
  }
  set_log_level(fallback);
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard lock(g_mu);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace chopper::common
