// Minimal leveled logger. Thread-safe, writes to stderr.
// Default level is kWarn so library code stays quiet in tests and benches;
// examples raise it to kInfo to narrate what the system is doing.
#pragma once

#include <sstream>
#include <string>

namespace chopper::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace detail {
void log_line(LogLevel level, const std::string& msg);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace chopper::common

#define CHOPPER_LOG(level)                                                  \
  if (static_cast<int>(level) < static_cast<int>(::chopper::common::log_level())) \
    ;                                                                       \
  else                                                                      \
    ::chopper::common::detail::LogStream(level)

#define LOG_DEBUG CHOPPER_LOG(::chopper::common::LogLevel::kDebug)
#define LOG_INFO CHOPPER_LOG(::chopper::common::LogLevel::kInfo)
#define LOG_WARN CHOPPER_LOG(::chopper::common::LogLevel::kWarn)
#define LOG_ERROR CHOPPER_LOG(::chopper::common::LogLevel::kError)
