// Minimal leveled logger. Thread-safe, writes to stderr.
// Default level is kWarn so library code stays quiet in tests and benches;
// examples raise it to kInfo to narrate what the system is doing. The
// CHOPPER_LOG_LEVEL environment variable (debug|info|warn|error|off)
// overrides whatever default a binary picks via set_log_level_default.
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace chopper::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive); nullopt on
/// anything else.
std::optional<LogLevel> parse_log_level(const std::string& s) noexcept;

/// Set the level a binary wants by default, unless the CHOPPER_LOG_LEVEL
/// environment variable names a valid level — the environment wins. An
/// unparseable value falls back to `fallback` (and is reported on stderr).
void set_log_level_default(LogLevel fallback) noexcept;

namespace detail {
void log_line(LogLevel level, const std::string& msg);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace chopper::common

#define CHOPPER_LOG(level)                                                  \
  if (static_cast<int>(level) < static_cast<int>(::chopper::common::log_level())) \
    ;                                                                       \
  else                                                                      \
    ::chopper::common::detail::LogStream(level)

#define LOG_DEBUG CHOPPER_LOG(::chopper::common::LogLevel::kDebug)
#define LOG_INFO CHOPPER_LOG(::chopper::common::LogLevel::kInfo)
#define LOG_WARN CHOPPER_LOG(::chopper::common::LogLevel::kWarn)
#define LOG_ERROR CHOPPER_LOG(::chopper::common::LogLevel::kError)
