// Deterministic random number generation for data generators and samplers.
//
// All randomness in the repository flows through Xoshiro256** seeded from an
// explicit 64-bit seed, so every experiment is reproducible bit-for-bit.
// Besides the uniform generator we provide the distributions the SparkBench
// style workloads need: normal (Gaussian clusters for KMeans / PCA), Zipf
// (hot keys for SQL joins and skewed shuffles), and exponential.
#pragma once

#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/hash.h"

namespace chopper::common {

/// Xoshiro256** — fast, high-quality, 256-bit state PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x2545f4914f6cdd1dULL) noexcept {
    // Seed the full state via splitmix64 as recommended by the authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      s = mix64(x);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    assert(bound > 0);
    // Lemire's multiply-shift rejection-free approximation is fine here; the
    // tiny modulo bias of a 64-bit multiply is irrelevant for workload data.
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>((*this)()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box–Muller (no cached spare: keeps state trivial).
  double next_normal() noexcept {
    double u1 = next_double();
    while (u1 <= 0.0) u1 = next_double();
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  double next_normal(double mean, double stddev) noexcept {
    return mean + stddev * next_normal();
  }

  double next_exponential(double rate) noexcept {
    assert(rate > 0.0);
    double u = next_double();
    while (u <= 0.0) u = next_double();
    return -std::log(u) / rate;
  }

  /// Derive an independent stream for a sub-task (e.g. one per partition).
  Xoshiro256 fork(std::uint64_t stream_id) const noexcept {
    return Xoshiro256(hash_combine(state_[0] ^ state_[3], stream_id));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Zipf(theta) sampler over {0, ..., n-1} using the precomputed-CDF method.
/// theta = 0 degenerates to uniform; larger theta concentrates mass on low
/// ranks (hot keys). Used to model skewed key distributions in SQL joins.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double theta) : cdf_(n) {
    assert(n > 0);
    assert(theta >= 0.0);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  std::size_t operator()(Xoshiro256& rng) const noexcept {
    const double u = rng.next_double();
    // Binary search the CDF.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::size_t domain() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace chopper::common
