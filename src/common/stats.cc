#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace chopper::common {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  mean_ = (n * mean_ + m * other.mean_) / (n + m);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::cv() const noexcept {
  if (n_ == 0 || mean_ == 0.0) return 0.0;
  return stddev() / std::abs(mean_);
}

double percentile(std::vector<double> values, double q) {
  assert(q >= 0.0 && q <= 1.0);
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double imbalance(const std::vector<double>& loads) {
  if (loads.empty()) return 1.0;
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  if (total <= 0.0) return 1.0;
  const double mean = total / static_cast<double>(loads.size());
  const double mx = *std::max_element(loads.begin(), loads.end());
  return mx / mean;
}

double gini(std::vector<double> values) {
  if (values.size() < 2) return 0.0;
  std::sort(values.begin(), values.end());
  const double total = std::accumulate(values.begin(), values.end(), 0.0);
  if (total <= 0.0) return 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    weighted += static_cast<double>(i + 1) * values[i];
  }
  const auto n = static_cast<double>(values.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_low(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << "[" << bucket_low(i) << ", " << bucket_low(i + 1) << "): " << counts_[i]
       << "\n";
  }
  return os.str();
}

}  // namespace chopper::common
