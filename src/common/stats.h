// Descriptive statistics used throughout metrics collection and the
// CHOPPER optimizer: running moments (Welford), percentiles, histograms,
// and skew measures (coefficient of variation, max/mean imbalance, Gini).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace chopper::common {

/// Numerically stable running mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // population variance
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Coefficient of variation (stddev/mean); 0 for empty or zero-mean data.
  double cv() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile of a sample (copies + sorts; fine for per-stage task
/// counts which are at most a few thousand). q in [0, 1].
double percentile(std::vector<double> values, double q);

/// max/mean load imbalance of a set of per-partition sizes.
/// 1.0 = perfectly balanced; large values indicate stragglers.
double imbalance(const std::vector<double>& loads);

/// Gini coefficient in [0, 1): 0 = perfectly even, ->1 = fully concentrated.
double gini(std::vector<double> values);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; out-of-range
/// samples clamp into the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::uint64_t total() const noexcept { return total_; }
  double bucket_low(std::size_t i) const;

  std::string to_string() const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace chopper::common
