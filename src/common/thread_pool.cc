#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace chopper::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> fn) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      fn = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    fn();
    {
      std::lock_guard lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> remaining{n};
  std::exception_ptr first_error;
  std::mutex err_mu;
  std::promise<void> done;
  auto done_future = done.get_future();

  for (std::size_t i = 0; i < n; ++i) {
    pool.post([&, i] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        done.set_value();
      }
    });
  }
  done_future.wait();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace chopper::common
