// Fixed-size thread pool used by the engine's executors.
//
// Tasks are type-erased `std::function<void()>` closures; callers that need
// results use `submit`, which wraps the closure in a packaged_task and
// returns a future. The pool drains outstanding work on destruction (RAII —
// no detached threads, per C++ Core Guidelines CP.23/CP.26).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace chopper::common {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Waits for queued work to finish, then joins all workers.
  ~ThreadPool();

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a fire-and-forget task.
  void post(std::function<void()> fn);

  /// Enqueue a task and get a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    post([task]() { (*task)(); });
    return fut;
  }

  /// Block until the queue is empty and all in-flight tasks have completed.
  /// New work may be posted concurrently; this waits for a quiescent point.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;       // signals workers: work available / stop
  std::condition_variable idle_cv_;  // signals wait_idle: quiescent
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
/// Exceptions from tasks propagate to the caller (first one wins).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace chopper::common
