#include "engine/block_manager.h"

#include <algorithm>

#include "obs/event_log.h"

namespace chopper::engine {

void BlockManager::put(std::size_t dataset_id, CachedDataset data) {
  std::lock_guard lock(mu_);
  if (data.available.size() != data.partitions.size()) {
    data.available.assign(data.partitions.size(), 1);
  }
  auto& e = cache_[dataset_id];
  e.data = std::make_shared<CachedDataset>(std::move(data));
  e.last_access = ++tick_;
  e.pins = 0;
  enforce_locked();
}

bool BlockManager::contains(std::size_t dataset_id) const {
  std::lock_guard lock(mu_);
  return cache_.count(dataset_id) > 0;
}

void BlockManager::touch_locked(std::size_t dataset_id) const {
  const auto it = cache_.find(dataset_id);
  if (it != cache_.end()) {
    const_cast<Entry&>(it->second).last_access = ++tick_;
  }
}

const CachedDataset* BlockManager::get(std::size_t dataset_id) const {
  std::lock_guard lock(mu_);
  const auto it = cache_.find(dataset_id);
  if (it == cache_.end()) return nullptr;
  touch_locked(dataset_id);
  return it->second.data.get();
}

CachedDataset* BlockManager::get_mutable(std::size_t dataset_id) {
  std::lock_guard lock(mu_);
  const auto it = cache_.find(dataset_id);
  if (it == cache_.end()) return nullptr;
  touch_locked(dataset_id);
  return it->second.data.get();
}

BlockManager::Pin BlockManager::pin(std::size_t dataset_id) {
  std::lock_guard lock(mu_);
  const auto it = cache_.find(dataset_id);
  if (it == cache_.end()) return {};
  touch_locked(dataset_id);
  ++it->second.pins;
  std::shared_ptr<CachedDataset> keep = it->second.data;
  Pin p;
  // Aliasing handle: keeps the object alive past remove/clear and, via the
  // deleter, releases the eviction-blocking pin count when dropped. The
  // `data == keep` identity check guards against an id being removed and
  // re-put while the pin was live.
  p.data_ = std::shared_ptr<const CachedDataset>(
      keep.get(), [this, dataset_id, keep](const CachedDataset*) mutable {
        std::lock_guard inner(mu_);
        const auto it2 = cache_.find(dataset_id);
        if (it2 != cache_.end() && it2->second.data == keep &&
            it2->second.pins > 0) {
          --it2->second.pins;
        }
        keep.reset();
      });
  return p;
}

void BlockManager::remove(std::size_t dataset_id) {
  std::lock_guard lock(mu_);
  cache_.erase(dataset_id);
}

void BlockManager::clear() {
  std::lock_guard lock(mu_);
  cache_.clear();
}

LossReport BlockManager::invalidate_node(std::size_t node) {
  std::lock_guard lock(mu_);
  LossReport report;
  for (auto& [id, entry] : cache_) {
    CachedDataset* data = entry.data.get();
    for (std::size_t p = 0; p < data->partitions.size(); ++p) {
      if (data->placement[p] != node || !data->available[p]) continue;
      const std::uint64_t b = data->partitions[p].bytes();
      report.lost_bytes += b;
      ++report.lost_tasks;
      data->bytes -= b;
      data->partitions[p] = Partition();
      data->available[p] = 0;
    }
  }
  return report;
}

void BlockManager::configure_budget(
    std::vector<std::uint64_t> per_node_capacity, MemoryLedger* ledger,
    double ledger_scale) {
  std::lock_guard lock(mu_);
  capacity_ = std::move(per_node_capacity);
  ledger_ = ledger;
  ledger_scale_ = ledger_scale;
}

std::uint64_t BlockManager::used_locked(std::size_t node) const {
  std::uint64_t b = 0;
  for (const auto& [id, entry] : cache_) {
    const CachedDataset& d = *entry.data;
    for (std::size_t p = 0; p < d.partitions.size(); ++p) {
      if (d.placement[p] == node && d.available[p]) {
        b += d.partitions[p].bytes();
      }
    }
  }
  return b;
}

std::uint64_t BlockManager::used_bytes(std::size_t node) const {
  std::lock_guard lock(mu_);
  return used_locked(node);
}

void BlockManager::enforce_locked() {
  if (capacity_.empty()) return;
  // Deterministic LRU order: oldest access first, dataset id breaking ties.
  std::vector<std::pair<std::uint64_t, std::size_t>> order;
  order.reserve(cache_.size());
  for (const auto& [id, entry] : cache_) {
    order.emplace_back(entry.last_access, id);
  }
  std::sort(order.begin(), order.end());

  for (std::size_t node = 0; node < capacity_.size(); ++node) {
    std::uint64_t used = used_locked(node);
    if (used <= capacity_[node]) continue;
    for (const auto& [tick, id] : order) {
      if (used <= capacity_[node]) break;
      Entry& entry = cache_.at(id);
      if (entry.pins > 0) continue;  // a reader holds this dataset
      CachedDataset& d = *entry.data;
      for (std::size_t p = 0; p < d.partitions.size(); ++p) {
        if (d.placement[p] != node || !d.available[p]) continue;
        const std::uint64_t b = d.partitions[p].bytes();
        d.bytes -= b;
        d.partitions[p] = Partition();
        d.available[p] = 0;  // recomputable: lineage recovery heals on demand
        used -= std::min(used, b);
        if (ledger_ != nullptr) {
          ledger_->add_evict(node, static_cast<std::uint64_t>(
                                       static_cast<double>(b) * ledger_scale_));
        }
        if (event_log_ != nullptr && event_log_->enabled()) {
          obs::Event ev;
          ev.kind = obs::EventKind::kBlockEvict;
          ev.sim = event_log_->sim_hint();
          ev.dataset = id;
          ev.task = p;
          ev.node = node;
          ev.bytes = b;
          event_log_->emit(std::move(ev));
        }
        if (used <= capacity_[node]) break;
      }
    }
  }
}

void BlockManager::enforce_budget() {
  std::lock_guard lock(mu_);
  enforce_locked();
}

std::uint64_t BlockManager::total_bytes() const {
  std::lock_guard lock(mu_);
  std::uint64_t b = 0;
  for (const auto& [id, entry] : cache_) b += entry.data->bytes;
  return b;
}

std::size_t BlockManager::count() const {
  std::lock_guard lock(mu_);
  return cache_.size();
}

}  // namespace chopper::engine
