#include "engine/block_manager.h"

namespace chopper::engine {

void BlockManager::put(std::size_t dataset_id, CachedDataset data) {
  std::lock_guard lock(mu_);
  if (data.available.size() != data.partitions.size()) {
    data.available.assign(data.partitions.size(), 1);
  }
  cache_[dataset_id] = std::make_unique<CachedDataset>(std::move(data));
}

bool BlockManager::contains(std::size_t dataset_id) const {
  std::lock_guard lock(mu_);
  return cache_.count(dataset_id) > 0;
}

const CachedDataset* BlockManager::get(std::size_t dataset_id) const {
  std::lock_guard lock(mu_);
  const auto it = cache_.find(dataset_id);
  return it == cache_.end() ? nullptr : it->second.get();
}

CachedDataset* BlockManager::get_mutable(std::size_t dataset_id) {
  std::lock_guard lock(mu_);
  const auto it = cache_.find(dataset_id);
  return it == cache_.end() ? nullptr : it->second.get();
}

void BlockManager::remove(std::size_t dataset_id) {
  std::lock_guard lock(mu_);
  cache_.erase(dataset_id);
}

void BlockManager::clear() {
  std::lock_guard lock(mu_);
  cache_.clear();
}

LossReport BlockManager::invalidate_node(std::size_t node) {
  std::lock_guard lock(mu_);
  LossReport report;
  for (auto& [id, data] : cache_) {
    for (std::size_t p = 0; p < data->partitions.size(); ++p) {
      if (data->placement[p] != node || !data->available[p]) continue;
      const std::uint64_t b = data->partitions[p].bytes();
      report.lost_bytes += b;
      ++report.lost_tasks;
      data->bytes -= b;
      data->partitions[p] = Partition();
      data->available[p] = 0;
    }
  }
  return report;
}

std::uint64_t BlockManager::total_bytes() const {
  std::lock_guard lock(mu_);
  std::uint64_t b = 0;
  for (const auto& [id, data] : cache_) b += data->bytes;
  return b;
}

std::size_t BlockManager::count() const {
  std::lock_guard lock(mu_);
  return cache_.size();
}

}  // namespace chopper::engine
