#include "engine/block_manager.h"

#include <algorithm>

#include "obs/event_log.h"

namespace chopper::engine {

const char* to_string(EvictionPolicy policy) noexcept {
  switch (policy) {
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kCost:
      return "cost";
  }
  return "unknown";
}

void BlockManager::put(std::size_t dataset_id, CachedDataset data) {
  std::lock_guard lock(mu_);
  if (data.available.size() != data.partitions.size()) {
    data.available.assign(data.partitions.size(), 1);
  }
  auto& e = cache_[dataset_id];
  e.data = std::make_shared<CachedDataset>(std::move(data));
  e.last_access = ++tick_;
  e.pins = 0;
  enforce_locked();
}

bool BlockManager::contains(std::size_t dataset_id) const {
  std::lock_guard lock(mu_);
  return cache_.count(dataset_id) > 0;
}

void BlockManager::touch_locked(std::size_t dataset_id) const {
  const auto it = cache_.find(dataset_id);
  if (it != cache_.end()) {
    const_cast<Entry&>(it->second).last_access = ++tick_;
  }
}

const CachedDataset* BlockManager::get(std::size_t dataset_id) const {
  std::lock_guard lock(mu_);
  const auto it = cache_.find(dataset_id);
  if (it == cache_.end()) return nullptr;
  touch_locked(dataset_id);
  return it->second.data.get();
}

CachedDataset* BlockManager::get_mutable(std::size_t dataset_id) {
  std::lock_guard lock(mu_);
  const auto it = cache_.find(dataset_id);
  if (it == cache_.end()) return nullptr;
  touch_locked(dataset_id);
  return it->second.data.get();
}

BlockManager::Pin BlockManager::pin(std::size_t dataset_id) {
  std::lock_guard lock(mu_);
  const auto it = cache_.find(dataset_id);
  if (it == cache_.end()) return {};
  touch_locked(dataset_id);
  ++it->second.pins;
  std::shared_ptr<CachedDataset> keep = it->second.data;
  Pin p;
  // Aliasing handle: keeps the object alive past remove/clear and, via the
  // deleter, releases the eviction-blocking pin count when dropped. The
  // `data == keep` identity check guards against an id being removed and
  // re-put while the pin was live.
  p.data_ = std::shared_ptr<CachedDataset>(
      keep.get(), [this, dataset_id, keep](CachedDataset*) mutable {
        std::lock_guard inner(mu_);
        const auto it2 = cache_.find(dataset_id);
        if (it2 != cache_.end() && it2->second.data == keep &&
            it2->second.pins > 0) {
          --it2->second.pins;
        }
        keep.reset();
      });
  return p;
}

void BlockManager::remove(std::size_t dataset_id) {
  std::lock_guard lock(mu_);
  cache_.erase(dataset_id);
}

void BlockManager::clear() {
  std::lock_guard lock(mu_);
  cache_.clear();
}

LossReport BlockManager::invalidate_node(std::size_t node) {
  std::lock_guard lock(mu_);
  LossReport report;
  for (auto& [id, entry] : cache_) {
    CachedDataset* data = entry.data.get();
    for (std::size_t p = 0; p < data->partitions.size(); ++p) {
      if (data->placement[p] != node || !data->available[p]) continue;
      const std::uint64_t b = data->partitions[p].bytes();
      report.lost_bytes += b;
      ++report.lost_tasks;
      data->bytes -= b;
      data->partitions[p] = Partition();
      data->available[p] = 0;
    }
  }
  return report;
}

void BlockManager::configure_budget(
    std::vector<std::uint64_t> per_node_capacity, MemoryLedger* ledger,
    double ledger_scale) {
  std::lock_guard lock(mu_);
  capacity_ = std::move(per_node_capacity);
  ledger_ = ledger;
  ledger_scale_ = ledger_scale;
}

std::uint64_t BlockManager::used_locked(std::size_t node) const {
  std::uint64_t b = 0;
  for (const auto& [id, entry] : cache_) {
    const CachedDataset& d = *entry.data;
    for (std::size_t p = 0; p < d.partitions.size(); ++p) {
      if (d.placement[p] == node && d.available[p]) {
        b += d.partitions[p].bytes();
      }
    }
  }
  return b;
}

std::uint64_t BlockManager::used_bytes(std::size_t node) const {
  std::lock_guard lock(mu_);
  return used_locked(node);
}

void BlockManager::set_eviction_policy(EvictionPolicy policy) {
  std::lock_guard lock(mu_);
  policy_ = policy;
}

EvictionPolicy BlockManager::eviction_policy() const {
  std::lock_guard lock(mu_);
  return policy_;
}

void BlockManager::merge_cache_plan(const CachePlanSnapshot& snapshot) {
  std::lock_guard lock(mu_);
  for (const auto& [id, g] : snapshot.guidance) plan_.guidance[id] = g;
  for (const auto& [pool, share] : snapshot.pool_share) {
    plan_.pool_share[pool] = share;
  }
}

std::optional<CacheGuidance> BlockManager::guidance_for(
    std::size_t dataset_id) const {
  std::lock_guard lock(mu_);
  const auto it = plan_.guidance.find(dataset_id);
  if (it == plan_.guidance.end()) return std::nullopt;
  return it->second;
}

bool BlockManager::evictable_locked(const Entry& entry, std::size_t id) const {
  if (entry.pins > 0) return false;  // a reader holds this dataset
  const auto g = plan_.guidance.find(id);
  // Planner-pinned working sets are never evicted, under either policy: the
  // OOM path kills the oversized task, not the pinned tenant's cache.
  if (g != plan_.guidance.end() && g->second.pinned) return false;
  return true;
}

std::vector<std::size_t> BlockManager::victim_order_locked() const {
  // Victim classes, evicted in order: 0 = planner-demoted (Drop, negative
  // priority); 1 = unplanned (LRU among themselves — the fallback order,
  // and the only class under kLru); 2 = planned, ascending priority
  // (cheapest-to-rebuild first). last_access then dataset id break ties, so
  // the order is deterministic for identical access histories.
  struct Key {
    int cls;
    double priority;
    std::uint64_t tick;
    std::size_t id;
  };
  std::vector<Key> keys;
  keys.reserve(cache_.size());
  for (const auto& [id, entry] : cache_) {
    Key k{1, 0.0, entry.last_access, id};
    if (policy_ == EvictionPolicy::kCost) {
      const auto g = plan_.guidance.find(id);
      if (g != plan_.guidance.end()) {
        k.cls = g->second.priority < 0.0 ? 0 : 2;
        k.priority = g->second.priority;
      }
    }
    keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.cls != b.cls) return a.cls < b.cls;
    if (a.priority != b.priority) return a.priority < b.priority;
    if (a.tick != b.tick) return a.tick < b.tick;
    return a.id < b.id;
  });
  std::vector<std::size_t> order;
  order.reserve(keys.size());
  for (const Key& k : keys) order.push_back(k.id);
  return order;
}

void BlockManager::evict_on_node_locked(
    std::size_t id, std::size_t node, std::uint64_t& used,
    std::map<std::string, std::uint64_t>& pool_bytes) {
  Entry& entry = cache_.at(id);
  CachedDataset& d = *entry.data;
  const auto g = plan_.guidance.find(id);
  const bool cost_pick = policy_ == EvictionPolicy::kCost &&
                         g != plan_.guidance.end();
  const std::string pool =
      g != plan_.guidance.end() ? g->second.pool : std::string();
  for (std::size_t p = 0; p < d.partitions.size(); ++p) {
    if (used <= capacity_[node]) break;
    if (d.placement[p] != node || !d.available[p]) continue;
    const std::uint64_t b = d.partitions[p].bytes();
    d.bytes -= b;
    d.partitions[p] = Partition();
    d.available[p] = 0;  // recomputable: lineage recovery heals on demand
    used -= std::min(used, b);
    if (!pool.empty()) {
      auto& pb = pool_bytes[pool];
      pb -= std::min(pb, b);
    }
    if (ledger_ != nullptr) {
      ledger_->add_evict(node,
                         static_cast<std::uint64_t>(static_cast<double>(b) *
                                                    ledger_scale_),
                         cost_pick);
    }
    if (event_log_ != nullptr && event_log_->enabled()) {
      obs::Event ev;
      ev.kind = obs::EventKind::kBlockEvict;
      ev.sim = event_log_->sim_hint();
      ev.dataset = id;
      ev.task = p;
      ev.node = node;
      ev.bytes = b;
      if (cost_pick) ev.detail = "cost";
      event_log_->emit(std::move(ev));
    }
  }
}

void BlockManager::enforce_locked() {
  if (capacity_.empty()) return;
  const std::vector<std::size_t> order = victim_order_locked();

  // Per-pool resident bytes and share floors (kCost with pool shares only).
  // A pool at or below share * total_budget is protected in the first pass;
  // the budget is hard, so a second pass ignores the floors when honoring
  // them would leave a node over budget.
  std::map<std::string, std::uint64_t> pool_bytes;
  std::map<std::string, std::uint64_t> pool_floor;
  if (policy_ == EvictionPolicy::kCost && !plan_.pool_share.empty()) {
    std::uint64_t total_budget = 0;
    for (const std::uint64_t c : capacity_) total_budget += c;
    for (const auto& [pool, share] : plan_.pool_share) {
      pool_floor[pool] = static_cast<std::uint64_t>(
          static_cast<double>(total_budget) * share);
    }
    for (const auto& [id, entry] : cache_) {
      const auto g = plan_.guidance.find(id);
      if (g == plan_.guidance.end() || g->second.pool.empty()) continue;
      const CachedDataset& d = *entry.data;
      std::uint64_t b = 0;
      for (std::size_t p = 0; p < d.partitions.size(); ++p) {
        if (d.available.empty() || d.available[p]) b += d.partitions[p].bytes();
      }
      pool_bytes[g->second.pool] += b;
    }
  }
  const auto pool_protected = [&](std::size_t id) {
    const auto g = plan_.guidance.find(id);
    if (g == plan_.guidance.end() || g->second.pool.empty()) return false;
    const auto f = pool_floor.find(g->second.pool);
    if (f == pool_floor.end()) return false;
    const auto b = pool_bytes.find(g->second.pool);
    return b != pool_bytes.end() && b->second <= f->second;
  };

  for (std::size_t node = 0; node < capacity_.size(); ++node) {
    std::uint64_t used = used_locked(node);
    if (used <= capacity_[node]) continue;
    for (const std::size_t id : order) {
      if (used <= capacity_[node]) break;
      if (!evictable_locked(cache_.at(id), id)) continue;
      if (pool_protected(id)) continue;  // tenant floor: defer to pass 2
      evict_on_node_locked(id, node, used, pool_bytes);
    }
    for (const std::size_t id : order) {
      if (used <= capacity_[node]) break;
      if (!evictable_locked(cache_.at(id), id)) continue;
      evict_on_node_locked(id, node, used, pool_bytes);
    }
  }
}

void BlockManager::enforce_budget() {
  std::lock_guard lock(mu_);
  enforce_locked();
}

std::uint64_t BlockManager::total_bytes() const {
  std::lock_guard lock(mu_);
  std::uint64_t b = 0;
  for (const auto& [id, entry] : cache_) b += entry.data->bytes;
  return b;
}

std::size_t BlockManager::count() const {
  std::lock_guard lock(mu_);
  return cache_.size();
}

}  // namespace chopper::engine
