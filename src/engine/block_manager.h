// Block manager: holds cached dataset materializations with per-node
// placement, standing in for Spark's BlockManager + the HDFS storage layer.
// Iterative workloads (KMeans, PCA) cache their input once and every later
// job reads the cached blocks instead of regenerating lineage.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "engine/partition.h"
#include "engine/partitioner.h"

namespace chopper::engine {

struct CachedDataset {
  std::vector<Partition> partitions;
  std::vector<std::size_t> placement;        ///< node index per partition
  std::shared_ptr<Partitioner> partitioner;  ///< may be null (no known scheme)
  std::uint64_t bytes = 0;
};

class BlockManager {
 public:
  void put(std::size_t dataset_id, CachedDataset data);
  bool contains(std::size_t dataset_id) const;
  /// Returns nullptr when absent. The pointer stays valid until remove/clear.
  const CachedDataset* get(std::size_t dataset_id) const;
  void remove(std::size_t dataset_id);
  void clear();

  std::uint64_t total_bytes() const;
  std::size_t count() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::size_t, std::unique_ptr<CachedDataset>> cache_;
};

}  // namespace chopper::engine
