// Block manager: holds cached dataset materializations with per-node
// placement, standing in for Spark's BlockManager + the HDFS storage layer.
// Iterative workloads (KMeans, PCA) cache their input once and every later
// job reads the cached blocks instead of regenerating lineage.
//
// Fault tolerance: `placement[p]` records which node holds partition p. When
// a node dies, `invalidate_node` drops the partitions it held and marks them
// unavailable; `lineage` keeps the cached dataset's DAG node alive so the
// scheduler can recompute exactly the lost partitions (see scheduler.cc).
//
// Memory budget (DESIGN.md §11): configure_budget arms a per-node capacity
// (the storage tier of MemoryLimits). put() and enforce_budget() evict
// partitions of *unpinned* datasets from over-budget nodes; evicted
// partitions look exactly like failure-lost ones (available[p] == 0, empty
// partition) and are healed by the same lineage recovery. Readers must hold
// a Pin across their use of a dataset: get() returns a raw pointer that a
// concurrent eviction/remove may free, so it is only safe for short,
// same-thread inspection — pin() is the lifetime-safe accessor.
//
// Eviction policy (DESIGN.md §17): under the default kLru policy victims
// fall in oldest-access order. Under kCost, a CachePlanSnapshot installed by
// the cache planner (src/cacheplan) orders victims cheapest-to-rebuild
// first: planner-demoted (Drop) datasets go before unplanned ones (which
// keep LRU order among themselves), which go before planned datasets in
// ascending eviction priority. Planner-pinned datasets are never evicted —
// not even by the OOM path; the task dies, the pinned working set survives.
// Per-pool shares (FAIR-tenant floors derived from SlotLedger weights) defer
// evicting a pool's blocks while the pool sits at or below its share of the
// total storage budget, unless nothing unprotected is left to evict.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/fault.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "engine/partitioner.h"

namespace chopper::obs {
class EventLog;
}

namespace chopper::engine {

class Dataset;

struct CachedDataset {
  std::vector<Partition> partitions;
  std::vector<std::size_t> placement;        ///< node index per partition
  /// available[p] == 0: partition p was on a node that died (or was evicted
  /// under memory pressure) and must be recomputed from lineage before it
  /// can be read. Sized like `partitions` (put() initializes it to
  /// all-available when left empty).
  std::vector<char> available;
  std::shared_ptr<Partitioner> partitioner;  ///< may be null (no known scheme)
  /// Per-partition integrity checksums, recorded when the block store
  /// commits and refreshed after heals. Empty == checksums off (no
  /// CorruptionSchedule armed). A sum whose partition is unavailable is
  /// stale and ignored until the heal refreshes it.
  std::vector<std::uint64_t> sums;
  /// The dataset node this materialization snapshots. Owning: keeps the
  /// lineage DAG alive for block recovery after the user drops their handle.
  std::shared_ptr<Dataset> lineage;
  std::uint64_t bytes = 0;

  bool complete() const noexcept {
    for (const char a : available) {
      if (!a) return false;
    }
    return true;
  }
  std::vector<std::size_t> missing() const {
    std::vector<std::size_t> out;
    for (std::size_t p = 0; p < available.size(); ++p) {
      if (!available[p]) out.push_back(p);
    }
    return out;
  }
};

/// Which order the budget-enforcement scan picks eviction victims in.
enum class EvictionPolicy {
  kLru,   ///< oldest access first (the pre-§17 default)
  kCost,  ///< cheapest-to-rebuild first, per the installed CachePlanSnapshot
};

const char* to_string(EvictionPolicy policy) noexcept;

/// Per-dataset directive from the cache planner (src/cacheplan).
struct CacheGuidance {
  /// Eviction priority under kCost: higher = more expensive to rebuild =
  /// evicted later. Negative marks a planner-demoted (Drop) dataset, evicted
  /// before everything else.
  double priority = 0.0;
  /// Planner-pinned working set: never evicted by budget enforcement.
  bool pinned = false;
  /// FAIR pool (tenant) owning the dataset; "" = unpooled, never protected.
  std::string pool;
};

/// The planner's decisions as the BlockManager consumes them: per-dataset
/// guidance plus per-pool storage-share floors (fraction of the total
/// storage budget each tenant's cached bytes are protected down to).
struct CachePlanSnapshot {
  std::map<std::size_t, CacheGuidance> guidance;  ///< by Dataset::id
  std::map<std::string, double> pool_share;       ///< fraction of budget
};

class BlockManager {
 public:
  /// RAII read handle. While alive: the CachedDataset object stays valid
  /// (even across remove/clear) and the eviction policy will not touch the
  /// dataset's partitions. Default-constructed pins are empty.
  class Pin {
   public:
    Pin() = default;
    const CachedDataset* get() const noexcept { return data_.get(); }
    const CachedDataset* operator->() const noexcept { return data_.get(); }
    const CachedDataset& operator*() const noexcept { return *data_; }
    explicit operator bool() const noexcept { return data_ != nullptr; }
    void reset() noexcept { data_.reset(); }
    /// Mutable access for block recovery/heal paths. Field mutations on a
    /// dataset other jobs may share still require guard() — the pin only
    /// fixes lifetime and blocks eviction, it is not a lock.
    CachedDataset* mutable_get() const noexcept { return data_.get(); }

   private:
    friend class BlockManager;
    std::shared_ptr<CachedDataset> data_;
  };

  void put(std::size_t dataset_id, CachedDataset data);
  bool contains(std::size_t dataset_id) const;
  /// INTERNAL USE ONLY (BlockManager-adjacent bookkeeping and tests).
  /// Lifetime contract: the returned pointer is owned by the manager and is
  /// freed by remove()/clear() and — under an armed budget — by a concurrent
  /// eviction scan dropping the entry another thread re-put(). It is only
  /// safe for short, same-thread inspection that completes before any other
  /// BlockManager call; every call site whose use of the dataset outlives
  /// the calling statement must hold a Pin instead (pin() is the public
  /// accessor; the scheduler's read/heal paths all pin since PR 9).
  const CachedDataset* get(std::size_t dataset_id) const;
  /// INTERNAL USE ONLY. Same lifetime contract as get(); prefer
  /// pin().mutable_get() which fixes the lifetime for the pin's duration.
  CachedDataset* get_mutable(std::size_t dataset_id);
  /// Lifetime-safe accessor: empty Pin when absent.
  Pin pin(std::size_t dataset_id);
  void remove(std::size_t dataset_id);
  void clear();

  /// Node `node` died: drop the cached partitions it held and mark them
  /// unavailable. Returns what was destroyed.
  LossReport invalidate_node(std::size_t node);

  /// Arm the per-node storage budget (raw bytes, i.e. node memory already
  /// scaled down by CostModel::data_scale). Evictions are reported to
  /// `ledger` with bytes multiplied by `ledger_scale` (back to modeled).
  void configure_budget(std::vector<std::uint64_t> per_node_capacity,
                        MemoryLedger* ledger, double ledger_scale);
  /// Evict (in policy order, skipping pinned datasets) until every node
  /// fits its budget — or nothing evictable remains. No-op when no budget
  /// is armed. put() calls this automatically; recovery calls it after
  /// healing blocks re-inflates a node.
  void enforce_budget();

  /// Select the victim order for budget enforcement. kLru (default) keeps
  /// the §11 behavior; kCost consults the installed cache plan.
  void set_eviction_policy(EvictionPolicy policy);
  EvictionPolicy eviction_policy() const;

  /// Merge planner guidance: per-dataset entries overwrite existing ones,
  /// pool shares replace listed pools (others keep their floor). The cache
  /// planner calls this when a job plan is built and again on adaptive
  /// re-scores at stage barriers.
  void merge_cache_plan(const CachePlanSnapshot& snapshot);
  /// Installed guidance for one dataset (tests / chopperctl inspection).
  std::optional<CacheGuidance> guidance_for(std::size_t dataset_id) const;

  /// Resident cached bytes currently placed on `node` (raw bytes).
  std::uint64_t used_bytes(std::size_t node) const;

  /// Structured event log for kBlockEvict events (nullptr: none). Evictions
  /// are stamped with the log's sim-time hint (the eviction scan has no
  /// clock of its own).
  void set_event_log(obs::EventLog* log) noexcept { event_log_ = log; }

  /// Scoped lock over every CachedDataset's bookkeeping fields
  /// (partitions/available/placement/bytes). Concurrent service jobs heal
  /// evicted blocks while the eviction scan reads the same fields, so the
  /// scheduler takes this around any access to those fields on a dataset
  /// other jobs may share. Do not call other BlockManager methods while
  /// holding it.
  std::unique_lock<std::mutex> guard() const {
    return std::unique_lock<std::mutex>(mu_);
  }

  std::uint64_t total_bytes() const;
  std::size_t count() const;

 private:
  struct Entry {
    std::shared_ptr<CachedDataset> data;
    std::uint64_t last_access = 0;  ///< LRU clock tick
    std::size_t pins = 0;           ///< live Pin handles
  };

  void enforce_locked();
  std::uint64_t used_locked(std::size_t node) const;
  void touch_locked(std::size_t dataset_id) const;
  bool evictable_locked(const Entry& entry, std::size_t id) const;
  /// Victim order for the active policy: ids sorted evict-first.
  std::vector<std::size_t> victim_order_locked() const;
  /// Evict dataset `id`'s partitions on `node` until the node fits `used`
  /// into its capacity; updates `used` and the per-pool byte tally.
  void evict_on_node_locked(std::size_t id, std::size_t node,
                            std::uint64_t& used,
                            std::map<std::string, std::uint64_t>& pool_bytes);

  mutable std::mutex mu_;
  mutable std::uint64_t tick_ = 0;
  std::unordered_map<std::size_t, Entry> cache_;
  std::vector<std::uint64_t> capacity_;  ///< empty: no budget armed
  MemoryLedger* ledger_ = nullptr;
  double ledger_scale_ = 1.0;
  obs::EventLog* event_log_ = nullptr;  ///< not owned; may be null
  EvictionPolicy policy_ = EvictionPolicy::kLru;
  CachePlanSnapshot plan_;
};

}  // namespace chopper::engine
