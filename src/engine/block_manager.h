// Block manager: holds cached dataset materializations with per-node
// placement, standing in for Spark's BlockManager + the HDFS storage layer.
// Iterative workloads (KMeans, PCA) cache their input once and every later
// job reads the cached blocks instead of regenerating lineage.
//
// Fault tolerance: `placement[p]` records which node holds partition p. When
// a node dies, `invalidate_node` drops the partitions it held and marks them
// unavailable; `lineage` keeps the cached dataset's DAG node alive so the
// scheduler can recompute exactly the lost partitions (see scheduler.cc).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "engine/fault.h"
#include "engine/partition.h"
#include "engine/partitioner.h"

namespace chopper::engine {

class Dataset;

struct CachedDataset {
  std::vector<Partition> partitions;
  std::vector<std::size_t> placement;        ///< node index per partition
  /// available[p] == 0: partition p was on a node that died and must be
  /// recomputed from lineage before it can be read. Sized like `partitions`
  /// (put() initializes it to all-available when left empty).
  std::vector<char> available;
  std::shared_ptr<Partitioner> partitioner;  ///< may be null (no known scheme)
  /// The dataset node this materialization snapshots. Owning: keeps the
  /// lineage DAG alive for block recovery after the user drops their handle.
  std::shared_ptr<Dataset> lineage;
  std::uint64_t bytes = 0;

  bool complete() const noexcept {
    for (const char a : available) {
      if (!a) return false;
    }
    return true;
  }
  std::vector<std::size_t> missing() const {
    std::vector<std::size_t> out;
    for (std::size_t p = 0; p < available.size(); ++p) {
      if (!available[p]) out.push_back(p);
    }
    return out;
  }
};

class BlockManager {
 public:
  void put(std::size_t dataset_id, CachedDataset data);
  bool contains(std::size_t dataset_id) const;
  /// Returns nullptr when absent. The pointer stays valid until remove/clear.
  const CachedDataset* get(std::size_t dataset_id) const;
  /// Mutable access for block recovery (scheduler-internal).
  CachedDataset* get_mutable(std::size_t dataset_id);
  void remove(std::size_t dataset_id);
  void clear();

  /// Node `node` died: drop the cached partitions it held and mark them
  /// unavailable. Returns what was destroyed.
  LossReport invalidate_node(std::size_t node);

  std::uint64_t total_bytes() const;
  std::size_t count() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::size_t, std::unique_ptr<CachedDataset>> cache_;
};

}  // namespace chopper::engine
