#include "engine/cluster.h"

namespace chopper::engine {

std::size_t ClusterSpec::total_slots() const noexcept {
  std::size_t s = 0;
  for (const auto& n : nodes_) s += n.cores;
  return s;
}

double ClusterSpec::total_compute_rate() const noexcept {
  double r = 0.0;
  for (const auto& n : nodes_) r += static_cast<double>(n.cores) * n.speed;
  return r;
}

ClusterSpec ClusterSpec::paper_heterogeneous(double memory_scale) {
  constexpr double kGiB = static_cast<double>(1ULL << 30);
  constexpr double k10Gbps = 1.25e9;  // bytes/s
  constexpr double k1Gbps = 1.25e8;
  const auto mem = static_cast<std::uint64_t>(40.0 * kGiB * memory_scale);
  // Speeds normalized to the 2.0 GHz AMD baseline.
  return ClusterSpec({
      {"A", 32, 1.00, mem, k10Gbps},
      {"B", 32, 1.00, mem, k10Gbps},
      {"C", 32, 1.00, mem, k10Gbps},
      {"D", 8, 1.15, mem, k1Gbps},
      {"E", 8, 1.15, mem, k1Gbps},
  });
}

ClusterSpec ClusterSpec::uniform(std::size_t n, std::size_t cores_per_node,
                                 double net_bw) {
  constexpr std::uint64_t kGiB = 1ULL << 30;
  std::vector<NodeSpec> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back({"node" + std::to_string(i), cores_per_node, 1.0, 40 * kGiB,
                     net_bw});
  }
  return ClusterSpec(std::move(nodes));
}

}  // namespace chopper::engine
