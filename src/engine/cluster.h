// Cluster topology description.
//
// The paper evaluates on a 6-node heterogeneous cluster (Sec. II-B):
//   A,B,C: 32 cores @2.0 GHz, 64 GB, 10 Gbps Ethernet
//   D,E  :  8 cores @2.3 GHz, 48 GB,  1 Gbps Ethernet
//   F    :  8 cores @2.5 GHz, 64 GB,  1 Gbps Ethernet (master, not a worker)
// We reproduce that topology as a preset, plus uniform presets for
// controlled experiments. Executors get a fixed slot count (cores) and the
// simulated cost model divides compute work by `speed` and network bytes by
// `net_bw`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace chopper::engine {

struct NodeSpec {
  std::string name;
  std::size_t cores = 1;          ///< task slots on this node
  double speed = 1.0;             ///< relative per-core compute speed
  std::uint64_t memory_bytes = 0; ///< executor memory budget
  double net_bw = 1.25e9;         ///< network bandwidth in bytes/s (10 Gbps)
};

class ClusterSpec {
 public:
  ClusterSpec() = default;
  explicit ClusterSpec(std::vector<NodeSpec> nodes) : nodes_(std::move(nodes)) {}

  const std::vector<NodeSpec>& nodes() const noexcept { return nodes_; }
  const NodeSpec& node(std::size_t i) const { return nodes_.at(i); }
  std::size_t num_nodes() const noexcept { return nodes_.size(); }

  std::size_t total_slots() const noexcept;

  /// Sum of speed-weighted slots — the cluster's aggregate compute rate.
  double total_compute_rate() const noexcept;

  /// The paper's heterogeneous 5-worker setup (master excluded; Spark work
  /// runs on workers A-E only). Memory: 40 GB executors as configured in
  /// Sec. II-B. `memory_scale` shrinks executor memory proportionally when
  /// experiments run scaled-down inputs, so memory-pressure effects (spill
  /// at low partition counts) keep the paper's shape.
  static ClusterSpec paper_heterogeneous(double memory_scale = 1.0);

  /// n identical nodes, useful for isolating partitioning effects from
  /// hardware heterogeneity.
  static ClusterSpec uniform(std::size_t n, std::size_t cores_per_node,
                             double net_bw = 1.25e9);

 private:
  std::vector<NodeSpec> nodes_;
};

}  // namespace chopper::engine
