// Fixed-size open-addressing combine table for the map-side combine
// (DESIGN.md §18.2).
//
// The table maps a record key to a small dense group id (gid) that indexes
// the caller's accumulator array. Layout: power-of-two slot count, linear
// probing, tombstone-free (keys are never removed). Each slot is a single
// 64-bit word — `tag<<32 | gid+1` — claimed with one CAS, plus a key word
// published before the gid field; lookups are wait-free loads on the hot
// path. The table is sized for its bucket run and *never grows*: when an
// insert would push the load factor past kMaxLoadNum/kMaxLoadDen the key is
// refused (kSpill) and the caller appends that encounter to an overflow run
// instead. A refused key is refused forever (nothing is ever removed), so
// every encounter of a spilled key lands in the overflow run in encounter
// order — which is exactly what lets the caller fold the overflow with a
// stable sort and keep results bit-identical to the sequential map
// implementation. The load bound also guarantees probe termination: at
// least half the slots are always empty, so a miss always reaches an empty
// slot instead of probing forever — the graceful-degradation contract for
// pathological all-distinct-keys inputs (asserted in reset()).
//
// Determinism: gids are assigned by the caller in encounter order, so the
// table's contents are a pure function of the input sequence. Concurrent
// claims (exercised by the TSan churn test) are linearized by the slot CAS;
// the deterministic data-plane paths drive one table per bucket from one
// thread.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace chopper::engine::dataplane {

class CombineTable {
 public:
  /// find_or_claim result for "table full, key not present": the caller must
  /// divert this encounter to its overflow run.
  static constexpr std::uint32_t kSpill = 0xffffffffu;

  /// Maximum load factor 1/2: capacity is sized to 2x the expected keys and
  /// claims stop at capacity/2. Documented bound — linear probing stays
  /// O(1) expected and probe loops always terminate (>= half empty).
  static constexpr std::size_t kMaxLoadNum = 1;
  static constexpr std::size_t kMaxLoadDen = 2;

  /// Slot-count ceiling (2^17 slots = 1 MiB of slot words + 1 MiB of keys).
  /// Bucket runs bigger than kMaxSlots/2 distinct keys degrade to the
  /// overflow run, they never blow up memory.
  static constexpr std::size_t kMaxSlots = std::size_t{1} << 17;

  /// Size (or re-size) the active region for a run expected to hold at most
  /// `expected_keys` distinct keys and clear it. Backing storage is
  /// grow-only so repeated reset() on a reused (thread_local) table settles
  /// to zero allocations; only the active prefix is cleared.
  void reset(std::size_t expected_keys) {
    std::size_t want = 64;
    while (want < kMaxSlots &&
           want * kMaxLoadNum / kMaxLoadDen < expected_keys) {
      want <<= 1;
    }
    capacity_ = want;
    mask_ = want - 1;
    max_size_ = capacity_ * kMaxLoadNum / kMaxLoadDen;
    // Probe termination requires strictly sub-capacity occupancy.
    assert(max_size_ < capacity_);
    if (slots_.size() < capacity_) {
      slots_ = std::vector<std::atomic<std::uint64_t>>(capacity_);
      keys_ = std::vector<std::atomic<std::uint64_t>>(capacity_);
    } else {
      for (std::size_t i = 0; i < capacity_; ++i) {
        slots_[i].store(0, std::memory_order_relaxed);
      }
    }
    size_.store(0, std::memory_order_relaxed);
  }

  /// Look up `key`; if absent, try to claim it with gid `new_gid`.
  /// Returns the key's gid (== new_gid iff this call inserted it), or
  /// kSpill when the key is absent and the load bound has been reached.
  /// Safe for concurrent callers (slot CAS linearizes claims; the loser of
  /// a same-key race adopts the winner's gid).
  std::uint32_t find_or_claim(std::uint64_t key,
                              std::uint32_t new_gid) noexcept {
    const std::uint64_t h = common::mix64(key);
    // Tag lives in the high word; force it nonzero so a claimed-but-
    // unpublished slot (gid field 0) is never confused with an empty one.
    const std::uint64_t tagword =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(h >> 32) | 1u)
        << 32;
    std::size_t idx = static_cast<std::size_t>(h) & mask_;
    for (;;) {
      std::uint64_t w = slots_[idx].load(std::memory_order_acquire);
      if (w == 0) {
        // Reserve a unit of the load budget *before* the CAS so the bound
        // holds even under concurrent claims.
        if (size_.fetch_add(1, std::memory_order_relaxed) >= max_size_) {
          size_.fetch_sub(1, std::memory_order_relaxed);
          return kSpill;
        }
        std::uint64_t expected = 0;
        if (slots_[idx].compare_exchange_strong(expected, tagword,
                                                std::memory_order_acq_rel)) {
          keys_[idx].store(key, std::memory_order_relaxed);
          slots_[idx].store(tagword | (static_cast<std::uint64_t>(new_gid) + 1),
                            std::memory_order_release);
          return new_gid;
        }
        size_.fetch_sub(1, std::memory_order_relaxed);  // lost the slot race
        w = expected;
      }
      if ((w & kTagMask) == tagword) {
        // Tag match: spin past a claimer mid-publish, then compare keys.
        while ((w & kGidMask) == 0) {
          w = slots_[idx].load(std::memory_order_acquire);
        }
        if (keys_[idx].load(std::memory_order_relaxed) == key) {
          return static_cast<std::uint32_t>((w & kGidMask) - 1);
        }
      }
      idx = (idx + 1) & mask_;
    }
  }

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t max_size() const noexcept { return max_size_; }

  /// Visit every resident (key, gid) pair in unspecified slot order (the
  /// caller sorts for emission). Requires quiescence — no concurrent claims.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < capacity_; ++i) {
      const std::uint64_t w = slots_[i].load(std::memory_order_acquire);
      if ((w & kGidMask) != 0) {
        f(keys_[i].load(std::memory_order_relaxed),
          static_cast<std::uint32_t>((w & kGidMask) - 1));
      }
    }
  }

 private:
  static constexpr std::uint64_t kGidMask = 0xffffffffull;
  static constexpr std::uint64_t kTagMask = ~kGidMask;

  std::vector<std::atomic<std::uint64_t>> slots_;  // tag<<32 | gid+1; 0=empty
  std::vector<std::atomic<std::uint64_t>> keys_;
  std::atomic<std::size_t> size_{0};
  std::size_t capacity_ = 0;
  std::size_t max_size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace chopper::engine::dataplane
