// Simulated-time cost model.
//
// Tasks execute for real (real records through real operators), and the
// measured work (records in/out, bytes in/out, shuffle fetch bytes) is then
// priced by this model to produce deterministic simulated times on the
// configured cluster. The constants are calibrated so that the default-
// parallelism baseline on the paper's heterogeneous preset lands in the
// same order of magnitude as the paper's measurements; what must hold is
// the *shape* of the curves, which follows from the cost structure:
//
//   task_time  = launch + records * cpu_cost / node.speed  (+ spill penalty)
//   fetch_time = remote_bytes / node.net_bw + per-fetch latency
//   stage_time = makespan of list-scheduling tasks onto node slots
//
// Too few partitions  -> idle slots + spill penalties (big partitions).
// Too many partitions -> launch overhead + per-bucket shuffle overhead.
#pragma once

#include <cstdint>

namespace chopper::engine {

struct CostModel {
  /// Experiments usually drive the simulator with inputs scaled down from
  /// the modeled system's real data volume (e.g. 1/500 of the paper's
  /// 21.8 GB). data_scale declares that ratio: all measured work and byte
  /// counts are divided by it before pricing, so the simulated cluster
  /// behaves as if it processed the full-size input while the host only
  /// touches the scaled-down data. 1.0 = prices measured quantities as-is.
  double data_scale = 1.0;

  /// Fixed scheduling/launch overhead per task (Spark task launch ~5-20 ms).
  double task_launch_s = 0.012;

  /// CPU seconds per unit of task work at speed 1.0. Operators report work
  /// in abstract units (roughly: records processed, weighted by operator
  /// complexity).
  double sec_per_work_unit = 10e-9;

  /// Additional CPU cost per byte moved through an operator (serialization,
  /// copying).
  double sec_per_byte = 0.25e-9;

  /// Memory pressure: when a task's resident partition bytes exceed
  /// (node memory / slots) * spill_fraction, the excess is priced as spill
  /// I/O at disk_bw.
  double spill_fraction = 0.35;
  double disk_bw = 2.0e8;  ///< bytes/s effective spill bandwidth

  /// Per-fetch latency for each remote shuffle bucket read (connection +
  /// request overhead). This is what makes very high partition counts pay:
  /// a reduce task fetches one bucket per map task.
  double fetch_latency_s = 0.00012;

  /// Serialized framing bytes added per (map task x reduce bucket) shuffle
  /// file segment. Drives the shuffle-bytes growth with partition count
  /// observed in paper Fig. 4.
  std::uint64_t bucket_header_bytes = 64;

  /// Spill I/O is amplified by GC / serialization churn: effective cost is
  /// excess_bytes * spill_amplification / disk_bw.
  double spill_amplification = 3.0;

  /// Bandwidth for local reads (cache blocks, local shuffle buckets) —
  /// roughly page-cache speed.
  double local_read_bw = 2.0e9;

  /// Model NIC incast contention: tasks fetching concurrently on one node
  /// share its link, so per-task fetch bandwidth becomes
  /// net_bw / min(cores, tasks_on_node). Off by default (the calibrated
  /// benches assume uncontended links, like most Spark cost models); turn
  /// on to study shuffle-heavy stages on the 1 Gbps nodes.
  bool model_network_contention = false;

  /// Fraction of executor memory usable before tasks slow down (GC-like
  /// pressure), applied by the simulator when pricing stage memory.
  double mem_headroom = 0.9;
};

}  // namespace chopper::engine
