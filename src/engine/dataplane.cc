#include "engine/dataplane.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <functional>
#include <numeric>
#include <utility>

#include "common/thread_pool.h"
#include "engine/combine_table.h"

namespace chopper::engine::dataplane {

namespace {

/// (key, index) pairs sorted ascending by key with ties broken by index —
/// i.e. equal keys keep their encounter order, which is what makes every
/// merge below apply the user's reduce fn in exactly the sequence the old
/// per-record hash-map implementations did. Sorting flat 16-byte pairs
/// (rather than an index permutation with indirect comparisons) keeps the
/// sort cache-resident.
using KeyIdx = std::pair<std::uint64_t, std::size_t>;

/// Stable LSD radix sort of (key, index) pairs by key. Byte planes whose
/// values are all equal are skipped, so narrow key domains cost only the
/// passes they need. Stability keeps equal keys in encounter order — the
/// same order a comparison sort with an index tie-break would produce —
/// while every pass streams memory sequentially instead of branching on
/// comparisons, which is what makes it beat std::sort on wide inputs.
void radix_sort_keys(KeyIdx* first, std::size_t n,
                     std::vector<KeyIdx>& scratch) {
  if (n < 128) {  // tiny runs: introsort's constants win
    std::sort(first, first + n);  // pair order == stable sort by key
    return;
  }
  std::array<std::array<std::uint32_t, 256>, 8> hist{};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = first[i].first;
    for (std::size_t b = 0; b < 8; ++b) ++hist[b][(k >> (8 * b)) & 0xff];
  }
  scratch.resize(n);
  KeyIdx* src = first;
  KeyIdx* dst = scratch.data();
  for (std::size_t b = 0; b < 8; ++b) {
    // A full bucket means every key shares this byte: nothing to reorder.
    if (hist[b][(src[0].first >> (8 * b)) & 0xff] == n) continue;
    std::array<std::uint32_t, 256> offs;
    std::uint32_t sum = 0;
    for (std::size_t v = 0; v < 256; ++v) {
      offs[v] = sum;
      sum += hist[b][v];
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[offs[(src[i].first >> (8 * b)) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != first) std::copy(src, src + n, first);
}

std::vector<KeyIdx> sorted_keys(const Partition& p) {
  std::vector<KeyIdx> ks(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) ks[i] = {p.key(i), i};
  std::vector<KeyIdx> scratch;
  radix_sort_keys(ks.data(), ks.size(), scratch);
  return ks;
}

bool keys_sorted(const Partition& p) {
  for (std::size_t i = 1; i < p.size(); ++i) {
    if (p.key(i) < p.key(i - 1)) return false;
  }
  return true;
}

/// Shard count for `n` records under `ctx`: the context's thread count,
/// capped so every shard sees a meaningful chunk. 1 means "run inline".
std::size_t shards_for(const ExecContext& ctx, std::size_t n) {
  if (!ctx.parallel(n)) return 1;
  const std::size_t cap = std::max<std::size_t>(1, n / (kParallelGrain / 4));
  return std::min(ctx.threads, cap);
}

/// Run body(0..count-1): inline when count == 1 or no pool, fanned out on
/// the context's data-plane pool otherwise. The inline path is the T == 1
/// sequential path — same code, no pool in sight.
void run_shards(const ExecContext& ctx, std::size_t count,
                const std::function<void(std::size_t)>& body) {
  if (count <= 1 || ctx.pool == nullptr) {
    for (std::size_t t = 0; t < count; ++t) body(t);
  } else {
    common::parallel_for(*ctx.pool, count, body);
  }
}

/// K-way merge-reduce over key-sorted cursor ranges, one per part (cur[p]
/// up to end[p]). Equivalent to stable-sorting the concatenation of those
/// ranges and run-scanning it: equal keys are consumed in part order,
/// encounter order within a part. Every read advances sequentially through
/// its run — no hash table, no global sort, no gather.
void kway_reduce_span(std::vector<Partition>& parts, std::vector<std::size_t> cur,
                      const std::vector<std::size_t>& end, const ReduceFn& fn,
                      Partition& out) {
  const std::size_t k_runs = parts.size();
  Record acc;
  Record next;
  while (true) {
    bool any = false;
    std::uint64_t k = 0;
    for (std::size_t p = 0; p < k_runs; ++p) {
      if (cur[p] < end[p] && (!any || parts[p].key(cur[p]) < k)) {
        k = parts[p].key(cur[p]);
        any = true;
      }
    }
    if (!any) break;
    bool first = true;
    for (std::size_t p = 0; p < k_runs; ++p) {
      while (cur[p] < end[p] && parts[p].key(cur[p]) == k) {
        if (first) {
          parts[p].materialize_into(cur[p], acc);
          first = false;
        } else {
          parts[p].materialize_into(cur[p], next);
          fn(acc, next);
        }
        ++cur[p];
      }
    }
    out.push(acc);
  }
}

/// Same k-way consume order, but over per-part *sorted index* arrays
/// (ksv[p] is parts[p]'s stable-sorted (key, index) view). Consuming equal
/// keys in part order with per-part ascending indices reproduces exactly
/// the global stable sort of the parts' concatenation — the unsorted
/// fallback's semantics, range by range.
void kway_reduce_idx(std::vector<Partition>& parts,
                     const std::vector<std::vector<KeyIdx>>& ksv,
                     std::vector<std::size_t> cur,
                     const std::vector<std::size_t>& end, const ReduceFn& fn,
                     Partition& out) {
  const std::size_t k_runs = parts.size();
  Record acc;
  Record next;
  while (true) {
    bool any = false;
    std::uint64_t k = 0;
    for (std::size_t p = 0; p < k_runs; ++p) {
      if (cur[p] < end[p] && (!any || ksv[p][cur[p]].first < k)) {
        k = ksv[p][cur[p]].first;
        any = true;
      }
    }
    if (!any) break;
    bool first = true;
    for (std::size_t p = 0; p < k_runs; ++p) {
      while (cur[p] < end[p] && ksv[p][cur[p]].first == k) {
        if (first) {
          parts[p].materialize_into(ksv[p][cur[p]].second, acc);
          first = false;
        } else {
          parts[p].materialize_into(ksv[p][cur[p]].second, next);
          fn(acc, next);
        }
        ++cur[p];
      }
    }
    out.push(acc);
  }
}

// -- map-side combine core ---------------------------------------------------

/// Per-thread combine scratch. Sequential callers (engine task threads) and
/// data-plane pool workers each get their own, so combine_bucket is
/// re-entrant without locks; every vector/Record/table settles to its
/// high-water capacity, so steady-state combine does no allocation.
struct CombineScratch {
  CombineTable table;
  std::vector<Record> accs;       ///< gid -> accumulator
  std::vector<KeyIdx> entries;    ///< (key, gid) table emission view
  std::vector<KeyIdx> ovf;        ///< spilled (key, index) encounters
  std::vector<KeyIdx> sort_scratch;
  Record next;
  Record oacc;
};

CombineScratch& combine_scratch() {
  thread_local CombineScratch s;
  return s;
}

/// Combine one bucket's (key, index) run — `run[i].second` indexes `in`,
/// run order is the bucket's global encounter order — appending one record
/// per distinct key to `out` in ascending key order.
///
/// Keys live in exactly one of two structures: the fixed-size CombineTable
/// (first kMaxLoad fraction of distinct keys) or the overflow run (every
/// encounter of a key the full table refused, in encounter order — see
/// combine_table.h). Table keys accumulate in encounter order via their
/// gid; overflow keys fold after a stable radix sort, which also preserves
/// encounter order. Both therefore apply `fn` in exactly the sequence the
/// sequential map implementation did, and the final two-pointer merge
/// (the two key sets are disjoint) emits ascending by key — bit-identical
/// output no matter how many keys spilled.
void combine_bucket(const Partition& in, const ReduceFn& fn,
                    const KeyIdx* run, std::size_t len, Partition& out) {
  CombineScratch& s = combine_scratch();
  s.table.reset(len);
  s.entries.clear();
  s.ovf.clear();

  std::uint32_t next_gid = 0;
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint32_t gid = s.table.find_or_claim(run[i].first, next_gid);
    if (gid == CombineTable::kSpill) {
      s.ovf.push_back(run[i]);
    } else if (gid == next_gid) {  // claimed: first encounter of this key
      if (s.accs.size() <= gid) s.accs.emplace_back();
      in.materialize_into(run[i].second, s.accs[gid]);
      ++next_gid;
    } else {
      in.materialize_into(run[i].second, s.next);
      fn(s.accs[gid], s.next);
    }
  }

  s.table.for_each([&s](std::uint64_t key, std::uint32_t gid) {
    s.entries.push_back({key, gid});
  });
  radix_sort_keys(s.entries.data(), s.entries.size(), s.sort_scratch);
  radix_sort_keys(s.ovf.data(), s.ovf.size(), s.sort_scratch);

  std::size_t distinct = s.entries.size();
  for (std::size_t i = 0; i < s.ovf.size(); ++i) {
    if (i == 0 || s.ovf[i].first != s.ovf[i - 1].first) ++distinct;
  }
  out.reserve(out.size() + distinct);

  std::size_t e = 0;
  std::size_t o = 0;
  while (e < s.entries.size() || o < s.ovf.size()) {
    if (o >= s.ovf.size() ||
        (e < s.entries.size() && s.entries[e].first < s.ovf[o].first)) {
      out.push(s.accs[s.entries[e].second]);
      ++e;
    } else {
      const std::uint64_t k = s.ovf[o].first;
      in.materialize_into(s.ovf[o].second, s.oacc);
      ++o;
      while (o < s.ovf.size() && s.ovf[o].first == k) {
        in.materialize_into(s.ovf[o].second, s.next);
        fn(s.oacc, s.next);
        ++o;
      }
      out.push(s.oacc);
    }
  }
}

}  // namespace

void radix_scatter(const Partition& in, const Partitioner& part,
                   std::span<Partition> buckets) {
  radix_scatter(in, part, buckets, ExecContext{});
}

void radix_scatter(const Partition& in, const Partitioner& part,
                   std::span<Partition> buckets, const ExecContext& ctx) {
  const std::size_t n = in.size();
  if (n == 0) return;
  const std::size_t num_buckets = buckets.size();
  const std::size_t t_count = shards_for(ctx, n);
  const auto& keys = in.raw_keys();
  const auto& auxs = in.raw_aux();
  const auto& ends = in.raw_ends();

  if (t_count <= 1) {
    // Sequential path: bucket each record once (one batched virtual call),
    // histogram record/payload counts, reserve each destination exactly,
    // then scatter into exactly-sized arenas.
    std::vector<std::uint32_t> bucket_of(n);
    part.partition_of_batch(keys.data(), n, bucket_of.data());
    std::vector<std::size_t> recs(num_buckets, 0);
    std::vector<std::size_t> vals(num_buckets, 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++recs[bucket_of[i]];
      vals[bucket_of[i]] += ends[i] - (i == 0 ? 0 : ends[i - 1]);
    }
    for (std::size_t r = 0; r < num_buckets; ++r) {
      if (recs[r] == 0) continue;
      buckets[r].reserve(buckets[r].size() + recs[r]);
      buckets[r].reserve_values(buckets[r].values_size() + vals[r]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::span<const double> v = in.values(i);
      buckets[bucket_of[i]].emplace(keys[i], v.data(), v.size(), auxs[i]);
    }
    return;
  }

  // Sharded scatter (DESIGN.md §18.1). The input splits into t_count
  // contiguous chunks; per-(shard, bucket) histograms turn into exact slot
  // offsets into each destination arena, the arenas grow once, and shards
  // then write disjoint slot ranges concurrently — no locks, no record
  // copies beyond the single scatter write, no intermediate arenas. Shard
  // s's slots precede shard s+1's within every bucket, so per-bucket order
  // is the input's encounter order: bit-identical to the sequential path.
  const auto chunk_at = [n, t_count](std::size_t t) {
    return n * t / t_count;
  };

  // Pass 1 (parallel): bucket assignment + per-(shard, bucket) histograms.
  std::vector<std::uint32_t> bucket_of(n);
  std::vector<std::size_t> srecs(t_count * num_buckets, 0);
  std::vector<std::size_t> svals(t_count * num_buckets, 0);
  std::vector<std::uint64_t> sbytes(t_count * num_buckets, 0);
  run_shards(ctx, t_count, [&](std::size_t t) {
    const std::size_t lo = chunk_at(t);
    const std::size_t hi = chunk_at(t + 1);
    part.partition_of_batch(keys.data() + lo, hi - lo, bucket_of.data() + lo);
    std::size_t* rr = srecs.data() + t * num_buckets;
    std::size_t* vv = svals.data() + t * num_buckets;
    std::uint64_t* bb = sbytes.data() + t * num_buckets;
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint32_t b = bucket_of[i];
      const std::size_t len = ends[i] - (i == 0 ? 0 : ends[i - 1]);
      ++rr[b];
      vv[b] += len;
      bb[b] += record_bytes(len, auxs[i]);
    }
  });

  // Layout (serial, O(t_count * buckets)): prefix-sum the histograms into
  // absolute per-(shard, bucket) start offsets and grow each arena once.
  std::vector<std::size_t> rec_off(t_count * num_buckets);
  std::vector<std::size_t> val_off(t_count * num_buckets);
  for (std::size_t r = 0; r < num_buckets; ++r) {
    std::size_t rec = buckets[r].size();
    std::size_t val = buckets[r].values_size();
    const std::size_t rec0 = rec;
    const std::size_t val0 = val;
    std::uint64_t bsum = 0;
    for (std::size_t t = 0; t < t_count; ++t) {
      rec_off[t * num_buckets + r] = rec;
      val_off[t * num_buckets + r] = val;
      rec += srecs[t * num_buckets + r];
      val += svals[t * num_buckets + r];
      bsum += sbytes[t * num_buckets + r];
    }
    if (rec != rec0) {
      buckets[r].grow_for_scatter(rec - rec0, val - val0, bsum);
    }
  }
  std::vector<std::uint64_t*> kp(num_buckets);
  std::vector<std::uint32_t*> ap(num_buckets);
  std::vector<std::size_t*> ep(num_buckets);
  std::vector<double*> vp(num_buckets);
  for (std::size_t r = 0; r < num_buckets; ++r) {
    kp[r] = buckets[r].mutable_keys();
    ap[r] = buckets[r].mutable_aux();
    ep[r] = buckets[r].mutable_ends();
    vp[r] = buckets[r].mutable_values();
  }

  // Pass 2 (parallel): scatter. Each shard consumes its own offset row as
  // write cursors; rows are disjoint by construction, so there is no shared
  // mutable state between shards.
  const double* vin = in.raw_values().data();
  run_shards(ctx, t_count, [&](std::size_t t) {
    std::size_t* rcur = rec_off.data() + t * num_buckets;
    std::size_t* vcur = val_off.data() + t * num_buckets;
    const std::size_t hi = chunk_at(t + 1);
    for (std::size_t i = chunk_at(t); i < hi; ++i) {
      const std::uint32_t b = bucket_of[i];
      const std::size_t vbegin = i == 0 ? 0 : ends[i - 1];
      const std::size_t len = ends[i] - vbegin;
      const std::size_t pos = rcur[b]++;
      kp[b][pos] = keys[i];
      ap[b][pos] = auxs[i];
      std::copy_n(vin + vbegin, len, vp[b] + vcur[b]);
      vcur[b] += len;
      ep[b][pos] = vcur[b];
    }
  });
}

void combine_scatter(const Partition& in, const Partitioner& part,
                     const ReduceFn& fn, std::span<Partition> buckets) {
  combine_scatter(in, part, fn, buckets, ExecContext{});
}

void combine_scatter(const Partition& in, const Partitioner& part,
                     const ReduceFn& fn, std::span<Partition> buckets,
                     const ExecContext& ctx) {
  const std::size_t n = in.size();
  if (n == 0) return;
  const std::size_t num_buckets = buckets.size();
  const std::size_t t_count = shards_for(ctx, n);
  const auto& keys = in.raw_keys();
  const auto chunk_at = [n, t_count](std::size_t t) {
    return n * t / t_count;
  };

  // Pass 1: bucket assignment + per-(shard, bucket) counts.
  std::vector<std::uint32_t> bucket_of(n);
  std::vector<std::size_t> scounts(t_count * num_buckets, 0);
  run_shards(ctx, t_count, [&](std::size_t t) {
    const std::size_t lo = chunk_at(t);
    const std::size_t hi = chunk_at(t + 1);
    part.partition_of_batch(keys.data() + lo, hi - lo, bucket_of.data() + lo);
    std::size_t* c = scounts.data() + t * num_buckets;
    for (std::size_t i = lo; i < hi; ++i) ++c[bucket_of[i]];
  });

  // Bucket-major layout: offs[r] bounds bucket r's run in ks; each shard
  // gets its own write cursor inside the run (shard order == input order,
  // so the run is the bucket's global encounter order).
  std::vector<std::size_t> offs(num_buckets + 1, 0);
  std::vector<std::size_t> cur(t_count * num_buckets);
  {
    std::size_t sum = 0;
    for (std::size_t r = 0; r < num_buckets; ++r) {
      offs[r] = sum;
      for (std::size_t t = 0; t < t_count; ++t) {
        cur[t * num_buckets + r] = sum;
        sum += scounts[t * num_buckets + r];
      }
    }
    offs[num_buckets] = sum;
  }

  // Pass 2: stable counting sort into bucket-major (key, index) runs.
  std::vector<KeyIdx> ks(n);
  run_shards(ctx, t_count, [&](std::size_t t) {
    std::size_t* c = cur.data() + t * num_buckets;
    const std::size_t hi = chunk_at(t + 1);
    for (std::size_t i = chunk_at(t); i < hi; ++i) {
      ks[c[bucket_of[i]]++] = {keys[i], i};
    }
  });

  // Pass 3: combine each bucket's run independently (buckets are disjoint
  // outputs — shard by contiguous bucket group, no locks).
  run_shards(ctx, t_count, [&](std::size_t g) {
    const std::size_t r_lo = num_buckets * g / t_count;
    const std::size_t r_hi = num_buckets * (g + 1) / t_count;
    for (std::size_t r = r_lo; r < r_hi; ++r) {
      const std::size_t len = offs[r + 1] - offs[r];
      if (len == 0) continue;
      combine_bucket(in, fn, ks.data() + offs[r], len, buckets[r]);
    }
  });
}

Partition merge_concat(std::vector<Partition>&& parts) {
  Partition out;
  std::size_t recs = 0;
  std::size_t vals = 0;
  for (const auto& p : parts) {
    recs += p.size();
    vals += p.values_size();
  }
  out.reserve(recs);
  out.reserve_values(vals);
  for (auto& p : parts) out.absorb(std::move(p));
  return out;
}

Partition merge_sorted(std::vector<Partition>&& parts) {
  Partition out = merge_concat(std::move(parts));
  out.stable_sort_by_key();
  return out;
}

Partition merge_reduce_by_key(std::vector<Partition>&& parts,
                              const ReduceFn& fn) {
  return merge_reduce_by_key(std::move(parts), fn, ExecContext{});
}

Partition merge_reduce_by_key(std::vector<Partition>&& parts,
                              const ReduceFn& fn, const ExecContext& ctx) {
  const std::size_t p_count = parts.size();
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  if (total == 0) return {};

  // Combined shuffle rows arrive key-sorted (combine_scatter emits runs in
  // ascending key order), so the common case merges sorted runs directly.
  const bool sorted =
      std::all_of(parts.begin(), parts.end(), keys_sorted);
  const std::size_t t_count = shards_for(ctx, total);

  if (t_count <= 1) {
    if (sorted) {
      std::vector<std::size_t> cur(p_count, 0);
      std::vector<std::size_t> end(p_count);
      for (std::size_t p = 0; p < p_count; ++p) end[p] = parts[p].size();
      Partition out;
      kway_reduce_span(parts, std::move(cur), end, fn, out);
      return out;
    }
    Partition all = merge_concat(std::move(parts));
    const std::size_t n = all.size();
    const auto ks = sorted_keys(all);

    std::size_t distinct = 1;
    for (std::size_t i = 1; i < n; ++i) {
      if (ks[i].first != ks[i - 1].first) ++distinct;
    }
    Partition out;
    out.reserve(distinct);

    Record acc;
    Record next;
    std::size_t i = 0;
    while (i < n) {
      const std::uint64_t k = ks[i].first;
      all.materialize_into(ks[i].second, acc);
      ++i;
      while (i < n && ks[i].first == k) {
        all.materialize_into(ks[i].second, next);
        fn(acc, next);
        ++i;
      }
      out.push(acc);
    }
    return out;
  }

  // Range-split parallel merge (DESIGN.md §18.3): pick t_count-1 splitter
  // keys from per-part quantile samples, cut every part at each splitter
  // with lower_bound (all copies of a key land in exactly one range), merge
  // each key range independently, and concatenate range outputs in order.
  // Ranges partition the key space, so the output — keys ascending, fn
  // applied in global encounter order per key — does not depend on the
  // splitters at all: bit-identical to the sequential merge.
  std::vector<std::vector<KeyIdx>> ksv;
  if (!sorted) {
    // Unsorted inputs: per-part stable sorted index views (built in
    // parallel). K-way consuming them in part order reproduces exactly the
    // global stable sort the sequential fallback does.
    ksv.resize(p_count);
    run_shards(ctx, p_count, [&](std::size_t p) {
      ksv[p] = sorted_keys(parts[p]);
    });
  }
  const auto key_at = [&](std::size_t p, std::size_t i) {
    return sorted ? parts[p].key(i) : ksv[p][i].first;
  };

  std::vector<std::uint64_t> cand;
  constexpr std::size_t kSamplesPerPart = 16;
  for (std::size_t p = 0; p < p_count; ++p) {
    const std::size_t sz = parts[p].size();
    if (sz == 0) continue;
    for (std::size_t j = 1; j <= kSamplesPerPart; ++j) {
      cand.push_back(key_at(p, (j * sz) / (kSamplesPerPart + 1)));
    }
  }
  std::sort(cand.begin(), cand.end());
  std::vector<std::uint64_t> splitters(t_count - 1);
  for (std::size_t j = 0; j + 1 < t_count; ++j) {
    splitters[j] = cand[(j + 1) * cand.size() / t_count];
  }

  // Boundary matrix: bnd[j][p] = first index of part p in range j.
  std::vector<std::vector<std::size_t>> bnd(t_count + 1,
                                            std::vector<std::size_t>(p_count));
  for (std::size_t p = 0; p < p_count; ++p) {
    bnd[0][p] = 0;
    bnd[t_count][p] = parts[p].size();
  }
  for (std::size_t j = 0; j + 1 < t_count; ++j) {
    for (std::size_t p = 0; p < p_count; ++p) {
      if (sorted) {
        const auto& raw = parts[p].raw_keys();
        bnd[j + 1][p] = static_cast<std::size_t>(
            std::lower_bound(raw.begin(), raw.end(), splitters[j]) -
            raw.begin());
      } else {
        const auto& ks = ksv[p];
        bnd[j + 1][p] = static_cast<std::size_t>(
            std::lower_bound(ks.begin(), ks.end(), splitters[j],
                             [](const KeyIdx& a, std::uint64_t k) {
                               return a.first < k;
                             }) -
            ks.begin());
      }
    }
  }

  std::vector<Partition> outs(t_count);
  run_shards(ctx, t_count, [&](std::size_t j) {
    // Upper-bound reserve (every input record of the range, as if all keys
    // were distinct) so per-range outputs never grow geometrically — keeps
    // parallel allocations within the batched baseline's envelope.
    std::size_t recs_upper = 0;
    std::size_t vals_upper = 0;
    for (std::size_t p = 0; p < p_count; ++p) {
      const std::size_t lo = bnd[j][p];
      const std::size_t hi = bnd[j + 1][p];
      recs_upper += hi - lo;
      const auto& pends = parts[p].raw_ends();
      if (sorted) {
        vals_upper += (hi == 0 ? 0 : pends[hi - 1]) -
                      (lo == 0 ? 0 : pends[lo - 1]);
      } else {
        for (std::size_t i = lo; i < hi; ++i) {
          const std::size_t idx = ksv[p][i].second;
          vals_upper += pends[idx] - (idx == 0 ? 0 : pends[idx - 1]);
        }
      }
    }
    outs[j].reserve(recs_upper);
    outs[j].reserve_values(vals_upper);
    if (sorted) {
      kway_reduce_span(parts, bnd[j], bnd[j + 1], fn, outs[j]);
    } else {
      kway_reduce_idx(parts, ksv, bnd[j], bnd[j + 1], fn, outs[j]);
    }
  });
  return merge_concat(std::move(outs));
}

Partition merge_group_by_key(std::vector<Partition>&& parts) {
  Partition all = merge_concat(std::move(parts));
  const std::size_t n = all.size();
  if (n == 0) return {};
  const auto ks = sorted_keys(all);

  std::size_t distinct = 1;
  for (std::size_t i = 1; i < n; ++i) {
    if (ks[i].first != ks[i - 1].first) ++distinct;
  }
  Partition out;
  out.reserve(distinct);
  out.reserve_values(all.values_size());

  Record g;
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t k = ks[i].first;
    g.key = k;
    g.values.clear();
    g.aux_bytes = 0;
    while (i < n && ks[i].first == k) {
      const std::span<const double> v = all.values(ks[i].second);
      g.values.insert(g.values.end(), v.begin(), v.end());
      g.aux_bytes += all.aux(ks[i].second);
      ++i;
    }
    out.push(g);
  }
  return out;
}

Partition merge_join(Partition&& left, Partition&& right, const JoinFn& fn,
                     bool cogroup) {
  const auto lk = sorted_keys(left);
  const auto rk = sorted_keys(right);
  Partition out;

  std::vector<Record> ls;  // reused per-key match buffers (user-fn path)
  std::vector<Record> rs;
  Record j;
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < lk.size() || b < rk.size()) {
    // Next key in the ascending union of both sides.
    std::uint64_t k;
    if (a < lk.size() && (b >= rk.size() || lk[a].first <= rk[b].first)) {
      k = lk[a].first;
    } else {
      k = rk[b].first;
    }
    const std::size_t a0 = a;
    const std::size_t b0 = b;
    while (a < lk.size() && lk[a].first == k) ++a;
    while (b < rk.size() && rk[b].first == k) ++b;

    if (!cogroup && (a == a0 || b == b0)) continue;  // inner join

    if (fn) {
      ls.clear();
      rs.clear();
      for (std::size_t t = a0; t < a; ++t) {
        ls.push_back(left.record_at(lk[t].second));
      }
      for (std::size_t t = b0; t < b; ++t) {
        rs.push_back(right.record_at(rk[t].second));
      }
      for (const auto& rec : fn(k, ls, rs)) out.push(rec);
      continue;
    }
    if (cogroup) {
      j.key = k;
      j.values.clear();
      j.aux_bytes = 0;
      for (std::size_t t = a0; t < a; ++t) {
        const std::span<const double> v = left.values(lk[t].second);
        j.values.insert(j.values.end(), v.begin(), v.end());
        j.aux_bytes += left.aux(lk[t].second);
      }
      for (std::size_t t = b0; t < b; ++t) {
        const std::span<const double> v = right.values(rk[t].second);
        j.values.insert(j.values.end(), v.begin(), v.end());
        j.aux_bytes += right.aux(rk[t].second);
      }
      out.push(j);
    } else {
      for (std::size_t t = a0; t < a; ++t) {
        const std::span<const double> lv = left.values(lk[t].second);
        const std::uint32_t la = left.aux(lk[t].second);
        for (std::size_t u = b0; u < b; ++u) {
          const std::span<const double> rv = right.values(rk[u].second);
          j.key = k;
          j.values.clear();
          j.values.reserve(lv.size() + rv.size());
          j.values.insert(j.values.end(), lv.begin(), lv.end());
          j.values.insert(j.values.end(), rv.begin(), rv.end());
          j.aux_bytes = la + right.aux(rk[u].second);
          out.push(j);
        }
      }
    }
  }
  return out;
}

}  // namespace chopper::engine::dataplane
