#include "engine/dataplane.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <utility>

namespace chopper::engine::dataplane {

namespace {

/// (key, index) pairs sorted ascending by key with ties broken by index —
/// i.e. equal keys keep their encounter order, which is what makes every
/// merge below apply the user's reduce fn in exactly the sequence the old
/// per-record hash-map implementations did. Sorting flat 16-byte pairs
/// (rather than an index permutation with indirect comparisons) keeps the
/// sort cache-resident.
using KeyIdx = std::pair<std::uint64_t, std::size_t>;

/// Stable LSD radix sort of (key, index) pairs by key. Byte planes whose
/// values are all equal are skipped, so narrow key domains cost only the
/// passes they need. Stability keeps equal keys in encounter order — the
/// same order a comparison sort with an index tie-break would produce —
/// while every pass streams memory sequentially instead of branching on
/// comparisons, which is what makes it beat std::sort on wide inputs.
void radix_sort_keys(KeyIdx* first, std::size_t n,
                     std::vector<KeyIdx>& scratch) {
  if (n < 128) {  // tiny runs: introsort's constants win
    std::sort(first, first + n);  // pair order == stable sort by key
    return;
  }
  std::array<std::array<std::uint32_t, 256>, 8> hist{};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = first[i].first;
    for (std::size_t b = 0; b < 8; ++b) ++hist[b][(k >> (8 * b)) & 0xff];
  }
  scratch.resize(n);
  KeyIdx* src = first;
  KeyIdx* dst = scratch.data();
  for (std::size_t b = 0; b < 8; ++b) {
    // A full bucket means every key shares this byte: nothing to reorder.
    if (hist[b][(src[0].first >> (8 * b)) & 0xff] == n) continue;
    std::array<std::uint32_t, 256> offs;
    std::uint32_t sum = 0;
    for (std::size_t v = 0; v < 256; ++v) {
      offs[v] = sum;
      sum += hist[b][v];
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[offs[(src[i].first >> (8 * b)) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != first) std::copy(src, src + n, first);
}

std::vector<KeyIdx> sorted_keys(const Partition& p) {
  std::vector<KeyIdx> ks(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) ks[i] = {p.key(i), i};
  std::vector<KeyIdx> scratch;
  radix_sort_keys(ks.data(), ks.size(), scratch);
  return ks;
}

bool keys_sorted(const Partition& p) {
  for (std::size_t i = 1; i < p.size(); ++i) {
    if (p.key(i) < p.key(i - 1)) return false;
  }
  return true;
}

/// K-way merge-reduce over key-sorted runs. Equivalent to stable-sorting the
/// concatenation and run-scanning it (equal keys are consumed in part order,
/// encounter order within a part), but every read advances sequentially
/// through its run — no hash table, no global sort, no gather.
Partition kway_reduce(std::vector<Partition>& parts, const ReduceFn& fn) {
  const std::size_t k_runs = parts.size();
  std::vector<std::size_t> cur(k_runs, 0);
  Partition out;
  Record acc;
  Record next;
  while (true) {
    bool any = false;
    std::uint64_t k = 0;
    for (std::size_t p = 0; p < k_runs; ++p) {
      if (cur[p] < parts[p].size() &&
          (!any || parts[p].key(cur[p]) < k)) {
        k = parts[p].key(cur[p]);
        any = true;
      }
    }
    if (!any) break;
    bool first = true;
    for (std::size_t p = 0; p < k_runs; ++p) {
      while (cur[p] < parts[p].size() && parts[p].key(cur[p]) == k) {
        if (first) {
          parts[p].materialize_into(cur[p], acc);
          first = false;
        } else {
          parts[p].materialize_into(cur[p], next);
          fn(acc, next);
        }
        ++cur[p];
      }
    }
    out.push(acc);
  }
  return out;
}

}  // namespace

void radix_scatter(const Partition& in, const Partitioner& part,
                   std::span<Partition> buckets) {
  const std::size_t n = in.size();
  if (n == 0) return;

  // Pass 1: bucket each record once and histogram record/payload counts.
  std::vector<std::uint32_t> bucket_of(n);
  std::vector<std::size_t> recs(buckets.size(), 0);
  std::vector<std::size_t> vals(buckets.size(), 0);
  BucketMemo memo(part);
  for (std::size_t i = 0; i < n; ++i) {
    const auto b = static_cast<std::uint32_t>(memo.bucket_of(in.key(i)));
    bucket_of[i] = b;
    ++recs[b];
    vals[b] += in.values(i).size();
  }

  for (std::size_t r = 0; r < buckets.size(); ++r) {
    if (recs[r] == 0) continue;
    buckets[r].reserve(buckets[r].size() + recs[r]);
    buckets[r].reserve_values(buckets[r].values_size() + vals[r]);
  }

  // Pass 2: scatter into exactly-sized arenas.
  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const double> v = in.values(i);
    buckets[bucket_of[i]].emplace(in.key(i), v.data(), v.size(), in.aux(i));
  }
}

void combine_scatter(const Partition& in, const Partitioner& part,
                     const ReduceFn& fn, std::span<Partition> buckets) {
  const std::size_t n = in.size();
  if (n == 0) return;
  const std::size_t r_count = buckets.size();

  std::vector<std::uint32_t> bucket_of(n);
  std::vector<std::size_t> counts(r_count, 0);
  BucketMemo memo(part);
  for (std::size_t i = 0; i < n; ++i) {
    const auto b = static_cast<std::uint32_t>(memo.bucket_of(in.key(i)));
    bucket_of[i] = b;
    ++counts[b];
  }

  // Stable counting sort into bucket-major (key, index) runs, then sort
  // each bucket's run by key (ties keep encounter order via the index).
  std::vector<std::size_t> offs(r_count + 1, 0);
  for (std::size_t r = 0; r < r_count; ++r) offs[r + 1] = offs[r] + counts[r];
  std::vector<KeyIdx> ks(n);
  {
    std::vector<std::size_t> cur(offs.begin(), offs.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      ks[cur[bucket_of[i]]++] = {in.key(i), i};
    }
  }

  Record acc;   // reused scratch accumulators: values.assign reuses capacity
  Record next;
  std::vector<KeyIdx> scratch;
  for (std::size_t r = 0; r < r_count; ++r) {
    const auto first = ks.begin() + static_cast<std::ptrdiff_t>(offs[r]);
    const auto last = ks.begin() + static_cast<std::ptrdiff_t>(offs[r + 1]);
    if (first == last) continue;
    radix_sort_keys(&*first, static_cast<std::size_t>(last - first), scratch);
    std::size_t distinct = 1;
    for (auto it = first + 1; it != last; ++it) {
      if (it->first != (it - 1)->first) ++distinct;
    }
    buckets[r].reserve(buckets[r].size() + distinct);

    auto it = first;
    while (it != last) {
      const std::uint64_t k = it->first;
      in.materialize_into(it->second, acc);
      ++it;
      while (it != last && it->first == k) {
        in.materialize_into(it->second, next);
        fn(acc, next);
        ++it;
      }
      buckets[r].push(acc);
    }
  }
}

Partition merge_concat(std::vector<Partition>&& parts) {
  Partition out;
  std::size_t recs = 0;
  std::size_t vals = 0;
  for (const auto& p : parts) {
    recs += p.size();
    vals += p.values_size();
  }
  out.reserve(recs);
  out.reserve_values(vals);
  for (auto& p : parts) out.absorb(std::move(p));
  return out;
}

Partition merge_sorted(std::vector<Partition>&& parts) {
  Partition out = merge_concat(std::move(parts));
  out.stable_sort_by_key();
  return out;
}

Partition merge_reduce_by_key(std::vector<Partition>&& parts,
                              const ReduceFn& fn) {
  // Combined shuffle rows arrive key-sorted (combine_scatter emits runs in
  // ascending key order), so the common case merges sorted runs directly.
  if (!parts.empty() &&
      std::all_of(parts.begin(), parts.end(), keys_sorted)) {
    return kway_reduce(parts, fn);
  }
  Partition all = merge_concat(std::move(parts));
  const std::size_t n = all.size();
  if (n == 0) return {};
  const auto ks = sorted_keys(all);

  std::size_t distinct = 1;
  for (std::size_t i = 1; i < n; ++i) {
    if (ks[i].first != ks[i - 1].first) ++distinct;
  }
  Partition out;
  out.reserve(distinct);

  Record acc;
  Record next;
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t k = ks[i].first;
    all.materialize_into(ks[i].second, acc);
    ++i;
    while (i < n && ks[i].first == k) {
      all.materialize_into(ks[i].second, next);
      fn(acc, next);
      ++i;
    }
    out.push(acc);
  }
  return out;
}

Partition merge_group_by_key(std::vector<Partition>&& parts) {
  Partition all = merge_concat(std::move(parts));
  const std::size_t n = all.size();
  if (n == 0) return {};
  const auto ks = sorted_keys(all);

  std::size_t distinct = 1;
  for (std::size_t i = 1; i < n; ++i) {
    if (ks[i].first != ks[i - 1].first) ++distinct;
  }
  Partition out;
  out.reserve(distinct);
  out.reserve_values(all.values_size());

  Record g;
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t k = ks[i].first;
    g.key = k;
    g.values.clear();
    g.aux_bytes = 0;
    while (i < n && ks[i].first == k) {
      const std::span<const double> v = all.values(ks[i].second);
      g.values.insert(g.values.end(), v.begin(), v.end());
      g.aux_bytes += all.aux(ks[i].second);
      ++i;
    }
    out.push(g);
  }
  return out;
}

Partition merge_join(Partition&& left, Partition&& right, const JoinFn& fn,
                     bool cogroup) {
  const auto lk = sorted_keys(left);
  const auto rk = sorted_keys(right);
  Partition out;

  std::vector<Record> ls;  // reused per-key match buffers (user-fn path)
  std::vector<Record> rs;
  Record j;
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < lk.size() || b < rk.size()) {
    // Next key in the ascending union of both sides.
    std::uint64_t k;
    if (a < lk.size() && (b >= rk.size() || lk[a].first <= rk[b].first)) {
      k = lk[a].first;
    } else {
      k = rk[b].first;
    }
    const std::size_t a0 = a;
    const std::size_t b0 = b;
    while (a < lk.size() && lk[a].first == k) ++a;
    while (b < rk.size() && rk[b].first == k) ++b;

    if (!cogroup && (a == a0 || b == b0)) continue;  // inner join

    if (fn) {
      ls.clear();
      rs.clear();
      for (std::size_t t = a0; t < a; ++t) {
        ls.push_back(left.record_at(lk[t].second));
      }
      for (std::size_t t = b0; t < b; ++t) {
        rs.push_back(right.record_at(rk[t].second));
      }
      for (const auto& rec : fn(k, ls, rs)) out.push(rec);
      continue;
    }
    if (cogroup) {
      j.key = k;
      j.values.clear();
      j.aux_bytes = 0;
      for (std::size_t t = a0; t < a; ++t) {
        const std::span<const double> v = left.values(lk[t].second);
        j.values.insert(j.values.end(), v.begin(), v.end());
        j.aux_bytes += left.aux(lk[t].second);
      }
      for (std::size_t t = b0; t < b; ++t) {
        const std::span<const double> v = right.values(rk[t].second);
        j.values.insert(j.values.end(), v.begin(), v.end());
        j.aux_bytes += right.aux(rk[t].second);
      }
      out.push(j);
    } else {
      for (std::size_t t = a0; t < a; ++t) {
        const std::span<const double> lv = left.values(lk[t].second);
        const std::uint32_t la = left.aux(lk[t].second);
        for (std::size_t u = b0; u < b; ++u) {
          const std::span<const double> rv = right.values(rk[u].second);
          j.key = k;
          j.values.clear();
          j.values.reserve(lv.size() + rv.size());
          j.values.insert(j.values.end(), lv.begin(), lv.end());
          j.values.insert(j.values.end(), rv.begin(), rv.end());
          j.aux_bytes = la + right.aux(rk[u].second);
          out.push(j);
        }
      }
    }
  }
  return out;
}

}  // namespace chopper::engine::dataplane
