// The engine's batched data plane (DESIGN.md §13): single-pass radix
// shuffle scatter, map-side combine, and the reduce-side wide merges.
//
// Everything here operates on the SoA Partition arena and is written to be
// bit-identical with the historical per-record implementations:
//  * scatter preserves per-bucket encounter order;
//  * combine/reduce initialize each key's accumulator from its first
//    encounter and apply the reduce fn in encounter order (stable index
//    sorts preserve it), then emit in ascending key order — exactly the
//    sequence the old hash-map + sorted-keys code produced;
//  * merges emit the same deterministic key order std::map iteration gave.
//
// Every primitive also has a parallel form (DESIGN.md §18) taking an
// ExecContext: scatter shards the input across worker threads writing
// disjoint slot ranges of pre-sized destination arenas, combine runs one
// lock-free CombineTable per bucket, and the reduce merge splits the key
// space into disjoint ranges. Per-thread partials are always merged in
// canonical (shard-id, arrival-order) order, so output is bit-identical to
// the sequential path at any thread count — digests, replay, lineage
// recovery and checkpoint/resume cannot tell the difference.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine/dataset.h"
#include "engine/partition.h"
#include "engine/partitioner.h"

namespace chopper::common {
class ThreadPool;
}

namespace chopper::engine::dataplane {

/// Inputs smaller than this run inline even when a pool is available — the
/// fan-out/join overhead beats any speedup on tiny partitions.
inline constexpr std::size_t kParallelGrain = 4096;

/// Execution context for the data-plane primitives. Default-constructed
/// (or threads == 1) means "run inline on the calling thread" — the exact
/// PR-5 sequential code path. The pool must be dedicated to the data plane
/// (the engine uses a separate pool from its task executor so a task
/// blocking in parallel_for can never deadlock against its own pool).
struct ExecContext {
  common::ThreadPool* pool = nullptr;
  std::size_t threads = 1;

  /// True when `n` records are worth fanning out.
  bool parallel(std::size_t n) const noexcept {
    return pool != nullptr && threads > 1 && n >= kParallelGrain;
  }
};

/// Memoizes Partitioner::partition_of across runs of equal keys — a single
/// branch replaces the range partitioner's binary search (and the hash mix)
/// whenever consecutive records share a key, which sorted/grouped map
/// outputs do constantly.
class BucketMemo {
 public:
  explicit BucketMemo(const Partitioner& part) noexcept : part_(part) {}

  std::size_t bucket_of(std::uint64_t key) {
    if (!valid_ || key != last_key_) {
      last_key_ = key;
      last_bucket_ = part_.partition_of(key);
      valid_ = true;
    }
    return last_bucket_;
  }

 private:
  const Partitioner& part_;
  std::uint64_t last_key_ = 0;
  std::size_t last_bucket_ = 0;
  bool valid_ = false;
};

/// Single-pass radix shuffle write: compute every record's bucket once,
/// histogram record/payload counts, reserve each destination exactly, then
/// scatter. Appends to `buckets` preserving the input's encounter order
/// within each bucket (bit-identical to per-record push).
void radix_scatter(const Partition& in, const Partitioner& part,
                   std::span<Partition> buckets);
/// Parallel form: input sharded into `ctx.threads` contiguous chunks; every
/// destination arena is pre-sized from per-(shard, bucket) histograms and
/// shards scatter into disjoint slot ranges computed by offset prefix sums
/// (no locks, no record copies, no intermediate arenas). Shard s's records
/// precede shard s+1's within each bucket, so per-bucket order is exactly
/// the input's encounter order — bit-identical to the sequential path.
void radix_scatter(const Partition& in, const Partitioner& part,
                   std::span<Partition> buckets, const ExecContext& ctx);

/// Map-side combine + scatter for reduceByKey: pre-merges `in` per (bucket,
/// key) with `fn` before anything reaches the shuffle, emitting each
/// bucket's combined records in ascending key order. Accumulators
/// initialize from the key's first encounter and `fn` applies in encounter
/// order — the same sequence (and therefore the same floats) as the
/// historical unordered_map implementation.
void combine_scatter(const Partition& in, const Partitioner& part,
                     const ReduceFn& fn, std::span<Partition> buckets);
/// Parallel form: bucket assignment and the bucket-major stable counting
/// sort shard across threads (disjoint output ranges, shard-order = input
/// order), then buckets combine independently — each through a fixed-size
/// open-addressing CombineTable (combine_table.h) with spill-to-overflow on
/// load-factor breach. Accumulation per key follows global encounter order
/// and emission is ascending by key: bit-identical at any thread count.
void combine_scatter(const Partition& in, const Partitioner& part,
                     const ReduceFn& fn, std::span<Partition> buckets,
                     const ExecContext& ctx);

// -- reduce-side wide merges (start of the consuming stage) ------------------

/// reduceByKey merge: sort-based run scan over the concatenated inputs,
/// emitting one record per key in ascending key order. No hash map, no
/// second per-key lookup.
Partition merge_reduce_by_key(std::vector<Partition>&& parts,
                              const ReduceFn& fn);
/// Parallel form: the key space is split into disjoint ranges at sampled
/// splitter keys; each range k-way merges independently and range outputs
/// concatenate in ascending-range order. Because ranges partition the key
/// space, the result is independent of the splitters — bit-identical to
/// the sequential merge at any thread count.
Partition merge_reduce_by_key(std::vector<Partition>&& parts,
                              const ReduceFn& fn, const ExecContext& ctx);

/// groupByKey merge: concatenates every key's payload values (and sums
/// aux_bytes) in encounter order, emitting ascending by key.
Partition merge_group_by_key(std::vector<Partition>&& parts);

/// join / cogroup merge over the ascending union of both sides' keys.
Partition merge_join(Partition&& left, Partition&& right, const JoinFn& fn,
                     bool cogroup);

/// Plain concatenation (repartition / union).
Partition merge_concat(std::vector<Partition>&& parts);

/// Concatenation + stable sort by key (sortByKey).
Partition merge_sorted(std::vector<Partition>&& parts);

}  // namespace chopper::engine::dataplane
