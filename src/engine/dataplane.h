// The engine's batched data plane (DESIGN.md §13): single-pass radix
// shuffle scatter, map-side combine, and the reduce-side wide merges.
//
// Everything here operates on the SoA Partition arena and is written to be
// bit-identical with the historical per-record implementations:
//  * scatter preserves per-bucket encounter order;
//  * combine/reduce initialize each key's accumulator from its first
//    encounter and apply the reduce fn in encounter order (stable index
//    sorts preserve it), then emit in ascending key order — exactly the
//    sequence the old hash-map + sorted-keys code produced;
//  * merges emit the same deterministic key order std::map iteration gave.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine/dataset.h"
#include "engine/partition.h"
#include "engine/partitioner.h"

namespace chopper::engine::dataplane {

/// Memoizes Partitioner::partition_of across runs of equal keys — a single
/// branch replaces the range partitioner's binary search (and the hash mix)
/// whenever consecutive records share a key, which sorted/grouped map
/// outputs do constantly.
class BucketMemo {
 public:
  explicit BucketMemo(const Partitioner& part) noexcept : part_(part) {}

  std::size_t bucket_of(std::uint64_t key) {
    if (!valid_ || key != last_key_) {
      last_key_ = key;
      last_bucket_ = part_.partition_of(key);
      valid_ = true;
    }
    return last_bucket_;
  }

 private:
  const Partitioner& part_;
  std::uint64_t last_key_ = 0;
  std::size_t last_bucket_ = 0;
  bool valid_ = false;
};

/// Single-pass radix shuffle write: compute every record's bucket once,
/// histogram record/payload counts, reserve each destination exactly, then
/// scatter. Appends to `buckets` preserving the input's encounter order
/// within each bucket (bit-identical to per-record push).
void radix_scatter(const Partition& in, const Partitioner& part,
                   std::span<Partition> buckets);

/// Map-side combine + scatter for reduceByKey: pre-merges `in` per (bucket,
/// key) with `fn` before anything reaches the shuffle, emitting each
/// bucket's combined records in ascending key order. Accumulators
/// initialize from the key's first encounter and `fn` applies in encounter
/// order — the same sequence (and therefore the same floats) as the
/// historical unordered_map implementation.
void combine_scatter(const Partition& in, const Partitioner& part,
                     const ReduceFn& fn, std::span<Partition> buckets);

// -- reduce-side wide merges (start of the consuming stage) ------------------

/// reduceByKey merge: sort-based run scan over the concatenated inputs,
/// emitting one record per key in ascending key order. No hash map, no
/// second per-key lookup.
Partition merge_reduce_by_key(std::vector<Partition>&& parts,
                              const ReduceFn& fn);

/// groupByKey merge: concatenates every key's payload values (and sums
/// aux_bytes) in encounter order, emitting ascending by key.
Partition merge_group_by_key(std::vector<Partition>&& parts);

/// join / cogroup merge over the ascending union of both sides' keys.
Partition merge_join(Partition&& left, Partition&& right, const JoinFn& fn,
                     bool cogroup);

/// Plain concatenation (repartition / union).
Partition merge_concat(std::vector<Partition>&& parts);

/// Concatenation + stable sort by key (sortByKey).
Partition merge_sorted(std::vector<Partition>&& parts);

}  // namespace chopper::engine::dataplane
