#include "engine/dataset.h"

#include <atomic>
#include <cassert>
#include <utility>

namespace chopper::engine {

namespace {
std::atomic<std::size_t> g_next_dataset_id{1};
}

const char* to_string(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kSource:
      return "source";
    case OpKind::kMap:
      return "map";
    case OpKind::kMapValues:
      return "mapValues";
    case OpKind::kFilter:
      return "filter";
    case OpKind::kMapPartitions:
      return "mapPartitions";
    case OpKind::kSample:
      return "sample";
    case OpKind::kReduceByKey:
      return "reduceByKey";
    case OpKind::kGroupByKey:
      return "groupByKey";
    case OpKind::kJoin:
      return "join";
    case OpKind::kCoGroup:
      return "cogroup";
    case OpKind::kRepartition:
      return "repartition";
    case OpKind::kSortByKey:
      return "sortByKey";
    case OpKind::kFlatMap:
      return "flatMap";
    case OpKind::kUnion:
      return "union";
  }
  return "?";
}

bool is_wide(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kReduceByKey:
    case OpKind::kGroupByKey:
    case OpKind::kJoin:
    case OpKind::kCoGroup:
    case OpKind::kRepartition:
    case OpKind::kSortByKey:
    case OpKind::kUnion:
      return true;
    default:
      return false;
  }
}

DatasetPtr Dataset::make(OpKind op, std::string label,
                         std::vector<DatasetPtr> parents) {
  auto ds = DatasetPtr(new Dataset());
  ds->id_ = g_next_dataset_id.fetch_add(1, std::memory_order_relaxed);
  ds->op_ = op;
  ds->label_ = std::move(label);
  ds->parents_ = std::move(parents);
  return ds;
}

DatasetPtr Dataset::source(std::string label, std::size_t partitions,
                           SourceFn fn) {
  assert(partitions > 0);
  assert(fn);
  auto ds = make(OpKind::kSource, std::move(label), {});
  ds->source_partitions_ = partitions;
  ds->source_fn_ = std::move(fn);
  return ds;
}

DatasetPtr Dataset::map(std::string label, MapFn fn, double work_per_record) {
  auto ds = make(OpKind::kMap, std::move(label), {shared_from_this()});
  ds->map_fn_ = std::move(fn);
  ds->work_per_record_ = work_per_record;
  return ds;
}

DatasetPtr Dataset::map_values(std::string label, MapFn fn,
                               double work_per_record) {
  auto ds = make(OpKind::kMapValues, std::move(label), {shared_from_this()});
  ds->map_fn_ = std::move(fn);
  ds->work_per_record_ = work_per_record;
  ds->preserves_partitioning_ = true;
  return ds;
}

DatasetPtr Dataset::flat_map(std::string label, FlatMapFn fn,
                             double work_per_record) {
  auto ds = make(OpKind::kFlatMap, std::move(label), {shared_from_this()});
  ds->flat_map_fn_ = std::move(fn);
  ds->work_per_record_ = work_per_record;
  return ds;
}

DatasetPtr Dataset::filter(std::string label, FilterFn fn,
                           double work_per_record) {
  auto ds = make(OpKind::kFilter, std::move(label), {shared_from_this()});
  ds->filter_fn_ = std::move(fn);
  ds->work_per_record_ = work_per_record;
  ds->preserves_partitioning_ = true;
  return ds;
}

DatasetPtr Dataset::map_partitions(std::string label, MapPartitionsFn fn,
                                   double work_per_record,
                                   bool preserves_partitioning) {
  auto ds = make(OpKind::kMapPartitions, std::move(label), {shared_from_this()});
  ds->map_partitions_fn_ = std::move(fn);
  ds->work_per_record_ = work_per_record;
  ds->preserves_partitioning_ = preserves_partitioning;
  return ds;
}

DatasetPtr Dataset::sample(std::string label, double fraction,
                           std::uint64_t seed) {
  assert(fraction >= 0.0 && fraction <= 1.0);
  auto ds = make(OpKind::kSample, std::move(label), {shared_from_this()});
  ds->sample_fraction_ = fraction;
  ds->sample_seed_ = seed;
  ds->work_per_record_ = 0.2;
  ds->preserves_partitioning_ = true;
  return ds;
}

DatasetPtr Dataset::reduce_by_key(std::string label, ReduceFn fn,
                                  ShuffleRequest req, double work_per_record) {
  auto ds = make(OpKind::kReduceByKey, std::move(label), {shared_from_this()});
  ds->reduce_fn_ = std::move(fn);
  ds->shuffle_req_ = req;
  ds->work_per_record_ = work_per_record;
  return ds;
}

DatasetPtr Dataset::group_by_key(std::string label, ShuffleRequest req) {
  auto ds = make(OpKind::kGroupByKey, std::move(label), {shared_from_this()});
  ds->shuffle_req_ = req;
  ds->work_per_record_ = 1.0;
  return ds;
}

DatasetPtr Dataset::join_with(const DatasetPtr& right, std::string label,
                              ShuffleRequest req, JoinFn fn) {
  auto ds = make(OpKind::kJoin, std::move(label), {shared_from_this(), right});
  ds->shuffle_req_ = req;
  ds->join_fn_ = std::move(fn);
  // Hash-table build + probe + output materialization per matched record.
  ds->work_per_record_ = 3.0;
  return ds;
}

DatasetPtr Dataset::cogroup_with(const DatasetPtr& right, std::string label,
                                 ShuffleRequest req, JoinFn fn) {
  auto ds =
      make(OpKind::kCoGroup, std::move(label), {shared_from_this(), right});
  ds->shuffle_req_ = req;
  ds->join_fn_ = std::move(fn);
  ds->work_per_record_ = 1.2;
  return ds;
}

DatasetPtr Dataset::repartition(std::string label, ShuffleRequest req) {
  auto ds = make(OpKind::kRepartition, std::move(label), {shared_from_this()});
  ds->shuffle_req_ = req;
  ds->work_per_record_ = 0.3;
  return ds;
}

DatasetPtr Dataset::sort_by_key(std::string label, ShuffleRequest req) {
  if (!req.kind) req.kind = PartitionerKind::kRange;
  auto ds = make(OpKind::kSortByKey, std::move(label), {shared_from_this()});
  ds->shuffle_req_ = req;
  ds->work_per_record_ = 1.5;
  return ds;
}

DatasetPtr Dataset::union_with(const DatasetPtr& other, std::string label,
                               ShuffleRequest req) {
  auto ds = make(OpKind::kUnion, std::move(label), {shared_from_this(), other});
  ds->shuffle_req_ = req;
  ds->work_per_record_ = 0.2;
  return ds;
}

DatasetPtr Dataset::distinct(std::string label, ShuffleRequest req) {
  return reduce_by_key(
      std::move(label), [](Record&, const Record&) { /* keep first */ }, req,
      /*work_per_record=*/0.8);
}

DatasetPtr Dataset::cache() {
  cached_ = true;
  return shared_from_this();
}

bool Dataset::preserves_partitioning() const noexcept {
  return preserves_partitioning_;
}

}  // namespace chopper::engine
