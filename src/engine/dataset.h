// The logical plan: an RDD-like lineage DAG of Datasets.
//
// A Dataset is an immutable description of a distributed collection — a
// node in a DAG whose edges are narrow (map, filter, mapValues, sample,
// mapPartitions) or wide (reduceByKey, groupByKey, join, cogroup,
// repartition, sortByKey) dependencies. Nothing executes until an action
// (Engine::count/collect/...) submits a job; the scheduler then cuts the
// lineage into stages at wide dependencies, exactly like Spark's
// DAGScheduler (paper Fig. 1).
//
// Each operator carries a `work_per_record` weight so the simulated cost
// model can price compute-heavy operators (e.g. KMeans distance evaluation)
// more than trivial projections.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "engine/partition.h"
#include "engine/partitioner.h"
#include "engine/record.h"

namespace chopper::engine {

class Dataset;
using DatasetPtr = std::shared_ptr<Dataset>;

enum class OpKind {
  kSource,
  kMap,
  kMapValues,     ///< key-preserving map: keeps any existing partitioning
  kFlatMap,       ///< 0..n output records per input record
  kFilter,
  kMapPartitions, ///< whole-partition transform (key-preserving not assumed)
  kSample,        ///< Bernoulli sample, key-preserving
  kReduceByKey,
  kGroupByKey,
  kJoin,
  kCoGroup,
  kRepartition,
  kSortByKey,
  kUnion,         ///< wide in this engine: both inputs are re-bucketed
};

const char* to_string(OpKind kind) noexcept;
bool is_wide(OpKind kind) noexcept;

/// Generates the records of source partition `index` out of `count`.
/// Must be deterministic in (index, count) for reproducibility.
using SourceFn = std::function<Partition(std::size_t index, std::size_t count)>;
using MapFn = std::function<Record(const Record&)>;
using FlatMapFn = std::function<std::vector<Record>(const Record&)>;
using FilterFn = std::function<bool(const Record&)>;
using MapPartitionsFn = std::function<Partition(Partition&&)>;
/// Merges `next` into the accumulator `acc` (same key).
using ReduceFn = std::function<void(Record& acc, const Record& next)>;
/// Produces join output records for one key given both sides' matches.
using JoinFn = std::function<std::vector<Record>(
    std::uint64_t key, std::span<const Record> left,
    std::span<const Record> right)>;

/// Partitioning request attached to a wide operator. The scheduler resolves
/// it against the active PartitionPlan (CHOPPER's config file) at run time;
/// `user_fixed` marks schemes the user pinned explicitly, which CHOPPER must
/// leave intact (paper Sec. III-C) unless repartition-insertion pays off.
struct ShuffleRequest {
  std::optional<PartitionerKind> kind;       ///< none -> default (hash)
  std::optional<std::size_t> num_partitions; ///< none -> default parallelism
  bool user_fixed = false;
};

class Dataset : public std::enable_shared_from_this<Dataset> {
 public:
  // -- construction -------------------------------------------------------
  /// Leaf dataset: `partitions` generator splits. `label` feeds the stage
  /// signature, so give semantically distinct sources distinct labels.
  static DatasetPtr source(std::string label, std::size_t partitions,
                           SourceFn fn);

  // -- narrow transformations ---------------------------------------------
  DatasetPtr map(std::string label, MapFn fn, double work_per_record = 1.0);
  DatasetPtr map_values(std::string label, MapFn fn,
                        double work_per_record = 1.0);
  DatasetPtr flat_map(std::string label, FlatMapFn fn,
                      double work_per_record = 1.0);
  DatasetPtr filter(std::string label, FilterFn fn,
                    double work_per_record = 0.5);
  DatasetPtr map_partitions(std::string label, MapPartitionsFn fn,
                            double work_per_record = 1.0,
                            bool preserves_partitioning = false);
  /// Deterministic Bernoulli sample (seeded by label + partition index).
  DatasetPtr sample(std::string label, double fraction, std::uint64_t seed);

  // -- wide transformations -----------------------------------------------
  DatasetPtr reduce_by_key(std::string label, ReduceFn fn,
                           ShuffleRequest req = {},
                           double work_per_record = 1.0);
  DatasetPtr group_by_key(std::string label, ShuffleRequest req = {});
  DatasetPtr join_with(const DatasetPtr& right, std::string label,
                       ShuffleRequest req = {}, JoinFn fn = nullptr);
  DatasetPtr cogroup_with(const DatasetPtr& right, std::string label,
                          ShuffleRequest req = {}, JoinFn fn = nullptr);
  DatasetPtr repartition(std::string label, ShuffleRequest req);
  DatasetPtr sort_by_key(std::string label, ShuffleRequest req = {});
  /// Set union (bag semantics: concatenates both inputs). Spark's union is
  /// a narrow concatenation of partition lists; this engine re-buckets both
  /// sides instead (a repartitioning union), which keeps the single-pipeline
  /// stage model. Equivalent output, one extra shuffle.
  DatasetPtr union_with(const DatasetPtr& other, std::string label,
                        ShuffleRequest req = {});
  /// Keep one record per key (sugar over reduceByKey keep-first).
  DatasetPtr distinct(std::string label, ShuffleRequest req = {});

  /// Mark for caching: the first materialization is retained by the block
  /// manager and later jobs read it instead of recomputing the lineage.
  DatasetPtr cache();

  // -- introspection -------------------------------------------------------
  std::size_t id() const noexcept { return id_; }
  OpKind op() const noexcept { return op_; }
  const std::string& label() const noexcept { return label_; }
  const std::vector<DatasetPtr>& parents() const noexcept { return parents_; }
  bool cached() const noexcept { return cached_; }
  double work_per_record() const noexcept { return work_per_record_; }
  const ShuffleRequest& shuffle_request() const noexcept { return shuffle_req_; }
  std::size_t source_partitions() const noexcept { return source_partitions_; }
  bool preserves_partitioning() const noexcept;

  // Closures (empty when not applicable to the op kind).
  const SourceFn& source_fn() const noexcept { return source_fn_; }
  const MapFn& map_fn() const noexcept { return map_fn_; }
  const FlatMapFn& flat_map_fn() const noexcept { return flat_map_fn_; }
  const FilterFn& filter_fn() const noexcept { return filter_fn_; }
  const MapPartitionsFn& map_partitions_fn() const noexcept {
    return map_partitions_fn_;
  }
  const ReduceFn& reduce_fn() const noexcept { return reduce_fn_; }
  const JoinFn& join_fn() const noexcept { return join_fn_; }
  double sample_fraction() const noexcept { return sample_fraction_; }
  std::uint64_t sample_seed() const noexcept { return sample_seed_; }

 private:
  Dataset() = default;
  static DatasetPtr make(OpKind op, std::string label,
                         std::vector<DatasetPtr> parents);

  std::size_t id_ = 0;
  OpKind op_ = OpKind::kSource;
  std::string label_;
  std::vector<DatasetPtr> parents_;
  bool cached_ = false;
  double work_per_record_ = 1.0;
  ShuffleRequest shuffle_req_;
  std::size_t source_partitions_ = 0;

  SourceFn source_fn_;
  MapFn map_fn_;
  FlatMapFn flat_map_fn_;
  FilterFn filter_fn_;
  MapPartitionsFn map_partitions_fn_;
  ReduceFn reduce_fn_;
  JoinFn join_fn_;
  double sample_fraction_ = 1.0;
  std::uint64_t sample_seed_ = 0;
  bool preserves_partitioning_ = false;
};

}  // namespace chopper::engine
