#include "engine/engine.h"

#include <algorithm>
#include <thread>

#include "obs/event_log.h"

namespace chopper::engine {

Engine::Engine(ClusterSpec cluster, EngineOptions options)
    : cluster_(std::move(cluster)),
      options_(options),
      timeline_(cluster_.num_nodes(), cluster_.total_slots(), [&] {
        std::uint64_t mem = 0;
        for (const auto& n : cluster_.nodes()) mem += n.memory_bytes;
        return mem;
      }()) {
  // Interleaved slot ownership: round-robin over nodes, each node
  // contributing one slot per round while it still has cores left. Placement
  // `node_for` walks this list, which spreads consecutive partitions across
  // nodes proportionally to their slot counts.
  const std::size_t max_cores =
      std::max_element(cluster_.nodes().begin(), cluster_.nodes().end(),
                       [](const NodeSpec& a, const NodeSpec& b) {
                         return a.cores < b.cores;
                       })
          ->cores;
  for (std::size_t round = 0; round < max_cores; ++round) {
    for (std::size_t n = 0; n < cluster_.num_nodes(); ++n) {
      if (round < cluster_.node(n).cores) slot_owner_.push_back(n);
    }
  }

  std::size_t threads = options_.host_threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(2, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<common::ThreadPool>(threads);

  dp_threads_ = options_.data_plane_threads;
  if (dp_threads_ == 0) {
    dp_threads_ = std::max<std::size_t>(2, std::thread::hardware_concurrency());
  }
  if (dp_threads_ > 1) {
    dp_pool_ = std::make_unique<common::ThreadPool>(dp_threads_);
  }

  mem_ledger_.init(cluster_.num_nodes());
  health_.init(cluster_.num_nodes(), options_.health);
  if (options_.memory.enforce) {
    // Budgets are enforced in *raw* (host-side) bytes: node memory, which is
    // modeled-scale, is converted down by data_scale; the managers report
    // events to the ledger scaled back up so all telemetry reads in modeled
    // bytes (comparable to NodeSpec::memory_bytes).
    const double ds = options_.cost_model.data_scale;
    const double report_scale = 1.0 / ds;
    std::vector<std::uint64_t> cache_cap(cluster_.num_nodes());
    std::vector<std::uint64_t> shuffle_cap(cluster_.num_nodes());
    for (std::size_t n = 0; n < cluster_.num_nodes(); ++n) {
      const double mem = static_cast<double>(cluster_.node(n).memory_bytes) * ds;
      cache_cap[n] =
          static_cast<std::uint64_t>(mem * options_.memory.storage_fraction);
      shuffle_cap[n] =
          static_cast<std::uint64_t>(mem * options_.memory.shuffle_fraction);
    }
    block_manager_.configure_budget(std::move(cache_cap), &mem_ledger_,
                                    report_scale);
    shuffles_.configure_budget(std::move(shuffle_cap), &mem_ledger_,
                               report_scale);
  }
  reset_failure_state();
}

Engine::~Engine() = default;

void Engine::reset_failure_state() {
  node_alive_.assign(cluster_.num_nodes(), 1);
  failure_state_.assign(options_.failure_schedule.failures.size(),
                        FailureState{});
  corruption_fired_.assign(options_.corruption_schedule.corruptions.size(), 0);
}

std::size_t Engine::alive_node_count() const noexcept {
  std::size_t n = 0;
  for (const char a : node_alive_) n += a != 0;
  return n;
}

std::size_t Engine::node_for(std::size_t partition,
                             std::size_t num_partitions) const {
  (void)num_partitions;
  const bool excl = health_.any_excluded();
  if (!excl && alive_node_count() == cluster_.num_nodes()) {
    return slot_owner_[partition % slot_owner_.size()];
  }
  // Some nodes are dead or health-excluded: re-interleave placement over the
  // remaining slots so recovered and retried tasks land away from the
  // trouble. Exclusion is advisory — when it would leave nothing placeable,
  // fall back to ignoring it (only death can make a job unschedulable).
  std::size_t placeable_slots = 0;
  for (const std::size_t owner : slot_owner_) {
    placeable_slots += node_alive_[owner] && !(excl && health_.excluded(owner));
  }
  const bool honor_exclusions = excl && placeable_slots > 0;
  if (!honor_exclusions) {
    placeable_slots = 0;
    for (const std::size_t owner : slot_owner_) {
      placeable_slots += node_alive_[owner];
    }
  }
  if (placeable_slots == 0) {
    throw JobAbortedError("node_for: no surviving node to place tasks on");
  }
  std::size_t want = partition % placeable_slots;
  for (const std::size_t owner : slot_owner_) {
    if (!node_alive_[owner]) continue;
    if (honor_exclusions && health_.excluded(owner)) continue;
    if (want == 0) return owner;
    --want;
  }
  return slot_owner_.front();  // unreachable
}

JobResult Engine::count(const DatasetPtr& ds, std::string job_name) {
  return run_job(ds, /*collect_records=*/false, std::move(job_name));
}

JobResult Engine::collect(const DatasetPtr& ds, std::string job_name) {
  return run_job(ds, /*collect_records=*/true, std::move(job_name));
}

JobResult Engine::run_controlled(const DatasetPtr& ds, bool collect_records,
                                 std::string job_name,
                                 const JobControl* control) {
  return run_job(ds, collect_records, std::move(job_name), control);
}

JobPlan Engine::describe_job(const DatasetPtr& ds) const {
  return build_job_plan(ds, block_manager_);
}

void Engine::reset_metrics() {
  metrics_.clear();
  timeline_.clear();
  mem_ledger_.clear();
  health_.clear();
  sim_clock_ = 0.0;
  next_job_id_.store(0);
  next_stage_id_.store(0);
  // Failure triggers key off the simulated clock / stage counter, so a clock
  // reset also re-arms the schedule and revives dead nodes.
  reset_failure_state();
}

void Engine::uncache_all() { block_manager_.clear(); }

void Engine::set_event_log(obs::EventLog* log) {
  event_log_ = log;
  block_manager_.set_event_log(log);
  shuffles_.set_event_log(log);
  if (log != nullptr && log->enabled()) {
    obs::Event e;
    e.kind = obs::EventKind::kClusterInfo;
    e.sim = sim_clock_;
    e.name = "cluster";
    e.count = cluster_.num_nodes();
    for (const NodeSpec& n : cluster_.nodes()) {
      e.list.push_back(n.cores);
      e.list2.push_back(n.memory_bytes);
    }
    log->emit(std::move(e));
  }
}

}  // namespace chopper::engine
