// Engine: the minispark execution context (SparkContext analogue).
//
// Owns the cluster description, cost model, thread pool, shuffle and block
// managers, metrics registry and the resource timeline. Actions (count /
// collect) submit jobs: the lineage is cut into stages, stages execute in
// topological order with a global barrier between them, and every stage
// produces a StageMetrics row.
//
// Tasks run *for real* on a host thread pool (real records through real
// partitioners); their measured work is then priced by the CostModel onto
// the configured cluster to produce deterministic simulated times. See
// DESIGN.md §5.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "engine/block_manager.h"
#include "engine/cluster.h"
#include "engine/cost_model.h"
#include "engine/dataset.h"
#include "engine/metrics.h"
#include "engine/plan.h"
#include "engine/shuffle.h"

namespace chopper::engine {

/// Spark-3-AQE-style runtime partition coalescing: when no plan provider
/// overrides a stage's scheme, size the reduce side from the *observed* map
/// output volume instead of the static default. Included as the modern
/// baseline CHOPPER should be compared against (it post-dates the paper).
struct AdaptiveCoalescing {
  bool enabled = false;
  /// Reduce partitions = clamp(ceil(map_output_bytes / target), min, max).
  /// Bytes are compared after CostModel::data_scale rescaling, so the target
  /// is expressed at the modeled system's scale (Spark's default is 64 MiB).
  std::uint64_t target_partition_bytes = 64ULL << 20;
  std::size_t min_partitions = 1;
  std::size_t max_partitions = 10'000;
};

/// Deterministic fault injection for the simulated cluster. Failures never
/// corrupt results (the real computation always completes); they model the
/// *time* cost of Spark's task retries: each failed attempt burns
/// `failed_attempt_fraction` of the task's duration before the retry.
struct FaultInjection {
  double task_failure_prob = 0.0;  ///< per-attempt failure probability
  std::size_t max_attempts = 4;    ///< attempts before the job aborts
  double failed_attempt_fraction = 0.6;
  std::uint64_t seed = 0x5eed;
};

/// Speculative execution (spark.speculation): a task whose duration exceeds
/// `multiplier` x the stage median is assumed to get a backup copy; its
/// effective duration becomes min(original, median * multiplier + launch).
/// This is what bounds straggler damage from skewed partitions.
struct Speculation {
  bool enabled = false;
  double multiplier = 1.5;
};

struct EngineOptions {
  /// Default number of partitions when neither the operator nor the active
  /// partition plan specifies one (spark.default.parallelism). The paper's
  /// vanilla baseline uses 300.
  std::size_t default_parallelism = 300;
  CostModel cost_model;
  /// Host threads used to actually execute tasks (0 = hardware concurrency).
  std::size_t host_threads = 0;
  /// Record per-second utilization samples (Fig. 11-14).
  bool record_timeline = true;
  AdaptiveCoalescing adaptive;
  FaultInjection faults;
  Speculation speculation;
};

struct JobResult {
  std::size_t job_id = 0;
  std::string name;
  double sim_time_s = 0.0;
  double wall_time_s = 0.0;
  std::uint64_t count = 0;           ///< for count actions
  std::vector<Record> records;       ///< for collect actions
  std::vector<std::size_t> stage_ids;
};

class Engine {
 public:
  explicit Engine(ClusterSpec cluster, EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // -- actions -------------------------------------------------------------
  /// Count records of `ds` (materializes lineage as needed).
  JobResult count(const DatasetPtr& ds, std::string job_name = "count");
  /// Collect all records of `ds` to the driver.
  JobResult collect(const DatasetPtr& ds, std::string job_name = "collect");

  // -- partition planning (the CHOPPER hook) --------------------------------
  void set_plan_provider(std::shared_ptr<PlanProvider> provider) {
    plan_provider_ = std::move(provider);
  }
  std::shared_ptr<PlanProvider> plan_provider() const { return plan_provider_; }

  /// Dry-run: the stage DAG the next job over `ds` would produce, without
  /// executing anything. CHOPPER's optimizer uses this for Algorithm 3.
  JobPlan describe_job(const DatasetPtr& ds) const;

  // -- state ----------------------------------------------------------------
  const ClusterSpec& cluster() const noexcept { return cluster_; }
  const EngineOptions& options() const noexcept { return options_; }
  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }
  ResourceTimeline& timeline() noexcept { return timeline_; }
  BlockManager& block_manager() noexcept { return block_manager_; }

  /// Current simulated time (advances as jobs run).
  double sim_now() const noexcept { return sim_clock_; }

  /// Node index a partition p of a P-partition stage is placed on:
  /// deterministic, interleaved proportional to node slot counts.
  std::size_t node_for(std::size_t partition, std::size_t num_partitions) const;

  /// Clear metrics, timeline and the simulated clock (cache is kept so
  /// back-to-back experiment runs can reuse generated inputs explicitly).
  void reset_metrics();

  /// Drop all cached datasets.
  void uncache_all();

  /// Implementation detail of run_job (defined in scheduler.cc); public so
  /// file-local helpers there can name it.
  struct JobContext;

 private:
  JobResult run_job(const DatasetPtr& root, bool collect_records,
                    std::string job_name);

  ClusterSpec cluster_;
  EngineOptions options_;
  std::vector<std::size_t> slot_owner_;  ///< interleaved node index per slot
  std::unique_ptr<common::ThreadPool> pool_;
  ShuffleManager shuffles_;
  BlockManager block_manager_;
  MetricsRegistry metrics_;
  ResourceTimeline timeline_;
  std::shared_ptr<PlanProvider> plan_provider_;
  InsertedRepartitions inserted_repartitions_;
  double sim_clock_ = 0.0;
  std::size_t next_job_id_ = 0;
  std::size_t next_stage_id_ = 0;
};

}  // namespace chopper::engine
