// Engine: the minispark execution context (SparkContext analogue).
//
// Owns the cluster description, cost model, thread pool, shuffle and block
// managers, metrics registry and the resource timeline. Actions (count /
// collect) submit jobs: the lineage is cut into stages, stages execute in
// topological order with a global barrier between them, and every stage
// produces a StageMetrics row.
//
// Tasks run *for real* on a host thread pool (real records through real
// partitioners); their measured work is then priced by the CostModel onto
// the configured cluster to produce deterministic simulated times. See
// DESIGN.md §5.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "engine/block_manager.h"
#include "engine/cluster.h"
#include "engine/cost_model.h"
#include "engine/dataplane.h"
#include "engine/dataset.h"
#include "engine/fault.h"
#include "engine/health.h"
#include "engine/metrics.h"
#include "engine/plan.h"
#include "engine/shuffle.h"

namespace chopper::obs {
class EventLog;
}

namespace chopper::engine {

class CheckpointHook;  // engine/resume.h
struct ResumeLedger;   // engine/resume.h

/// Spark-3-AQE-style runtime partition coalescing: when no plan provider
/// overrides a stage's scheme, size the reduce side from the *observed* map
/// output volume instead of the static default. Included as the modern
/// baseline CHOPPER should be compared against (it post-dates the paper).
struct AdaptiveCoalescing {
  bool enabled = false;
  /// Reduce partitions = clamp(ceil(map_output_bytes / target), min, max).
  /// Bytes are compared after CostModel::data_scale rescaling, so the target
  /// is expressed at the modeled system's scale (Spark's default is 64 MiB).
  std::uint64_t target_partition_bytes = 64ULL << 20;
  std::size_t min_partitions = 1;
  std::size_t max_partitions = 10'000;
};

/// Deterministic fault injection for the simulated cluster. Failures never
/// corrupt results (the real computation always completes); they model the
/// *time* cost of Spark's task retries: each failed attempt burns
/// `failed_attempt_fraction` of the task's duration before the retry.
struct FaultInjection {
  double task_failure_prob = 0.0;  ///< per-attempt failure probability
  std::size_t max_attempts = 4;    ///< attempts before the job aborts
  double failed_attempt_fraction = 0.6;
  std::uint64_t seed = 0x5eed;
};

/// Speculative execution (spark.speculation): a task whose duration exceeds
/// `multiplier` x the stage median is assumed to get a backup copy; its
/// effective duration becomes min(original, median * multiplier + launch).
/// This is what bounds straggler damage from skewed partitions.
struct Speculation {
  bool enabled = false;
  double multiplier = 1.5;
};

/// Enforced per-node memory budgets (DESIGN.md §11). When `enforce` is on,
/// node memory stops being a purely-synthetic pricing input: the
/// BlockManager LRU-evicts unpinned cached partitions past the storage
/// budget (healed on demand via PR-1 lineage recovery), the ShuffleManager
/// spills map-output rows past the shuffle budget to a simulated disk tier,
/// and a task whose working set exceeds the per-slot budget times
/// `hard_ceiling` kills its stage attempt with an OOM. After
/// `oom_repartition_after` consecutive OOMed attempts the scheduler retries
/// the stage with `P' = ceil(P * growth_factor)` partitions — degraded but
/// alive instead of dead. All byte comparisons happen in modeled bytes
/// (raw bytes / CostModel::data_scale) against NodeSpec::memory_bytes.
struct MemoryLimits {
  bool enforce = false;
  /// OOM when a task's modeled working set exceeds
  /// (memory_bytes / cores) * hard_ceiling. The spill penalty starts at
  /// spill_fraction of the same per-slot budget, so spill < ceiling models
  /// the "slow then dead" progression of a real executor.
  double hard_ceiling = 1.0;
  /// Fraction of node memory available to cached blocks (storage tier).
  double storage_fraction = 0.5;
  /// Fraction of node memory available to in-memory shuffle rows.
  double shuffle_fraction = 0.3;
  /// Consecutive OOMed attempts of one stage before the scheduler grows the
  /// stage's partition count instead of retrying at the same P.
  std::size_t oom_repartition_after = 2;
  /// Partition growth on adaptive repartition: P' = ceil(P * growth_factor).
  double growth_factor = 1.5;
};

struct EngineOptions {
  /// Default number of partitions when neither the operator nor the active
  /// partition plan specifies one (spark.default.parallelism). The paper's
  /// vanilla baseline uses 300.
  std::size_t default_parallelism = 300;
  CostModel cost_model;
  /// Host threads used to actually execute tasks (0 = hardware concurrency).
  std::size_t host_threads = 0;
  /// Worker threads for the data plane's sharded scatter / combine / merge
  /// primitives (DESIGN.md §18). 1 = run them inline on the task's thread
  /// (the PR-5 sequential path); 0 = hardware concurrency. They run on a
  /// pool separate from the task executor, so a task blocking in a parallel
  /// primitive can never deadlock against its own pool. Results are
  /// bit-identical at any value — only wall time changes.
  std::size_t data_plane_threads = 1;
  /// Record per-second utilization samples (Fig. 11-14).
  bool record_timeline = true;
  /// Map-side combine for reduceByKey (Spark's combiner, DESIGN.md §13):
  /// pre-merges map output per (bucket, key) before it reaches the shuffle,
  /// shrinking shuffle bytes. Final results are identical either way; off
  /// routes all reduction to the reduce-side merge.
  bool map_side_combine = true;
  AdaptiveCoalescing adaptive;
  FaultInjection faults;
  /// Whole-node failures with real data loss + lineage recovery (fault.h).
  FailureSchedule failure_schedule;
  /// Enforced memory budgets: eviction, spill-to-disk, OOM (DESIGN.md §11).
  MemoryLimits memory;
  /// Deterministic task-OOM injection (fault.h), orthogonal to `memory`.
  OomSchedule oom_schedule;
  /// Transient shuffle-fetch flakiness with backoff retry (DESIGN.md §14).
  FlakySchedule flaky_schedule;
  /// Deterministic silent corruption; arms block integrity checksums.
  CorruptionSchedule corruption_schedule;
  /// Compute/verify block checksums even without a corruption schedule
  /// (costs a hash pass per published row; detection-only, nothing to heal).
  bool integrity_checksums = false;
  /// Node health scoreboard / placement-exclusion policy (fault.h).
  NodeHealthPolicy health;
  Speculation speculation;
};

struct JobResult {
  std::size_t job_id = 0;
  std::string name;
  double sim_time_s = 0.0;
  double wall_time_s = 0.0;
  std::uint64_t count = 0;           ///< for count actions
  std::vector<Record> records;       ///< for collect actions
  std::vector<std::size_t> stage_ids;

  // Fault-tolerance telemetry (mirrors the JobMetrics row).
  std::size_t stage_attempts = 0;     ///< total stage executions (>= #stages)
  std::size_t recomputed_tasks = 0;   ///< tasks replayed from lineage
  std::uint64_t lost_bytes = 0;       ///< data destroyed by node failures
  std::uint64_t recomputed_bytes = 0; ///< bytes regenerated by replay
  double recovery_time_s = 0.0;       ///< sim seconds spent recovering

  // Memory telemetry (mirrors the JobMetrics row; modeled bytes).
  std::size_t oom_count = 0;          ///< stage attempts killed by OOM
  std::uint64_t evicted_bytes = 0;    ///< cached bytes LRU-evicted
  std::uint64_t spilled_bytes = 0;    ///< bytes pushed to the disk tier
  std::uint64_t peak_resident_bytes = 0;  ///< max per-node resident estimate

  // Transient-fault telemetry (mirrors the JobMetrics row; DESIGN.md §14).
  std::size_t fetch_retries = 0;      ///< flaky fetches retried in place
  std::uint64_t refetched_bytes = 0;  ///< bytes re-transferred by retries
  std::size_t checksum_failures = 0;  ///< corrupted pieces detected + healed
  std::size_t node_exclusions = 0;    ///< health exclusions fired

  // Checkpoint-resume telemetry (mirrors the JobMetrics row; DESIGN.md §16).
  // Provenance, not results — identity digests exclude these, like
  // wall_time_s.
  std::size_t resumed_stages = 0;     ///< stages adopted from the WAL
  std::uint64_t replayed_events = 0;  ///< WAL events decoded during recovery
  std::uint64_t restored_bytes = 0;   ///< block-file payload bytes restored
  double recovery_wall_s = 0.0;       ///< host seconds spent recovering

  // Cache telemetry (mirrors the JobMetrics row; DESIGN.md §17).
  std::size_t cache_hits = 0;         ///< cached partitions read resident
  std::size_t cache_misses = 0;       ///< cached partitions healed before read
  std::uint64_t recompute_saved_bytes = 0;  ///< bytes served from residency
  std::size_t evictions_lru = 0;      ///< evictions chosen by LRU order
  std::size_t evictions_cost = 0;     ///< evictions chosen by planner priority
};

/// A job aborted (injected-fault retry budget exhausted, stage-attempt bound
/// hit, or no surviving node to run on). The engine's shuffle outputs for the
/// job are released and a partial JobMetrics row (failed = true) is recorded
/// before this is thrown, so the engine stays usable for further jobs.
class JobAbortedError : public std::runtime_error {
 public:
  explicit JobAbortedError(const std::string& what) : std::runtime_error(what) {}
};

/// A stage exhausted its attempt budget with every attempt killed by an
/// out-of-memory task (enforced MemoryLimits ceiling or injected
/// OomSchedule) even after adaptive repartition. Derives from
/// JobAbortedError so every existing abort/cleanup path (shuffle release,
/// failed JobMetrics row, JobServer error propagation) applies unchanged.
class TaskOomError : public JobAbortedError {
 public:
  explicit TaskOomError(const std::string& what) : JobAbortedError(what) {}
};

/// Cache-plan hook (implemented by cacheplan::CachePlanner, DESIGN.md §17).
/// Called under the engine's planning lock right after a job's stage DAG is
/// built, before any stage executes; the returned snapshot is merged into
/// the BlockManager so budget enforcement during the job follows the
/// planner's priorities. Implementations must be thread-safe (concurrent
/// service jobs plan serially, but adaptive re-scores run on job threads).
class CacheAdvisor {
 public:
  virtual ~CacheAdvisor() = default;
  virtual CachePlanSnapshot advise(const JobPlan& plan,
                                   const std::string& job_name) = 0;
};

/// Arbitrates the simulated cluster's time between concurrently running jobs
/// (implemented by service::SlotLedger). A job that finished executing a
/// stage for real presents the stage's simulated makespan and is granted an
/// exclusive window [start, start + duration) of cluster time; windows of
/// different jobs never overlap, which is how concurrent jobs contend for
/// the same simulated slots.
class VirtualTimeArbiter {
 public:
  virtual ~VirtualTimeArbiter() = default;
  /// Block until job `token` is scheduled; returns the granted window start
  /// (>= earliest). The caller charges [start, start + duration).
  virtual double acquire(std::size_t token, double earliest,
                         double duration) = 0;
};

/// Per-job execution control used by the multi-tenant job service. When a
/// control block is passed to Engine::run_controlled the job runs against
/// its own virtual clock (seeded from `start_time`) instead of the engine's
/// shared `sim_clock_`, asks `arbiter` for cluster windows at every stage
/// barrier, and honors asynchronous cancellation / virtual-time deadlines
/// at stage boundaries via the PR-1 abort path (JobAbortedError + shuffle
/// release + failed JobMetrics row).
struct JobControl {
  VirtualTimeArbiter* arbiter = nullptr;  ///< may be null (solo virtual clock)
  std::size_t token = 0;                  ///< arbiter job token
  double start_time = 0.0;                ///< initial virtual clock value
  double deadline = -1.0;                 ///< absolute virtual deadline (<0: none)
  const std::atomic<bool>* cancel = nullptr;  ///< set by JobHandle::cancel
  /// Fixed job id for metrics rows (the service assigns submission order);
  /// kSize_max means "use the engine's own counter".
  std::size_t job_id = static_cast<std::size_t>(-1);
};

class Engine {
 public:
  explicit Engine(ClusterSpec cluster, EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // -- actions -------------------------------------------------------------
  /// Count records of `ds` (materializes lineage as needed).
  JobResult count(const DatasetPtr& ds, std::string job_name = "count");
  /// Collect all records of `ds` to the driver.
  JobResult collect(const DatasetPtr& ds, std::string job_name = "collect");

  /// Service entry point: run a job under an external control block (virtual
  /// clock, slot arbiter, cancellation). Multiple run_controlled jobs may be
  /// in flight concurrently on different threads; they must not use a
  /// failure schedule (node-death state is engine-global). With a null
  /// control this is exactly count()/collect().
  JobResult run_controlled(const DatasetPtr& ds, bool collect_records,
                           std::string job_name, const JobControl* control);

  // -- partition planning (the CHOPPER hook) --------------------------------
  void set_plan_provider(std::shared_ptr<PlanProvider> provider) {
    plan_provider_ = std::move(provider);
  }
  std::shared_ptr<PlanProvider> plan_provider() const { return plan_provider_; }

  /// Dry-run: the stage DAG the next job over `ds` would produce, without
  /// executing anything. CHOPPER's optimizer uses this for Algorithm 3.
  JobPlan describe_job(const DatasetPtr& ds) const;

  // -- state ----------------------------------------------------------------
  const ClusterSpec& cluster() const noexcept { return cluster_; }
  const EngineOptions& options() const noexcept { return options_; }
  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }
  ResourceTimeline& timeline() noexcept { return timeline_; }
  BlockManager& block_manager() noexcept { return block_manager_; }
  const ShuffleManager& shuffle_manager() const noexcept { return shuffles_; }
  /// Per-node memory event counters (evictions, spills, OOMs, resident
  /// peaks) for the current run; cleared by reset_metrics().
  const MemoryLedger& memory_ledger() const noexcept { return mem_ledger_; }
  /// Per-node failure scoreboard (fetch/task/checksum strikes, exclusion
  /// state) for the current run; cleared by reset_metrics().
  const NodeHealth& node_health() const noexcept { return health_; }

  /// Is node n currently alive (failure schedule may have killed it)?
  bool node_alive(std::size_t n) const { return node_alive_.at(n) != 0; }
  std::size_t alive_node_count() const noexcept;

  /// Current simulated time (advances as jobs run).
  double sim_now() const noexcept { return sim_clock_; }

  /// Attach a structured event log (obs/event_log.h); nullptr detaches. The
  /// engine and its shuffle/block managers emit lifecycle events through it;
  /// with no log (or no sink attached to it) the instrumentation is a single
  /// relaxed-atomic check per site. Not owned — the log must outlive the
  /// engine or be detached first. Emits a kClusterInfo event describing the
  /// cluster when a non-null, enabled log is attached.
  void set_event_log(obs::EventLog* log);
  obs::EventLog* event_log() const noexcept { return event_log_; }

  /// Attach a commit-time checkpoint observer (engine/resume.h); nullptr
  /// detaches. Called on the committing job's driver thread right before
  /// each stage's kStageEnd event, so persisted payloads are durable before
  /// the WAL marks the stage committed. Not owned.
  void set_checkpoint_hook(CheckpointHook* hook) noexcept { ckpt_hook_ = hook; }
  CheckpointHook* checkpoint_hook() const noexcept { return ckpt_hook_; }

  /// Attach a cache-plan advisor (src/cacheplan); nullptr detaches. Consulted
  /// under plan_mu_ after each job plan is built; its snapshot is merged into
  /// the block manager before the job's first stage runs. Shared ownership:
  /// the advisor may outlive the caller's handle (service wiring).
  void set_cache_advisor(std::shared_ptr<CacheAdvisor> advisor) {
    cache_advisor_ = std::move(advisor);
  }
  const std::shared_ptr<CacheAdvisor>& cache_advisor() const noexcept {
    return cache_advisor_;
  }

  /// Arm resume state decoded from a checkpoint WAL (engine/resume.h):
  /// ledger->jobs[i] feeds the job that draws engine id i, letting an
  /// unmodified driver re-run its job sequence while committed stages are
  /// adopted instead of re-executed. Not owned; nullptr disarms. Classic
  /// (non-service) jobs only — controlled jobs ignore the ledger.
  void set_resume_ledger(ResumeLedger* ledger) noexcept {
    resume_ledger_ = ledger;
  }

  /// Node index a partition p of a P-partition stage is placed on:
  /// deterministic, interleaved proportional to node slot counts. Dead nodes
  /// are skipped (placement re-interleaves over surviving slots); throws
  /// JobAbortedError when no node survives.
  std::size_t node_for(std::size_t partition, std::size_t num_partitions) const;

  /// Clear metrics, timeline and the simulated clock (cache is kept so
  /// back-to-back experiment runs can reuse generated inputs explicitly).
  void reset_metrics();

  /// Drop all cached datasets.
  void uncache_all();

  /// Implementation detail of run_job (defined in scheduler.cc); public so
  /// file-local helpers there can name it.
  struct JobContext;

  /// Execution context handed to the data-plane primitives (DESIGN.md §18).
  /// Default-constructed (inline/sequential) unless
  /// EngineOptions::data_plane_threads asked for a pool.
  dataplane::ExecContext data_plane_ctx() const noexcept {
    return dataplane::ExecContext{dp_pool_.get(), dp_threads_};
  }

 private:
  friend class JobRunner;  ///< stage execution + recovery (scheduler.cc)

  JobResult run_job(const DatasetPtr& root, bool collect_records,
                    std::string job_name, const JobControl* control = nullptr);

  /// Per-failure runtime state for the deterministic failure schedule.
  struct FailureState {
    bool fired = false;
    bool rejoined = false;
    double rejoin_at = -1.0;  ///< absolute sim time; <0 when not pending
  };

  void reset_failure_state();

  ClusterSpec cluster_;
  EngineOptions options_;
  std::vector<std::size_t> slot_owner_;  ///< interleaved node index per slot
  std::unique_ptr<common::ThreadPool> pool_;
  /// Data-plane worker pool (null when data_plane_threads resolves to 1).
  /// Separate from pool_: tasks block in parallel_for on this pool, so
  /// sharing the task pool could deadlock when every task thread waits.
  std::unique_ptr<common::ThreadPool> dp_pool_;
  std::size_t dp_threads_ = 1;
  ShuffleManager shuffles_;
  BlockManager block_manager_;
  MemoryLedger mem_ledger_;
  MetricsRegistry metrics_;
  ResourceTimeline timeline_;
  std::shared_ptr<PlanProvider> plan_provider_;
  std::shared_ptr<CacheAdvisor> cache_advisor_;
  InsertedRepartitions inserted_repartitions_;
  /// Guards plan building (inserted_repartitions_ is shared mutable state)
  /// when service jobs submit concurrently.
  std::mutex plan_mu_;
  std::vector<char> node_alive_;
  std::vector<FailureState> failure_state_;
  /// corruption_fired_[i]: CorruptionSchedule entry i already flipped its
  /// byte this run (injections fire once, like node failures).
  std::vector<char> corruption_fired_;
  NodeHealth health_;
  double sim_clock_ = 0.0;
  obs::EventLog* event_log_ = nullptr;  ///< not owned; may be null
  CheckpointHook* ckpt_hook_ = nullptr;    ///< not owned; may be null
  ResumeLedger* resume_ledger_ = nullptr;  ///< not owned; may be null
  /// Atomic: concurrent service jobs draw ids without a lock.
  std::atomic<std::size_t> next_job_id_{0};
  std::atomic<std::size_t> next_stage_id_{0};
};

}  // namespace chopper::engine
