// Fault model types shared by the engine layers.
//
// The fault taxonomy has three tiers (see DESIGN.md §9 and §14):
//  * fail-stop — FailureSchedule (here): whole-node failures that actually
//    destroy the node's shuffle map outputs and cached partitions. The
//    scheduler detects the loss at the next stage barrier (a fetch failure),
//    replays the producer lineage for exactly the lost partitions on
//    surviving nodes, and prices the recomputation into the simulated
//    makespan — Spark's lineage-based recovery. FaultInjection (engine.h) is
//    the degenerate duration-only cousin: failures never lose data, they
//    only burn simulated time.
//  * transient — FlakySchedule (here): shuffle fetches fail per
//    (node, stage, attempt) and are retried in place with deterministic
//    exponential backoff; only after `max_fetch_attempts` does the failure
//    escalate to a stage-level fetch-failure retry.
//  * corruption — CorruptionSchedule (here): stored bytes flip silently;
//    block checksums detect the damage at the next read barrier and lineage
//    heal recomputes exactly the poisoned pieces.
// NodeHealthPolicy configures the scoreboard that turns any of these
// failures into placement exclusion with backoff re-admission (Spark's
// excludeOnFailure); see engine/health.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chopper::engine {

/// What a node failure destroyed (shuffle rows and/or cached partitions).
struct LossReport {
  std::size_t lost_tasks = 0;    ///< map tasks / cached partitions dropped
  std::uint64_t lost_bytes = 0;  ///< bytes of data dropped

  LossReport& operator+=(const LossReport& o) {
    lost_tasks += o.lost_tasks;
    lost_bytes += o.lost_bytes;
    return *this;
  }
};

/// One scheduled, deterministic node failure. A failure fires at a stage
/// barrier when its trigger has been reached: either the simulated clock
/// passed `at_sim_time`, or the global stage counter reached `at_stage_id`
/// (the node dies immediately before that stage starts). A failure whose
/// sim-time trigger falls inside a running stage's window aborts that stage
/// attempt mid-flight when the dead node held its inputs or ran its tasks
/// (the fetch-failure path); otherwise it takes effect at the next barrier.
struct NodeFailure {
  std::size_t node = 0;
  double at_sim_time = -1.0;        ///< <0: disabled
  std::ptrdiff_t at_stage_id = -1;  ///< global stage id; <0: disabled
  /// >=0: the node rejoins (empty — its data stays lost) this many simulated
  /// seconds after dying; <0: never rejoins.
  double rejoin_after_s = -1.0;
};

/// Deterministic node-failure schedule. Non-empty schedules switch the
/// engine into fault-tolerant execution: shuffle reads copy instead of
/// consume and map outputs are retained until job end so lineage replay has
/// surviving data to work from.
struct FailureSchedule {
  std::vector<NodeFailure> failures;
  /// Bound on executions of one stage (initial attempt + fetch-failure
  /// retries) before the job aborts — Spark's spark.stage.maxConsecutiveAttempts.
  std::size_t max_stage_attempts = 4;

  bool enabled() const noexcept { return !failures.empty(); }
};

/// One injected task OOM: the stage with global id `stage_id` fails its
/// first `attempts` executions with a TaskOomError attributed to task
/// `task` (clamped to the stage's partition count). Injection is independent
/// of EngineOptions::MemoryLimits — it deterministically exercises the
/// OOM-retry / adaptive-repartition path without having to engineer real
/// memory pressure.
struct OomInjection {
  std::size_t stage_id = 0;  ///< global stage id (StageMetrics::stage_id)
  std::size_t attempts = 1;  ///< number of leading attempts that OOM
  std::size_t task = 0;      ///< victim task index (clamped)
};

/// Deterministic OOM fault injector, sibling of FailureSchedule. A non-empty
/// schedule (like an enforced memory budget) switches the engine into
/// retained-shuffle execution so stage attempts can be retried.
struct OomSchedule {
  std::vector<OomInjection> ooms;

  bool enabled() const noexcept { return !ooms.empty(); }
};

/// Transient shuffle-fetch flakiness. Whether the i-th fetch attempt of a
/// (stage attempt, reduce task, source node) segment fails is drawn from a
/// PRNG seeded by hashing exactly that tuple, so a run is reproducible
/// bit-for-bit from (seed, schedule) alone and a retried stage attempt draws
/// a fresh, independent failure sequence. Each failed fetch burns
/// `timeout_s` plus an exponential backoff of simulated time, then re-pays
/// the segment transfer (the re-transferred bytes are surfaced as
/// `refetched_bytes`, never double-counted into shuffle-read totals). When
/// one segment fails `max_fetch_attempts` times in a row, the stage attempt
/// is abandoned as a fetch failure: the source node's map outputs are
/// deregistered (Spark removes a fetch-failed executor's map statuses) and
/// the existing stage-retry path heals them via lineage replay on healthier
/// nodes. Enabling the schedule switches the engine into retained-shuffle
/// execution like the other retry-capable fault models.
struct FlakySchedule {
  /// Per-fetch-attempt failure probability for remote segments served by a
  /// flaky node. 0 disables the schedule.
  double fetch_failure_prob = 0.0;
  std::uint64_t seed = 0xf1a4;
  /// Consecutive failed fetches of one segment before the stage attempt is
  /// abandoned (spark.shuffle.io.maxRetries).
  std::size_t max_fetch_attempts = 3;
  /// Backoff before retry i (1-based): min(base * mult^(i-1), max) simulated
  /// seconds (spark.shuffle.io.retryWait, exponentialized).
  double backoff_base_s = 0.05;
  double backoff_mult = 2.0;
  double backoff_max_s = 2.0;
  /// Simulated time a failed fetch burns before it is declared dead.
  double timeout_s = 0.1;
  /// Restrict flakiness to these source nodes (empty: every node is flaky).
  std::vector<std::size_t> nodes;

  bool enabled() const noexcept { return fetch_failure_prob > 0.0; }
  bool node_flaky(std::size_t n) const noexcept {
    if (nodes.empty()) return true;
    for (const std::size_t x : nodes) {
      if (x == n) return true;
    }
    return false;
  }
  double backoff_s(std::size_t retry) const noexcept {  // retry is 1-based
    double b = backoff_base_s;
    for (std::size_t i = 1; i < retry; ++i) b *= backoff_mult;
    return b < backoff_max_s ? b : backoff_max_s;
  }
};

/// One deterministic silent-corruption injection: flip one byte of stored
/// data after it is published, leaving its recorded checksum stale. Fires at
/// most once per engine run (Engine tracks fired state like node failures),
/// so detection → heal → recompute converges instead of re-poisoning.
struct CorruptionInjection {
  /// Target kind: a shuffle map row or a cached block.
  enum class Target { kShuffleRow, kCachedBlock };
  Target target = Target::kShuffleRow;
  /// kShuffleRow: global stage id of the *producer* (the corruption fires
  /// when that stage commits its map output). Ignored for kCachedBlock.
  std::size_t stage_id = 0;
  /// kCachedBlock: Dataset::id of the cached materialization (fires when the
  /// block store commits it). Ignored for kShuffleRow.
  std::size_t dataset_id = 0;
  /// Victim map row / cached partition (clamped to the available count).
  std::size_t task = 0;
  /// Which stored byte to flip, taken modulo the victim's payload size.
  std::size_t byte_offset = 0;
};

/// Deterministic corruption injector. A non-empty schedule arms block
/// integrity checksums on shuffle map outputs and cached partitions and
/// switches the engine into retained-shuffle execution (detection triggers
/// the same lineage heal as a node failure, scoped to the poisoned pieces).
struct CorruptionSchedule {
  std::vector<CorruptionInjection> corruptions;

  bool enabled() const noexcept { return !corruptions.empty(); }
};

/// Node health exclusion policy (Spark's excludeOnFailure): a node that
/// accumulates `exclude_after` strikes (fetch failures, task failures,
/// checksum mismatches) is excluded from task placement. Exclusion is
/// advisory — placement falls back to excluded nodes rather than aborting
/// when nothing else is alive — and temporary: the node is re-admitted after
/// a backoff that doubles with each repeat exclusion. Strikes are recorded
/// whenever any fault model is active; exclusion only ever changes behavior
/// once a strike exists, so fault-free runs are byte-identical with the
/// policy on or off.
struct NodeHealthPolicy {
  bool exclude_enabled = true;
  /// Strikes (since the last re-admission) that trigger exclusion.
  std::size_t exclude_after = 3;
  /// Re-admission backoff: first exclusion lasts `readmit_after_s` simulated
  /// seconds, doubling (times `readmit_backoff_mult`) per repeat exclusion,
  /// capped at `readmit_max_s`.
  double readmit_after_s = 30.0;
  double readmit_backoff_mult = 2.0;
  double readmit_max_s = 480.0;
};

}  // namespace chopper::engine
