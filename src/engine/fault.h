// Fault model types shared by the engine layers.
//
// Two orthogonal fault models coexist (see DESIGN.md §9):
//  * FaultInjection (engine.h): duration-level task retries — failures never
//    lose data, they only burn simulated time.
//  * FailureSchedule (here): whole-node failures that actually destroy the
//    node's shuffle map outputs and cached partitions. The scheduler detects
//    the loss at the next stage barrier (a fetch failure), replays the
//    producer lineage for exactly the lost partitions on surviving nodes,
//    and prices the recomputation into the simulated makespan — Spark's
//    lineage-based recovery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chopper::engine {

/// What a node failure destroyed (shuffle rows and/or cached partitions).
struct LossReport {
  std::size_t lost_tasks = 0;    ///< map tasks / cached partitions dropped
  std::uint64_t lost_bytes = 0;  ///< bytes of data dropped

  LossReport& operator+=(const LossReport& o) {
    lost_tasks += o.lost_tasks;
    lost_bytes += o.lost_bytes;
    return *this;
  }
};

/// One scheduled, deterministic node failure. A failure fires at a stage
/// barrier when its trigger has been reached: either the simulated clock
/// passed `at_sim_time`, or the global stage counter reached `at_stage_id`
/// (the node dies immediately before that stage starts). A failure whose
/// sim-time trigger falls inside a running stage's window aborts that stage
/// attempt mid-flight when the dead node held its inputs or ran its tasks
/// (the fetch-failure path); otherwise it takes effect at the next barrier.
struct NodeFailure {
  std::size_t node = 0;
  double at_sim_time = -1.0;        ///< <0: disabled
  std::ptrdiff_t at_stage_id = -1;  ///< global stage id; <0: disabled
  /// >=0: the node rejoins (empty — its data stays lost) this many simulated
  /// seconds after dying; <0: never rejoins.
  double rejoin_after_s = -1.0;
};

/// Deterministic node-failure schedule. Non-empty schedules switch the
/// engine into fault-tolerant execution: shuffle reads copy instead of
/// consume and map outputs are retained until job end so lineage replay has
/// surviving data to work from.
struct FailureSchedule {
  std::vector<NodeFailure> failures;
  /// Bound on executions of one stage (initial attempt + fetch-failure
  /// retries) before the job aborts — Spark's spark.stage.maxConsecutiveAttempts.
  std::size_t max_stage_attempts = 4;

  bool enabled() const noexcept { return !failures.empty(); }
};

/// One injected task OOM: the stage with global id `stage_id` fails its
/// first `attempts` executions with a TaskOomError attributed to task
/// `task` (clamped to the stage's partition count). Injection is independent
/// of EngineOptions::MemoryLimits — it deterministically exercises the
/// OOM-retry / adaptive-repartition path without having to engineer real
/// memory pressure.
struct OomInjection {
  std::size_t stage_id = 0;  ///< global stage id (StageMetrics::stage_id)
  std::size_t attempts = 1;  ///< number of leading attempts that OOM
  std::size_t task = 0;      ///< victim task index (clamped)
};

/// Deterministic OOM fault injector, sibling of FailureSchedule. A non-empty
/// schedule (like an enforced memory budget) switches the engine into
/// retained-shuffle execution so stage attempts can be retried.
struct OomSchedule {
  std::vector<OomInjection> ooms;

  bool enabled() const noexcept { return !ooms.empty(); }
};

}  // namespace chopper::engine
