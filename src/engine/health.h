// Node health scoreboard: per-node failure counters feeding placement
// exclusion with backoff re-admission (Spark's excludeOnFailure; see
// DESIGN.md §14 and NodeHealthPolicy in fault.h).
//
// The scheduler records a strike for every fetch failure, task failure (OOM
// kill) and checksum mismatch it attributes to a node. `exclude_after`
// strikes exclude the node: Engine::node_for skips it like a dead node, so
// retried attempts, lineage replays and subsequent stages land elsewhere.
// Exclusion is advisory (placement falls back to excluded nodes when no
// healthy node remains) and temporary: `sweep`, called at every stage
// barrier, re-admits nodes whose backoff expired — each repeat exclusion
// backs off longer, up to a cap.
//
// Thread safety: counters are mutex-guarded (service-mode jobs record OOM
// strikes concurrently); the exclusion set is mirrored into an atomic
// bitmask so the placement hot path (`excluded`/`any_excluded`, called per
// task per attempt) stays lock-free. Nodes beyond index 63 are counted but
// never excluded — far beyond the simulated clusters this engine models.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "engine/fault.h"

namespace chopper::engine {

/// Why a strike was recorded (kept per-node for telemetry).
enum class HealthStrike : std::uint8_t { kFetch, kTask, kChecksum };

struct NodeHealthStats {
  std::size_t fetch_failures = 0;
  std::size_t task_failures = 0;
  std::size_t checksum_failures = 0;
  std::size_t exclusion_count = 0;  ///< times this node has been excluded
  bool excluded = false;
  double readmit_at = -1.0;  ///< absolute sim time; <0 when not excluded

  std::size_t strikes() const noexcept {
    return fetch_failures + task_failures + checksum_failures;
  }
};

class NodeHealth {
 public:
  void init(std::size_t num_nodes, NodeHealthPolicy policy) {
    std::lock_guard lock(mu_);
    policy_ = policy;
    nodes_.assign(num_nodes, NodeHealthStats{});
    strikes_since_admit_.assign(num_nodes, 0);
    excluded_mask_.store(0, std::memory_order_release);
  }

  /// Record one strike at simulated time `now`. Returns true when this
  /// strike transitioned the node to excluded (the caller emits the event).
  bool record(std::size_t node, HealthStrike kind, double now) {
    std::lock_guard lock(mu_);
    if (node >= nodes_.size()) return false;
    NodeHealthStats& st = nodes_[node];
    switch (kind) {
      case HealthStrike::kFetch: ++st.fetch_failures; break;
      case HealthStrike::kTask: ++st.task_failures; break;
      case HealthStrike::kChecksum: ++st.checksum_failures; break;
    }
    if (!policy_.exclude_enabled || st.excluded || node >= 64) return false;
    if (++strikes_since_admit_[node] < policy_.exclude_after) return false;
    st.excluded = true;
    ++st.exclusion_count;
    double backoff = policy_.readmit_after_s;
    for (std::size_t i = 1; i < st.exclusion_count; ++i) {
      backoff *= policy_.readmit_backoff_mult;
    }
    if (backoff > policy_.readmit_max_s) backoff = policy_.readmit_max_s;
    st.readmit_at = now + backoff;
    excluded_mask_.fetch_or(std::uint64_t{1} << node,
                            std::memory_order_acq_rel);
    return true;
  }

  /// Re-admit nodes whose backoff expired; returns them (for kNodeReadmitted
  /// events). Called at stage barriers.
  std::vector<std::size_t> sweep(double now) {
    std::lock_guard lock(mu_);
    std::vector<std::size_t> readmitted;
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      NodeHealthStats& st = nodes_[n];
      if (st.excluded && now >= st.readmit_at) {
        st.excluded = false;
        st.readmit_at = -1.0;
        strikes_since_admit_[n] = 0;
        excluded_mask_.fetch_and(~(std::uint64_t{1} << n),
                                 std::memory_order_acq_rel);
        readmitted.push_back(n);
      }
    }
    return readmitted;
  }

  bool any_excluded() const noexcept {
    return excluded_mask_.load(std::memory_order_acquire) != 0;
  }
  bool excluded(std::size_t node) const noexcept {
    if (node >= 64) return false;
    return (excluded_mask_.load(std::memory_order_acquire) >> node) & 1u;
  }
  std::size_t excluded_count() const noexcept {
    std::uint64_t m = excluded_mask_.load(std::memory_order_acquire);
    std::size_t c = 0;
    while (m) {
      m &= m - 1;
      ++c;
    }
    return c;
  }

  std::vector<NodeHealthStats> snapshot() const {
    std::lock_guard lock(mu_);
    return nodes_;
  }

  /// Zero every counter and exclusion, keeping node count and policy.
  void clear() {
    std::lock_guard lock(mu_);
    for (auto& n : nodes_) n = NodeHealthStats{};
    std::fill(strikes_since_admit_.begin(), strikes_since_admit_.end(), 0);
    excluded_mask_.store(0, std::memory_order_release);
  }

 private:
  mutable std::mutex mu_;
  NodeHealthPolicy policy_;
  std::vector<NodeHealthStats> nodes_;
  std::vector<std::size_t> strikes_since_admit_;
  std::atomic<std::uint64_t> excluded_mask_{0};
};

}  // namespace chopper::engine
