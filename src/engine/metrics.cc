#include "engine/metrics.h"

#include <algorithm>
#include <cmath>

namespace chopper::engine {

double StageMetrics::task_skew() const {
  if (tasks.empty()) return 1.0;
  double sum = 0.0, mx = 0.0;
  for (const auto& t : tasks) {
    sum += t.duration();
    mx = std::max(mx, t.duration());
  }
  const double mean = sum / static_cast<double>(tasks.size());
  return mean > 0.0 ? mx / mean : 1.0;
}

void ResourceTimeline::ensure(double t_end) const {
  const auto need = static_cast<std::size_t>(std::ceil(t_end)) + 1;
  if (cpu_busy_s_.size() < need) {
    cpu_busy_s_.resize(need, 0.0);
    net_bytes_.resize(need, 0.0);
    transactions_.resize(need, 0.0);
    mem_byte_seconds_.resize(need, 0.0);
  }
}

namespace {
/// Spread `amount` over [start, end) into per-second buckets.
void spread(std::vector<double>& buckets, double start, double end,
            double amount) {
  if (end <= start || amount <= 0.0) return;
  const double rate = amount / (end - start);
  auto s = static_cast<std::size_t>(start);
  while (start < end) {
    const double next = std::min(end, static_cast<double>(s + 1));
    buckets[s] += rate * (next - start);
    start = next;
    ++s;
  }
}
}  // namespace

void ResourceTimeline::add_cpu_busy(double start, double end) {
  if (end <= start) return;
  std::lock_guard lock(mu_);
  ensure(end);
  spread(cpu_busy_s_, start, end, end - start);
}

void ResourceTimeline::add_network(double start, double end,
                                   std::uint64_t bytes) {
  if (bytes == 0) return;
  if (end <= start) end = start + 1e-6;
  std::lock_guard lock(mu_);
  ensure(end);
  spread(net_bytes_, start, end, static_cast<double>(bytes));
}

void ResourceTimeline::add_transactions(double t, std::uint64_t count) {
  std::lock_guard lock(mu_);
  ensure(t);
  transactions_[static_cast<std::size_t>(t)] += static_cast<double>(count);
}

void ResourceTimeline::add_memory(double start, double end,
                                  std::uint64_t bytes) {
  if (end <= start || bytes == 0) return;
  std::lock_guard lock(mu_);
  ensure(end);
  spread(mem_byte_seconds_, start, end,
         static_cast<double>(bytes) * (end - start));
}

std::vector<ResourceTimeline::Sample> ResourceTimeline::samples() const {
  // Approximate MTU-sized packets for the packets/s series (paper Fig. 13).
  constexpr double kPacketBytes = 1500.0;
  std::lock_guard lock(mu_);
  std::vector<Sample> out;
  out.reserve(cpu_busy_s_.size());
  for (std::size_t s = 0; s < cpu_busy_s_.size(); ++s) {
    Sample smp;
    smp.t = static_cast<double>(s);
    smp.cpu_pct = total_slots_ > 0
                      ? 100.0 * cpu_busy_s_[s] / static_cast<double>(total_slots_)
                      : 0.0;
    smp.mem_pct = total_memory_ > 0
                      ? 100.0 * mem_byte_seconds_[s] /
                            static_cast<double>(total_memory_)
                      : 0.0;
    smp.packets_per_s = net_bytes_[s] / kPacketBytes;
    smp.transactions_per_s = transactions_[s];
    out.push_back(smp);
  }
  return out;
}

void ResourceTimeline::clear() {
  std::lock_guard lock(mu_);
  cpu_busy_s_.clear();
  net_bytes_.clear();
  transactions_.clear();
  mem_byte_seconds_.clear();
}

double MetricsRegistry::total_sim_time() const {
  std::lock_guard lock(mu_);
  double t = 0.0;
  for (const auto& j : jobs_) t += j.sim_time_s;
  return t;
}

}  // namespace chopper::engine
