// Runtime metrics: the raw material CHOPPER's statistics collector consumes.
//
// Every executed stage produces a StageMetrics row with its signature,
// input size, partition scheme, simulated and wall execution time, shuffle
// read/write bytes and the per-task time distribution (for skew analysis).
// A ResourceTimeline accumulates per-simulated-second utilization samples
// (CPU slot occupancy, memory, network bytes, block-store transactions) to
// reproduce the paper's Fig. 11-14.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/dataset.h"
#include "engine/partitioner.h"

namespace chopper::engine {

struct TaskMetrics {
  std::size_t task_index = 0;
  std::size_t node = 0;
  double sim_start = 0.0;
  double sim_end = 0.0;
  double compute_s = 0.0;     ///< CPU portion of the task
  double fetch_s = 0.0;       ///< shuffle fetch portion
  std::size_t attempts = 1;   ///< execution attempts (>1 under fault injection)
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t shuffle_read_remote = 0;
  std::uint64_t shuffle_read_local = 0;

  double duration() const noexcept { return sim_end - sim_start; }
};

struct StageMetrics {
  std::size_t stage_id = 0;      ///< global, monotonically increasing
  std::size_t job_id = 0;
  std::uint64_t signature = 0;   ///< structural stage signature
  std::string name;
  bool is_shuffle_map = false;

  std::size_t num_partitions = 0;
  PartitionerKind partitioner = PartitionerKind::kHash;

  // Structural information (for CHOPPER's DAG-level optimizer).
  OpKind anchor_op = OpKind::kSource;       ///< wide op / source / cache anchor
  std::vector<std::uint64_t> parent_signatures;
  bool fixed_partitions = false;  ///< task count pinned by a cache dependency
  bool user_fixed = false;        ///< user pinned the scheme explicitly

  std::uint64_t input_records = 0;
  std::uint64_t input_bytes = 0;
  std::uint64_t output_records = 0;
  std::uint64_t output_bytes = 0;
  std::uint64_t shuffle_read_bytes = 0;   ///< local + remote
  std::uint64_t shuffle_write_bytes = 0;

  double sim_time_s = 0.0;   ///< simulated makespan on the cluster
  double sim_start_s = 0.0;  ///< job-relative simulated start
  double wall_time_s = 0.0;  ///< host wall time actually spent executing

  std::vector<TaskMetrics> tasks;

  /// max task duration / mean task duration; 1.0 == perfectly balanced.
  double task_skew() const;

  /// The paper's "shuffle data per stage" metric: max(read, write).
  std::uint64_t shuffle_bytes() const noexcept {
    return shuffle_read_bytes > shuffle_write_bytes ? shuffle_read_bytes
                                                    : shuffle_write_bytes;
  }
};

struct JobMetrics {
  std::size_t job_id = 0;
  std::string name;
  double sim_time_s = 0.0;
  double wall_time_s = 0.0;
  std::vector<std::size_t> stage_ids;
};

/// Per-simulated-second utilization samples over the whole engine run.
class ResourceTimeline {
 public:
  explicit ResourceTimeline(std::size_t num_nodes, std::size_t total_slots,
                            std::uint64_t total_memory)
      : num_nodes_(num_nodes),
        total_slots_(total_slots),
        total_memory_(total_memory) {}

  /// Record one task's busy interval [start, end) of CPU activity.
  void add_cpu_busy(double start, double end);
  /// Attribute network bytes uniformly over [start, end).
  void add_network(double start, double end, std::uint64_t bytes);
  /// Record block-store/shuffle transactions at time t.
  void add_transactions(double t, std::uint64_t count);
  /// Record a memory-resident footprint over [start, end).
  void add_memory(double start, double end, std::uint64_t bytes);

  struct Sample {
    double t = 0.0;
    double cpu_pct = 0.0;     ///< average over cluster slots
    double mem_pct = 0.0;
    double packets_per_s = 0.0;
    double transactions_per_s = 0.0;
  };

  /// Aggregate into `num_nodes`-averaged per-second samples.
  std::vector<Sample> samples() const;

  void clear();

 private:
  void ensure(double t_end) const;

  std::size_t num_nodes_;
  std::size_t total_slots_;
  std::uint64_t total_memory_;
  // Mutable second-indexed accumulators (ensure() grows them).
  mutable std::vector<double> cpu_busy_s_;
  mutable std::vector<double> net_bytes_;
  mutable std::vector<double> transactions_;
  mutable std::vector<double> mem_byte_seconds_;
};

/// Append-only registry owned by the engine.
class MetricsRegistry {
 public:
  void add_stage(StageMetrics m) { stages_.push_back(std::move(m)); }
  void add_job(JobMetrics m) { jobs_.push_back(std::move(m)); }

  const std::vector<StageMetrics>& stages() const noexcept { return stages_; }
  const std::vector<JobMetrics>& jobs() const noexcept { return jobs_; }

  /// Total simulated time across all recorded jobs.
  double total_sim_time() const;

  void clear() {
    stages_.clear();
    jobs_.clear();
  }

 private:
  std::vector<StageMetrics> stages_;
  std::vector<JobMetrics> jobs_;
};

}  // namespace chopper::engine
