#include "engine/partition.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/hash.h"

namespace chopper::engine {

std::uint64_t Partition::checksum() const noexcept {
  common::Checksum64 ck;
  ck.update_u64(size());
  ck.update_u64(bytes_);
  ck.update_array(keys_.data(), keys_.size());
  ck.update_array(aux_.data(), aux_.size());
  ck.update_array(ends_.data(), ends_.size());
  ck.update_array(values_.data(), values_.size());
  return ck.digest();
}

void Partition::corrupt_byte(std::size_t byte_offset) noexcept {
  if (!values_.empty()) {
    const std::size_t pool = values_.size() * sizeof(double);
    auto* raw = reinterpret_cast<unsigned char*>(values_.data());
    raw[byte_offset % pool] ^= 0x2a;
  } else if (!keys_.empty()) {
    const std::size_t pool = keys_.size() * sizeof(std::uint64_t);
    auto* raw = reinterpret_cast<unsigned char*>(keys_.data());
    raw[byte_offset % pool] ^= 0x2a;
  }
}

std::vector<Record> Partition::to_records() const {
  std::vector<Record> out;
  out.reserve(size());
  append_records_to(out);
  return out;
}

void Partition::append_records_to(std::vector<Record>& out) const {
  out.reserve(out.size() + size());
  for (std::size_t i = 0; i < size(); ++i) {
    const std::size_t b = begin_of(i);
    out.push_back(Record{
        keys_[i],
        std::vector<double>(values_.begin() + static_cast<std::ptrdiff_t>(b),
                            values_.begin() +
                                static_cast<std::ptrdiff_t>(ends_[i])),
        aux_[i]});
  }
}

void Partition::stable_sort_by_key() {
  const std::size_t n = size();
  if (n < 2) return;
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [this](std::size_t a, std::size_t b) {
    return keys_[a] < keys_[b];
  });

  // Gather into fresh arrays following the sorted permutation.
  Partition sorted;
  sorted.reserve(n);
  sorted.reserve_values(values_.size());
  for (const std::size_t i : idx) {
    const std::size_t b = begin_of(i);
    sorted.emplace(keys_[i], values_.data() + b, ends_[i] - b, aux_[i]);
  }
  *this = std::move(sorted);
}

void Partition::absorb(Partition&& other) {
  if (other.empty()) {
    other.clear();
    return;
  }
  if (empty()) {
    *this = std::move(other);
    other.clear();
    return;
  }
  const std::size_t off = values_.size();
  keys_.insert(keys_.end(), other.keys_.begin(), other.keys_.end());
  aux_.insert(aux_.end(), other.aux_.begin(), other.aux_.end());
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  ends_.reserve(ends_.size() + other.ends_.size());
  for (const std::size_t e : other.ends_) ends_.push_back(e + off);
  bytes_ += other.bytes_;
  other.clear();
}

}  // namespace chopper::engine
