// A partition is the unit of parallelism: one task processes exactly one
// partition (Spark's 1:1 task/partition contract, paper Sec. II-A).
//
// Storage is a batched arena (SoA, DESIGN.md §13): all payload doubles live
// in one contiguous pool with per-record end offsets, so pushing a record
// never performs a per-record heap allocation and scanning a partition is a
// linear walk over three flat arrays. Partitions maintain an exact byte
// count incrementally so the shuffle manager and the cost model never have
// to rescan data.
//
// User-facing closures still traffic in owning `Record`s; the engine reads
// partitions through non-owning `RecordView`s (see `records()` / `view()`)
// or materializes into a reused scratch Record on hot paths.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "engine/record.h"

namespace chopper::engine {

class RecordRange;

class Partition {
 public:
  Partition() = default;

  /// Append a record, copying its payload into the arena.
  void push(const Record& r) {
    emplace(r.key, r.values.data(), r.values.size(), r.aux_bytes);
  }
  void push(const RecordView& v) {
    emplace(v.key, v.values.data(), v.values.size(), v.aux_bytes);
  }

  /// Raw append: key + `n` payload doubles + opaque byte count.
  void emplace(std::uint64_t key, const double* vals, std::size_t n,
               std::uint32_t aux) {
    keys_.push_back(key);
    aux_.push_back(aux);
    values_.insert(values_.end(), vals, vals + n);
    ends_.push_back(values_.size());
    bytes_ += record_bytes(n, aux);
  }

  void reserve(std::size_t n) {
    keys_.reserve(n);
    aux_.reserve(n);
    ends_.reserve(n);
  }
  /// Reserve payload-pool capacity (doubles, across all records).
  void reserve_values(std::size_t n) { values_.reserve(n); }

  std::size_t size() const noexcept { return keys_.size(); }
  bool empty() const noexcept { return keys_.empty(); }
  std::uint64_t bytes() const noexcept { return bytes_; }
  std::size_t values_size() const noexcept { return values_.size(); }

  std::uint64_t key(std::size_t i) const noexcept { return keys_[i]; }
  std::uint32_t aux(std::size_t i) const noexcept { return aux_[i]; }
  std::span<const double> values(std::size_t i) const noexcept {
    const std::size_t b = begin_of(i);
    return {values_.data() + b, ends_[i] - b};
  }
  RecordView view(std::size_t i) const noexcept {
    return RecordView{keys_[i], values(i), aux_[i]};
  }

  /// Copy record `i` into `out`, reusing out.values capacity (the zero-alloc
  /// way to feed a `const Record&` closure from arena storage).
  void materialize_into(std::size_t i, Record& out) const {
    out.key = keys_[i];
    const std::size_t b = begin_of(i);
    out.values.assign(values_.begin() + static_cast<std::ptrdiff_t>(b),
                      values_.begin() + static_cast<std::ptrdiff_t>(ends_[i]));
    out.aux_bytes = aux_[i];
  }

  /// Owning copy of record `i` (allocates).
  Record record_at(std::size_t i) const {
    Record r;
    materialize_into(i, r);
    return r;
  }

  /// Lightweight range over the partition yielding RecordViews — drop-in for
  /// the historical `const std::vector<Record>&` accessor in range-for loops.
  RecordRange records() const noexcept;

  /// Owning copies of every record (allocates; result/boundary paths only).
  std::vector<Record> to_records() const;
  void append_records_to(std::vector<Record>& out) const;

  /// Stable sort by key (equal keys keep encounter order).
  void stable_sort_by_key();

  /// Integrity checksum over the whole arena (keys, aux, offsets, payload
  /// pool and the byte count). Deterministic across platforms and runs; any
  /// single-byte change to stored data changes the digest.
  std::uint64_t checksum() const noexcept;

  /// Fault injection only: flip one stored payload byte (offset taken modulo
  /// the payload pool; falls back to a key byte for payload-less records,
  /// no-op on an empty partition). Deliberately leaves `bytes_` and the
  /// recorded checksum stale — this is the silent corruption a
  /// CorruptionSchedule models.
  void corrupt_byte(std::size_t byte_offset) noexcept;

  /// Append all records of `other` (bulk array splice; empties `other`).
  void absorb(Partition&& other);

  // -- parallel scatter support (dataplane.cc, DESIGN.md §18) ---------------
  // The sharded radix scatter sizes every destination arena up front, then
  // lets worker threads fill disjoint slot ranges through the mutable_*
  // pointers — no locks, no per-record push. Callers must fill every grown
  // slot (keys/aux/ends/values) before the partition is read again; `ends`
  // entries are absolute exclusive offsets into the payload pool.

  /// Grow the arrays by `recs` record slots and `vals` payload doubles, and
  /// account `extra_bytes` (the record_bytes sum of the records about to be
  /// scattered in).
  void grow_for_scatter(std::size_t recs, std::size_t vals,
                        std::uint64_t extra_bytes) {
    keys_.resize(keys_.size() + recs);
    aux_.resize(aux_.size() + recs);
    ends_.resize(ends_.size() + recs);
    values_.resize(values_.size() + vals);
    bytes_ += extra_bytes;
  }
  std::uint64_t* mutable_keys() noexcept { return keys_.data(); }
  std::uint32_t* mutable_aux() noexcept { return aux_.data(); }
  std::size_t* mutable_ends() noexcept { return ends_.data(); }
  double* mutable_values() noexcept { return values_.data(); }

  void clear() {
    keys_.clear();
    aux_.clear();
    ends_.clear();
    values_.clear();
    bytes_ = 0;
  }

  // -- arena serialization (checkpoint block files, src/ckpt) ---------------
  // The four flat arrays plus `bytes()` are the partition's complete state;
  // round-tripping them through from_raw reproduces it bit-for-bit
  // (checksum() included).
  const std::vector<std::uint64_t>& raw_keys() const noexcept { return keys_; }
  const std::vector<std::uint32_t>& raw_aux() const noexcept { return aux_; }
  const std::vector<std::size_t>& raw_ends() const noexcept { return ends_; }
  const std::vector<double>& raw_values() const noexcept { return values_; }
  static Partition from_raw(std::vector<std::uint64_t> keys,
                            std::vector<std::uint32_t> aux,
                            std::vector<std::size_t> ends,
                            std::vector<double> values, std::uint64_t bytes) {
    Partition p;
    p.keys_ = std::move(keys);
    p.aux_ = std::move(aux);
    p.ends_ = std::move(ends);
    p.values_ = std::move(values);
    p.bytes_ = bytes;
    return p;
  }

 private:
  std::size_t begin_of(std::size_t i) const noexcept {
    return i == 0 ? 0 : ends_[i - 1];
  }

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> aux_;
  std::vector<std::size_t> ends_;  // exclusive end offset into values_
  std::vector<double> values_;
  std::uint64_t bytes_ = 0;
};

class RecordRange {
 public:
  class iterator {
   public:
    using value_type = RecordView;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    iterator() = default;
    iterator(const Partition* p, std::size_t i) : p_(p), i_(i) {}
    RecordView operator*() const { return p_->view(i_); }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator t = *this;
      ++i_;
      return t;
    }
    bool operator==(const iterator&) const = default;

   private:
    const Partition* p_ = nullptr;
    std::size_t i_ = 0;
  };

  explicit RecordRange(const Partition* p) noexcept : p_(p) {}
  iterator begin() const noexcept { return {p_, 0}; }
  iterator end() const noexcept { return {p_, p_->size()}; }
  std::size_t size() const noexcept { return p_->size(); }
  bool empty() const noexcept { return p_->empty(); }
  RecordView operator[](std::size_t i) const noexcept { return p_->view(i); }

 private:
  const Partition* p_;
};

inline RecordRange Partition::records() const noexcept {
  return RecordRange(this);
}

}  // namespace chopper::engine
