// A partition is the unit of parallelism: one task processes exactly one
// partition (Spark's 1:1 task/partition contract, paper Sec. II-A).
// Partitions own their records and maintain an exact byte count so the
// shuffle manager and the cost model never have to rescan data.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "engine/record.h"

namespace chopper::engine {

class Partition {
 public:
  Partition() = default;

  void push(Record r) {
    bytes_ += record_bytes(r);
    records_.push_back(std::move(r));
  }

  void reserve(std::size_t n) { records_.reserve(n); }

  const std::vector<Record>& records() const noexcept { return records_; }
  std::vector<Record>& mutable_records() noexcept { return records_; }

  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }
  std::uint64_t bytes() const noexcept { return bytes_; }

  /// Recompute the byte count after in-place mutation of records().
  void recount_bytes() noexcept {
    bytes_ = 0;
    for (const auto& r : records_) bytes_ += record_bytes(r);
  }

  /// Append all records of `other` (moves them out).
  void absorb(Partition&& other) {
    bytes_ += other.bytes_;
    if (records_.empty()) {
      records_ = std::move(other.records_);
    } else {
      records_.insert(records_.end(),
                      std::make_move_iterator(other.records_.begin()),
                      std::make_move_iterator(other.records_.end()));
    }
    other.records_.clear();
    other.bytes_ = 0;
  }

 private:
  std::vector<Record> records_;
  std::uint64_t bytes_ = 0;
};

}  // namespace chopper::engine
