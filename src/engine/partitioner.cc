#include "engine/partitioner.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <sstream>

#include "common/hash.h"

namespace chopper::engine {

const char* to_string(PartitionerKind kind) noexcept {
  switch (kind) {
    case PartitionerKind::kHash:
      return "hash";
    case PartitionerKind::kRange:
      return "range";
  }
  return "?";
}

void Partitioner::partition_of_batch(const std::uint64_t* keys, std::size_t n,
                                     std::uint32_t* out) const noexcept {
  // Scalar fallback: one virtual dispatch per key.
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>(partition_of(keys[i]));
  }
}

HashPartitioner::HashPartitioner(std::size_t num_partitions) : n_(num_partitions) {
  assert(n_ > 0);
}

std::size_t HashPartitioner::partition_of(std::uint64_t key) const noexcept {
  return static_cast<std::size_t>(common::mix64(key) % n_);
}

void HashPartitioner::partition_of_batch(const std::uint64_t* keys,
                                         std::size_t n,
                                         std::uint32_t* out) const noexcept {
  // 8 keys per iteration: the fixed-trip inner loop has no branches or
  // virtual calls, so the mix64 finalizer (shift/xor/mul) autovectorizes;
  // the modulo stays scalar but pipelines across the unrolled lanes. Same
  // integer math as partition_of, so the assignment is bit-identical.
  const std::uint64_t nn = n_;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t h[8];
    for (std::size_t j = 0; j < 8; ++j) h[j] = common::mix64(keys[i + j]);
    for (std::size_t j = 0; j < 8; ++j) {
      out[i + j] = static_cast<std::uint32_t>(h[j] % nn);
    }
  }
  for (; i < n; ++i) {  // scalar tail
    out[i] = static_cast<std::uint32_t>(common::mix64(keys[i]) % nn);
  }
}

bool HashPartitioner::equals(const Partitioner& other) const noexcept {
  return other.kind() == PartitionerKind::kHash &&
         other.num_partitions() == n_;
}

std::string HashPartitioner::describe() const {
  std::ostringstream os;
  os << "hash(" << n_ << ")";
  return os.str();
}

RangePartitioner::RangePartitioner(std::size_t num_partitions,
                                   std::vector<std::uint64_t> bounds)
    : n_(num_partitions), bounds_(std::move(bounds)) {
  assert(n_ > 0);
  assert(bounds_.size() + 1 == n_);
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

std::shared_ptr<RangePartitioner> RangePartitioner::from_sample(
    std::size_t num_partitions, std::vector<std::uint64_t> sample) {
  assert(num_partitions > 0);
  std::sort(sample.begin(), sample.end());
  std::vector<std::uint64_t> bounds;
  bounds.reserve(num_partitions - 1);
  if (sample.empty()) {
    // No content: spread bounds uniformly over the key space.
    const auto span = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 1; i < num_partitions; ++i) {
      bounds.push_back(span / num_partitions * i);
    }
  } else {
    for (std::size_t i = 1; i < num_partitions; ++i) {
      const std::size_t idx = i * sample.size() / num_partitions;
      std::uint64_t b = sample[std::min(idx, sample.size() - 1)];
      // Bounds must be non-decreasing; duplicates are allowed (they simply
      // make some partitions empty, just like Spark's RangePartitioner on
      // heavily duplicated keys).
      if (!bounds.empty() && b < bounds.back()) b = bounds.back();
      bounds.push_back(b);
    }
  }
  return std::make_shared<RangePartitioner>(num_partitions, std::move(bounds));
}

std::size_t RangePartitioner::partition_of(std::uint64_t key) const noexcept {
  // First bound >= key gives the bucket; keys above all bounds go last.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), key);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void RangePartitioner::partition_of_batch(const std::uint64_t* keys,
                                          std::size_t n,
                                          std::uint32_t* out) const noexcept {
  // Memoized loop: sorted/grouped map outputs repeat keys constantly, so a
  // single compare usually replaces the binary search (BucketMemo's trick,
  // without the per-record virtual call).
  std::uint64_t last_key = 0;
  std::uint32_t last_bucket = 0;
  bool valid = false;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = keys[i];
    if (!valid || k != last_key) {
      last_key = k;
      last_bucket = static_cast<std::uint32_t>(partition_of(k));
      valid = true;
    }
    out[i] = last_bucket;
  }
}

bool RangePartitioner::equals(const Partitioner& other) const noexcept {
  if (other.kind() != PartitionerKind::kRange ||
      other.num_partitions() != n_) {
    return false;
  }
  const auto& r = static_cast<const RangePartitioner&>(other);
  return r.bounds_ == bounds_;
}

std::string RangePartitioner::describe() const {
  std::ostringstream os;
  os << "range(" << n_ << ")";
  return os.str();
}

std::shared_ptr<Partitioner> make_partitioner(PartitionerKind kind,
                                              std::size_t num_partitions,
                                              std::vector<std::uint64_t> key_sample) {
  switch (kind) {
    case PartitionerKind::kHash:
      return std::make_shared<HashPartitioner>(num_partitions);
    case PartitionerKind::kRange:
      return RangePartitioner::from_sample(num_partitions, std::move(key_sample));
  }
  return nullptr;
}

}  // namespace chopper::engine
