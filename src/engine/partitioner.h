// Partitioners: the policy mapping a record key to a target partition.
//
// Mirrors Spark's two built-in schemes (paper Sec. II-A / III-B):
//  * HashPartitioner  — mix(key) mod n. Content-insensitive, even for
//    distinct keys, but hot keys pile into one partition.
//  * RangePartitioner — n-1 sorted split points; keys land in the range
//    bucket. Built by sampling the dataset, so balance depends on how well
//    the sample matches the data (and can skew when reused on other data).
//
// Equality between partitioners is what makes co-partitioning detectable:
// a join whose parents share an equal partitioner needs no shuffle.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/record.h"

namespace chopper::engine {

enum class PartitionerKind { kHash, kRange };

const char* to_string(PartitionerKind kind) noexcept;

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual PartitionerKind kind() const noexcept = 0;
  virtual std::size_t num_partitions() const noexcept = 0;
  virtual std::size_t partition_of(std::uint64_t key) const noexcept = 0;

  /// Batched form: out[i] = partition_of(keys[i]) for i in [0, n). One
  /// virtual call per batch instead of one per record; subclasses override
  /// with SIMD-friendly (hash: 8-keys-per-iteration autovectorizable mix
  /// loop) or memoized (range: one binary search per run of equal keys)
  /// loops. The base implementation is the scalar fallback. Must produce
  /// exactly partition_of's assignment — the data plane's determinism
  /// contract (DESIGN.md §18) depends on it.
  virtual void partition_of_batch(const std::uint64_t* keys, std::size_t n,
                                  std::uint32_t* out) const noexcept;

  /// Structural equality (same kind, same partition count, same bounds).
  /// Used for co-partition detection.
  virtual bool equals(const Partitioner& other) const noexcept = 0;

  virtual std::string describe() const = 0;
};

class HashPartitioner final : public Partitioner {
 public:
  explicit HashPartitioner(std::size_t num_partitions);

  PartitionerKind kind() const noexcept override { return PartitionerKind::kHash; }
  std::size_t num_partitions() const noexcept override { return n_; }
  std::size_t partition_of(std::uint64_t key) const noexcept override;
  void partition_of_batch(const std::uint64_t* keys, std::size_t n,
                          std::uint32_t* out) const noexcept override;
  bool equals(const Partitioner& other) const noexcept override;
  std::string describe() const override;

 private:
  std::size_t n_;
};

class RangePartitioner final : public Partitioner {
 public:
  /// Constructs from explicit upper bounds: partition i holds keys
  /// <= bounds[i]; the last partition holds everything above bounds.back().
  /// bounds must be sorted and have size num_partitions-1 (may be empty for
  /// a single partition).
  RangePartitioner(std::size_t num_partitions, std::vector<std::uint64_t> bounds);

  /// Builds bounds by sampling keys (Spark samples RDD content when creating
  /// a range partitioner). `sample` need not be sorted; it is copied.
  static std::shared_ptr<RangePartitioner> from_sample(
      std::size_t num_partitions, std::vector<std::uint64_t> sample);

  PartitionerKind kind() const noexcept override { return PartitionerKind::kRange; }
  std::size_t num_partitions() const noexcept override { return n_; }
  std::size_t partition_of(std::uint64_t key) const noexcept override;
  void partition_of_batch(const std::uint64_t* keys, std::size_t n,
                          std::uint32_t* out) const noexcept override;
  bool equals(const Partitioner& other) const noexcept override;
  std::string describe() const override;

  const std::vector<std::uint64_t>& bounds() const noexcept { return bounds_; }

 private:
  std::size_t n_;
  std::vector<std::uint64_t> bounds_;
};

/// Factory used by the scheduler when applying a partition plan. For range
/// partitioners `key_sample` supplies the content sample; it may be empty,
/// in which case bounds are spread uniformly over the full key space.
std::shared_ptr<Partitioner> make_partitioner(PartitionerKind kind,
                                              std::size_t num_partitions,
                                              std::vector<std::uint64_t> key_sample = {});

}  // namespace chopper::engine
