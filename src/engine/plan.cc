#include "engine/plan.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

#include "common/hash.h"

namespace chopper::engine {

namespace {

class PlanBuilder {
 public:
  PlanBuilder(const BlockManager& bm, PlanProvider* provider,
              InsertedRepartitions* insertions)
      : bm_(bm), provider_(provider), insertions_(insertions) {}

  JobPlan build(const DatasetPtr& root) {
    const std::size_t result_idx = build_pipeline(root.get());
    plan_.stages[result_idx].is_result = true;
    return std::move(plan_);
  }

 private:
  /// Returns the index of the stage whose output is `out`'s output.
  std::size_t build_pipeline(const Dataset* out) {
    const auto memo = memo_.find(out);
    if (memo != memo_.end()) return memo->second;

    StagePlan stage;
    std::vector<const Dataset*> chain;  // collected leaf-ward, reversed later
    const Dataset* cur = out;
    for (;;) {
      const bool materialized = cur->cached() && bm_.contains(cur->id());
      if (materialized && cur != out) {
        // A cached, already-materialized dataset truncates the walk — read
        // from the block manager instead of recomputing lineage. (When the
        // root itself is cached we still may need to read it from cache.)
        stage.input = StageInputKind::kCache;
        stage.anchor = cur;
        break;
      }
      if (materialized && cur == out && chain.empty()) {
        stage.input = StageInputKind::kCache;
        stage.anchor = cur;
        break;
      }
      if (cur->op() == OpKind::kSource) {
        stage.input = StageInputKind::kSource;
        stage.anchor = cur;
        break;
      }
      if (is_wide(cur->op())) {
        stage.input = StageInputKind::kShuffle;
        stage.anchor = cur;
        break;
      }
      chain.push_back(cur);
      assert(cur->parents().size() == 1);
      cur = cur->parents()[0].get();
    }
    std::reverse(chain.begin(), chain.end());
    stage.narrow_ops = std::move(chain);
    stage.fixed_partitions = stage.input == StageInputKind::kCache;

    // Algorithm 3's repartition insertion: if the plan asked for an explicit
    // repartition in front of this cache-pinned stage, splice one in —
    // cacheRead -> repartition(shuffle) -> original narrow chain.
    if (stage.input == StageInputKind::kCache && provider_ != nullptr) {
      stage.signature = stage_signature(stage);
      if (const auto scheme = provider_->repartition_before(stage.signature)) {
        // Every Dataset is shared_ptr-owned (Dataset::make), so recovering
        // the handle from the raw anchor pointer is safe.
        DatasetPtr cached =
            const_cast<Dataset*>(stage.anchor)->shared_from_this();
        ShuffleRequest req;
        req.kind = scheme->kind;
        req.num_partitions = scheme->num_partitions;

        // Reuse one synthesized node per (cached dataset, scheme): the node
        // is itself cache-marked, so the first job materializes the
        // repartitioned data and later jobs read it directly.
        DatasetPtr rep;
        if (insertions_ != nullptr) {
          const auto key = std::make_tuple(cached->id(), scheme->kind,
                                           scheme->num_partitions);
          const auto it = insertions_->find(key);
          if (it != insertions_->end()) {
            rep = it->second;
          } else {
            rep = cached->repartition("chopper-inserted", req)->cache();
            insertions_->emplace(key, rep);
          }
        } else {
          rep = cached->repartition("chopper-inserted", req);
        }
        plan_.synthesized.push_back(rep);

        if (bm_.contains(rep->id())) {
          // Already materialized by an earlier job: read the repartitioned
          // cache instead of re-shuffling.
          stage.input = StageInputKind::kCache;
          stage.anchor = rep.get();
          stage.fixed_partitions = true;
          stage.signature = stage_signature(stage);
          stage.name = stage_name(stage);
          const std::size_t idx = plan_.stages.size();
          stage.index = idx;
          plan_.stages.push_back(std::move(stage));
          memo_[out] = idx;
          return idx;
        }

        // Producer: the bare cache-read stage (fixed count), shuffle-writing
        // for the inserted repartition.
        StagePlan producer;
        producer.input = StageInputKind::kCache;
        producer.anchor = cached.get();
        producer.fixed_partitions = true;
        producer.signature = stage_signature(producer);
        producer.name = "cache:" + cached->label() + "|(inserted write)";
        const std::size_t producer_idx = plan_.stages.size();
        producer.index = producer_idx;
        plan_.stages.push_back(std::move(producer));

        // This stage now reads the inserted shuffle instead of the cache.
        stage.input = StageInputKind::kShuffle;
        stage.anchor = rep.get();
        stage.fixed_partitions = false;
        stage.forced_scheme = scheme;
        stage.parent_stages = {producer_idx};
        stage.signature = stage_signature(stage);
        stage.name = stage_name(stage);
        const std::size_t idx = plan_.stages.size();
        stage.index = idx;
        plan_.stages.push_back(std::move(stage));
        plan_.stages[producer_idx].consumers.push_back(idx);
        memo_[out] = idx;
        return idx;
      }
    }

    // Recurse into shuffle producers first so parents precede us in the
    // stage list (topological order).
    std::vector<std::size_t> parent_stages;
    if (stage.input == StageInputKind::kShuffle) {
      for (const auto& p : stage.anchor->parents()) {
        parent_stages.push_back(build_pipeline(p.get()));
      }
    }

    const std::size_t idx = plan_.stages.size();
    stage.index = idx;
    stage.parent_stages = std::move(parent_stages);
    stage.signature = stage_signature(stage);
    stage.name = stage_name(stage);
    plan_.stages.push_back(std::move(stage));
    for (const std::size_t p : plan_.stages[idx].parent_stages) {
      plan_.stages[p].consumers.push_back(idx);
    }
    memo_[out] = idx;
    return idx;
  }

  static std::string stage_name(const StagePlan& s) {
    std::string name;
    switch (s.input) {
      case StageInputKind::kSource:
        name = "source:" + s.anchor->label();
        break;
      case StageInputKind::kCache:
        name = "cache:" + s.anchor->label();
        break;
      case StageInputKind::kShuffle:
        name = std::string(to_string(s.anchor->op())) + ":" + s.anchor->label();
        break;
    }
    for (const auto* op : s.narrow_ops) {
      name += "|";
      name += to_string(op->op());
      name += ":";
      name += op->label();
    }
    return name;
  }

  const BlockManager& bm_;
  PlanProvider* provider_;
  InsertedRepartitions* insertions_;
  JobPlan plan_;
  std::unordered_map<const Dataset*, std::size_t> memo_;
};

}  // namespace

std::uint64_t stage_signature(const StagePlan& s) {
  using common::hash_combine;
  using common::hash_string;
  std::uint64_t h = 0x5eed;
  h = hash_combine(h, static_cast<std::uint64_t>(s.input));
  h = hash_combine(h, static_cast<std::uint64_t>(s.anchor->op()));
  h = hash_combine(h, hash_string(s.anchor->label()));
  h = hash_combine(h, s.anchor->parents().size());
  for (const auto* op : s.narrow_ops) {
    h = hash_combine(h, static_cast<std::uint64_t>(op->op()));
    h = hash_combine(h, hash_string(op->label()));
  }
  return h;
}

JobPlan build_job_plan(const DatasetPtr& root, const BlockManager& bm,
                       PlanProvider* provider,
                       InsertedRepartitions* insertions) {
  if (!root) throw std::invalid_argument("build_job_plan: null root");
  PlanBuilder builder(bm, provider, insertions);
  return builder.build(root);
}

}  // namespace chopper::engine
