// Physical planning: cutting a Dataset lineage into stages.
//
// A stage is a maximal pipeline of narrow operators. Pipelines end (looking
// upward) at a source, at a wide dependency (shuffle boundary), or at a
// dataset already materialized in the block manager. This mirrors Spark's
// DAGScheduler stage construction (paper Fig. 1): ShuffleMapStages write
// bucketed output for their consumers; the ResultStage feeds the action.
//
// PlanProvider is the seam CHOPPER plugs into: before a stage's partition
// scheme is needed (to write the shuffle feeding it, or to split a source),
// the scheduler asks the provider for an override keyed by the stage's
// structural signature — exactly the per-stage configuration-file mechanism
// of paper Sec. III-A. Providers may change their answers over time
// (dynamic re-planning); the scheduler re-queries per job, memoizing each
// signature's answer within a job the first time it is needed. An update
// landing at a stage barrier (src/adapt patches ConfigPlanProvider from the
// synchronous kStageEnd hook) therefore reaches every not-yet-resolved
// scheme: stages two or more hops downstream in the running job, and all
// stages of later jobs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "engine/block_manager.h"
#include "engine/dataset.h"
#include "engine/partitioner.h"

namespace chopper::engine {

struct PartitionScheme {
  PartitionerKind kind = PartitionerKind::kHash;
  std::size_t num_partitions = 0;

  bool operator==(const PartitionScheme&) const = default;
};

class PlanProvider {
 public:
  virtual ~PlanProvider() = default;
  /// Partition scheme override for the stage with this structural signature,
  /// or nullopt to keep the engine default.
  virtual std::optional<PartitionScheme> scheme_for(std::uint64_t signature) = 0;

  /// Algorithm 3's repartition insertion: when a stage's task count is
  /// pinned by a cache/partition dependency but re-partitioning pays off by
  /// more than gamma, the plan marks it. Returning a scheme here makes the
  /// scheduler splice an explicit repartition phase in front of the stage.
  virtual std::optional<PartitionScheme> repartition_before(
      std::uint64_t signature) {
    (void)signature;
    return std::nullopt;
  }
};

enum class StageInputKind { kSource, kShuffle, kCache };

struct StagePlan {
  std::size_t index = 0;                 ///< position within the job (topo order)
  StageInputKind input = StageInputKind::kSource;
  const Dataset* anchor = nullptr;       ///< source / wide / cached node
  std::vector<const Dataset*> narrow_ops;///< applied after anchor, exec order
  std::vector<std::size_t> parent_stages;///< producers (kShuffle: per anchor parent)
  std::vector<std::size_t> consumers;    ///< stages reading our shuffle write
  std::uint64_t signature = 0;
  std::string name;
  bool is_result = false;
  /// True when the task count cannot be changed by a plan (cache input:
  /// the paper's "partition dependency" case).
  bool fixed_partitions = false;
  /// Scheme pinned at plan-build time (synthesized repartition stages);
  /// takes precedence over provider lookups.
  std::optional<PartitionScheme> forced_scheme;
};



struct JobPlan {
  std::vector<StagePlan> stages;  ///< topological order; result stage last
  /// Repartition nodes synthesized by the builder (kept alive for the
  /// lifetime of the plan; StagePlan::anchor may point into these).
  std::vector<DatasetPtr> synthesized;
};

/// Memo of repartition nodes synthesized for (cached dataset, scheme) so
/// later jobs reuse — and, once materialized, read the cached repartitioned
/// data instead of re-shuffling (mirrors the Spark practice of caching a
/// partitionBy()'d dataset).
using InsertedRepartitions =
    std::map<std::tuple<std::size_t, PartitionerKind, std::size_t>, DatasetPtr>;

/// Builds the stage DAG for the job rooted at `root`. `bm` determines which
/// cached datasets are already materialized (they truncate lineage walks).
/// When `provider` requests repartition_before() a cache-read stage, the
/// builder splices an explicit repartition phase in front of it, reusing
/// nodes from `insertions` (when given) across jobs.
JobPlan build_job_plan(const DatasetPtr& root, const BlockManager& bm,
                       PlanProvider* provider = nullptr,
                       InsertedRepartitions* insertions = nullptr);

/// Structural signature of a pipeline: hashes the anchor (kind/label/arity)
/// and each narrow op (kind/label). Identical transformations in different
/// iterations produce identical signatures — the property CHOPPER's config
/// file keys on (paper Fig. 6).
std::uint64_t stage_signature(const StagePlan& s);

}  // namespace chopper::engine
