// The engine's record type.
//
// minispark processes key/value records: a 64-bit key (hash or range
// partitionable) plus a numeric payload (feature vectors for ML workloads,
// measures for SQL) and an `aux_bytes` count that models additional opaque
// payload (strings, blobs) without actually storing it. Byte accounting —
// which drives shuffle sizes and the simulated cost model — always includes
// aux_bytes, so workloads can faithfully model wide rows cheaply.
//
// `Record` is the boundary type user closures see; inside the engine the
// data plane stores records batched in a `Partition` arena (SoA layout,
// DESIGN.md §13) and hands out non-owning `RecordView`s to avoid per-record
// heap traffic on the hot paths.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace chopper::engine {

struct Record {
  std::uint64_t key = 0;
  std::vector<double> values;
  std::uint32_t aux_bytes = 0;

  bool operator==(const Record&) const = default;
};

/// Non-owning view of one record stored inside a Partition arena. Valid only
/// while the owning Partition is alive and unmodified.
struct RecordView {
  std::uint64_t key = 0;
  std::span<const double> values;
  std::uint32_t aux_bytes = 0;

  /// Owning copy (allocates — keep off hot paths; prefer
  /// Partition::materialize_into with a reused scratch Record).
  Record materialize() const {
    return Record{key, std::vector<double>(values.begin(), values.end()),
                  aux_bytes};
  }
};

/// Serialized-size model for a record: key + payload doubles + opaque bytes
/// + a fixed framing overhead (mirrors Spark's serialized tuple overhead).
inline constexpr std::uint64_t kRecordFramingBytes = 16;

inline std::uint64_t record_bytes(std::size_t num_values,
                                  std::uint32_t aux_bytes) noexcept {
  return kRecordFramingBytes + 8 + 8 * static_cast<std::uint64_t>(num_values) +
         aux_bytes;
}

inline std::uint64_t record_bytes(const Record& r) noexcept {
  return record_bytes(r.values.size(), r.aux_bytes);
}

inline std::uint64_t record_bytes(const RecordView& r) noexcept {
  return record_bytes(r.values.size(), r.aux_bytes);
}

}  // namespace chopper::engine
