// The engine's record type.
//
// minispark processes key/value records: a 64-bit key (hash or range
// partitionable) plus a numeric payload (feature vectors for ML workloads,
// measures for SQL) and an `aux_bytes` count that models additional opaque
// payload (strings, blobs) without actually storing it. Byte accounting —
// which drives shuffle sizes and the simulated cost model — always includes
// aux_bytes, so workloads can faithfully model wide rows cheaply.
#pragma once

#include <cstdint>
#include <vector>

namespace chopper::engine {

struct Record {
  std::uint64_t key = 0;
  std::vector<double> values;
  std::uint32_t aux_bytes = 0;

  bool operator==(const Record&) const = default;
};

/// Serialized-size model for a record: key + payload doubles + opaque bytes
/// + a fixed framing overhead (mirrors Spark's serialized tuple overhead).
inline constexpr std::uint64_t kRecordFramingBytes = 16;

inline std::uint64_t record_bytes(const Record& r) noexcept {
  return kRecordFramingBytes + 8 + 8 * static_cast<std::uint64_t>(r.values.size()) +
         r.aux_bytes;
}

}  // namespace chopper::engine
