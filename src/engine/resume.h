// Checkpoint/resume contract between the engine and the durability layer
// (src/ckpt, DESIGN.md §16). The engine knows nothing about files: at commit
// time it hands the just-published payloads to a CheckpointHook, and at
// submit time it consumes a ResumeLedger of already-decoded committed-stage
// state that a resume planner built from a write-ahead log.
//
// Adoption semantics (scheduler.cc, JobRunner::adopt_restored): a job whose
// ledger entry carries a *clean* committed prefix — attempt_count 1
// everywhere, no OOM / checksum / exclusion / recovery activity, and an
// engine running without fault or memory schedules — re-registers each
// restored stage's shuffle outputs, cached blocks and result partitions,
// re-emits its event history, replays its metrics rows, fast-forwards the
// virtual clock, and continues execution at the first uncommitted stage.
// Anything dirtier sets `full_rerun`: the job re-executes from scratch,
// which is bit-identical to the original run by the engine's determinism
// contract (bench/chaos_fuzz), so resume never trades correctness for
// speed — it only skips work when skipping is provably equivalent.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/block_manager.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "engine/shuffle.h"

namespace chopper::engine {

/// Commit-time observer (implemented by ckpt::CheckpointWriter). Called on
/// the job's driver thread immediately before the stage's kStageEnd event is
/// emitted, so persisted payloads are always durable before the WAL line
/// that marks them committed.
class CheckpointHook {
 public:
  virtual ~CheckpointHook() = default;
  /// Stage `plan_index` of job `job` published `so` for consumer stage
  /// `consumer` (a plan index of the same job).
  virtual void on_shuffle_committed(std::size_t job, std::size_t plan_index,
                                    std::size_t consumer,
                                    const ShuffleOutput& so) = 0;
  /// Stage `plan_index` committed one cached dataset; `ordinal` is its index
  /// within the stage's cache-commit order (the resume key — dataset ids are
  /// process-local and do not survive a restart).
  virtual void on_cache_committed(std::size_t job, std::size_t plan_index,
                                  std::size_t ordinal,
                                  const CachedDataset& cd) = 0;
  /// The job's result stage committed its output partitions (captured before
  /// they are folded into the JobResult and cleared).
  virtual void on_result_committed(std::size_t job, std::size_t plan_index,
                                   const std::vector<Partition>& parts) = 0;
};

/// One restored shuffle publication of a committed stage.
struct RestoredShuffle {
  std::size_t consumer = 0;  ///< consuming stage's plan index
  ShuffleOutput so;          ///< shuffle_id unset; re-assigned at adoption
};

/// One restored cache commit of a committed stage. `cd.lineage` is null —
/// the adopting engine rebinds it to the live dataset graph by matching
/// `ordinal` against the stage's cache-commit order.
struct RestoredCache {
  std::size_t ordinal = 0;
  CachedDataset cd;
};

/// Everything the WAL + block files recorded about one committed stage.
struct StageRestore {
  StageMetrics row;  ///< decoded kStageEnd + kTaskSpan events, bit-exact
  std::vector<RestoredShuffle> shuffles;
  std::vector<RestoredCache> caches;
  bool has_result = false;
  std::vector<Partition> result_parts;
};

/// Resume state for one job, keyed by the job's engine-assigned id (a
/// deterministic driver re-runs the same job sequence, so ids line up).
struct JobResume {
  /// The committed prefix was not clean (retries, OOMs, recovery, missing or
  /// corrupt block files): adopt nothing and deterministically re-execute.
  bool full_rerun = false;
  std::vector<StageRestore> stages;  ///< committed prefix, plan order
  std::uint64_t replayed_events = 0;
  std::uint64_t restored_bytes = 0;  ///< block-file payload bytes loaded
};

/// Per-engine resume state: jobs[i] feeds the job that draws id i. Jobs
/// beyond the vector run normally (they were never started before the
/// crash).
struct ResumeLedger {
  std::vector<JobResume> jobs;
};

}  // namespace chopper::engine
