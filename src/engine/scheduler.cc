// Job execution: the DAGScheduler + executors of minispark.
//
// Stages run in topological order with a global barrier between them
// (paper Sec. I: "data processing frameworks usually employ a global
// barrier between computation phases"). Each stage:
//
//   phase 1  tasks execute for real on the host thread pool: resolve input
//            (source generator / cached blocks / shuffle fetch + wide
//            merge), run the narrow operator chain, record measured work;
//   phase 2  if the stage feeds wide consumers, bucket its output per
//            consumer partitioner (map-side combine for reduceByKey,
//            pass-through when already co-partitioned);
//   phase 3  the measured work is priced by the CostModel and the tasks are
//            list-scheduled onto the simulated cluster's slots, producing
//            the stage's simulated makespan, task distribution and the
//            resource-timeline samples.
//
// Fault tolerance (DESIGN.md §9): when EngineOptions::failure_schedule is
// non-empty the JobRunner executes each stage as a bounded sequence of
// *attempts*. Node failures fire deterministically at stage barriers (or
// mid-window when their sim-time trigger falls inside a running stage that
// depends on the dying node), destroying that node's shuffle map outputs
// and cached partitions. Before each attempt the runner heals the stage's
// inputs by replaying lineage for exactly the lost pieces: lost shuffle
// rows are recomputed by re-running the producer's pipeline tasks on
// surviving nodes, lost cached blocks are regenerated from their narrow
// chain (or a full sub-job rebuild for wide lineage). Shuffle reads copy
// instead of consume in this mode and map outputs are retained until job
// end so replay always has data to read. The non-fault-tolerant path is
// byte-for-byte the classic one.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "common/rng.h"
#include "engine/dataplane.h"
#include "engine/engine.h"
#include "engine/resume.h"
#include "obs/event_log.h"

namespace chopper::engine {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Per-task measurements from the real execution, priced later.
struct TaskWork {
  std::uint64_t records_in = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t bytes_out = 0;
  double work_units = 0.0;
  /// Remote shuffle-fetch bytes aggregated by source node.
  std::map<std::size_t, std::uint64_t> remote_fetch;
  std::size_t remote_segments = 0;
  std::uint64_t local_fetch_bytes = 0;
  std::uint64_t shuffle_read_remote = 0;
  std::uint64_t shuffle_read_local = 0;
  /// Bytes read back from the disk tier (spilled shuffle rows).
  std::uint64_t disk_read_bytes = 0;
  /// Transient fetch failures retried in place (FlakySchedule) and the bytes
  /// those retries re-transferred. Kept separate from shuffle_read_remote so
  /// logical shuffle volume is counted once regardless of flakiness.
  std::size_t fetch_retries = 0;
  std::uint64_t refetched_bytes = 0;
};

/// Work-unit weights for engine-internal activities (relative to one
/// "average record operation" == 1.0).
constexpr double kSourceGenWork = 1.0;
constexpr double kCacheReadWork = 0.15;
constexpr double kBucketWork = 0.35;
constexpr double kCombineWork = 0.6;

// ---------------------------------------------------------------------------
// Narrow operator chain. User closures see owning `Record`s; the loops feed
// them from the partition arena through a reused scratch record so the only
// per-record heap traffic is whatever the closure itself does.
// ---------------------------------------------------------------------------

Partition apply_narrow_op(const Dataset& op, Partition&& in, std::size_t task,
                          TaskWork& tw) {
  const auto n = static_cast<double>(in.size());
  tw.work_units += n * op.work_per_record();
  switch (op.op()) {
    case OpKind::kMap:
    case OpKind::kMapValues: {
      Partition out;
      out.reserve(in.size());
      Record scratch;
      for (std::size_t i = 0; i < in.size(); ++i) {
        in.materialize_into(i, scratch);
        out.push(op.map_fn()(scratch));
      }
      return out;
    }
    case OpKind::kFilter: {
      Partition out;
      Record scratch;
      for (std::size_t i = 0; i < in.size(); ++i) {
        in.materialize_into(i, scratch);
        if (op.filter_fn()(scratch)) out.push(in.view(i));
      }
      return out;
    }
    case OpKind::kFlatMap: {
      Partition out;
      Record scratch;
      for (std::size_t i = 0; i < in.size(); ++i) {
        in.materialize_into(i, scratch);
        for (auto& produced : op.flat_map_fn()(scratch)) {
          out.push(produced);
        }
      }
      return out;
    }
    case OpKind::kMapPartitions:
      return op.map_partitions_fn()(std::move(in));
    case OpKind::kSample: {
      common::Xoshiro256 rng(
          common::hash_combine(op.sample_seed(), task + 1));
      Partition out;
      for (std::size_t i = 0; i < in.size(); ++i) {
        if (rng.next_double() < op.sample_fraction()) out.push(in.view(i));
      }
      return out;
    }
    default:
      throw std::logic_error("apply_narrow_op: not a narrow op");
  }
}

bool is_narrow_kind(OpKind op) {
  switch (op) {
    case OpKind::kMap:
    case OpKind::kMapValues:
    case OpKind::kFilter:
    case OpKind::kFlatMap:
    case OpKind::kMapPartitions:
    case OpKind::kSample:
      return true;
    default:
      return false;
  }
}

/// Deep copy of a partition (bulk arena copy; copies are always explicit in
/// this file — Partition is move-only in spirit).
Partition copy_partition(const Partition& in) { return in; }

/// Evenly-strided deterministic key sample from materialized output.
std::vector<std::uint64_t> sample_keys(const std::vector<Partition>& parts,
                                       std::size_t per_partition = 32) {
  std::vector<std::uint64_t> keys;
  for (const auto& p : parts) {
    if (p.empty()) continue;
    const std::size_t stride = std::max<std::size_t>(1, p.size() / per_partition);
    for (std::size_t i = 0; i < p.size(); i += stride) {
      keys.push_back(p.key(i));
    }
  }
  return keys;
}

}  // namespace

// ---------------------------------------------------------------------------
// Job context.
// ---------------------------------------------------------------------------

struct Engine::JobContext {
  JobPlan plan;
  std::size_t job_id = 0;
  std::string name;
  bool collect_records = false;

  struct StageRt {
    std::optional<PartitionScheme> scheme;      ///< resolved (kShuffle/kSource)
    std::shared_ptr<Partitioner> partitioner;   ///< reduce-side (kShuffle only)
    std::size_t num_tasks = 0;
    std::vector<std::size_t> task_node;
    std::vector<Partition> output;
    std::shared_ptr<Partitioner> output_partitioner;
    /// producer stage index -> shuffle id written for this stage to read
    std::unordered_map<std::size_t, std::size_t> shuffle_from_producer;
    /// Shuffles this stage wrote, by consumer stage index — the hook lineage
    /// replay uses to rewrite lost bucket rows after a node failure.
    struct Written {
      std::size_t shuffle_id = 0;
      std::size_t consumer = 0;
    };
    std::vector<Written> written;
  };
  std::vector<StageRt> rt;

  /// Every shuffle id this job wrote. In fault-tolerant mode shuffles are
  /// retained until job end (replay needs them); on abort they are released
  /// here so a failed job never leaks shuffle memory.
  std::vector<std::size_t> job_shuffle_ids;

  /// One partitioner instance per (kind, count) within the job: stages that
  /// resolve to the same scheme share the same object (and for range
  /// partitioners, the same sampled bounds), which is what makes equal
  /// schemes actually co-partition — mirroring Spark reusing a Partitioner
  /// across dependent RDDs.
  std::map<std::pair<PartitionerKind, std::size_t>,
           std::shared_ptr<Partitioner>>
      partitioner_cache;

  /// Service-mode control block (null for classic single-job execution) and
  /// the job's private virtual clock. Classic jobs advance the engine's
  /// shared sim_clock_ instead.
  const JobControl* control = nullptr;
  double vclock = 0.0;

  JobResult result;
};

/// Resolve the partition scheme of stage `s` (consulting the plan provider
/// first, then the wide operator's request, then engine defaults). Memoized.
static PartitionScheme resolve_scheme(Engine::JobContext& ctx, std::size_t s,
                                      PlanProvider* provider,
                                      std::size_t default_parallelism) {
  auto& rt = ctx.rt[s];
  if (rt.scheme) return *rt.scheme;
  const StagePlan& plan = ctx.plan.stages[s];

  // Synthesized repartition stages carry their scheme from the plan builder.
  if (plan.forced_scheme) {
    rt.scheme = plan.forced_scheme;
    return *rt.scheme;
  }

  PartitionScheme scheme;
  scheme.kind = PartitionerKind::kHash;
  scheme.num_partitions = default_parallelism;

  if (plan.input == StageInputKind::kShuffle) {
    const auto& req = plan.anchor->shuffle_request();
    if (req.kind) scheme.kind = *req.kind;
    if (req.num_partitions) scheme.num_partitions = *req.num_partitions;
  } else if (plan.input == StageInputKind::kSource) {
    scheme.num_partitions = plan.anchor->source_partitions();
  }

  // The plan provider (CHOPPER's config file) overrides defaults, but never
  // a user-fixed scheme and never a cache-determined task count.
  const bool user_fixed = plan.input == StageInputKind::kShuffle &&
                          plan.anchor->shuffle_request().user_fixed;
  if (provider && !plan.fixed_partitions && !user_fixed) {
    if (const auto o = provider->scheme_for(plan.signature)) {
      scheme = *o;
    }
  }
  if (scheme.num_partitions == 0) scheme.num_partitions = default_parallelism;
  rt.scheme = scheme;
  return scheme;
}

// ---------------------------------------------------------------------------
// JobRunner: per-job stage execution with bounded-attempt fault tolerance.
// ---------------------------------------------------------------------------

class JobRunner {
 public:
  JobRunner(Engine& eng, Engine::JobContext& ctx)
      : eng_(eng),
        ctx_(ctx),
        cm_(eng.options_.cost_model),
        ft_(eng.options_.failure_schedule.enabled()),
        mem_(eng.options_.memory.enforce),
        oom_inj_(eng.options_.oom_schedule.enabled()),
        flaky_(eng.options_.flaky_schedule.enabled()),
        corrupt_(eng.options_.corruption_schedule.enabled()),
        integrity_(corrupt_ || eng.options_.integrity_checksums),
        retain_(ft_ || mem_ || oom_inj_ || flaky_ || corrupt_) {}

  JobResult run();

 private:
  using StageRt = Engine::JobContext::StageRt;

  /// A shuffle built during an attempt but not yet committed: ids are only
  /// assigned (and the output published) when the attempt survives, so an
  /// aborted attempt leaves no half-written shuffle behind.
  struct PendingShuffle {
    ShuffleOutput so;
    std::size_t consumer = 0;
  };

  /// Everything one stage attempt produced, separated from the engine state
  /// it would mutate so a mid-window failure can discard it wholesale.
  struct Attempt {
    std::vector<TaskWork> work;
    std::vector<double> extra_work;
    std::vector<double> durations;
    std::vector<double> fetch_portion;
    std::vector<double> compute_portion;
    std::vector<std::size_t> attempts;  ///< injected-fault attempts per task
    std::vector<double> starts;
    std::vector<double> ends;
    std::vector<std::size_t> slots;  ///< core slot index on the task's node
    double makespan = 0.0;
    std::vector<PendingShuffle> pending;
    std::uint64_t stage_shuffle_write = 0;
    std::uint64_t write_transactions = 0;
    std::vector<const Dataset*> to_cache;
    std::unordered_map<const Dataset*, std::vector<Partition>> cache_snapshots;
    const CachedDataset* cached = nullptr;
    /// Keeps `cached` alive and eviction-proof for the attempt's duration.
    BlockManager::Pin cache_pin;
    /// Per-task working-set spill (modeled bytes past the spill threshold).
    std::vector<double> spill_modeled;
    /// Task that OOMed this attempt (kNpos: none). The attempt must then be
    /// discarded and retried — possibly at a grown partition count.
    std::size_t oom_task = kNpos;
    /// Task whose transient fetch retry budget ran out this attempt (kNpos:
    /// none) and the source node it could not fetch from. The attempt is
    /// abandoned at the task's simulated end; run_stage deregisters the
    /// source's map outputs and escalates to a stage retry.
    std::size_t flaky_task = kNpos;
    std::size_t flaky_src = kNpos;
  };
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  // Virtual-clock plumbing: a controlled (service) job reads and advances
  // its own clock; a classic job reads and advances the engine's.
  double now() const noexcept {
    return ctx_.control ? ctx_.vclock : eng_.sim_clock_;
  }
  void advance(double dt) noexcept {
    if (ctx_.control) {
      ctx_.vclock += dt;
    } else {
      eng_.sim_clock_ += dt;
    }
    // Keep the event log's sim hint fresh for clockless emitters (budget
    // scans in BlockManager/ShuffleManager stamp events with the hint).
    if (tracing()) eng_.event_log_->set_sim_hint(now());
  }
  void set_now(double t) noexcept {
    if (ctx_.control) {
      ctx_.vclock = t;
    } else {
      eng_.sim_clock_ = t;
    }
    if (tracing()) eng_.event_log_->set_sim_hint(now());
  }
  /// Abort (via the standard JobAbortedError path) when the job was
  /// cancelled or its virtual deadline passed. Called at stage boundaries.
  void check_interrupt() const;

  void run_stage(std::size_t s);
  void execute_attempt(std::size_t s, StageMetrics& sm, Attempt& a);
  void commit_attempt(std::size_t s, StageMetrics& sm, Attempt& a);
  /// Checkpoint resume (DESIGN.md §16): adopt this job's committed-stage
  /// prefix from the engine's ResumeLedger — re-register restored shuffles,
  /// cached blocks and result partitions, replay metrics rows and event
  /// history, fast-forward the virtual clock — and return the plan index of
  /// the first stage still to execute. Returns 0 (run everything) whenever
  /// adoption would not be provably bit-identical to a cold rerun.
  std::size_t adopt_restored();
  Partition read_stage_input(std::size_t s, std::size_t p, std::size_t dst,
                             const CachedDataset* cached,
                             const std::vector<ShuffleOutput*>& parents,
                             bool consume, TaskWork& tw);
  double price_task(const TaskWork& tw, double extra_units, std::size_t n,
                    double fetch_share, double* fetch_out, double* compute_out,
                    double* spill_out = nullptr) const;

  // Memory machinery (DESIGN.md §11).
  /// Scan a priced attempt for the first task to die of OOM (enforced
  /// ceiling or injected schedule); records it in a.oom_task.
  void detect_oom(std::size_t s, const StageMetrics& sm, Attempt& a) const;
  /// Adaptive repartition-on-OOM: retry stage s with P' = ceil(P * growth).
  /// Shuffle-input stages re-bucket their retained parent map outputs under
  /// the grown partitioner (charged as recovery time); source stages grow
  /// their split count. Returns false when the count is pinned (cache input).
  bool grow_stage_partitions(std::size_t s, StageMetrics& sm);
  /// Per-node resident-memory bookkeeping for a committed attempt.
  void note_memory(std::size_t s, StageMetrics& sm, const Attempt& a);

  // Failure machinery.
  void process_barrier_failures(std::size_t stage_global_id);
  void fire_failure(std::size_t i, double at_time);
  bool scan_window_failures(std::size_t s, StageMetrics& sm, double makespan);
  bool stage_depends_on_node(std::size_t s, std::size_t node) const;

  // Node health scoreboard (DESIGN.md §14). Classic single-job mode only:
  // the scoreboard is engine-global state, and concurrent service jobs with
  // their own virtual clocks would race its exclusion/readmission timing.
  bool health_active() const noexcept {
    return ctx_.control == nullptr && eng_.options_.health.exclude_enabled;
  }
  /// Count one failure against `node`; on the strike that transitions it to
  /// excluded, bump sm.node_exclusions and emit kNodeExcluded.
  void record_strike(std::size_t node, HealthStrike kind, StageMetrics& sm);
  /// Re-admit nodes whose exclusion window expired, emitting kNodeReadmitted.
  void sweep_health();

  // Block integrity (DESIGN.md §14): checksum verification + corruption
  // injection over shuffle map outputs and cached partitions.
  void verify_shuffle_sums(ShuffleOutput& so, StageMetrics& sm);
  void verify_cache_sums(const Dataset* anchor, StageMetrics& sm);
  void fire_shuffle_corruption(std::size_t stage_global_id, ShuffleOutput& so);
  void fire_cache_corruption(std::size_t dataset_id, CachedDataset& cd);

  // Lineage recovery.
  void recover_stage_inputs(std::size_t s, StageMetrics& sm);
  void recover_map_tasks(std::size_t producer, StageMetrics& sm);
  void recover_cached_blocks(const Dataset* anchor, StageMetrics& sm);
  void replay_bucket_row(ShuffleOutput& so, std::size_t m,
                         const StagePlan& cplan, const Partition& out,
                         TaskWork& tw);
  void price_recovery(const std::vector<std::size_t>& nodes,
                      const std::vector<TaskWork>& works, StageMetrics& sm);

  void release_job_shuffles();

  // Structured event log (obs/event_log.h). tracing() — one relaxed atomic
  // load behind a null check — is the only cost instrumented paths pay when
  // no log or sink is attached; every emit site is guarded by it.
  bool tracing() const noexcept {
    return eng_.event_log_ != nullptr && eng_.event_log_->enabled();
  }
  /// Emit with an explicit sim-time stamp, refreshing the hint clockless
  /// subsystems (eviction/spill scans) stamp their own events with.
  void emit_at(double sim, obs::Event e) const {
    e.sim = sim;
    eng_.event_log_->set_sim_hint(sim);
    eng_.event_log_->emit(std::move(e));
  }
  void emit(obs::Event e) const { emit_at(now(), std::move(e)); }
  void emit_job_finish(const JobMetrics& jm) const;
  void emit_stage_end(std::size_t s, const StageMetrics& sm,
                      const Attempt& a) const;

  Engine& eng_;
  Engine::JobContext& ctx_;
  const CostModel& cm_;
  const bool ft_;       ///< failure schedule active
  const bool mem_;      ///< memory budgets enforced
  const bool oom_inj_;  ///< OOM injection schedule active
  const bool flaky_;    ///< transient fetch-failure injection active
  const bool corrupt_;  ///< corruption schedule armed
  const bool integrity_;  ///< record + verify block checksums
  /// Retained-data mode: shuffle reads copy instead of consume and map
  /// outputs live until job end. Any configuration that can retry a stage
  /// attempt (node failures, enforced memory, OOM injection) needs it.
  const bool retain_;
  JobMetrics job_metrics_;
};

JobResult JobRunner::run() {
  const auto job_t0 = Clock::now();
  const double job_sim_start = now();
  job_metrics_.job_id = ctx_.job_id;
  job_metrics_.name = ctx_.name;

  if (tracing()) {
    obs::Event e;
    e.kind = obs::EventKind::kJobSubmit;
    e.job = ctx_.job_id;
    e.name = ctx_.name;
    e.count = ctx_.plan.stages.size();
    emit(std::move(e));
  }

  try {
    const std::size_t first = adopt_restored();
    for (std::size_t s = first; s < ctx_.plan.stages.size(); ++s) run_stage(s);
  } catch (const std::exception& e) {
    // Abort path: never leak this job's shuffles, and leave a structured
    // partial JobMetrics row covering the stages that did complete.
    release_job_shuffles();
    job_metrics_.failed = true;
    job_metrics_.error = e.what();
    job_metrics_.sim_time_s = now() - job_sim_start;
    job_metrics_.wall_time_s = seconds_since(job_t0);
    if (tracing()) emit_job_finish(job_metrics_);
    eng_.metrics_.add_job(std::move(job_metrics_));
    throw;
  }

  // Fault-tolerant mode retains shuffles until job end for lineage replay;
  // release them now. (The classic path released per stage already — the
  // remove calls below are no-ops there.)
  release_job_shuffles();

  ctx_.result.job_id = ctx_.job_id;
  ctx_.result.name = ctx_.name;
  ctx_.result.sim_time_s = now() - job_sim_start;
  ctx_.result.wall_time_s = seconds_since(job_t0);
  ctx_.result.stage_ids = job_metrics_.stage_ids;
  ctx_.result.stage_attempts = job_metrics_.stage_attempts;
  ctx_.result.recomputed_tasks = job_metrics_.recomputed_tasks;
  ctx_.result.lost_bytes = job_metrics_.lost_bytes;
  ctx_.result.recomputed_bytes = job_metrics_.recomputed_bytes;
  ctx_.result.recovery_time_s = job_metrics_.recovery_time_s;
  ctx_.result.fetch_retries = job_metrics_.fetch_retries;
  ctx_.result.refetched_bytes = job_metrics_.refetched_bytes;
  ctx_.result.checksum_failures = job_metrics_.checksum_failures;
  ctx_.result.node_exclusions = job_metrics_.node_exclusions;
  ctx_.result.oom_count = job_metrics_.oom_count;
  ctx_.result.evicted_bytes = job_metrics_.evicted_bytes;
  ctx_.result.spilled_bytes = job_metrics_.spilled_bytes;
  ctx_.result.peak_resident_bytes = job_metrics_.peak_resident_bytes;
  ctx_.result.resumed_stages = job_metrics_.resumed_stages;
  ctx_.result.replayed_events = job_metrics_.replayed_events;
  ctx_.result.restored_bytes = job_metrics_.restored_bytes;
  ctx_.result.recovery_wall_s = job_metrics_.recovery_wall_s;
  ctx_.result.cache_hits = job_metrics_.cache_hits;
  ctx_.result.cache_misses = job_metrics_.cache_misses;
  ctx_.result.recompute_saved_bytes = job_metrics_.recompute_saved_bytes;
  ctx_.result.evictions_lru = job_metrics_.evictions_lru;
  ctx_.result.evictions_cost = job_metrics_.evictions_cost;

  job_metrics_.sim_time_s = ctx_.result.sim_time_s;
  job_metrics_.wall_time_s = ctx_.result.wall_time_s;
  if (tracing()) emit_job_finish(job_metrics_);
  eng_.metrics_.add_job(std::move(job_metrics_));
  return std::move(ctx_.result);
}

std::size_t JobRunner::adopt_restored() {
  if (eng_.resume_ledger_ == nullptr) return 0;
  // Classic single-job mode only: adoption rewinds engine-global state (the
  // sim clock, the stage-id counter) that concurrent service jobs share.
  if (ctx_.control != nullptr) return 0;
  // Retained-data configurations (failure/memory/OOM/flaky/corruption
  // schedules) can retry attempts; their committed rows are not guaranteed
  // to describe a clean first-attempt execution of engine-global effects.
  // Full deterministic re-execution is bit-identical anyway.
  if (retain_) return 0;
  auto& jobs = eng_.resume_ledger_->jobs;
  if (ctx_.job_id >= jobs.size()) return 0;
  JobResume& jr = jobs[ctx_.job_id];
  if (jr.full_rerun || jr.stages.empty()) return 0;
  if (jr.stages.size() > ctx_.plan.stages.size()) return 0;
  const std::size_t k = jr.stages.size();

  // ---- validation pass (no engine mutation) ------------------------------
  // Reject anything that is not provably a clean prefix of THIS plan; the
  // caller then re-executes from stage 0, which the determinism contract
  // (bench/chaos_fuzz) guarantees is bit-identical to the original run.
  std::unordered_set<std::size_t> cached_sim;  // ids cached by earlier stages
  for (std::size_t s = 0; s < k; ++s) {
    const StageRestore& sr = jr.stages[s];
    const StageMetrics& row = sr.row;
    const StagePlan& plan = ctx_.plan.stages[s];
    if (row.signature != plan.signature) return 0;
    if (row.attempt_count != 1 || row.recomputed_tasks != 0 ||
        row.recomputed_bytes != 0 || row.recovery_time_s != 0.0 ||
        row.fetch_retries != 0 || row.refetched_bytes != 0 ||
        row.checksum_failures != 0 || row.node_exclusions != 0 ||
        row.oom_count != 0) {
      return 0;
    }
    // Cache misses and evictions imply a budget re-shaped the block store
    // mid-run — not a clean first-attempt row. Hits are fine: clean runs of
    // iterative workloads read resident caches every round.
    if (row.cache_misses != 0 || row.evictions_lru != 0 ||
        row.evictions_cost != 0) {
      return 0;
    }
    if (row.tasks.size() != row.num_partitions || row.tasks.empty()) return 0;
    // Exactly one restored shuffle per consumer, in plan order.
    if (sr.shuffles.size() != plan.consumers.size()) return 0;
    for (std::size_t ci = 0; ci < sr.shuffles.size(); ++ci) {
      if (sr.shuffles[ci].consumer != plan.consumers[ci]) return 0;
      if (sr.shuffles[ci].so.buckets.size() != row.tasks.size()) return 0;
    }
    // Cache commits must line up with the commit order execute_attempt
    // would produce: anchor first (unless the stage reads it), then narrow
    // ops, skipping datasets already materialized by earlier stages.
    std::vector<const Dataset*> to_cache;
    const auto needs_cache = [&](const Dataset* ds) {
      return ds->cached() && !eng_.block_manager_.contains(ds->id()) &&
             cached_sim.count(ds->id()) == 0;
    };
    if (plan.input != StageInputKind::kCache && needs_cache(plan.anchor)) {
      to_cache.push_back(plan.anchor);
    }
    for (const auto* op : plan.narrow_ops) {
      if (needs_cache(op)) to_cache.push_back(op);
    }
    if (sr.caches.size() != to_cache.size()) return 0;
    for (std::size_t i = 0; i < sr.caches.size(); ++i) {
      if (sr.caches[i].ordinal != i) return 0;
      if (sr.caches[i].cd.partitions.size() != row.tasks.size()) return 0;
    }
    for (const auto* ds : to_cache) cached_sim.insert(ds->id());
    if (plan.is_result && !sr.has_result) return 0;
  }

  // ---- adoption pass -----------------------------------------------------
  const auto t0 = Clock::now();
  std::uint64_t restored_bytes = 0;
  for (std::size_t s = 0; s < k; ++s) {
    StageRestore& sr = jr.stages[s];
    StageMetrics& row = sr.row;
    const StagePlan& plan = ctx_.plan.stages[s];
    auto& rt = ctx_.rt[s];

    // Keep the engine-global stage-id counter exactly where the original
    // run left it so continued stages draw the same ids.
    eng_.next_stage_id_.store(row.stage_id + 1, std::memory_order_relaxed);
    job_metrics_.stage_ids.push_back(row.stage_id);

    rt.num_tasks = row.tasks.size();
    rt.task_node.resize(rt.num_tasks);
    for (std::size_t p = 0; p < rt.num_tasks; ++p) {
      rt.task_node[p] = row.tasks[p].node;
    }

    // Replay event history at the original sim stamps: stage entry events
    // at sim_start_s, the closing records after the makespan advance.
    set_now(row.sim_start_s);
    if (tracing()) {
      obs::Event e;
      e.kind = obs::EventKind::kStageStart;
      e.job = ctx_.job_id;
      e.stage = row.stage_id;
      e.plan_index = s;
      e.signature = row.signature;
      e.name = row.name;
      if (row.is_shuffle_map) e.flags |= obs::kFlagShuffleMap;
      e.num_partitions = rt.num_tasks;
      emit(std::move(e));
    }

    // Re-commit cached datasets under this process's dataset ids (matched
    // by commit ordinal — the walk below reproduces execute_attempt's
    // to_cache order, validated above).
    std::vector<const Dataset*> to_cache;
    const auto needs_cache = [&](const Dataset* ds) {
      return ds->cached() && !eng_.block_manager_.contains(ds->id());
    };
    if (plan.input != StageInputKind::kCache && needs_cache(plan.anchor)) {
      to_cache.push_back(plan.anchor);
    }
    for (const auto* op : plan.narrow_ops) {
      if (needs_cache(op)) to_cache.push_back(op);
    }
    for (RestoredCache& rc : sr.caches) {
      const Dataset* ds = to_cache[rc.ordinal];
      CachedDataset cd = std::move(rc.cd);
      cd.lineage = const_cast<Dataset*>(ds)->shared_from_this();
      restored_bytes += cd.bytes;
      if (cd.partitioner) {
        ctx_.partitioner_cache.emplace(
            std::make_pair(cd.partitioner->kind(),
                           cd.partitioner->num_partitions()),
            cd.partitioner);
      }
      if (tracing()) {
        obs::Event e;
        e.kind = obs::EventKind::kBlockStore;
        e.job = ctx_.job_id;
        e.stage = row.stage_id;
        e.dataset = ds->id();
        e.name = ds->label();
        e.bytes = cd.bytes;
        e.count = cd.partitions.size();
        emit(std::move(e));
      }
      // Re-persist into the NEW checkpoint epoch so a second crash during
      // the resumed run can itself be resumed (double-resume idempotence).
      if (eng_.ckpt_hook_ != nullptr) {
        eng_.ckpt_hook_->on_cache_committed(ctx_.job_id, s, rc.ordinal, cd);
      }
      eng_.block_manager_.put(ds->id(), std::move(cd));
    }

    // Re-register restored shuffle publications under fresh ids.
    for (RestoredShuffle& rs : sr.shuffles) {
      ShuffleOutput so = std::move(rs.so);
      so.shuffle_id = eng_.shuffles_.next_id();
      auto& crt = ctx_.rt[rs.consumer];
      crt.shuffle_from_producer.emplace(s, so.shuffle_id);
      rt.written.push_back({so.shuffle_id, rs.consumer});
      ctx_.job_shuffle_ids.push_back(so.shuffle_id);
      restored_bytes += so.total_bytes;
      if (!crt.partitioner) crt.partitioner = so.partitioner;
      if (so.partitioner) {
        // Seed the co-partition cache so later stages that would have
        // reused this partitioner in the original run reuse the restored
        // one (range bounds included) instead of re-sampling.
        ctx_.partitioner_cache.emplace(
            std::make_pair(so.partitioner->kind(),
                           so.partitioner->num_partitions()),
            so.partitioner);
      }
      if (tracing()) {
        obs::Event e;
        e.kind = obs::EventKind::kShuffleWrite;
        e.job = ctx_.job_id;
        e.stage = row.stage_id;
        e.plan_index = rs.consumer;
        e.shuffle = so.shuffle_id;
        e.bytes = so.total_bytes;
        e.count = so.num_map_tasks;
        e.num_partitions = so.partitioner ? so.partitioner->num_partitions()
                                          : crt.num_tasks;
        if (so.passthrough) e.flags |= obs::kFlagPassthrough;
        emit(std::move(e));
      }
      if (eng_.ckpt_hook_ != nullptr) {
        eng_.ckpt_hook_->on_shuffle_committed(ctx_.job_id, s, rs.consumer, so);
      }
      eng_.shuffles_.put(std::move(so));
    }

    // Result stage: fold the restored output into the JobResult exactly
    // like commit_attempt does.
    if (plan.is_result && sr.has_result) {
      if (ctx_.collect_records) {
        for (const auto& part : sr.result_parts) {
          part.append_records_to(ctx_.result.records);
        }
      }
      for (const auto& tm : row.tasks) ctx_.result.count += tm.records_out;
      for (const auto& part : sr.result_parts) restored_bytes += part.bytes();
      if (eng_.ckpt_hook_ != nullptr) {
        eng_.ckpt_hook_->on_result_committed(ctx_.job_id, s, sr.result_parts);
      }
    }

    // Adopted consumers already consumed their parent shuffles in the
    // original run: mirror commit_attempt's classic-mode release.
    if (plan.input == StageInputKind::kShuffle) {
      for (const std::size_t parent : plan.parent_stages) {
        const auto it = rt.shuffle_from_producer.find(parent);
        if (it != rt.shuffle_from_producer.end()) {
          eng_.shuffles_.remove(it->second);
          rt.shuffle_from_producer.erase(it);
        }
      }
    }

    // Fast-forward the virtual clock through the stage's makespan and
    // replay its metrics row (registry + job aggregates) bit-for-bit.
    set_now(row.sim_start_s + row.sim_time_s);
    job_metrics_.stage_attempts += row.attempt_count;
    job_metrics_.recomputed_tasks += row.recomputed_tasks;
    job_metrics_.recomputed_bytes += row.recomputed_bytes;
    job_metrics_.recovery_time_s += row.recovery_time_s;
    job_metrics_.fetch_retries += row.fetch_retries;
    job_metrics_.refetched_bytes += row.refetched_bytes;
    job_metrics_.checksum_failures += row.checksum_failures;
    job_metrics_.node_exclusions += row.node_exclusions;
    job_metrics_.oom_count += row.oom_count;
    job_metrics_.evicted_bytes += row.evicted_bytes;
    job_metrics_.spilled_bytes += row.spilled_bytes;
    job_metrics_.peak_resident_bytes =
        std::max(job_metrics_.peak_resident_bytes, row.peak_resident_bytes);
    job_metrics_.cache_hits += row.cache_hits;
    job_metrics_.cache_misses += row.cache_misses;
    job_metrics_.recompute_saved_bytes += row.recompute_saved_bytes;
    job_metrics_.evictions_lru += row.evictions_lru;
    job_metrics_.evictions_cost += row.evictions_cost;
    if (tracing()) emit_stage_end(s, row, Attempt{});
    eng_.metrics_.add_stage(std::move(row));
  }

  job_metrics_.resumed_stages = k;
  job_metrics_.replayed_events = jr.replayed_events;
  job_metrics_.restored_bytes = restored_bytes;
  job_metrics_.recovery_wall_s = seconds_since(t0);
  if (tracing()) {
    obs::Event e;
    e.kind = obs::EventKind::kResume;
    e.job = ctx_.job_id;
    e.count = k;
    e.resumed_stages = k;
    e.replayed_events = jr.replayed_events;
    e.restored_bytes = restored_bytes;
    e.recovery_wall_s = job_metrics_.recovery_wall_s;
    emit(std::move(e));
  }
  return k;
}

void JobRunner::emit_job_finish(const JobMetrics& jm) const {
  obs::Event e;
  e.kind = obs::EventKind::kJobFinish;
  e.job = jm.job_id;
  e.name = jm.name;
  e.sim_time_s = jm.sim_time_s;
  e.wall_time_s = jm.wall_time_s;
  e.list.assign(jm.stage_ids.begin(), jm.stage_ids.end());
  if (jm.failed) e.flags |= obs::kFlagFailed;
  e.detail = jm.error;
  e.stage_attempts = jm.stage_attempts;
  e.recomputed_tasks = jm.recomputed_tasks;
  e.lost_bytes = jm.lost_bytes;
  e.recomputed_bytes = jm.recomputed_bytes;
  e.recovery_time_s = jm.recovery_time_s;
  e.fetch_retries = jm.fetch_retries;
  e.refetched_bytes = jm.refetched_bytes;
  e.checksum_failures = jm.checksum_failures;
  e.node_exclusions = jm.node_exclusions;
  e.oom_count = jm.oom_count;
  e.evicted_bytes = jm.evicted_bytes;
  e.spilled_bytes = jm.spilled_bytes;
  e.peak_resident_bytes = jm.peak_resident_bytes;
  e.resumed_stages = jm.resumed_stages;
  e.replayed_events = jm.replayed_events;
  e.restored_bytes = jm.restored_bytes;
  e.recovery_wall_s = jm.recovery_wall_s;
  e.cache_hits = jm.cache_hits;
  e.cache_misses = jm.cache_misses;
  e.recompute_saved_bytes = jm.recompute_saved_bytes;
  e.evictions_lru = jm.evictions_lru;
  e.evictions_cost = jm.evictions_cost;
  emit(std::move(e));
}

void JobRunner::emit_stage_end(std::size_t s, const StageMetrics& sm,
                               const Attempt& a) const {
  // One span per committed task. Span times are stage-window-relative (the
  // exporter and replay add sim_start_s); fields mirror TaskMetrics exactly
  // so replay is bit-identical.
  for (std::size_t p = 0; p < sm.tasks.size(); ++p) {
    const TaskMetrics& tm = sm.tasks[p];
    obs::Event e;
    e.kind = obs::EventKind::kTaskSpan;
    e.job = sm.job_id;
    e.stage = sm.stage_id;
    e.plan_index = s;
    e.task = tm.task_index;
    e.node = tm.node;
    e.slot = p < a.slots.size() ? a.slots[p] : 0;
    e.attempt = tm.attempts;
    e.fetch_retries = tm.fetch_retries;
    e.t_start = tm.sim_start;
    e.t_end = tm.sim_end;
    e.compute_s = tm.compute_s;
    e.fetch_s = tm.fetch_s;
    e.records_in = tm.records_in;
    e.records_out = tm.records_out;
    e.bytes_in = tm.bytes_in;
    e.bytes_out = tm.bytes_out;
    e.shuffle_read_remote = tm.shuffle_read_remote;
    e.shuffle_read_local = tm.shuffle_read_local;
    if (tm.shuffle_read_remote > 0) e.flags |= obs::kFlagRemoteFetch;
    if (tm.shuffle_read_local > 0) e.flags |= obs::kFlagLocalFetch;
    if (p < a.spill_modeled.size() && a.spill_modeled[p] > 0.0) {
      e.flags |= obs::kFlagSpilled;
      e.spilled_bytes = static_cast<std::uint64_t>(a.spill_modeled[p]);
    }
    emit(std::move(e));
  }

  // The closing stage record carries every scalar StageMetrics field, so a
  // HistoryReader can rebuild the row without the live run.
  obs::Event e;
  e.kind = obs::EventKind::kStageEnd;
  e.job = sm.job_id;
  e.stage = sm.stage_id;
  e.plan_index = s;
  e.signature = sm.signature;
  e.name = sm.name;
  if (sm.is_shuffle_map) e.flags |= obs::kFlagShuffleMap;
  if (sm.fixed_partitions) e.flags |= obs::kFlagFixedPartitions;
  if (sm.user_fixed) e.flags |= obs::kFlagUserFixed;
  e.num_partitions = sm.num_partitions;
  e.partitioner = static_cast<std::uint64_t>(sm.partitioner);
  e.anchor_op = static_cast<std::uint64_t>(sm.anchor_op);
  e.list = sm.parent_signatures;
  e.records_in = sm.input_records;
  e.bytes_in = sm.input_bytes;
  e.records_out = sm.output_records;
  e.bytes_out = sm.output_bytes;
  e.shuffle_read_bytes = sm.shuffle_read_bytes;
  e.shuffle_write_bytes = sm.shuffle_write_bytes;
  e.attempt = sm.attempt_count;
  e.recomputed_tasks = sm.recomputed_tasks;
  e.recomputed_bytes = sm.recomputed_bytes;
  e.recovery_time_s = sm.recovery_time_s;
  e.fetch_retries = sm.fetch_retries;
  e.refetched_bytes = sm.refetched_bytes;
  e.checksum_failures = sm.checksum_failures;
  e.node_exclusions = sm.node_exclusions;
  e.oom_count = sm.oom_count;
  e.list2.assign(sm.oomed_partition_counts.begin(),
                 sm.oomed_partition_counts.end());
  e.evicted_bytes = sm.evicted_bytes;
  e.spilled_bytes = sm.spilled_bytes;
  e.peak_resident_bytes = sm.peak_resident_bytes;
  e.cache_hits = sm.cache_hits;
  e.cache_misses = sm.cache_misses;
  e.recompute_saved_bytes = sm.recompute_saved_bytes;
  e.evictions_lru = sm.evictions_lru;
  e.evictions_cost = sm.evictions_cost;
  e.sim_time_s = sm.sim_time_s;
  e.sim_start_s = sm.sim_start_s;
  e.wall_time_s = sm.wall_time_s;
  emit(std::move(e));
}

void JobRunner::check_interrupt() const {
  const JobControl* ctl = ctx_.control;
  if (ctl == nullptr) return;
  if (ctl->cancel != nullptr && ctl->cancel->load(std::memory_order_acquire)) {
    throw JobAbortedError("job '" + ctx_.name + "' cancelled");
  }
  if (ctl->deadline >= 0.0 && ctx_.vclock > ctl->deadline) {
    throw JobAbortedError("job '" + ctx_.name + "' missed virtual deadline (" +
                          std::to_string(ctl->deadline) + "s)");
  }
}

void JobRunner::run_stage(std::size_t s) {
  check_interrupt();
  const StagePlan& plan = ctx_.plan.stages[s];
  const auto stage_t0 = Clock::now();

  StageMetrics sm;
  sm.stage_id = eng_.next_stage_id_.fetch_add(1, std::memory_order_relaxed);
  sm.job_id = ctx_.job_id;
  sm.signature = plan.signature;
  sm.name = plan.name;
  sm.is_shuffle_map = !plan.consumers.empty();
  sm.anchor_op = plan.anchor->op();
  for (const std::size_t parent : plan.parent_stages) {
    sm.parent_signatures.push_back(ctx_.plan.stages[parent].signature);
  }
  sm.fixed_partitions = plan.fixed_partitions;
  sm.user_fixed = plan.input == StageInputKind::kShuffle &&
                  plan.anchor->shuffle_request().user_fixed;
  job_metrics_.stage_ids.push_back(sm.stage_id);

  if (tracing()) {
    obs::Event e;
    e.kind = obs::EventKind::kStageStart;
    e.job = ctx_.job_id;
    e.stage = sm.stage_id;
    e.plan_index = s;
    e.signature = sm.signature;
    e.name = sm.name;
    if (sm.is_shuffle_map) e.flags |= obs::kFlagShuffleMap;
    e.num_partitions = ctx_.rt[s].num_tasks;
    emit(std::move(e));
  }

  const std::size_t max_attempts = std::max<std::size_t>(
      1, eng_.options_.failure_schedule.max_stage_attempts);

  // Ledger totals at stage entry: the deltas at exit attribute evictions and
  // disk-tier spills (wherever in the engine they fired) to this stage.
  const std::uint64_t evicted0 = eng_.mem_ledger_.total_evicted();
  const std::uint64_t spilled0 = eng_.mem_ledger_.total_spilled();
  const std::size_t ev_lru0 = eng_.mem_ledger_.total_evictions_lru();
  const std::size_t ev_cost0 = eng_.mem_ledger_.total_evictions_cost();

  Attempt a;
  std::size_t consecutive_oom = 0;
  for (std::size_t attempt = 1;; ++attempt) {
    sm.attempt_count = attempt;
    if (health_active()) sweep_health();
    if (ft_) process_barrier_failures(sm.stage_id);
    // Cache telemetry (DESIGN.md §17): every cached-input partition resident
    // at attempt start is a hit — its bytes are recomputation the cache
    // saved. Partitions healed below count as misses (recover_cached_blocks).
    if (plan.input == StageInputKind::kCache) {
      std::size_t hits = 0;
      std::uint64_t saved = 0;
      if (auto cache_pin = eng_.block_manager_.pin(plan.anchor->id())) {
        auto g = eng_.block_manager_.guard();
        const CachedDataset& cd = *cache_pin;
        for (std::size_t p = 0; p < cd.partitions.size(); ++p) {
          if (cd.available.empty() || cd.available[p]) {
            ++hits;
            saved += cd.partitions[p].bytes();
          }
        }
      }
      sm.cache_hits += hits;
      sm.recompute_saved_bytes += saved;
      if (hits > 0 && tracing()) {
        obs::Event e;
        e.kind = obs::EventKind::kCacheHit;
        e.job = ctx_.job_id;
        e.stage = sm.stage_id;
        e.plan_index = s;
        e.attempt = attempt;
        e.dataset = plan.anchor->id();
        e.name = plan.anchor->label();
        e.count = hits;
        e.bytes = saved;
        emit(std::move(e));
      }
    }
    // Heal evicted cache blocks / lost shuffle rows before (re)executing.
    if (retain_) recover_stage_inputs(s, sm);
    a = Attempt{};
    execute_attempt(s, sm, a);
    if (a.oom_task != kNpos) {
      // The attempt dies at the OOM task's simulated end; everything it ran
      // until then is wasted cluster time.
      const double wasted = a.ends[a.oom_task];
      advance(wasted);
      sm.recovery_time_s += wasted;
      ++sm.oom_count;
      sm.oomed_partition_counts.push_back(ctx_.rt[s].num_tasks);
      eng_.mem_ledger_.add_oom(ctx_.rt[s].task_node[a.oom_task]);
      record_strike(ctx_.rt[s].task_node[a.oom_task], HealthStrike::kTask, sm);
      if (tracing()) {
        obs::Event e;
        e.kind = obs::EventKind::kStageRetry;
        e.job = ctx_.job_id;
        e.stage = sm.stage_id;
        e.plan_index = s;
        e.attempt = attempt;
        e.task = a.oom_task;
        e.node = ctx_.rt[s].task_node[a.oom_task];
        e.num_partitions = ctx_.rt[s].num_tasks;
        e.value = wasted;
        e.flags |= obs::kFlagOom;
        e.detail = "oom";
        emit(std::move(e));
      }
      ++consecutive_oom;
      if (attempt >= max_attempts) {
        throw TaskOomError(
            "stage " + plan.name + " exceeded " + std::to_string(max_attempts) +
            " attempts: task working set out of memory at P=" +
            std::to_string(ctx_.rt[s].num_tasks));
      }
      // Degraded-but-alive: after enough consecutive OOMs, stop retrying at
      // the same partition count and grow it (smaller per-task footprint).
      const std::size_t grow_after = std::max<std::size_t>(
          1, eng_.options_.memory.oom_repartition_after);
      if (consecutive_oom >= grow_after && grow_stage_partitions(s, sm)) {
        consecutive_oom = 0;
      }
      continue;
    }
    if (a.flaky_task != kNpos) {
      // A fetch segment exhausted its retry budget: the attempt dies at the
      // task's simulated end. Deregister the unreachable source's map
      // outputs — Spark drops a fetch-failed executor's map statuses — so
      // the next attempt heals them by lineage replay, re-homed by node_for
      // away from the node if health exclusion has kicked in.
      const double wasted = a.ends[a.flaky_task];
      advance(wasted);
      sm.recovery_time_s += wasted;
      LossReport lr = eng_.shuffles_.invalidate_node(a.flaky_src);
      job_metrics_.lost_bytes += lr.lost_bytes;
      record_strike(a.flaky_src, HealthStrike::kFetch, sm);
      if (tracing()) {
        obs::Event e;
        e.kind = obs::EventKind::kStageRetry;
        e.job = ctx_.job_id;
        e.stage = sm.stage_id;
        e.plan_index = s;
        e.attempt = attempt;
        e.task = a.flaky_task;
        e.node = a.flaky_src;
        e.num_partitions = ctx_.rt[s].num_tasks;
        e.value = wasted;
        e.flags |= obs::kFlagFailed;
        e.detail = "fetch-timeout";
        emit(std::move(e));
      }
      if (attempt >= max_attempts) {
        throw JobAbortedError("stage " + plan.name + " exceeded " +
                              std::to_string(max_attempts) +
                              " attempts after transient fetch failures");
      }
      consecutive_oom = 0;
      continue;
    }
    if (ft_ && scan_window_failures(s, sm, a.makespan)) {
      // The attempt was cut down mid-window by a node this stage depends
      // on; the wasted sim time is already accounted. Retry from the top
      // (recovery will heal the inputs the failure just destroyed).
      if (tracing()) {
        obs::Event e;
        e.kind = obs::EventKind::kStageRetry;
        e.job = ctx_.job_id;
        e.stage = sm.stage_id;
        e.plan_index = s;
        e.attempt = attempt;
        e.num_partitions = ctx_.rt[s].num_tasks;
        e.flags |= obs::kFlagFailed;
        e.detail = "fetch-failure";
        emit(std::move(e));
      }
      if (attempt >= max_attempts) {
        throw JobAbortedError("stage " + plan.name + " exceeded " +
                              std::to_string(max_attempts) +
                              " attempts after node failures");
      }
      consecutive_oom = 0;
      continue;
    }
    break;
  }

  // Service mode: before the stage's simulated window is charged, obtain an
  // exclusive cluster window from the slot ledger. Concurrent jobs contend
  // here — the grant may start later than this job's own clock (another
  // job's stage ran meanwhile), which is exactly the queueing delay a busy
  // shared cluster imposes. A job running alone is always granted
  // back-to-back windows, reproducing the classic timings bit-for-bit.
  if (ctx_.control != nullptr) {
    check_interrupt();
    if (ctx_.control->arbiter != nullptr) {
      ctx_.vclock = ctx_.control->arbiter->acquire(ctx_.control->token,
                                                   ctx_.vclock, a.makespan);
    }
  }

  commit_attempt(s, sm, a);
  sm.wall_time_s = seconds_since(stage_t0);

  // Memory telemetry: ledger deltas attribute this stage's evictions and
  // disk-tier spills; settle the storage budget now that the stage's pin on
  // its cached input (if any) is released.
  a.cache_pin.reset();
  if (mem_) eng_.block_manager_.enforce_budget();
  sm.evicted_bytes += eng_.mem_ledger_.total_evicted() - evicted0;
  sm.spilled_bytes += eng_.mem_ledger_.total_spilled() - spilled0;
  sm.evictions_lru += eng_.mem_ledger_.total_evictions_lru() - ev_lru0;
  sm.evictions_cost += eng_.mem_ledger_.total_evictions_cost() - ev_cost0;

  job_metrics_.stage_attempts += sm.attempt_count;
  job_metrics_.recomputed_tasks += sm.recomputed_tasks;
  job_metrics_.recomputed_bytes += sm.recomputed_bytes;
  job_metrics_.recovery_time_s += sm.recovery_time_s;
  job_metrics_.fetch_retries += sm.fetch_retries;
  job_metrics_.refetched_bytes += sm.refetched_bytes;
  job_metrics_.checksum_failures += sm.checksum_failures;
  job_metrics_.node_exclusions += sm.node_exclusions;
  job_metrics_.oom_count += sm.oom_count;
  job_metrics_.evicted_bytes += sm.evicted_bytes;
  job_metrics_.spilled_bytes += sm.spilled_bytes;
  job_metrics_.peak_resident_bytes =
      std::max(job_metrics_.peak_resident_bytes, sm.peak_resident_bytes);
  job_metrics_.cache_hits += sm.cache_hits;
  job_metrics_.cache_misses += sm.cache_misses;
  job_metrics_.recompute_saved_bytes += sm.recompute_saved_bytes;
  job_metrics_.evictions_lru += sm.evictions_lru;
  job_metrics_.evictions_cost += sm.evictions_cost;
  // Stage barrier hook: kStageEnd is delivered to sinks synchronously, so an
  // in-process sink (src/adapt's AdaptiveController) runs to completion here
  // — any plan-provider patch it makes is visible to every scheme still
  // unresolved, i.e. stages at least two hops downstream in this job (a
  // consumer's scheme resolves during its producer's shuffle write, below)
  // and all stages of later jobs.
  if (tracing()) emit_stage_end(s, sm, a);
  eng_.metrics_.add_stage(std::move(sm));
}

Partition JobRunner::read_stage_input(std::size_t s, std::size_t p,
                                      std::size_t dst,
                                      const CachedDataset* cached,
                                      const std::vector<ShuffleOutput*>& parents,
                                      bool consume, TaskWork& tw) {
  const StagePlan& plan = ctx_.plan.stages[s];
  const auto& rt = ctx_.rt[s];
  Partition part;

  switch (plan.input) {
    case StageInputKind::kSource: {
      part = plan.anchor->source_fn()(p, rt.num_tasks);
      tw.records_in = part.size();
      tw.bytes_in = part.bytes();
      tw.work_units += static_cast<double>(part.size()) * kSourceGenWork;
      break;
    }
    case StageInputKind::kCache: {
      part = copy_partition(cached->partitions[p]);
      tw.records_in = part.size();
      tw.bytes_in = part.bytes();
      tw.local_fetch_bytes += part.bytes();
      tw.work_units += static_cast<double>(part.size()) * kCacheReadWork;
      break;
    }
    case StageInputKind::kShuffle: {
      std::vector<Partition> sides;
      sides.reserve(parents.size());
      for (ShuffleOutput* so : parents) {
        Partition side;
        for (std::size_t m = 0; m < so->num_map_tasks; ++m) {
          Partition& bucket = so->buckets[m][p];
          const std::uint64_t b = bucket.bytes();
          if (so->passthrough || so->map_node[m] == dst) {
            tw.local_fetch_bytes += b;
            tw.shuffle_read_local += b;
          } else if (b > 0) {
            tw.remote_fetch[so->map_node[m]] += b;
            ++tw.remote_segments;
            tw.shuffle_read_remote += b;
          }
          // A spilled row is served from the writer's disk tier: the read
          // pays disk bandwidth on top of the local/remote transfer.
          if (b > 0 && so->row_on_disk(m)) tw.disk_read_bytes += b;
          if (consume) {
            side.absorb(std::move(bucket));
          } else {
            // Fault-tolerant mode: leave the map output in place so lineage
            // replay (and attempt retries) can read it again.
            side.absorb(copy_partition(bucket));
          }
        }
        tw.records_in += side.size();
        tw.bytes_in += side.bytes();
        sides.push_back(std::move(side));
      }
      tw.work_units +=
          static_cast<double>(tw.records_in) * plan.anchor->work_per_record();
      switch (plan.anchor->op()) {
        case OpKind::kReduceByKey:
          part = dataplane::merge_reduce_by_key(std::move(sides),
                                                plan.anchor->reduce_fn(),
                                                eng_.data_plane_ctx());
          break;
        case OpKind::kGroupByKey:
          part = dataplane::merge_group_by_key(std::move(sides));
          break;
        case OpKind::kJoin:
          part = dataplane::merge_join(std::move(sides[0]),
                                       std::move(sides[1]),
                                       plan.anchor->join_fn(),
                                       /*cogroup=*/false);
          break;
        case OpKind::kCoGroup:
          part = dataplane::merge_join(std::move(sides[0]),
                                       std::move(sides[1]),
                                       plan.anchor->join_fn(),
                                       /*cogroup=*/true);
          break;
        case OpKind::kRepartition:
        case OpKind::kUnion:
          part = dataplane::merge_concat(std::move(sides));
          break;
        case OpKind::kSortByKey:
          part = dataplane::merge_sorted(std::move(sides));
          break;
        default:
          throw std::logic_error("run_job: unexpected wide op");
      }
      break;
    }
  }
  return part;
}

double JobRunner::price_task(const TaskWork& tw, double extra_units,
                             std::size_t n, double fetch_share,
                             double* fetch_out, double* compute_out,
                             double* spill_out) const {
  const NodeSpec& node = eng_.cluster_.node(n);
  const double rescale = 1.0 / cm_.data_scale;

  double fetch_s = tw.local_fetch_bytes * rescale / cm_.local_read_bw;
  for (const auto& [src, bytes] : tw.remote_fetch) {
    const double bw =
        std::min(node.net_bw, eng_.cluster_.node(src).net_bw) / fetch_share;
    fetch_s += static_cast<double>(bytes) * rescale / bw;
  }
  fetch_s += cm_.fetch_latency_s * static_cast<double>(tw.remote_segments);
  // Spilled shuffle rows are re-read from the writer's disk tier.
  fetch_s += static_cast<double>(tw.disk_read_bytes) * rescale / cm_.disk_bw;

  double compute_s =
      (tw.work_units + extra_units) * rescale * cm_.sec_per_work_unit +
      static_cast<double>(tw.bytes_in + tw.bytes_out) * rescale *
          cm_.sec_per_byte;
  compute_s /= node.speed;

  // Working set past the per-slot spill threshold: the excess round-trips
  // through local disk. These are the bytes MemoryLimits accounts as the
  // task's working-set spill (and, past hard_ceiling, as an OOM).
  const double budget = static_cast<double>(node.memory_bytes) /
                        static_cast<double>(node.cores) * cm_.spill_fraction;
  const double resident =
      static_cast<double>(tw.bytes_in + tw.bytes_out) * rescale;
  if (resident > budget) {
    compute_s += (resident - budget) * cm_.spill_amplification / cm_.disk_bw;
    if (spill_out) *spill_out = resident - budget;
  } else if (spill_out) {
    *spill_out = 0.0;
  }

  if (fetch_out) *fetch_out = fetch_s;
  if (compute_out) *compute_out = compute_s;
  return cm_.task_launch_s + fetch_s + compute_s;
}

void JobRunner::execute_attempt(std::size_t s, StageMetrics& sm, Attempt& a) {
  const StagePlan& plan = ctx_.plan.stages[s];
  auto& rt = ctx_.rt[s];
  PlanProvider* provider = eng_.plan_provider_.get();

  // ---- determine task count & placement --------------------------------
  a.cached = nullptr;
  switch (plan.input) {
    case StageInputKind::kSource:
      rt.num_tasks =
          resolve_scheme(ctx_, s, provider, eng_.options_.default_parallelism)
              .num_partitions;
      break;
    case StageInputKind::kCache:
      // Pin: the dataset must survive (and stay eviction-proof) for the
      // whole attempt — concurrent jobs or the storage budget may otherwise
      // free partitions mid-read.
      a.cache_pin = eng_.block_manager_.pin(plan.anchor->id());
      a.cached = a.cache_pin.get();
      if (a.cached == nullptr) {
        throw std::logic_error("run_job: cache anchor not materialized: " +
                               plan.anchor->label());
      }
      {
        // Guard: a concurrent job may be healing this dataset's evicted
        // blocks; the lock also publishes those heals to our task reads.
        auto g = eng_.block_manager_.guard();
        if (retain_ && !a.cached->complete()) {
          // Recovery just ran and could not keep the blocks resident: the
          // dataset does not fit the storage budget even freshly healed.
          throw TaskOomError("cached dataset '" + plan.anchor->label() +
                             "' cannot be kept resident under the storage "
                             "budget");
        }
        rt.num_tasks = a.cached->partitions.size();
      }
      break;
    case StageInputKind::kShuffle:
      // The partitioner was built when the first producer wrote; producers
      // precede us in topological order.
      if (!rt.partitioner) {
        throw std::logic_error("run_job: shuffle partitioner missing for " +
                               plan.name);
      }
      rt.num_tasks = rt.partitioner->num_partitions();
      break;
  }
  rt.task_node.resize(rt.num_tasks);
  for (std::size_t p = 0; p < rt.num_tasks; ++p) {
    rt.task_node[p] = eng_.node_for(p, rt.num_tasks);
  }

  // ---- phase 1: real execution ------------------------------------------
  a.work = std::vector<TaskWork>(rt.num_tasks);
  rt.output.clear();
  rt.output.resize(rt.num_tasks);

  // Cache-materialization snapshots for not-yet-cached chain nodes.
  if (plan.anchor->cached() &&
      !eng_.block_manager_.contains(plan.anchor->id()) &&
      plan.input != StageInputKind::kCache) {
    a.to_cache.push_back(plan.anchor);
  }
  for (const auto* op : plan.narrow_ops) {
    if (op->cached() && !eng_.block_manager_.contains(op->id())) {
      a.to_cache.push_back(op);
    }
  }
  for (const auto* ds : a.to_cache) {
    a.cache_snapshots[ds].resize(rt.num_tasks);
  }

  // Gather parent shuffle outputs (non-owning pointers; bucket columns are
  // disjoint per task, so tasks can move/copy them out without locking).
  std::vector<ShuffleOutput*> parent_shuffles;
  if (plan.input == StageInputKind::kShuffle) {
    for (const std::size_t parent : plan.parent_stages) {
      const auto it = rt.shuffle_from_producer.find(parent);
      if (it == rt.shuffle_from_producer.end()) {
        throw std::logic_error("run_job: missing parent shuffle for " +
                               plan.name);
      }
      parent_shuffles.push_back(&eng_.shuffles_.get_mutable(it->second));
    }
  }

  common::parallel_for(*eng_.pool_, rt.num_tasks, [&](std::size_t p) {
    TaskWork& tw = a.work[p];
    Partition part = read_stage_input(s, p, rt.task_node[p], a.cached,
                                      parent_shuffles, /*consume=*/!retain_, tw);

    // Cache snapshot at the anchor point (before narrow ops).
    if (auto it = a.cache_snapshots.find(plan.anchor);
        it != a.cache_snapshots.end()) {
      it->second[p] = copy_partition(part);
    }

    for (const auto* op : plan.narrow_ops) {
      part = apply_narrow_op(*op, std::move(part), p, tw);
      if (auto it = a.cache_snapshots.find(op); it != a.cache_snapshots.end()) {
        it->second[p] = copy_partition(part);
      }
    }

    tw.records_out = part.size();
    tw.bytes_out = part.bytes();
    rt.output[p] = std::move(part);
  });

  // Track the partitioning of this stage's output for the co-partition
  // fast path: a shuffle input partitioner survives narrow ops that
  // preserve partitioning.
  if (plan.input == StageInputKind::kShuffle) {
    rt.output_partitioner = rt.partitioner;
  } else if (plan.input == StageInputKind::kCache) {
    rt.output_partitioner = a.cached->partitioner;
  }
  for (const auto* op : plan.narrow_ops) {
    if (!op->preserves_partitioning()) {
      rt.output_partitioner = nullptr;
      break;
    }
  }

  // ---- phase 2: shuffle writes for consumers -----------------------------
  // Built into pending outputs; ids are assigned and the data published only
  // when the attempt commits.
  a.extra_work.assign(rt.num_tasks, 0.0);
  const bool keep_output = plan.is_result;

  for (std::size_t ci = 0; ci < plan.consumers.size(); ++ci) {
    const std::size_t consumer = plan.consumers[ci];
    const StagePlan& cplan = ctx_.plan.stages[consumer];
    auto& crt = ctx_.rt[consumer];
    PartitionScheme scheme = resolve_scheme(ctx_, consumer, provider,
                                            eng_.options_.default_parallelism);
    // Adaptive (AQE-style) coalescing: size the reduce side from observed
    // map output volume when nothing pinned the scheme. Only the first
    // producer re-sizes (later producers must agree with the partitioner
    // already built).
    const bool scheme_pinned =
        (provider != nullptr &&
         provider->scheme_for(cplan.signature).has_value()) ||
        cplan.anchor->shuffle_request().num_partitions.has_value();
    if (eng_.options_.adaptive.enabled && !scheme_pinned && !crt.partitioner) {
      std::uint64_t out_bytes = 0;
      for (const auto& part : rt.output) out_bytes += part.bytes();
      const double modeled = static_cast<double>(out_bytes) / cm_.data_scale;
      auto target = static_cast<std::size_t>(
          modeled / static_cast<double>(
                        eng_.options_.adaptive.target_partition_bytes) +
          0.999);
      target = std::clamp(target, eng_.options_.adaptive.min_partitions,
                          eng_.options_.adaptive.max_partitions);
      scheme.num_partitions = target;
      ctx_.rt[consumer].scheme = scheme;
    }
    if (!crt.partitioner) {
      const auto cache_key = std::make_pair(scheme.kind, scheme.num_partitions);
      const auto cached_part = ctx_.partitioner_cache.find(cache_key);
      if (cached_part != ctx_.partitioner_cache.end()) {
        crt.partitioner = cached_part->second;
      } else {
        std::vector<std::uint64_t> keys;
        if (scheme.kind == PartitionerKind::kRange) {
          keys = sample_keys(rt.output);
        }
        crt.partitioner = make_partitioner(scheme.kind, scheme.num_partitions,
                                           std::move(keys));
        ctx_.partitioner_cache.emplace(cache_key, crt.partitioner);
      }
    }
    const auto& target = crt.partitioner;
    const std::size_t r_count = target->num_partitions();
    const bool last_consumer = ci + 1 == plan.consumers.size();
    const bool may_move = last_consumer && !keep_output;

    PendingShuffle ps;
    ps.consumer = consumer;
    ShuffleOutput& so = ps.so;
    so.partitioner = target;
    so.num_map_tasks = rt.num_tasks;
    so.map_node = rt.task_node;
    so.buckets.resize(rt.num_tasks);
    for (auto& row : so.buckets) row.resize(r_count);

    const bool passthrough =
        rt.output_partitioner && rt.output_partitioner->equals(*target);
    so.passthrough = passthrough;

    const bool combine = eng_.options_.map_side_combine &&
                         cplan.anchor->op() == OpKind::kReduceByKey &&
                         static_cast<bool>(cplan.anchor->reduce_fn());

    common::parallel_for(*eng_.pool_, rt.num_tasks, [&](std::size_t m) {
      auto& row = so.buckets[m];
      Partition& out = rt.output[m];
      if (passthrough) {
        // Already partitioned correctly: bucket r == m, no repartitioning
        // work, no framing overhead, reads will be node-local.
        if (may_move) {
          row[m] = std::move(out);
        } else {
          row[m] = copy_partition(out);
        }
        return;
      }
      a.extra_work[m] += static_cast<double>(out.size()) *
                         (combine ? kCombineWork : kBucketWork);
      if (combine) {
        // Map-side combine: pre-merge per (bucket, key) before the shuffle.
        dataplane::combine_scatter(out, *target, cplan.anchor->reduce_fn(),
                                   row, eng_.data_plane_ctx());
      } else {
        dataplane::radix_scatter(out, *target, row, eng_.data_plane_ctx());
        if (may_move) {
          out = Partition();  // release source records
        }
      }
    });

    std::uint64_t bytes = 0, nonempty = 0;
    for (const auto& row : so.buckets) {
      for (const auto& b : row) {
        bytes += b.bytes();
        if (!b.empty()) ++nonempty;
      }
    }
    if (!passthrough) {
      bytes += nonempty * cm_.bucket_header_bytes;
    }
    so.total_bytes = bytes;
    a.stage_shuffle_write += bytes;
    a.write_transactions += nonempty;
    a.pending.push_back(std::move(ps));
  }

  // Release output early when nobody else needs it.
  if (!keep_output && !plan.consumers.empty()) {
    rt.output.clear();
    rt.output.shrink_to_fit();
  }

  // ---- phase 3: price the stage on the simulated cluster -----------------
  sm.num_partitions = rt.num_tasks;
  if (rt.partitioner) sm.partitioner = rt.partitioner->kind();

  // Optional NIC incast contention: concurrent fetchers share the link.
  std::vector<double> node_fetch_share(eng_.cluster_.num_nodes(), 1.0);
  if (cm_.model_network_contention) {
    std::vector<std::size_t> tasks_on_node(eng_.cluster_.num_nodes(), 0);
    for (std::size_t p = 0; p < rt.num_tasks; ++p) {
      ++tasks_on_node[rt.task_node[p]];
    }
    for (std::size_t n = 0; n < eng_.cluster_.num_nodes(); ++n) {
      node_fetch_share[n] = static_cast<double>(std::max<std::size_t>(
          1, std::min(eng_.cluster_.node(n).cores, tasks_on_node[n])));
    }
  }

  a.durations.assign(rt.num_tasks, 0.0);
  a.fetch_portion.assign(rt.num_tasks, 0.0);
  a.compute_portion.assign(rt.num_tasks, 0.0);
  a.attempts.assign(rt.num_tasks, 1);
  a.spill_modeled.assign(rt.num_tasks, 0.0);
  // Per-task escalated fetch source (kNpos: none); resolved to the
  // earliest-ending escalation after list scheduling below.
  std::vector<std::size_t> esc_src(rt.num_tasks, kNpos);
  for (std::size_t p = 0; p < rt.num_tasks; ++p) {
    const std::size_t n = rt.task_node[p];
    double duration =
        price_task(a.work[p], a.extra_work[p], n, node_fetch_share[n],
                   &a.fetch_portion[p], &a.compute_portion[p],
                   &a.spill_modeled[p]);

    // Transient fetch flakiness (DESIGN.md §14): each remote segment from a
    // flaky source fails a deterministic, seed-driven number of times in a
    // row. Every failure burns the detection timeout plus an exponential
    // backoff; a retry that goes on to succeed also re-pays the segment
    // transfer (counted in refetched_bytes, never in shuffle_read_remote).
    // A segment that exhausts max_fetch_attempts escalates: the attempt is
    // abandoned and the source's map outputs deregistered (run_stage).
    if (flaky_ && !a.work[p].remote_fetch.empty()) {
      const FlakySchedule& fl = eng_.options_.flaky_schedule;
      const double rescale = 1.0 / cm_.data_scale;
      double delay = 0.0;
      for (const auto& [src, bytes] : a.work[p].remote_fetch) {
        if (!fl.node_flaky(src)) continue;
        common::Xoshiro256 rng(common::hash_combine(
            common::hash_combine(common::hash_combine(fl.seed, sm.stage_id),
                                 sm.attempt_count),
            common::hash_combine(src, p + 1)));
        std::size_t fails = 0;
        while (fails < fl.max_fetch_attempts &&
               rng.next_double() < fl.fetch_failure_prob) {
          ++fails;
        }
        if (fails == 0) continue;
        a.work[p].fetch_retries += fails;
        for (std::size_t i = 1; i <= fails; ++i) {
          delay += fl.timeout_s + fl.backoff_s(i);
        }
        if (fails >= fl.max_fetch_attempts) {
          if (esc_src[p] == kNpos) esc_src[p] = src;
        } else {
          const double bw =
              std::min(eng_.cluster_.node(n).net_bw,
                       eng_.cluster_.node(src).net_bw) /
              node_fetch_share[n];
          delay += static_cast<double>(bytes) * rescale / bw *
                   static_cast<double>(fails);
          a.work[p].refetched_bytes += bytes * fails;
        }
      }
      if (delay > 0.0) {
        duration += delay;
        a.fetch_portion[p] += delay;
        if (tracing()) {
          obs::Event e;
          e.kind = obs::EventKind::kFetchRetry;
          e.job = ctx_.job_id;
          e.stage = sm.stage_id;
          e.plan_index = s;
          e.attempt = sm.attempt_count;
          e.task = p;
          e.node = n;
          e.count = a.work[p].fetch_retries;
          e.bytes = a.work[p].refetched_bytes;
          e.value = delay;
          emit(std::move(e));
        }
      }
    }

    // Deterministic fault injection: failed attempts burn a fraction of
    // the duration before Spark-style retry.
    if (eng_.options_.faults.task_failure_prob > 0.0) {
      common::Xoshiro256 frng(common::hash_combine(
          common::hash_combine(eng_.options_.faults.seed, sm.stage_id), p + 1));
      double total = 0.0;
      std::size_t attempt = 1;
      while (frng.next_double() < eng_.options_.faults.task_failure_prob) {
        if (attempt >= eng_.options_.faults.max_attempts) {
          throw JobAbortedError("task " + std::to_string(p) + " of stage " +
                                plan.name +
                                " exceeded max attempts (injected faults)");
        }
        total += duration * eng_.options_.faults.failed_attempt_fraction;
        ++attempt;
      }
      duration += total;
      a.attempts[p] = attempt;
    }
    a.durations[p] = duration;
  }

  // Speculative execution bounds straggler damage: any task far above the
  // stage median is assumed to get a backup copy.
  if (eng_.options_.speculation.enabled && rt.num_tasks > 1) {
    std::vector<double> sorted = a.durations;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    const double median = sorted[sorted.size() / 2];
    const double cap =
        median * eng_.options_.speculation.multiplier + cm_.task_launch_s;
    for (auto& d : a.durations) {
      if (d > cap) d = cap;
    }
  }

  // Earliest-available-slot list scheduling onto the simulated cluster.
  std::vector<std::vector<double>> slot_free(eng_.cluster_.num_nodes());
  for (std::size_t n = 0; n < eng_.cluster_.num_nodes(); ++n) {
    slot_free[n].assign(eng_.cluster_.node(n).cores, 0.0);
  }
  a.starts.assign(rt.num_tasks, 0.0);
  a.ends.assign(rt.num_tasks, 0.0);
  a.slots.assign(rt.num_tasks, 0);
  a.makespan = 0.0;
  for (std::size_t p = 0; p < rt.num_tasks; ++p) {
    auto& slots = slot_free[rt.task_node[p]];
    auto slot = std::min_element(slots.begin(), slots.end());
    a.starts[p] = *slot;
    a.ends[p] = *slot + a.durations[p];
    a.slots[p] = static_cast<std::size_t>(slot - slots.begin());
    *slot = a.ends[p];
    a.makespan = std::max(a.makespan, a.ends[p]);
  }

  if (flaky_) {
    // Stage-level retry telemetry accumulates across every attempt, even
    // ones later discarded — the retries still burned simulated time.
    for (const TaskWork& tw : a.work) {
      sm.fetch_retries += tw.fetch_retries;
      sm.refetched_bytes += tw.refetched_bytes;
    }
    // The earliest-ending escalated task decides where the attempt dies.
    for (std::size_t p = 0; p < rt.num_tasks; ++p) {
      if (esc_src[p] == kNpos) continue;
      if (a.flaky_task == kNpos || a.ends[p] < a.ends[a.flaky_task]) {
        a.flaky_task = p;
        a.flaky_src = esc_src[p];
      }
    }
  }

  detect_oom(s, sm, a);
}

void JobRunner::detect_oom(std::size_t s, const StageMetrics& sm,
                           Attempt& a) const {
  const auto& rt = ctx_.rt[s];
  a.oom_task = kNpos;
  if (rt.num_tasks == 0) return;

  if (mem_) {
    // Enforced hard ceiling: a task whose modeled working set exceeds
    // (node memory / cores) * hard_ceiling dies. The first death (earliest
    // simulated end) kills the attempt.
    const double rescale = 1.0 / cm_.data_scale;
    const double ceiling_mult = eng_.options_.memory.hard_ceiling;
    for (std::size_t p = 0; p < rt.num_tasks; ++p) {
      const NodeSpec& node = eng_.cluster_.node(rt.task_node[p]);
      const double ceiling = static_cast<double>(node.memory_bytes) /
                             static_cast<double>(node.cores) * ceiling_mult;
      const double resident =
          static_cast<double>(a.work[p].bytes_in + a.work[p].bytes_out) *
          rescale;
      if (resident > ceiling &&
          (a.oom_task == kNpos || a.ends[p] < a.ends[a.oom_task])) {
        a.oom_task = p;
      }
    }
  }
  if (oom_inj_) {
    for (const auto& inj : eng_.options_.oom_schedule.ooms) {
      if (inj.stage_id != sm.stage_id || sm.attempt_count > inj.attempts) {
        continue;
      }
      const std::size_t victim = std::min(inj.task, rt.num_tasks - 1);
      if (a.oom_task == kNpos || a.ends[victim] < a.ends[a.oom_task]) {
        a.oom_task = victim;
      }
    }
  }
}

bool JobRunner::grow_stage_partitions(std::size_t s, StageMetrics& sm) {
  const StagePlan& plan = ctx_.plan.stages[s];
  auto& rt = ctx_.rt[s];
  const double growth = std::max(1.0, eng_.options_.memory.growth_factor);
  const std::size_t old_p = rt.num_tasks;
  std::size_t new_p =
      static_cast<std::size_t>(std::ceil(static_cast<double>(old_p) * growth));
  if (new_p <= old_p) new_p = old_p + 1;

  switch (plan.input) {
    case StageInputKind::kCache:
      // Task count pinned by the materialized blocks: cannot grow. The OOM
      // loop keeps retrying at the same P and aborts at the attempt bound.
      return false;

    case StageInputKind::kSource:
      // More input splits next attempt. Sources are deterministic per
      // (partition, count), so the regenerated data is simply re-split.
      if (!rt.scheme) return false;
      rt.scheme->num_partitions = new_p;
      rt.num_tasks = new_p;
      return true;

    case StageInputKind::kShuffle:
      break;  // handled below
  }

  // Shuffle input: grow the reduce side. The retained parent map outputs are
  // re-bucketed in place under a fresh partitioner with P' partitions — the
  // per-key merge order at the reducers equals the map-task order, which is
  // unchanged, so results stay bit-identical to an ample-memory run.
  // Gather every live parent row first (moving the old buckets out).
  struct RowBuf {
    ShuffleOutput* so = nullptr;
    std::size_t m = 0;
    Partition merged;
  };
  std::vector<RowBuf> rows;
  std::vector<ShuffleOutput*> outs;
  for (const std::size_t parent : plan.parent_stages) {
    const auto it = rt.shuffle_from_producer.find(parent);
    if (it == rt.shuffle_from_producer.end()) continue;
    ShuffleOutput& so = eng_.shuffles_.get_mutable(it->second);
    outs.push_back(&so);
    for (std::size_t m = 0; m < so.num_map_tasks; ++m) {
      if (!so.lost.empty() && so.lost[m]) continue;  // healed next attempt
      RowBuf rb;
      rb.so = &so;
      rb.m = m;
      for (auto& bucket : so.buckets[m]) rb.merged.absorb(std::move(bucket));
      rows.push_back(std::move(rb));
    }
  }
  if (outs.empty()) return false;

  std::vector<std::uint64_t> keys;
  if (rt.partitioner->kind() == PartitionerKind::kRange) {
    for (const auto& rb : rows) {
      if (rb.merged.empty()) continue;
      const std::size_t stride =
          std::max<std::size_t>(1, rb.merged.size() / 32);
      for (std::size_t i = 0; i < rb.merged.size(); i += stride) {
        keys.push_back(rb.merged.key(i));
      }
    }
  }
  auto grown =
      make_partitioner(rt.partitioner->kind(), new_p, std::move(keys));

  std::vector<std::size_t> nodes(rows.size());
  std::vector<TaskWork> works(rows.size());
  for (ShuffleOutput* so : outs) {
    so->partitioner = grown;
    so->passthrough = false;  // the re-bucketing below is a real shuffle
    for (auto& row : so->buckets) {
      row.assign(new_p, Partition());
    }
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    RowBuf& rb = rows[i];
    TaskWork& tw = works[i];
    tw.records_in = rb.merged.size();
    tw.bytes_in = rb.merged.bytes();
    nodes[i] = rb.so->map_node[rb.m];
    replay_bucket_row(*rb.so, rb.m, plan, rb.merged, tw);
    tw.records_out = tw.records_in;
    tw.bytes_out = tw.bytes_in;
  }
  for (ShuffleOutput* so : outs) {
    std::uint64_t bytes = 0, nonempty = 0;
    for (const auto& row : so->buckets) {
      for (const auto& b : row) {
        bytes += b.bytes();
        if (!b.empty()) ++nonempty;
      }
    }
    so->total_bytes = bytes + nonempty * cm_.bucket_header_bytes;
    // Every surviving row was re-bucketed in place: re-record its sum (lost
    // rows stay stale until their heal refreshes them).
    if (so->row_sum.size() == so->num_map_tasks) so->record_row_sums();
  }

  rt.partitioner = grown;
  if (rt.scheme) rt.scheme->num_partitions = new_p;
  rt.num_tasks = new_p;
  ctx_.partitioner_cache.emplace(
      std::make_pair(grown->kind(), new_p), grown);

  // The re-bucketing ran on the map nodes; price it as recovery time.
  price_recovery(nodes, works, sm);
  if (mem_) eng_.shuffles_.enforce_budget();  // row footprints changed
  return true;
}

void JobRunner::note_memory(std::size_t s, StageMetrics& sm,
                            const Attempt& a) {
  const auto& rt = ctx_.rt[s];
  const double rescale = 1.0 / cm_.data_scale;
  const std::size_t num_nodes = eng_.cluster_.num_nodes();

  // Task working-set spills (the bytes price_task sent through disk).
  for (std::size_t p = 0; p < rt.num_tasks; ++p) {
    if (a.spill_modeled[p] > 0.0) {
      const auto b = static_cast<std::uint64_t>(a.spill_modeled[p]);
      // run_stage attributes the ledger delta back to sm.spilled_bytes.
      eng_.mem_ledger_.add_spill(rt.task_node[p], b);
    }
  }

  // Per-node resident peak estimate: cached blocks + in-memory shuffle rows
  // + the working sets of the tasks that can run concurrently (the largest
  // `cores` task footprints on the node).
  std::vector<std::vector<double>> ws(num_nodes);
  for (std::size_t p = 0; p < rt.num_tasks; ++p) {
    ws[rt.task_node[p]].push_back(
        static_cast<double>(a.work[p].bytes_in + a.work[p].bytes_out));
  }
  for (std::size_t n = 0; n < num_nodes; ++n) {
    auto& v = ws[n];
    std::sort(v.begin(), v.end(), std::greater<double>());
    const std::size_t cores = eng_.cluster_.node(n).cores;
    double working = 0.0;
    for (std::size_t i = 0; i < std::min(cores, v.size()); ++i) working += v[i];
    const double resident_raw =
        static_cast<double>(eng_.block_manager_.used_bytes(n)) +
        static_cast<double>(eng_.shuffles_.resident_bytes(n)) + working;
    const auto modeled = static_cast<std::uint64_t>(resident_raw * rescale);
    eng_.mem_ledger_.note_resident(n, modeled);
    sm.peak_resident_bytes = std::max(sm.peak_resident_bytes, modeled);
  }
}

void JobRunner::commit_attempt(std::size_t s, StageMetrics& sm, Attempt& a) {
  const StagePlan& plan = ctx_.plan.stages[s];
  auto& rt = ctx_.rt[s];
  const double rescale = 1.0 / cm_.data_scale;

  // Commit cache materializations. `cache_ordinal` (the index within this
  // stage's commit order) is the checkpoint key — dataset ids are
  // process-local and do not survive a restart (engine/resume.h).
  std::size_t cache_ordinal = 0;
  for (const auto* ds : a.to_cache) {
    CachedDataset cd;
    cd.partitions = std::move(a.cache_snapshots[ds]);
    cd.placement = rt.task_node;
    // The snapshot is partitioned like the stage output only if every op
    // after the snapshot point... conservatively: anchor snapshots carry
    // the input partitioner, later snapshots carry none unless all prior
    // ops preserve partitioning; using the stage-level result is safe only
    // for the last snapshot, so be conservative for intermediate ones.
    cd.partitioner =
        (ds == plan.anchor && plan.input == StageInputKind::kShuffle)
            ? rt.partitioner
            : (!plan.narrow_ops.empty() && ds == plan.narrow_ops.back())
                  ? rt.output_partitioner
                  : nullptr;
    // Keep the lineage DAG alive so lost blocks can be recomputed after a
    // node failure, even if the user drops their dataset handle.
    cd.lineage = const_cast<Dataset*>(ds)->shared_from_this();
    for (const auto& p : cd.partitions) cd.bytes += p.bytes();
    if (integrity_) {
      // Record the clean sums first; an armed corruption then flips a byte
      // silently, to be caught by verify_cache_sums at the next read.
      cd.sums.resize(cd.partitions.size());
      for (std::size_t p = 0; p < cd.partitions.size(); ++p) {
        cd.sums[p] = cd.partitions[p].checksum();
      }
      if (corrupt_) fire_cache_corruption(ds->id(), cd);
    }
    if (tracing()) {
      obs::Event e;
      e.kind = obs::EventKind::kBlockStore;
      e.job = ctx_.job_id;
      e.stage = sm.stage_id;
      e.dataset = ds->id();
      e.name = ds->label();
      e.bytes = cd.bytes;
      e.count = cd.partitions.size();
      emit(std::move(e));
    }
    // Persist before publishing: the hook writes the block file now, the
    // kStageEnd WAL line that marks it committed is only emitted after
    // commit_attempt returns (run_stage).
    if (eng_.ckpt_hook_ != nullptr) {
      eng_.ckpt_hook_->on_cache_committed(ctx_.job_id, s, cache_ordinal, cd);
    }
    ++cache_ordinal;
    eng_.block_manager_.put(ds->id(), std::move(cd));
  }

  // Publish the shuffles this attempt wrote.
  for (auto& ps : a.pending) {
    if (integrity_) {
      ps.so.record_row_sums();
      if (corrupt_) fire_shuffle_corruption(sm.stage_id, ps.so);
    }
    ps.so.shuffle_id = eng_.shuffles_.next_id();
    auto& crt = ctx_.rt[ps.consumer];
    crt.shuffle_from_producer.emplace(s, ps.so.shuffle_id);
    rt.written.push_back({ps.so.shuffle_id, ps.consumer});
    ctx_.job_shuffle_ids.push_back(ps.so.shuffle_id);
    if (tracing()) {
      obs::Event e;
      e.kind = obs::EventKind::kShuffleWrite;
      e.job = ctx_.job_id;
      e.stage = sm.stage_id;
      e.plan_index = ps.consumer;  // flow target: the consuming stage
      e.shuffle = ps.so.shuffle_id;
      e.bytes = ps.so.total_bytes;
      e.count = ps.so.num_map_tasks;
      e.num_partitions = crt.num_tasks;
      if (ps.so.passthrough) e.flags |= obs::kFlagPassthrough;
      emit(std::move(e));
    }
    if (eng_.ckpt_hook_ != nullptr) {
      eng_.ckpt_hook_->on_shuffle_committed(ctx_.job_id, s, ps.consumer, ps.so);
    }
    eng_.shuffles_.put(std::move(ps.so));
  }
  a.pending.clear();

  // Task metrics + stage aggregates.
  sm.tasks.assign(rt.num_tasks, TaskMetrics{});
  sm.input_records = sm.input_bytes = 0;
  sm.output_records = sm.output_bytes = 0;
  sm.shuffle_read_bytes = 0;
  for (std::size_t p = 0; p < rt.num_tasks; ++p) {
    const TaskWork& tw = a.work[p];
    TaskMetrics& tm = sm.tasks[p];
    tm.task_index = p;
    tm.node = rt.task_node[p];
    tm.sim_start = a.starts[p];
    tm.sim_end = a.ends[p];
    tm.compute_s = a.compute_portion[p];
    tm.fetch_s = a.fetch_portion[p];
    tm.attempts = a.attempts[p];
    tm.fetch_retries = tw.fetch_retries;
    tm.records_in = tw.records_in;
    tm.records_out = tw.records_out;
    tm.bytes_in = tw.bytes_in;
    tm.bytes_out = tw.bytes_out;
    tm.shuffle_read_remote = tw.shuffle_read_remote;
    tm.shuffle_read_local = tw.shuffle_read_local;

    sm.input_records += tw.records_in;
    sm.input_bytes += tw.bytes_in;
    sm.output_records += tw.records_out;
    sm.output_bytes += tw.bytes_out;
    sm.shuffle_read_bytes += tw.shuffle_read_remote + tw.shuffle_read_local;
  }
  sm.shuffle_write_bytes = a.stage_shuffle_write;
  sm.sim_start_s = now();
  sm.sim_time_s = a.makespan;

  // Memory bookkeeping: task spills to the ledger, per-node resident peaks.
  note_memory(s, sm, a);

  // ---- timeline samples ---------------------------------------------------
  // Byte-valued samples are rescaled to the modeled system's volume, like
  // the pricing above, so Fig. 12/13 read in paper-scale terms.
  if (eng_.options_.record_timeline) {
    const double t0 = now();
    for (const auto& tm : sm.tasks) {
      eng_.timeline_.add_cpu_busy(t0 + tm.sim_start, t0 + tm.sim_end);
      if (tm.shuffle_read_remote > 0) {
        eng_.timeline_.add_network(
            t0 + tm.sim_start, t0 + tm.sim_start + tm.fetch_s,
            static_cast<std::uint64_t>(
                static_cast<double>(tm.shuffle_read_remote) * rescale));
      }
    }
    eng_.timeline_.add_transactions(t0, a.write_transactions + rt.num_tasks);
    eng_.timeline_.add_memory(
        t0, t0 + std::max(a.makespan, 1e-9),
        static_cast<std::uint64_t>(
            static_cast<double>(sm.input_bytes + sm.output_bytes +
                                eng_.block_manager_.total_bytes()) *
            rescale));
  }

  advance(a.makespan);

  // ---- result action -------------------------------------------------------
  if (plan.is_result) {
    if (ctx_.collect_records) {
      for (const auto& part : rt.output) {
        part.append_records_to(ctx_.result.records);
      }
    }
    for (const auto& tm : sm.tasks) ctx_.result.count += tm.records_out;
    if (eng_.ckpt_hook_ != nullptr) {
      eng_.ckpt_hook_->on_result_committed(ctx_.job_id, s, rt.output);
    }
    rt.output.clear();
  }

  // ---- release consumed parent shuffles ------------------------------------
  // Classic mode only: retained-data jobs (failure schedule, memory budget,
  // OOM injection) keep every shuffle alive until job end so lineage replay
  // and attempt retries can re-read surviving map outputs.
  if (!retain_ && plan.input == StageInputKind::kShuffle) {
    for (const std::size_t parent : plan.parent_stages) {
      const auto it = rt.shuffle_from_producer.find(parent);
      if (it != rt.shuffle_from_producer.end()) {
        eng_.shuffles_.remove(it->second);
        rt.shuffle_from_producer.erase(it);
      }
    }
  }
}

void JobRunner::release_job_shuffles() {
  for (const std::size_t id : ctx_.job_shuffle_ids) eng_.shuffles_.remove(id);
  ctx_.job_shuffle_ids.clear();
}

// ---------------------------------------------------------------------------
// Failure machinery.
// ---------------------------------------------------------------------------

void JobRunner::fire_failure(std::size_t i, double at_time) {
  const NodeFailure& f = eng_.options_.failure_schedule.failures[i];
  auto& fs = eng_.failure_state_[i];
  fs.fired = true;
  if (f.node >= eng_.cluster_.num_nodes()) return;  // ignore bogus entries
  if (f.rejoin_after_s >= 0.0) fs.rejoin_at = at_time + f.rejoin_after_s;
  eng_.node_alive_[f.node] = 0;
  // The node's data dies with it: shuffle map outputs and cached blocks.
  LossReport lr = eng_.shuffles_.invalidate_node(f.node);
  lr += eng_.block_manager_.invalidate_node(f.node);
  job_metrics_.lost_bytes += lr.lost_bytes;
  if (tracing()) {
    // fire_failure runs before the clock is moved to the failure instant, so
    // stamp the event with at_time explicitly rather than now().
    obs::Event e;
    e.kind = obs::EventKind::kNodeDown;
    e.job = ctx_.job_id;
    e.node = f.node;
    e.count = lr.lost_tasks;
    e.lost_bytes = lr.lost_bytes;
    if (f.rejoin_after_s >= 0.0) e.value = f.rejoin_after_s;
    emit_at(at_time, std::move(e));
  }
}

void JobRunner::process_barrier_failures(std::size_t stage_global_id) {
  const auto& sched = eng_.options_.failure_schedule;
  // Rejoins first: a node whose rejoin time passed comes back (empty — its
  // data stays lost; only fresh tasks may land on it again).
  for (std::size_t i = 0; i < sched.failures.size(); ++i) {
    auto& fs = eng_.failure_state_[i];
    if (fs.fired && !fs.rejoined && fs.rejoin_at >= 0.0 &&
        now() >= fs.rejoin_at) {
      fs.rejoined = true;
      const std::size_t n = sched.failures[i].node;
      if (n < eng_.cluster_.num_nodes()) eng_.node_alive_[n] = 1;
      if (tracing()) {
        obs::Event e;
        e.kind = obs::EventKind::kNodeUp;
        e.job = ctx_.job_id;
        e.node = n;
        emit(std::move(e));
      }
    }
  }
  for (std::size_t i = 0; i < sched.failures.size(); ++i) {
    const NodeFailure& f = sched.failures[i];
    if (eng_.failure_state_[i].fired) continue;
    const bool stage_hit =
        f.at_stage_id >= 0 &&
        static_cast<std::size_t>(f.at_stage_id) <= stage_global_id;
    const bool time_hit = f.at_sim_time >= 0.0 && now() >= f.at_sim_time;
    if (stage_hit || time_hit) fire_failure(i, now());
  }
}

bool JobRunner::stage_depends_on_node(std::size_t s, std::size_t node) const {
  const StagePlan& plan = ctx_.plan.stages[s];
  const auto& rt = ctx_.rt[s];
  for (const std::size_t n : rt.task_node) {
    if (n == node) return true;
  }
  if (plan.input == StageInputKind::kShuffle) {
    for (const std::size_t parent : plan.parent_stages) {
      const auto it = rt.shuffle_from_producer.find(parent);
      if (it == rt.shuffle_from_producer.end()) continue;
      const ShuffleOutput& so = eng_.shuffles_.get(it->second);
      for (std::size_t m = 0; m < so.num_map_tasks; ++m) {
        if (so.map_node[m] == node && (so.lost.empty() || !so.lost[m])) {
          return true;
        }
      }
    }
  } else if (plan.input == StageInputKind::kCache) {
    const BlockManager::Pin pin = eng_.block_manager_.pin(plan.anchor->id());
    if (pin) {
      auto g = eng_.block_manager_.guard();
      for (std::size_t p = 0; p < pin->placement.size(); ++p) {
        if (pin->placement[p] == node &&
            (pin->available.empty() || pin->available[p])) {
          return true;
        }
      }
    }
  }
  return false;
}

bool JobRunner::scan_window_failures(std::size_t s, StageMetrics& sm,
                                     double makespan) {
  const auto& sched = eng_.options_.failure_schedule;
  const double attempt_start = now();
  const double window_end = attempt_start + makespan;
  constexpr std::size_t npos = static_cast<std::size_t>(-1);

  for (;;) {
    // Earliest unfired sim-time failure strictly inside the attempt window.
    std::size_t best = npos;
    double best_t = window_end;
    for (std::size_t i = 0; i < sched.failures.size(); ++i) {
      const NodeFailure& f = sched.failures[i];
      if (eng_.failure_state_[i].fired || f.at_sim_time < 0.0) continue;
      if (f.at_sim_time > attempt_start && f.at_sim_time < window_end &&
          (best == npos || f.at_sim_time < best_t)) {
        best = i;
        best_t = f.at_sim_time;
      }
    }
    if (best == npos) return false;

    // Decide whether this attempt even notices the death *before* firing it
    // (firing marks the data lost, which would taint the test).
    const bool affects = stage_depends_on_node(s, sched.failures[best].node);
    fire_failure(best, best_t);
    if (affects) {
      // Fetch failure / executor loss mid-stage: the attempt dies at the
      // failure instant; everything it ran so far is wasted sim time.
      set_now(best_t);
      sm.recovery_time_s += best_t - attempt_start;
      if (tracing()) {
        obs::Event e;
        e.kind = obs::EventKind::kFetchFailure;
        e.job = ctx_.job_id;
        e.stage = sm.stage_id;
        e.plan_index = s;
        e.node = sched.failures[best].node;
        e.value = best_t - attempt_start;  // wasted attempt time
        emit(std::move(e));
      }
      return true;
    }
    // A node nobody in this stage touches: the stage sails on; keep
    // scanning the rest of the window.
  }
}

// ---------------------------------------------------------------------------
// Node health scoreboard + block integrity (DESIGN.md §14).
// ---------------------------------------------------------------------------

void JobRunner::record_strike(std::size_t node, HealthStrike kind,
                              StageMetrics& sm) {
  if (!health_active()) return;
  if (!eng_.health_.record(node, kind, now())) return;
  ++sm.node_exclusions;
  if (tracing()) {
    obs::Event e;
    e.kind = obs::EventKind::kNodeExcluded;
    e.job = ctx_.job_id;
    e.stage = sm.stage_id;
    e.node = node;
    switch (kind) {
      case HealthStrike::kFetch:
        e.detail = "fetch";
        break;
      case HealthStrike::kTask:
        e.detail = "task";
        break;
      case HealthStrike::kChecksum:
        e.detail = "checksum";
        break;
    }
    const auto stats = eng_.health_.snapshot();
    if (node < stats.size()) {
      e.count = stats[node].exclusion_count;
      e.value = stats[node].readmit_at - now();  // exclusion window length
    }
    emit(std::move(e));
  }
}

void JobRunner::sweep_health() {
  for (const std::size_t n : eng_.health_.sweep(now())) {
    if (tracing()) {
      obs::Event e;
      e.kind = obs::EventKind::kNodeReadmitted;
      e.job = ctx_.job_id;
      e.node = n;
      emit(std::move(e));
    }
  }
}

void JobRunner::verify_shuffle_sums(ShuffleOutput& so, StageMetrics& sm) {
  if (so.row_sum.size() != so.num_map_tasks) return;  // sums never recorded
  for (std::size_t m = 0; m < so.num_map_tasks; ++m) {
    if (!so.lost.empty() && so.lost[m]) continue;  // lost row: sum is stale
    if (so.compute_row_sum(m) == so.row_sum[m]) continue;
    // Silent corruption detected: poison exactly this row — mark it lost so
    // the standard lineage replay rebuilds it (and refreshes its sum).
    if (so.lost.size() != so.num_map_tasks) so.lost.assign(so.num_map_tasks, 0);
    std::uint64_t dropped = 0;
    for (auto& bucket : so.buckets[m]) {
      dropped += bucket.bytes();
      bucket = Partition();
    }
    so.lost[m] = 1;
    ++sm.checksum_failures;
    record_strike(so.map_node[m], HealthStrike::kChecksum, sm);
    if (tracing()) {
      obs::Event e;
      e.kind = obs::EventKind::kChecksumFail;
      e.job = ctx_.job_id;
      e.stage = sm.stage_id;
      e.shuffle = so.shuffle_id;
      e.task = m;
      e.node = so.map_node[m];
      e.bytes = dropped;
      emit(std::move(e));
    }
  }
}

void JobRunner::verify_cache_sums(const Dataset* anchor, StageMetrics& sm) {
  BlockManager::Pin pin = eng_.block_manager_.pin(anchor->id());
  CachedDataset* cd = pin.mutable_get();
  if (cd == nullptr) return;
  auto g = eng_.block_manager_.guard();
  if (cd->sums.size() != cd->partitions.size()) return;
  for (std::size_t p = 0; p < cd->partitions.size(); ++p) {
    if (!cd->available.empty() && !cd->available[p]) continue;  // stale sum
    if (cd->partitions[p].checksum() == cd->sums[p]) continue;
    // Drop the poisoned block; the standard cache heal recomputes it from
    // lineage and refreshes the sum.
    if (cd->available.size() != cd->partitions.size()) {
      cd->available.assign(cd->partitions.size(), 1);
    }
    const std::uint64_t dropped = cd->partitions[p].bytes();
    cd->bytes -= std::min(cd->bytes, dropped);
    cd->partitions[p] = Partition();
    cd->available[p] = 0;
    ++sm.checksum_failures;
    const std::size_t node = p < cd->placement.size() ? cd->placement[p] : 0;
    record_strike(node, HealthStrike::kChecksum, sm);
    if (tracing()) {
      obs::Event e;
      e.kind = obs::EventKind::kChecksumFail;
      e.job = ctx_.job_id;
      e.stage = sm.stage_id;
      e.dataset = anchor->id();
      e.task = p;
      e.node = node;
      e.bytes = dropped;
      emit(std::move(e));
    }
  }
}

void JobRunner::fire_shuffle_corruption(std::size_t stage_global_id,
                                        ShuffleOutput& so) {
  const auto& sched = eng_.options_.corruption_schedule;
  for (std::size_t i = 0; i < sched.corruptions.size(); ++i) {
    const CorruptionInjection& inj = sched.corruptions[i];
    if (eng_.corruption_fired_[i] ||
        inj.target != CorruptionInjection::Target::kShuffleRow ||
        inj.stage_id != stage_global_id || so.num_map_tasks == 0) {
      continue;
    }
    const std::size_t m = std::min(inj.task, so.num_map_tasks - 1);
    for (auto& bucket : so.buckets[m]) {
      if (bucket.empty()) continue;
      eng_.corruption_fired_[i] = 1;
      bucket.corrupt_byte(inj.byte_offset);
      break;
    }
  }
}

void JobRunner::fire_cache_corruption(std::size_t dataset_id,
                                      CachedDataset& cd) {
  const auto& sched = eng_.options_.corruption_schedule;
  for (std::size_t i = 0; i < sched.corruptions.size(); ++i) {
    const CorruptionInjection& inj = sched.corruptions[i];
    if (eng_.corruption_fired_[i] ||
        inj.target != CorruptionInjection::Target::kCachedBlock ||
        inj.dataset_id != dataset_id || cd.partitions.empty()) {
      continue;
    }
    const std::size_t victim = std::min(inj.task, cd.partitions.size() - 1);
    if (cd.partitions[victim].empty()) continue;
    eng_.corruption_fired_[i] = 1;
    cd.partitions[victim].corrupt_byte(inj.byte_offset);
  }
}

// ---------------------------------------------------------------------------
// Lineage recovery.
// ---------------------------------------------------------------------------

void JobRunner::recover_stage_inputs(std::size_t s, StageMetrics& sm) {
  const StagePlan& plan = ctx_.plan.stages[s];
  auto& rt = ctx_.rt[s];
  if (plan.input == StageInputKind::kShuffle) {
    for (const std::size_t parent : plan.parent_stages) {
      const auto it = rt.shuffle_from_producer.find(parent);
      if (it == rt.shuffle_from_producer.end()) continue;
      ShuffleOutput& so = eng_.shuffles_.get_mutable(it->second);
      if (integrity_) verify_shuffle_sums(so, sm);
      if (so.has_lost_tasks()) recover_map_tasks(parent, sm);
    }
  } else if (plan.input == StageInputKind::kCache) {
    if (integrity_) verify_cache_sums(plan.anchor, sm);
    BlockManager::Pin pin = eng_.block_manager_.pin(plan.anchor->id());
    bool incomplete = false;
    if (pin) {
      auto g = eng_.block_manager_.guard();
      incomplete = !pin->complete();
    }
    // Drop the pin before healing: the wholesale recovery path re-puts the
    // dataset under the same id.
    pin.reset();
    if (incomplete) recover_cached_blocks(plan.anchor, sm);
  }
}

void JobRunner::recover_map_tasks(std::size_t producer, StageMetrics& sm) {
  auto& prt = ctx_.rt[producer];
  const StagePlan& pplan = ctx_.plan.stages[producer];

  // The producer's own inputs must be healthy before replay reads them
  // (recursive: a failure may have cut multiple lineage levels at once).
  recover_stage_inputs(producer, sm);

  // Live shuffles the producer wrote, and the union of their lost rows.
  std::vector<ShuffleOutput*> outs;
  std::vector<std::size_t> out_consumer;
  for (const auto& w : prt.written) {
    if (!eng_.shuffles_.contains(w.shuffle_id)) continue;
    outs.push_back(&eng_.shuffles_.get_mutable(w.shuffle_id));
    out_consumer.push_back(w.consumer);
  }
  std::vector<std::size_t> lost_idx;
  for (std::size_t m = 0; m < prt.num_tasks; ++m) {
    for (ShuffleOutput* so : outs) {
      if (!so->lost.empty() && so->lost[m]) {
        lost_idx.push_back(m);
        break;
      }
    }
  }
  if (lost_idx.empty()) return;

  // Pin: the replay loop below reads the cached partitions from the thread
  // pool, long after this statement — a raw get() pointer could be freed by
  // a concurrent job's eviction mid-replay.
  BlockManager::Pin cache_pin;
  const CachedDataset* cached = nullptr;
  if (pplan.input == StageInputKind::kCache) {
    cache_pin = eng_.block_manager_.pin(pplan.anchor->id());
    cached = cache_pin.get();
    if (cached == nullptr) {
      throw std::logic_error("recovery: cache anchor vanished for " +
                             pplan.name);
    }
  }
  std::vector<ShuffleOutput*> parents;
  if (pplan.input == StageInputKind::kShuffle) {
    for (const std::size_t parent : pplan.parent_stages) {
      const auto it = prt.shuffle_from_producer.find(parent);
      if (it == prt.shuffle_from_producer.end()) {
        throw std::logic_error("recovery: parent shuffle released for " +
                               pplan.name);
      }
      parents.push_back(&eng_.shuffles_.get_mutable(it->second));
    }
  }

  // Replay each lost pipeline task on a surviving node and rewrite its
  // bucket row in every live shuffle that lost it. Rows of distinct map
  // tasks are disjoint, so the replays run in parallel.
  std::vector<std::size_t> new_node(lost_idx.size());
  for (std::size_t i = 0; i < lost_idx.size(); ++i) {
    new_node[i] = eng_.node_for(lost_idx[i], prt.num_tasks);
  }
  std::vector<TaskWork> works(lost_idx.size());
  common::parallel_for(*eng_.pool_, lost_idx.size(), [&](std::size_t i) {
    const std::size_t m = lost_idx[i];
    TaskWork& tw = works[i];
    Partition out = read_stage_input(producer, m, new_node[i], cached, parents,
                                     /*consume=*/false, tw);
    for (const auto* op : pplan.narrow_ops) {
      out = apply_narrow_op(*op, std::move(out), m, tw);
    }
    tw.records_out = out.size();
    tw.bytes_out = out.bytes();
    for (std::size_t oi = 0; oi < outs.size(); ++oi) {
      ShuffleOutput* so = outs[oi];
      if (so->lost.empty() || !so->lost[m]) continue;
      replay_bucket_row(*so, m, ctx_.plan.stages[out_consumer[oi]], out, tw);
    }
  });

  // Sequential post-pass: clear the lost flags, re-home the map tasks.
  for (std::size_t i = 0; i < lost_idx.size(); ++i) {
    const std::size_t m = lost_idx[i];
    for (ShuffleOutput* so : outs) {
      if (!so->lost.empty() && so->lost[m]) {
        so->lost[m] = 0;
        so->map_node[m] = new_node[i];
        // The replayed row lives in memory on its new home node; any spill
        // flag belonged to the old (dead) copy.
        if (!so->on_disk.empty()) so->on_disk[m] = 0;
        // The heal rewrote the row bit-identically: refresh its integrity
        // sum so the next verification pass accepts it.
        so->refresh_row_sum(m);
      }
    }
    sm.recomputed_tasks += 1;
    sm.recomputed_bytes += works[i].bytes_out;
    if (tracing()) {
      obs::Event e;
      e.kind = obs::EventKind::kShuffleReplay;
      e.job = ctx_.job_id;
      e.stage = sm.stage_id;
      e.task = m;
      e.node = new_node[i];
      e.bytes = works[i].bytes_out;
      emit(std::move(e));
    }
  }
  price_recovery(new_node, works, sm);
  if (mem_) eng_.shuffles_.enforce_budget();  // replays re-inflate map nodes
}

void JobRunner::replay_bucket_row(ShuffleOutput& so, std::size_t m,
                                  const StagePlan& cplan, const Partition& out,
                                  TaskWork& tw) {
  auto& row = so.buckets[m];
  const auto& target = so.partitioner;
  for (auto& b : row) b = Partition();
  if (so.passthrough) {
    row[m] = copy_partition(out);
    return;
  }
  const bool combine = eng_.options_.map_side_combine &&
                       cplan.anchor->op() == OpKind::kReduceByKey &&
                       static_cast<bool>(cplan.anchor->reduce_fn());
  tw.work_units +=
      static_cast<double>(out.size()) * (combine ? kCombineWork : kBucketWork);
  if (combine) {
    // Must re-combine exactly as the original map task did so the replayed
    // row is bit-identical to the lost one (the parallel paths are too, at
    // any thread count — DESIGN.md §18).
    dataplane::combine_scatter(out, *target, cplan.anchor->reduce_fn(), row,
                               eng_.data_plane_ctx());
  } else {
    dataplane::radix_scatter(out, *target, row, eng_.data_plane_ctx());
  }
}

void JobRunner::price_recovery(const std::vector<std::size_t>& nodes,
                               const std::vector<TaskWork>& works,
                               StageMetrics& sm) {
  std::vector<std::vector<double>> slot_free(eng_.cluster_.num_nodes());
  for (std::size_t n = 0; n < eng_.cluster_.num_nodes(); ++n) {
    slot_free[n].assign(eng_.cluster_.node(n).cores, 0.0);
  }
  double makespan = 0.0;
  const double t0 = now();
  for (std::size_t i = 0; i < works.size(); ++i) {
    const double d =
        price_task(works[i], 0.0, nodes[i], 1.0, nullptr, nullptr);
    auto& slots = slot_free[nodes[i]];
    auto slot = std::min_element(slots.begin(), slots.end());
    const double start = *slot;
    const double end = start + d;
    *slot = end;
    makespan = std::max(makespan, end);
    if (eng_.options_.record_timeline) {
      eng_.timeline_.add_cpu_busy(t0 + start, t0 + end);
    }
  }
  advance(makespan);
  sm.recovery_time_s += makespan;
}

void JobRunner::recover_cached_blocks(const Dataset* anchor, StageMetrics& sm) {
  // Pin for the whole heal: the dataset's object must outlive every access
  // below (the narrow path writes healed blocks back into it).
  BlockManager::Pin pin = eng_.block_manager_.pin(anchor->id());
  CachedDataset* cd = pin.mutable_get();
  if (cd == nullptr) return;
  std::vector<std::size_t> missing;
  std::size_t n_parts = 0;
  {
    auto g = eng_.block_manager_.guard();
    if (cd->complete()) return;
    missing = cd->missing();
    n_parts = cd->partitions.size();
  }
  // Every missing partition is a cache miss: the read only proceeds after
  // lineage recomputes it (DESIGN.md §17).
  sm.cache_misses += missing.size();

  // Fine-grained path: the cached node sits on a purely narrow chain above
  // a source or another materialized cache — recompute exactly the lost
  // blocks (narrow ops are deterministic per (partition, count), so block m
  // is reproduced bit-for-bit).
  const Dataset* node = cd->lineage ? cd->lineage.get() : anchor;
  std::vector<const Dataset*> chain;  // ops top-down; applied in reverse
  const Dataset* base = node;
  bool narrow_ok = true;
  bool cache_base = false;
  while (base->op() != OpKind::kSource) {
    if (base != node && base->cached() &&
        eng_.block_manager_.contains(base->id())) {
      cache_base = true;
      break;
    }
    if (!is_narrow_kind(base->op()) || base->parents().empty()) {
      narrow_ok = false;
      break;
    }
    chain.push_back(base);
    base = base->parents().front().get();
  }
  if (narrow_ok && cache_base) {
    const BlockManager::Pin bpin = eng_.block_manager_.pin(base->id());
    if (!bpin || bpin->partitions.size() != n_parts) {
      narrow_ok = false;  // partition counts diverge: rebuild wholesale
    }
  }

  if (narrow_ok) {
    BlockManager::Pin base_pin;
    if (cache_base) {
      // Pin first so a concurrent job's eviction scan cannot re-evict the
      // base while we heal and copy from it, then heal (recursion bottoms
      // out at sources).
      base_pin = eng_.block_manager_.pin(base->id());
      recover_cached_blocks(base, sm);
    }
    const CachedDataset* bcd = cache_base ? base_pin.get() : nullptr;
    std::vector<std::size_t> new_node(missing.size());
    for (std::size_t i = 0; i < missing.size(); ++i) {
      new_node[i] = eng_.node_for(missing[i], n_parts);
    }
    std::vector<TaskWork> works(missing.size());
    std::vector<Partition> rebuilt(missing.size());
    common::parallel_for(*eng_.pool_, missing.size(), [&](std::size_t i) {
      const std::size_t m = missing[i];
      TaskWork& tw = works[i];
      Partition part;
      if (cache_base) {
        part = copy_partition(bcd->partitions[m]);
        tw.local_fetch_bytes += part.bytes();
        tw.work_units += static_cast<double>(part.size()) * kCacheReadWork;
      } else {
        part = base->source_fn()(m, n_parts);
        tw.work_units += static_cast<double>(part.size()) * kSourceGenWork;
      }
      tw.records_in = part.size();
      tw.bytes_in = part.bytes();
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        part = apply_narrow_op(**it, std::move(part), m, tw);
      }
      tw.records_out = part.size();
      tw.bytes_out = part.bytes();
      rebuilt[i] = std::move(part);
    });
    {
      auto g = eng_.block_manager_.guard();
      for (std::size_t i = 0; i < missing.size(); ++i) {
        const std::size_t m = missing[i];
        // A concurrent job may have healed this block while we rebuilt it;
        // the winner's copy is bit-identical, so just discard ours.
        if (cd->available[m]) continue;
        cd->partitions[m] = std::move(rebuilt[i]);
        cd->available[m] = 1;
        cd->placement[m] = new_node[i];
        cd->bytes += cd->partitions[m].bytes();
        if (cd->sums.size() == cd->partitions.size()) {
          cd->sums[m] = cd->partitions[m].checksum();
        }
        sm.recomputed_tasks += 1;
        sm.recomputed_bytes += works[i].bytes_out;
        if (tracing()) {
          obs::Event e;
          e.kind = obs::EventKind::kBlockHeal;
          e.job = ctx_.job_id;
          e.stage = sm.stage_id;
          e.dataset = anchor->id();
          e.task = m;
          e.node = new_node[i];
          e.bytes = works[i].bytes_out;
          emit(std::move(e));
        }
      }
    }
    price_recovery(new_node, works, sm);
    return;
  }

  // Wide lineage (or no usable chain): re-materialize the whole cached
  // dataset as an internal sub-job — its stages land on surviving nodes and
  // its sim time is charged as recovery.
  std::shared_ptr<Dataset> lineage = cd->lineage;
  if (!lineage) {
    throw JobAbortedError("lost cached block of '" + anchor->label() +
                          "' has no recorded lineage to replay");
  }
  const double sim_before = eng_.sim_clock_;
  pin.reset();  // release before remove: the rebuild re-puts under this id
  eng_.block_manager_.remove(anchor->id());
  eng_.run_job(lineage, /*collect_records=*/false,
               "recovery:" + anchor->label());
  const BlockManager::Pin npin = eng_.block_manager_.pin(anchor->id());
  const CachedDataset* ncd = npin.get();
  if (ncd == nullptr) {
    throw JobAbortedError("recovery job failed to rematerialize '" +
                          anchor->label() + "'");
  }
  // Recovery sub-jobs always run on the engine clock (failure schedules are
  // a single-job-mode feature; the service rejects engines that enable one).
  sm.recovery_time_s += eng_.sim_clock_ - sim_before;
  auto g = eng_.block_manager_.guard();
  for (const std::size_t m : missing) {
    if (m < ncd->partitions.size()) {
      sm.recomputed_tasks += 1;
      sm.recomputed_bytes += ncd->partitions[m].bytes();
      if (tracing()) {
        obs::Event e;
        e.kind = obs::EventKind::kBlockHeal;
        e.job = ctx_.job_id;
        e.stage = sm.stage_id;
        e.dataset = anchor->id();
        e.task = m;
        e.bytes = ncd->partitions[m].bytes();
        e.detail = "wholesale";
        emit(std::move(e));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Engine::run_job
// ---------------------------------------------------------------------------

JobResult Engine::run_job(const DatasetPtr& root, bool collect_records,
                          std::string job_name, const JobControl* control) {
  JobContext ctx;
  {
    // Plan building reads/extends the shared repartition-insertion memo;
    // concurrent service submissions serialize here.
    std::lock_guard lock(plan_mu_);
    ctx.plan = build_job_plan(root, block_manager_, plan_provider_.get(),
                              &inserted_repartitions_);
    // Cache-plan hook (DESIGN.md §17): score the fresh plan's cache
    // candidates before any stage runs, so the storage budget follows the
    // planner's priorities from this job's first eviction on.
    if (cache_advisor_ != nullptr) {
      block_manager_.merge_cache_plan(
          cache_advisor_->advise(ctx.plan, job_name));
    }
  }
  constexpr auto kNoId = static_cast<std::size_t>(-1);
  ctx.job_id = (control != nullptr && control->job_id != kNoId)
                   ? control->job_id
                   : next_job_id_.fetch_add(1, std::memory_order_relaxed);
  ctx.name = std::move(job_name);
  ctx.collect_records = collect_records;
  ctx.control = control;
  ctx.vclock = control != nullptr ? control->start_time : 0.0;
  ctx.rt.resize(ctx.plan.stages.size());
  JobRunner runner(*this, ctx);
  return runner.run();
}

}  // namespace chopper::engine
