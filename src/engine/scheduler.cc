// Job execution: the DAGScheduler + executors of minispark.
//
// Stages run in topological order with a global barrier between them
// (paper Sec. I: "data processing frameworks usually employ a global
// barrier between computation phases"). Each stage:
//
//   phase 1  tasks execute for real on the host thread pool: resolve input
//            (source generator / cached blocks / shuffle fetch + wide
//            merge), run the narrow operator chain, record measured work;
//   phase 2  if the stage feeds wide consumers, bucket its output per
//            consumer partitioner (map-side combine for reduceByKey,
//            pass-through when already co-partitioned);
//   phase 3  the measured work is priced by the CostModel and the tasks are
//            list-scheduled onto the simulated cluster's slots, producing
//            the stage's simulated makespan, task distribution and the
//            resource-timeline samples.
#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "common/hash.h"
#include "common/rng.h"
#include "engine/engine.h"

namespace chopper::engine {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Per-task measurements from the real execution, priced later.
struct TaskWork {
  std::uint64_t records_in = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t bytes_out = 0;
  double work_units = 0.0;
  /// Remote shuffle-fetch bytes aggregated by source node.
  std::map<std::size_t, std::uint64_t> remote_fetch;
  std::size_t remote_segments = 0;
  std::uint64_t local_fetch_bytes = 0;
  std::uint64_t shuffle_read_remote = 0;
  std::uint64_t shuffle_read_local = 0;
};

/// Work-unit weights for engine-internal activities (relative to one
/// "average record operation" == 1.0).
constexpr double kSourceGenWork = 1.0;
constexpr double kCacheReadWork = 0.15;
constexpr double kBucketWork = 0.35;
constexpr double kCombineWork = 0.6;

// ---------------------------------------------------------------------------
// Wide-dependency merges (executed at the start of the consuming stage).
// ---------------------------------------------------------------------------

Partition merge_reduce_by_key(std::vector<Partition>&& parts,
                              const ReduceFn& fn) {
  std::unordered_map<std::uint64_t, Record> acc;
  for (auto& part : parts) {
    for (auto& r : part.mutable_records()) {
      auto [it, inserted] = acc.try_emplace(r.key, std::move(r));
      if (!inserted) fn(it->second, r);
    }
  }
  std::vector<std::uint64_t> keys;
  keys.reserve(acc.size());
  for (const auto& [k, v] : acc) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  Partition out;
  out.reserve(keys.size());
  for (const auto k : keys) out.push(std::move(acc.at(k)));
  return out;
}

Partition merge_group_by_key(std::vector<Partition>&& parts) {
  std::map<std::uint64_t, Record> acc;
  for (auto& part : parts) {
    for (auto& r : part.mutable_records()) {
      auto [it, inserted] = acc.try_emplace(r.key, std::move(r));
      if (!inserted) {
        auto& g = it->second;
        g.values.insert(g.values.end(), r.values.begin(), r.values.end());
        g.aux_bytes += r.aux_bytes;
      }
    }
  }
  Partition out;
  out.reserve(acc.size());
  for (auto& [k, v] : acc) out.push(std::move(v));
  return out;
}

Partition merge_join(Partition&& left, Partition&& right, const JoinFn& fn,
                     bool cogroup) {
  std::map<std::uint64_t, std::pair<std::vector<Record>, std::vector<Record>>>
      groups;
  for (auto& r : left.mutable_records()) {
    groups[r.key].first.push_back(std::move(r));
  }
  for (auto& r : right.mutable_records()) {
    groups[r.key].second.push_back(std::move(r));
  }
  Partition out;
  for (auto& [key, sides] : groups) {
    auto& [ls, rs] = sides;
    if (!cogroup && (ls.empty() || rs.empty())) continue;  // inner join
    if (fn) {
      for (auto& rec : fn(key, ls, rs)) out.push(std::move(rec));
      continue;
    }
    if (cogroup) {
      Record g;
      g.key = key;
      for (const auto& l : ls) {
        g.values.insert(g.values.end(), l.values.begin(), l.values.end());
        g.aux_bytes += l.aux_bytes;
      }
      for (const auto& r : rs) {
        g.values.insert(g.values.end(), r.values.begin(), r.values.end());
        g.aux_bytes += r.aux_bytes;
      }
      out.push(std::move(g));
    } else {
      for (const auto& l : ls) {
        for (const auto& r : rs) {
          Record j;
          j.key = key;
          j.values.reserve(l.values.size() + r.values.size());
          j.values.insert(j.values.end(), l.values.begin(), l.values.end());
          j.values.insert(j.values.end(), r.values.begin(), r.values.end());
          j.aux_bytes = l.aux_bytes + r.aux_bytes;
          out.push(std::move(j));
        }
      }
    }
  }
  return out;
}

Partition merge_concat(std::vector<Partition>&& parts) {
  Partition out;
  for (auto& p : parts) out.absorb(std::move(p));
  return out;
}

Partition merge_sorted(std::vector<Partition>&& parts) {
  Partition out = merge_concat(std::move(parts));
  std::stable_sort(out.mutable_records().begin(), out.mutable_records().end(),
                   [](const Record& a, const Record& b) { return a.key < b.key; });
  return out;
}

// ---------------------------------------------------------------------------
// Narrow operator chain.
// ---------------------------------------------------------------------------

Partition apply_narrow_op(const Dataset& op, Partition&& in, std::size_t task,
                          TaskWork& tw) {
  const auto n = static_cast<double>(in.size());
  tw.work_units += n * op.work_per_record();
  switch (op.op()) {
    case OpKind::kMap:
    case OpKind::kMapValues: {
      Partition out;
      out.reserve(in.size());
      for (const auto& r : in.records()) out.push(op.map_fn()(r));
      return out;
    }
    case OpKind::kFilter: {
      Partition out;
      for (const auto& r : in.records()) {
        if (op.filter_fn()(r)) out.push(r);
      }
      return out;
    }
    case OpKind::kFlatMap: {
      Partition out;
      for (const auto& r : in.records()) {
        for (auto& produced : op.flat_map_fn()(r)) out.push(std::move(produced));
      }
      return out;
    }
    case OpKind::kMapPartitions:
      return op.map_partitions_fn()(std::move(in));
    case OpKind::kSample: {
      common::Xoshiro256 rng(
          common::hash_combine(op.sample_seed(), task + 1));
      Partition out;
      for (const auto& r : in.records()) {
        if (rng.next_double() < op.sample_fraction()) out.push(r);
      }
      return out;
    }
    default:
      throw std::logic_error("apply_narrow_op: not a narrow op");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Job context.
// ---------------------------------------------------------------------------

struct Engine::JobContext {
  JobPlan plan;
  std::size_t job_id = 0;
  std::string name;
  bool collect_records = false;

  struct StageRt {
    std::optional<PartitionScheme> scheme;      ///< resolved (kShuffle/kSource)
    std::shared_ptr<Partitioner> partitioner;   ///< reduce-side (kShuffle only)
    std::size_t num_tasks = 0;
    std::vector<std::size_t> task_node;
    std::vector<Partition> output;
    std::shared_ptr<Partitioner> output_partitioner;
    /// producer stage index -> shuffle id written for this stage to read
    std::unordered_map<std::size_t, std::size_t> shuffle_from_producer;
  };
  std::vector<StageRt> rt;

  /// One partitioner instance per (kind, count) within the job: stages that
  /// resolve to the same scheme share the same object (and for range
  /// partitioners, the same sampled bounds), which is what makes equal
  /// schemes actually co-partition — mirroring Spark reusing a Partitioner
  /// across dependent RDDs.
  std::map<std::pair<PartitionerKind, std::size_t>,
           std::shared_ptr<Partitioner>>
      partitioner_cache;

  JobResult result;
};

/// Resolve the partition scheme of stage `s` (consulting the plan provider
/// first, then the wide operator's request, then engine defaults). Memoized.
static PartitionScheme resolve_scheme(Engine::JobContext& ctx, std::size_t s,
                                      PlanProvider* provider,
                                      std::size_t default_parallelism) {
  auto& rt = ctx.rt[s];
  if (rt.scheme) return *rt.scheme;
  const StagePlan& plan = ctx.plan.stages[s];

  // Synthesized repartition stages carry their scheme from the plan builder.
  if (plan.forced_scheme) {
    rt.scheme = plan.forced_scheme;
    return *rt.scheme;
  }

  PartitionScheme scheme;
  scheme.kind = PartitionerKind::kHash;
  scheme.num_partitions = default_parallelism;

  if (plan.input == StageInputKind::kShuffle) {
    const auto& req = plan.anchor->shuffle_request();
    if (req.kind) scheme.kind = *req.kind;
    if (req.num_partitions) scheme.num_partitions = *req.num_partitions;
  } else if (plan.input == StageInputKind::kSource) {
    scheme.num_partitions = plan.anchor->source_partitions();
  }

  // The plan provider (CHOPPER's config file) overrides defaults, but never
  // a user-fixed scheme and never a cache-determined task count.
  const bool user_fixed = plan.input == StageInputKind::kShuffle &&
                          plan.anchor->shuffle_request().user_fixed;
  if (provider && !plan.fixed_partitions && !user_fixed) {
    if (const auto o = provider->scheme_for(plan.signature)) {
      scheme = *o;
    }
  }
  if (scheme.num_partitions == 0) scheme.num_partitions = default_parallelism;
  rt.scheme = scheme;
  return scheme;
}

namespace {
/// Evenly-strided deterministic key sample from materialized output.
std::vector<std::uint64_t> sample_keys(const std::vector<Partition>& parts,
                                       std::size_t per_partition = 32) {
  std::vector<std::uint64_t> keys;
  for (const auto& p : parts) {
    if (p.empty()) continue;
    const std::size_t stride = std::max<std::size_t>(1, p.size() / per_partition);
    for (std::size_t i = 0; i < p.size(); i += stride) {
      keys.push_back(p.records()[i].key);
    }
  }
  return keys;
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine::run_job
// ---------------------------------------------------------------------------

JobResult Engine::run_job(const DatasetPtr& root, bool collect_records,
                          std::string job_name) {
  const auto job_t0 = Clock::now();
  JobContext ctx;
  ctx.plan = build_job_plan(root, block_manager_, plan_provider_.get(),
                            &inserted_repartitions_);
  ctx.job_id = next_job_id_++;
  ctx.name = std::move(job_name);
  ctx.collect_records = collect_records;
  ctx.rt.resize(ctx.plan.stages.size());

  const double job_sim_start = sim_clock_;
  JobMetrics job_metrics;
  job_metrics.job_id = ctx.job_id;
  job_metrics.name = ctx.name;

  PlanProvider* provider = plan_provider_.get();
  const CostModel& cm = options_.cost_model;

  for (std::size_t s = 0; s < ctx.plan.stages.size(); ++s) {
    const StagePlan& plan = ctx.plan.stages[s];
    auto& rt = ctx.rt[s];
    const auto stage_t0 = Clock::now();

    StageMetrics sm;
    sm.stage_id = next_stage_id_++;
    sm.job_id = ctx.job_id;
    sm.signature = plan.signature;
    sm.name = plan.name;
    sm.is_shuffle_map = !plan.consumers.empty();
    sm.anchor_op = plan.anchor->op();
    for (const std::size_t parent : plan.parent_stages) {
      sm.parent_signatures.push_back(ctx.plan.stages[parent].signature);
    }
    sm.fixed_partitions = plan.fixed_partitions;
    sm.user_fixed = plan.input == StageInputKind::kShuffle &&
                    plan.anchor->shuffle_request().user_fixed;
    job_metrics.stage_ids.push_back(sm.stage_id);

    // ---- determine task count & placement --------------------------------
    const CachedDataset* cached = nullptr;
    switch (plan.input) {
      case StageInputKind::kSource:
        rt.num_tasks =
            resolve_scheme(ctx, s, provider, options_.default_parallelism)
                .num_partitions;
        break;
      case StageInputKind::kCache:
        cached = block_manager_.get(plan.anchor->id());
        if (cached == nullptr) {
          throw std::logic_error("run_job: cache anchor not materialized: " +
                                 plan.anchor->label());
        }
        rt.num_tasks = cached->partitions.size();
        break;
      case StageInputKind::kShuffle:
        // The partitioner was built when the first producer wrote; producers
        // precede us in topological order.
        if (!rt.partitioner) {
          throw std::logic_error("run_job: shuffle partitioner missing for " +
                                 plan.name);
        }
        rt.num_tasks = rt.partitioner->num_partitions();
        break;
    }
    rt.task_node.resize(rt.num_tasks);
    for (std::size_t p = 0; p < rt.num_tasks; ++p) {
      rt.task_node[p] = node_for(p, rt.num_tasks);
    }

    // ---- phase 1: real execution ------------------------------------------
    std::vector<TaskWork> work(rt.num_tasks);
    rt.output.resize(rt.num_tasks);

    // Cache-materialization snapshots for not-yet-cached chain nodes.
    std::vector<const Dataset*> to_cache;
    if (plan.anchor->cached() && !block_manager_.contains(plan.anchor->id()) &&
        plan.input != StageInputKind::kCache) {
      to_cache.push_back(plan.anchor);
    }
    for (const auto* op : plan.narrow_ops) {
      if (op->cached() && !block_manager_.contains(op->id())) {
        to_cache.push_back(op);
      }
    }
    std::unordered_map<const Dataset*, std::vector<Partition>> cache_snapshots;
    for (const auto* ds : to_cache) {
      cache_snapshots[ds].resize(rt.num_tasks);
    }

    // Gather parent shuffle outputs (non-owning pointers; bucket columns are
    // disjoint per task, so tasks can move them out without locking).
    std::vector<ShuffleOutput*> parent_shuffles;
    if (plan.input == StageInputKind::kShuffle) {
      for (const std::size_t parent : plan.parent_stages) {
        const auto it = rt.shuffle_from_producer.find(parent);
        if (it == rt.shuffle_from_producer.end()) {
          throw std::logic_error("run_job: missing parent shuffle for " +
                                 plan.name);
        }
        parent_shuffles.push_back(&shuffles_.get_mutable(it->second));
      }
    }

    common::parallel_for(*pool_, rt.num_tasks, [&](std::size_t p) {
      TaskWork& tw = work[p];
      Partition part;

      switch (plan.input) {
        case StageInputKind::kSource: {
          part = plan.anchor->source_fn()(p, rt.num_tasks);
          tw.records_in = part.size();
          tw.bytes_in = part.bytes();
          tw.work_units += static_cast<double>(part.size()) * kSourceGenWork;
          break;
        }
        case StageInputKind::kCache: {
          part.reserve(cached->partitions[p].size());
          for (const auto& r : cached->partitions[p].records()) part.push(r);
          tw.records_in = part.size();
          tw.bytes_in = part.bytes();
          tw.local_fetch_bytes += part.bytes();
          tw.work_units += static_cast<double>(part.size()) * kCacheReadWork;
          break;
        }
        case StageInputKind::kShuffle: {
          const std::size_t dst = rt.task_node[p];
          std::vector<Partition> sides;
          sides.reserve(parent_shuffles.size());
          for (ShuffleOutput* so : parent_shuffles) {
            Partition side;
            for (std::size_t m = 0; m < so->num_map_tasks; ++m) {
              Partition& bucket = so->buckets[m][p];
              const std::uint64_t b = bucket.bytes();
              if (so->passthrough || so->map_node[m] == dst) {
                tw.local_fetch_bytes += b;
                tw.shuffle_read_local += b;
              } else if (b > 0) {
                tw.remote_fetch[so->map_node[m]] += b;
                ++tw.remote_segments;
                tw.shuffle_read_remote += b;
              }
              side.absorb(std::move(bucket));
            }
            tw.records_in += side.size();
            tw.bytes_in += side.bytes();
            sides.push_back(std::move(side));
          }
          tw.work_units +=
              static_cast<double>(tw.records_in) * plan.anchor->work_per_record();
          switch (plan.anchor->op()) {
            case OpKind::kReduceByKey:
              part = merge_reduce_by_key(std::move(sides),
                                         plan.anchor->reduce_fn());
              break;
            case OpKind::kGroupByKey:
              part = merge_group_by_key(std::move(sides));
              break;
            case OpKind::kJoin:
              part = merge_join(std::move(sides[0]), std::move(sides[1]),
                                plan.anchor->join_fn(), /*cogroup=*/false);
              break;
            case OpKind::kCoGroup:
              part = merge_join(std::move(sides[0]), std::move(sides[1]),
                                plan.anchor->join_fn(), /*cogroup=*/true);
              break;
            case OpKind::kRepartition:
            case OpKind::kUnion:
              part = merge_concat(std::move(sides));
              break;
            case OpKind::kSortByKey:
              part = merge_sorted(std::move(sides));
              break;
            default:
              throw std::logic_error("run_job: unexpected wide op");
          }
          break;
        }
      }

      // Cache snapshot at the anchor point (before narrow ops).
      if (auto it = cache_snapshots.find(plan.anchor);
          it != cache_snapshots.end()) {
        Partition copy;
        copy.reserve(part.size());
        for (const auto& r : part.records()) copy.push(r);
        it->second[p] = std::move(copy);
      }

      for (const auto* op : plan.narrow_ops) {
        part = apply_narrow_op(*op, std::move(part), p, tw);
        if (auto it = cache_snapshots.find(op); it != cache_snapshots.end()) {
          Partition copy;
          copy.reserve(part.size());
          for (const auto& r : part.records()) copy.push(r);
          it->second[p] = std::move(copy);
        }
      }

      tw.records_out = part.size();
      tw.bytes_out = part.bytes();
      rt.output[p] = std::move(part);
    });

    // Track the partitioning of this stage's output for the co-partition
    // fast path: a shuffle input partitioner survives narrow ops that
    // preserve partitioning.
    if (plan.input == StageInputKind::kShuffle) {
      rt.output_partitioner = rt.partitioner;
    } else if (plan.input == StageInputKind::kCache) {
      rt.output_partitioner = cached->partitioner;
    }
    for (const auto* op : plan.narrow_ops) {
      if (!op->preserves_partitioning()) {
        rt.output_partitioner = nullptr;
        break;
      }
    }

    // Commit cache materializations.
    for (const auto* ds : to_cache) {
      CachedDataset cd;
      cd.partitions = std::move(cache_snapshots[ds]);
      cd.placement = rt.task_node;
      // The snapshot is partitioned like the stage output only if every op
      // after the snapshot point... conservatively: anchor snapshots carry
      // the input partitioner, later snapshots carry none unless all prior
      // ops preserve partitioning; using the stage-level result is safe only
      // for the last snapshot, so be conservative for intermediate ones.
      cd.partitioner = (ds == plan.anchor && plan.input == StageInputKind::kShuffle)
                           ? rt.partitioner
                           : (!plan.narrow_ops.empty() &&
                              ds == plan.narrow_ops.back())
                                 ? rt.output_partitioner
                                 : nullptr;
      for (const auto& p : cd.partitions) cd.bytes += p.bytes();
      block_manager_.put(ds->id(), std::move(cd));
    }

    // ---- phase 2: shuffle writes for consumers -----------------------------
    std::vector<double> extra_work(rt.num_tasks, 0.0);
    std::uint64_t stage_shuffle_write = 0;
    std::uint64_t write_transactions = 0;
    const bool keep_output = plan.is_result;

    for (std::size_t ci = 0; ci < plan.consumers.size(); ++ci) {
      const std::size_t consumer = plan.consumers[ci];
      const StagePlan& cplan = ctx.plan.stages[consumer];
      auto& crt = ctx.rt[consumer];
      PartitionScheme scheme =
          resolve_scheme(ctx, consumer, provider, options_.default_parallelism);
      // Adaptive (AQE-style) coalescing: size the reduce side from observed
      // map output volume when nothing pinned the scheme. Only the first
      // producer re-sizes (later producers must agree with the partitioner
      // already built).
      const bool scheme_pinned =
          (provider != nullptr &&
           provider->scheme_for(cplan.signature).has_value()) ||
          cplan.anchor->shuffle_request().num_partitions.has_value();
      if (options_.adaptive.enabled && !scheme_pinned && !crt.partitioner) {
        std::uint64_t out_bytes = 0;
        for (const auto& part : rt.output) out_bytes += part.bytes();
        const double modeled =
            static_cast<double>(out_bytes) / cm.data_scale;
        auto target = static_cast<std::size_t>(
            modeled / static_cast<double>(
                          options_.adaptive.target_partition_bytes) +
            0.999);
        target = std::clamp(target, options_.adaptive.min_partitions,
                            options_.adaptive.max_partitions);
        scheme.num_partitions = target;
        ctx.rt[consumer].scheme = scheme;
      }
      if (!crt.partitioner) {
        const auto cache_key = std::make_pair(scheme.kind, scheme.num_partitions);
        const auto cached_part = ctx.partitioner_cache.find(cache_key);
        if (cached_part != ctx.partitioner_cache.end()) {
          crt.partitioner = cached_part->second;
        } else {
          std::vector<std::uint64_t> keys;
          if (scheme.kind == PartitionerKind::kRange) {
            keys = sample_keys(rt.output);
          }
          crt.partitioner = make_partitioner(scheme.kind, scheme.num_partitions,
                                             std::move(keys));
          ctx.partitioner_cache.emplace(cache_key, crt.partitioner);
        }
      }
      const auto& target = crt.partitioner;
      const std::size_t r_count = target->num_partitions();
      const bool last_consumer = ci + 1 == plan.consumers.size();
      const bool may_move = last_consumer && !keep_output;

      ShuffleOutput so;
      so.shuffle_id = shuffles_.next_id();
      so.partitioner = target;
      so.num_map_tasks = rt.num_tasks;
      so.map_node = rt.task_node;
      so.buckets.resize(rt.num_tasks);
      for (auto& row : so.buckets) row.resize(r_count);

      const bool passthrough = rt.output_partitioner &&
                               rt.output_partitioner->equals(*target);
      so.passthrough = passthrough;

      const bool combine = cplan.anchor->op() == OpKind::kReduceByKey &&
                           static_cast<bool>(cplan.anchor->reduce_fn());

      common::parallel_for(*pool_, rt.num_tasks, [&](std::size_t m) {
        auto& row = so.buckets[m];
        Partition& out = rt.output[m];
        if (passthrough) {
          // Already partitioned correctly: bucket r == m, no repartitioning
          // work, no framing overhead, reads will be node-local.
          if (may_move) {
            row[m] = std::move(out);
          } else {
            Partition copy;
            copy.reserve(out.size());
            for (const auto& r : out.records()) copy.push(r);
            row[m] = std::move(copy);
          }
          return;
        }
        extra_work[m] +=
            static_cast<double>(out.size()) * (combine ? kCombineWork : kBucketWork);
        if (combine) {
          // Map-side combine: one accumulator per (bucket, key).
          std::vector<std::unordered_map<std::uint64_t, Record>> accs(r_count);
          const auto& fn = cplan.anchor->reduce_fn();
          for (const auto& rec : out.records()) {
            auto& acc = accs[target->partition_of(rec.key)];
            auto [it, inserted] = acc.try_emplace(rec.key, rec);
            if (!inserted) fn(it->second, rec);
          }
          for (std::size_t r = 0; r < r_count; ++r) {
            std::vector<std::uint64_t> keys;
            keys.reserve(accs[r].size());
            for (const auto& [k, v] : accs[r]) keys.push_back(k);
            std::sort(keys.begin(), keys.end());
            row[r].reserve(keys.size());
            for (const auto k : keys) row[r].push(std::move(accs[r].at(k)));
          }
        } else {
          for (const auto& rec : out.records()) {
            row[target->partition_of(rec.key)].push(rec);
          }
          if (may_move) {
            out = Partition();  // release source records
          }
        }
      });

      std::uint64_t bytes = 0, nonempty = 0;
      for (const auto& row : so.buckets) {
        for (const auto& b : row) {
          bytes += b.bytes();
          if (!b.empty()) ++nonempty;
        }
      }
      if (!passthrough) {
        bytes += nonempty * cm.bucket_header_bytes;
      }
      so.total_bytes = bytes;
      stage_shuffle_write += bytes;
      write_transactions += nonempty;

      crt.shuffle_from_producer.emplace(s, so.shuffle_id);
      shuffles_.put(std::move(so));
    }

    // Release output early when nobody else needs it.
    if (!keep_output && !plan.consumers.empty()) {
      rt.output.clear();
      rt.output.shrink_to_fit();
    }

    // ---- phase 3: price the stage on the simulated cluster -----------------
    sm.num_partitions = rt.num_tasks;
    if (rt.partitioner) sm.partitioner = rt.partitioner->kind();
    sm.tasks.resize(rt.num_tasks);

    std::vector<std::vector<double>> slot_free(cluster_.num_nodes());
    for (std::size_t n = 0; n < cluster_.num_nodes(); ++n) {
      slot_free[n].assign(cluster_.node(n).cores, 0.0);
    }
    double makespan = 0.0;
    // Measured work/bytes are rescaled to the modeled system's data volume
    // before pricing (see CostModel::data_scale).
    const double rescale = 1.0 / cm.data_scale;

    // Optional NIC incast contention: concurrent fetchers share the link.
    std::vector<double> node_fetch_share(cluster_.num_nodes(), 1.0);
    if (cm.model_network_contention) {
      std::vector<std::size_t> tasks_on_node(cluster_.num_nodes(), 0);
      for (std::size_t p = 0; p < rt.num_tasks; ++p) {
        ++tasks_on_node[rt.task_node[p]];
      }
      for (std::size_t n = 0; n < cluster_.num_nodes(); ++n) {
        node_fetch_share[n] = static_cast<double>(
            std::max<std::size_t>(1, std::min(cluster_.node(n).cores,
                                              tasks_on_node[n])));
      }
    }
    std::vector<double> durations(rt.num_tasks, 0.0);
    std::vector<double> fetch_portion(rt.num_tasks, 0.0);
    std::vector<double> compute_portion(rt.num_tasks, 0.0);
    for (std::size_t p = 0; p < rt.num_tasks; ++p) {
      const TaskWork& tw = work[p];
      const std::size_t n = rt.task_node[p];
      const NodeSpec& node = cluster_.node(n);

      double fetch_s = tw.local_fetch_bytes * rescale / cm.local_read_bw;
      for (const auto& [src, bytes] : tw.remote_fetch) {
        const double bw = std::min(node.net_bw, cluster_.node(src).net_bw) /
                          node_fetch_share[n];
        fetch_s += static_cast<double>(bytes) * rescale / bw;
      }
      fetch_s += cm.fetch_latency_s * static_cast<double>(tw.remote_segments);

      double compute_s =
          (tw.work_units + extra_work[p]) * rescale * cm.sec_per_work_unit +
          static_cast<double>(tw.bytes_in + tw.bytes_out) * rescale *
              cm.sec_per_byte;
      compute_s /= node.speed;

      const double budget = static_cast<double>(node.memory_bytes) /
                            static_cast<double>(node.cores) * cm.spill_fraction;
      const double resident =
          static_cast<double>(tw.bytes_in + tw.bytes_out) * rescale;
      if (resident > budget) {
        compute_s += (resident - budget) * cm.spill_amplification / cm.disk_bw;
      }

      double duration = cm.task_launch_s + fetch_s + compute_s;

      // Deterministic fault injection: failed attempts burn a fraction of
      // the duration before Spark-style retry.
      if (options_.faults.task_failure_prob > 0.0) {
        common::Xoshiro256 frng(common::hash_combine(
            common::hash_combine(options_.faults.seed, sm.stage_id),
            p + 1));
        double total = 0.0;
        std::size_t attempt = 1;
        while (frng.next_double() < options_.faults.task_failure_prob) {
          if (attempt >= options_.faults.max_attempts) {
            throw std::runtime_error(
                "task " + std::to_string(p) + " of stage " + plan.name +
                " exceeded max attempts (injected faults)");
          }
          total += duration * options_.faults.failed_attempt_fraction;
          ++attempt;
        }
        duration += total;
        sm.tasks[p].attempts = attempt;
      }
      durations[p] = duration;
      fetch_portion[p] = fetch_s;
      compute_portion[p] = compute_s;
    }

    // Speculative execution bounds straggler damage: any task far above the
    // stage median is assumed to get a backup copy.
    if (options_.speculation.enabled && rt.num_tasks > 1) {
      std::vector<double> sorted = durations;
      std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                       sorted.end());
      const double median = sorted[sorted.size() / 2];
      const double cap =
          median * options_.speculation.multiplier + cm.task_launch_s;
      for (auto& d : durations) {
        if (d > cap) d = cap;
      }
    }

    for (std::size_t p = 0; p < rt.num_tasks; ++p) {
      const TaskWork& tw = work[p];
      const std::size_t n = rt.task_node[p];
      const double duration = durations[p];

      // Earliest-available slot on the task's node.
      auto& slots = slot_free[n];
      auto slot = std::min_element(slots.begin(), slots.end());
      const double start = *slot;
      const double end = start + duration;
      *slot = end;
      makespan = std::max(makespan, end);

      TaskMetrics& tm = sm.tasks[p];
      tm.task_index = p;
      tm.node = n;
      tm.sim_start = start;
      tm.sim_end = end;
      tm.compute_s = compute_portion[p];
      tm.fetch_s = fetch_portion[p];
      tm.records_in = tw.records_in;
      tm.records_out = tw.records_out;
      tm.bytes_in = tw.bytes_in;
      tm.bytes_out = tw.bytes_out;
      tm.shuffle_read_remote = tw.shuffle_read_remote;
      tm.shuffle_read_local = tw.shuffle_read_local;

      sm.input_records += tw.records_in;
      sm.input_bytes += tw.bytes_in;
      sm.output_records += tw.records_out;
      sm.output_bytes += tw.bytes_out;
      sm.shuffle_read_bytes += tw.shuffle_read_remote + tw.shuffle_read_local;
    }
    sm.shuffle_write_bytes = stage_shuffle_write;
    sm.sim_start_s = sim_clock_;
    sm.sim_time_s = makespan;
    sm.wall_time_s = seconds_since(stage_t0);

    // ---- timeline samples ---------------------------------------------------
    // Byte-valued samples are rescaled to the modeled system's volume, like
    // the pricing above, so Fig. 12/13 read in paper-scale terms.
    if (options_.record_timeline) {
      const double t0 = sim_clock_;
      for (const auto& tm : sm.tasks) {
        timeline_.add_cpu_busy(t0 + tm.sim_start, t0 + tm.sim_end);
        if (tm.shuffle_read_remote > 0) {
          timeline_.add_network(
              t0 + tm.sim_start, t0 + tm.sim_start + tm.fetch_s,
              static_cast<std::uint64_t>(
                  static_cast<double>(tm.shuffle_read_remote) * rescale));
        }
      }
      timeline_.add_transactions(t0, write_transactions + rt.num_tasks);
      timeline_.add_memory(
          t0, t0 + std::max(makespan, 1e-9),
          static_cast<std::uint64_t>(
              static_cast<double>(sm.input_bytes + sm.output_bytes +
                                  block_manager_.total_bytes()) *
              rescale));
    }

    sim_clock_ += makespan;

    // ---- result action -------------------------------------------------------
    if (plan.is_result) {
      if (ctx.collect_records) {
        for (auto& part : rt.output) {
          for (auto& r : part.mutable_records()) {
            ctx.result.records.push_back(std::move(r));
          }
        }
      }
      for (const auto& tm : sm.tasks) ctx.result.count += tm.records_out;
      rt.output.clear();
    }

    // ---- release consumed parent shuffles ------------------------------------
    if (plan.input == StageInputKind::kShuffle) {
      for (const std::size_t parent : plan.parent_stages) {
        const auto it = rt.shuffle_from_producer.find(parent);
        if (it != rt.shuffle_from_producer.end()) {
          shuffles_.remove(it->second);
          rt.shuffle_from_producer.erase(it);
        }
      }
    }

    metrics_.add_stage(std::move(sm));
  }

  ctx.result.job_id = ctx.job_id;
  ctx.result.name = ctx.name;
  ctx.result.sim_time_s = sim_clock_ - job_sim_start;
  ctx.result.wall_time_s = seconds_since(job_t0);
  ctx.result.stage_ids = job_metrics.stage_ids;

  job_metrics.sim_time_s = ctx.result.sim_time_s;
  job_metrics.wall_time_s = ctx.result.wall_time_s;
  metrics_.add_job(std::move(job_metrics));
  return std::move(ctx.result);
}

}  // namespace chopper::engine
