#include "engine/shuffle.h"

#include <stdexcept>

namespace chopper::engine {

std::size_t ShuffleManager::next_id() {
  std::lock_guard lock(mu_);
  return next_id_++;
}

void ShuffleManager::put(ShuffleOutput out) {
  std::lock_guard lock(mu_);
  const std::size_t id = out.shuffle_id;
  outputs_[id] = std::make_unique<ShuffleOutput>(std::move(out));
}

const ShuffleOutput& ShuffleManager::get(std::size_t shuffle_id) const {
  std::lock_guard lock(mu_);
  const auto it = outputs_.find(shuffle_id);
  if (it == outputs_.end()) {
    throw std::runtime_error("ShuffleManager: unknown shuffle id " +
                             std::to_string(shuffle_id));
  }
  return *it->second;
}

ShuffleOutput& ShuffleManager::get_mutable(std::size_t shuffle_id) {
  std::lock_guard lock(mu_);
  const auto it = outputs_.find(shuffle_id);
  if (it == outputs_.end()) {
    throw std::runtime_error("ShuffleManager: unknown shuffle id " +
                             std::to_string(shuffle_id));
  }
  return *it->second;
}

bool ShuffleManager::contains(std::size_t shuffle_id) const {
  std::lock_guard lock(mu_);
  return outputs_.count(shuffle_id) > 0;
}

void ShuffleManager::remove(std::size_t shuffle_id) {
  std::lock_guard lock(mu_);
  outputs_.erase(shuffle_id);
}

LossReport ShuffleManager::invalidate_node(std::size_t node) {
  std::lock_guard lock(mu_);
  LossReport report;
  for (auto& [id, out] : outputs_) {
    ShuffleOutput& so = *out;
    if (so.lost.size() != so.num_map_tasks) {
      so.lost.assign(so.num_map_tasks, 0);
    }
    for (std::size_t m = 0; m < so.num_map_tasks; ++m) {
      if (so.map_node[m] != node || so.lost[m]) continue;
      so.lost[m] = 1;
      ++report.lost_tasks;
      for (auto& bucket : so.buckets[m]) {
        report.lost_bytes += bucket.bytes();
        bucket = Partition();
      }
    }
  }
  return report;
}

std::size_t ShuffleManager::count() const {
  std::lock_guard lock(mu_);
  return outputs_.size();
}

}  // namespace chopper::engine
