#include "engine/shuffle.h"

#include <algorithm>
#include <stdexcept>

#include "common/hash.h"
#include "obs/event_log.h"

namespace chopper::engine {

std::uint64_t ShuffleOutput::compute_row_sum(std::size_t m) const noexcept {
  common::Checksum64 ck;
  ck.update_u64(m);
  for (const Partition& bucket : buckets[m]) {
    ck.update_u64(bucket.checksum());
  }
  return ck.digest();
}

void ShuffleOutput::record_row_sums() {
  if (row_sum.size() != num_map_tasks) row_sum.assign(num_map_tasks, 0);
  for (std::size_t m = 0; m < num_map_tasks; ++m) {
    if (!lost.empty() && lost[m]) continue;
    row_sum[m] = compute_row_sum(m);
  }
}

std::size_t ShuffleManager::next_id() {
  std::lock_guard lock(mu_);
  return next_id_++;
}

void ShuffleManager::put(ShuffleOutput out) {
  std::lock_guard lock(mu_);
  const std::size_t id = out.shuffle_id;
  outputs_[id] = std::make_unique<ShuffleOutput>(std::move(out));
  enforce_locked();
}

const ShuffleOutput& ShuffleManager::get(std::size_t shuffle_id) const {
  std::lock_guard lock(mu_);
  const auto it = outputs_.find(shuffle_id);
  if (it == outputs_.end()) {
    throw std::runtime_error("ShuffleManager: unknown shuffle id " +
                             std::to_string(shuffle_id));
  }
  return *it->second;
}

ShuffleOutput& ShuffleManager::get_mutable(std::size_t shuffle_id) {
  std::lock_guard lock(mu_);
  const auto it = outputs_.find(shuffle_id);
  if (it == outputs_.end()) {
    throw std::runtime_error("ShuffleManager: unknown shuffle id " +
                             std::to_string(shuffle_id));
  }
  return *it->second;
}

bool ShuffleManager::contains(std::size_t shuffle_id) const {
  std::lock_guard lock(mu_);
  return outputs_.count(shuffle_id) > 0;
}

void ShuffleManager::remove(std::size_t shuffle_id) {
  std::lock_guard lock(mu_);
  outputs_.erase(shuffle_id);
}

LossReport ShuffleManager::invalidate_node(std::size_t node) {
  std::lock_guard lock(mu_);
  LossReport report;
  for (auto& [id, out] : outputs_) {
    ShuffleOutput& so = *out;
    if (so.lost.size() != so.num_map_tasks) {
      so.lost.assign(so.num_map_tasks, 0);
    }
    for (std::size_t m = 0; m < so.num_map_tasks; ++m) {
      if (so.map_node[m] != node || so.lost[m]) continue;
      so.lost[m] = 1;
      ++report.lost_tasks;
      for (auto& bucket : so.buckets[m]) {
        report.lost_bytes += bucket.bytes();
        bucket = Partition();
      }
    }
  }
  return report;
}

void ShuffleManager::configure_budget(
    std::vector<std::uint64_t> per_node_capacity, MemoryLedger* ledger,
    double ledger_scale) {
  std::lock_guard lock(mu_);
  capacity_ = std::move(per_node_capacity);
  ledger_ = ledger;
  ledger_scale_ = ledger_scale;
}

namespace {

bool row_resident(const ShuffleOutput& so, std::size_t m, std::size_t node) {
  if (so.map_node[m] != node) return false;
  if (!so.lost.empty() && so.lost[m]) return false;
  if (!so.on_disk.empty() && so.on_disk[m]) return false;
  return true;
}

}  // namespace

std::uint64_t ShuffleManager::resident_bytes(std::size_t node) const {
  std::lock_guard lock(mu_);
  std::uint64_t b = 0;
  for (const auto& [id, out] : outputs_) {
    for (std::size_t m = 0; m < out->num_map_tasks; ++m) {
      if (row_resident(*out, m, node)) b += out->row_bytes(m);
    }
  }
  return b;
}

std::uint64_t ShuffleManager::spilled_bytes(std::size_t node) const {
  std::lock_guard lock(mu_);
  std::uint64_t b = 0;
  for (const auto& [id, out] : outputs_) {
    if (out->on_disk.empty()) continue;
    for (std::size_t m = 0; m < out->num_map_tasks; ++m) {
      if (out->map_node[m] == node && out->on_disk[m] &&
          (out->lost.empty() || !out->lost[m])) {
        b += out->row_bytes(m);
      }
    }
  }
  return b;
}

void ShuffleManager::enforce_locked() {
  if (capacity_.empty()) return;
  // Deterministic spill order: ascending shuffle id (oldest output first),
  // ascending map index within an output.
  std::vector<std::size_t> ids;
  ids.reserve(outputs_.size());
  for (const auto& [id, out] : outputs_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  for (std::size_t node = 0; node < capacity_.size(); ++node) {
    std::uint64_t used = 0;
    for (const std::size_t id : ids) {
      const ShuffleOutput& so = *outputs_.at(id);
      for (std::size_t m = 0; m < so.num_map_tasks; ++m) {
        if (row_resident(so, m, node)) used += so.row_bytes(m);
      }
    }
    if (used <= capacity_[node]) continue;
    for (const std::size_t id : ids) {
      if (used <= capacity_[node]) break;
      ShuffleOutput& so = *outputs_.at(id);
      for (std::size_t m = 0; m < so.num_map_tasks; ++m) {
        if (!row_resident(so, m, node)) continue;
        const std::uint64_t b = so.row_bytes(m);
        if (b == 0) continue;
        if (so.on_disk.size() != so.num_map_tasks) {
          so.on_disk.assign(so.num_map_tasks, 0);
        }
        so.on_disk[m] = 1;
        used -= std::min(used, b);
        if (ledger_ != nullptr) {
          ledger_->add_spill(node, static_cast<std::uint64_t>(
                                       static_cast<double>(b) * ledger_scale_));
        }
        if (event_log_ != nullptr && event_log_->enabled()) {
          obs::Event ev;
          ev.kind = obs::EventKind::kShuffleSpill;
          ev.sim = event_log_->sim_hint();
          ev.shuffle = id;
          ev.task = m;
          ev.node = node;
          ev.bytes = b;
          event_log_->emit(std::move(ev));
        }
        if (used <= capacity_[node]) break;
      }
    }
  }
}

void ShuffleManager::enforce_budget() {
  std::lock_guard lock(mu_);
  enforce_locked();
}

std::size_t ShuffleManager::count() const {
  std::lock_guard lock(mu_);
  return outputs_.size();
}

}  // namespace chopper::engine
