// Shuffle manager: stores map-side bucketed output between stages.
//
// A ShuffleMapStage with M tasks writing for a consumer with R partitions
// produces an M x R grid of buckets. Byte accounting adds a fixed header per
// non-empty bucket segment (serialized file framing), which is what makes
// shuffle volume grow with the partition count (paper Fig. 4). When the
// writer's output is already partitioned by an equal partitioner, the write
// degenerates to a pass-through (bucket r == map index m) with no headers
// and purely local reads — the co-partitioning fast path CHOPPER exploits.
//
// Fault tolerance: each map task's bucket row lives on the node that ran the
// task (`map_node`). When a node dies, `invalidate_node` drops every bucket
// row that node held and marks the map task lost; consuming stages detect
// the loss (a fetch failure) and the scheduler replays the producer's
// lineage for exactly the lost map tasks (see scheduler.cc).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "engine/fault.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "engine/partitioner.h"

namespace chopper::obs {
class EventLog;
}

namespace chopper::engine {

struct ShuffleOutput {
  std::size_t shuffle_id = 0;
  std::shared_ptr<Partitioner> partitioner;  ///< reducer-side scheme
  std::size_t num_map_tasks = 0;
  /// buckets[m][r]: records map task m produced for reduce partition r.
  std::vector<std::vector<Partition>> buckets;
  /// node that executed map task m (for local-vs-remote fetch accounting).
  std::vector<std::size_t> map_node;
  /// lost[m]: map task m's output was on a node that died; its bucket row
  /// has been dropped and must be recomputed from lineage before any
  /// consumer can read it. Empty vector == nothing lost.
  std::vector<char> lost;
  /// on_disk[m]: map task m's bucket row was spilled to the node's simulated
  /// disk tier under memory pressure — the records are still there (reads
  /// work, at disk bandwidth) but the row no longer counts as resident.
  /// Empty vector == nothing spilled.
  std::vector<char> on_disk;
  /// Per-map-row integrity checksums: row_sum[m] digests every bucket of
  /// row m (recorded at publish, recomputed after heals/re-bucketing).
  /// Empty vector == checksums off (no CorruptionSchedule armed).
  std::vector<std::uint64_t> row_sum;
  std::uint64_t total_bytes = 0;  ///< includes per-bucket headers
  bool passthrough = false;       ///< co-partitioned: no real shuffle happened

  bool has_lost_tasks() const noexcept {
    for (const char l : lost) {
      if (l) return true;
    }
    return false;
  }
  bool row_on_disk(std::size_t m) const noexcept {
    return !on_disk.empty() && on_disk[m];
  }
  /// Record bytes of map row m (no framing headers).
  std::uint64_t row_bytes(std::size_t m) const noexcept {
    std::uint64_t b = 0;
    for (const auto& bucket : buckets[m]) b += bucket.bytes();
    return b;
  }
  /// Integrity digest of map row m (every bucket's arena checksum chained).
  std::uint64_t compute_row_sum(std::size_t m) const noexcept;
  /// (Re)record row_sum for every non-lost row; sizes row_sum on first use.
  void record_row_sums();
  /// Recompute the recorded checksum of one row (after a heal or in-place
  /// re-bucketing). No-op when checksums are off.
  void refresh_row_sum(std::size_t m) noexcept {
    if (!row_sum.empty() && m < row_sum.size()) {
      row_sum[m] = compute_row_sum(m);
    }
  }
};

class ShuffleManager {
 public:
  /// Reserve an id for a shuffle about to be written.
  std::size_t next_id();

  void put(ShuffleOutput out);

  /// Look up a stored shuffle. get_mutable is used by consuming stages:
  /// tasks move records out of their own bucket column (column p belongs
  /// exclusively to reduce task p, so no locking is needed across tasks).
  /// References stay valid until that shuffle is removed — outputs are
  /// heap-allocated, so concurrent put() calls from other jobs never move
  /// them.
  const ShuffleOutput& get(std::size_t shuffle_id) const;
  ShuffleOutput& get_mutable(std::size_t shuffle_id);

  bool contains(std::size_t shuffle_id) const;

  /// Drop a consumed shuffle's data to release memory.
  void remove(std::size_t shuffle_id);

  /// Node `node` died: drop every bucket row written by a map task that ran
  /// there and mark the task lost. Returns what was destroyed.
  LossReport invalidate_node(std::size_t node);

  /// Arm the per-node in-memory shuffle budget (raw bytes). When a node's
  /// resident rows exceed it, whole map rows are spilled oldest-shuffle
  /// first (marked on_disk; data stays readable at disk speed). Spills are
  /// reported to `ledger` with bytes multiplied by `ledger_scale`.
  void configure_budget(std::vector<std::uint64_t> per_node_capacity,
                        MemoryLedger* ledger, double ledger_scale);
  /// Re-run the spill scan (put() runs it automatically; lineage replay and
  /// adaptive repartition call it after mutating rows in place).
  void enforce_budget();

  /// In-memory (non-spilled, non-lost) row bytes on `node` (raw bytes).
  std::uint64_t resident_bytes(std::size_t node) const;
  /// Cumulative look at rows currently flagged on_disk on `node` (raw).
  std::uint64_t spilled_bytes(std::size_t node) const;

  std::size_t count() const;

  /// Structured event log for kShuffleSpill events (nullptr: none). Spills
  /// are stamped with the log's sim-time hint (the scan has no clock).
  void set_event_log(obs::EventLog* log) noexcept { event_log_ = log; }

 private:
  void enforce_locked();

  mutable std::mutex mu_;
  std::size_t next_id_ = 1;
  /// unique_ptr values: rehashing on insert must not invalidate references
  /// held by concurrently running jobs (see get/get_mutable).
  std::unordered_map<std::size_t, std::unique_ptr<ShuffleOutput>> outputs_;
  std::vector<std::uint64_t> capacity_;  ///< empty: no budget armed
  MemoryLedger* ledger_ = nullptr;
  double ledger_scale_ = 1.0;
  obs::EventLog* event_log_ = nullptr;  ///< not owned; may be null
};

}  // namespace chopper::engine
