#include "obs/chrome_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "obs/jsonl.h"

namespace chopper::obs {
namespace {

/// Synthetic Chrome pid for the scheduler/arbiter lane (pool grants).
constexpr std::uint64_t kSchedulerPid = 1000;

double us(double seconds) { return seconds * 1e6; }

void append_num(double v, std::string& out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

void append_u64(std::uint64_t v, std::string& out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

struct StageInfo {
  double sim_start_s = 0.0;
  double sim_time_s = 0.0;
  std::string name;
  std::uint64_t job = kNoId;
  // Anchors for shuffle flow arrows: the stage's first and last task spans.
  bool has_spans = false;
  double first_ts = 0.0, last_ts = 0.0;
  std::uint64_t first_node = 0, first_slot = 0;
  std::uint64_t last_node = 0, last_slot = 0;
};

class Writer {
 public:
  explicit Writer(std::string& out) : out_(out) { out_ += "{\"traceEvents\":["; }

  void open_event() {
    if (!first_) out_ += ',';
    first_ = false;
    out_ += '{';
    first_field_ = true;
  }
  void close_event() { out_ += '}'; }

  void field(const char* key, const std::string& value, bool quote) {
    if (!first_field_) out_ += ',';
    first_field_ = false;
    out_ += '"';
    out_ += key;
    out_ += "\":";
    if (quote) {
      append_json_quoted(value, out_);
    } else {
      out_ += value;
    }
  }
  void num(const char* key, double v) {
    std::string s;
    append_num(v, s);
    field(key, s, false);
  }
  void u64(const char* key, std::uint64_t v) {
    std::string s;
    append_u64(v, s);
    field(key, s, false);
  }
  void str(const char* key, const std::string& v) { field(key, v, true); }

  /// args must be raw JSON (already serialized object body).
  void raw(const char* key, const std::string& v) { field(key, v, false); }

  void finish() { out_ += "],\"displayTimeUnit\":\"ms\"}\n"; }

 private:
  std::string& out_;
  bool first_ = true;
  bool first_field_ = true;
};

void meta_name(Writer& w, const char* ph_name, std::uint64_t pid,
               std::uint64_t tid, const std::string& name) {
  w.open_event();
  w.str("ph", "M");
  w.str("name", ph_name);
  w.u64("pid", pid);
  w.u64("tid", tid);
  std::string args = "{\"name\":";
  append_json_quoted(name, args);
  args += '}';
  w.raw("args", args);
  w.close_event();
}

void instant(Writer& w, const std::string& name, double ts, std::uint64_t pid,
             std::uint64_t tid, const std::string& args_raw) {
  w.open_event();
  w.str("ph", "i");
  w.str("name", name);
  w.str("s", "p");  // process-scoped marker
  w.num("ts", ts);
  w.u64("pid", pid);
  w.u64("tid", tid);
  if (!args_raw.empty()) w.raw("args", args_raw);
  w.close_event();
}

}  // namespace

std::string to_chrome_trace(const std::vector<Event>& events) {
  std::vector<const Event*> sorted;
  sorted.reserve(events.size());
  for (const Event& e : events) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const Event* a, const Event* b) { return a->seq < b->seq; });

  // Pass 1: index stages (timing + span anchors) and the cluster shape.
  std::unordered_map<std::uint64_t, StageInfo> stages;  // by global stage id
  // (job, consumer plan index) -> consumer global stage id, resolved in seq
  // order so the *next* start of that plan index after the write wins.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<std::uint64_t>>
      starts_by_plan;
  std::vector<std::size_t> cores;
  for (const Event* e : sorted) {
    switch (e->kind) {
      case EventKind::kClusterInfo:
        cores.assign(e->list.begin(), e->list.end());
        break;
      case EventKind::kStageStart:
        starts_by_plan[{e->job, e->plan_index}].push_back(e->stage);
        stages[e->stage].name = e->name;
        stages[e->stage].job = e->job;
        break;
      case EventKind::kStageEnd: {
        StageInfo& si = stages[e->stage];
        si.sim_start_s = e->sim_start_s;
        si.sim_time_s = e->sim_time_s;
        if (si.name.empty()) si.name = e->name;
        si.job = e->job;
        break;
      }
      default:
        break;
    }
  }
  // Span anchors need the stage window offset, so resolve them after the
  // stage index is complete.
  for (const Event* e : sorted) {
    if (e->kind != EventKind::kTaskSpan) continue;
    auto it = stages.find(e->stage);
    if (it == stages.end()) continue;
    StageInfo& si = it->second;
    const double t0 = us(si.sim_start_s + e->t_start);
    const double t1 = us(si.sim_start_s + e->t_end);
    if (!si.has_spans || t0 < si.first_ts) {
      si.first_ts = t0;
      si.first_node = e->node;
      si.first_slot = e->slot;
    }
    if (!si.has_spans || t1 > si.last_ts) {
      si.last_ts = t1;
      si.last_node = e->node;
      si.last_slot = e->slot;
    }
    si.has_spans = true;
  }

  std::string out;
  out.reserve(events.size() * 128 + 4096);
  Writer w(out);

  // Process/thread naming metadata.
  std::uint64_t max_node = 0;
  for (const Event* e : sorted) {
    if (e->kind == EventKind::kTaskSpan && e->node != kNoId) {
      max_node = std::max(max_node, e->node);
    }
  }
  for (std::uint64_t n = 0; n <= max_node || n < cores.size(); ++n) {
    char label[64];
    if (n < cores.size()) {
      std::snprintf(label, sizeof(label), "node %" PRIu64 " (%zu cores)", n,
                    cores[n]);
    } else {
      std::snprintf(label, sizeof(label), "node %" PRIu64, n);
    }
    meta_name(w, "process_name", n, 0, label);
    if (n >= 64) break;  // defensive bound on malformed logs
  }
  meta_name(w, "process_name", kSchedulerPid, 0, "scheduler pools");

  std::unordered_map<std::string, std::uint64_t> pool_tids;
  std::uint64_t flow_id = 0;

  for (const Event* e : sorted) {
    switch (e->kind) {
      case EventKind::kTaskSpan: {
        auto it = stages.find(e->stage);
        if (it == stages.end()) break;
        const StageInfo& si = it->second;
        w.open_event();
        w.str("ph", "X");
        char name[96];
        std::snprintf(name, sizeof(name), "%s #%" PRIu64,
                      si.name.empty() ? "task" : si.name.c_str(), e->task);
        w.str("name", name);
        w.num("ts", us(si.sim_start_s + e->t_start));
        w.num("dur", us(e->t_end - e->t_start));
        w.u64("pid", e->node);
        w.u64("tid", e->slot == kNoId ? 0 : e->slot);
        std::string args = "{\"job\":";
        append_u64(e->job, args);
        args += ",\"stage\":";
        append_u64(e->stage, args);
        args += ",\"records_in\":";
        append_u64(e->records_in, args);
        args += ",\"records_out\":";
        append_u64(e->records_out, args);
        args += ",\"bytes_in\":";
        append_u64(e->bytes_in, args);
        args += ",\"attempts\":";
        append_u64(e->attempt, args);
        if (e->flags & kFlagRemoteFetch) args += ",\"remote_fetch\":true";
        if (e->flags & kFlagSpilled) args += ",\"spilled\":true";
        args += '}';
        w.raw("args", args);
        w.close_event();
        break;
      }
      case EventKind::kShuffleWrite: {
        // Flow arrow: producer stage's last task -> consumer's first task.
        auto pit = stages.find(e->stage);
        if (pit == stages.end() || !pit->second.has_spans) break;
        const StageInfo& prod = pit->second;
        // Consumer: first start of (job, plan_index) after this write.
        const auto cit = starts_by_plan.find({e->job, e->plan_index});
        if (cit == starts_by_plan.end()) break;
        const StageInfo* cons = nullptr;
        for (const std::uint64_t sid : cit->second) {
          auto sit = stages.find(sid);
          if (sit != stages.end() && sit->second.has_spans &&
              sit->second.sim_start_s >= prod.sim_start_s) {
            cons = &sit->second;
            break;
          }
        }
        if (cons == nullptr) break;
        const std::uint64_t id = ++flow_id;
        std::string args = "{\"bytes\":";
        append_u64(e->bytes, args);
        args += ",\"shuffle\":";
        append_u64(e->shuffle, args);
        args += '}';
        w.open_event();
        w.str("ph", "s");
        w.str("name", "shuffle");
        w.str("cat", "shuffle");
        w.u64("id", id);
        w.num("ts", prod.last_ts);
        w.u64("pid", prod.last_node);
        w.u64("tid", prod.last_slot == kNoId ? 0 : prod.last_slot);
        w.raw("args", args);
        w.close_event();
        w.open_event();
        w.str("ph", "f");
        w.str("bp", "e");
        w.str("name", "shuffle");
        w.str("cat", "shuffle");
        w.u64("id", id);
        w.num("ts", cons->first_ts);
        w.u64("pid", cons->first_node);
        w.u64("tid", cons->first_slot == kNoId ? 0 : cons->first_slot);
        w.close_event();
        break;
      }
      case EventKind::kPoolGrant: {
        auto [it, inserted] =
            pool_tids.try_emplace(e->name, pool_tids.size() + 1);
        if (inserted) {
          meta_name(w, "thread_name", kSchedulerPid, it->second,
                    e->name.empty() ? "pool" : e->name);
        }
        w.open_event();
        w.str("ph", "X");
        char name[96];
        std::snprintf(name, sizeof(name), "grant t%" PRIu64, e->token);
        w.str("name", name);
        w.num("ts", us(e->t_start));
        w.num("dur", us(e->value));
        w.u64("pid", kSchedulerPid);
        w.u64("tid", it->second);
        w.close_event();
        break;
      }
      case EventKind::kStageRetry: {
        std::string args = "{\"reason\":";
        append_json_quoted(e->detail, args);
        args += ",\"attempt\":";
        append_u64(e->attempt, args);
        args += '}';
        instant(w, "stage retry", us(e->sim),
                e->node == kNoId ? 0 : e->node, 0, args);
        break;
      }
      case EventKind::kFetchFailure:
        instant(w, "fetch failure", us(e->sim), e->node == kNoId ? 0 : e->node,
                0, "");
        break;
      case EventKind::kNodeDown:
        instant(w, "node down", us(e->sim), e->node == kNoId ? 0 : e->node, 0,
                "");
        break;
      case EventKind::kNodeUp:
        instant(w, "node up", us(e->sim), e->node == kNoId ? 0 : e->node, 0,
                "");
        break;
      case EventKind::kBlockEvict: {
        std::string args = "{\"bytes\":";
        append_u64(e->bytes, args);
        args += '}';
        instant(w, "block evict", us(e->sim), e->node == kNoId ? 0 : e->node,
                0, args);
        break;
      }
      case EventKind::kShuffleSpill: {
        std::string args = "{\"bytes\":";
        append_u64(e->bytes, args);
        args += '}';
        instant(w, "shuffle spill", us(e->sim), e->node == kNoId ? 0 : e->node,
                0, args);
        break;
      }
      default:
        break;
    }
  }

  w.finish();
  return out;
}

bool write_chrome_trace(const std::vector<Event>& events,
                        const std::string& path, std::string* error) {
  const std::string doc = to_chrome_trace(events);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    if (error) *error = "cannot open for writing: " + path;
    return false;
  }
  const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (n != doc.size()) {
    if (error) *error = "short write: " + path;
    return false;
  }
  return true;
}

}  // namespace chopper::obs
