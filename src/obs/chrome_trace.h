// Chrome trace_event exporter: converts an event log into a JSON file that
// chrome://tracing and Perfetto load directly.
//
// Mapping (DESIGN.md §12): cluster nodes become processes, core slots become
// threads, committed task attempts become complete ("X") slices, shuffle
// writes become flow arrows ("s"/"f") from the producer stage's last task to
// the consumer stage's first task, pool grants become slices on a synthetic
// "scheduler pools" process, and retries / fetch failures / evictions /
// spills / node down-up become instant ("i") markers. Timestamps are
// simulated time in microseconds.
#pragma once

#include <string>
#include <vector>

#include "obs/event.h"

namespace chopper::obs {

/// Render `events` as a Chrome trace JSON document.
std::string to_chrome_trace(const std::vector<Event>& events);

/// Write to_chrome_trace(events) to `path`. Returns false (with the reason
/// in `*error` when non-null) on IO failure.
bool write_chrome_trace(const std::vector<Event>& events,
                        const std::string& path, std::string* error = nullptr);

}  // namespace chopper::obs
