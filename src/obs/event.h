// Structured event log: the event vocabulary (DESIGN.md §12).
//
// Every lifecycle event the engine, service layer, and optimizer emit is one
// flat `Event` record: a kind tag plus a fixed set of typed fields, most of
// which are meaningful only for some kinds (the per-kind schema tables live
// in DESIGN.md §12). Flat-struct-over-variant is deliberate: events are
// serialized to JSONL with defaulted fields omitted, so the wire format stays
// compact while the in-memory type stays trivially copyable bookkeeping
// (plus three small containers) that needs no visitor machinery.
//
// Ordering contract: `seq` is a per-EventLog monotone counter assigned at
// emit time. Sinks may persist events out of seq order (the JSONL sink is
// lock-striped), so readers must sort by seq before interpreting a log;
// `HistoryReader` does this on load. `sim` is simulated cluster time,
// `wall` is host seconds since the EventLog was created.
//
// Versioning: `kSchemaVersion` is written in the log header line. Parsers
// skip unknown keys and unknown kinds, so adding fields or kinds is a
// compatible change (bump the version only on incompatible re-typings).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace chopper::obs {

/// Wire schema version, written in the JSONL header line.
inline constexpr std::uint32_t kSchemaVersion = 1;

/// Sentinel for "field not set" on entity-id fields (job/stage/task/node/...).
inline constexpr std::uint64_t kNoId = ~std::uint64_t{0};

enum class EventKind : std::uint8_t {
  kNone = 0,
  kClusterInfo,      ///< cluster shape at attach time (cores/memory per node)
  kJobSubmit,        ///< a job entered the scheduler
  kJobFinish,        ///< job done (success or abort); carries JobMetrics
  kStageStart,       ///< stage began executing (first attempt)
  kStageRetry,       ///< a stage attempt was abandoned and will be retried
  kStageEnd,         ///< stage committed; carries final StageMetrics scalars
  kTaskSpan,         ///< one committed task attempt (node/slot/time window)
  kShuffleWrite,     ///< map-side shuffle output published
  kShuffleSpill,     ///< shuffle rows spilled to the disk tier
  kShuffleReplay,    ///< lost map outputs recomputed during recovery
  kFetchFailure,     ///< reducer observed a dead map node mid-window
  kNodeDown,         ///< injected node failure fired
  kNodeUp,           ///< failed node rejoined
  kBlockStore,       ///< dataset materialization cached
  kBlockEvict,       ///< cached partition evicted under memory pressure
  kBlockHeal,        ///< lost/evicted cached partitions recomputed
  kPlanDecision,     ///< optimizer chose a scheme for one stage
  kPoolGrant,        ///< SlotLedger granted the cluster to a pool
  kCollectorIngest,  ///< a profiled run was ingested into the WorkloadDb
  kFetchRetry,       ///< transient fetch failures retried in place (backoff)
  kChecksumFail,     ///< block integrity checksum mismatch detected
  kNodeExcluded,     ///< health scoreboard excluded a node from placement
  kNodeReadmitted,   ///< excluded node re-admitted after its backoff window
  kModelRefit,       ///< adaptive controller refit models from live statistics
  kPlanUpdate,       ///< adaptive controller re-chose a pending stage's scheme
  kResume,           ///< job adopted committed stages from a checkpoint WAL
  kCachePlanDecision,  ///< cache planner scored a dataset (cache/pin/drop)
  kCacheHit,         ///< cached-input partitions read resident at a stage
};

/// Canonical short name used on the wire ("task", "stage_end", ...).
const char* to_string(EventKind kind) noexcept;
/// Inverse of to_string; EventKind::kNone when unknown.
EventKind parse_event_kind(const std::string& name) noexcept;

/// Bit flags for Event::flags (meaning depends on kind; see DESIGN.md §12).
enum : std::uint64_t {
  kFlagRemoteFetch = 1u << 0,      ///< task read remote shuffle rows
  kFlagLocalFetch = 1u << 1,       ///< task read node-local shuffle rows
  kFlagSpilled = 1u << 2,          ///< task's map output partially on disk
  kFlagOom = 1u << 3,              ///< task was the OOM victim of an attempt
  kFlagFailed = 1u << 4,           ///< job aborted
  kFlagPassthrough = 1u << 5,      ///< shuffle was co-partitioned passthrough
  kFlagDefaultRun = 1u << 6,       ///< collector ingest of the baseline run
  kFlagFixed = 1u << 7,            ///< plan decision respects a fixed scheme
  kFlagRepartition = 1u << 8,      ///< plan inserts an explicit repartition
  kFlagShuffleMap = 1u << 9,       ///< stage feeds a wide dependency
  kFlagFixedPartitions = 1u << 10, ///< stage partition count was fixed
  kFlagUserFixed = 1u << 11,       ///< ... by the user (vs. structurally)
};

/// One log record. Fields not listed in the kind's schema table keep their
/// defaults and are omitted from the wire format.
struct Event {
  std::uint64_t seq = 0;  ///< total order, stamped by EventLog::emit
  EventKind kind = EventKind::kNone;
  double sim = 0.0;   ///< simulated cluster time (seconds)
  double wall = 0.0;  ///< host seconds since EventLog creation

  // -- entity ids --------------------------------------------------------
  std::uint64_t job = kNoId;
  std::uint64_t stage = kNoId;       ///< global stage id
  std::uint64_t plan_index = kNoId;  ///< stage's index within its job's plan
  std::uint64_t task = kNoId;        ///< task / partition / block index
  std::uint64_t node = kNoId;
  std::uint64_t slot = kNoId;    ///< core slot on `node` (Chrome trace tid)
  std::uint64_t shuffle = kNoId; ///< ShuffleManager id
  std::uint64_t dataset = kNoId; ///< Dataset::id of a cached materialization
  std::uint64_t token = kNoId;   ///< arbiter token (pool grants)
  std::uint64_t signature = 0;   ///< stage structural signature
  std::uint64_t attempt = 0;     ///< attempt ordinal / final attempt count

  std::uint64_t flags = 0;

  // -- time spans (seconds) ---------------------------------------------
  double t_start = 0.0;  ///< span start, relative to the stage window
  double t_end = 0.0;
  double compute_s = 0.0;
  double fetch_s = 0.0;
  double sim_time_s = 0.0;
  double sim_start_s = 0.0;
  double wall_time_s = 0.0;
  double recovery_time_s = 0.0;
  double value = 0.0;   ///< generic scalar: plan cost, grant duration, ...
  double value2 = 0.0;  ///< second scalar: gamma gate, input bytes, ...

  // -- counters ----------------------------------------------------------
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t bytes = 0;  ///< generic byte payload for one-payload kinds
  std::uint64_t shuffle_read_remote = 0;
  std::uint64_t shuffle_read_local = 0;
  std::uint64_t shuffle_read_bytes = 0;
  std::uint64_t shuffle_write_bytes = 0;
  std::uint64_t num_partitions = 0;
  std::uint64_t partitioner = 0;  ///< engine::PartitionerKind as integer
  std::uint64_t anchor_op = 0;    ///< engine::OpKind as integer
  std::uint64_t count = 0;        ///< generic count for one-count kinds
  std::uint64_t oom_count = 0;
  std::uint64_t stage_attempts = 0;
  std::uint64_t recomputed_tasks = 0;
  std::uint64_t recomputed_bytes = 0;
  std::uint64_t lost_bytes = 0;
  std::uint64_t evicted_bytes = 0;
  std::uint64_t spilled_bytes = 0;
  std::uint64_t peak_resident_bytes = 0;
  std::uint64_t fetch_retries = 0;
  std::uint64_t refetched_bytes = 0;
  std::uint64_t checksum_failures = 0;
  std::uint64_t node_exclusions = 0;
  std::uint64_t p_min = 0;
  // Resume telemetry (kResume / kJobFinish). Like wall_time_s, these are
  // provenance, not results: identity digests must exclude them (a resumed
  // run legitimately differs here from the uninterrupted run it reproduces).
  std::uint64_t resumed_stages = 0;    ///< stages adopted from the WAL
  std::uint64_t replayed_events = 0;   ///< WAL events decoded during recovery
  std::uint64_t restored_bytes = 0;    ///< block-file payload bytes restored
  double recovery_wall_s = 0.0;        ///< host seconds spent recovering
  // Cache telemetry (kStageEnd / kJobFinish; DESIGN.md §17).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t recompute_saved_bytes = 0;
  std::uint64_t evictions_lru = 0;
  std::uint64_t evictions_cost = 0;
  std::int64_t group = -1;  ///< optimizer co-partition group (-1: none)

  // -- strings / lists ---------------------------------------------------
  std::string name;    ///< job/stage/pool/workload/dataset label
  std::string detail;  ///< error text, retry reason, partitioner name

  /// Kind-specific list payload: stage parents, job stage ids, cores/node.
  std::vector<std::uint64_t> list;
  /// Second list when one is not enough: oomed P counts, memory/node.
  std::vector<std::uint64_t> list2;

  bool operator==(const Event&) const = default;
};

}  // namespace chopper::obs
