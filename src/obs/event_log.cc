#include "obs/event_log.h"

#include <mutex>

namespace chopper::obs {

void EventLog::attach(std::shared_ptr<TraceSink> sink) {
  if (!sink) return;
  {
    std::unique_lock lock(sinks_mu_);
    sinks_.push_back(std::move(sink));
  }
  enabled_.store(true, std::memory_order_release);
}

void EventLog::detach_all() {
  std::vector<std::shared_ptr<TraceSink>> old;
  {
    std::unique_lock lock(sinks_mu_);
    enabled_.store(false, std::memory_order_release);
    old.swap(sinks_);
  }
  for (auto& s : old) s->flush();
}

namespace {

/// Per-thread re-entrancy state: sinks may themselves emit (the adaptive
/// controller appends kModelRefit/kPlanUpdate while handling a kStageEnd).
/// Without this, a re-entrant emit() would recursively shared-lock
/// `sinks_mu_` — undefined behaviour on std::shared_mutex. Nested emits are
/// queued (seq already stamped, so they order after the triggering event)
/// and drained once the outer fan-out releases the lock.
struct ReentryState {
  const void* active_log = nullptr;
  std::vector<Event> queued;
};

ReentryState& reentry_state() {
  thread_local ReentryState state;
  return state;
}

/// Resets the re-entrancy marker even when a sink throws out of append()
/// (a checkpoint writer's simulated crash propagates through emit); without
/// this, every later emit on the thread would queue forever.
struct ReentryGuard {
  ReentryState& re;
  ~ReentryGuard() {
    re.queued.clear();
    re.active_log = nullptr;
  }
};

}  // namespace

void EventLog::emit(Event e) {
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  e.wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
               .count();
  ReentryState& re = reentry_state();
  if (re.active_log == this) {
    re.queued.push_back(std::move(e));
    return;
  }
  re.active_log = this;
  ReentryGuard guard{re};
  {
    std::shared_lock lock(sinks_mu_);
    for (const auto& s : sinks_) s->append(e);
  }
  // Drain events queued by sinks during the fan-out above (delivering them
  // may queue more; the loop re-checks size each round). Sinks that need a
  // total order must sort by seq — the documented contract — since a queued
  // event reaches them after the event that triggered it.
  while (!re.queued.empty()) {
    const Event next = std::move(re.queued.front());
    re.queued.erase(re.queued.begin());
    std::shared_lock lock(sinks_mu_);
    for (const auto& s : sinks_) s->append(next);
  }
}

void EventLog::flush() {
  std::shared_lock lock(sinks_mu_);
  for (const auto& s : sinks_) s->flush();
}

}  // namespace chopper::obs
