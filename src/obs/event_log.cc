#include "obs/event_log.h"

#include <mutex>

namespace chopper::obs {

void EventLog::attach(std::shared_ptr<TraceSink> sink) {
  if (!sink) return;
  {
    std::unique_lock lock(sinks_mu_);
    sinks_.push_back(std::move(sink));
  }
  enabled_.store(true, std::memory_order_release);
}

void EventLog::detach_all() {
  std::vector<std::shared_ptr<TraceSink>> old;
  {
    std::unique_lock lock(sinks_mu_);
    enabled_.store(false, std::memory_order_release);
    old.swap(sinks_);
  }
  for (auto& s : old) s->flush();
}

void EventLog::emit(Event e) {
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  e.wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
               .count();
  std::shared_lock lock(sinks_mu_);
  for (const auto& s : sinks_) s->append(e);
}

void EventLog::flush() {
  std::shared_lock lock(sinks_mu_);
  for (const auto& s : sinks_) s->flush();
}

}  // namespace chopper::obs
