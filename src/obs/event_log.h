// EventLog: the emit side of the structured event log (DESIGN.md §12).
//
// A single EventLog instance is shared by an Engine and everything hanging
// off it (shuffle/block managers, SlotLedger, optimizer, collector). Emitters
// guard every instrumentation site with `log && log->enabled()` — a relaxed
// atomic load — so with no sink attached the hot paths pay one branch and
// perform no allocation and take no lock (the micro_engine_ops check pins
// this contract).
//
// Emission stamps a monotone `seq` (total order across all threads) and the
// wall clock, then fans the event out to every attached TraceSink under a
// shared (reader) lock; sinks handle their own striping. Sim time is stamped
// by the caller when it knows it (the scheduler does); deep subsystems that
// lack a clock (block manager evictions, shuffle spills) use `sim_hint()`,
// a low-water mark the scheduler refreshes as simulated time advances.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "obs/event.h"

namespace chopper::obs {

/// Destination for emitted events. Implementations must be thread-safe:
/// append() is called concurrently from every engine/service thread.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void append(const Event& e) = 0;
  virtual void flush() {}
};

class EventLog {
 public:
  EventLog() : t0_(std::chrono::steady_clock::now()) {}

  /// Attach a sink; the log becomes enabled. Sinks are flushed and released
  /// by detach_all() / destruction.
  void attach(std::shared_ptr<TraceSink> sink);
  /// Flush and drop every sink; the log becomes disabled.
  void detach_all();

  /// The one check every instrumentation site makes before building an
  /// Event. Relaxed: emitters may race an attach/detach and miss (or catch)
  /// a borderline event; ordering within an enabled window is exact.
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Stamp seq + wall and deliver to all sinks. `e.sim` is the caller's.
  /// Re-entrant on the same thread: a sink may emit() into the log it is
  /// attached to (the adaptive controller does); nested events are queued
  /// and delivered after the outer fan-out completes, carrying later seqs.
  void emit(Event e);

  /// Simulated-time low-water mark for emitters without a clock.
  void set_sim_hint(double sim) noexcept {
    sim_hint_.store(sim, std::memory_order_relaxed);
  }
  double sim_hint() const noexcept {
    return sim_hint_.load(std::memory_order_relaxed);
  }

  /// Events emitted so far (== next seq to be assigned).
  std::uint64_t emitted() const noexcept {
    return seq_.load(std::memory_order_relaxed);
  }

  void flush();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<double> sim_hint_{0.0};
  std::chrono::steady_clock::time_point t0_;

  mutable std::shared_mutex sinks_mu_;
  std::vector<std::shared_ptr<TraceSink>> sinks_;
};

}  // namespace chopper::obs
