#include "obs/history.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <unordered_map>

#include "obs/jsonl.h"

namespace chopper::obs {

engine::TaskMetrics task_from_event(const Event& e) {
  engine::TaskMetrics tm;
  tm.task_index = static_cast<std::size_t>(e.task);
  tm.node = static_cast<std::size_t>(e.node);
  tm.sim_start = e.t_start;
  tm.sim_end = e.t_end;
  tm.compute_s = e.compute_s;
  tm.fetch_s = e.fetch_s;
  tm.attempts = static_cast<std::size_t>(e.attempt);
  tm.fetch_retries = static_cast<std::size_t>(e.fetch_retries);
  tm.records_in = e.records_in;
  tm.records_out = e.records_out;
  tm.bytes_in = e.bytes_in;
  tm.bytes_out = e.bytes_out;
  tm.shuffle_read_remote = e.shuffle_read_remote;
  tm.shuffle_read_local = e.shuffle_read_local;
  return tm;
}

engine::StageMetrics stage_from_event(const Event& e,
                                      std::vector<engine::TaskMetrics> tasks) {
  engine::StageMetrics sm;
  sm.stage_id = static_cast<std::size_t>(e.stage);
  sm.job_id = static_cast<std::size_t>(e.job);
  sm.signature = e.signature;
  sm.name = e.name;
  sm.is_shuffle_map = (e.flags & kFlagShuffleMap) != 0;
  sm.num_partitions = static_cast<std::size_t>(e.num_partitions);
  sm.partitioner = static_cast<engine::PartitionerKind>(e.partitioner);
  sm.anchor_op = static_cast<engine::OpKind>(e.anchor_op);
  sm.parent_signatures = e.list;
  sm.fixed_partitions = (e.flags & kFlagFixedPartitions) != 0;
  sm.user_fixed = (e.flags & kFlagUserFixed) != 0;
  sm.input_records = e.records_in;
  sm.input_bytes = e.bytes_in;
  sm.output_records = e.records_out;
  sm.output_bytes = e.bytes_out;
  sm.shuffle_read_bytes = e.shuffle_read_bytes;
  sm.shuffle_write_bytes = e.shuffle_write_bytes;
  sm.attempt_count = static_cast<std::size_t>(e.attempt);
  sm.recomputed_tasks = static_cast<std::size_t>(e.recomputed_tasks);
  sm.recomputed_bytes = e.recomputed_bytes;
  sm.recovery_time_s = e.recovery_time_s;
  sm.fetch_retries = static_cast<std::size_t>(e.fetch_retries);
  sm.refetched_bytes = e.refetched_bytes;
  sm.checksum_failures = static_cast<std::size_t>(e.checksum_failures);
  sm.node_exclusions = static_cast<std::size_t>(e.node_exclusions);
  sm.oom_count = static_cast<std::size_t>(e.oom_count);
  sm.oomed_partition_counts.assign(e.list2.begin(), e.list2.end());
  sm.evicted_bytes = e.evicted_bytes;
  sm.spilled_bytes = e.spilled_bytes;
  sm.peak_resident_bytes = e.peak_resident_bytes;
  sm.cache_hits = static_cast<std::size_t>(e.cache_hits);
  sm.cache_misses = static_cast<std::size_t>(e.cache_misses);
  sm.recompute_saved_bytes = e.recompute_saved_bytes;
  sm.evictions_lru = static_cast<std::size_t>(e.evictions_lru);
  sm.evictions_cost = static_cast<std::size_t>(e.evictions_cost);
  sm.sim_time_s = e.sim_time_s;
  sm.sim_start_s = e.sim_start_s;
  sm.wall_time_s = e.wall_time_s;
  sm.tasks = std::move(tasks);
  return sm;
}

engine::JobMetrics job_from_event(const Event& e) {
  engine::JobMetrics jm;
  jm.job_id = static_cast<std::size_t>(e.job);
  jm.name = e.name;
  jm.sim_time_s = e.sim_time_s;
  jm.wall_time_s = e.wall_time_s;
  jm.stage_ids.assign(e.list.begin(), e.list.end());
  jm.failed = (e.flags & kFlagFailed) != 0;
  jm.error = e.detail;
  jm.stage_attempts = static_cast<std::size_t>(e.stage_attempts);
  jm.recomputed_tasks = static_cast<std::size_t>(e.recomputed_tasks);
  jm.lost_bytes = e.lost_bytes;
  jm.recomputed_bytes = e.recomputed_bytes;
  jm.recovery_time_s = e.recovery_time_s;
  jm.fetch_retries = static_cast<std::size_t>(e.fetch_retries);
  jm.refetched_bytes = e.refetched_bytes;
  jm.checksum_failures = static_cast<std::size_t>(e.checksum_failures);
  jm.node_exclusions = static_cast<std::size_t>(e.node_exclusions);
  jm.oom_count = static_cast<std::size_t>(e.oom_count);
  jm.evicted_bytes = e.evicted_bytes;
  jm.spilled_bytes = e.spilled_bytes;
  jm.peak_resident_bytes = e.peak_resident_bytes;
  jm.resumed_stages = static_cast<std::size_t>(e.resumed_stages);
  jm.replayed_events = e.replayed_events;
  jm.restored_bytes = e.restored_bytes;
  jm.recovery_wall_s = e.recovery_wall_s;
  jm.cache_hits = static_cast<std::size_t>(e.cache_hits);
  jm.cache_misses = static_cast<std::size_t>(e.cache_misses);
  jm.recompute_saved_bytes = e.recompute_saved_bytes;
  jm.evictions_lru = static_cast<std::size_t>(e.evictions_lru);
  jm.evictions_cost = static_cast<std::size_t>(e.evictions_cost);
  return jm;
}

HistoryReader::HistoryReader(std::vector<Event> events)
    : events_(std::move(events)) {
  std::sort(events_.begin(), events_.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
}

HistoryReader HistoryReader::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("cannot open event log: " + path);
  std::string content;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);

  std::vector<Event> events;
  std::size_t skipped = 0;
  std::size_t skipped_unknown = 0;
  std::size_t torn_tail = 0;
  bool saw_header = false;
  std::size_t pos = 0;
  bool first = true;
  while (pos < content.size()) {
    std::size_t eol = content.find('\n', pos);
    const bool newline_terminated = eol != std::string::npos;
    if (!newline_terminated) eol = content.size();
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (parse_jsonl_header(line)) {
        saw_header = true;
        continue;
      }
    }
    bool unknown_kind = false;
    if (auto e = from_jsonl(line, &unknown_kind)) {
      events.push_back(std::move(*e));
    } else if (unknown_kind) {
      ++skipped_unknown;  // newer log: skip the record, keep the rest
    } else if (!newline_terminated) {
      // A final line with no trailing newline that does not parse is a torn
      // write — the normal tail of a crashed process's log, not corruption.
      ++torn_tail;
    } else {
      ++skipped;
    }
  }
  if (!saw_header) {
    throw std::runtime_error("not a chopper event log (missing header): " +
                             path);
  }
  HistoryReader r(std::move(events));
  r.skipped_ = skipped;
  r.skipped_unknown_ = skipped_unknown;
  r.torn_tail_ = torn_tail;
  return r;
}

void HistoryReader::replay_into(engine::MetricsRegistry& registry) const {
  std::unordered_map<std::uint64_t, std::vector<engine::TaskMetrics>> spans;
  for (const Event& e : events_) {
    switch (e.kind) {
      case EventKind::kTaskSpan:
        spans[e.stage].push_back(task_from_event(e));
        break;
      case EventKind::kStageEnd: {
        auto it = spans.find(e.stage);
        std::vector<engine::TaskMetrics> tasks;
        if (it != spans.end()) {
          tasks = std::move(it->second);
          spans.erase(it);
        }
        registry.add_stage(stage_from_event(e, std::move(tasks)));
        break;
      }
      case EventKind::kJobFinish:
        registry.add_job(job_from_event(e));
        break;
      default:
        break;
    }
  }
}

std::vector<engine::StageMetrics> HistoryReader::stages() const {
  engine::MetricsRegistry reg;
  replay_into(reg);
  return reg.stages();
}

std::vector<engine::JobMetrics> HistoryReader::jobs() const {
  engine::MetricsRegistry reg;
  replay_into(reg);
  return reg.jobs();
}

std::vector<std::size_t> HistoryReader::cluster_cores() const {
  for (const Event& e : events_) {
    if (e.kind == EventKind::kClusterInfo) {
      return std::vector<std::size_t>(e.list.begin(), e.list.end());
    }
  }
  return {};
}

std::vector<std::uint64_t> HistoryReader::cluster_memory() const {
  for (const Event& e : events_) {
    if (e.kind == EventKind::kClusterInfo) return e.list2;
  }
  return {};
}

std::size_t HistoryReader::for_each_ingest(const IngestFn& fn) const {
  engine::MetricsRegistry run;
  std::unordered_map<std::uint64_t, std::vector<engine::TaskMetrics>> spans;
  std::size_t markers = 0;
  for (const Event& e : events_) {
    switch (e.kind) {
      case EventKind::kTaskSpan:
        spans[e.stage].push_back(task_from_event(e));
        break;
      case EventKind::kStageEnd: {
        auto it = spans.find(e.stage);
        std::vector<engine::TaskMetrics> tasks;
        if (it != spans.end()) {
          tasks = std::move(it->second);
          spans.erase(it);
        }
        run.add_stage(stage_from_event(e, std::move(tasks)));
        break;
      }
      case EventKind::kJobFinish:
        run.add_job(job_from_event(e));
        break;
      case EventKind::kCollectorIngest:
        ++markers;
        fn(run, e.name, e.value, (e.flags & kFlagDefaultRun) != 0);
        run.clear();
        break;
      default:
        break;
    }
  }
  return markers;
}

}  // namespace chopper::obs
