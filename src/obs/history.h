// HistoryReader: deterministic replay of an event log (DESIGN.md §12).
//
// A log produced by the engine's instrumentation carries the complete final
// state of every StageMetrics/JobMetrics row (kStageEnd / kJobFinish events
// plus one kTaskSpan per committed task), so a run's metrics can be rebuilt
// offline bit-for-bit — the obs tests assert exact equality against the live
// registry. On top of replay, `for_each_ingest` re-segments a profiling
// sweep's log at its kCollectorIngest markers, letting a CHOPPER WorkloadDb
// be populated from logs instead of live engines.
//
// Scope: replay order is event seq order. For single-job runs (and for any
// log where rows were committed sequentially) that reproduces the live
// registry exactly; concurrent service jobs may interleave row *order*
// differently than the live registry, but every row's contents still match.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/metrics.h"
#include "obs/event.h"

namespace chopper::obs {

class HistoryReader {
 public:
  /// Parse a JSONL log file. Throws std::runtime_error on IO errors or a
  /// missing/unsupported header; malformed lines are skipped and counted.
  static HistoryReader load(const std::string& path);

  /// Take ownership of an already-decoded event stream (e.g. a RingSink
  /// snapshot). Events are sorted by seq.
  explicit HistoryReader(std::vector<Event> events);

  const std::vector<Event>& events() const noexcept { return events_; }
  /// Lines dropped because they were malformed (corruption / truncation).
  std::size_t skipped_lines() const noexcept { return skipped_; }
  /// 1 when the file's final line was torn — no trailing newline and not
  /// parseable. A process killed mid-append leaves exactly this, so it is
  /// the normal state of a post-crash log, counted separately from
  /// skipped_lines() (which implies corruption in the middle of the file).
  std::size_t torn_tail_lines() const noexcept { return torn_tail_; }
  /// Well-formed records dropped because their event kind is unknown to this
  /// binary — a log written by a newer tool. Counted separately from
  /// skipped_lines() so readers can warn about forward-compat skips without
  /// implying the log is corrupt.
  std::size_t skipped_unknown_kinds() const noexcept {
    return skipped_unknown_;
  }

  /// Rebuild every stage/job row in the log, in log order.
  void replay_into(engine::MetricsRegistry& registry) const;
  std::vector<engine::StageMetrics> stages() const;
  std::vector<engine::JobMetrics> jobs() const;

  /// Cores per node from the log's cluster event; empty when absent.
  std::vector<std::size_t> cluster_cores() const;
  /// Executor memory per node (modeled bytes); empty when absent.
  std::vector<std::uint64_t> cluster_memory() const;

  /// Re-run the log's collector-ingest markers: for each one, `fn` receives
  /// a registry holding exactly the rows recorded since the previous marker
  /// plus the workload name, resolved input bytes and is-default flag that
  /// the live StatsCollector saw. Returns the number of markers replayed.
  using IngestFn =
      std::function<void(const engine::MetricsRegistry& run,
                         const std::string& workload, double input_bytes,
                         bool is_default)>;
  std::size_t for_each_ingest(const IngestFn& fn) const;

 private:
  std::vector<Event> events_;
  std::size_t skipped_ = 0;
  std::size_t skipped_unknown_ = 0;
  std::size_t torn_tail_ = 0;
};

/// Decode one kStageEnd event (plus its buffered task spans) back into the
/// StageMetrics row the live run committed.
engine::StageMetrics stage_from_event(const Event& e,
                                      std::vector<engine::TaskMetrics> tasks);
/// Decode one kTaskSpan event into its TaskMetrics row.
engine::TaskMetrics task_from_event(const Event& e);
/// Decode one kJobFinish event into its JobMetrics row.
engine::JobMetrics job_from_event(const Event& e);

}  // namespace chopper::obs
