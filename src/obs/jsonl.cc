#include "obs/jsonl.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace chopper::obs {
namespace {

// -- kind names ---------------------------------------------------------------

struct KindName {
  EventKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {EventKind::kClusterInfo, "cluster"},
    {EventKind::kJobSubmit, "job_submit"},
    {EventKind::kJobFinish, "job_finish"},
    {EventKind::kStageStart, "stage_start"},
    {EventKind::kStageRetry, "stage_retry"},
    {EventKind::kStageEnd, "stage_end"},
    {EventKind::kTaskSpan, "task"},
    {EventKind::kShuffleWrite, "shuffle_write"},
    {EventKind::kShuffleSpill, "shuffle_spill"},
    {EventKind::kShuffleReplay, "shuffle_replay"},
    {EventKind::kFetchFailure, "fetch_failure"},
    {EventKind::kNodeDown, "node_down"},
    {EventKind::kNodeUp, "node_up"},
    {EventKind::kBlockStore, "block_store"},
    {EventKind::kBlockEvict, "block_evict"},
    {EventKind::kBlockHeal, "block_heal"},
    {EventKind::kPlanDecision, "plan"},
    {EventKind::kPoolGrant, "pool_grant"},
    {EventKind::kCollectorIngest, "ingest"},
    {EventKind::kFetchRetry, "fetch_retry"},
    {EventKind::kChecksumFail, "checksum_fail"},
    {EventKind::kNodeExcluded, "node_excluded"},
    {EventKind::kNodeReadmitted, "node_readmit"},
    {EventKind::kModelRefit, "model_refit"},
    {EventKind::kPlanUpdate, "plan_update"},
    {EventKind::kResume, "resume"},
    {EventKind::kCachePlanDecision, "cache_plan"},
    {EventKind::kCacheHit, "cache_hit"},
};

// -- field table --------------------------------------------------------------
//
// One row per Event field. The writer walks the table and emits every field
// whose value differs from a default-constructed Event; the parser looks the
// key up and stores into the matching member. Exactly one member pointer per
// row is non-null.

struct FieldDesc {
  const char* key;
  std::uint64_t Event::* u64 = nullptr;
  std::int64_t Event::* i64 = nullptr;
  double Event::* f64 = nullptr;
  std::string Event::* str = nullptr;
  std::vector<std::uint64_t> Event::* list = nullptr;
};

const FieldDesc kFields[] = {
    {"job", &Event::job},
    {"stage", &Event::stage},
    {"plan_index", &Event::plan_index},
    {"task", &Event::task},
    {"node", &Event::node},
    {"slot", &Event::slot},
    {"shuffle", &Event::shuffle},
    {"dataset", &Event::dataset},
    {"token", &Event::token},
    {"sig", &Event::signature},
    {"attempt", &Event::attempt},
    {"flags", &Event::flags},
    {"t0", nullptr, nullptr, &Event::t_start},
    {"t1", nullptr, nullptr, &Event::t_end},
    {"compute_s", nullptr, nullptr, &Event::compute_s},
    {"fetch_s", nullptr, nullptr, &Event::fetch_s},
    {"sim_time_s", nullptr, nullptr, &Event::sim_time_s},
    {"sim_start_s", nullptr, nullptr, &Event::sim_start_s},
    {"wall_time_s", nullptr, nullptr, &Event::wall_time_s},
    {"recovery_s", nullptr, nullptr, &Event::recovery_time_s},
    {"value", nullptr, nullptr, &Event::value},
    {"value2", nullptr, nullptr, &Event::value2},
    {"rin", &Event::records_in},
    {"rout", &Event::records_out},
    {"bin", &Event::bytes_in},
    {"bout", &Event::bytes_out},
    {"bytes", &Event::bytes},
    {"srr", &Event::shuffle_read_remote},
    {"srl", &Event::shuffle_read_local},
    {"srb", &Event::shuffle_read_bytes},
    {"swb", &Event::shuffle_write_bytes},
    {"P", &Event::num_partitions},
    {"partitioner", &Event::partitioner},
    {"anchor_op", &Event::anchor_op},
    {"count", &Event::count},
    {"oom", &Event::oom_count},
    {"stage_attempts", &Event::stage_attempts},
    {"rtasks", &Event::recomputed_tasks},
    {"rbytes", &Event::recomputed_bytes},
    {"lost", &Event::lost_bytes},
    {"evicted", &Event::evicted_bytes},
    {"spilled", &Event::spilled_bytes},
    {"peak", &Event::peak_resident_bytes},
    {"fretries", &Event::fetch_retries},
    {"refetched", &Event::refetched_bytes},
    {"cksum_fail", &Event::checksum_failures},
    {"excl", &Event::node_exclusions},
    {"p_min", &Event::p_min},
    {"resumed", &Event::resumed_stages},
    {"replayed", &Event::replayed_events},
    {"restored", &Event::restored_bytes},
    {"recovery_wall_s", nullptr, nullptr, &Event::recovery_wall_s},
    {"chits", &Event::cache_hits},
    {"cmisses", &Event::cache_misses},
    {"csaved", &Event::recompute_saved_bytes},
    {"ev_lru", &Event::evictions_lru},
    {"ev_cost", &Event::evictions_cost},
    {"group", nullptr, &Event::group},
    {"name", nullptr, nullptr, nullptr, &Event::name},
    {"detail", nullptr, nullptr, nullptr, &Event::detail},
    {"list", nullptr, nullptr, nullptr, nullptr, &Event::list},
    {"list2", nullptr, nullptr, nullptr, nullptr, &Event::list2},
};

const Event kDefaults{};

// -- writing ------------------------------------------------------------------

void append_u64(std::uint64_t v, std::string& out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_i64(std::int64_t v, std::string& out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void append_f64(double v, std::string& out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

void append_json_quoted(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

namespace {

// -- parsing ------------------------------------------------------------------
//
// Minimal recursive-descent parser for the flat objects we write. Tolerates
// unknown keys by skipping their values (strings, numbers, booleans, null,
// and flat arrays).

struct Cursor {
  const char* p;
  const char* end;

  bool eof() const noexcept { return p >= end; }
  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r' || *p == '\n')) ++p;
  }
  bool eat(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
};

bool parse_string(Cursor& c, std::string* out) {
  if (!c.eat('"')) return false;
  while (!c.eof()) {
    char ch = *c.p++;
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c.eof()) return false;
      char esc = *c.p++;
      switch (esc) {
        case '"': if (out) *out += '"'; break;
        case '\\': if (out) *out += '\\'; break;
        case '/': if (out) *out += '/'; break;
        case 'n': if (out) *out += '\n'; break;
        case 'r': if (out) *out += '\r'; break;
        case 't': if (out) *out += '\t'; break;
        case 'b': if (out) *out += '\b'; break;
        case 'f': if (out) *out += '\f'; break;
        case 'u': {
          if (c.end - c.p < 4) return false;
          char hex[5] = {c.p[0], c.p[1], c.p[2], c.p[3], 0};
          c.p += 4;
          const long code = std::strtol(hex, nullptr, 16);
          // We only ever escape control characters; anything else is kept
          // as-is when it fits one byte.
          if (out && code >= 0 && code < 256) *out += static_cast<char>(code);
          break;
        }
        default:
          return false;
      }
    } else if (out) {
      *out += ch;
    }
  }
  return false;
}

/// Extract the raw token of a JSON number without losing integer precision:
/// the caller converts with strtoull/strtoll/strtod as the field demands.
bool parse_number_token(Cursor& c, std::string* tok) {
  c.skip_ws();
  const char* start = c.p;
  if (c.p < c.end && (*c.p == '-' || *c.p == '+')) ++c.p;
  while (c.p < c.end &&
         (std::isdigit(static_cast<unsigned char>(*c.p)) || *c.p == '.' ||
          *c.p == 'e' || *c.p == 'E' || *c.p == '-' || *c.p == '+')) {
    ++c.p;
  }
  if (c.p == start) return false;
  if (tok) tok->assign(start, c.p);
  return true;
}

bool parse_u64_list(Cursor& c, std::vector<std::uint64_t>* out) {
  if (!c.eat('[')) return false;
  c.skip_ws();
  if (c.eat(']')) return true;
  while (true) {
    std::string tok;
    if (!parse_number_token(c, &tok)) return false;
    if (out) out->push_back(std::strtoull(tok.c_str(), nullptr, 10));
    if (c.eat(']')) return true;
    if (!c.eat(',')) return false;
  }
}

/// Skip any flat JSON value (for unknown keys).
bool skip_value(Cursor& c) {
  c.skip_ws();
  if (c.eof()) return false;
  switch (*c.p) {
    case '"': return parse_string(c, nullptr);
    case '[': return parse_u64_list(c, nullptr);
    case 't': case 'f': case 'n': {
      while (c.p < c.end && std::isalpha(static_cast<unsigned char>(*c.p))) ++c.p;
      return true;
    }
    default: return parse_number_token(c, nullptr);
  }
}

const FieldDesc* find_field(const std::string& key) {
  for (const FieldDesc& f : kFields) {
    if (key == f.key) return &f;
  }
  return nullptr;
}

}  // namespace

const char* to_string(EventKind kind) noexcept {
  for (const KindName& k : kKindNames) {
    if (k.kind == kind) return k.name;
  }
  return "none";
}

EventKind parse_event_kind(const std::string& name) noexcept {
  for (const KindName& k : kKindNames) {
    if (name == k.name) return k.kind;
  }
  return EventKind::kNone;
}

std::string jsonl_header() {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"chopper_event_log\":%u}", kSchemaVersion);
  return buf;
}

bool parse_jsonl_header(const std::string& line) {
  const char* tag = "\"chopper_event_log\"";
  const auto pos = line.find(tag);
  if (pos == std::string::npos) return false;
  const auto colon = line.find(':', pos);
  if (colon == std::string::npos) return false;
  const unsigned long v = std::strtoul(line.c_str() + colon + 1, nullptr, 10);
  return v >= 1 && v <= kSchemaVersion;
}

void append_jsonl(const Event& e, std::string& out) {
  out += "{\"seq\":";
  append_u64(e.seq, out);
  out += ",\"k\":\"";
  out += to_string(e.kind);
  out += "\",\"sim\":";
  append_f64(e.sim, out);
  out += ",\"wall\":";
  append_f64(e.wall, out);
  for (const FieldDesc& f : kFields) {
    if (f.u64) {
      if (e.*f.u64 == kDefaults.*f.u64) continue;
      out += ",\"";
      out += f.key;
      out += "\":";
      append_u64(e.*f.u64, out);
    } else if (f.i64) {
      if (e.*f.i64 == kDefaults.*f.i64) continue;
      out += ",\"";
      out += f.key;
      out += "\":";
      append_i64(e.*f.i64, out);
    } else if (f.f64) {
      if (e.*f.f64 == kDefaults.*f.f64) continue;
      out += ",\"";
      out += f.key;
      out += "\":";
      append_f64(e.*f.f64, out);
    } else if (f.str) {
      if ((e.*f.str).empty()) continue;
      out += ",\"";
      out += f.key;
      out += "\":";
      append_json_quoted(e.*f.str, out);
    } else if (f.list) {
      const auto& v = e.*f.list;
      if (v.empty()) continue;
      out += ",\"";
      out += f.key;
      out += "\":[";
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (i) out += ',';
        append_u64(v[i], out);
      }
      out += ']';
    }
  }
  out += "}\n";
}

std::string to_jsonl(const Event& e) {
  std::string out;
  append_jsonl(e, out);
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

std::optional<Event> from_jsonl(const std::string& line) {
  return from_jsonl(line, nullptr);
}

std::optional<Event> from_jsonl(const std::string& line, bool* unknown_kind) {
  if (unknown_kind != nullptr) *unknown_kind = false;
  Cursor c{line.data(), line.data() + line.size()};
  if (!c.eat('{')) return std::nullopt;
  Event e;
  bool have_kind = false;
  bool saw_kind_key = false;
  c.skip_ws();
  if (c.eat('}')) return std::nullopt;
  while (true) {
    std::string key;
    if (!parse_string(c, &key)) return std::nullopt;
    if (!c.eat(':')) return std::nullopt;
    if (key == "seq") {
      std::string tok;
      if (!parse_number_token(c, &tok)) return std::nullopt;
      e.seq = std::strtoull(tok.c_str(), nullptr, 10);
    } else if (key == "k") {
      std::string name;
      if (!parse_string(c, &name)) return std::nullopt;
      e.kind = parse_event_kind(name);
      have_kind = e.kind != EventKind::kNone;
      saw_kind_key = true;
    } else if (key == "sim") {
      std::string tok;
      if (!parse_number_token(c, &tok)) return std::nullopt;
      e.sim = std::strtod(tok.c_str(), nullptr);
    } else if (key == "wall") {
      std::string tok;
      if (!parse_number_token(c, &tok)) return std::nullopt;
      e.wall = std::strtod(tok.c_str(), nullptr);
    } else if (const FieldDesc* f = find_field(key)) {
      if (f->u64) {
        std::string tok;
        if (!parse_number_token(c, &tok)) return std::nullopt;
        e.*f->u64 = std::strtoull(tok.c_str(), nullptr, 10);
      } else if (f->i64) {
        std::string tok;
        if (!parse_number_token(c, &tok)) return std::nullopt;
        e.*f->i64 = std::strtoll(tok.c_str(), nullptr, 10);
      } else if (f->f64) {
        std::string tok;
        if (!parse_number_token(c, &tok)) return std::nullopt;
        e.*f->f64 = std::strtod(tok.c_str(), nullptr);
      } else if (f->str) {
        if (!parse_string(c, &(e.*f->str))) return std::nullopt;
      } else if (f->list) {
        if (!parse_u64_list(c, &(e.*f->list))) return std::nullopt;
      }
    } else {
      if (!skip_value(c)) return std::nullopt;  // unknown key: tolerate
    }
    if (c.eat('}')) break;
    if (!c.eat(',')) return std::nullopt;
  }
  if (!have_kind) {
    // A well-formed record whose "k" names a kind this binary does not know
    // is a forward-compat skip, not corruption — report it as such so
    // readers can warn accurately (HistoryReader counts the two separately).
    if (saw_kind_key && unknown_kind != nullptr) *unknown_kind = true;
    return std::nullopt;
  }
  return e;
}

}  // namespace chopper::obs
