// JSONL wire format for obs::Event (DESIGN.md §12).
//
// One event per line, one JSON object per event. Fields that still hold
// their default value are omitted; doubles are printed with %.17g so binary64
// values round-trip bit-exactly (the replay-parity tests depend on this).
// The parser is schema-tolerant: unknown keys and unknown kinds are skipped,
// so newer logs remain readable by older tools within a schema version.
#pragma once

#include <optional>
#include <string>

#include "obs/event.h"

namespace chopper::obs {

/// Header line written at the top of every JSONL log file.
std::string jsonl_header();
/// True when `line` is a log header with a schema version we can read.
bool parse_jsonl_header(const std::string& line);

/// Serialize one event as a single JSON object (no trailing newline).
std::string to_jsonl(const Event& e);
/// Append the serialization of `e` (plus '\n') to `out` — the allocation-free
/// path the JSONL sink uses for its stripe buffers.
void append_jsonl(const Event& e, std::string& out);

/// Parse one JSONL line. Returns nullopt on malformed JSON or an unknown
/// event kind (tolerated: the caller skips the line).
std::optional<Event> from_jsonl(const std::string& line);

/// As above, but distinguishes the two skip reasons: `*unknown_kind` is set
/// true when the line was well-formed JSON whose "k" names an event kind
/// this binary does not know (a log written by a newer tool), and false for
/// genuinely malformed input. Old readers stay usable against newer logs.
std::optional<Event> from_jsonl(const std::string& line, bool* unknown_kind);

/// Append `s` to `out` as a quoted, escaped JSON string (shared by the
/// Chrome trace exporter).
void append_json_quoted(const std::string& s, std::string& out);

}  // namespace chopper::obs
