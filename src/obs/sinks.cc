#include "obs/sinks.h"

#include <algorithm>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "obs/jsonl.h"

namespace chopper::obs {

namespace {
constexpr std::size_t kDrainThreshold = 64 * 1024;  // bytes per stripe buffer
}

// -- JsonlFileSink ------------------------------------------------------------

JsonlFileSink::JsonlFileSink(const std::string& path, std::size_t stripes,
                             bool sync)
    : path_(path), sync_(sync) {
  if (stripes == 0) stripes = 1;
  stripes_.reserve(stripes);
  for (std::size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (!file_) {
    throw std::runtime_error("cannot open event log for writing: " + path);
  }
  const std::string header = jsonl_header() + "\n";
  std::fwrite(header.data(), 1, header.size(), file_);
}

JsonlFileSink::~JsonlFileSink() {
  flush();
  std::lock_guard lock(file_mu_);
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void JsonlFileSink::append(const Event& e) {
  const std::size_t idx = e.seq % stripes_.size();
  const bool barrier =
      e.kind == EventKind::kStageEnd || e.kind == EventKind::kJobFinish;
  if (barrier) {
    // Drain the other stripes before the boundary record: once the boundary
    // line is on disk, every event emitted before it must be too.
    for (std::size_t i = 0; i < stripes_.size(); ++i) {
      if (i == idx) continue;
      Stripe& other = *stripes_[i];
      std::lock_guard lock(other.mu);
      drain(other);
    }
  }
  Stripe& s = *stripes_[idx];
  {
    std::lock_guard lock(s.mu);
    append_jsonl(e, s.buf);
    if (barrier || s.buf.size() >= kDrainThreshold) drain(s);
  }
  if (barrier) barrier_flush();
}

void JsonlFileSink::barrier_flush() {
  std::lock_guard lock(file_mu_);
  if (!file_) return;
  std::fflush(file_);
#if defined(__unix__) || defined(__APPLE__)
  if (sync_) ::fsync(::fileno(file_));
#endif
}

void JsonlFileSink::drain(Stripe& s) {
  std::lock_guard lock(file_mu_);
  if (file_ && !s.buf.empty()) {
    std::fwrite(s.buf.data(), 1, s.buf.size(), file_);
  }
  s.buf.clear();
}

void JsonlFileSink::flush() {
  for (auto& sp : stripes_) {
    std::lock_guard lock(sp->mu);
    drain(*sp);
  }
  std::lock_guard lock(file_mu_);
  if (file_) std::fflush(file_);
}

// -- RingSink -----------------------------------------------------------------

RingSink::RingSink(std::size_t capacity, std::size_t stripes)
    : capacity_(capacity ? capacity : 1), slots_(capacity_) {
  if (stripes == 0) stripes = 1;
  stripes = std::min(stripes, capacity_);
  stripes_.reserve(stripes);
  for (std::size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<std::mutex>());
  }
}

void RingSink::append(const Event& e) {
  const std::size_t slot = e.seq % capacity_;
  std::lock_guard lock(*stripes_[slot % stripes_.size()]);
  slots_[slot].event = e;
  slots_[slot].used = true;
  appended_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Event> RingSink::snapshot() const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(stripes_.size());
  for (const auto& m : stripes_) locks.emplace_back(*m);
  std::vector<Event> out;
  out.reserve(capacity_);
  for (const Slot& s : slots_) {
    if (s.used) out.push_back(s.event);
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

std::uint64_t RingSink::total() const noexcept {
  return appended_.load(std::memory_order_relaxed);
}

std::uint64_t RingSink::dropped() const {
  std::uint64_t retained = 0;
  {
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(stripes_.size());
    for (const auto& m : stripes_) locks.emplace_back(*m);
    for (const Slot& s : slots_) retained += s.used ? 1 : 0;
  }
  const std::uint64_t tot = total();
  return tot > retained ? tot - retained : 0;
}

}  // namespace chopper::obs
