// Concrete TraceSinks: a JSONL file writer and a bounded in-memory ring.
//
// Both are lock-striped on seq so concurrent emitters from different engine
// threads rarely contend: an appender takes only its stripe's mutex; the
// file sink additionally takes a file mutex when a stripe buffer fills and
// is drained to disk (amortized over ~64 KiB of events).
//
// Consequence: the JSONL file is NOT in seq order — readers must sort (see
// event.h's ordering contract; HistoryReader::load does this).
#pragma once

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/event_log.h"

namespace chopper::obs {

/// Appends events to a JSONL file (header line + one event object per line).
///
/// Durability barrier: stage/job boundary events (kStageEnd, kJobFinish)
/// drain every stripe buffer — earlier events first, then the boundary
/// record — and fflush, so a crashed process never leaves a log whose last
/// committed stage is missing its task spans. With `sync` the barrier also
/// fsyncs, extending the guarantee from process death to host death.
class JsonlFileSink : public TraceSink {
 public:
  /// Throws std::runtime_error when the file cannot be opened.
  explicit JsonlFileSink(const std::string& path, std::size_t stripes = 8,
                         bool sync = false);
  ~JsonlFileSink() override;

  JsonlFileSink(const JsonlFileSink&) = delete;
  JsonlFileSink& operator=(const JsonlFileSink&) = delete;

  void append(const Event& e) override;
  void flush() override;

  const std::string& path() const noexcept { return path_; }

 private:
  struct Stripe {
    std::mutex mu;
    std::string buf;
  };

  void drain(Stripe& s);  // caller holds s.mu
  void barrier_flush();   // fflush (+fsync when sync_); takes file_mu_

  std::string path_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::mutex file_mu_;
  std::FILE* file_ = nullptr;
  bool sync_ = false;
};

/// Keeps the most recent `capacity` events in memory ("flight recorder").
/// Overflow overwrites the oldest slot; dropped() counts the overwrites.
class RingSink : public TraceSink {
 public:
  explicit RingSink(std::size_t capacity, std::size_t stripes = 8);

  void append(const Event& e) override;

  /// Retained events, sorted by seq (oldest surviving first).
  std::vector<Event> snapshot() const;
  /// Total events ever appended.
  std::uint64_t total() const noexcept;
  /// Events overwritten by newer ones (total - retained).
  std::uint64_t dropped() const;

 private:
  struct Slot {
    Event event;
    bool used = false;
  };

  std::size_t capacity_;
  std::vector<Slot> slots_;
  mutable std::vector<std::unique_ptr<std::mutex>> stripes_;
  std::atomic<std::uint64_t> appended_{0};
};

}  // namespace chopper::obs
