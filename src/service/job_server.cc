#include "service/job_server.h"

#include <algorithm>
#include <utility>

#include "adapt/adaptive.h"

namespace chopper::service {

const char* to_string(JobState s) noexcept {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kSucceeded:
      return "succeeded";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

struct JobHandle::Rec {
  // Immutable after submit().
  engine::DatasetPtr ds;
  SubmitOptions opts;
  std::size_t seq = 0;

  std::atomic<bool> cancel_flag{false};

  mutable std::mutex mu;
  std::condition_variable cv;
  JobState state = JobState::kQueued;
  std::string error;
  engine::JobResult result;
  JobStats stats;

  bool terminal_locked() const {
    return state == JobState::kSucceeded || state == JobState::kFailed ||
           state == JobState::kCancelled;
  }

  void finalize(JobState s, std::string err) {
    std::lock_guard lock(mu);
    state = s;
    error = std::move(err);
    cv.notify_all();
  }
};

JobState JobHandle::status() const {
  std::lock_guard lock(rec_->mu);
  return rec_->state;
}

void JobHandle::cancel() {
  rec_->cancel_flag.store(true, std::memory_order_relaxed);
  std::lock_guard lock(rec_->mu);
  if (rec_->state == JobState::kQueued) {
    // Never admitted: finalize here; the admission loop skips the corpse.
    rec_->state = JobState::kCancelled;
    rec_->error = "job '" + rec_->opts.name + "' cancelled while queued";
    rec_->cv.notify_all();
  }
  // Running jobs observe cancel_flag at their next stage boundary.
}

engine::JobResult JobHandle::wait() {
  std::unique_lock lock(rec_->mu);
  rec_->cv.wait(lock, [this] { return rec_->terminal_locked(); });
  if (rec_->state == JobState::kSucceeded) return rec_->result;
  throw engine::JobAbortedError(rec_->error);
}

std::string JobHandle::error() const {
  std::lock_guard lock(rec_->mu);
  return rec_->error;
}

JobStats JobHandle::stats() const {
  std::lock_guard lock(rec_->mu);
  return rec_->stats;
}

JobServer::JobServer(engine::Engine& engine, JobServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      ledger_(options_.mode, options_.pools) {
  if (engine_.options().failure_schedule.enabled()) {
    throw std::invalid_argument(
        "JobServer: engines with a node-failure schedule cannot serve "
        "concurrent jobs (node-death state is engine-global)");
  }
  if (engine_.options().flaky_schedule.enabled() ||
      engine_.options().corruption_schedule.enabled()) {
    throw std::invalid_argument(
        "JobServer: engines with a flaky-fetch or corruption schedule cannot "
        "serve concurrent jobs (injection state is engine-global)");
  }
  if (options_.max_concurrent_jobs == 0) {
    throw std::invalid_argument("JobServer: max_concurrent_jobs must be > 0");
  }
  // Pool grants flow to whatever event log the engine carries (set it on the
  // engine before constructing the server).
  ledger_.set_event_log(engine_.event_log());
}

JobServer::~JobServer() {
  std::vector<std::shared_ptr<JobHandle::Rec>> doomed;
  {
    std::lock_guard lock(mu_);
    shutting_down_ = true;
    doomed.assign(queue_.begin(), queue_.end());
    queue_.clear();
  }
  for (const auto& rec : doomed) {
    std::lock_guard lock(rec->mu);
    if (rec->state == JobState::kQueued) {
      rec->state = JobState::kCancelled;
      rec->error = "job '" + rec->opts.name + "' cancelled: server shut down";
      rec->cv.notify_all();
    }
  }
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

JobHandle JobServer::submit(const engine::DatasetPtr& ds, SubmitOptions opts) {
  auto rec = std::make_shared<JobHandle::Rec>();
  rec->ds = ds;
  rec->opts = std::move(opts);

  // Register the adaptive gate before the job can emit its first event, so
  // the controller's kJobSubmit resolution sees the per-job choice.
  {
    std::lock_guard plock(plan_mu_);
    if (adaptive_ != nullptr) {
      adaptive_->set_job_enabled(rec->opts.name, rec->opts.adapt);
    }
  }

  std::lock_guard lock(mu_);
  if (shutting_down_) {
    throw std::runtime_error("JobServer: submit after shutdown");
  }
  rec->seq = next_seq_++;
  rec->stats.submit_vtime = ledger_.now();

  if (running_ < options_.max_concurrent_jobs) {
    // Admit directly: register in the ledger *before* this function returns
    // so the scheduling order matches the submission order, not thread
    // startup timing.
    const std::size_t token =
        ledger_.register_job(rec->opts.pool, rec->opts.priority, rec->seq);
    {
      std::lock_guard rlock(rec->mu);
      rec->state = JobState::kRunning;
      rec->stats.admit_vtime = ledger_.now();
    }
    ++running_;
    workers_.emplace_back(&JobServer::run_admitted, this, rec, token);
    return JobHandle(rec);
  }

  if (queue_.size() >= options_.max_queued_jobs) {
    throw QueueFullError("JobServer: queue full (" +
                         std::to_string(running_) + " running, " +
                         std::to_string(queue_.size()) + " queued)");
  }
  // Insert keeping (priority desc, seq asc) order so admission just pops
  // the front.
  const auto pos = std::find_if(
      queue_.begin(), queue_.end(),
      [&rec](const std::shared_ptr<JobHandle::Rec>& q) {
        return q->opts.priority < rec->opts.priority;
      });
  queue_.insert(pos, rec);
  return JobHandle(rec);
}

JobHandle JobServer::admit_completed(const std::string& name,
                                     engine::JobResult result) {
  auto rec = std::make_shared<JobHandle::Rec>();
  rec->opts.name = name;
  std::lock_guard lock(mu_);
  if (shutting_down_) {
    throw std::runtime_error("JobServer: admit_completed after shutdown");
  }
  rec->seq = next_seq_++;
  const double now = ledger_.now();
  {
    std::lock_guard rlock(rec->mu);
    // All three points coincide: the job consumed no virtual time in THIS
    // process (its service happened before the restart being resumed from).
    rec->stats.submit_vtime = now;
    rec->stats.admit_vtime = now;
    rec->stats.finish_vtime = now;
    rec->result = std::move(result);
    rec->result.job_id = rec->seq;
    rec->state = JobState::kSucceeded;
    rec->cv.notify_all();
  }
  return JobHandle(rec);
}

void JobServer::run_admitted(std::shared_ptr<JobHandle::Rec> rec,
                             std::size_t token) {
  for (;;) {
    double admit_vtime = 0.0;
    {
      std::lock_guard rlock(rec->mu);
      admit_vtime = rec->stats.admit_vtime;
    }

    engine::JobControl ctl;
    ctl.arbiter = &ledger_;
    ctl.token = token;
    ctl.start_time = admit_vtime;
    if (rec->opts.deadline_s >= 0.0) {
      ctl.deadline = admit_vtime + rec->opts.deadline_s;
    }
    ctl.cancel = &rec->cancel_flag;
    ctl.job_id = rec->seq;

    JobState final_state = JobState::kSucceeded;
    std::string error;
    engine::JobResult result;
    try {
      result = engine_.run_controlled(rec->ds, rec->opts.collect,
                                      rec->opts.name, &ctl);
    } catch (const engine::JobAbortedError& e) {
      final_state = rec->cancel_flag.load(std::memory_order_relaxed)
                        ? JobState::kCancelled
                        : JobState::kFailed;
      error = e.what();
    } catch (const std::exception& e) {
      final_state = JobState::kFailed;
      error = e.what();
    }

    // Executed virtual time: read before retire() erases the record.
    const double service_s = ledger_.job_granted_s(token);

    // Finish frontier. Success: final virtual clock. Abort: end of the last
    // window this job was granted (its clock when the abort was detected).
    double finish_vtime = admit_vtime;
    if (final_state == JobState::kSucceeded) {
      finish_vtime = admit_vtime + result.sim_time_s;
    } else {
      for (const GrantEvent& g : ledger_.grant_log()) {
        if (g.token == token) finish_vtime = g.start + g.duration;
      }
    }

    // Publish the outcome before retiring: wait_all() may return the moment
    // running_ drops, and clients must see final stats by then.
    {
      std::lock_guard rlock(rec->mu);
      rec->result = std::move(result);
      rec->stats.service_s = service_s;
      rec->stats.finish_vtime = finish_vtime;
      rec->state = final_state;
      rec->error = std::move(error);
      rec->cv.notify_all();
    }

    // Retire from the ledger and, in the same ledger transaction, admit the
    // next queued job — no grant can slip between the two, which keeps the
    // virtual schedule a pure function of submission order.
    std::shared_ptr<JobHandle::Rec> next;
    std::size_t next_token = 0;
    {
      std::lock_guard lock(mu_);
      while (!queue_.empty() && !shutting_down_) {
        auto cand = queue_.front();
        queue_.pop_front();
        std::lock_guard rlock(cand->mu);
        if (cand->state == JobState::kQueued) {
          cand->state = JobState::kRunning;
          next = std::move(cand);
          break;
        }
        // Cancelled while queued: already finalized, just drop it.
      }
      if (next != nullptr) {
        const auto t = ledger_.retire(
            token, SlotLedger::AdmitSpec{next->opts.pool, next->opts.priority,
                                         next->seq});
        next_token = *t;
        std::lock_guard rlock(next->mu);
        next->stats.admit_vtime = ledger_.now();
      } else {
        ledger_.retire(token, std::nullopt);
        --running_;
        idle_cv_.notify_all();
      }
    }

    if (next == nullptr) return;
    rec = std::move(next);
    token = next_token;
  }
}

void JobServer::wait_all() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return running_ == 0 && queue_.empty(); });
}

void JobServer::set_adaptive(
    std::shared_ptr<adapt::AdaptiveController> controller) {
  std::lock_guard lock(plan_mu_);
  adaptive_ = std::move(controller);
  if (adaptive_ != nullptr) {
    // Serving is opt-in per job: unknown jobs must not steer re-planning.
    adaptive_->set_default_enabled(false);
    plan_cache_ = adaptive_->adapted_config();
    plan_cache_epoch_ = adaptive_->refit_epoch();
  } else {
    plan_cache_ = common::KvConfig{};
    plan_cache_epoch_ = ~std::uint64_t{0};
  }
}

common::KvConfig JobServer::current_plan() const {
  std::lock_guard lock(plan_mu_);
  if (adaptive_ != nullptr) {
    const std::uint64_t epoch = adaptive_->refit_epoch();
    if (epoch != plan_cache_epoch_) {
      plan_cache_ = adaptive_->adapted_config();
      plan_cache_epoch_ = epoch;
    }
  }
  return plan_cache_;
}

}  // namespace chopper::service
