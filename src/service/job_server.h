// JobServer: multi-tenant front end over one shared Engine.
//
// Clients submit jobs concurrently; the server admits up to
// `max_concurrent_jobs` into execution (each on its own worker thread,
// running Engine::run_controlled against a per-job virtual clock) and holds
// up to `max_queued_jobs` more in an admission queue ordered by
// (priority desc, submission seq asc). A submit() beyond both bounds throws
// QueueFullError — bounded backpressure, never silent unbounded growth.
//
// Admitted jobs contend for the simulated cluster through a SlotLedger
// (see slot_ledger.h): every stage barrier asks the ledger for an exclusive
// window of global virtual time, scheduled FIFO or FAIR across pools. A job
// admitted alone receives back-to-back windows, so its JobResult::sim_time_s
// equals a direct Engine::count()/collect() run of the same dataset on a
// fresh engine — the solo-parity guarantee the tests pin down.
//
// Clock model: JobStats reports submission/admission/finish points on the
// ledger's global virtual axis. service_s is the job's executed cluster
// time (sum of its granted windows + untimed local work); latency_s is
// finish - submit, i.e. turnaround including queueing — the quantity the
// FAIR scheduler bounds for small jobs. For service jobs, the engine's
// JobResult.sim_time_s is finish_vtime - admit_vtime (turnaround since
// admission), which reduces to the classic makespan sum when solo.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/kv_config.h"
#include "engine/engine.h"
#include "service/slot_ledger.h"

namespace chopper::adapt {
class AdaptiveController;
}

namespace chopper::service {

enum class JobState { kQueued, kRunning, kSucceeded, kFailed, kCancelled };

const char* to_string(JobState s) noexcept;

/// submit() refused: both the running set and the admission queue are full.
class QueueFullError : public std::runtime_error {
 public:
  explicit QueueFullError(const std::string& what)
      : std::runtime_error(what) {}
};

struct SubmitOptions {
  std::string name = "job";
  std::string pool = "default";  ///< FAIR scheduler pool
  int priority = 0;              ///< higher runs first within FIFO order
  /// Virtual seconds after *admission* before the job is aborted
  /// (deadline/timeout cancellation); <0 = none.
  double deadline_s = -1.0;
  bool collect = false;  ///< collect records instead of counting
  /// Feed this job's stage statistics into the attached AdaptiveController
  /// (no-op when none is attached). Opt-in per job: a server mixes tenants,
  /// and only the opted-in tenant's stages may steer re-planning.
  bool adapt = false;
};

struct JobServerOptions {
  SchedulingMode mode = SchedulingMode::kFifo;
  std::size_t max_concurrent_jobs = 4;
  std::size_t max_queued_jobs = 64;
  std::map<std::string, PoolConfig> pools;
};

/// Virtual-time accounting for one job (all on the ledger's global axis).
struct JobStats {
  double submit_vtime = 0.0;  ///< ledger now() at submit()
  double admit_vtime = 0.0;   ///< ledger now() when admitted to run
  double finish_vtime = 0.0;  ///< job's virtual clock at completion
  double service_s = 0.0;     ///< virtual time actually executed
  /// Turnaround: queueing + service, the client-visible latency.
  double latency_s() const noexcept { return finish_vtime - submit_vtime; }
};

class JobServer;

/// Client-side handle for one submitted job.
class JobHandle {
 public:
  JobState status() const;
  /// Request cancellation (honored at the next stage boundary; a queued job
  /// is cancelled immediately and never admitted).
  void cancel();
  /// Block until the job finishes. Returns the result on success; rethrows
  /// engine::JobAbortedError on failure/cancellation/deadline.
  engine::JobResult wait();
  /// Empty until the job failed or was cancelled.
  std::string error() const;
  JobStats stats() const;

 private:
  friend class JobServer;
  struct Rec;
  explicit JobHandle(std::shared_ptr<Rec> rec) : rec_(std::move(rec)) {}
  std::shared_ptr<Rec> rec_;
};

class JobServer {
 public:
  /// The engine must not use a failure schedule (node-death state is
  /// engine-global, incompatible with concurrent jobs) — throws
  /// std::invalid_argument if it does.
  JobServer(engine::Engine& engine, JobServerOptions options = {});

  /// Cancels everything still queued, waits for running jobs to finish.
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Submit a job; returns immediately. Throws QueueFullError when both the
  /// running set and the admission queue are at capacity.
  JobHandle submit(const engine::DatasetPtr& ds, SubmitOptions opts = {});

  /// Checkpoint-resume re-admission (DESIGN.md §16): record a job that
  /// already finished in a previous process as a synthetic succeeded handle.
  /// Nothing executes and the slot ledger is untouched; `result` is the
  /// caller's reconstruction of the original outcome (e.g. decoded from the
  /// WAL's durable kJobFinish row). Consumes one submission sequence number,
  /// so a driver replaying its original job mix in order — admit_completed
  /// for finished jobs, submit for the rest — keeps every job's engine id
  /// stable across the restart.
  JobHandle admit_completed(const std::string& name, engine::JobResult result);

  /// Block until every job submitted so far has left the system.
  void wait_all();

  /// Attach an in-flight adaptive controller (src/adapt). The server flips
  /// the controller's default gate to disabled and registers every submitted
  /// job's name with its SubmitOptions::adapt choice, so only opted-in jobs
  /// feed re-planning. The caller still attaches the controller to the
  /// engine's event log (that is where the statistics flow from).
  void set_adaptive(std::shared_ptr<adapt::AdaptiveController> controller);

  /// Snapshot of the adaptive controller's currently deployed plan. Cached;
  /// re-read only when the controller's refit epoch advanced (the plan-cache
  /// invalidation hook the adaptation loop requires). Empty when no
  /// controller is attached.
  common::KvConfig current_plan() const;

  /// Global virtual frontier of the shared ledger.
  double virtual_now() const { return ledger_.now(); }

  std::map<std::string, SlotLedger::PoolStats> pool_stats() const {
    return ledger_.pool_stats();
  }
  /// Normalized per-pool storage shares for the cache planner (DESIGN.md
  /// §17): SlotLedger::pool_share_fractions over the configured pools.
  std::map<std::string, double> pool_share_fractions() const {
    return ledger_.pool_share_fractions();
  }
  std::vector<GrantEvent> grant_log() const { return ledger_.grant_log(); }

 private:
  void run_admitted(std::shared_ptr<JobHandle::Rec> rec, std::size_t token);

  engine::Engine& engine_;
  const JobServerOptions options_;
  SlotLedger ledger_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::size_t next_seq_ = 0;
  std::size_t running_ = 0;
  std::deque<std::shared_ptr<JobHandle::Rec>> queue_;  ///< admission queue
  std::vector<std::thread> workers_;
  bool shutting_down_ = false;

  /// Adaptive re-planning hookup (null: serving is plan-static).
  mutable std::mutex plan_mu_;
  std::shared_ptr<adapt::AdaptiveController> adaptive_;
  mutable common::KvConfig plan_cache_;
  mutable std::uint64_t plan_cache_epoch_ = ~std::uint64_t{0};
};

}  // namespace chopper::service
