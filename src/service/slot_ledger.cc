#include "service/slot_ledger.h"

#include <algorithm>
#include <stdexcept>

#include "obs/event_log.h"

namespace chopper::service {

const char* to_string(SchedulingMode mode) noexcept {
  return mode == SchedulingMode::kFifo ? "fifo" : "fair";
}

SlotLedger::SlotLedger(SchedulingMode mode,
                       std::map<std::string, PoolConfig> pools)
    : mode_(mode), pool_config_(std::move(pools)) {
  pool_config_.try_emplace("default");
  for (const auto& [name, cfg] : pool_config_) {
    if (cfg.weight <= 0.0) {
      throw std::invalid_argument("SlotLedger: pool '" + name +
                                  "' must have positive weight");
    }
    pool_granted_.emplace(name, 0.0);
  }
}

std::size_t SlotLedger::register_job(const std::string& pool, int priority,
                                     std::size_t seq) {
  std::lock_guard lock(mu_);
  pool_config_.try_emplace(pool);
  pool_granted_.try_emplace(pool, 0.0);
  const std::size_t token = next_token_++;
  JobRec rec;
  rec.pool = pool;
  rec.priority = priority;
  rec.seq = seq;
  jobs_.emplace(token, std::move(rec));
  // The new job counts as "executing" until its first acquire(), so no
  // grant can be issued before its demand is on the table.
  return token;
}

std::optional<std::size_t> SlotLedger::retire(
    std::size_t token, const std::optional<AdmitSpec>& admit) {
  std::lock_guard lock(mu_);
  jobs_.erase(token);
  std::optional<std::size_t> next;
  if (admit) {
    pool_config_.try_emplace(admit->pool);
    pool_granted_.try_emplace(admit->pool, 0.0);
    const std::size_t t = next_token_++;
    JobRec rec;
    rec.pool = admit->pool;
    rec.priority = admit->priority;
    rec.seq = admit->seq;
    jobs_.emplace(t, std::move(rec));
    next = t;
  }
  // The retirement may have completed the "everyone is parked" condition
  // for the remaining jobs. (A just-admitted replacement blocks grants
  // again until it makes its first request — deliberately, so admission
  // order relative to grants never depends on host thread timing.)
  maybe_grant();
  return next;
}

double SlotLedger::acquire(std::size_t token, double earliest,
                           double duration) {
  std::unique_lock lock(mu_);
  const auto it = jobs_.find(token);
  if (it == jobs_.end()) {
    throw std::logic_error("SlotLedger::acquire: unknown token");
  }
  JobRec& j = it->second;
  j.waiting = true;
  j.granted = false;
  j.earliest = earliest;
  j.duration = duration;
  maybe_grant();
  cv_.wait(lock, [&j] { return j.granted; });
  j.granted = false;
  return j.grant_start;
}

void SlotLedger::maybe_grant() {
  if (jobs_.empty()) return;
  for (const auto& [t, j] : jobs_) {
    if (!j.waiting) return;  // someone is still executing: demand unknown
  }
  const std::size_t chosen = pick();
  JobRec& j = jobs_.at(chosen);
  j.waiting = false;
  j.granted = true;
  j.grant_start = std::max(now_, j.earliest);
  now_ = j.grant_start + j.duration;
  j.granted_s += j.duration;
  pool_granted_[j.pool] += j.duration;
  log_.push_back({chosen, j.pool, j.grant_start, j.duration});
  if (event_log_ != nullptr && event_log_->enabled()) {
    obs::Event e;
    e.kind = obs::EventKind::kPoolGrant;
    e.sim = j.grant_start;
    e.token = chosen;
    e.name = j.pool;
    e.t_start = j.grant_start;
    e.value = j.duration;
    event_log_->emit(std::move(e));
  }
  cv_.notify_all();
}

void SlotLedger::set_event_log(obs::EventLog* log) noexcept {
  std::lock_guard lock(mu_);
  event_log_ = log;
}

std::size_t SlotLedger::pick() const {
  // Within-pool (and whole-queue, under FIFO) order: highest priority
  // first, then submission order.
  const auto fifo_before = [](const JobRec& a, const JobRec& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq < b.seq;
  };

  if (mode_ == SchedulingMode::kFifo) {
    const std::pair<const std::size_t, JobRec>* best = nullptr;
    for (const auto& entry : jobs_) {
      if (best == nullptr || fifo_before(entry.second, best->second)) {
        best = &entry;
      }
    }
    return best->first;
  }

  // FAIR: pick the pool first, then FIFO within it. Pools under their
  // min_share fraction of all granted time are served before weighted
  // sharing kicks in (Spark's FairSchedulingAlgorithm).
  double total_granted = 0.0;
  for (const auto& [pool, granted] : pool_granted_) total_granted += granted;

  const std::string* best_pool = nullptr;
  bool best_needy = false;
  double best_key = 0.0;
  for (const auto& [token, j] : jobs_) {
    const PoolConfig& cfg = pool_config_.at(j.pool);
    const double granted = pool_granted_.at(j.pool);
    const bool needy =
        cfg.min_share > 0.0 && granted < cfg.min_share * total_granted;
    const double key =
        needy ? granted / cfg.min_share : granted / cfg.weight;
    const bool better =
        best_pool == nullptr ||
        (needy != best_needy ? needy : key < best_key) ||
        (needy == best_needy && key == best_key && j.pool < *best_pool);
    if (better) {
      best_pool = &j.pool;
      best_needy = needy;
      best_key = key;
    }
  }

  const std::pair<const std::size_t, JobRec>* best = nullptr;
  for (const auto& entry : jobs_) {
    if (entry.second.pool != *best_pool) continue;
    if (best == nullptr || fifo_before(entry.second, best->second)) {
      best = &entry;
    }
  }
  return best->first;
}

double SlotLedger::now() const {
  std::lock_guard lock(mu_);
  return now_;
}

std::map<std::string, SlotLedger::PoolStats> SlotLedger::pool_stats() const {
  std::lock_guard lock(mu_);
  std::map<std::string, PoolStats> out;
  for (const auto& [name, cfg] : pool_config_) {
    out[name] = {cfg.weight, cfg.min_share, pool_granted_.at(name)};
  }
  return out;
}

std::map<std::string, double> SlotLedger::pool_share_fractions() const {
  std::lock_guard lock(mu_);
  std::map<std::string, double> out;
  double total_weight = 0.0;
  for (const auto& [name, cfg] : pool_config_) {
    total_weight += std::max(0.0, cfg.weight);
  }
  if (total_weight <= 0.0) return out;
  for (const auto& [name, cfg] : pool_config_) {
    const double weighted = std::max(0.0, cfg.weight) / total_weight;
    out[name] = std::max(weighted, std::clamp(cfg.min_share, 0.0, 1.0));
  }
  return out;
}

double SlotLedger::job_granted_s(std::size_t token) const {
  std::lock_guard lock(mu_);
  const auto it = jobs_.find(token);
  return it == jobs_.end() ? 0.0 : it->second.granted_s;
}

std::vector<GrantEvent> SlotLedger::grant_log() const {
  std::lock_guard lock(mu_);
  return log_;
}

}  // namespace chopper::service
