// SlotLedger: arbitrates the simulated cluster's time between concurrent
// jobs (the service-side implementation of engine::VirtualTimeArbiter).
//
// Model. The cluster's simulated slots are granted to one stage at a time:
// a job that finished executing a stage for real presents the stage's
// simulated makespan and is granted an exclusive window [start, start + d)
// of global virtual time. Windows never overlap, so N concurrent jobs
// genuinely contend — each sees queueing delay whenever another job's
// stage window was scheduled first. A job running alone is granted
// back-to-back windows and reproduces the classic single-job timings
// exactly.
//
// Determinism. Grants follow a discrete-event rule: a window is handed out
// only when *every* registered job is parked in acquire() (jobs still
// executing a stage for real, or between register and their first request,
// block the grant). At that point the full set of competing requests is
// known and the scheduling policy picks deterministically — FIFO by
// (priority, submission seq), FAIR by per-pool weighted deficit — so the
// virtual schedule depends only on the submission order, never on host
// thread timing. This is what makes N-job stress runs bit-reproducible.
//
// Pools (Spark's FIFO/FAIR scheduler pools, spark.scheduler.mode):
//   * kFifo: one global queue ordered by (priority desc, seq asc); a
//     submitted job's stages all precede any later submission's.
//   * kFair: each pool accumulates granted virtual seconds; the next window
//     goes to the pool with the smallest granted/weight ratio, with pools
//     still under their min_share fraction served first. Within a pool,
//     FIFO order applies.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.h"

namespace chopper::obs {
class EventLog;
}

namespace chopper::service {

enum class SchedulingMode { kFifo, kFair };

const char* to_string(SchedulingMode mode) noexcept;

/// Spark-style pool configuration (spark.scheduler.pool).
struct PoolConfig {
  /// Relative share of cluster time under FAIR scheduling (Spark's weight).
  double weight = 1.0;
  /// Fraction [0, 1) of granted cluster time this pool is entitled to
  /// before weighted sharing applies (Spark's minShare, expressed as a
  /// fraction of cluster time instead of slots).
  double min_share = 0.0;
};

/// One granted window, for fairness accounting and tests.
struct GrantEvent {
  std::size_t token = 0;
  std::string pool;
  double start = 0.0;
  double duration = 0.0;
};

class SlotLedger final : public engine::VirtualTimeArbiter {
 public:
  SlotLedger(SchedulingMode mode, std::map<std::string, PoolConfig> pools);

  SlotLedger(const SlotLedger&) = delete;
  SlotLedger& operator=(const SlotLedger&) = delete;

  /// Admit a job into arbitration. The job starts "executing" (it blocks
  /// all grants until its first acquire), so callers must guarantee the
  /// job's runner eventually calls acquire() or retire(). Unknown pools
  /// are created on first use with default PoolConfig.
  std::size_t register_job(const std::string& pool, int priority,
                           std::size_t seq);

  /// Remove a finished/aborted job. When `admit` is set, the replacement is
  /// registered under the same lock, so no grant can slip between the
  /// retirement and the admission (this keeps multi-run schedules
  /// deterministic). Returns the replacement's token if admitted.
  struct AdmitSpec {
    std::string pool;
    int priority = 0;
    std::size_t seq = 0;
  };
  std::optional<std::size_t> retire(std::size_t token,
                                    const std::optional<AdmitSpec>& admit);

  // engine::VirtualTimeArbiter
  double acquire(std::size_t token, double earliest, double duration) override;

  /// Global virtual frontier (end of the last granted window).
  double now() const;

  struct PoolStats {
    double weight = 1.0;
    double min_share = 0.0;
    double granted_s = 0.0;  ///< virtual cluster seconds granted so far
  };
  std::map<std::string, PoolStats> pool_stats() const;

  /// Normalized pool weights: each configured pool's weight as a fraction of
  /// the total (respecting min_share as a floor). The cache planner turns
  /// these into per-tenant storage-share floors (DESIGN.md §17). Empty when
  /// no pools are configured.
  std::map<std::string, double> pool_share_fractions() const;

  /// Virtual seconds granted to one job so far.
  double job_granted_s(std::size_t token) const;

  /// Full grant history (fairness-ratio analysis in tests and benches).
  std::vector<GrantEvent> grant_log() const;

  /// Structured event log for kPoolGrant events (nullptr: none).
  void set_event_log(obs::EventLog* log) noexcept;

 private:
  struct JobRec {
    std::string pool;
    int priority = 0;
    std::size_t seq = 0;
    bool waiting = false;      ///< parked in acquire()
    bool granted = false;      ///< grant issued, waiter not yet woken
    double earliest = 0.0;
    double duration = 0.0;
    double grant_start = 0.0;
    double granted_s = 0.0;
  };

  /// Grant the next window if every registered job is parked. Caller holds
  /// mu_. Notifies all waiters when a grant was issued.
  void maybe_grant();
  /// Policy pick among waiting jobs. Caller holds mu_; jobs_ not empty and
  /// all waiting.
  std::size_t pick() const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  const SchedulingMode mode_;
  std::map<std::string, PoolConfig> pool_config_;
  std::map<std::string, double> pool_granted_;
  std::map<std::size_t, JobRec> jobs_;
  std::size_t next_token_ = 1;
  double now_ = 0.0;
  std::vector<GrantEvent> log_;
  obs::EventLog* event_log_ = nullptr;  ///< not owned; may be null
};

}  // namespace chopper::service
