#include "workloads/data_gen.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/rng.h"

namespace chopper::workloads {

using common::hash_combine;
using common::Xoshiro256;
using engine::Partition;
using engine::Record;

namespace {
/// Rows of partition `index` when `total` rows are split `count` ways.
std::pair<std::size_t, std::size_t> slice(std::size_t total, std::size_t index,
                                          std::size_t count) {
  const std::size_t begin = total * index / count;
  const std::size_t end = total * (index + 1) / count;
  return {begin, end};
}
}  // namespace

std::vector<std::vector<double>> gaussian_mixture_centers(
    const GaussianMixtureSpec& spec) {
  Xoshiro256 rng(hash_combine(spec.seed, 0xC3'11'7e'25));
  std::vector<std::vector<double>> centers(spec.clusters);
  for (auto& c : centers) {
    c.resize(spec.dims);
    for (auto& v : c) v = rng.next_normal(0.0, spec.cluster_spread);
  }
  return centers;
}

engine::SourceFn gaussian_mixture_source(GaussianMixtureSpec spec) {
  auto centers = gaussian_mixture_centers(spec);
  return [spec, centers = std::move(centers)](std::size_t index,
                                              std::size_t count) {
    const auto [begin, end] = slice(spec.total_points, index, count);
    Partition out;
    out.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      // Per-record stream: the generated dataset is identical no matter how
      // it is split, so results are invariant under repartitioning.
      Xoshiro256 rng(hash_combine(spec.seed, i));
      const std::size_t c = rng.next_below(spec.clusters);
      Record r;
      r.key = i;
      r.values.resize(spec.dims);
      for (std::size_t d = 0; d < spec.dims; ++d) {
        r.values[d] = centers[c][d] + rng.next_normal(0.0, spec.noise);
      }
      out.push(std::move(r));
    }
    return out;
  };
}

engine::SourceFn correlated_rows_source(CorrelatedRowsSpec spec) {
  // Fixed mixing matrix A (dims x latent_dims).
  Xoshiro256 arng(hash_combine(spec.seed, 0xA11A));
  std::vector<double> mix(spec.dims * spec.latent_dims);
  for (auto& v : mix) v = arng.next_normal(0.0, 1.0);

  return [spec, mix = std::move(mix)](std::size_t index, std::size_t count) {
    const auto [begin, end] = slice(spec.total_rows, index, count);
    Partition out;
    out.reserve(end - begin);
    std::vector<double> z(spec.latent_dims);
    for (std::size_t i = begin; i < end; ++i) {
      Xoshiro256 rng(hash_combine(spec.seed, i));
      for (auto& v : z) v = rng.next_normal(0.0, 1.0);
      Record r;
      r.key = i;
      r.values.resize(spec.dims);
      for (std::size_t d = 0; d < spec.dims; ++d) {
        double x = rng.next_normal(0.0, spec.noise);
        for (std::size_t l = 0; l < spec.latent_dims; ++l) {
          x += mix[d * spec.latent_dims + l] * z[l];
        }
        r.values[d] = x;
      }
      out.push(std::move(r));
    }
    return out;
  };
}

engine::SourceFn fact_table_source(FactTableSpec spec) {
  auto zipf =
      std::make_shared<common::ZipfSampler>(spec.num_keys, spec.zipf_theta);
  return [spec, zipf](std::size_t index, std::size_t count) {
    const auto [begin, end] = slice(spec.total_rows, index, count);
    Partition out;
    out.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      Xoshiro256 rng(hash_combine(spec.seed, i));
      Record r;
      // Scramble the rank so "hot" keys are not numerically adjacent.
      r.key = common::mix64((*zipf)(rng)) % spec.num_keys;
      r.values = {rng.next_double() * 100.0,
                  static_cast<double>(rng.next_below(5))};
      r.aux_bytes = static_cast<std::uint32_t>(spec.payload_bytes);
      out.push(std::move(r));
    }
    return out;
  };
}

engine::SourceFn dim_table_source(DimTableSpec spec) {
  return [spec](std::size_t index, std::size_t count) {
    const auto [begin, end] = slice(spec.num_keys, index, count);
    Partition out;
    out.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      Xoshiro256 rng(hash_combine(spec.seed, i));
      Record r;
      r.key = common::mix64(i) % spec.num_keys;
      r.values = {rng.next_double()};
      r.aux_bytes = static_cast<std::uint32_t>(spec.payload_bytes);
      out.push(std::move(r));
    }
    return out;
  };
}

namespace {
std::uint64_t row_bytes(std::size_t value_count, std::size_t aux) {
  return engine::kRecordFramingBytes + 8 + 8 * value_count + aux;
}
}  // namespace

std::uint64_t gaussian_mixture_bytes(const GaussianMixtureSpec& spec) {
  return spec.total_points * row_bytes(spec.dims, 0);
}

std::uint64_t correlated_rows_bytes(const CorrelatedRowsSpec& spec) {
  return spec.total_rows * row_bytes(spec.dims, 0);
}

std::uint64_t fact_table_bytes(const FactTableSpec& spec) {
  return spec.total_rows * row_bytes(2, spec.payload_bytes);
}

std::uint64_t dim_table_bytes(const DimTableSpec& spec) {
  return spec.num_keys * row_bytes(1, spec.payload_bytes);
}

}  // namespace chopper::workloads
