// Synthetic data generators standing in for SparkBench's generators:
//  * Gaussian-mixture feature vectors (KMeans),
//  * correlated feature rows (PCA),
//  * fact/dimension tables with Zipf-skewed join keys (SQL).
//
// All generators are deterministic in (seed, partition index, partition
// count); record payload sizes are chosen so byte accounting matches the
// row widths the paper's inputs imply.
#pragma once

#include <cstdint>

#include "engine/dataset.h"

namespace chopper::workloads {

struct GaussianMixtureSpec {
  std::size_t total_points = 100'000;
  std::size_t dims = 16;
  std::size_t clusters = 10;
  double cluster_spread = 8.0;  ///< distance scale between cluster centers
  double noise = 1.0;           ///< within-cluster stddev
  std::uint64_t seed = 42;
};

/// SourceFn generating partition `index` of a Gaussian mixture. Record key
/// is the global point id; values are the feature vector.
engine::SourceFn gaussian_mixture_source(GaussianMixtureSpec spec);

/// The mixture's true cluster centers (for workload logic and test oracles).
std::vector<std::vector<double>> gaussian_mixture_centers(
    const GaussianMixtureSpec& spec);

struct CorrelatedRowsSpec {
  std::size_t total_rows = 100'000;
  std::size_t dims = 24;
  std::size_t latent_dims = 4;  ///< true rank of the generating factors
  double noise = 0.05;
  std::uint64_t seed = 7;
};

/// Rows x = A z + noise with a fixed random mixing matrix A, giving data
/// whose top-`latent_dims` principal components carry nearly all variance.
engine::SourceFn correlated_rows_source(CorrelatedRowsSpec spec);

struct FactTableSpec {
  std::size_t total_rows = 400'000;
  std::size_t num_keys = 20'000;   ///< distinct join keys
  double zipf_theta = 0.8;         ///< key skew (0 = uniform)
  std::size_t payload_bytes = 64;  ///< opaque per-row payload (aux_bytes)
  std::uint64_t seed = 11;
};

/// Fact rows: key = join key (Zipf over [0, num_keys)), values = {measure1,
/// measure2}, aux_bytes = payload.
engine::SourceFn fact_table_source(FactTableSpec spec);

struct DimTableSpec {
  std::size_t num_keys = 20'000;
  std::size_t payload_bytes = 96;
  std::uint64_t seed = 13;
};

/// Dimension rows: one row per key, values = {attribute}, larger payload.
engine::SourceFn dim_table_source(DimTableSpec spec);

/// Approximate serialized size of the datasets (for Table I bookkeeping).
std::uint64_t gaussian_mixture_bytes(const GaussianMixtureSpec& spec);
std::uint64_t correlated_rows_bytes(const CorrelatedRowsSpec& spec);
std::uint64_t fact_table_bytes(const FactTableSpec& spec);
std::uint64_t dim_table_bytes(const DimTableSpec& spec);

}  // namespace chopper::workloads
