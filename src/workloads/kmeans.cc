#include "workloads/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace chopper::workloads {

using engine::Dataset;
using engine::DatasetPtr;
using engine::Record;

namespace {

double sq_distance(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

std::size_t nearest_center(std::span<const double> values,
                           const std::vector<std::vector<double>>& centers) {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centers.size(); ++c) {
    const double d = sq_distance(values, centers[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

}  // namespace

KMeansWorkload::KMeansWorkload(KMeansParams params) : params_(params) {
  if (params_.k == 0) throw std::invalid_argument("KMeans: k must be > 0");
}

std::uint64_t KMeansWorkload::input_bytes(double scale) const {
  GaussianMixtureSpec s = params_.data;
  s.total_points = scaled_count(s.total_points, scale);
  return gaussian_mixture_bytes(s);
}

void KMeansWorkload::run(engine::Engine& eng, double scale) const {
  (void)run_with_result(eng, scale);
}

KMeansResult KMeansWorkload::run_with_result(engine::Engine& eng,
                                             double scale) const {
  GaussianMixtureSpec spec = params_.data;
  spec.total_points = scaled_count(spec.total_points, scale);
  const std::size_t dims = spec.dims;
  // Distance evaluation is k*dims multiply-adds per record; weight the map
  // accordingly so the cost model prices it like the real hotspot it is.
  const double assign_work =
      static_cast<double>(params_.k) * static_cast<double>(dims) * 0.05;

  // Stage 0: load + parse + cache (one heavy stage, like the paper's
  // stage 0 whose time dominates Fig. 2 / Table II).
  auto points = Dataset::source("kmeans-input", params_.source_partitions,
                                gaussian_mixture_source(spec))
                    // Text -> feature-vector parsing dominates the load
                    // stage, as in the paper (Table II: stage 0 takes
                    // minutes while iteration stages take seconds).
                    ->map_values(
                        "parse",
                        [](const Record& r) { return r; },
                        /*work_per_record=*/60.0)
                    ->cache();
  eng.count(points, "kmeans-load");

  // Stages 1..init_rounds: sampling-based initialization (kmeans||-style
  // candidate rounds). Identical labels -> identical signatures.
  std::vector<std::vector<double>> centers;
  const double sample_fraction =
      std::min(1.0, static_cast<double>(params_.k * 20) /
                        static_cast<double>(std::max<std::size_t>(
                            1, spec.total_points)));
  for (std::size_t round = 0; round < params_.init_rounds; ++round) {
    auto sampled =
        points->sample("init-sample", sample_fraction, spec.seed + round);
    auto result = eng.collect(sampled, "kmeans-init");
    for (const auto& r : result.records) {
      if (centers.size() < params_.k) {
        centers.emplace_back(r.values.begin(), r.values.end());
      }
    }
  }
  while (centers.size() < params_.k) {
    // Degenerate tiny inputs: pad with zero-centers.
    centers.emplace_back(dims, 0.0);
  }

  // Stages 12..(12 + 2*iterations - 1): Lloyd iterations. Each iteration is
  // a (map | shuffle-write) stage plus a (reduceByKey | collect) stage.
  for (std::size_t iter = 0; iter < params_.iterations; ++iter) {
    auto assigned = points->map(
        "assign",
        [centers](const Record& r) {
          Record out;
          out.key = nearest_center(r.values, centers);
          out.values.reserve(r.values.size() + 1);
          out.values.assign(r.values.begin(), r.values.end());
          out.values.push_back(1.0);  // count
          return out;
        },
        assign_work);
    auto sums = assigned->reduce_by_key(
        "centroid-sum",
        [](Record& acc, const Record& next) {
          for (std::size_t i = 0; i < acc.values.size(); ++i) {
            acc.values[i] += next.values[i];
          }
        },
        /*req=*/{}, /*work_per_record=*/2.0);
    auto result = eng.collect(sums, "kmeans-iter");

    for (const auto& r : result.records) {
      const auto c = static_cast<std::size_t>(r.key);
      if (c >= centers.size()) continue;
      const double count = r.values.back();
      if (count <= 0.0) continue;
      for (std::size_t d = 0; d < dims; ++d) {
        centers[c][d] = r.values[d] / count;
      }
    }
  }

  // Stage 18: final assignment pass (cost accumulation, no shuffle).
  double final_cost = 0.0;
  {
    auto costs = points->map_partitions(
        "final-assign",
        [centers](engine::Partition&& in) {
          double cost = 0.0;
          for (const auto& r : in.records()) {
            cost +=
                sq_distance(r.values, centers[nearest_center(r.values, centers)]);
          }
          engine::Partition out;
          Record summary;
          summary.key = 0;
          summary.values = {cost, static_cast<double>(in.size())};
          out.push(std::move(summary));
          return out;
        },
        assign_work, /*preserves_partitioning=*/false);
    auto result = eng.collect(costs, "kmeans-final-cost");
    for (const auto& r : result.records) final_cost += r.values[0];
  }

  // Stage 19: model summary sample (lightweight closing stage).
  {
    auto summary = points->sample("model-summary", sample_fraction / 4.0,
                                  spec.seed + 1771);
    eng.count(summary, "kmeans-summary");
  }

  KMeansResult out;
  out.centers = std::move(centers);
  out.cost = final_cost;
  return out;
}

}  // namespace chopper::workloads
