// KMeans workload, mirroring the SparkBench job the paper profiles
// (Sec. II-B, IV): 20 stages — a heavy input-load/cache stage (stage 0),
// eleven lightweight sampling/initialization stages (stages 1-11, no
// shuffle), three Lloyd iterations of map + reduceByKey pairs (stages
// 12-17, the only shuffle stages, matching Fig. 4), and two final
// assignment/summary stages (18-19).
//
// Iterations reuse identical operator labels, so all iteration-map stages
// share one signature and all iteration-reduce stages share another —
// CHOPPER therefore assigns stages 12-17 one scheme, as in Table III.
#pragma once

#include "workloads/data_gen.h"
#include "workloads/workload.h"

namespace chopper::workloads {

struct KMeansParams {
  GaussianMixtureSpec data;       ///< data.total_points is the scale-1 size
  std::size_t k = 10;             ///< clusters to fit
  std::size_t iterations = 3;     ///< Lloyd iterations (stage pairs 12-17)
  std::size_t init_rounds = 11;   ///< sampling rounds (stages 1-11)
  std::size_t source_partitions = 300;  ///< default input splits
};

struct KMeansResult {
  std::vector<std::vector<double>> centers;
  double cost = 0.0;  ///< sum of squared distances at the final assignment
};

class KMeansWorkload final : public Workload {
 public:
  explicit KMeansWorkload(KMeansParams params = {});

  const std::string& name() const override { return name_; }
  std::uint64_t input_bytes(double scale) const override;
  void run(engine::Engine& eng, double scale) const override;

  /// Like run(), but returns the fitted model (for tests / examples).
  KMeansResult run_with_result(engine::Engine& eng, double scale) const;

  const KMeansParams& params() const noexcept { return params_; }

 private:
  KMeansParams params_;
  std::string name_ = "kmeans";
};

}  // namespace chopper::workloads
