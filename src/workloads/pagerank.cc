#include "workloads/pagerank.h"

#include <cmath>

#include "common/hash.h"
#include "common/rng.h"

namespace chopper::workloads {

using engine::Dataset;
using engine::Partition;
using engine::Record;

namespace {

/// Adjacency records: key = source page, values = out-neighbor ids.
/// Out-neighbors follow a Zipf popularity distribution, giving the rank
/// vector the heavy tail real graphs have. Deterministic per page.
engine::SourceFn links_source(PageRankParams params, std::size_t pages) {
  auto zipf = std::make_shared<common::ZipfSampler>(pages,
                                                    params.popularity_theta);
  return [params, pages, zipf](std::size_t index, std::size_t count) {
    Partition out;
    const std::size_t begin = pages * index / count;
    const std::size_t end = pages * (index + 1) / count;
    for (std::size_t page = begin; page < end; ++page) {
      common::Xoshiro256 rng(common::hash_combine(params.seed, page));
      Record r;
      r.key = page;
      const std::size_t degree =
          1 + rng.next_below(2 * params.avg_out_degree - 1);
      r.values.reserve(degree);
      for (std::size_t d = 0; d < degree; ++d) {
        // Scramble popularity rank into a page id.
        r.values.push_back(static_cast<double>(
            common::mix64((*zipf)(rng)) % pages));
      }
      out.push(std::move(r));
    }
    return out;
  };
}

}  // namespace

PageRankWorkload::PageRankWorkload(PageRankParams params) : params_(params) {}

std::uint64_t PageRankWorkload::input_bytes(double scale) const {
  const std::size_t pages = scaled_count(params_.num_pages, scale);
  // key + ~avg_out_degree doubles per row.
  return pages * (engine::kRecordFramingBytes + 8 +
                  8 * params_.avg_out_degree);
}

void PageRankWorkload::run(engine::Engine& eng, double scale) const {
  (void)run_with_result(eng, scale);
}

PageRankResult PageRankWorkload::run_with_result(engine::Engine& eng,
                                                 double scale) const {
  const std::size_t pages = scaled_count(params_.num_pages, scale);
  const double damping = params_.damping;

  // Stage 0: load + cache the adjacency lists.
  auto links = Dataset::source("pr-links", params_.source_partitions,
                               links_source(params_, pages))
                   ->map_values(
                       "parse-links", [](const Record& r) { return r; },
                       /*work_per_record=*/20.0)
                   ->cache();
  eng.count(links, "pagerank-load");

  // ranks starts uniform; it is re-created from the previous iteration's
  // collect (driver-side round trip, as in the classic Spark example scaled
  // down — the collect keeps the workload's job structure simple).
  std::vector<double> ranks(pages, 1.0);

  for (std::size_t iter = 0; iter < params_.iterations; ++iter) {
    auto rank_ds = Dataset::source(
        "pr-ranks", params_.source_partitions,
        [pages, ranks](std::size_t index, std::size_t count) {
          Partition p;
          const std::size_t begin = pages * index / count;
          const std::size_t end = pages * (index + 1) / count;
          for (std::size_t i = begin; i < end; ++i) {
            Record r;
            r.key = i;
            r.values = {ranks[i]};
            p.push(std::move(r));
          }
          return p;
        });

    auto contributions =
        links
            ->join_with(rank_ds, "rank-join", {},
                        [](std::uint64_t key, std::span<const Record> ls,
                           std::span<const Record> rs) {
                          // values = neighbors..., rank appended last.
                          std::vector<Record> out;
                          if (ls.empty() || rs.empty()) return out;
                          Record j;
                          j.key = key;
                          j.values = ls.front().values;
                          j.values.push_back(rs.front().values[0]);
                          out.push_back(std::move(j));
                          return out;
                        })
            ->flat_map(
                "contribs",
                [](const Record& r) {
                  std::vector<Record> out;
                  const std::size_t degree = r.values.size() - 1;
                  if (degree == 0) return out;
                  const double share = r.values.back() /
                                       static_cast<double>(degree);
                  out.reserve(degree);
                  for (std::size_t d = 0; d < degree; ++d) {
                    Record c;
                    c.key = static_cast<std::uint64_t>(r.values[d]);
                    c.values = {share};
                    out.push_back(std::move(c));
                  }
                  return out;
                },
                /*work_per_record=*/4.0);

    auto sums = contributions->reduce_by_key(
        "rank-sum", [](Record& acc, const Record& next) {
          acc.values[0] += next.values[0];
        });
    const auto result = eng.collect(sums, "pagerank-iter");

    std::vector<double> next(pages, 1.0 - damping);
    for (const auto& r : result.records) {
      const auto page = static_cast<std::size_t>(r.key);
      if (page < pages) next[page] += damping * r.values[0];
    }
    ranks = std::move(next);
  }

  PageRankResult out;
  out.pages = pages;
  for (const double r : ranks) {
    out.total_rank += r;
    out.max_rank = std::max(out.max_rank, r);
  }
  return out;
}

}  // namespace chopper::workloads
