// PageRank workload (extension beyond the paper's three benchmarks).
//
// The classic Spark PageRank is the canonical co-partitioning showcase: the
// links table is joined against the ranks vector every iteration, so if the
// two share a partition scheme the per-iteration shuffle collapses to the
// contributions aggregation only. CHOPPER's Algorithm 3 groups the join
// subgraph automatically; vanilla defaults re-shuffle the links every
// iteration.
//
// Structure per iteration: join(links, ranks) -> flatMap(contributions) ->
// reduceByKey(sum) -> mapValues(damping). Iterations share signatures.
#pragma once

#include "workloads/workload.h"

namespace chopper::workloads {

struct PageRankParams {
  std::size_t num_pages = 50'000;
  std::size_t avg_out_degree = 8;
  /// Zipf exponent of in-link popularity (real webgraphs are heavy-tailed).
  double popularity_theta = 0.6;
  std::size_t iterations = 3;
  double damping = 0.85;
  std::size_t source_partitions = 300;
  std::uint64_t seed = 99;
};

struct PageRankResult {
  std::size_t pages = 0;
  double total_rank = 0.0;  ///< should stay ~= num_pages under damping
  double max_rank = 0.0;
};

class PageRankWorkload final : public Workload {
 public:
  explicit PageRankWorkload(PageRankParams params = {});

  const std::string& name() const override { return name_; }
  std::uint64_t input_bytes(double scale) const override;
  void run(engine::Engine& eng, double scale) const override;

  PageRankResult run_with_result(engine::Engine& eng, double scale) const;

  const PageRankParams& params() const noexcept { return params_; }

 private:
  PageRankParams params_;
  std::string name_ = "pagerank";
};

}  // namespace chopper::workloads
