#include "workloads/pca.h"

#include <cmath>
#include <stdexcept>

#include "common/linalg.h"

namespace chopper::workloads {

using engine::Dataset;
using engine::Partition;
using engine::Record;

PcaWorkload::PcaWorkload(PcaParams params) : params_(params) {
  if (params_.components == 0 || params_.components > params_.data.dims) {
    throw std::invalid_argument("PCA: components must be in [1, dims]");
  }
}

std::uint64_t PcaWorkload::input_bytes(double scale) const {
  CorrelatedRowsSpec s = params_.data;
  s.total_rows = scaled_count(s.total_rows, scale);
  return correlated_rows_bytes(s);
}

void PcaWorkload::run(engine::Engine& eng, double scale) const {
  (void)run_with_result(eng, scale);
}

PcaResult PcaWorkload::run_with_result(engine::Engine& eng,
                                       double scale) const {
  CorrelatedRowsSpec spec = params_.data;
  spec.total_rows = scaled_count(spec.total_rows, scale);
  const std::size_t d = spec.dims;

  // Stage 0: load + cache.
  auto rows = Dataset::source("pca-input", params_.source_partitions,
                              correlated_rows_source(spec))
                  ->map_values(
                      "parse", [](const Record& r) { return r; },
                      /*work_per_record=*/40.0)
                  ->cache();
  eng.count(rows, "pca-load");

  // Stages 1-2: column means.
  std::vector<double> means(d, 0.0);
  double total_rows = 0.0;
  {
    auto partials = rows->map_partitions(
        "mean-partial",
        [d](Partition&& in) {
          Record sum;
          sum.key = 0;
          sum.values.assign(d + 1, 0.0);
          for (const auto& r : in.records()) {
            for (std::size_t i = 0; i < d; ++i) sum.values[i] += r.values[i];
            sum.values[d] += 1.0;
          }
          Partition out;
          out.push(std::move(sum));
          return out;
        },
        /*work_per_record=*/static_cast<double>(d) * 0.2);
    auto sums = partials->reduce_by_key(
        "mean-sum", [](Record& acc, const Record& next) {
          for (std::size_t i = 0; i < acc.values.size(); ++i) {
            acc.values[i] += next.values[i];
          }
        });
    auto result = eng.collect(sums, "pca-means");
    if (!result.records.empty()) {
      const auto& r = result.records.front();
      total_rows = r.values[d];
      if (total_rows > 0.0) {
        for (std::size_t i = 0; i < d; ++i) means[i] = r.values[i] / total_rows;
      }
    }
  }

  // Stages 3-4: covariance. Each partition emits one partial record per
  // covariance ROW (key = row index), so the reduce spreads over d keys
  // instead of funneling everything into one task — the same shape MLlib's
  // tree aggregation gives real Spark PCA.
  common::Matrix cov(d, d);
  {
    auto partials = rows->map_partitions(
        "cov-partial",
        [d, means](Partition&& in) {
          std::vector<std::vector<double>> row_sums(d,
                                                    std::vector<double>(d, 0.0));
          std::vector<double> centered(d);
          for (const auto& r : in.records()) {
            for (std::size_t i = 0; i < d; ++i) {
              centered[i] = r.values[i] - means[i];
            }
            for (std::size_t i = 0; i < d; ++i) {
              const double ci = centered[i];
              for (std::size_t j = 0; j < d; ++j) {
                row_sums[i][j] += ci * centered[j];
              }
            }
          }
          Partition out;
          for (std::size_t i = 0; i < d; ++i) {
            Record r;
            r.key = i;
            r.values = std::move(row_sums[i]);
            out.push(std::move(r));
          }
          return out;
        },
        /*work_per_record=*/static_cast<double>(d * d) * 0.3);
    auto sums = partials->reduce_by_key(
        "cov-sum", [](Record& acc, const Record& next) {
          for (std::size_t i = 0; i < acc.values.size(); ++i) {
            acc.values[i] += next.values[i];
          }
        });
    auto result = eng.collect(sums, "pca-cov");
    if (total_rows > 1.0) {
      for (const auto& r : result.records) {
        const auto i = static_cast<std::size_t>(r.key);
        if (i >= d) continue;
        for (std::size_t j = 0; j < d; ++j) {
          cov(i, j) = r.values[j] / (total_rows - 1.0);
        }
      }
    }
  }

  // Driver-side eigen-decomposition (the paper's PCA does this in the
  // driver as well — it is tiny compared to the distributed passes).
  const auto eig = common::jacobi_eigen(cov);
  PcaResult out;
  out.eigenvalues.assign(eig.values.begin(),
                         eig.values.begin() +
                             static_cast<std::ptrdiff_t>(params_.components));
  out.components.resize(params_.components);
  for (std::size_t c = 0; c < params_.components; ++c) {
    out.components[c].resize(d);
    for (std::size_t i = 0; i < d; ++i) out.components[c][i] = eig.vectors(i, c);
  }

  // Stages 5..(5 + 2*iterations - 1): reconstruction-error refinement.
  const auto& comps = out.components;
  for (std::size_t iter = 0; iter < params_.iterations; ++iter) {
    auto errors = rows->map(
        "project",
        [comps, means](const Record& r) {
          // Residual norm after projecting onto the components.
          std::vector<double> centered(r.values.size());
          for (std::size_t i = 0; i < r.values.size(); ++i) {
            centered[i] = r.values[i] - means[i];
          }
          double norm2 = 0.0;
          for (const double v : centered) norm2 += v * v;
          double captured = 0.0;
          for (const auto& comp : comps) {
            double dot = 0.0;
            for (std::size_t i = 0; i < centered.size(); ++i) {
              dot += centered[i] * comp[i];
            }
            captured += dot * dot;
          }
          Record e;
          e.key = r.key % 64;  // spread across reducers
          e.values = {std::max(0.0, norm2 - captured), 1.0};
          return e;
        },
        /*work_per_record=*/static_cast<double>(d * params_.components) * 0.3);
    auto sums = errors->reduce_by_key(
        "error-sum", [](Record& acc, const Record& next) {
          acc.values[0] += next.values[0];
          acc.values[1] += next.values[1];
        });
    auto result = eng.collect(sums, "pca-iter");
    double err = 0.0, n = 0.0;
    for (const auto& r : result.records) {
      err += r.values[0];
      n += r.values[1];
    }
    out.reconstruction_error = n > 0.0 ? err / n : 0.0;
  }

  // Stage 11: final projection pass.
  {
    auto projected = rows->map_values(
        "project-final",
        [comps, means](const Record& r) {
          Record p;
          p.key = r.key;
          p.values.reserve(comps.size());
          for (const auto& comp : comps) {
            double dot = 0.0;
            for (std::size_t i = 0; i < r.values.size(); ++i) {
              dot += (r.values[i] - means[i]) * comp[i];
            }
            p.values.push_back(dot);
          }
          return p;
        },
        /*work_per_record=*/static_cast<double>(d * params_.components) * 0.3);
    eng.count(projected, "pca-project");
  }

  return out;
}

}  // namespace chopper::workloads
