// PCA workload (paper Sec. IV): compute- and network-intensive, iterative.
//
// Stage structure (12 stages):
//   0      load + parse + cache
//   1-2    column means        (map-partitions partial sums | reduce+collect)
//   3-4    covariance matrix   (partial outer products      | reduce+collect)
//          -> driver-side Jacobi eigen-decomposition
//   5-10   three refinement iterations: project rows onto the current
//          components and aggregate reconstruction error (map | reduce),
//          identical labels so the three iterations share signatures
//   11     final projection pass
#pragma once

#include "workloads/data_gen.h"
#include "workloads/workload.h"

namespace chopper::workloads {

struct PcaParams {
  CorrelatedRowsSpec data;
  std::size_t components = 4;   ///< principal components to keep
  std::size_t iterations = 3;   ///< refinement passes (stage pairs 5-10)
  std::size_t source_partitions = 300;
};

struct PcaResult {
  std::vector<double> eigenvalues;          ///< top `components`, descending
  std::vector<std::vector<double>> components;  ///< row-major loadings
  double reconstruction_error = 0.0;        ///< mean squared residual
};

class PcaWorkload final : public Workload {
 public:
  explicit PcaWorkload(PcaParams params = {});

  const std::string& name() const override { return name_; }
  std::uint64_t input_bytes(double scale) const override;
  void run(engine::Engine& eng, double scale) const override;

  PcaResult run_with_result(engine::Engine& eng, double scale) const;

  const PcaParams& params() const noexcept { return params_; }

 private:
  PcaParams params_;
  std::string name_ = "pca";
};

}  // namespace chopper::workloads
