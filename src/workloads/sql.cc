#include "workloads/sql.h"

#include <cmath>

namespace chopper::workloads {

using engine::Dataset;
using engine::Record;
using engine::ShuffleRequest;

SqlWorkload::SqlWorkload(SqlParams params) : params_(params) {}

std::uint64_t SqlWorkload::input_bytes(double scale) const {
  FactTableSpec f = params_.fact;
  f.total_rows = scaled_count(f.total_rows, scale);
  return fact_table_bytes(f) + dim_table_bytes(params_.dim);
}

void SqlWorkload::run(engine::Engine& eng, double scale) const {
  (void)run_with_result(eng, scale);
}

SqlResult SqlWorkload::run_with_result(engine::Engine& eng,
                                       double scale) const {
  FactTableSpec fact_spec = params_.fact;
  fact_spec.total_rows = scaled_count(fact_spec.total_rows, scale);

  const double keep = params_.filter_selectivity;

  // Stage 0: fact scan + WHERE.
  // Table scan + predicate evaluation over wide rows dominates the scan
  // stages (the paper calls SQL "compute intensive for count and
  // aggregation operations and shuffle intensive in the join phase").
  auto fact = Dataset::source("fact-scan", params_.fact_partitions,
                              fact_table_source(fact_spec))
                  ->filter(
                      "where",
                      [keep](const Record& r) {
                        // values[1] holds a uniform category in [0, 5).
                        return r.values[1] < keep * 5.0;
                      },
                      /*work_per_record=*/3.0);

  // Stage 2: GROUP BY key, SUM(measure), COUNT(*).
  ShuffleRequest fact_agg_req;
  fact_agg_req.num_partitions = params_.fact_agg_partitions;
  fact_agg_req.user_fixed = params_.user_fixed_aggs;
  auto fact_agg = fact->map_values(
                          "project-measures",
                          [](const Record& r) {
                            Record out;
                            out.key = r.key;
                            out.values = {r.values[0], 1.0};
                            // The projected row keeps the columns the query
                            // selects; the payload flows into the join.
                            out.aux_bytes = r.aux_bytes;
                            return out;
                          },
                          /*work_per_record=*/1.0)
                      ->reduce_by_key(
                          "group-by",
                          [](Record& acc, const Record& next) {
                            acc.values[0] += next.values[0];
                            acc.values[1] += next.values[1];
                          },
                          fact_agg_req, /*work_per_record=*/1.2);

  // Stage 1: dimension scan; stage 3: dedup (one row per key).
  ShuffleRequest dim_agg_req;
  dim_agg_req.num_partitions = params_.dim_agg_partitions;
  dim_agg_req.user_fixed = params_.user_fixed_aggs;
  auto dim = Dataset::source("dim-scan", params_.dim_partitions,
                             dim_table_source(params_.dim))
                 ->reduce_by_key(
                     "dim-dedup",
                     [](Record& acc, const Record& next) {
                       // Keep the first attribute; duplicates are rare.
                       (void)next;
                       (void)acc;
                     },
                     dim_agg_req, /*work_per_record=*/0.8);

  // Stage 4: JOIN + final projection + result.
  engine::ShuffleRequest join_req;  // engine defaults; CHOPPER may override
  auto joined = fact_agg->join_with(dim, "fact-dim-join", join_req)
                    ->map_values(
                        "revenue",
                        [](const Record& r) {
                          // values = {sum, count, attribute}.
                          Record out;
                          out.key = r.key;
                          out.values = {r.values[0] * (1.0 + r.values[2])};
                          return out;
                        },
                        /*work_per_record=*/0.5);

  auto result = eng.collect(joined, "sql-query");

  SqlResult out;
  out.joined_rows = result.count;
  for (const auto& r : result.records) out.total_revenue += r.values[0];
  return out;
}

}  // namespace chopper::workloads
