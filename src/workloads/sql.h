// SQL workload (paper Sec. IV): count, aggregate and join over generated
// tables — compute-intensive in the scan/aggregation phases and
// shuffle-intensive in the join phase.
//
// Stage structure (5 stages, matching Fig. 9/10's stages 0-4):
//   0  fact scan + WHERE filter            (shuffle write for GROUP BY)
//   1  dimension scan + projection         (shuffle write for dedup)
//   2  fact GROUP BY aggregation           (shuffle write for JOIN, left)
//   3  dimension dedup/aggregation         (shuffle write for JOIN, right)
//   4  JOIN + final projection + result
//
// Vanilla Spark behaviour is reproduced faithfully: the two aggregations
// default to partition counts proportional to their input splits (as
// Spark's defaultPartitioner does), so their schemes disagree and the join
// must re-shuffle both sides. CHOPPER's Algorithm 3 groups stages 2-4 and
// assigns them one scheme, turning the join into a co-partitioned (zero
// shuffle) stage — the effect shown in Fig. 9/10.
#pragma once

#include "workloads/data_gen.h"
#include "workloads/workload.h"

namespace chopper::workloads {

struct SqlParams {
  FactTableSpec fact;
  DimTableSpec dim;
  double filter_selectivity = 0.8;  ///< fraction of fact rows kept by WHERE
  std::size_t fact_partitions = 400;  ///< fact input splits (scale-1)
  std::size_t dim_partitions = 120;   ///< dimension input splits
  /// Default partition counts of the two aggregations, mimicking Spark's
  /// split-proportional defaults. CHOPPER may override both.
  std::size_t fact_agg_partitions = 400;
  std::size_t dim_agg_partitions = 120;
  /// Pin the aggregation schemes as user-specified (paper Sec. III-C):
  /// CHOPPER must then leave them intact unless inserting an explicit
  /// repartition wins by more than gamma. Used by the gamma ablation.
  bool user_fixed_aggs = false;
};

struct SqlResult {
  std::uint64_t joined_rows = 0;
  double total_revenue = 0.0;
};

class SqlWorkload final : public Workload {
 public:
  explicit SqlWorkload(SqlParams params = {});

  const std::string& name() const override { return name_; }
  std::uint64_t input_bytes(double scale) const override;
  void run(engine::Engine& eng, double scale) const override;

  SqlResult run_with_result(engine::Engine& eng, double scale) const;

  const SqlParams& params() const noexcept { return params_; }

 private:
  SqlParams params_;
  std::string name_ = "sql";
};

}  // namespace chopper::workloads
