#include "workloads/workload.h"

#include <algorithm>
#include <cmath>

namespace chopper::workloads {

std::size_t scaled_count(std::size_t base, double scale) {
  const double v = std::max(1.0, std::round(static_cast<double>(base) * scale));
  return static_cast<std::size_t>(v);
}

}  // namespace chopper::workloads
