// Common workload interface: a named, scalable job sequence over an Engine.
//
// `run(engine, scale)` builds the workload's datasets at `scale` times the
// base input size and submits all of its jobs. Runs are deterministic in
// (params, scale) and produce identical stage signatures on every run, so
// CHOPPER plans trained on profiling runs apply to later runs.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "engine/engine.h"

namespace chopper::workloads {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const std::string& name() const = 0;

  /// Approximate input bytes at the given scale (Table I bookkeeping).
  virtual std::uint64_t input_bytes(double scale) const = 0;

  /// Build and execute all jobs on the engine.
  virtual void run(engine::Engine& eng, double scale) const = 0;

  /// Adapter for chopper::core::WorkloadRunner.
  std::function<void(engine::Engine&, double)> runner() const {
    return [this](engine::Engine& eng, double scale) { run(eng, scale); };
  }
};

/// Clamp a scaled count to at least 1.
std::size_t scaled_count(std::size_t base, double scale);

}  // namespace chopper::workloads
