// AdaptiveController unit + micro end-to-end tests (DESIGN.md §15).
//
// Covers: initial-plan round-trip through adapted_config(), per-job gating,
// the feasibility (OOM-floor) adoption path on a starved cluster, the
// epsilon hysteresis gate, and the pure-observer bit-identity contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "adapt/adaptive.h"
#include "chopper/chopper.h"
#include "chopper/config_plan.h"
#include "common/kv_config.h"
#include "engine/engine.h"
#include "obs/event_log.h"

namespace chopper::adapt {
namespace {

using engine::ClusterSpec;
using engine::Dataset;
using engine::DatasetPtr;
using engine::Engine;

constexpr const char* kWorkload = "adapt_micro";

DatasetPtr micro_job(std::size_t rows) {
  auto src = Dataset::source(
      "micro.load", 8, [rows](std::size_t index, std::size_t count) {
        engine::Partition p;
        const std::size_t begin = rows * index / count;
        const std::size_t end = rows * (index + 1) / count;
        for (std::size_t i = begin; i < end; ++i) {
          const double vals[2] = {1.0, static_cast<double>(i % 13)};
          p.emplace(i % 64, vals, 2, 96);
        }
        return p;
      });
  return src->reduce_by_key(
      "micro.sum",
      [](engine::Record& acc, const engine::Record& next) {
        acc.values[0] += next.values[0];
        acc.values[1] += next.values[1];
      },
      {}, 2.0);
}

core::ChopperOptions micro_options() {
  core::ChopperOptions o;
  o.engine_options.default_parallelism = 8;
  o.engine_options.host_threads = 4;
  o.profile_partitions = {8, 16, 24};
  o.profile_fractions = {0.5, 1.0};
  o.profile_both_partitioners = false;
  return o;
}

core::WorkloadRunner micro_runner() {
  return [](Engine& e, double s) {
    e.count(micro_job(static_cast<std::size_t>(6000 * s)), kWorkload);
  };
}

/// In-memory sink capturing the controller's decision events.
class CaptureSink final : public obs::TraceSink {
 public:
  void append(const obs::Event& e) override {
    if (e.kind == obs::EventKind::kPlanUpdate ||
        e.kind == obs::EventKind::kModelRefit) {
      std::lock_guard lock(mu_);
      events_.push_back(e);
    }
  }
  std::vector<obs::Event> events() const {
    std::lock_guard lock(mu_);
    return events_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<obs::Event> events_;
};

TEST(AdaptiveController, InitialPlanRoundTripsThroughAdaptedConfig) {
  common::KvConfig initial;
  initial.set("stage.42.partitioner", "range");
  initial.set_int("stage.42.partitions", 120);
  initial.set_int("stage.42.repartition", 1);
  initial.set_int("stage.42.p_min", 60);
  initial.set("stage.7.partitioner", "hash");
  initial.set_int("stage.7.partitions", 16);

  core::Chopper chopper(ClusterSpec::uniform(2, 4), micro_options());
  AdaptiveController controller(chopper, kWorkload,
                                std::make_shared<core::ConfigPlanProvider>(),
                                initial);
  const core::ParsedPlan out =
      core::parse_plan_config(controller.adapted_config());
  ASSERT_EQ(out.schemes.size(), 2u);
  EXPECT_EQ(out.schemes.at(42).kind, engine::PartitionerKind::kRange);
  EXPECT_EQ(out.schemes.at(42).num_partitions, 120u);
  EXPECT_TRUE(out.insert_repartition.at(42));
  EXPECT_EQ(out.p_min.at(42), 60u);
  EXPECT_EQ(out.schemes.at(7).kind, engine::PartitionerKind::kHash);
  EXPECT_EQ(out.schemes.at(7).num_partitions, 16u);
}

TEST(AdaptiveController, PerJobGatingFollowsOverridesAndDefault) {
  core::Chopper chopper(ClusterSpec::uniform(2, 4), micro_options());
  AdaptiveController controller(chopper, kWorkload,
                                std::make_shared<core::ConfigPlanProvider>(),
                                common::KvConfig{});
  controller.set_default_enabled(false);
  controller.set_job_enabled("tenant-b", true);

  const auto stage_end = [](std::uint64_t job) {
    obs::Event e;
    e.kind = obs::EventKind::kStageEnd;
    e.job = job;
    e.signature = 99;
    e.num_partitions = 8;
    e.bytes_in = 1 << 20;
    e.sim_time_s = 1.0;
    return e;
  };
  const auto submit = [](std::uint64_t job, const std::string& name) {
    obs::Event e;
    e.kind = obs::EventKind::kJobSubmit;
    e.job = job;
    e.name = name;
    return e;
  };

  controller.append(submit(1, "tenant-a"));  // follows default: disabled
  controller.append(stage_end(1));
  EXPECT_EQ(controller.stats().observations, 0u);

  controller.append(submit(2, "tenant-b"));  // explicit opt-in wins
  controller.append(stage_end(2));
  EXPECT_EQ(controller.stats().observations, 1u);

  // A job never announced via kJobSubmit follows the default gate.
  controller.append(stage_end(3));
  EXPECT_EQ(controller.stats().observations, 1u);

  controller.set_default_enabled(true);
  controller.append(stage_end(4));
  EXPECT_EQ(controller.stats().observations, 2u);
}

TEST(AdaptiveController, FeasibilityAdoptionLiftsPartitionFloor) {
  // Profile small, then run 3x larger on a cluster sized so the frozen
  // plan's load partitions exceed the per-slot memory ceiling.
  core::Chopper profiler(ClusterSpec::uniform(4, 4), micro_options());
  const double input_bytes = profiler.profile(kWorkload, micro_runner(), 1.0);
  const auto plan = profiler.plan(kWorkload, input_bytes);
  ASSERT_FALSE(plan.empty());
  const common::KvConfig frozen = profiler.plan_config(plan);
  const std::string db_path = ::testing::TempDir() + "/adapt_feas_db.jsonl";
  profiler.save_db(db_path);

  const std::size_t big_rows = 18'000;
  engine::EngineOptions probe_opts = micro_options().engine_options;
  Engine probe(ClusterSpec::uniform(4, 4), probe_opts);
  probe.set_plan_provider(std::make_shared<core::ConfigPlanProvider>(frozen));
  probe.count(micro_job(big_rows), kWorkload);
  std::uint64_t w = 0;
  std::uint64_t load_sig = 0;
  for (const auto& sm : probe.metrics().stages()) {
    if (sm.anchor_op == engine::OpKind::kSource) load_sig = sm.signature;
    for (const auto& t : sm.tasks) w = std::max(w, t.bytes_in + t.bytes_out);
  }
  ASSERT_GT(w, 0u);

  // Per-slot OOM ceiling is (memory_bytes / cores) * hard_ceiling; size it
  // at 70% of the probed working set so the frozen P OOMs and the grown
  // count fits.
  std::vector<engine::NodeSpec> nodes = ClusterSpec::uniform(4, 4).nodes();
  for (auto& node : nodes) {
    node.memory_bytes = static_cast<std::uint64_t>(
        0.7 * static_cast<double>(w) / probe_opts.cost_model.data_scale *
        static_cast<double>(node.cores));
  }
  const ClusterSpec starved(nodes);
  engine::EngineOptions enforced = probe_opts;
  enforced.memory.enforce = true;
  enforced.memory.oom_repartition_after = 1;

  core::Chopper online(starved, micro_options());
  online.load_db(db_path);
  auto provider = std::make_shared<core::ConfigPlanProvider>(frozen);
  auto controller = std::make_shared<AdaptiveController>(online, kWorkload,
                                                         provider, frozen);
  auto capture = std::make_shared<CaptureSink>();
  obs::EventLog log;
  log.attach(capture);
  log.attach(controller);
  controller->set_event_log(&log);

  // Round 1: the stale plan OOMs, the engine grows the stage, and the
  // controller adopts the engine-proven floor at the stage barrier.
  Engine round1(starved, enforced);
  round1.set_plan_provider(provider);
  round1.set_event_log(&log);
  const auto r1 = round1.count(micro_job(big_rows), kWorkload);
  EXPECT_GT(r1.oom_count, 0u);
  const AdaptStats stats = controller->stats();
  EXPECT_GE(stats.oom_records, 1u);
  ASSERT_GE(stats.replans, 1u);

  std::size_t committed_p = 0;
  for (const auto& sm : round1.metrics().stages()) {
    if (sm.signature == load_sig) committed_p = sm.num_partitions;
  }
  const core::ParsedPlan adapted =
      core::parse_plan_config(controller->adapted_config());
  ASSERT_TRUE(adapted.schemes.count(load_sig));
  EXPECT_GE(adapted.schemes.at(load_sig).num_partitions, committed_p);

  // The adopted decision is logged as a feasibility-motivated kPlanUpdate.
  bool saw_floor_update = false;
  for (const auto& e : capture->events()) {
    if (e.kind == obs::EventKind::kPlanUpdate && e.signature == load_sig &&
        (e.flags & obs::kFlagOom) != 0) {
      saw_floor_update = true;
      EXPECT_GE(e.num_partitions, committed_p);
    }
  }
  EXPECT_TRUE(saw_floor_update);

  // Round 2 starts from the patched provider: no OOM-grow retries re-paid.
  Engine round2(starved, enforced);
  round2.set_plan_provider(provider);
  round2.set_event_log(&log);
  const auto r2 = round2.count(micro_job(big_rows), kWorkload);
  EXPECT_EQ(r2.oom_count, 0u);
  EXPECT_LT(r2.sim_time_s, r1.sim_time_s);
  log.detach_all();
}

TEST(AdaptiveController, EpsilonGateSuppressesCostChurn) {
  core::Chopper profiler(ClusterSpec::uniform(2, 4), micro_options());
  const double input_bytes = profiler.profile(kWorkload, micro_runner(), 1.0);
  const common::KvConfig frozen =
      profiler.plan_config(profiler.plan(kWorkload, input_bytes));
  const std::string db_path = ::testing::TempDir() + "/adapt_eps_db.jsonl";
  profiler.save_db(db_path);

  core::Chopper online(ClusterSpec::uniform(2, 4), micro_options());
  online.load_db(db_path);
  auto provider = std::make_shared<core::ConfigPlanProvider>(frozen);
  AdaptOptions aopts;
  aopts.epsilon = 10.0;  // no finite improvement can pass the gate
  auto controller = std::make_shared<AdaptiveController>(online, kWorkload,
                                                         provider, frozen,
                                                         aopts);
  obs::EventLog log;
  log.attach(controller);
  controller->set_event_log(&log);

  for (int round = 0; round < 2; ++round) {
    Engine eng(ClusterSpec::uniform(2, 4), micro_options().engine_options);
    eng.set_plan_provider(provider);
    eng.set_event_log(&log);
    eng.count(micro_job(6000), kWorkload);
  }
  log.detach_all();

  const AdaptStats stats = controller->stats();
  EXPECT_GT(stats.observations, 0u);
  EXPECT_GT(stats.sweeps, 0u);
  EXPECT_EQ(stats.replans, 0u);
  EXPECT_EQ(stats.stages_adopted, 0u);
  // The deployed plan is untouched.
  const core::ParsedPlan before = core::parse_plan_config(frozen);
  const core::ParsedPlan after =
      core::parse_plan_config(controller->adapted_config());
  ASSERT_EQ(after.schemes.size(), before.schemes.size());
  for (const auto& [sig, scheme] : before.schemes) {
    ASSERT_TRUE(after.schemes.count(sig));
    EXPECT_EQ(after.schemes.at(sig).kind, scheme.kind);
    EXPECT_EQ(after.schemes.at(sig).num_partitions, scheme.num_partitions);
  }
}

TEST(AdaptiveController, PureObserverKeepsExecutionBitIdentical) {
  Engine plain(ClusterSpec::uniform(2, 4), micro_options().engine_options);
  const auto res_plain = plain.count(micro_job(6000), kWorkload);

  core::Chopper online(ClusterSpec::uniform(2, 4), micro_options());
  auto controller = std::make_shared<AdaptiveController>(
      online, kWorkload, std::make_shared<core::ConfigPlanProvider>(),
      common::KvConfig{});
  obs::EventLog log;
  log.attach(controller);
  controller->set_event_log(&log);
  Engine observed(ClusterSpec::uniform(2, 4), micro_options().engine_options);
  observed.set_event_log(&log);
  const auto res_observed = observed.count(micro_job(6000), kWorkload);
  log.detach_all();

  EXPECT_EQ(res_observed.count, res_plain.count);
  EXPECT_EQ(res_observed.sim_time_s, res_plain.sim_time_s);
  const auto stages_plain = plain.metrics().stages();
  const auto stages_observed = observed.metrics().stages();
  ASSERT_EQ(stages_observed.size(), stages_plain.size());
  for (std::size_t i = 0; i < stages_plain.size(); ++i) {
    EXPECT_EQ(stages_observed[i].sim_time_s, stages_plain[i].sim_time_s);
    EXPECT_EQ(stages_observed[i].num_partitions,
              stages_plain[i].num_partitions);
  }
}

}  // namespace
}  // namespace chopper::adapt
