// Concurrency suite (ctest -L tsan): the adaptive controller folding a
// multi-tenant JobServer's live event stream while clients submit from many
// threads and readers poll stats()/adapted_config()/current_plan(). The
// data-race surface the TSan lane exists for: controller mutex vs engine
// worker threads vs the service layer's epoch-keyed plan cache.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adapt/adaptive.h"
#include "chopper/chopper.h"
#include "chopper/config_plan.h"
#include "engine/engine.h"
#include "obs/event_log.h"
#include "service/job_server.h"

namespace chopper::adapt {
namespace {

using engine::ClusterSpec;
using engine::Dataset;
using engine::DatasetPtr;
using engine::Engine;

constexpr const char* kWorkload = "adapt_serve";

DatasetPtr micro_job(std::size_t rows) {
  auto src = Dataset::source(
      "serve.load", 8, [rows](std::size_t index, std::size_t count) {
        engine::Partition p;
        const std::size_t begin = rows * index / count;
        const std::size_t end = rows * (index + 1) / count;
        for (std::size_t i = begin; i < end; ++i) {
          const double vals[2] = {1.0, static_cast<double>(i % 17)};
          p.emplace(i % 64, vals, 2, 64);
        }
        return p;
      });
  return src->reduce_by_key(
      "serve.sum",
      [](engine::Record& acc, const engine::Record& next) {
        acc.values[0] += next.values[0];
        acc.values[1] += next.values[1];
      },
      {}, 2.0);
}

core::ChopperOptions micro_options() {
  core::ChopperOptions o;
  o.engine_options.default_parallelism = 8;
  o.engine_options.host_threads = 4;
  o.profile_partitions = {8, 16};
  o.profile_fractions = {1.0};
  o.profile_both_partitioners = false;
  return o;
}

TEST(AdaptConcurrent, ServeWithControllerUnderConcurrentSubmitters) {
  // Profile once so mid-serve re-sweeps have a DAG and trained models.
  core::Chopper profiler(ClusterSpec::uniform(2, 4), micro_options());
  const double input_bytes = profiler.profile(
      kWorkload,
      [](Engine& e, double s) {
        e.count(micro_job(static_cast<std::size_t>(4000 * s)), kWorkload);
      },
      1.0);
  const common::KvConfig frozen =
      profiler.plan_config(profiler.plan(kWorkload, input_bytes));
  const std::string db_path = ::testing::TempDir() + "/adapt_serve_db.jsonl";
  profiler.save_db(db_path);

  core::Chopper online(ClusterSpec::uniform(2, 4), micro_options());
  online.load_db(db_path);
  auto provider = std::make_shared<core::ConfigPlanProvider>(frozen);
  auto controller = std::make_shared<AdaptiveController>(online, kWorkload,
                                                         provider, frozen);
  obs::EventLog log;
  log.attach(controller);
  controller->set_event_log(&log);

  Engine eng(ClusterSpec::uniform(2, 4), micro_options().engine_options);
  eng.set_plan_provider(provider);
  eng.set_event_log(&log);

  service::JobServerOptions sopts;
  sopts.mode = service::SchedulingMode::kFair;
  sopts.max_concurrent_jobs = 4;
  service::JobServer server(eng, sopts);
  server.set_adaptive(controller);

  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 3;
  std::atomic<int> failures{0};
  std::atomic<bool> stop_reader{false};

  // Reader thread hammers the epoch-keyed plan cache and the controller's
  // snapshot accessors while jobs execute.
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_relaxed)) {
      (void)server.current_plan();
      (void)controller->stats();
      (void)controller->adapted_config();
      (void)controller->refit_epoch();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        service::SubmitOptions o;
        o.name = kWorkload;
        o.pool = t % 2 == 0 ? "even" : "odd";
        o.adapt = t % 2 == 0;  // half the tenants opt in
        try {
          auto h = server.submit(micro_job(4000), o);
          const auto res = h.wait();
          if (res.count == 0) failures.fetch_add(1);
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  server.wait_all();
  stop_reader.store(true, std::memory_order_relaxed);
  reader.join();
  log.detach_all();

  EXPECT_EQ(failures.load(), 0);
  const AdaptStats stats = controller->stats();
  // Only the opted-in tenants' stages fold (2 stages per job).
  EXPECT_GT(stats.observations, 0u);
  EXPECT_LE(stats.observations,
            static_cast<std::size_t>(kThreads * kJobsPerThread * 2));
  // The service plan cache serves a coherent snapshot after the run.
  const common::KvConfig plan = server.current_plan();
  const core::ParsedPlan parsed = core::parse_plan_config(plan);
  for (const auto& [sig, scheme] : parsed.schemes) {
    EXPECT_GT(scheme.num_partitions, 0u) << "stage " << sig;
  }
}

}  // namespace
}  // namespace chopper::adapt
