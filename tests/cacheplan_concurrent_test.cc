// Concurrency suite (ctest -L tsan): the cache planner advising a
// multi-tenant JobServer while submitters run cached jobs from many threads
// under a storage budget tight enough to churn evict + heal. The data-race
// surface: planner mutex vs the engine's planning path, the eviction scan
// vs concurrent block heals, and readers polling planner / block-manager
// snapshots while both mutate.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cacheplan/cacheplan.h"
#include "engine/block_manager.h"
#include "engine/engine.h"
#include "obs/event_log.h"
#include "obs/sinks.h"
#include "service/job_server.h"

namespace chopper::cacheplan {
namespace {

using engine::ClusterSpec;
using engine::Dataset;
using engine::DatasetPtr;
using engine::Engine;
using engine::EngineOptions;
using engine::EvictionPolicy;

constexpr std::size_t kRows = 2000;

DatasetPtr cached_rows(const std::string& label, std::uint64_t salt) {
  return Dataset::source(label, 8,
                         [salt](std::size_t index, std::size_t count) {
                           engine::Partition p;
                           const std::size_t begin = kRows * index / count;
                           const std::size_t end = kRows * (index + 1) / count;
                           for (std::size_t i = begin; i < end; ++i) {
                             engine::Record r;
                             r.key = i;
                             r.values = {static_cast<double>(i ^ salt)};
                             p.push(std::move(r));
                           }
                           return p;
                         })
      ->cache();
}

TEST(CachePlanConcurrent, ServeWithPlannerUnderConcurrentSubmitters) {
  EngineOptions opts;
  opts.default_parallelism = 8;
  opts.host_threads = 4;
  opts.memory.enforce = true;
  // Storage holds roughly half the tenants' cached working sets, so jobs
  // continuously evict each other's blocks and heal their own; a huge task
  // ceiling keeps OOM out of the picture.
  opts.memory.storage_fraction = 0.1;
  opts.memory.shuffle_fraction = 1.0;
  opts.memory.hard_ceiling = 1000.0;
  Engine eng(ClusterSpec({
                 {"n0", 4, 1.0, 1ULL << 21, 1.25e9},
                 {"n1", 4, 1.0, 1ULL << 21, 1.25e9},
             }),
             opts);

  // Concurrent wiring plans structurally: no WorkloadDb attached (see the
  // cacheplan.h threading contract).
  auto planner = std::make_shared<CachePlanner>();
  planner->set_pool_shares({{"iter", 0.5}, {"scan", 0.5}});
  obs::EventLog log;
  const std::string events_path =
      ::testing::TempDir() + "/cacheplan_serve_events.jsonl";
  log.attach(std::make_shared<obs::JsonlFileSink>(events_path));
  planner->set_event_log(&log);
  eng.set_event_log(&log);
  eng.set_cache_advisor(planner);
  eng.block_manager().set_eviction_policy(EvictionPolicy::kCost);

  service::JobServerOptions sopts;
  sopts.mode = service::SchedulingMode::kFair;
  sopts.max_concurrent_jobs = 4;
  service::JobServer server(eng, sopts);

  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 3;
  std::vector<DatasetPtr> tenant_data;
  for (int t = 0; t < kThreads; ++t) {
    tenant_data.push_back(
        cached_rows("cc.data#" + std::to_string(t), 1000 + t));
    for (int j = 0; j < kJobsPerThread; ++j) {
      const std::string name =
          "cc-" + std::to_string(t) + "-" + std::to_string(j);
      planner->set_job_pool(name, t % 2 == 0 ? "iter" : "scan");
    }
  }

  std::atomic<int> failures{0};
  std::atomic<bool> stop_reader{false};

  // Reader thread hammers planner snapshots and block-manager accessors
  // while the eviction scan and job heals mutate the same state.
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_relaxed)) {
      (void)planner->last_plan();
      (void)planner->decisions_made();
      (void)eng.block_manager().total_bytes();
      (void)eng.block_manager().used_bytes(0);
      for (const auto& d : tenant_data) {
        (void)eng.block_manager().guidance_for(d->id());
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        service::SubmitOptions o;
        o.name = "cc-" + std::to_string(t) + "-" + std::to_string(j);
        o.pool = t % 2 == 0 ? "iter" : "scan";
        try {
          auto h = server.submit(tenant_data[t], o);
          if (h.wait().count != kRows) failures.fetch_add(1);
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  server.wait_all();
  stop_reader.store(true, std::memory_order_relaxed);
  reader.join();
  log.detach_all();

  EXPECT_EQ(failures.load(), 0);
  // Every job consulted the planner; each scored its tenant's dataset.
  EXPECT_GE(planner->decisions_made(),
            static_cast<std::size_t>(kThreads * kJobsPerThread));
  for (int t = 0; t < kThreads; ++t) {
    const auto g = eng.block_manager().guidance_for(tenant_data[t]->id());
    ASSERT_TRUE(g.has_value()) << "tenant " << t;
    EXPECT_EQ(g->pool, t % 2 == 0 ? "iter" : "scan");
  }
}

}  // namespace
}  // namespace chopper::cacheplan
