// Cache-plan subsystem (DESIGN.md §17): planner scoring (Drop/Cache/Pin),
// config round-trip, deterministic cost-aware victim ordering vs LRU, tenant
// pool floors, planner-pinned survival through budget pressure and the OOM
// retry path, and bit-identical results after evict + lineage heal.
#include <gtest/gtest.h>

#include <algorithm>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "cacheplan/cacheplan.h"
#include "chopper/workload_db.h"
#include "engine/block_manager.h"
#include "engine/engine.h"
#include "engine/plan.h"

namespace chopper::cacheplan {
namespace {

using engine::BlockManager;
using engine::CachedDataset;
using engine::ClusterSpec;
using engine::Dataset;
using engine::DatasetPtr;
using engine::Engine;
using engine::EngineOptions;
using engine::EvictionPolicy;
using engine::MemoryLedger;
using engine::Partition;
using engine::Record;

EngineOptions small_options() {
  EngineOptions o;
  o.default_parallelism = 8;
  o.host_threads = 4;
  return o;
}

/// Engine tests run with data_scale 1, so raw bytes == modeled bytes here.
ClusterSpec two_nodes(std::uint64_t memory_bytes, std::size_t cores = 2) {
  return ClusterSpec({
      {"n0", cores, 1.0, memory_bytes, 1.25e9},
      {"n1", cores, 1.0, memory_bytes, 1.25e9},
  });
}

/// All partitions on node 0 so one budget knob controls everything.
CachedDataset make_cached(std::size_t partitions, std::size_t records_each) {
  CachedDataset d;
  d.partitions.resize(partitions);
  for (std::size_t p = 0; p < partitions; ++p) {
    for (std::size_t i = 0; i < records_each; ++i) {
      Record r;
      r.key = p * records_each + i;
      r.values = {1.0};
      d.partitions[p].push(std::move(r));
    }
    d.placement.push_back(0);
    d.bytes += d.partitions[p].bytes();
  }
  d.available.assign(partitions, 1);
  return d;
}

DatasetPtr iota(const std::string& label, std::size_t records,
                std::uint64_t salt) {
  return Dataset::source(label, 8, [=](std::size_t index, std::size_t count) {
    Partition p;
    const std::size_t begin = records * index / count;
    const std::size_t end = records * (index + 1) / count;
    for (std::size_t i = begin; i < end; ++i) {
      Record r;
      r.key = i;
      r.values = {static_cast<double>(i ^ salt)};
      p.push(std::move(r));
    }
    return p;
  });
}

std::vector<std::pair<std::uint64_t, double>> sorted_kv(
    const std::vector<Record>& records) {
  std::vector<std::pair<std::uint64_t, double>> out;
  out.reserve(records.size());
  for (const auto& r : records) out.emplace_back(r.key, r.values.at(0));
  std::sort(out.begin(), out.end());
  return out;
}

core::Observation default_obs(std::uint64_t signature, double t_exe_s) {
  core::Observation o;
  o.workload = "wl";
  o.signature = signature;
  o.num_partitions = 8.0;
  o.t_exe_s = t_exe_s;
  o.is_default = true;
  return o;
}

// ---------------------------------------------------------------------------
// CachePlan config attachment.
// ---------------------------------------------------------------------------

TEST(CachePlanConfig, RoundTripsThroughKvConfig) {
  CachePlan plan;
  plan.decisions.push_back(
      {11, 0xabcdULL, "hot", CacheAction::kPin, 96.0, 32.0, 3.0, "iter"});
  plan.decisions.push_back(
      {12, 0x1234ULL, "cold", CacheAction::kDrop, -0.5, 1.0, 0.0, "scan"});
  plan.pool_share = {{"iter", 2.0 / 3.0}, {"scan", 1.0 / 3.0}};

  const CachePlan back = CachePlan::from_config(plan.to_config());
  ASSERT_EQ(back.decisions.size(), 2u);
  // from_config orders by signature.
  const CacheDecision& cold = back.decisions.front().signature == 0x1234ULL
                                  ? back.decisions.front()
                                  : back.decisions.back();
  const CacheDecision& hot = back.decisions.front().signature == 0xabcdULL
                                 ? back.decisions.front()
                                 : back.decisions.back();
  EXPECT_EQ(hot.action, CacheAction::kPin);
  EXPECT_DOUBLE_EQ(hot.priority, 96.0);
  EXPECT_DOUBLE_EQ(hot.expected_reuse, 3.0);
  EXPECT_EQ(hot.pool, "iter");
  EXPECT_EQ(cold.action, CacheAction::kDrop);
  EXPECT_DOUBLE_EQ(cold.priority, -0.5);
  EXPECT_EQ(cold.pool, "scan");
  EXPECT_DOUBLE_EQ(back.pool_share.at("iter"), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(back.pool_share.at("scan"), 1.0 / 3.0);

  // Partition-plan stage keys share the config file and are ignored
  // symmetrically (and vice versa for parse_plan_config).
  common::KvConfig mixed = plan.to_config();
  mixed.set("stage.777.partitions", "300");
  EXPECT_EQ(CachePlan::from_config(mixed).decisions.size(), 2u);
}

// ---------------------------------------------------------------------------
// Cost-aware victim ordering (BlockManager level).
// ---------------------------------------------------------------------------

/// Datasets 1..4 with guidance {1: Drop, 2: unplanned, 3: prio 5, 4: prio
/// 50}; dataset 5 planner-pinned. Under kCost the eviction order must be
/// 1 (drop class), 2 (unplanned), 3, 4 — and never 5 — regardless of
/// recency. Returns ids in the order they became incomplete.
std::vector<std::size_t> cost_eviction_order() {
  MemoryLedger ledger;
  ledger.init(1);
  BlockManager bm;
  bm.set_eviction_policy(EvictionPolicy::kCost);
  for (std::size_t id = 1; id <= 5; ++id) bm.put(id, make_cached(2, 8));

  engine::CachePlanSnapshot snap;
  snap.guidance[1] = {-0.5, false, ""};
  snap.guidance[3] = {5.0, false, ""};
  snap.guidance[4] = {50.0, false, ""};
  snap.guidance[5] = {1.0, true, ""};
  bm.merge_cache_plan(snap);

  // Make the Drop dataset the most recently used: LRU would spare it, the
  // cost policy must not.
  { const auto touch = bm.pin(1); }

  const std::uint64_t unit = bm.used_bytes(0) / 5;
  std::vector<std::size_t> order;
  std::vector<bool> gone(6, false);
  for (int fit = 4; fit >= 0; --fit) {  // shrink: 4, 3, 2, 1, 0 datasets
    bm.configure_budget({unit * static_cast<std::uint64_t>(fit)}, &ledger,
                        1.0);
    bm.enforce_budget();
    for (std::size_t id = 1; id <= 5; ++id) {
      const auto pin = bm.pin(id);
      if (pin && !pin->complete() && !gone[id]) {
        gone[id] = true;
        order.push_back(id);
      }
    }
  }
  return order;
}

TEST(CostEviction, VictimOrderIsCostAwareAndDeterministic) {
  const std::vector<std::size_t> order = cost_eviction_order();
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 3, 4}));
  // An identical sequence of puts/plans/budgets makes identical decisions.
  EXPECT_EQ(cost_eviction_order(), order);
}

TEST(CostEviction, LruOrderIgnoresPlanPriorities) {
  MemoryLedger ledger;
  ledger.init(1);
  BlockManager bm;  // default kLru
  bm.put(1, make_cached(2, 8));
  bm.put(2, make_cached(2, 8));
  engine::CachePlanSnapshot snap;
  snap.guidance[1] = {1000.0, false, ""};  // high priority, but LRU-oldest
  bm.merge_cache_plan(snap);

  const std::uint64_t unit = bm.used_bytes(0) / 2;
  bm.configure_budget({unit}, &ledger, 1.0);
  bm.enforce_budget();
  const auto p1 = bm.pin(1);
  const auto p2 = bm.pin(2);
  ASSERT_TRUE(p1);
  ASSERT_TRUE(p2);
  EXPECT_FALSE(p1->complete());  // oldest went first, plan ignored under LRU
  EXPECT_TRUE(p2->complete());
}

TEST(CostEviction, PoolFloorDefersProtectedTenant) {
  MemoryLedger ledger;
  ledger.init(1);
  BlockManager bm;
  bm.set_eviction_policy(EvictionPolicy::kCost);
  bm.put(1, make_cached(2, 4));   // small, pool "iter"
  bm.put(2, make_cached(2, 32));  // large, pool "scan"

  // Pool "iter" holds the *cheaper* dataset but sits below its floor
  // (0.9 x budget); pool "scan" has no floor. The floor must win over the
  // priority order, which would otherwise evict dataset 1 first.
  engine::CachePlanSnapshot snap;
  snap.guidance[1] = {1.0, false, "iter"};
  snap.guidance[2] = {100.0, false, "scan"};
  snap.pool_share = {{"iter", 0.9}};
  bm.merge_cache_plan(snap);

  const std::uint64_t cap = bm.pin(2)->bytes;  // fits the large dataset only
  bm.configure_budget({cap}, &ledger, 1.0);
  bm.enforce_budget();
  const auto p1 = bm.pin(1);
  const auto p2 = bm.pin(2);
  ASSERT_TRUE(p1);
  ASSERT_TRUE(p2);
  EXPECT_TRUE(p1->complete());   // protected by the tenant floor
  EXPECT_FALSE(p2->complete());  // higher priority, but unprotected
}

TEST(CostEviction, PlannerPinnedSurvivesZeroBudget) {
  MemoryLedger ledger;
  ledger.init(1);
  BlockManager bm;
  bm.set_eviction_policy(EvictionPolicy::kCost);
  bm.put(1, make_cached(2, 8));
  engine::CachePlanSnapshot snap;
  snap.guidance[1] = {10.0, true, ""};
  bm.merge_cache_plan(snap);

  bm.configure_budget({0}, &ledger, 1.0);
  bm.enforce_budget();
  const auto p1 = bm.pin(1);
  ASSERT_TRUE(p1);
  EXPECT_TRUE(p1->complete());
  EXPECT_EQ(ledger.total_evicted(), 0u);
}

// ---------------------------------------------------------------------------
// Planner scoring.
// ---------------------------------------------------------------------------

TEST(CachePlannerScore, DropCacheAndPinFallOutOfTheScore) {
  // Cheap cached source -> Drop; expensive cached map -> Cache; the same
  // expensive dataset with recurrence history -> Pin.
  BlockManager bm;
  CachePlanner planner;
  planner.set_job_pool("job", "iter");

  auto cheap = iota("cheap", 256, 0)->cache();
  // The job root must outlive the plan: StagePlan keeps raw pointers into
  // the DAG.
  const auto cheap_job = cheap->map("read", [](const Record& r) { return r; });
  const auto cheap_plan = engine::build_job_plan(cheap_job, bm);
  planner.advise(cheap_plan, "job");
  ASSERT_EQ(planner.last_plan().decisions.size(), 1u);
  EXPECT_EQ(planner.last_plan().decisions[0].action, CacheAction::kDrop);
  EXPECT_LT(planner.last_plan().decisions[0].priority, 0.0);
  EXPECT_EQ(planner.last_plan().decisions[0].pool, "iter");

  auto hot = iota("base", 256, 1)
                 ->map(
                     "heavy", [](const Record& r) { return r; },
                     /*work_per_record=*/32.0)
                 ->cache();
  const auto hot_job = hot->map("read2", [](const Record& r) { return r; });
  const auto hot_plan = engine::build_job_plan(hot_job, bm);
  planner.advise(hot_plan, "job");
  ASSERT_EQ(planner.last_plan().decisions.size(), 1u);
  const CacheDecision structural = planner.last_plan().decisions[0];
  EXPECT_EQ(structural.action, CacheAction::kCache);
  EXPECT_GE(structural.rebuild_cost, 32.0);
  EXPECT_GT(structural.priority, 0.0);

  // Recurrence: the producing stage observed 3 times in the WorkloadDb
  // lifts expected reuse past the pin threshold (the structural rebuild
  // already exceeds pin_work), and the measured default t_exe replaces the
  // structural W in the priority.
  core::WorkloadDb db;
  for (int i = 0; i < 3; ++i) db.add(default_obs(structural.signature, 12.0));
  planner.set_workload_db(&db, "wl");
  planner.advise(hot_plan, "job");
  ASSERT_EQ(planner.last_plan().decisions.size(), 1u);
  const CacheDecision pinned = planner.last_plan().decisions[0];
  EXPECT_EQ(pinned.action, CacheAction::kPin);
  EXPECT_GE(pinned.expected_reuse, 3.0);
  EXPECT_DOUBLE_EQ(pinned.priority, 12.0 * pinned.expected_reuse);
}

TEST(CachePlannerScore, RescoreMergesRefreshedPrioritiesIntoBlockManager) {
  BlockManager bm;
  bm.set_eviction_policy(EvictionPolicy::kCost);
  CachePlanner planner;

  auto hot = iota("r.base", 256, 2)
                 ->map(
                     "r.heavy", [](const Record& r) { return r; },
                     /*work_per_record=*/32.0)
                 ->cache();
  const auto job = hot->map("r.read", [](const Record& r) { return r; });
  const auto plan = engine::build_job_plan(job, bm);
  bm.merge_cache_plan(planner.advise(plan, "job"));
  const auto before = bm.guidance_for(hot->id());
  ASSERT_TRUE(before.has_value());
  EXPECT_FALSE(before->pinned);

  // A refit lands new observations; rescore() (the adaptive controller's
  // refit listener) re-prices and promotes the dataset to Pin in place.
  core::WorkloadDb db;
  const std::uint64_t sig = planner.last_plan().decisions[0].signature;
  for (int i = 0; i < 4; ++i) db.add(default_obs(sig, 20.0));
  planner.set_workload_db(&db, "wl");
  planner.rescore(bm);
  const auto after = bm.guidance_for(hot->id());
  ASSERT_TRUE(after.has_value());
  EXPECT_TRUE(after->pinned);
  EXPECT_GT(after->priority, before->priority);
}

// ---------------------------------------------------------------------------
// Engine integration: evict + heal identity, pinned set under OOM retry.
// ---------------------------------------------------------------------------

TEST(CachePlanEngine, EvictedPlannedCacheHealsBitIdentical) {
  // Cost policy + planner wired as the engine's cache advisor. The budget
  // fits the planned hot dataset but not hot plus a cold scan: caching the
  // (planner-Dropped) scan must surrender its own blocks, and a planned
  // dataset forced out by a harsher budget heals bit-identically on read.
  auto planner = std::make_shared<CachePlanner>();

  EngineOptions opts = small_options();
  opts.memory.enforce = true;
  opts.memory.storage_fraction = 1.0;
  opts.memory.shuffle_fraction = 1.0;
  opts.memory.hard_ceiling = 1000.0;  // isolate eviction from OOM

  auto hot = iota("h.base", 2000, 0)
                 ->map(
                     "h.heavy", [](const Record& r) { return r; },
                     /*work_per_record=*/32.0)
                 ->cache();
  auto cold = iota("h.cold", 2000, 7)->cache();

  // Probe footprints unconstrained.
  Engine probe(two_nodes(1ULL << 30), opts);
  probe.set_cache_advisor(planner);
  probe.block_manager().set_eviction_policy(EvictionPolicy::kCost);
  const auto want_hot = sorted_kv(probe.collect(hot, "hot").records);
  const auto want_cold = sorted_kv(probe.collect(cold, "cold").records);
  // One dataset's bytes; a budget of 3/4 of that per node holds hot (half
  // per node) but not hot + cold.
  const std::uint64_t one = probe.block_manager().total_bytes() / 2;

  Engine eng(two_nodes(one * 3 / 4), opts);
  eng.set_cache_advisor(planner);
  eng.block_manager().set_eviction_policy(EvictionPolicy::kCost);
  EXPECT_EQ(sorted_kv(eng.collect(hot, "hot").records), want_hot);

  // The cold scan is planner-Dropped: it must give up its own blocks and
  // leave the planned hot dataset resident (LRU would evict hot here).
  EXPECT_EQ(sorted_kv(eng.collect(cold, "cold").records), want_cold);
  {
    const auto hot_pin = eng.block_manager().pin(hot->id());
    ASSERT_TRUE(hot_pin);
    EXPECT_TRUE(hot_pin->complete());
    const auto g = eng.block_manager().guidance_for(cold->id());
    ASSERT_TRUE(g.has_value());
    EXPECT_LT(g->priority, 0.0);
  }
  const auto hit = eng.collect(hot, "hot-again");
  EXPECT_EQ(sorted_kv(hit.records), want_hot);
  EXPECT_GT(hit.cache_hits, 0u);
  EXPECT_EQ(hit.cache_misses, 0u);

  // Harsher budget: force the planned dataset out too, then heal it.
  eng.block_manager().configure_budget({one / 8, one / 8}, nullptr, 1.0);
  eng.block_manager().enforce_budget();
  const auto healed = eng.collect(hot, "hot-healed");
  EXPECT_EQ(sorted_kv(healed.records), want_hot);
  EXPECT_GT(healed.cache_misses, 0u);
}

TEST(CachePlanEngine, PinnedSetSurvivesOomKillRetry) {
  // A planner-pinned working set must ride out OOM-killed attempts: the OOM
  // path kills oversized tasks (and may repartition or abort the job) but
  // never evicts the pinned blocks.
  EngineOptions opts = small_options();
  opts.memory.enforce = true;
  opts.memory.storage_fraction = 1.0;
  opts.memory.shuffle_fraction = 1.0;
  opts.memory.hard_ceiling = 0.05;  // ~52 KiB per-slot working-set ceiling
  opts.memory.oom_repartition_after = 1;
  auto hot = iota("p.base", 2000, 3)->cache();

  Engine eng(two_nodes(4ULL << 20, 4), opts);
  eng.block_manager().set_eviction_policy(EvictionPolicy::kCost);
  const auto want = sorted_kv(eng.collect(hot, "pin-load").records);
  engine::CachePlanSnapshot snap;
  snap.guidance[hot->id()] = {100.0, /*pinned=*/true, ""};
  eng.block_manager().merge_cache_plan(snap);

  // Shuffle-heavy job over the pinned data with fat map output: per-task
  // working sets (~1 MiB at P=8) blow the ceiling. Whether the adaptive
  // repartition retry eventually lands it or the attempt budget aborts the
  // job, OOM kills must have fired and the pinned set must be untouched.
  auto job = hot->map("p.fat",
                      [](const Record& r) {
                        Record out = r;
                        out.aux_bytes = 4096;
                        out.key = r.key % 997;
                        return out;
                      })
                 ->reduce_by_key("p.sum", [](Record& acc, const Record& next) {
                   acc.values[0] += next.values[0];
                 });
  try {
    eng.count(job, "pin-oom");
  } catch (const std::exception&) {
    // Aborted after the attempt budget: the engine stays usable.
  }
  EXPECT_GT(eng.memory_ledger().total_ooms(), 0u);  // the pressure was real

  const auto pin = eng.block_manager().pin(hot->id());
  ASSERT_TRUE(pin);
  EXPECT_TRUE(pin->complete());  // pinned set untouched by the OOM storm
  const auto reread = eng.collect(hot, "pin-reread");
  EXPECT_EQ(sorted_kv(reread.records), want);
  EXPECT_EQ(reread.cache_misses, 0u);
}

}  // namespace
}  // namespace chopper::cacheplan
