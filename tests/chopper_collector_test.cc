// Statistics collector: engine metrics -> workload DB observations.
#include "chopper/collector.h"

#include <gtest/gtest.h>

#include "engine/engine.h"

namespace chopper::core {
namespace {

engine::DatasetPtr two_stage_job() {
  return engine::Dataset::source("gen", 4,
                                 [](std::size_t index, std::size_t count) {
                                   engine::Partition p;
                                   const std::size_t total = 1000;
                                   const std::size_t begin = total * index / count;
                                   const std::size_t end =
                                       total * (index + 1) / count;
                                   for (std::size_t i = begin; i < end; ++i) {
                                     engine::Record r;
                                     r.key = i % 16;
                                     r.values = {1.0};
                                     p.push(std::move(r));
                                   }
                                   return p;
                                 })
      ->reduce_by_key("sum", [](engine::Record& acc,
                                const engine::Record& next) {
        acc.values[0] += next.values[0];
      });
}

TEST(Collector, IngestsOneObservationPerStage) {
  engine::EngineOptions opts;
  opts.default_parallelism = 8;
  opts.host_threads = 2;
  engine::Engine eng(engine::ClusterSpec::uniform(2, 4), opts);
  eng.count(two_stage_job());

  WorkloadDb db;
  StatsCollector collector(db);
  const double input =
      collector.ingest(eng.metrics(), "test", 0.0, /*is_default=*/true);

  EXPECT_GT(input, 0.0);
  EXPECT_EQ(db.total_observations(), 2u);
  const auto dag = db.dag("test");
  ASSERT_EQ(dag.size(), 2u);
  EXPECT_EQ(dag[0].anchor_op, engine::OpKind::kSource);
  EXPECT_EQ(dag[1].anchor_op, engine::OpKind::kReduceByKey);
  ASSERT_EQ(dag[1].parents.size(), 1u);
  EXPECT_EQ(*dag[1].parents.begin(), dag[0].signature);
}

TEST(Collector, MeasuresWorkloadInputFromSources) {
  engine::EngineOptions opts;
  opts.default_parallelism = 8;
  opts.host_threads = 2;
  engine::Engine eng(engine::ClusterSpec::uniform(2, 4), opts);
  eng.count(two_stage_job());

  WorkloadDb db;
  StatsCollector collector(db);
  const double measured = collector.ingest(eng.metrics(), "test", 0.0, false);
  const double explicit_bytes = 12345.0;
  const double given =
      collector.ingest(eng.metrics(), "test2", explicit_bytes, false);
  EXPECT_DOUBLE_EQ(given, explicit_bytes);
  // Measured input equals the source stage's input bytes.
  EXPECT_DOUBLE_EQ(measured,
                   static_cast<double>(eng.metrics().stages()[0].input_bytes));
}

TEST(Collector, DefaultFlagPropagates) {
  engine::EngineOptions opts;
  opts.default_parallelism = 8;
  opts.host_threads = 2;
  engine::Engine eng(engine::ClusterSpec::uniform(2, 4), opts);
  eng.count(two_stage_job());

  WorkloadDb db;
  StatsCollector collector(db);
  collector.ingest(eng.metrics(), "w", 0.0, /*is_default=*/true);
  const auto sig = db.dag("w")[1].signature;
  EXPECT_DOUBLE_EQ(db.default_partitions("w", sig), 8.0);
}

TEST(Collector, RepeatedIngestAccumulates) {
  engine::EngineOptions opts;
  opts.default_parallelism = 8;
  opts.host_threads = 2;
  engine::Engine eng(engine::ClusterSpec::uniform(2, 4), opts);
  eng.count(two_stage_job());

  WorkloadDb db;
  StatsCollector collector(db);
  collector.ingest(eng.metrics(), "w", 0.0, true);
  collector.ingest(eng.metrics(), "w", 0.0, false);
  EXPECT_EQ(db.total_observations(), 4u);
  // Structure merged, not duplicated.
  EXPECT_EQ(db.dag("w").size(), 2u);
  EXPECT_EQ(db.dag("w")[0].input_ratio_count, 2u);
}

}  // namespace
}  // namespace chopper::core
