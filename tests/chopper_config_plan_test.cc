#include "chopper/config_plan.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace chopper::core {
namespace {

PlannedStage planned(std::uint64_t sig, engine::PartitionerKind kind,
                     std::size_t p, bool repartition = false) {
  PlannedStage ps;
  ps.signature = sig;
  ps.name = "s" + std::to_string(sig);
  ps.partitioner = kind;
  ps.num_partitions = p;
  ps.insert_repartition = repartition;
  return ps;
}

TEST(PlanConfig, SerializationFormatMatchesFig6) {
  const auto cfg = plan_to_config(
      {planned(42, engine::PartitionerKind::kRange, 210)});
  EXPECT_EQ(cfg.get("stage.42.partitioner"), "range");
  EXPECT_EQ(cfg.get_int("stage.42.partitions"), 210);
  EXPECT_FALSE(cfg.contains("stage.42.repartition"));
}

TEST(PlanConfig, RepartitionMarkSerialized) {
  const auto cfg = plan_to_config(
      {planned(7, engine::PartitionerKind::kHash, 100, /*repartition=*/true)});
  EXPECT_EQ(cfg.get_int("stage.7.repartition"), 1);
}

TEST(PlanConfig, ParseRoundTrip) {
  const auto cfg = plan_to_config({
      planned(1, engine::PartitionerKind::kHash, 300),
      planned(2, engine::PartitionerKind::kRange, 720, true),
  });
  const auto parsed = parse_plan_config(cfg);
  ASSERT_EQ(parsed.schemes.size(), 2u);
  EXPECT_EQ(parsed.schemes.at(1).kind, engine::PartitionerKind::kHash);
  EXPECT_EQ(parsed.schemes.at(1).num_partitions, 300u);
  EXPECT_EQ(parsed.schemes.at(2).kind, engine::PartitionerKind::kRange);
  EXPECT_TRUE(parsed.insert_repartition.at(2));
}

TEST(PlanConfig, ParseRejectsUnknownField) {
  common::KvConfig cfg;
  cfg.set("stage.1.bogus", "x");
  EXPECT_THROW(parse_plan_config(cfg), std::runtime_error);
}

TEST(PlanConfig, ParseIgnoresForeignKeys) {
  common::KvConfig cfg;
  cfg.set("spark.default.parallelism", "300");
  cfg.set("stage.5.partitions", "100");
  cfg.set("stage.5.partitioner", "hash");
  const auto parsed = parse_plan_config(cfg);
  EXPECT_EQ(parsed.schemes.size(), 1u);
}

TEST(ConfigPlanProvider, ServesSchemes) {
  ConfigPlanProvider provider(plan_to_config(
      {planned(11, engine::PartitionerKind::kRange, 210)}));
  const auto scheme = provider.scheme_for(11);
  ASSERT_TRUE(scheme.has_value());
  EXPECT_EQ(scheme->kind, engine::PartitionerKind::kRange);
  EXPECT_EQ(scheme->num_partitions, 210u);
  EXPECT_FALSE(provider.scheme_for(99).has_value());
  EXPECT_EQ(provider.size(), 1u);
}

TEST(ConfigPlanProvider, ZeroPartitionEntriesAreIgnored) {
  common::KvConfig cfg;
  cfg.set("stage.3.partitioner", "hash");  // partitions never set
  ConfigPlanProvider provider(cfg);
  EXPECT_FALSE(provider.scheme_for(3).has_value());
}

TEST(ConfigPlanProvider, DynamicUpdateReplacesPlan) {
  ConfigPlanProvider provider(plan_to_config(
      {planned(1, engine::PartitionerKind::kHash, 100)}));
  provider.update(plan_to_config(
      {planned(2, engine::PartitionerKind::kHash, 50)}));
  EXPECT_FALSE(provider.scheme_for(1).has_value());
  ASSERT_TRUE(provider.scheme_for(2).has_value());
  EXPECT_EQ(provider.scheme_for(2)->num_partitions, 50u);
}

TEST(ConfigPlanProvider, ReloadFromFile) {
  const std::string path = ::testing::TempDir() + "/plan_provider_test.conf";
  plan_to_config({planned(8, engine::PartitionerKind::kHash, 640, true)})
      .save(path);
  ConfigPlanProvider provider;
  provider.reload(path);
  ASSERT_TRUE(provider.scheme_for(8).has_value());
  EXPECT_EQ(provider.scheme_for(8)->num_partitions, 640u);
  EXPECT_TRUE(provider.wants_repartition(8));
  EXPECT_FALSE(provider.wants_repartition(9));
  std::remove(path.c_str());
}

TEST(FixedPlanProvider, AnswersEverySignature) {
  FixedPlanProvider provider(engine::PartitionerKind::kRange, 77);
  for (std::uint64_t sig : {0ULL, 1ULL, 123456789ULL}) {
    const auto s = provider.scheme_for(sig);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->kind, engine::PartitionerKind::kRange);
    EXPECT_EQ(s->num_partitions, 77u);
  }
}

}  // namespace
}  // namespace chopper::core
