#include "chopper/cost.h"

#include <gtest/gtest.h>

namespace chopper::core {
namespace {

StageModel trained_u_model() {
  // texe = 1000/P + 0.01 P; shuffle = P * 1 KiB (linear growth, Fig. 4).
  std::vector<Observation> data;
  for (double p = 50; p <= 1200; p += 25) {
    Observation o;
    o.stage_input_bytes = 1e7;
    o.num_partitions = p;
    o.t_exe_s = 1000.0 / p + 0.01 * p;
    o.shuffle_bytes = p * 1024.0;
    data.push_back(o);
  }
  StageModel m;
  m.fit(data, 1e-6);
  return m;
}

TEST(StageCost, NormalizesAgainstDefaults) {
  const auto m = trained_u_model();
  CostWeights w{0.5, 0.5};
  CostBaselines base;
  base.texe_default = m.predict_texe(1e7, 300);
  base.shuffle_default = m.predict_shuffle(1e7, 300);
  // At the default configuration the cost is alpha + beta = 1 by definition.
  EXPECT_NEAR(stage_cost(m, 1e7, 300, w, base), 1.0, 1e-6);
}

TEST(StageCost, ZeroShuffleBaselineDropsShuffleTerm) {
  const auto m = trained_u_model();
  CostWeights w{0.5, 0.5};
  CostBaselines base;
  base.texe_default = 1.0;
  base.shuffle_default = 0.0;
  const double c = stage_cost(m, 1e7, 300, w, base);
  EXPECT_NEAR(c, 0.5 * m.predict_texe(1e7, 300), 1e-9);
}

TEST(StageCost, AlphaBetaWeighting) {
  const auto m = trained_u_model();
  CostBaselines base;
  base.texe_default = m.predict_texe(1e7, 300);
  base.shuffle_default = m.predict_shuffle(1e7, 300);
  // Pure-beta cost prefers fewer partitions (shuffle grows with P).
  const CostWeights beta_only{0.0, 1.0};
  EXPECT_LT(stage_cost(m, 1e7, 100, beta_only, base),
            stage_cost(m, 1e7, 900, beta_only, base));
  // Pure-alpha cost follows the U-shaped time curve instead.
  const CostWeights alpha_only{1.0, 0.0};
  EXPECT_LT(stage_cost(m, 1e7, 300, alpha_only, base),
            stage_cost(m, 1e7, 100, alpha_only, base));
}

TEST(CandidatePartitions, RespectsBoundsAndRounding) {
  SearchSpace space;
  space.min_partitions = 50;
  space.max_partitions = 1000;
  space.candidates = 24;
  space.round_to = 10;
  const auto cands = candidate_partitions(space);
  ASSERT_FALSE(cands.empty());
  EXPECT_GE(cands.front(), 50u);
  EXPECT_LE(cands.back(), 1000u);
  for (std::size_t i = 1; i < cands.size(); ++i) {
    EXPECT_LT(cands[i - 1], cands[i]);  // sorted, deduplicated
  }
  for (const auto c : cands) {
    if (c > 50 && c < 1000) {
      EXPECT_EQ(c % 10, 0u);
    }
  }
}

TEST(CandidatePartitions, DegenerateRangeYieldsSinglePoint) {
  SearchSpace space;
  space.min_partitions = 300;
  space.max_partitions = 300;
  const auto cands = candidate_partitions(space);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0], 300u);
}

TEST(GetMinPar, FindsInteriorMinimum) {
  const auto m = trained_u_model();
  CostWeights w{1.0, 0.0};
  CostBaselines base{1.0, 0.0};
  SearchSpace space;
  space.min_partitions = 50;
  space.max_partitions = 1200;
  space.candidates = 64;
  const auto res = get_min_par(m, 1e7, w, base, space);
  // True optimum ~316; the grid + fit should land nearby.
  EXPECT_GT(res.num_partitions, 150u);
  EXPECT_LT(res.num_partitions, 550u);
  EXPECT_GT(res.cost, 0.0);
}

TEST(GetMinPar, ShuffleWeightPullsOptimumDown) {
  const auto m = trained_u_model();
  CostBaselines base;
  base.texe_default = m.predict_texe(1e7, 300);
  base.shuffle_default = m.predict_shuffle(1e7, 300);
  SearchSpace space;
  space.min_partitions = 50;
  space.max_partitions = 1200;
  const auto time_only = get_min_par(m, 1e7, {1.0, 0.0}, base, space);
  const auto balanced = get_min_par(m, 1e7, {0.5, 0.5}, base, space);
  EXPECT_LE(balanced.num_partitions, time_only.num_partitions);
}

}  // namespace
}  // namespace chopper::core
