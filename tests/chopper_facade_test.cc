// The Chopper facade: profiling sweeps, DB persistence, plan generalization
// to input sizes never profiled directly (the paper's transfer claim).
#include <gtest/gtest.h>

#include <cstdio>

#include "chopper/chopper.h"
#include "workloads/kmeans.h"

namespace chopper {
namespace {

core::ChopperOptions tiny_options() {
  core::ChopperOptions o;
  o.engine_options.default_parallelism = 64;
  o.engine_options.host_threads = 4;
  o.profile_partitions = {16, 32, 64, 96};
  o.profile_fractions = {0.5, 1.0};
  o.profile_both_partitioners = false;  // keep the sweep small
  o.optimizer.space.min_partitions = 8;
  o.optimizer.space.max_partitions = 128;
  o.optimizer.space.round_to = 4;
  return o;
}

workloads::KMeansParams tiny_kmeans() {
  workloads::KMeansParams p;
  p.data.total_points = 8'000;
  p.data.dims = 4;
  p.k = 4;
  p.iterations = 1;
  p.init_rounds = 2;
  p.source_partitions = 64;
  return p;
}

TEST(ChopperFacade, ProfileCollectsExpectedRunCount) {
  const workloads::KMeansWorkload wl(tiny_kmeans());
  core::Chopper chopper(engine::ClusterSpec::uniform(3, 4), tiny_options());
  chopper.profile(wl.name(), wl.runner(), 1.0);
  // 1 default run + 2 fractions x 4 partition counts, hash only = 9 runs;
  // each KMeans run has 1 + 2 + 2 + 2 = 7 stages.
  EXPECT_EQ(chopper.db().total_observations(), 9u * 7u);
}

TEST(ChopperFacade, DbRoundTripsThroughFacade) {
  const workloads::KMeansWorkload wl(tiny_kmeans());
  core::Chopper chopper(engine::ClusterSpec::uniform(3, 4), tiny_options());
  const double input = chopper.profile(wl.name(), wl.runner(), 1.0);

  const std::string path = ::testing::TempDir() + "/facade_db_test.txt";
  chopper.save_db(path);

  core::Chopper fresh(engine::ClusterSpec::uniform(3, 4), tiny_options());
  fresh.load_db(path);
  std::remove(path.c_str());

  EXPECT_EQ(fresh.db().total_observations(),
            chopper.db().total_observations());
  // Plans from the restored DB match plans from the live DB.
  const auto a = chopper.plan(wl.name(), input);
  const auto b = fresh.plan(wl.name(), input);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].signature, b[i].signature);
    EXPECT_EQ(a[i].num_partitions, b[i].num_partitions);
    EXPECT_EQ(a[i].partitioner, b[i].partitioner);
  }
}

TEST(ChopperFacade, PlanGeneralizesToUnseenInputSize) {
  // Profile at fractions 0.5 and 1.0, then plan for 0.75x — never profiled.
  const workloads::KMeansWorkload wl(tiny_kmeans());
  core::Chopper chopper(engine::ClusterSpec::uniform(3, 4), tiny_options());
  chopper.profile(wl.name(), wl.runner(), 1.0);

  const auto unseen_input = static_cast<double>(wl.input_bytes(0.75));
  const auto plan = chopper.plan(wl.name(), unseen_input);
  ASSERT_FALSE(plan.empty());
  for (const auto& ps : plan) {
    EXPECT_GE(ps.num_partitions, 8u);
    EXPECT_LE(ps.num_partitions, 128u);
  }

  // The plan must actually run at that size.
  auto eng = chopper.make_engine();
  eng->set_plan_provider(chopper.make_provider(plan));
  wl.run(*eng, 0.75);
  EXPECT_GT(eng->metrics().total_sim_time(), 0.0);
}

TEST(ChopperFacade, IngestRunRefinesModels) {
  const workloads::KMeansWorkload wl(tiny_kmeans());
  core::Chopper chopper(engine::ClusterSpec::uniform(3, 4), tiny_options());
  chopper.profile(wl.name(), wl.runner(), 1.0);
  const auto before = chopper.db().total_observations();

  // A "production run" gets ingested without re-profiling.
  auto eng = chopper.make_engine();
  wl.run(*eng, 1.0);
  chopper.ingest_run(eng->metrics(), wl.name(), 0.0, /*is_default=*/false);
  EXPECT_GT(chopper.db().total_observations(), before);
}

TEST(ChopperFacade, NaivePlanDiffersFromGlobalOnJoinWorkloads) {
  // (Covered in depth by the optimizer tests; here just the facade paths.)
  const workloads::KMeansWorkload wl(tiny_kmeans());
  core::Chopper chopper(engine::ClusterSpec::uniform(3, 4), tiny_options());
  const double input = chopper.profile(wl.name(), wl.runner(), 1.0);
  const auto global_plan = chopper.plan(wl.name(), input);
  const auto naive = chopper.plan_naive(wl.name(), input);
  EXPECT_EQ(global_plan.size(), naive.size());  // same stages planned
}

}  // namespace
}  // namespace chopper
// (appended) Online tuning loop.
namespace chopper {
namespace {

TEST(ChopperFacade, TuneConvergesAndDoesNotRegress) {
  const workloads::KMeansWorkload wl(tiny_kmeans());
  core::Chopper chopper(engine::ClusterSpec::uniform(3, 4), tiny_options());
  chopper.profile(wl.name(), wl.runner(), 1.0);

  const auto result = chopper.tune(wl.name(), wl.runner(), 1.0, 5);
  ASSERT_FALSE(result.plan.empty());
  ASSERT_GE(result.run_times.size(), 2u);
  // Tuned runs must not be materially worse than the first (untuned) run.
  EXPECT_LT(result.run_times.back(), result.run_times.front() * 1.10);
  if (result.converged) {
    EXPECT_LE(result.rounds, 5u);
  }
}

}  // namespace
}  // namespace chopper
