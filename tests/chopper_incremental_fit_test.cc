// Incremental-refit parity (DESIGN.md §15): the adaptive controller streams
// observations into the WorkloadDb one stage end at a time, refitting the
// lazily-trained models between adds. WorkloadDb::model's canonical-order
// contract promises the resulting coefficients are a pure function of the
// observation *set* — so any ingest order, with or without interleaved
// refits, must produce bit-identical coefficients and identical
// Algorithm 1 / Algorithm 3 plan choices.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "adapt/adaptive.h"
#include "chopper/chopper.h"
#include "chopper/collector.h"
#include "engine/engine.h"
#include "obs/event_log.h"

namespace chopper::core {
namespace {

using engine::ClusterSpec;
using engine::Dataset;
using engine::DatasetPtr;
using engine::Engine;
using engine::PartitionerKind;

constexpr const char* kWorkload = "parity";

DatasetPtr micro_job(std::size_t rows) {
  auto src = Dataset::source(
      "parity.src", 8, [rows](std::size_t index, std::size_t count) {
        engine::Partition p;
        const std::size_t begin = rows * index / count;
        const std::size_t end = rows * (index + 1) / count;
        for (std::size_t i = begin; i < end; ++i) {
          const double vals[2] = {1.0, static_cast<double>(i % 31)};
          p.emplace(i % 64, vals, 2, 64);
        }
        return p;
      });
  return src->reduce_by_key(
      "parity.sum",
      [](engine::Record& acc, const engine::Record& next) {
        acc.values[0] += next.values[0];
        acc.values[1] += next.values[1];
      },
      {}, 2.0);
}

ChopperOptions micro_options() {
  ChopperOptions o;
  o.engine_options.default_parallelism = 8;
  o.engine_options.host_threads = 4;
  o.profile_partitions = {8, 16, 24};
  o.profile_fractions = {0.5, 1.0};
  o.profile_both_partitioners = true;
  return o;
}

WorkloadRunner micro_runner() {
  return [](Engine& e, double s) {
    e.count(micro_job(static_cast<std::size_t>(4000 * s)), kWorkload);
  };
}

/// All observations of a profiled DB, flattened in (signature, partitioner)
/// iteration order.
std::vector<Observation> all_observations(WorkloadDb& db) {
  std::vector<Observation> out;
  for (const auto& st : db.dag(kWorkload)) {
    for (const PartitionerKind k :
         {PartitionerKind::kHash, PartitionerKind::kRange}) {
      const auto obs = db.observations(kWorkload, st.signature, k);
      out.insert(out.end(), obs.begin(), obs.end());
    }
  }
  return out;
}

void copy_structures(WorkloadDb& from, WorkloadDb& to) {
  for (const auto& st : from.dag(kWorkload)) {
    to.add_structure(kWorkload, st);
  }
}

void expect_models_bit_identical(WorkloadDb& a, WorkloadDb& b) {
  for (const auto& st : a.dag(kWorkload)) {
    for (const PartitionerKind k :
         {PartitionerKind::kHash, PartitionerKind::kRange}) {
      const StageModel* ma = a.model(kWorkload, st.signature, k);
      const StageModel* mb = b.model(kWorkload, st.signature, k);
      ASSERT_NE(ma, nullptr);
      ASSERT_NE(mb, nullptr);
      EXPECT_EQ(ma->trained(), mb->trained());
      EXPECT_EQ(ma->texe_weights(), mb->texe_weights())
          << "t_exe coefficients diverged for stage " << st.signature;
      EXPECT_EQ(ma->shuffle_weights(), mb->shuffle_weights())
          << "shuffle coefficients diverged for stage " << st.signature;
    }
  }
}

struct Profiled {
  std::unique_ptr<Chopper> chopper;
  double input_bytes = 0.0;
};

const Profiled& profiled() {
  static const Profiled p = [] {
    Profiled out;
    out.chopper =
        std::make_unique<Chopper>(ClusterSpec::uniform(2, 4), micro_options());
    out.input_bytes = out.chopper->profile(kWorkload, micro_runner(), 1.0);
    return out;
  }();
  return p;
}

TEST(IncrementalFit, AnyIngestOrderGivesBitIdenticalCoefficients) {
  Chopper& base = *profiled().chopper;
  const std::vector<Observation> obs = all_observations(base.db());
  ASSERT_GE(obs.size(), 2 * kMinSamples);

  // Reversed ingest, one offline fit at the end.
  Chopper reversed(ClusterSpec::uniform(2, 4), micro_options());
  copy_structures(base.db(), reversed.db());
  for (auto it = obs.rbegin(); it != obs.rend(); ++it) {
    reversed.db().add(*it);
  }

  // Strided ingest with a refit forced after every add — the adaptive
  // controller's streaming pattern.
  Chopper streamed(ClusterSpec::uniform(2, 4), micro_options());
  copy_structures(base.db(), streamed.db());
  for (std::size_t stride = 0; stride < 3; ++stride) {
    for (std::size_t i = stride; i < obs.size(); i += 3) {
      streamed.db().add(obs[i]);
      streamed.db().model(kWorkload, obs[i].signature, obs[i].partitioner);
    }
  }

  expect_models_bit_identical(base.db(), reversed.db());
  expect_models_bit_identical(base.db(), streamed.db());
}

TEST(IncrementalFit, AlgorithmChoicesInvariantUnderIngestOrder) {
  Chopper& base = *profiled().chopper;
  const double dw = profiled().input_bytes;
  const std::vector<Observation> obs = all_observations(base.db());

  Chopper permuted(ClusterSpec::uniform(2, 4), micro_options());
  copy_structures(base.db(), permuted.db());
  // Deterministic permutation: odd indices first, then even, with
  // interleaved refits (the streaming path).
  for (std::size_t i = 1; i < obs.size(); i += 2) {
    permuted.db().add(obs[i]);
    permuted.db().model(kWorkload, obs[i].signature, obs[i].partitioner);
  }
  for (std::size_t i = 0; i < obs.size(); i += 2) {
    permuted.db().add(obs[i]);
    permuted.db().model(kWorkload, obs[i].signature, obs[i].partitioner);
  }

  // Algorithm 1 per stage.
  for (const auto& st : base.db().dag(kWorkload)) {
    const double d = base.db().stage_input_estimate(kWorkload, st.signature, dw);
    const auto a = base.optimizer().get_stage_par(kWorkload, st.signature, d);
    const auto b =
        permuted.optimizer().get_stage_par(kWorkload, st.signature, d);
    EXPECT_EQ(a.partitioner, b.partitioner);
    EXPECT_EQ(a.num_partitions, b.num_partitions);
    EXPECT_EQ(a.p_min, b.p_min);
  }

  // Algorithm 3 end to end.
  const auto plan_a = base.plan(kWorkload, dw);
  const auto plan_b = permuted.plan(kWorkload, dw);
  ASSERT_EQ(plan_a.size(), plan_b.size());
  for (std::size_t i = 0; i < plan_a.size(); ++i) {
    EXPECT_EQ(plan_a[i].signature, plan_b[i].signature);
    EXPECT_EQ(plan_a[i].partitioner, plan_b[i].partitioner);
    EXPECT_EQ(plan_a[i].num_partitions, plan_b[i].num_partitions);
    EXPECT_EQ(plan_a[i].fixed, plan_b[i].fixed);
    EXPECT_EQ(plan_a[i].insert_repartition, plan_b[i].insert_repartition);
    EXPECT_EQ(plan_a[i].p_min, plan_b[i].p_min);
  }
}

TEST(IncrementalFit, ControllerStreamFoldMatchesOfflineCollector) {
  // One engine run, folded two ways: streamed through the adaptive
  // controller's kStageEnd path vs ingested offline by the StatsCollector.
  obs::EventLog log;
  Chopper streamed(ClusterSpec::uniform(2, 4), micro_options());
  adapt::AdaptOptions aopts;
  aopts.min_observations = ~std::size_t{0};  // fold only; never sweep
  auto provider = std::make_shared<ConfigPlanProvider>();
  auto controller = std::make_shared<adapt::AdaptiveController>(
      streamed, kWorkload, provider, common::KvConfig{}, aopts);
  log.attach(controller);

  Engine eng(ClusterSpec::uniform(2, 4), micro_options().engine_options);
  eng.set_event_log(&log);
  eng.count(micro_job(4000), kWorkload);
  log.detach_all();

  // The streaming fold measures D_w from source-stage input bytes; feed the
  // collector the same resolved value.
  double dw = 0.0;
  for (const auto& sm : eng.metrics().stages()) {
    if (sm.anchor_op == engine::OpKind::kSource &&
        sm.parent_signatures.empty()) {
      dw += static_cast<double>(sm.input_bytes);
    }
  }
  Chopper offline(ClusterSpec::uniform(2, 4), micro_options());
  StatsCollector collector(offline.db());
  collector.ingest(eng.metrics(), kWorkload, dw, /*is_default=*/false);

  ASSERT_EQ(streamed.db().total_observations(),
            offline.db().total_observations());
  for (const auto& st : offline.db().dag(kWorkload)) {
    for (const PartitionerKind k :
         {PartitionerKind::kHash, PartitionerKind::kRange}) {
      const auto a = streamed.db().observations(kWorkload, st.signature, k);
      const auto b = offline.db().observations(kWorkload, st.signature, k);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].workload_input_bytes, b[i].workload_input_bytes);
        EXPECT_EQ(a[i].stage_input_bytes, b[i].stage_input_bytes);
        EXPECT_EQ(a[i].num_partitions, b[i].num_partitions);
        EXPECT_EQ(a[i].t_exe_s, b[i].t_exe_s);
        EXPECT_EQ(a[i].shuffle_bytes, b[i].shuffle_bytes);
        EXPECT_EQ(a[i].is_default, b[i].is_default);
      }
    }
  }
  expect_models_bit_identical(streamed.db(), offline.db());
}

}  // namespace
}  // namespace chopper::core
